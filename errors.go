package bufferkit

import "bufferkit/internal/solvererr"

// Typed errors shared by every algorithm. Branch with errors.Is /
// errors.As instead of matching message strings:
//
//	res, err := solver.Run(ctx, net)
//	switch {
//	case errors.Is(err, bufferkit.ErrCanceled):    // context fired mid-run
//	case errors.Is(err, bufferkit.ErrInfeasible):  // no polarity-feasible solution
//	}
//	var verr *bufferkit.ValidationError
//	if errors.As(err, &verr) { ... verr.Vertex, verr.Field ... }
var (
	// ErrInfeasible is wrapped by errors that mean the instance admits no
	// polarity-feasible solution (as opposed to being malformed).
	ErrInfeasible = solvererr.ErrInfeasible
	// ErrCanceled is wrapped by errors caused by context cancellation.
	ErrCanceled = solvererr.ErrCanceled
)

// ValidationError reports a malformed instance — a library type with an
// illegal field, a sink whose polarity the library cannot serve, a vertex
// restriction excluding every type — with vertex / library-type / field
// detail.
type ValidationError = solvererr.ValidationError
