// Command bufferkitd serves optimal buffer insertion over HTTP: the
// long-running network front end physical-synthesis loops call instead of
// shelling out to bufopt per net.
//
// Usage:
//
//	bufferkitd [-addr :8080] [-concurrency 0] [-cache 4096]
//	           [-timeout 30s] [-max-timeout 5m] [-max-body 16777216]
//	           [-max-queue 0] [-queue-timeout 10s] [-drain-wait 0]
//	           [-self URL -peers URL,URL,... [-replicas 2]]
//	           [-tenant-quotas "acme=50:100,*=10"]
//	           [-log-format text|json] [-log-level info] [-slow-threshold 1s]
//	           [-trace-ring 256] [-pprof-addr ""]
//
// Every flag also reads a BUFFERKITD_* environment variable (flag name
// upper-snake-cased: -max-queue → BUFFERKITD_MAX_QUEUE). An explicit
// flag wins over the environment.
//
// Fleet mode: start every node with the same -peers list (and its own
// -self URL) and single solves route to their cache home by consistent
// hashing, results replicate across -replicas owners, and each node
// probes the others to route around failures. See internal/fleet and
// README.md "Running a fleet".
//
// Endpoints (see internal/server for the full protocol):
//
//	POST /v1/solve      one net, JSON in / JSON out
//	POST /v1/batch      many nets, JSON in / NDJSON stream out
//	POST /v1/yield      Monte Carlo / multi-corner yield analysis
//	POST /v1/chip       multi-net chip solve, JSON in / NDJSON rounds out
//	PUT  /v1/sessions/{id} incremental ECO session: create, patch, re-solve
//	GET  /v1/algorithms algorithm registry with descriptions
//	GET  /v1/fleet      fleet topology + per-peer health
//	PUT  /internal/v1/cache peer-to-peer result replication
//	GET  /healthz       liveness probe
//	GET  /readyz        readiness probe (503 while draining)
//	GET  /metrics       expvar counters as JSON (Prometheus text format
//	                    with Accept: text/plain or ?format=prom)
//	GET  /debug/traces  recent request traces (JSON, ?min_ms= filter)
//
// Observability: every request gets a trace (W3C traceparent in, trace id
// back in X-Bufferkit-Trace) and one structured request-summary log line;
// requests slower than -slow-threshold log at WARN. -pprof-addr serves
// net/http/pprof on a separate listener, so profiling endpoints are never
// exposed on the service port. See README.md "Observing bufferkitd".
//
// SIGINT/SIGTERM drain gracefully in load-balancer-safe order: /readyz
// flips to 503 first, the process keeps accepting for -drain-wait so
// balancers can observe the flip and stop routing, then the listener
// closes and in-flight solves run to completion (or their deadline).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bufferkit/internal/fleet"
	"bufferkit/internal/resilience"
	"bufferkit/internal/server"
)

// options is everything parseFlags decides: the listen address, the
// server config, the shutdown knobs, and the optional pprof listener.
type options struct {
	addr      string
	cfg       server.Config
	grace     time.Duration
	drainWait time.Duration
	pprofAddr string
	logger    *slog.Logger
}

// parseFlags builds the daemon's options from argv and the environment.
// Precedence per knob: explicit flag > BUFFERKITD_* variable > default.
// getenv is injected so tests don't mutate the process environment.
func parseFlags(args []string, getenv func(string) string) (*options, error) {
	fs := flag.NewFlagSet("bufferkitd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		concurrency  = fs.Int("concurrency", 0, "max concurrent engine runs (0 = GOMAXPROCS)")
		cacheSize    = fs.Int("cache", 4096, "result-cache entries (negative = disable)")
		timeout      = fs.Duration("timeout", 30*time.Second, "default per-request solve budget")
		maxTimeout   = fs.Duration("max-timeout", 5*time.Minute, "cap on client-requested budgets")
		maxBody      = fs.Int64("max-body", 16<<20, "max request body bytes")
		maxBatch     = fs.Int("max-batch", 10000, "max nets per /v1/batch request")
		maxYield     = fs.Int("max-yield-samples", 1024, "max Monte Carlo samples per /v1/yield request")
		maxChip      = fs.Int("max-chip-nets", 10000, "max nets per /v1/chip instance")
		maxQueue     = fs.Int("max-queue", 0, "admission queue length (0 = 8x concurrency, negative = no queue)")
		maxSessions  = fs.Int("max-sessions", 0, "max retained ECO sessions, LRU-evicted beyond it (0 = 256, negative = disable the endpoint)")
		sessionTTL   = fs.Duration("session-ttl", 0, "idle eviction TTL for ECO sessions (0 = 10m)")
		queueTimeout = fs.Duration("queue-timeout", 0, "max admission-queue wait (0 = 10s, negative = wait for the request deadline)")
		grace        = fs.Duration("grace", 30*time.Second, "shutdown grace period for in-flight solves")
		drainWait    = fs.Duration("drain-wait", 0, "delay between flipping /readyz to 503 and closing the listener")

		self           = fs.String("self", "", "this node's advertised base URL in fleet mode (must appear in -peers)")
		peers          = fs.String("peers", "", "comma-separated fleet member URLs, -self included (empty = single node)")
		replicas       = fs.Int("replicas", 0, "fleet replication factor R (0 = 2)")
		probeInterval  = fs.Duration("probe-interval", 0, "fleet peer probe period (0 = 1s)")
		hedgeAfter     = fs.Duration("hedge-after", 0, "delay before hedging a forwarded solve to the replica (0 = 30ms)")
		forwardTimeout = fs.Duration("forward-timeout", 0, "cap on one forwarded attempt's sub-deadline (0 = 5s)")
		tenantQuotas   = fs.String("tenant-quotas", "", `per-tenant rate[:burst] quotas keyed by X-Bufferkit-Tenant, "*" for the default bucket (e.g. "acme=50:100,*=10"; empty = unlimited)`)

		logFormat     = fs.String("log-format", "text", "structured log encoding: text or json")
		logLevel      = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
		slowThreshold = fs.Duration("slow-threshold", 0, "log requests at least this slow as WARN \"slow request\" lines (0 = 1s, negative = disable)")
		traceRing     = fs.Int("trace-ring", 0, "completed request traces retained for GET /debug/traces (0 = 256, negative = disable tracing)")
		pprofAddr     = fs.String("pprof-addr", "", "listen address for net/http/pprof on a separate server (empty = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	var envErr error
	fs.VisitAll(func(f *flag.Flag) {
		if set[f.Name] || envErr != nil {
			return
		}
		key := "BUFFERKITD_" + strings.ReplaceAll(strings.ToUpper(f.Name), "-", "_")
		if v := getenv(key); v != "" {
			if err := fs.Set(f.Name, v); err != nil {
				envErr = fmt.Errorf("%s=%q: %w", key, v, err)
			}
		}
	})
	if envErr != nil {
		return nil, envErr
	}
	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		return nil, err
	}
	cfg := server.Config{
		MaxConcurrent:   *concurrency,
		CacheEntries:    *cacheSize,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		MaxBodyBytes:    *maxBody,
		MaxBatchNets:    *maxBatch,
		MaxYieldSamples: *maxYield,
		MaxChipNets:     *maxChip,
		MaxQueue:        *maxQueue,
		QueueTimeout:    *queueTimeout,
		MaxSessions:     *maxSessions,
		SessionTTL:      *sessionTTL,
		Logger:          logger,
		SlowThreshold:   *slowThreshold,
		TraceRing:       *traceRing,
	}
	if *peers != "" {
		cfg.Fleet = fleet.Config{
			Self:           *self,
			Peers:          splitPeers(*peers),
			Replicas:       *replicas,
			ProbeInterval:  *probeInterval,
			HedgeAfter:     *hedgeAfter,
			ForwardTimeout: *forwardTimeout,
		}
		if err := cfg.Fleet.Validate(); err != nil {
			return nil, err
		}
	} else if *self != "" {
		return nil, fmt.Errorf("-self is set but -peers is empty")
	}
	if *tenantQuotas != "" {
		q, err := resilience.ParseQuotaSpecs(*tenantQuotas)
		if err != nil {
			return nil, err
		}
		cfg.TenantQuotas = q
	}
	return &options{
		addr:      *addr,
		cfg:       cfg,
		grace:     *grace,
		drainWait: *drainWait,
		pprofAddr: *pprofAddr,
		logger:    logger,
	}, nil
}

// buildLogger assembles the daemon's slog.Logger on stderr from the
// -log-format and -log-level flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn or error", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("-log-format %q: want text or json", format)
}

// splitPeers parses the comma-separated -peers list, trimming whitespace
// and dropping empty entries.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	opts, err := parseFlags(os.Args[1:], os.Getenv)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "bufferkitd:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opts); err != nil {
		fmt.Fprintln(os.Stderr, "bufferkitd:", err)
		os.Exit(1)
	}
}

// run serves until ctx is canceled (SIGINT/SIGTERM in main), then drains
// in order: /readyz goes 503, drainWait elapses with the listener still
// accepting (so load balancers see the flip before connections start
// failing), then the listener closes and in-flight requests get the
// grace period. listening, when non-nil, receives the bound address once
// the listener is up (used by tests binding :0).
func run(ctx context.Context, opts *options, listening ...chan<- string) error {
	logger := opts.logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	s := server.New(opts.cfg)
	defer s.Close()
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Info("listening", "addr", ln.Addr().String())
	if opts.pprofAddr != "" {
		stopPprof, _, err := servePprof(opts.pprofAddr, logger)
		if err != nil {
			ln.Close()
			return err
		}
		defer stopPprof()
	}
	for _, ch := range listening {
		ch <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.SetDraining(true)
	logger.Info("draining", "readyz", 503, "drain_wait", opts.drainWait.String(), "grace", opts.grace.String())
	if opts.drainWait > 0 {
		time.Sleep(opts.drainWait)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), opts.grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("drained")
	return nil
}

// servePprof starts the opt-in net/http/pprof server on its own listener
// — profiling endpoints stay off the service port so an exposed API never
// leaks heap dumps. It returns a stop function that closes the listener
// and the bound address (so callers binding :0 can find the port).
func servePprof(addr string, logger *slog.Logger) (func(), string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("pprof listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	logger.Info("pprof listening", "addr", ln.Addr().String())
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("pprof server failed", "err", err)
		}
	}()
	return func() { srv.Close() }, ln.Addr().String(), nil
}
