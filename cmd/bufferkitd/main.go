// Command bufferkitd serves optimal buffer insertion over HTTP: the
// long-running network front end physical-synthesis loops call instead of
// shelling out to bufopt per net.
//
// Usage:
//
//	bufferkitd [-addr :8080] [-concurrency 0] [-cache 4096]
//	           [-timeout 30s] [-max-timeout 5m] [-max-body 16777216]
//
// Endpoints (see internal/server for the full protocol):
//
//	POST /v1/solve      one net, JSON in / JSON out
//	POST /v1/batch      many nets, JSON in / NDJSON stream out
//	POST /v1/yield      Monte Carlo / multi-corner yield analysis
//	GET  /v1/algorithms algorithm registry with descriptions
//	GET  /healthz       liveness probe
//	GET  /metrics       expvar counters as JSON
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight solves
// run to completion (or their deadline), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bufferkit/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		concurrency = flag.Int("concurrency", 0, "max concurrent engine runs (0 = GOMAXPROCS)")
		cacheSize   = flag.Int("cache", 4096, "result-cache entries (negative = disable)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-request solve budget")
		maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested budgets")
		maxBody     = flag.Int64("max-body", 16<<20, "max request body bytes")
		maxBatch    = flag.Int("max-batch", 10000, "max nets per /v1/batch request")
		maxYield    = flag.Int("max-yield-samples", 1024, "max Monte Carlo samples per /v1/yield request")
		grace       = flag.Duration("grace", 30*time.Second, "shutdown grace period")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, server.Config{
		MaxConcurrent:   *concurrency,
		CacheEntries:    *cacheSize,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		MaxBodyBytes:    *maxBody,
		MaxBatchNets:    *maxBatch,
		MaxYieldSamples: *maxYield,
	}, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "bufferkitd:", err)
		os.Exit(1)
	}
}

// run serves until ctx is canceled (SIGINT/SIGTERM in main), then drains
// gracefully within the grace period. listening, when non-nil, receives
// the bound address once the listener is up (used by tests binding :0).
func run(ctx context.Context, addr string, cfg server.Config, grace time.Duration, listening ...chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           server.New(cfg).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("bufferkitd: listening on %s", ln.Addr())
	for _, ch := range listening {
		ch <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("bufferkitd: shutting down (grace %s)", grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("bufferkitd: drained")
	return nil
}
