package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func noEnv(string) string { return "" }

func env(m map[string]string) func(string) string {
	return func(k string) string { return m[k] }
}

func TestParseFlagsDefaults(t *testing.T) {
	opts, err := parseFlags(nil, noEnv)
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != ":8080" {
		t.Errorf("addr = %q", opts.addr)
	}
	if opts.cfg.CacheEntries != 4096 || opts.cfg.MaxBodyBytes != 16<<20 {
		t.Errorf("cfg = %+v", opts.cfg)
	}
	if opts.cfg.MaxChipNets != 10000 {
		t.Errorf("MaxChipNets = %d", opts.cfg.MaxChipNets)
	}
	if opts.cfg.MaxQueue != 0 || opts.cfg.QueueTimeout != 0 {
		t.Errorf("queue defaults = %d, %s (want zero values, the server picks the real defaults)",
			opts.cfg.MaxQueue, opts.cfg.QueueTimeout)
	}
	if opts.grace != 30*time.Second || opts.drainWait != 0 {
		t.Errorf("grace = %s, drainWait = %s", opts.grace, opts.drainWait)
	}
}

func TestParseFlagsExplicit(t *testing.T) {
	opts, err := parseFlags([]string{
		"-addr", "127.0.0.1:9090",
		"-concurrency", "3",
		"-max-queue", "-1",
		"-queue-timeout", "250ms",
		"-drain-wait", "2s",
	}, noEnv)
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != "127.0.0.1:9090" || opts.cfg.MaxConcurrent != 3 {
		t.Errorf("opts = %+v", opts)
	}
	if opts.cfg.MaxQueue != -1 || opts.cfg.QueueTimeout != 250*time.Millisecond {
		t.Errorf("queue knobs = %d, %s", opts.cfg.MaxQueue, opts.cfg.QueueTimeout)
	}
	if opts.drainWait != 2*time.Second {
		t.Errorf("drainWait = %s", opts.drainWait)
	}
}

func TestParseFlagsEnvFallback(t *testing.T) {
	opts, err := parseFlags(nil, env(map[string]string{
		"BUFFERKITD_ADDR":          ":7070",
		"BUFFERKITD_MAX_QUEUE":     "16",
		"BUFFERKITD_QUEUE_TIMEOUT": "1s",
		"BUFFERKITD_DRAIN_WAIT":    "500ms",
		"BUFFERKITD_CACHE":         "128",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != ":7070" || opts.cfg.MaxQueue != 16 ||
		opts.cfg.QueueTimeout != time.Second || opts.cfg.CacheEntries != 128 {
		t.Errorf("env fallback not applied: %+v", opts)
	}
	if opts.drainWait != 500*time.Millisecond {
		t.Errorf("drainWait = %s", opts.drainWait)
	}
}

// TestParseFlagsEnvLosesToFlag: an explicit flag beats its environment
// variable.
func TestParseFlagsEnvLosesToFlag(t *testing.T) {
	opts, err := parseFlags([]string{"-addr", ":1111"}, env(map[string]string{
		"BUFFERKITD_ADDR":  ":2222",
		"BUFFERKITD_CACHE": "99",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != ":1111" {
		t.Errorf("addr = %q, flag must win over env", opts.addr)
	}
	if opts.cfg.CacheEntries != 99 {
		t.Errorf("cache = %d, untouched flags still read env", opts.cfg.CacheEntries)
	}
}

// TestParseFlagsFleet: the fleet flags build a validated fleet.Config,
// with whitespace tolerated in the -peers list.
func TestParseFlagsFleet(t *testing.T) {
	opts, err := parseFlags([]string{
		"-self", "http://a:1",
		"-peers", "http://a:1, http://b:2 ,http://c:3",
		"-replicas", "3",
		"-probe-interval", "200ms",
		"-hedge-after", "15ms",
		"-forward-timeout", "2s",
		"-tenant-quotas", "acme=50:100,*=10",
	}, noEnv)
	if err != nil {
		t.Fatal(err)
	}
	f := opts.cfg.Fleet
	if f.Self != "http://a:1" || len(f.Peers) != 3 || f.Peers[1] != "http://b:2" {
		t.Errorf("fleet = %+v", f)
	}
	if f.Replicas != 3 || f.ProbeInterval != 200*time.Millisecond ||
		f.HedgeAfter != 15*time.Millisecond || f.ForwardTimeout != 2*time.Second {
		t.Errorf("fleet knobs = %+v", f)
	}
	if !f.Enabled() {
		t.Error("3-member fleet not Enabled")
	}
	q, ok := opts.cfg.TenantQuotas["acme"]
	if !ok || q.Rate != 50 || q.Burst != 100 {
		t.Errorf("acme quota = %+v (present %v)", q, ok)
	}
	if _, ok := opts.cfg.TenantQuotas["*"]; !ok {
		t.Error("default quota bucket missing")
	}
}

// TestParseFlagsFleetEnv: fleet flags read BUFFERKITD_* like every other
// knob.
func TestParseFlagsFleetEnv(t *testing.T) {
	opts, err := parseFlags(nil, env(map[string]string{
		"BUFFERKITD_SELF":  "http://a:1",
		"BUFFERKITD_PEERS": "http://a:1,http://b:2",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.Fleet.Self != "http://a:1" || len(opts.cfg.Fleet.Peers) != 2 {
		t.Errorf("fleet from env = %+v", opts.cfg.Fleet)
	}
}

// TestParseFlagsFleetBad: inconsistent fleet flags and malformed quota
// specs are rejected at startup, not at first request.
func TestParseFlagsFleetBad(t *testing.T) {
	cases := [][]string{
		{"-self", "http://a:1"},                                    // self without peers
		{"-peers", "http://a:1,http://b:2"},                        // peers without self
		{"-self", "http://c:3", "-peers", "http://a:1,http://b:2"}, // self not a member
		{"-self", "http://a:1", "-peers", "http://a:1,http://a:1"}, // duplicate member
		{"-tenant-quotas", "acme=fast"},                            // malformed quota
	}
	for _, args := range cases {
		if _, err := parseFlags(args, noEnv); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
}

func TestParseFlagsBadValues(t *testing.T) {
	if _, err := parseFlags([]string{"-concurrency", "lots"}, noEnv); err == nil {
		t.Error("bad flag value accepted")
	}
	if _, err := parseFlags(nil, env(map[string]string{
		"BUFFERKITD_QUEUE_TIMEOUT": "soon",
	})); err == nil {
		t.Error("bad env value accepted")
	} else if !strings.Contains(err.Error(), "BUFFERKITD_QUEUE_TIMEOUT") {
		t.Errorf("env error does not name the variable: %v", err)
	}
	if _, err := parseFlags([]string{"stray"}, noEnv); err == nil {
		t.Error("stray positional argument accepted")
	}
}

// startRun boots run() on a random port and returns the bound address
// plus the done channel.
func startRun(t *testing.T, ctx context.Context, opts *options) (string, chan error) {
	t.Helper()
	listening := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, opts, listening) }()
	select {
	case addr := <-listening:
		return addr, done
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never started listening")
	}
	panic("unreachable")
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

// TestRunServesAndDrains boots the real server on a random port, checks a
// live endpoint, then cancels the context and asserts a clean drain —
// the full SIGTERM path minus the signal.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, done := startRun(t, ctx, &options{addr: "127.0.0.1:0", grace: 5 * time.Second})

	if code, body := get(t, "http://"+addr+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, _ := get(t, "http://"+addr+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d before drain", code)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain within the grace period")
	}
}

// TestRunDrainOrdering: after SIGTERM, /readyz reports 503 while the
// listener is still accepting — the window load balancers need to stop
// routing before connections start failing.
func TestRunDrainOrdering(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, done := startRun(t, ctx, &options{
		addr:      "127.0.0.1:0",
		grace:     5 * time.Second,
		drainWait: 500 * time.Millisecond,
	})
	cancel() // the SIGTERM

	// Within the drain window the listener must still serve, and readyz
	// must already be 503.
	deadline := time.Now().Add(400 * time.Millisecond)
	sawNotReady := false
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err != nil {
			t.Fatalf("listener closed inside the drain window: %v", err)
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			sawNotReady = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawNotReady {
		t.Fatal("readyz never went 503 while the listener was still open")
	}
	// Liveness is unaffected by draining.
	if code, _ := get(t, "http://"+addr+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d during drain, liveness must stay 200", code)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after the drain window")
	}
}

// TestRunBadAddr: an unbindable address fails fast instead of hanging.
func TestRunBadAddr(t *testing.T) {
	err := run(context.Background(), &options{addr: "256.256.256.256:1", grace: time.Second})
	if err == nil {
		t.Fatal("expected listen error")
	}
}
