package main

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"bufferkit/internal/testutil"
)

func noEnv(string) string { return "" }

func env(m map[string]string) func(string) string {
	return func(k string) string { return m[k] }
}

func TestParseFlagsDefaults(t *testing.T) {
	opts, err := parseFlags(nil, noEnv)
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != ":8080" {
		t.Errorf("addr = %q", opts.addr)
	}
	if opts.cfg.CacheEntries != 4096 || opts.cfg.MaxBodyBytes != 16<<20 {
		t.Errorf("cfg = %+v", opts.cfg)
	}
	if opts.cfg.MaxChipNets != 10000 {
		t.Errorf("MaxChipNets = %d", opts.cfg.MaxChipNets)
	}
	if opts.cfg.MaxQueue != 0 || opts.cfg.QueueTimeout != 0 {
		t.Errorf("queue defaults = %d, %s (want zero values, the server picks the real defaults)",
			opts.cfg.MaxQueue, opts.cfg.QueueTimeout)
	}
	if opts.grace != 30*time.Second || opts.drainWait != 0 {
		t.Errorf("grace = %s, drainWait = %s", opts.grace, opts.drainWait)
	}
}

func TestParseFlagsExplicit(t *testing.T) {
	opts, err := parseFlags([]string{
		"-addr", "127.0.0.1:9090",
		"-concurrency", "3",
		"-max-queue", "-1",
		"-queue-timeout", "250ms",
		"-drain-wait", "2s",
	}, noEnv)
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != "127.0.0.1:9090" || opts.cfg.MaxConcurrent != 3 {
		t.Errorf("opts = %+v", opts)
	}
	if opts.cfg.MaxQueue != -1 || opts.cfg.QueueTimeout != 250*time.Millisecond {
		t.Errorf("queue knobs = %d, %s", opts.cfg.MaxQueue, opts.cfg.QueueTimeout)
	}
	if opts.drainWait != 2*time.Second {
		t.Errorf("drainWait = %s", opts.drainWait)
	}
}

func TestParseFlagsEnvFallback(t *testing.T) {
	opts, err := parseFlags(nil, env(map[string]string{
		"BUFFERKITD_ADDR":          ":7070",
		"BUFFERKITD_MAX_QUEUE":     "16",
		"BUFFERKITD_QUEUE_TIMEOUT": "1s",
		"BUFFERKITD_DRAIN_WAIT":    "500ms",
		"BUFFERKITD_CACHE":         "128",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != ":7070" || opts.cfg.MaxQueue != 16 ||
		opts.cfg.QueueTimeout != time.Second || opts.cfg.CacheEntries != 128 {
		t.Errorf("env fallback not applied: %+v", opts)
	}
	if opts.drainWait != 500*time.Millisecond {
		t.Errorf("drainWait = %s", opts.drainWait)
	}
}

// TestParseFlagsEnvLosesToFlag: an explicit flag beats its environment
// variable.
func TestParseFlagsEnvLosesToFlag(t *testing.T) {
	opts, err := parseFlags([]string{"-addr", ":1111"}, env(map[string]string{
		"BUFFERKITD_ADDR":  ":2222",
		"BUFFERKITD_CACHE": "99",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != ":1111" {
		t.Errorf("addr = %q, flag must win over env", opts.addr)
	}
	if opts.cfg.CacheEntries != 99 {
		t.Errorf("cache = %d, untouched flags still read env", opts.cfg.CacheEntries)
	}
}

// TestParseFlagsFleet: the fleet flags build a validated fleet.Config,
// with whitespace tolerated in the -peers list.
func TestParseFlagsFleet(t *testing.T) {
	opts, err := parseFlags([]string{
		"-self", "http://a:1",
		"-peers", "http://a:1, http://b:2 ,http://c:3",
		"-replicas", "3",
		"-probe-interval", "200ms",
		"-hedge-after", "15ms",
		"-forward-timeout", "2s",
		"-tenant-quotas", "acme=50:100,*=10",
	}, noEnv)
	if err != nil {
		t.Fatal(err)
	}
	f := opts.cfg.Fleet
	if f.Self != "http://a:1" || len(f.Peers) != 3 || f.Peers[1] != "http://b:2" {
		t.Errorf("fleet = %+v", f)
	}
	if f.Replicas != 3 || f.ProbeInterval != 200*time.Millisecond ||
		f.HedgeAfter != 15*time.Millisecond || f.ForwardTimeout != 2*time.Second {
		t.Errorf("fleet knobs = %+v", f)
	}
	if !f.Enabled() {
		t.Error("3-member fleet not Enabled")
	}
	q, ok := opts.cfg.TenantQuotas["acme"]
	if !ok || q.Rate != 50 || q.Burst != 100 {
		t.Errorf("acme quota = %+v (present %v)", q, ok)
	}
	if _, ok := opts.cfg.TenantQuotas["*"]; !ok {
		t.Error("default quota bucket missing")
	}
}

// TestParseFlagsFleetEnv: fleet flags read BUFFERKITD_* like every other
// knob.
func TestParseFlagsFleetEnv(t *testing.T) {
	opts, err := parseFlags(nil, env(map[string]string{
		"BUFFERKITD_SELF":  "http://a:1",
		"BUFFERKITD_PEERS": "http://a:1,http://b:2",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.Fleet.Self != "http://a:1" || len(opts.cfg.Fleet.Peers) != 2 {
		t.Errorf("fleet from env = %+v", opts.cfg.Fleet)
	}
}

// TestParseFlagsFleetBad: inconsistent fleet flags and malformed quota
// specs are rejected at startup, not at first request.
func TestParseFlagsFleetBad(t *testing.T) {
	cases := [][]string{
		{"-self", "http://a:1"},                                    // self without peers
		{"-peers", "http://a:1,http://b:2"},                        // peers without self
		{"-self", "http://c:3", "-peers", "http://a:1,http://b:2"}, // self not a member
		{"-self", "http://a:1", "-peers", "http://a:1,http://a:1"}, // duplicate member
		{"-tenant-quotas", "acme=fast"},                            // malformed quota
	}
	for _, args := range cases {
		if _, err := parseFlags(args, noEnv); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
}

// TestParseFlagsObs: the observability flags land in the server config
// and the daemon options — format/level build the slog.Logger, the
// slow-request threshold and trace-ring size pass through, and
// -pprof-addr stays on the options (it is a separate listener, not a
// server.Config knob).
func TestParseFlagsObs(t *testing.T) {
	opts, err := parseFlags([]string{
		"-log-format", "json",
		"-log-level", "debug",
		"-slow-threshold", "250ms",
		"-trace-ring", "64",
		"-pprof-addr", "127.0.0.1:0",
	}, noEnv)
	if err != nil {
		t.Fatal(err)
	}
	if opts.logger == nil || opts.cfg.Logger != opts.logger {
		t.Fatal("logger not built or not threaded into server.Config")
	}
	if _, ok := opts.logger.Handler().(*slog.JSONHandler); !ok {
		t.Errorf("-log-format json built %T", opts.logger.Handler())
	}
	if !opts.logger.Enabled(context.Background(), slog.LevelDebug) {
		t.Error("-log-level debug not applied")
	}
	if opts.cfg.SlowThreshold != 250*time.Millisecond {
		t.Errorf("SlowThreshold = %s", opts.cfg.SlowThreshold)
	}
	if opts.cfg.TraceRing != 64 {
		t.Errorf("TraceRing = %d", opts.cfg.TraceRing)
	}
	if opts.pprofAddr != "127.0.0.1:0" {
		t.Errorf("pprofAddr = %q", opts.pprofAddr)
	}
}

// TestParseFlagsObsDefaults: without flags the daemon logs text at info
// and leaves the zero values the server turns into its own defaults
// (trace ring 256, slow threshold 1s); pprof stays disabled.
func TestParseFlagsObsDefaults(t *testing.T) {
	opts, err := parseFlags(nil, noEnv)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := opts.logger.Handler().(*slog.TextHandler); !ok {
		t.Errorf("default log format built %T, want text", opts.logger.Handler())
	}
	ctx := context.Background()
	if !opts.logger.Enabled(ctx, slog.LevelInfo) || opts.logger.Enabled(ctx, slog.LevelDebug) {
		t.Error("default log level is not info")
	}
	if opts.cfg.TraceRing != 0 || opts.cfg.SlowThreshold != 0 {
		t.Errorf("obs defaults = ring %d, slow %s (want zero values, the server picks the real defaults)",
			opts.cfg.TraceRing, opts.cfg.SlowThreshold)
	}
	if opts.pprofAddr != "" {
		t.Errorf("pprofAddr = %q, want disabled by default", opts.pprofAddr)
	}
}

// TestParseFlagsObsEnv: the observability knobs read BUFFERKITD_* like
// every other flag.
func TestParseFlagsObsEnv(t *testing.T) {
	opts, err := parseFlags(nil, env(map[string]string{
		"BUFFERKITD_LOG_FORMAT":     "json",
		"BUFFERKITD_LOG_LEVEL":      "warn",
		"BUFFERKITD_SLOW_THRESHOLD": "2s",
		"BUFFERKITD_TRACE_RING":     "-1",
		"BUFFERKITD_PPROF_ADDR":     "127.0.0.1:6060",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := opts.logger.Handler().(*slog.JSONHandler); !ok {
		t.Errorf("BUFFERKITD_LOG_FORMAT built %T", opts.logger.Handler())
	}
	ctx := context.Background()
	if !opts.logger.Enabled(ctx, slog.LevelWarn) || opts.logger.Enabled(ctx, slog.LevelInfo) {
		t.Error("BUFFERKITD_LOG_LEVEL=warn not applied")
	}
	if opts.cfg.SlowThreshold != 2*time.Second || opts.cfg.TraceRing != -1 {
		t.Errorf("obs env fallback not applied: slow %s, ring %d",
			opts.cfg.SlowThreshold, opts.cfg.TraceRing)
	}
	if opts.pprofAddr != "127.0.0.1:6060" {
		t.Errorf("pprofAddr = %q", opts.pprofAddr)
	}
}

// TestParseFlagsObsBad: malformed observability values are startup
// errors that name the offending knob.
func TestParseFlagsObsBad(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-log-format", "xml"}, "-log-format"},
		{[]string{"-log-level", "loud"}, "-log-level"},
	} {
		_, err := parseFlags(tc.args, noEnv)
		if err == nil {
			t.Errorf("parseFlags(%v) accepted", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parseFlags(%v) error %q does not name %s", tc.args, err, tc.want)
		}
	}
	if _, err := parseFlags(nil, env(map[string]string{
		"BUFFERKITD_TRACE_RING": "ten",
	})); err == nil {
		t.Error("bad BUFFERKITD_TRACE_RING accepted")
	} else if !strings.Contains(err.Error(), "BUFFERKITD_TRACE_RING") {
		t.Errorf("env error does not name the variable: %v", err)
	}
}

func TestParseFlagsBadValues(t *testing.T) {
	if _, err := parseFlags([]string{"-concurrency", "lots"}, noEnv); err == nil {
		t.Error("bad flag value accepted")
	}
	if _, err := parseFlags(nil, env(map[string]string{
		"BUFFERKITD_QUEUE_TIMEOUT": "soon",
	})); err == nil {
		t.Error("bad env value accepted")
	} else if !strings.Contains(err.Error(), "BUFFERKITD_QUEUE_TIMEOUT") {
		t.Errorf("env error does not name the variable: %v", err)
	}
	if _, err := parseFlags([]string{"stray"}, noEnv); err == nil {
		t.Error("stray positional argument accepted")
	}
}

// startRun boots run() on a random port and returns the bound address
// plus the done channel.
func startRun(t *testing.T, ctx context.Context, opts *options) (string, chan error) {
	t.Helper()
	listening := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, opts, listening) }()
	select {
	case addr := <-listening:
		return addr, done
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never started listening")
	}
	panic("unreachable")
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

// TestRunServesAndDrains boots the real server on a random port, checks a
// live endpoint, then cancels the context and asserts a clean drain —
// the full SIGTERM path minus the signal.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, done := startRun(t, ctx, &options{addr: "127.0.0.1:0", grace: 5 * time.Second})

	if code, body := get(t, "http://"+addr+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, _ := get(t, "http://"+addr+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d before drain", code)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain within the grace period")
	}
}

// TestRunDrainOrdering: after SIGTERM, /readyz reports 503 while the
// listener is still accepting — the window load balancers need to stop
// routing before connections start failing.
func TestRunDrainOrdering(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, done := startRun(t, ctx, &options{
		addr:      "127.0.0.1:0",
		grace:     5 * time.Second,
		drainWait: 500 * time.Millisecond,
	})
	cancel() // the SIGTERM

	// Within the drain window the listener must still serve, and readyz
	// must already be 503.
	deadline := time.Now().Add(400 * time.Millisecond)
	sawNotReady := false
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err != nil {
			t.Fatalf("listener closed inside the drain window: %v", err)
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			sawNotReady = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawNotReady {
		t.Fatal("readyz never went 503 while the listener was still open")
	}
	// Liveness is unaffected by draining.
	if code, _ := get(t, "http://"+addr+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d during drain, liveness must stay 200", code)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after the drain window")
	}
}

// TestRunBadAddr: an unbindable address fails fast instead of hanging.
func TestRunBadAddr(t *testing.T) {
	err := run(context.Background(), &options{addr: "256.256.256.256:1", grace: time.Second})
	if err == nil {
		t.Fatal("expected listen error")
	}
}

// TestServePprof: the -pprof-addr listener serves the profiling index on
// its own port, and stopping it closes the listener.
func TestServePprof(t *testing.T) {
	stop, addr, err := servePprof("127.0.0.1:0", slog.New(slog.DiscardHandler))
	if err != nil {
		t.Fatal(err)
	}
	if code, body := get(t, "http://"+addr+"/debug/pprof/"); code != http.StatusOK ||
		!strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index = %d %q", code, body)
	}
	stop()
	if _, err := http.Get("http://" + addr + "/debug/pprof/"); err == nil {
		t.Error("pprof listener still serving after stop")
	}
}

// TestRunPprofOffServicePort: profiling endpoints never ride the service
// listener — with or without -pprof-addr, the API port answers 404 for
// /debug/pprof/. The pprof server itself is exercised by TestServePprof;
// here run() boots with a pprof listener to cover the startup/teardown
// path end to end.
func TestRunPprofOffServicePort(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, done := startRun(t, ctx, &options{
		addr:      "127.0.0.1:0",
		grace:     5 * time.Second,
		pprofAddr: "127.0.0.1:0",
	})
	if code, _ := get(t, "http://"+addr+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("service port serves /debug/pprof/ (status %d)", code)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain with a pprof listener attached")
	}
}

// TestRunBadPprofAddr: an unbindable -pprof-addr is a startup error, and
// the service listener it raced with is released.
func TestRunBadPprofAddr(t *testing.T) {
	err := run(context.Background(), &options{
		addr:      "127.0.0.1:0",
		grace:     time.Second,
		pprofAddr: "256.256.256.256:1",
	})
	if err == nil || !strings.Contains(err.Error(), "pprof") {
		t.Fatalf("err = %v, want pprof listen error", err)
	}
}

// TestRunMetricsProm: the daemon's /metrics endpoint negotiates the
// Prometheus text format on Accept: text/plain, and the exposition parses
// under the strict validator — the same check CI's curl smoke performs.
func TestRunMetricsProm(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, done := startRun(t, ctx, &options{addr: "127.0.0.1:0", grace: 5 * time.Second})
	defer func() { cancel(); <-done }()

	req, err := http.NewRequest("GET", "http://"+addr+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d %q", resp.StatusCode, body)
	}
	pm, err := testutil.ParseProm(string(body))
	if err != nil {
		t.Fatalf("prometheus exposition does not validate: %v", err)
	}
	if pm.Types["solve_latency_ms"] != "histogram" {
		t.Errorf("solve_latency_ms type = %q", pm.Types["solve_latency_ms"])
	}
	if _, ok := pm.Samples["traces_total"]; !ok {
		t.Error("traces_total missing from exposition")
	}
}
