package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"bufferkit/internal/server"
)

// TestRunServesAndDrains boots the real server on a random port, checks a
// live endpoint, then cancels the context and asserts a clean drain —
// the full SIGTERM path minus the signal.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	listening := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", server.Config{}, 5*time.Second, listening)
	}()
	var addr string
	select {
	case addr = <-listening:
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never started listening")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain within the grace period")
	}
}

// TestRunBadAddr: an unbindable address fails fast instead of hanging.
func TestRunBadAddr(t *testing.T) {
	err := run(context.Background(), "256.256.256.256:1", server.Config{}, time.Second)
	if err == nil {
		t.Fatal("expected listen error")
	}
}
