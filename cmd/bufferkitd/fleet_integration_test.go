package main

// Multi-process fleet integration test: build the real bufferkitd
// binary, boot a 3-node fleet, overload it at roughly twice its engine
// capacity, SIGKILL one node mid-stream, then heal it — asserting the
// fleet's survival contract end to end:
//
//   - zero lost requests: every solve returns a result or a typed API
//     error (429/503 with a hint), never a transport failure surfaced to
//     the caller,
//   - bounded tail latency under overload,
//   - the survivors detect the death and the healed node rejoins,
//   - the cache hit rate recovers after the heal: a repeated pass over
//     fresh nets is served hot.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bufferkit/client"
)

// buildDaemon compiles the real binary once into a test temp dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bufferkitd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// reserveAddrs grabs n distinct loopback ports by binding and releasing
// them. The tiny reuse race is acceptable in tests.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range n {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// fleetProc is one running bufferkitd node.
type fleetProc struct {
	cmd *exec.Cmd
	url string
}

// startNode launches node i of the fleet with fast probe/hedge knobs and
// a deliberately small engine pool so the test can overload it.
func startNode(t *testing.T, bin string, addrs, urls []string, i int) *fleetProc {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addrs[i],
		"-self", urls[i],
		"-peers", strings.Join(urls, ","),
		"-replicas", "2",
		"-probe-interval", "100ms",
		"-hedge-after", "50ms",
		"-concurrency", "2",
		"-timeout", "10s",
		"-queue-timeout", "5s",
		"-grace", "2s",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start node %d: %v", i, err)
	}
	p := &fleetProc{cmd: cmd, url: urls[i]}
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	})
	return p
}

// waitReady polls /readyz until it answers 200.
func waitReady(t *testing.T, url string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", url)
}

// peerCounts reads one node's peer_dead and peer_suspect gauges via the
// client's typed fleet endpoint (state strings, counted here).
func peerCounts(t *testing.T, url string) (dead, suspect int) {
	t.Helper()
	c, err := client.New(url)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Fleet(context.Background())
	if err != nil {
		return -1, -1 // node unreachable; caller keeps polling
	}
	for _, p := range info.Peers {
		switch p.State {
		case "dead":
			dead++
		case "suspect":
			suspect++
		}
	}
	return dead, suspect
}

// mintNet renames the template net so each name yields a distinct
// digest (and thus a distinct ring placement) with identical topology.
func mintNet(tmpl, name string) string {
	_, rest, ok := strings.Cut(tmpl, "\n")
	if !ok {
		panic("net template has no body")
	}
	return "net " + name + "\n" + rest
}

func TestFleetThreeNodeChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fleet test")
	}
	netTmpl, err := os.ReadFile("../../testdata/random12.net")
	if err != nil {
		t.Fatal(err)
	}
	lib, err := os.ReadFile("../../testdata/lib8.buf")
	if err != nil {
		t.Fatal(err)
	}

	bin := buildDaemon(t)
	addrs := reserveAddrs(t, 3)
	urls := make([]string, 3)
	for i, a := range addrs {
		urls[i] = "http://" + a
	}
	procs := make([]*fleetProc, 3)
	for i := range procs {
		procs[i] = startNode(t, bin, addrs, urls, i)
	}
	for _, u := range urls {
		waitReady(t, u, 10*time.Second)
	}

	// A fleet-aware client: digest-affinity routing over all three nodes,
	// quick retries, and a retry budget generous enough that the chaos
	// below is absorbed by failover, not budget exhaustion.
	c, err := client.New(urls[0],
		client.WithPeers(urls...),
		client.WithRetry(client.RetryPolicy{MaxAttempts: 4, BaseDelay: 25 * time.Millisecond, MaxDelay: 200 * time.Millisecond}),
		client.WithRetryBudget(1, 256),
	)
	if err != nil {
		t.Fatal(err)
	}
	solve := func(ctx context.Context, name string) (*client.SolveResult, error) {
		return c.Solve(ctx, client.SolveRequest{
			Net:     mintNet(string(netTmpl), name),
			Library: string(lib),
		})
	}

	// Phase 1 — overload at ~2x capacity (6 engine slots fleet-wide, 12
	// workers) and SIGKILL node 2 mid-stream. Every request must come
	// back as a result or a typed API error; transport failures surfaced
	// to the caller count as lost.
	const workers, perWorker = 12, 8
	var (
		lost      atomic.Int64
		shed      atomic.Int64
		ok        atomic.Int64
		mu        sync.Mutex
		latencies []time.Duration
	)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range perWorker {
				start := time.Now()
				_, err := solve(ctx, fmt.Sprintf("chaos-w%d-%d", w, i))
				elapsed := time.Since(start)
				var apiErr *client.APIError
				switch {
				case err == nil:
					ok.Add(1)
					mu.Lock()
					latencies = append(latencies, elapsed)
					mu.Unlock()
				case errors.As(err, &apiErr):
					shed.Add(1) // honest typed shed (429/503/...) — not lost
				default:
					lost.Add(1)
					t.Errorf("lost request chaos-w%d-%d: %v", w, i, err)
				}
			}
		}()
	}
	time.Sleep(300 * time.Millisecond) // let the stream build up in-flight load
	victim := 2
	procs[victim].cmd.Process.Kill()
	procs[victim].cmd.Wait()
	wg.Wait()
	t.Logf("overload+kill: %d ok, %d shed, %d lost", ok.Load(), shed.Load(), lost.Load())
	if lost.Load() != 0 {
		t.Fatalf("%d requests lost during node kill", lost.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no request succeeded under overload")
	}
	// Bounded tail: generous, but far below the 10s solve budget — the
	// point is that a dead peer costs a fast failover, not a timeout.
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if p99 := latencies[len(latencies)*99/100]; p99 > 8*time.Second {
		t.Fatalf("p99 latency %s under overload+kill, want < 8s", p99)
	}

	// Phase 2 — the survivors' failure detectors mark the victim dead.
	waitFor(t, 10*time.Second, "survivor marks victim dead", func() bool {
		dead, _ := peerCounts(t, urls[0])
		return dead >= 1
	})

	// Phase 3 — heal: restart the victim and wait until every node,
	// the healed one included, sees a fully alive fleet.
	procs[victim] = startNode(t, bin, addrs, urls, victim)
	waitReady(t, urls[victim], 10*time.Second)
	for _, u := range urls {
		waitFor(t, 15*time.Second, "fleet healthy at "+u, func() bool {
			dead, suspect := peerCounts(t, u)
			return dead == 0 && suspect == 0
		})
	}

	// Phase 4 — cache hit-rate recovery: two passes over fresh nets. Pass
	// A populates the (partly cold) fleet, pass B must be served hot.
	const healNets = 12
	for i := range healNets {
		if _, err := solve(ctx, fmt.Sprintf("heal-%d", i)); err != nil {
			t.Fatalf("heal pass A net %d: %v", i, err)
		}
	}
	hot := 0
	for i := range healNets {
		res, err := solve(ctx, fmt.Sprintf("heal-%d", i))
		if err != nil {
			t.Fatalf("heal pass B net %d: %v", i, err)
		}
		if res.Cached || res.Coalesced {
			hot++
		}
	}
	t.Logf("heal pass B: %d/%d served from cache", hot, healNets)
	if hot < healNets*3/4 {
		t.Fatalf("cache hit rate after heal = %d/%d, want >= 3/4", hot, healNets)
	}
}

// waitFor polls cond until true or the deadline, failing with what it
// was waiting on.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
