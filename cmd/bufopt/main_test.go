package main

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"bufferkit"
)

const testdata = "../../testdata/"

func bg() context.Context { return context.Background() }

func TestRunBatchDirectory(t *testing.T) {
	var out strings.Builder
	if err := runBatch(bg(), &out, testdata, "", 8, "new", "transient", "", 0, 2, true); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"line", "random12", "batch: 2/2 nets"} {
		if !strings.Contains(got, want) {
			t.Fatalf("batch output missing %q:\n%s", want, got)
		}
	}
}

// TestRunBatchAllAlgorithms: batch mode now dispatches through the
// algorithm registry, so every multi-type-capable algorithm works.
func TestRunBatchAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"lillis", "costslack"} {
		var out strings.Builder
		if err := runBatch(bg(), &out, testdata, "", 8, algo, "transient", "", 0, 2, true); err != nil {
			t.Fatalf("%s: %v\n%s", algo, err, out.String())
		}
		if !strings.Contains(out.String(), "batch: 2/2 nets") {
			t.Fatalf("%s: incomplete batch:\n%s", algo, out.String())
		}
	}
}

// TestRunBatchCanceled: a pre-canceled context stops the batch before any
// net completes and surfaces the cancellation as an error.
func TestRunBatchCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(bg())
	cancel()
	var out strings.Builder
	err := runBatch(ctx, &out, testdata, "", 8, "new", "transient", "", 0, 2, false)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(out.String(), "batch: 0/2 nets") {
		t.Fatalf("canceled batch still completed nets:\n%s", out.String())
	}
}

func TestRunBatchErrors(t *testing.T) {
	var out strings.Builder
	cases := []struct {
		name string
		err  string
		f    func() error
	}{
		{"empty dir", "no *.net files", func() error {
			return runBatch(bg(), &out, "..", "", 8, "new", "transient", "", 0, 0, false)
		}},
		{"bad prune", "unknown -prune", func() error {
			return runBatch(bg(), &out, testdata, "", 8, "new", "nope", "", 0, 0, false)
		}},
		{"bad algo", "unknown -algo", func() error {
			return runBatch(bg(), &out, testdata, "", 8, "nope", "transient", "", 0, 0, false)
		}},
		{"no library", "provide -lib", func() error {
			return runBatch(bg(), &out, testdata, "", 0, "new", "transient", "", 0, 0, false)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f()
			if err == nil || !strings.Contains(err.Error(), tc.err) {
				t.Fatalf("err = %v, want substring %q", err, tc.err)
			}
		})
	}
}

func TestRunNewAlgorithm(t *testing.T) {
	if err := run(bg(), io.Discard, testdata+"random12.net", testdata+"lib8.buf", 0, "new", "transient", "", 0, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"new", "lillis", "costslack"} {
		if err := run(bg(), io.Discard, testdata+"line.net", "", 8, algo, "transient", "", 0, false, true); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	// Both the historical alias and the registry name reach van Ginneken.
	for _, algo := range []string{"vg", "vanginneken"} {
		if err := run(bg(), io.Discard, testdata+"line.net", "", 1, algo, "transient", "", 0, false, true); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestRunDestructivePrune(t *testing.T) {
	if err := run(bg(), io.Discard, testdata+"line.net", "", 8, "new", "destructive", "", 0, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(bg())
	cancel()
	err := run(ctx, io.Discard, testdata+"line.net", "", 8, "new", "transient", "", 0, false, false)
	if err == nil || !errors.Is(err, bufferkit.ErrCanceled) {
		t.Fatalf("err = %v, want bufferkit.ErrCanceled", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		err  string
		f    func() error
	}{
		{"missing net", "-net is required", func() error {
			return run(bg(), io.Discard, "", "", 8, "new", "transient", "", 0, false, false)
		}},
		{"no library", "provide -lib", func() error {
			return run(bg(), io.Discard, testdata+"line.net", "", 0, "new", "transient", "", 0, false, false)
		}},
		{"both libs", "mutually exclusive", func() error {
			return run(bg(), io.Discard, testdata+"line.net", testdata+"lib8.buf", 4, "new", "transient", "", 0, false, false)
		}},
		{"bad algo", "unknown -algo", func() error {
			return run(bg(), io.Discard, testdata+"line.net", "", 8, "nope", "transient", "", 0, false, false)
		}},
		{"bad prune", "unknown -prune", func() error {
			return run(bg(), io.Discard, testdata+"line.net", "", 8, "new", "nope", "", 0, false, false)
		}},
		{"vg multi-type", "single-type", func() error {
			return run(bg(), io.Discard, testdata+"line.net", "", 8, "vg", "transient", "", 0, false, false)
		}},
		{"missing file", "no such file", func() error {
			return run(bg(), io.Discard, testdata+"missing.net", "", 8, "new", "transient", "", 0, false, false)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f()
			if err == nil || !strings.Contains(err.Error(), tc.err) {
				t.Fatalf("err = %v, want substring %q", err, tc.err)
			}
		})
	}
}

// TestRunYield: the -yield mode reports the sweep header, the slack
// distribution, the yield line and the placement summary.
func TestRunYield(t *testing.T) {
	var out strings.Builder
	o := yieldOpts{samples: 16, sigma: 0.08, seed: 1, robust: true, corners: true, placement: true}
	if err := runYield(bg(), &out, testdata+"random12.net", testdata+"lib8.buf", 0, "new", "transient", "", 0, o); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"yield sweep: 21 corners", "slack: mean", "optimal yield:",
		"distinct optima", "robust choice", "buffers:",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("yield output missing %q:\n%s", want, got)
		}
	}
}

// TestRunYieldDeterministic: two identical invocations print identical
// reports apart from the runtime line.
func TestRunYieldDeterministic(t *testing.T) {
	render := func() string {
		var out strings.Builder
		o := yieldOpts{samples: 24, sigma: 0.1, seed: 7}
		if err := runYield(bg(), &out, testdata+"random12.net", "", 8, "new", "transient", "", 0, o); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(out.String(), "\n")
		kept := lines[:0]
		for _, l := range lines {
			if !strings.Contains(l, "runtime:") {
				kept = append(kept, l)
			}
		}
		return strings.Join(kept, "\n")
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("yield reports differ across identical seeds:\n--- a\n%s\n--- b\n%s", a, b)
	}
}

// TestRunYieldErrors covers the yield-mode flag validation paths.
func TestRunYieldErrors(t *testing.T) {
	cases := []struct {
		name string
		err  string
		o    yieldOpts
		algo string
	}{
		{"negative samples", "nonnegative", yieldOpts{samples: -1}, "new"},
		{"bad sigma", "must be in", yieldOpts{samples: 4, sigma: 0.9}, "new"},
		{"wrong algorithm", "not supported", yieldOpts{samples: 4, sigma: 0.1}, "lillis"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runYield(bg(), io.Discard, testdata+"random12.net", "", 8, tc.algo, "transient", "", 0, tc.o)
			if err == nil || !strings.Contains(err.Error(), tc.err) {
				t.Fatalf("err = %v, want substring %q", err, tc.err)
			}
		})
	}
}
