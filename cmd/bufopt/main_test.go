package main

import (
	"strings"
	"testing"
)

const testdata = "../../testdata/"

func TestRunBatchDirectory(t *testing.T) {
	var out strings.Builder
	if err := runBatch(&out, testdata, "", 8, "transient", 2, true); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"line", "random12", "batch: 2/2 nets"} {
		if !strings.Contains(got, want) {
			t.Fatalf("batch output missing %q:\n%s", want, got)
		}
	}
}

func TestRunBatchErrors(t *testing.T) {
	var out strings.Builder
	cases := []struct {
		name string
		err  string
		f    func() error
	}{
		{"empty dir", "no *.net files", func() error { return runBatch(&out, "..", "", 8, "transient", 0, false) }},
		{"bad prune", "unknown -prune", func() error { return runBatch(&out, testdata, "", 8, "nope", 0, false) }},
		{"no library", "provide -lib", func() error { return runBatch(&out, testdata, "", 0, "transient", 0, false) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f()
			if err == nil || !strings.Contains(err.Error(), tc.err) {
				t.Fatalf("err = %v, want substring %q", err, tc.err)
			}
		})
	}
}

func TestRunNewAlgorithm(t *testing.T) {
	if err := run(testdata+"random12.net", testdata+"lib8.buf", 0, "new", "transient", true, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"new", "lillis"} {
		if err := run(testdata+"line.net", "", 8, algo, "transient", false, true); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	if err := run(testdata+"line.net", "", 1, "vg", "transient", false, true); err != nil {
		t.Fatalf("vg: %v", err)
	}
}

func TestRunDestructivePrune(t *testing.T) {
	if err := run(testdata+"line.net", "", 8, "new", "destructive", false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		err  string
		f    func() error
	}{
		{"missing net", "-net is required", func() error { return run("", "", 8, "new", "transient", false, false) }},
		{"no library", "provide -lib", func() error { return run(testdata+"line.net", "", 0, "new", "transient", false, false) }},
		{"both libs", "mutually exclusive", func() error {
			return run(testdata+"line.net", testdata+"lib8.buf", 4, "new", "transient", false, false)
		}},
		{"bad algo", "unknown -algo", func() error { return run(testdata+"line.net", "", 8, "nope", "transient", false, false) }},
		{"bad prune", "unknown -prune", func() error { return run(testdata+"line.net", "", 8, "new", "nope", false, false) }},
		{"vg multi-type", "single-type", func() error { return run(testdata+"line.net", "", 8, "vg", "transient", false, false) }},
		{"missing file", "no such file", func() error { return run(testdata+"missing.net", "", 8, "new", "transient", false, false) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f()
			if err == nil || !strings.Contains(err.Error(), tc.err) {
				t.Fatalf("err = %v, want substring %q", err, tc.err)
			}
		})
	}
}
