package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bufferkit"
)

// writeChipFixture generates a contended instance and writes it where
// runChip can load it.
func writeChipFixture(t *testing.T) string {
	t.Helper()
	inst := bufferkit.GenerateChip(bufferkit.ChipGenOpts{
		W: 10, H: 10, Nets: 40, Capacity: 2, Contention: 0.7, Seed: 3,
	})
	path := filepath.Join(t.TempDir(), "chip.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bufferkit.WriteChipInstance(f, inst); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunChip(t *testing.T) {
	path := writeChipFixture(t)
	var out strings.Builder
	err := runChip(bg(), &out, path, "", 6, "new", "transient", "", 0, chipOpts{verify: true})
	if err != nil {
		t.Fatalf("runChip: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"chip: 40 nets on a 10x10 site grid", "round ", "feasible: true", "verified: every placement"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunChipFlagConflicts(t *testing.T) {
	path := writeChipFixture(t)
	// An explicit tiny budget still verifies: the repair pass delivers a
	// feasible allocation.
	var out strings.Builder
	err := runChip(bg(), &out, path, "", 6, "new", "transient", "", 0,
		chipOpts{rounds: 1, verify: true})
	if err != nil {
		t.Fatalf("runChip rounds=1: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "repair") {
		t.Fatalf("1-round budget produced no repair round:\n%s", out.String())
	}

	if err := runChip(bg(), io.Discard, filepath.Join(t.TempDir(), "missing.json"),
		"", 6, "new", "transient", "", 0, chipOpts{}); err == nil {
		t.Fatal("missing instance file accepted")
	}
}

// TestRunWithReduction: -reduce -1 (dominance-only) composes with -verify —
// the remapped placement must reproduce the reported slack against the
// caller's full library.
func TestRunWithReduction(t *testing.T) {
	if err := run(bg(), io.Discard, testdata+"random12.net", testdata+"lib8.buf",
		0, "new", "transient", "", -1, true, true); err != nil {
		t.Fatal(err)
	}
	// Clustering to 2 types is lossy but must still verify self-consistently.
	if err := run(bg(), io.Discard, testdata+"random12.net", testdata+"lib8.buf",
		0, "new", "transient", "", 2, false, true); err != nil {
		t.Fatal(err)
	}
}
