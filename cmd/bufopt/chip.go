package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"bufferkit"
)

// chipOpts bundles the -chip mode flags.
type chipOpts struct {
	rounds   int
	step     float64
	decay    float64
	capacity int
	workers  int
	verify   bool
}

// runChip solves a multi-net chip instance by price-and-resolve, streaming
// one line per pricing round and reporting the final allocation. With
// -verify the per-net placements are re-checked against the Elmore oracle
// and the site usage against every capacity.
func runChip(ctx context.Context, w io.Writer, chipPath, libPath string, genLib int, algo, prune, backend string, reduce int, o chipOpts) error {
	f, err := os.Open(chipPath)
	if err != nil {
		return err
	}
	inst, err := bufferkit.ParseChipInstance(f)
	f.Close()
	if err != nil {
		return err
	}
	lib, err := loadLibrary(libPath, genLib)
	if err != nil {
		return err
	}

	extra := []bufferkit.Option{
		bufferkit.WithWorkers(o.workers),
		bufferkit.WithChipProgress(func(r bufferkit.ChipRound) {
			kind := "price"
			if r.Repair {
				kind = "repair"
			}
			fmt.Fprintf(w, "round %3d %-6s resolved %5d  overflow %6d on %4d sites (max %3d)  buffers %6d  worst %10.2f ps\n",
				r.Round, kind, r.Resolved, r.Overflow, r.OverflowSites, r.MaxOverflow, r.Buffers, r.WorstSlack)
		}),
	}
	if o.rounds > 0 {
		extra = append(extra, bufferkit.WithChipRounds(o.rounds))
	}
	if o.step > 0 {
		extra = append(extra, bufferkit.WithChipStep(o.step))
	}
	if o.decay > 0 {
		extra = append(extra, bufferkit.WithChipStepDecay(o.decay))
	}
	if o.capacity > 0 {
		extra = append(extra, bufferkit.WithChipCapacity(o.capacity))
	}
	solver, err := newSolver(lib, algo, prune, backend, reduce, extra...)
	if err != nil {
		return err
	}
	defer solver.Close()

	caps := inst.Capacities(o.capacity)
	totalCap := 0
	for _, c := range caps {
		totalCap += c
	}
	fmt.Fprintf(w, "chip: %d nets on a %dx%d site grid (%d blockages, total capacity %d, %d buffer types, algo %s)\n",
		len(inst.Nets), inst.Grid.W, inst.Grid.H, len(inst.Blockages), totalCap, len(lib), solver.Algorithm())

	start := time.Now()
	res, err := solver.SolveChip(ctx, inst)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Fprintf(w, "feasible: %v in %d rounds   buffers: %d   total slack: %.2f ps   worst: %.2f ps (net %d %q)\n",
		res.Feasible, len(res.Rounds), res.Buffers, res.TotalSlack, res.WorstSlack, res.WorstNet, inst.Nets[res.WorstNet].Name)
	fmt.Fprintf(w, "runtime: %s (%.1f nets/s per round)\n",
		elapsed, float64(len(inst.Nets)*len(res.Rounds))/elapsed.Seconds())

	if o.verify {
		usage := make([]int, len(caps))
		for i := range inst.Nets {
			net := &inst.Nets[i]
			if _, err := verifyPlacement(net.Tree, lib, res.Placements[i], res.Slacks[i], net.Driver); err != nil {
				return fmt.Errorf("net %d (%q): %w", i, net.Name, err)
			}
			for v, s := range net.Site {
				if s != bufferkit.NoSite && res.Placements[i][v] != bufferkit.NoBuffer {
					usage[s]++
				}
			}
		}
		for s, u := range usage {
			if u > caps[s] {
				return fmt.Errorf("verification failed: site %d holds %d buffers over capacity %d", s, u, caps[s])
			}
		}
		fmt.Fprintf(w, "verified: every placement reproduces its slack and every site respects its capacity\n")
	}
	return nil
}
