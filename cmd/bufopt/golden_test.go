package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"bufferkit"
)

// -update rewrites the golden files instead of comparing against them:
//
//	go test ./cmd/bufopt -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

var (
	runtimeRe = regexp.MustCompile(`runtime: \S+`)
	totalsRe  = regexp.MustCompile(`\S+ total \([0-9.]+ nets/s\)`)
)

// scrub replaces the wall-clock parts of bufopt output (runtimes, nets/s)
// with fixed placeholders so golden comparisons only see the stable text.
func scrub(s string) string {
	s = runtimeRe.ReplaceAllString(s, "runtime: <TIME>")
	s = totalsRe.ReplaceAllString(s, "<TIME> total (<RATE> nets/s)")
	return s
}

// checkGolden compares got against testdata/golden/<name>, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (run with -update after intentional changes)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestGoldenSingleNet pins the complete single-net report — header, stats,
// slack, verification, placement listing — for the default algorithm.
func TestGoldenSingleNet(t *testing.T) {
	var out strings.Builder
	if err := run(bg(), &out, testdata+"line.net", testdata+"lib8.buf", 0, "new", "transient", "", 0, true, true); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "single_line.golden", scrub(out.String()))
}

// TestGoldenSingleCostSlack pins the cost–slack frontier formatting.
func TestGoldenSingleCostSlack(t *testing.T) {
	var out strings.Builder
	if err := run(bg(), &out, testdata+"line.net", testdata+"lib8.buf", 0, "costslack", "transient", "", 0, false, true); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "single_line_costslack.golden", scrub(out.String()))
}

// TestGoldenBatch pins batch-mode output. Batch lines stream through
// StreamOrdered, so the file order (and therefore the golden text) is
// stable no matter how the workers are scheduled.
func TestGoldenBatch(t *testing.T) {
	var out strings.Builder
	if err := runBatch(bg(), &out, testdata, testdata+"lib8.buf", 0, "new", "transient", "", 0, 2, true); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "batch.golden", scrub(out.String()))
}

// TestBatchOrderDeterministic is the regression test for the completion-
// order bug: with many same-size nets racing on many workers, output lines
// must still appear in sorted-path order, identically across runs.
func TestBatchOrderDeterministic(t *testing.T) {
	dir := t.TempDir()
	var names []string
	// Reverse-alphabetical creation order so any accidental dependence on
	// creation or completion order breaks the sorted expectation.
	for i := 7; i >= 0; i-- {
		name := fmt.Sprintf("net%c", 'a'+i)
		tr := bufferkit.RandomNet(bufferkit.NetOpts{Sinks: 4, Seed: int64(i)})
		f, err := os.Create(filepath.Join(dir, name+".net"))
		if err != nil {
			t.Fatal(err)
		}
		err = bufferkit.WriteNet(f, &bufferkit.Net{Name: name, Tree: tr, Driver: bufferkit.Driver{R: 0.2, K: 15}})
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}

	runOnce := func() string {
		var out strings.Builder
		if err := runBatch(bg(), &out, dir, "", 8, "new", "transient", "", 0, 8, true); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	first := runOnce()

	// Lines must follow sorted-path order: neta, netb, … neth.
	lines := strings.Split(strings.TrimSpace(first), "\n")
	if len(lines) != len(names)+1 { // one per net + totals
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(names)+1, first)
	}
	for i := 0; i < len(names); i++ {
		want := fmt.Sprintf("net%c", 'a'+i)
		if !strings.HasPrefix(lines[i], want) {
			t.Fatalf("line %d = %q, want net %q first: batch output is not in input order", i, lines[i], want)
		}
	}
	for round := 0; round < 3; round++ {
		if again := runOnce(); scrub(again) != scrub(first) {
			t.Fatalf("batch output differs between runs:\n--- first ---\n%s\n--- again ---\n%s", first, again)
		}
	}
}
