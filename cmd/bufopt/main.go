// Command bufopt performs optimal buffer insertion on a net file, or on
// every net file in a directory.
//
// Usage:
//
//	bufopt -net design.net [-lib lib.buf | -gen-lib 16] [flags]
//	bufopt -batch designs/ -gen-lib 16 -j 8 [-algo new]
//
// The net and library formats are documented in the repository README and
// in the internal netlist package; see testdata/ for samples. The tool
// prints the optimal slack, the buffer count and runtime, and optionally
// the placement. In batch mode every *.net file in the directory is
// optimized concurrently by a bufferkit.Solver on -j workers (default
// GOMAXPROCS), with one line streamed per net in sorted-path order.
//
// -algo selects any algorithm registered with the bufferkit facade
// ("new", "core", "core-soa", "lillis", "vanginneken"/"vg", "costslack")
// and -backend pins the candidate-list representation ("list" or "soa";
// results are bit-identical, see DESIGN.md §11). Ctrl-C cancels a run
// gracefully: in-flight nets stop at the next per-vertex checkpoint and
// completed results are still reported.
//
// -yield switches single-net mode to Monte Carlo yield analysis: the net
// is re-optimized under -samples seeded corners perturbing library R/K/Cin
// and wire r/c by -sigma (plus the deterministic process corners with
// -corners), reporting the slack distribution, the yield at -yield-target,
// and — with -robust — the placement maximizing yield across corners
// instead of the nominal optimum (DESIGN.md §12).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"bufferkit"
)

func main() {
	var (
		netPath   = flag.String("net", "", "net file (single-net mode)")
		batchDir  = flag.String("batch", "", "directory of *.net files (batch mode)")
		jobs      = flag.Int("j", 0, "batch worker count (0 = GOMAXPROCS)")
		libPath   = flag.String("lib", "", "buffer library file")
		genLib    = flag.Int("gen-lib", 0, "generate a paper-range library of this size instead of -lib")
		algo      = flag.String("algo", bufferkit.AlgoNew, "algorithm: "+strings.Join(bufferkit.Algorithms(), ", ")+" (vg = vanginneken)")
		prune     = flag.String("prune", "transient", "convex pruning for -algo new: transient (exact) or destructive (paper-literal)")
		backend   = flag.String("backend", "", "candidate-list backend for -algo new/lillis: list, soa, or empty for the default")
		placement = flag.Bool("placement", false, "print the buffer placement")
		verify    = flag.Bool("verify", true, "re-check the result against the exact Elmore oracle")
		reduce    = flag.Int("reduce", 0, "library reduction: -1 dominance-only (bit-exact), k>0 cluster to k types, 0 off")

		chipPath = flag.String("chip", "", "chip instance JSON (chip mode: multi-net price-and-resolve)")
		rounds   = flag.Int("rounds", 0, "-chip: pricing-round budget (0 = default)")
		chipStep = flag.Float64("chip-step", 0, "-chip: initial subgradient step, ps per unit overflow (0 = default)")
		chipDec  = flag.Float64("chip-decay", 0, "-chip: per-round step decay in (0,1] (0 = default)")
		chipCap  = flag.Int("chip-capacity", 0, "-chip: override per-site capacity (0 = instance's)")

		yield       = flag.Bool("yield", false, "Monte Carlo yield analysis instead of a single nominal solve")
		samples     = flag.Int("samples", 64, "-yield: number of Monte Carlo corners")
		sigma       = flag.Float64("sigma", 0.05, "-yield: relative sigma of the corner sampler")
		seed        = flag.Int64("seed", 1, "-yield: corner sampler seed")
		yieldTarget = flag.Float64("yield-target", 0, "-yield: slack threshold (ps) a corner must meet to yield")
		robust      = flag.Bool("robust", false, "-yield: select the placement maximizing yield across corners")
		corners     = flag.Bool("corners", false, "-yield: also evaluate the deterministic process corner set")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM cancel the context; the solvers abort at their next
	// per-vertex checkpoint and bufopt exits after reporting what finished.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch {
	case *batchDir != "" && *netPath != "":
		err = fmt.Errorf("-net and -batch are mutually exclusive")
	case *chipPath != "" && (*batchDir != "" || *netPath != "" || *yield):
		err = fmt.Errorf("-chip is mutually exclusive with -net, -batch and -yield")
	case *batchDir != "" && *placement:
		err = fmt.Errorf("-placement is not supported with -batch")
	case *batchDir != "" && *yield:
		err = fmt.Errorf("-yield is not supported with -batch")
	case *chipPath != "":
		err = runChip(ctx, os.Stdout, *chipPath, *libPath, *genLib, *algo, *prune, *backend, *reduce, chipOpts{
			rounds: *rounds, step: *chipStep, decay: *chipDec, capacity: *chipCap,
			workers: *jobs, verify: *verify,
		})
	case *batchDir != "":
		err = runBatch(ctx, os.Stdout, *batchDir, *libPath, *genLib, *algo, *prune, *backend, *reduce, *jobs, *verify)
	case *yield:
		err = runYield(ctx, os.Stdout, *netPath, *libPath, *genLib, *algo, *prune, *backend, *reduce, yieldOpts{
			samples: *samples, sigma: *sigma, seed: *seed, target: *yieldTarget,
			robust: *robust, corners: *corners, placement: *placement, workers: *jobs,
		})
	default:
		err = run(ctx, os.Stdout, *netPath, *libPath, *genLib, *algo, *prune, *backend, *reduce, *placement, *verify)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bufopt:", err)
		os.Exit(1)
	}
}

// loadLibrary resolves the -lib / -gen-lib flag pair.
func loadLibrary(libPath string, genLib int) (bufferkit.Library, error) {
	switch {
	case libPath != "" && genLib != 0:
		return nil, fmt.Errorf("-lib and -gen-lib are mutually exclusive")
	case libPath != "":
		lf, err := os.Open(libPath)
		if err != nil {
			return nil, err
		}
		defer lf.Close()
		return bufferkit.ParseLibrary(lf)
	case genLib > 0:
		return bufferkit.GenerateLibrary(genLib), nil
	}
	return nil, fmt.Errorf("provide -lib <file> or -gen-lib <size>")
}

func parsePrune(prune string) (bufferkit.PruneMode, error) {
	switch prune {
	case "transient":
		return bufferkit.PruneTransient, nil
	case "destructive":
		return bufferkit.PruneDestructive, nil
	}
	return 0, fmt.Errorf("unknown -prune %q", prune)
}

// parseAlgo resolves the -algo flag against the algorithm registry,
// accepting "vg" as the historical alias for "vanginneken".
func parseAlgo(algo string) (string, error) {
	if algo == "vg" {
		algo = bufferkit.AlgoVanGinneken
	}
	for _, name := range bufferkit.Algorithms() {
		if name == algo {
			return algo, nil
		}
	}
	return "", fmt.Errorf("unknown -algo %q (have %s)", algo, strings.Join(bufferkit.Algorithms(), ", "))
}

// newSolver assembles the Solver all bufopt modes share.
func newSolver(lib bufferkit.Library, algo, prune, backend string, reduce int, extra ...bufferkit.Option) (*bufferkit.Solver, error) {
	name, err := parseAlgo(algo)
	if err != nil {
		return nil, err
	}
	mode, err := parsePrune(prune)
	if err != nil {
		return nil, err
	}
	opts := []bufferkit.Option{
		bufferkit.WithLibrary(lib),
		bufferkit.WithAlgorithm(name),
		bufferkit.WithPruneMode(mode),
		bufferkit.WithBackend(backend),
	}
	if reduce != 0 {
		opts = append(opts, bufferkit.WithLibraryReduction(reduce))
	}
	return bufferkit.NewSolver(append(opts, extra...)...)
}

func run(ctx context.Context, w io.Writer, netPath, libPath string, genLib int, algo, prune, backend string, reduce int, placement, verify bool) error {
	if netPath == "" {
		return fmt.Errorf("-net is required")
	}
	nf, err := os.Open(netPath)
	if err != nil {
		return err
	}
	defer nf.Close()
	net, err := bufferkit.ParseNet(nf)
	if err != nil {
		return err
	}

	lib, err := loadLibrary(libPath, genLib)
	if err != nil {
		return err
	}
	solver, err := newSolver(lib, algo, prune, backend, reduce, bufferkit.WithDriver(net.Driver))
	if err != nil {
		return err
	}
	defer solver.Close()

	t := net.Tree
	fmt.Fprintf(w, "net: %s  (%d vertices, %d sinks, %d buffer positions, %d buffer types, algo %s)\n",
		orDefault(net.Name, netPath), t.Len(), t.NumSinks(), t.NumBufferPositions(), len(lib), solver.Algorithm())

	start := time.Now()
	res, err := solver.Run(ctx, t)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	switch solver.Algorithm() {
	case bufferkit.AlgoNew:
		fmt.Fprintf(w, "stats: max list %d, avg hull %.1f, betas kept %d/%d\n",
			res.Stats.MaxListLen,
			avg(res.Stats.SumHullLen, res.Stats.Positions),
			res.Stats.BetasKept, res.Stats.BetasGenerated)
	case bufferkit.AlgoCostSlack:
		fmt.Fprintln(w, "cost–slack frontier:")
		for _, p := range res.Frontier {
			fmt.Fprintf(w, "  cost %4d  slack %12.4f ps  buffers %4d\n", p.Cost, p.Slack, p.Placement.Count())
		}
	}

	unbuf, err := bufferkit.Evaluate(t, lib, bufferkit.NewPlacement(t.Len()), net.Driver)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "slack: %.4f ps (unbuffered %.4f ps, improvement %.4f ps)\n", res.Slack, unbuf.Slack, res.Slack-unbuf.Slack)
	fmt.Fprintf(w, "buffers: %d   cost: %d   runtime: %s\n", res.Placement.Count(), res.Placement.Cost(lib), elapsed)

	if verify {
		chk, err := verifyPlacement(t, lib, res.Placement, res.Slack, net.Driver)
		if err != nil {
			return err
		}
		path := chk.CriticalPath(t)
		fmt.Fprintf(w, "verified: placement reproduces the reported slack under the Elmore oracle\n")
		fmt.Fprintf(w, "critical path: %d vertices to sink %d (arrival %.2f ps)\n",
			len(path), chk.CriticalSink, chk.Arrival[chk.CriticalSink])
	}

	if placement {
		for v, b := range res.Placement {
			if b != bufferkit.NoBuffer {
				name := t.Verts[v].Name
				if name == "" {
					name = fmt.Sprintf("v%d", v)
				}
				fmt.Fprintf(w, "  %s: %s\n", name, lib[b].Name)
			}
		}
	}
	return nil
}

// yieldOpts bundles the -yield mode flags.
type yieldOpts struct {
	samples   int
	sigma     float64
	seed      int64
	target    float64
	robust    bool
	corners   bool
	placement bool
	workers   int
}

// runYield runs Monte Carlo yield analysis on one net, reporting the slack
// distribution across corners, the yield at the target, and the chosen
// placement.
func runYield(ctx context.Context, w io.Writer, netPath, libPath string, genLib int, algo, prune, backend string, reduce int, o yieldOpts) error {
	if netPath == "" {
		return fmt.Errorf("-net is required")
	}
	nf, err := os.Open(netPath)
	if err != nil {
		return err
	}
	defer nf.Close()
	net, err := bufferkit.ParseNet(nf)
	if err != nil {
		return err
	}
	lib, err := loadLibrary(libPath, genLib)
	if err != nil {
		return err
	}
	extra := []bufferkit.Option{
		bufferkit.WithDriver(net.Driver),
		bufferkit.WithSamples(o.samples),
		bufferkit.WithSigma(o.sigma),
		bufferkit.WithVariationSeed(o.seed),
		bufferkit.WithYieldTarget(o.target),
		bufferkit.WithRobustPlacement(o.robust),
		bufferkit.WithWorkers(o.workers),
	}
	if o.corners {
		extra = append(extra, bufferkit.WithCorners(bufferkit.ProcessCorners()[1:]))
	}
	solver, err := newSolver(lib, algo, prune, backend, reduce, extra...)
	if err != nil {
		return err
	}
	defer solver.Close()

	t := net.Tree
	fmt.Fprintf(w, "net: %s  (%d vertices, %d sinks, %d buffer positions, %d buffer types, algo %s)\n",
		orDefault(net.Name, netPath), t.Len(), t.NumSinks(), t.NumBufferPositions(), len(lib), solver.Algorithm())
	fmt.Fprintf(w, "yield sweep: %d corners (sigma %.3f, seed %d), target %.2f ps\n",
		o.cornerCount(), o.sigma, o.seed, o.target)

	start := time.Now()
	res, err := solver.SolveYield(ctx, t)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	d := res.Dist
	fmt.Fprintf(w, "slack: mean %.4f  std %.4f  min %.4f  p5 %.4f  p50 %.4f  p95 %.4f  max %.4f ps\n",
		d.Mean, d.Std, d.Min, d.P5, d.P50, d.P95, d.Max)
	fmt.Fprintf(w, "worst corner: %s (slack %.4f ps, critical sink %d)\n",
		orDefault(res.Samples[res.WorstSample].Corner.Name, "?"),
		res.Samples[res.WorstSample].Slack, res.Samples[res.WorstSample].CriticalSink)
	fmt.Fprintf(w, "optimal yield: %.4f (re-optimized per corner)\n", res.OptimalYield)
	mode := "nominal"
	if res.Robust {
		mode = "robust"
	}
	fmt.Fprintf(w, "placements: %d distinct optima; %s choice #%d  yield %.4f  worst %.4f ps  cost %d\n",
		len(res.Placements), mode, res.Chosen, res.Yield, res.Placements[res.Chosen].WorstSlack,
		res.Placements[res.Chosen].Cost)
	fmt.Fprintf(w, "buffers: %d   runtime: %s\n", res.Placement.Count(), elapsed)

	if o.placement {
		for v, b := range res.Placement {
			if b != bufferkit.NoBuffer {
				name := t.Verts[v].Name
				if name == "" {
					name = fmt.Sprintf("v%d", v)
				}
				fmt.Fprintf(w, "  %s: %s\n", name, lib[b].Name)
			}
		}
	}
	return nil
}

// cornerCount is the number of corners the sweep evaluates (nominal +
// named corners + samples), for the header line.
func (o yieldOpts) cornerCount() int {
	n := 1 + o.samples
	if o.corners {
		n += len(bufferkit.ProcessCorners()) - 1
	}
	return n
}

// runBatch optimizes every *.net file in dir concurrently via
// Solver.StreamOrdered, printing one summary line per net plus totals.
// Lines appear in sorted-path order regardless of which worker finishes
// first, so batch output is deterministic across runs. Cancellation
// (Ctrl-C) stops cleanly: completed nets stay reported and the totals line
// says how far the batch got.
func runBatch(ctx context.Context, w io.Writer, dir, libPath string, genLib int, algo, prune, backend string, reduce, jobs int, verify bool) error {
	lib, err := loadLibrary(libPath, genLib)
	if err != nil {
		return err
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.net"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return fmt.Errorf("no *.net files in %q", dir)
	}

	nets := make([]*bufferkit.Net, len(paths))
	trees := make([]*bufferkit.Tree, len(paths))
	drivers := make([]bufferkit.Driver, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		nets[i], err = bufferkit.ParseNet(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		trees[i] = nets[i].Tree
		drivers[i] = nets[i].Driver
	}

	solver, err := newSolver(lib, algo, prune, backend, reduce,
		bufferkit.WithDrivers(drivers),
		bufferkit.WithWorkers(jobs),
	)
	if err != nil {
		return err
	}

	buffers := 0
	done := 0
	failed := 0
	start := time.Now()
	for res, err := range solver.StreamOrdered(ctx, trees) {
		if res.Index < 0 {
			return err
		}
		name := orDefault(nets[res.Index].Name, paths[res.Index])
		if err != nil {
			fmt.Fprintf(w, "%-24s FAILED: %v\n", name, err)
			failed++
			continue
		}
		if verify {
			if _, err := verifyPlacement(trees[res.Index], lib, res.Placement, res.Slack, drivers[res.Index]); err != nil {
				fmt.Fprintf(w, "%-24s FAILED: %v\n", name, err)
				failed++
				continue
			}
		}
		fmt.Fprintf(w, "%-24s slack %12.4f ps   buffers %5d   candidates %5d\n",
			name, res.Slack, res.Placement.Count(), res.Candidates)
		buffers += res.Placement.Count()
		done++
	}
	elapsed := time.Since(start)
	fmt.Fprintf(w, "batch: %d/%d nets, %d buffers, %s total (%.2f nets/s)\n",
		done, len(paths), buffers, elapsed, float64(done)/elapsed.Seconds())
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("canceled after %d of %d nets: %w", done+failed, len(paths), err)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d nets failed", failed, len(paths))
	}
	return nil
}

// verifyPlacement re-checks a reported placement and slack against the
// exact Elmore oracle, returning the oracle's timing on success.
func verifyPlacement(t *bufferkit.Tree, lib bufferkit.Library, plc bufferkit.Placement, slack float64, drv bufferkit.Driver) (*bufferkit.TimingResult, error) {
	chk, err := bufferkit.Evaluate(t, lib, plc, drv)
	if err != nil {
		return nil, fmt.Errorf("verification failed: %w", err)
	}
	if d := chk.Slack - slack; d > 1e-6 || d < -1e-6 {
		return nil, fmt.Errorf("verification failed: oracle slack %.6f != reported %.6f", chk.Slack, slack)
	}
	if len(chk.PolarityViolations) > 0 {
		return nil, fmt.Errorf("verification failed: polarity violations at %v", chk.PolarityViolations)
	}
	return chk, nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func avg(sum, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
