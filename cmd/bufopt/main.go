// Command bufopt performs optimal buffer insertion on a net file.
//
// Usage:
//
//	bufopt -net design.net [-lib lib.buf | -gen-lib 16] [flags]
//
// The net format is documented in the repository README and in the internal
// netlist package; see testdata/ for samples. The tool prints the optimal
// slack, the buffer count and runtime, and optionally the placement.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bufferkit"
)

func main() {
	var (
		netPath   = flag.String("net", "", "net file (required)")
		libPath   = flag.String("lib", "", "buffer library file")
		genLib    = flag.Int("gen-lib", 0, "generate a paper-range library of this size instead of -lib")
		algo      = flag.String("algo", "new", "algorithm: new (O(bn²)), lillis (O(b²n²)), vg (1 type, O(n²))")
		prune     = flag.String("prune", "transient", "convex pruning for -algo new: transient (exact) or destructive (paper-literal)")
		placement = flag.Bool("placement", false, "print the buffer placement")
		verify    = flag.Bool("verify", true, "re-check the result against the exact Elmore oracle")
	)
	flag.Parse()
	if err := run(*netPath, *libPath, *genLib, *algo, *prune, *placement, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "bufopt:", err)
		os.Exit(1)
	}
}

func run(netPath, libPath string, genLib int, algo, prune string, placement, verify bool) error {
	if netPath == "" {
		return fmt.Errorf("-net is required")
	}
	nf, err := os.Open(netPath)
	if err != nil {
		return err
	}
	defer nf.Close()
	net, err := bufferkit.ParseNet(nf)
	if err != nil {
		return err
	}

	var lib bufferkit.Library
	switch {
	case libPath != "" && genLib != 0:
		return fmt.Errorf("-lib and -gen-lib are mutually exclusive")
	case libPath != "":
		lf, err := os.Open(libPath)
		if err != nil {
			return err
		}
		defer lf.Close()
		if lib, err = bufferkit.ParseLibrary(lf); err != nil {
			return err
		}
	case genLib > 0:
		lib = bufferkit.GenerateLibrary(genLib)
	default:
		return fmt.Errorf("provide -lib <file> or -gen-lib <size>")
	}

	t := net.Tree
	fmt.Printf("net: %s  (%d vertices, %d sinks, %d buffer positions, %d buffer types)\n",
		orDefault(net.Name, netPath), t.Len(), t.NumSinks(), t.NumBufferPositions(), len(lib))

	var (
		slack float64
		plc   bufferkit.Placement
	)
	start := time.Now()
	switch algo {
	case "new":
		opt := bufferkit.Options{Driver: net.Driver}
		switch prune {
		case "transient":
			opt.Prune = bufferkit.PruneTransient
		case "destructive":
			opt.Prune = bufferkit.PruneDestructive
		default:
			return fmt.Errorf("unknown -prune %q", prune)
		}
		res, err := bufferkit.Insert(t, lib, opt)
		if err != nil {
			return err
		}
		slack, plc = res.Slack, res.Placement
		fmt.Printf("stats: max list %d, avg hull %.1f, betas kept %d/%d\n",
			res.Stats.MaxListLen,
			avg(res.Stats.SumHullLen, res.Stats.Positions),
			res.Stats.BetasKept, res.Stats.BetasGenerated)
	case "lillis":
		res, err := bufferkit.InsertLillis(t, lib, net.Driver)
		if err != nil {
			return err
		}
		slack, plc = res.Slack, res.Placement
	case "vg":
		if len(lib) != 1 {
			return fmt.Errorf("-algo vg needs a single-type library, got %d types", len(lib))
		}
		res, err := bufferkit.InsertVanGinneken(t, lib[0], net.Driver)
		if err != nil {
			return err
		}
		slack, plc = res.Slack, res.Placement
	default:
		return fmt.Errorf("unknown -algo %q", algo)
	}
	elapsed := time.Since(start)

	unbuf, err := bufferkit.Evaluate(t, lib, bufferkit.NewPlacement(t.Len()), net.Driver)
	if err != nil {
		return err
	}
	fmt.Printf("slack: %.4f ps (unbuffered %.4f ps, improvement %.4f ps)\n", slack, unbuf.Slack, slack-unbuf.Slack)
	fmt.Printf("buffers: %d   cost: %d   runtime: %s\n", plc.Count(), plc.Cost(lib), elapsed)

	if verify {
		chk, err := bufferkit.Evaluate(t, lib, plc, net.Driver)
		if err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		if d := chk.Slack - slack; d > 1e-6 || d < -1e-6 {
			return fmt.Errorf("verification failed: oracle slack %.6f != reported %.6f", chk.Slack, slack)
		}
		if len(chk.PolarityViolations) > 0 {
			return fmt.Errorf("verification failed: polarity violations at %v", chk.PolarityViolations)
		}
		path := chk.CriticalPath(t)
		fmt.Printf("verified: placement reproduces the reported slack under the Elmore oracle\n")
		fmt.Printf("critical path: %d vertices to sink %d (arrival %.2f ps)\n",
			len(path), chk.CriticalSink, chk.Arrival[chk.CriticalSink])
	}

	if placement {
		for v, b := range plc {
			if b != bufferkit.NoBuffer {
				name := t.Verts[v].Name
				if name == "" {
					name = fmt.Sprintf("v%d", v)
				}
				fmt.Printf("  %s: %s\n", name, lib[b].Name)
			}
		}
	}
	return nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func avg(sum, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
