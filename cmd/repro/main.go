// Command repro regenerates the paper's evaluation: Table 1, Figure 3 and
// Figure 4, plus two supporting studies (library-reduction quality loss and
// candidate-list-length analysis). Results and commentary are recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	repro -exp all               # full paper scale, takes a minute or two
//	repro -exp fig3 -scale 4     # quarter-scale quick look
//	repro -exp table1 -csv
//	repro -bench-json BENCH_engine.json -scale 4
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"

	"bufferkit/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1, fig3, fig4, libreduce, listlen, all")
		scale     = flag.Int("scale", 1, "divide the paper's m and n by this factor (1 = full scale)")
		reps      = flag.Int("reps", 2, "timing repetitions per measurement (fastest wins)")
		seed      = flag.Int64("seed", 1, "workload seed")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
		benchJSON = flag.String("bench-json", "", "run the engine/batch benchmarks and write them as JSON to this file ('-' for stdout), instead of -exp")
	)
	flag.Parse()

	// Timing binary: relax the collector so measurements reflect the
	// algorithms rather than GC pacing (documented in EXPERIMENTS.md).
	debug.SetGCPercent(400)

	cfg := experiments.Config{Scale: *scale, Reps: *reps, Seed: *seed, Out: os.Stdout, CSV: *csv}
	if *benchJSON != "" {
		out := os.Stdout
		if *benchJSON != "-" {
			f, err := os.Create(*benchJSON)
			if err != nil {
				fmt.Fprintln(os.Stderr, "repro:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := experiments.BenchJSON(cfg, out); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		return
	}
	fns := map[string]func(experiments.Config) error{
		"table1":    experiments.Table1,
		"fig3":      experiments.Fig3,
		"fig4":      experiments.Fig4,
		"libreduce": experiments.LibReduce,
		"listlen":   experiments.ListLen,
		"all":       experiments.All,
	}
	fn, ok := fns[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "repro: unknown -exp %q\n", *exp)
		os.Exit(2)
	}
	if err := fn(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}
