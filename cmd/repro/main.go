// Command repro regenerates the paper's evaluation: Table 1, Figure 3 and
// Figure 4, plus two supporting studies (library-reduction quality loss and
// candidate-list-length analysis). Results and commentary are recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	repro -exp all               # full paper scale, takes a minute or two
//	repro -exp fig3 -scale 4     # quarter-scale quick look
//	repro -exp table1 -csv
//	repro -bench-json BENCH_engine.json -scale 4
//
// -bench-json runs the allocation-discipline benchmark suite (cold vs warm
// insertion, the list-vs-SoA backend regimes, the yield-sweep series, and
// batch throughput) and writes one JSON document tracked as a BENCH_*.json
// trajectory.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"

	"bufferkit/internal/experiments"
)

func main() {
	// Timing binary: relax the collector so measurements reflect the
	// algorithms rather than GC pacing (documented in EXPERIMENTS.md).
	debug.SetGCPercent(400)
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		if err == errUsage {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// errUsage marks a bad invocation (exit code 2, matching flag's own
// convention).
var errUsage = fmt.Errorf("usage error")

// run executes one repro invocation. stdout receives the tables (and the
// bench JSON when -bench-json is "-"); it is a parameter so the command is
// testable without subprocesses.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	var (
		exp       = fs.String("exp", "all", "experiment: table1, fig3, fig4, libreduce, listlen, all")
		scale     = fs.Int("scale", 1, "divide the paper's m and n by this factor (1 = full scale)")
		reps      = fs.Int("reps", 2, "timing repetitions per measurement (fastest wins)")
		seed      = fs.Int64("seed", 1, "workload seed")
		csv       = fs.Bool("csv", false, "emit CSV instead of aligned text")
		benchJSON = fs.String("bench-json", "", "run the engine/batch benchmarks and write them as JSON to this file ('-' for stdout), instead of -exp")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, exit 0
		}
		return errUsage
	}

	cfg := experiments.Config{Scale: *scale, Reps: *reps, Seed: *seed, Out: stdout, CSV: *csv}
	if *benchJSON != "" {
		out := stdout
		if *benchJSON != "-" {
			f, err := os.Create(*benchJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		return experiments.BenchJSON(cfg, out)
	}
	fns := map[string]func(experiments.Config) error{
		"table1":    experiments.Table1,
		"fig3":      experiments.Fig3,
		"fig4":      experiments.Fig4,
		"libreduce": experiments.LibReduce,
		"listlen":   experiments.ListLen,
		"all":       experiments.All,
	}
	fn, ok := fns[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "repro: unknown -exp %q\n", *exp)
		return errUsage
	}
	return fn(cfg)
}
