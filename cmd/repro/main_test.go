package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"strings"
	"testing"

	"bufferkit/internal/experiments"
)

// quickBench caps testing.Benchmark at one iteration per measurement so the
// smoke tests below finish in seconds; the JSON shape and series keys are
// what is under test, not the timings.
func quickBench(t *testing.T) {
	t.Helper()
	if err := flag.Set("test.benchtime", "1x"); err != nil {
		t.Fatal(err)
	}
}

// TestBenchJSONOutput: `repro -bench-json -` must emit a parseable report
// carrying every expected benchmark series — the engine reuse pair, the
// list-vs-SoA regime matrix, the yield-sweep series, and the batch
// throughput ladder.
func TestBenchJSONOutput(t *testing.T) {
	quickBench(t)
	var out bytes.Buffer
	if err := run([]string{"-bench-json", "-", "-scale", "256"}, &out); err != nil {
		t.Fatal(err)
	}
	var report experiments.BenchReport
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("bench JSON does not parse: %v\n%s", err, out.String())
	}
	if report.GoVersion == "" || report.GOMAXPROCS < 1 || report.Scale != 256 {
		t.Fatalf("bad report header: %+v", report)
	}

	names := map[string]experiments.BenchResult{}
	for _, r := range report.Results {
		names[r.Name] = r
	}
	want := []string{
		"insert/coldshot",
		"insert/warm",
		"engine/regime=smallb/backend=list",
		"engine/regime=smallb/backend=soa",
		"engine/regime=deepline/backend=soa",
		"yield/samples=16",
		"yield/samples=64",
		"yield/samples=64/robust",
		"obs/trace=on",
		"obs/trace=off",
		"batch/w1",
		"batch/w8",
	}
	for _, name := range want {
		r, ok := names[name]
		if !ok {
			t.Errorf("series %q missing from bench JSON", name)
			continue
		}
		if r.Iterations < 1 || r.NsPerOp <= 0 {
			t.Errorf("series %q has no measurement: %+v", name, r)
		}
	}
	for _, yb := range experiments.YieldBenchCases() {
		if r, ok := names[yb.Name]; ok && r.NetsPerSec <= 0 {
			t.Errorf("yield series %q missing its corners/s rate: %+v", yb.Name, r)
		}
	}
}

// TestBenchJSONToFile: the file path form writes the same document to disk.
func TestBenchJSONToFile(t *testing.T) {
	quickBench(t)
	path := t.TempDir() + "/bench.json"
	var out bytes.Buffer
	if err := run([]string{"-bench-json", path, "-scale", "256"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("file form leaked %d bytes to stdout", out.Len())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report experiments.BenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("written bench JSON does not parse: %v", err)
	}
	if len(report.Results) == 0 {
		t.Fatal("written report carries no results")
	}
}

// TestRunExperiment: the -exp path renders a table to the writer.
func TestRunExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "listlen", "-scale", "256", "-reps", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"# List lengths", "max_list", "bn+1"} {
		if !strings.Contains(got, want) {
			t.Fatalf("experiment output missing %q:\n%s", want, got)
		}
	}
}

// TestRunUsageErrors: unknown experiments and flags surface as usage
// errors rather than panics.
func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{{"-exp", "nope"}, {"-bogus"}} {
		if err := run(args, &bytes.Buffer{}); err != errUsage {
			t.Fatalf("run(%v) = %v, want errUsage", args, err)
		}
	}
	// -h prints usage and succeeds (exit 0), matching flag's convention.
	if err := run([]string{"-h"}, &bytes.Buffer{}); err != nil {
		t.Fatalf("run(-h) = %v, want nil", err)
	}
}
