package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bufferkit"
)

func gen(t *testing.T, kind string, emitLib int, inverters bool) string {
	t.Helper()
	out := filepath.Join(t.TempDir(), "out")
	err := run(kind, out, "t", 3, 10, 12, 2000, 5, 800, 2, 3, 400, 0.2, 0.2, 10, emitLib, inverters)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestGenerateEveryKind(t *testing.T) {
	for _, kind := range []string{"twopin", "balanced", "random", "industrial"} {
		t.Run(kind, func(t *testing.T) {
			out := gen(t, kind, 0, false)
			net, err := bufferkit.ParseNet(strings.NewReader(out))
			if err != nil {
				t.Fatalf("emitted net does not parse: %v", err)
			}
			if net.Tree.NumSinks() < 1 {
				t.Fatal("no sinks")
			}
			if net.Driver.R != 0.2 || net.Driver.K != 10 {
				t.Fatalf("driver lost: %+v", net.Driver)
			}
		})
	}
}

func TestGenerateLibraryFile(t *testing.T) {
	out := gen(t, "random", 6, true)
	lib, err := bufferkit.ParseLibrary(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(lib) != 6 || !lib.HasInverters() {
		t.Fatalf("library wrong: %+v", lib)
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	err := run("bogus", filepath.Join(t.TempDir(), "x"), "", 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, false)
	if err == nil || !strings.Contains(err.Error(), "unknown -kind") {
		t.Fatalf("err = %v", err)
	}
}

// TestEmittedNetIsOptimizable closes the loop: generate → parse → optimize.
func TestEmittedNetIsOptimizable(t *testing.T) {
	out := gen(t, "industrial", 0, false)
	net, err := bufferkit.ParseNet(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	res, err := bufferkit.Insert(net.Tree, bufferkit.GenerateLibrary(4), bufferkit.Options{Driver: net.Driver})
	if err != nil {
		t.Fatal(err)
	}
	chk, err := bufferkit.Evaluate(net.Tree, bufferkit.GenerateLibrary(4), res.Placement, net.Driver)
	if err != nil {
		t.Fatal(err)
	}
	if d := chk.Slack - res.Slack; d > 1e-6 || d < -1e-6 {
		t.Fatalf("oracle %g != reported %g", chk.Slack, res.Slack)
	}
}

// TestChipGolden pins -chip output to a checked-in golden file: instances
// are deterministic per seed, and the emitted JSON must parse back into a
// valid instance with the requested shape and real site contention.
func TestChipGolden(t *testing.T) {
	out := filepath.Join(t.TempDir(), "chip.json")
	if err := runChip(out, 6, 6, 4, 2, 0.5, 7); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/chip_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("-chip output differs from testdata/chip_golden.json:\n%s", got)
	}

	inst, err := bufferkit.ParseChipInstance(strings.NewReader(string(got)))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Grid.W != 6 || inst.Grid.H != 6 || len(inst.Nets) != 4 {
		t.Fatalf("parsed instance is %dx%d with %d nets", inst.Grid.W, inst.Grid.H, len(inst.Nets))
	}
}

// TestChipContentionShapesDemand: contention 1 routes every net through the
// central window, so some central site must be requested by several nets;
// contention 0 spreads them out.
func TestChipContentionShapesDemand(t *testing.T) {
	demand := func(contention float64) int {
		inst := bufferkit.GenerateChip(bufferkit.ChipGenOpts{
			W: 12, H: 12, Nets: 48, Capacity: 1, Contention: contention, Seed: 11,
		})
		use := map[int]int{}
		peak := 0
		for i := range inst.Nets {
			for _, s := range inst.Nets[i].Site {
				if s >= 0 {
					use[s]++
					if use[s] > peak {
						peak = use[s]
					}
				}
			}
		}
		return peak
	}
	hot, cold := demand(1), demand(0)
	if hot <= cold {
		t.Fatalf("peak site demand %d under full contention not above %d under none", hot, cold)
	}
}
