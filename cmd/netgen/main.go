// Command netgen emits synthetic nets and buffer libraries in the
// repository's netlist formats.
//
// Examples:
//
//	netgen -kind twopin -length 10000 -positions 50 > line.net
//	netgen -kind industrial -sinks 1944 -positions 33133 -seed 1 > big.net
//	netgen -kind balanced -fanout 2 -depth 6 > clock.net
//	netgen -emit-lib 32 > lib32.buf
package main

import (
	"flag"
	"fmt"
	"os"

	"bufferkit"
)

func main() {
	var (
		kind      = flag.String("kind", "random", "net kind: twopin, balanced, random, industrial")
		out       = flag.String("o", "", "output file (default stdout)")
		name      = flag.String("name", "", "net name")
		seed      = flag.Int64("seed", 1, "generator seed")
		sinks     = flag.Int("sinks", 32, "sink count (random, industrial)")
		positions = flag.Int("positions", 16, "buffer positions (twopin, industrial)")
		length    = flag.Float64("length", 10000, "line length in µm (twopin)")
		sinkCap   = flag.Float64("sink-cap", 10, "sink capacitance in fF (twopin, balanced)")
		rat       = flag.Float64("rat", 1000, "required arrival time in ps (twopin, balanced)")
		fanout    = flag.Int("fanout", 2, "fanout (balanced)")
		depth     = flag.Int("depth", 5, "depth (balanced)")
		rootEdge  = flag.Float64("root-edge", 800, "root edge length in µm (balanced)")
		negProb   = flag.Float64("neg-prob", 0, "negative-polarity sink probability (random)")
		driverR   = flag.Float64("driver-r", 0.2, "driver resistance in kΩ")
		driverK   = flag.Float64("driver-k", 15, "driver intrinsic delay in ps")
		emitLib   = flag.Int("emit-lib", 0, "emit a generated library of this size instead of a net")
		inverters = flag.Bool("inverters", false, "make every second generated library type an inverter")

		chip       = flag.Bool("chip", false, "emit a multi-net chip instance (JSON) instead of a single net")
		chipW      = flag.Int("chip-w", 16, "-chip: site grid width")
		chipH      = flag.Int("chip-h", 16, "-chip: site grid height")
		chipNets   = flag.Int("chip-nets", 64, "-chip: number of nets")
		capacity   = flag.Int("capacity", 2, "-chip: per-site buffer capacity")
		contention = flag.Float64("contention", 0.5, "-chip: fraction of nets detoured through the grid center")
	)
	flag.Parse()
	var err error
	if *chip {
		err = runChip(*out, *chipW, *chipH, *chipNets, *capacity, *contention, *seed)
	} else {
		err = run(*kind, *out, *name, *seed, *sinks, *positions, *length, *sinkCap, *rat,
			*fanout, *depth, *rootEdge, *negProb, *driverR, *driverK, *emitLib, *inverters)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
}

// runChip emits a seeded multi-net chip instance over a shared site grid in
// the JSON instance format bufopt -chip and POST /v1/chip consume.
func runChip(out string, w, h, nets, capacity int, contention float64, seed int64) error {
	dst := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	inst := bufferkit.GenerateChip(bufferkit.ChipGenOpts{
		W: w, H: h, Nets: nets, Capacity: capacity, Contention: contention, Seed: seed,
	})
	return bufferkit.WriteChipInstance(dst, inst)
}

func run(kind, out, name string, seed int64, sinks, positions int, length, sinkCap, rat float64,
	fanout, depth int, rootEdge, negProb, driverR, driverK float64, emitLib int, inverters bool) error {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if emitLib > 0 {
		lib := bufferkit.GenerateLibrary(emitLib)
		if inverters {
			lib = bufferkit.GenerateLibraryWithInverters(emitLib)
		}
		return bufferkit.WriteLibrary(w, lib)
	}

	var t *bufferkit.Tree
	var err error
	switch kind {
	case "twopin":
		t = bufferkit.TwoPinNet(length, positions, sinkCap, rat, bufferkit.PaperWire())
	case "balanced":
		t = bufferkit.BalancedNet(fanout, depth, rootEdge, sinkCap, rat, bufferkit.PaperWire())
	case "random":
		t = bufferkit.RandomNet(bufferkit.NetOpts{Sinks: sinks, Seed: seed, NegativeSinkProb: negProb})
	case "industrial":
		t, err = bufferkit.IndustrialNet(sinks, positions, seed)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -kind %q", kind)
	}
	if name == "" {
		name = kind
	}
	return bufferkit.WriteNet(w, &bufferkit.Net{
		Name:   name,
		Tree:   t,
		Driver: bufferkit.Driver{R: driverR, K: driverK},
	})
}
