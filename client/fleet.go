package client

import (
	"context"
	"crypto/sha256"
	"fmt"
	"net/url"
	"sync/atomic"

	"bufferkit/internal/fleet"
)

// Fleet affinity: a client that knows the fleet's member list computes
// each solve's cache home with the same consistent hash the servers
// route by (internal/fleet — hashing only the net and library digests,
// never the options), and sends the request straight there. A well-aimed
// request skips the server-side forwarding hop entirely; a badly aimed
// one still works, because every node forwards. The list comes from
// WithPeers (static) or BootstrapPeers (asking any node for the
// topology), and only Solve uses it — batch and chip streams run where
// they land, and sessions are pinned to the node holding their state.

// peerRing is the client's view of the server ring — the same
// implementation, so placement agrees byte-for-byte.
type peerRing = fleet.Ring

// clientStats are the client's own counters (see Stats).
type clientStats struct {
	hedgesLaunched atomic.Int64
	hedgeWins      atomic.Int64
	hedgeLosses    atomic.Int64
	peerFailovers  atomic.Int64
}

// Stats is a snapshot of the client's self-instrumentation: the hedging
// win/loss record (is the P95 hint earning its extra load?) and how
// often solves failed over to another fleet member.
type Stats struct {
	// HedgesLaunched counts hedge requests actually sent; HedgeWins those
	// that answered first, HedgeLosses races the primary won anyway. Wins
	// say the hedge delay is well-chosen; all-losses say it only adds
	// load.
	HedgesLaunched int64
	HedgeWins      int64
	HedgeLosses    int64
	// PeerFailovers counts retry attempts that moved to a different fleet
	// member after a failure.
	PeerFailovers int64
}

// Stats returns the client's current counters.
func (c *Client) Stats() Stats {
	return Stats{
		HedgesLaunched: c.stats.hedgesLaunched.Load(),
		HedgeWins:      c.stats.hedgeWins.Load(),
		HedgeLosses:    c.stats.hedgeLosses.Load(),
		PeerFailovers:  c.stats.peerFailovers.Load(),
	}
}

// WithPeers gives the client a static fleet member list for
// digest-affinity solve routing. The base URL passed to New does not
// need to be in the list. Invalid URLs surface as an error from New.
func WithPeers(peerURLs ...string) Option {
	return func(c *Client) {
		if err := c.setPeers(peerURLs); err != nil && c.initErr == nil {
			c.initErr = err
		}
	}
}

// PeerStatus is one fleet member's health as reported by GET /v1/fleet.
type PeerStatus struct {
	URL   string  `json:"url"`
	Self  bool    `json:"self,omitempty"`
	State string  `json:"state"`
	Phi   float64 `json:"phi"`
}

// FleetInfo is the GET /v1/fleet reply: the contacted node's fleet
// topology and its view of every member's health.
type FleetInfo struct {
	Enabled  bool         `json:"enabled"`
	Self     string       `json:"self,omitempty"`
	Replicas int          `json:"replicas,omitempty"`
	Peers    []PeerStatus `json:"peers,omitempty"`
}

// Fleet fetches the contacted node's fleet topology.
func (c *Client) Fleet(ctx context.Context) (*FleetInfo, error) {
	var info FleetInfo
	if err := c.doJSON(ctx, "GET", "/v1/fleet", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// BootstrapPeers asks the base node for the fleet topology and adopts
// its member list for digest-affinity routing. On a single (non-fleet)
// node it is a no-op and the client keeps talking to its base URL.
// Call it again at any time to refresh.
func (c *Client) BootstrapPeers(ctx context.Context) (*FleetInfo, error) {
	info, err := c.Fleet(ctx)
	if err != nil {
		return nil, err
	}
	if !info.Enabled {
		return info, nil
	}
	urls := make([]string, len(info.Peers))
	for i, p := range info.Peers {
		urls[i] = p.URL
	}
	if err := c.setPeers(urls); err != nil {
		return nil, err
	}
	return info, nil
}

// setPeers installs a member list and its ring.
func (c *Client) setPeers(peerURLs []string) error {
	if len(peerURLs) == 0 {
		return fmt.Errorf("client: empty peer list")
	}
	byName := make(map[string]*url.URL, len(peerURLs))
	for _, p := range peerURLs {
		u, err := url.Parse(p)
		if err != nil {
			return fmt.Errorf("client: bad peer URL %q: %w", p, err)
		}
		if u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("client: peer URL %q needs a scheme and host", p)
		}
		byName[p] = u
	}
	ring := fleet.NewRing(peerURLs)
	c.peerMu.Lock()
	c.peerURL, c.ring = byName, ring
	c.peerMu.Unlock()
	return nil
}

// solveTargets resolves the request's fleet targets: the digest's owners
// first (cache home, then replica), then the remaining members as a
// last-resort failover order. Nil without a peer list — the caller falls
// back to the base URL.
func (c *Client) solveTargets(req *SolveRequest) []*url.URL {
	c.peerMu.RLock()
	defer c.peerMu.RUnlock()
	if c.ring == nil {
		return nil
	}
	key := fleet.RouteKey(sha256.Sum256([]byte(req.Net)), sha256.Sum256([]byte(req.Library)))
	names := c.ring.Owners(key, len(c.peerURL))
	targets := make([]*url.URL, 0, len(names))
	for _, n := range names {
		if u, ok := c.peerURL[n]; ok {
			targets = append(targets, u)
		}
	}
	return targets
}
