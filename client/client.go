// Package client is the typed Go client for bufferkitd. It speaks the
// server's JSON/NDJSON API and bakes in the retry discipline the server's
// resilience tier expects from well-behaved callers:
//
//   - Jittered exponential backoff on retryable failures (connection
//     errors, 429, 502, 503), honoring the server's Retry-After hint when
//     one is present — a shed server names its own backoff.
//   - A retry budget (token bucket) so a broken dependency produces a
//     bounded trickle of retries, not a synchronized storm.
//   - No retry of non-idempotent progress: once any byte of a batch NDJSON
//     stream has been consumed, the stream is never silently re-run —
//     truncation surfaces as ErrTruncated and the caller decides.
//   - 504 (the server's deadline verdict) and other 4xx are terminal:
//     retrying work the server already declared over-budget only deepens
//     an overload.
//   - Optional hedged solves: when a P95 latency hint is configured, a
//     second identical request races the first after that delay and the
//     first response wins. Solves are idempotent and cached server-side,
//     so hedging is safe.
//   - W3C traceparent propagation: every request carries a traceparent
//     header, minted once per logical call so retries, failovers and both
//     hedge arms share a single trace id on the server side. The server's
//     trace id comes back in SolveResult.Trace and APIError.Trace.
//
// See DESIGN.md §13 for the full resilience model and README.md for a
// usage example.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"bufferkit/internal/obs"
)

// RetryPolicy shapes the backoff loop. The zero value means defaults:
// 4 attempts, 100 ms base, 2 s cap.
type RetryPolicy struct {
	// MaxAttempts bounds total tries per call, first included
	// (0 = default 4; 1 = never retry).
	MaxAttempts int
	// BaseDelay is the first backoff step (0 = default 100 ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (0 = default 2 s).
	MaxDelay time.Duration
}

func (p *RetryPolicy) fill() {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
}

// Client is a bufferkitd API client. Safe for concurrent use.
type Client struct {
	base  *url.URL
	hc    *http.Client
	retry RetryPolicy
	// hedgeAfter launches a second identical solve when the first has not
	// answered within this delay (0 = hedging off). Only Solve ever
	// hedges: batch, chip and session requests are streaming or stateful —
	// replaying one is not idempotent — so they are never raced.
	hedgeAfter time.Duration
	budget     *retryBudget
	// Fleet affinity state (see fleet.go): the member ring mirrors the
	// servers' consistent hash, so Solve goes straight to a digest's cache
	// home. peerMu guards it because BootstrapPeers can refresh the list
	// at runtime. initErr carries an option's deferred validation failure
	// into New.
	peerMu  sync.RWMutex
	peerURL map[string]*url.URL
	ring    *peerRing
	initErr error
	stats   clientStats
	// sleep, jitter and now are test seams; production uses real time and
	// rand.Float64.
	sleep  func(context.Context, time.Duration) error
	jitter func() float64
	now    func() time.Time
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default: a
// dedicated client with a 30 s overall timeout disabled — deadlines come
// from the caller's context).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry overrides the retry policy.
func WithRetry(p RetryPolicy) Option { return func(c *Client) { c.retry = p } }

// WithRetryBudget bounds retry volume: every original request earns
// `ratio` retry tokens (capped at burst) and every retry spends one, so
// sustained failures retry at ratio× the request rate instead of
// multiplying it. Defaults: ratio 0.1, burst 10. ratio <= 0 disables the
// budget (every retry allowed).
func WithRetryBudget(ratio float64, burst int) Option {
	return func(c *Client) { c.budget = newRetryBudget(ratio, burst) }
}

// WithHedging arms hedged solves: if a Solve has not answered within d —
// a P95 latency hint from /metrics, typically — a second identical
// request is launched and the first response wins. Only Solve hedges;
// batch streams and yield sweeps are too expensive to double-run.
func WithHedging(d time.Duration) Option { return func(c *Client) { c.hedgeAfter = d } }

// New builds a Client for a bufferkitd base URL such as
// "http://localhost:8080".
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs a scheme and host", baseURL)
	}
	c := &Client{
		base:   u,
		hc:     &http.Client{},
		budget: newRetryBudget(0.1, 10),
		sleep:  sleepCtx,
		jitter: rand.Float64,
		now:    time.Now,
	}
	c.retry.fill()
	for _, o := range opts {
		o(c)
	}
	c.retry.fill()
	if c.initErr != nil {
		return nil, c.initErr
	}
	return c, nil
}

// APIError is a non-2xx reply, decoded from the server's JSON error body.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error string.
	Message string
	// Field names the offending request field on 400s, when known.
	Field string
	// Peer names the fleet member whose verdict this is when the error
	// was relayed through a forwarding node — a peer's 504 is
	// distinguishable from the contacted node's own deadline ("" = the
	// node this client talked to).
	Peer string
	// Trace is the server-side trace id of the failed request, when the
	// server got far enough to mint one — quote it against the server's
	// /debug/traces ring and request-summary logs.
	Trace string
	// RetryAfter is the server's backoff hint on 429/503 (0 = none).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("bufferkitd: %d %s (field %s)", e.Status, e.Message, e.Field)
	}
	return fmt.Sprintf("bufferkitd: %d %s", e.Status, e.Message)
}

// Temporary reports whether the reply invites a retry (429 or 503).
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// ErrTruncated reports a batch NDJSON stream that ended with the server's
// terminal error record instead of completing. The client never retries
// past it: the caller has already consumed part of the stream.
var ErrTruncated = errors.New("bufferkitd: batch stream truncated")

// ErrBudgetExhausted marks a retryable failure that was not retried
// because the retry budget was empty.
var ErrBudgetExhausted = errors.New("bufferkitd: retry budget exhausted")

// retryable reports whether err invites another attempt: transport
// failures and Temporary API errors do; everything else — 4xx, the
// server's 504 deadline verdict, 500 — is terminal.
func retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Temporary() || apiErr.Status == http.StatusBadGateway
	}
	// Respect the caller's context: a fired deadline is not retryable.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Anything else from the transport is a connection-level failure.
	return true
}

// backoff computes the jittered exponential delay for attempt (0-based
// retry index), honoring the server hint when present.
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	if hint > 0 {
		return hint
	}
	d := c.retry.BaseDelay << attempt
	if d > c.retry.MaxDelay || d <= 0 {
		d = c.retry.MaxDelay
	}
	// Full jitter in [d/2, d): desynchronizes clients that shed together.
	return d/2 + time.Duration(c.jitter()*float64(d/2))
}

// do sends a request through the retry loop and returns the first
// successful response; the caller owns its body. Retries happen only
// before a response is obtained — consuming a streamed body and then
// failing is the caller's to surface, never to silently re-run.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	return c.doTargets(ctx, method, path, body, nil)
}

// doTargets is the retry loop over an ordered target list (nil = just the
// base URL). With multiple targets, a retryable failure advances to the
// next one — and a connection-level failure fails over immediately, no
// backoff, because waiting out a dead peer helps nobody. The retry budget
// and attempt cap bound the total work either way.
func (c *Client) doTargets(ctx context.Context, method, path string, body []byte, targets []*url.URL) (*http.Response, error) {
	if len(targets) == 0 {
		targets = []*url.URL{c.base}
	}
	// One traceparent for the whole loop: every retry and failover carries
	// the same trace id, so the server-side story of a flaky call is one
	// trace, not one per attempt.
	ctx, _ = obs.EnsureTraceparent(ctx)
	var lastErr error
	target := 0
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			if !c.budget.allow() {
				return nil, fmt.Errorf("%w after %v", ErrBudgetExhausted, lastErr)
			}
			var apiErr *APIError
			if errors.As(lastErr, &apiErr) {
				if err := c.sleep(ctx, c.backoff(attempt-1, apiErr.RetryAfter)); err != nil {
					return nil, err
				}
			} else if target == 0 {
				// Transport failure with nowhere else to go: plain backoff.
				if err := c.sleep(ctx, c.backoff(attempt-1, 0)); err != nil {
					return nil, err
				}
			}
		}
		resp, err := c.attemptAt(ctx, targets[target%len(targets)], method, path, body)
		if err == nil {
			c.budget.deposit()
			return resp, nil
		}
		lastErr = err
		if !retryable(err) {
			return nil, err
		}
		if len(targets) > 1 {
			target++
			c.stats.peerFailovers.Add(1)
		}
	}
	return nil, lastErr
}

// attempt sends one request to the base URL; see attemptAt.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	return c.attemptAt(ctx, c.base, method, path, body)
}

// attemptAt sends one request to the given base and maps non-2xx replies
// to *APIError.
func (c *Client) attemptAt(ctx context.Context, base *url.URL, method, path string, body []byte) (*http.Response, error) {
	u := base.JoinPath(path)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u.String(), rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tp := obs.TraceparentFromContext(ctx); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 == 2 {
		return resp, nil
	}
	defer resp.Body.Close()
	apiErr := &APIError{Status: resp.StatusCode}
	var eb struct {
		Error string `json:"error"`
		Field string `json:"field"`
		Peer  string `json:"peer"`
		Trace string `json:"trace"`
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
		apiErr.Message, apiErr.Field, apiErr.Peer, apiErr.Trace = eb.Error, eb.Field, eb.Peer, eb.Trace
	} else {
		apiErr.Message = strings.TrimSpace(string(raw))
	}
	if apiErr.Trace == "" {
		apiErr.Trace = resp.Header.Get("X-Bufferkit-Trace")
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		apiErr.RetryAfter = c.parseRetryAfter(s)
	}
	return nil, apiErr
}

// parseRetryAfter decodes a Retry-After header. RFC 9110 §10.2.3 allows two
// forms: delta-seconds ("120") and an HTTP-date ("Fri, 07 Aug 2026 12:00:00
// GMT"); proxies in particular favor the date form. Unparseable or past
// values yield 0 (no hint — the computed backoff applies).
func (c *Client) parseRetryAfter(s string) time.Duration {
	if secs, err := strconv.Atoi(s); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(s); err == nil {
		if d := at.Sub(c.now()); d > 0 {
			return d
		}
	}
	return 0
}

// postJSON runs the retry loop and decodes a JSON reply into out.
func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	return c.doJSON(ctx, http.MethodPost, path, in, out)
}

// doJSON runs the retry loop for any method and decodes a JSON reply into
// out (nil = discard).
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	resp, err := c.do(ctx, method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Solve solves one net. With a known peer list (WithPeers or
// BootstrapPeers) the request goes straight to the digest's cache home —
// computed from the same consistent hash the servers route by — with the
// remaining members as failover order. When hedging is armed
// (WithHedging) and the first request has not answered within the hint,
// a second identical request races it (against the replica, in fleet
// mode) and the first response wins — safe because solves are idempotent
// and cached server-side.
func (c *Client) Solve(ctx context.Context, req SolveRequest) (*SolveResult, error) {
	targets := c.solveTargets(&req)
	if c.hedgeAfter <= 0 {
		var out SolveResult
		body, err := json.Marshal(&req)
		if err != nil {
			return nil, err
		}
		resp, err := c.doTargets(ctx, http.MethodPost, "/v1/solve", body, targets)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, err
		}
		out.Trace = resp.Header.Get("X-Bufferkit-Trace")
		return &out, nil
	}
	return c.hedgedSolve(ctx, req, targets)
}

func (c *Client) hedgedSolve(ctx context.Context, req SolveRequest, targets []*url.URL) (*SolveResult, error) {
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}
	// Both hedge arms carry the same traceparent (minted here, before the
	// arms fork), so the two server-side traces share one trace id and the
	// race is reconstructible from either node's /debug/traces.
	ctx, _ = obs.EnsureTraceparent(ctx)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // the loser is canceled on return
	type outcome struct {
		res *SolveResult
		idx int
		err error
	}
	results := make(chan outcome, 2)
	// Arm i talks to its own target (in fleet mode the hedge races the
	// replica, not the same node), retrying within that arm only — the
	// other arm covers the other member.
	launch := func(i int) {
		var t []*url.URL
		if len(targets) > 0 {
			t = []*url.URL{targets[i%len(targets)]}
		}
		resp, err := c.doTargets(ctx, http.MethodPost, "/v1/solve", body, t)
		if err != nil {
			results <- outcome{idx: i, err: err}
			return
		}
		defer resp.Body.Close()
		var out SolveResult
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			results <- outcome{idx: i, err: err}
			return
		}
		out.Trace = resp.Header.Get("X-Bufferkit-Trace")
		results <- outcome{res: &out, idx: i}
	}
	go launch(0)
	hedge := time.NewTimer(c.hedgeAfter)
	defer hedge.Stop()
	inFlight, hedged := 1, false
	var firstErr error
	for {
		select {
		case <-hedge.C:
			if !hedged {
				hedged = true
				inFlight++
				c.stats.hedgesLaunched.Add(1)
				go launch(1)
			}
		case o := <-results:
			if o.err == nil {
				if hedged {
					// First success wins; score the race for Stats.
					if o.idx > 0 {
						c.stats.hedgeWins.Add(1)
					} else {
						c.stats.hedgeLosses.Add(1)
					}
				}
				return o.res, nil // cancel() stops the loser
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if inFlight--; inFlight == 0 {
				return nil, firstErr
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Yield runs Monte Carlo / multi-corner yield analysis on one net.
func (c *Client) Yield(ctx context.Context, req YieldRequest) (*YieldResult, error) {
	var out YieldResult
	if err := c.postJSON(ctx, "/v1/yield", &req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready probes GET /readyz. It returns nil when the server accepts new
// work and an *APIError (status 503) while it drains. A probe reports
// the instantaneous state, so it never retries.
func (c *Client) Ready(ctx context.Context) error {
	resp, err := c.attempt(ctx, http.MethodGet, "/readyz", nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Metrics fetches GET /metrics as raw JSON values, keyed by counter name.
func (c *Client) Metrics(ctx context.Context) (map[string]json.RawMessage, error) {
	resp, err := c.do(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return m, nil
}

// retryBudget is the token bucket bounding retry volume.
type retryBudget struct {
	mu     sync.Mutex
	ratio  float64
	burst  float64
	tokens float64
}

func newRetryBudget(ratio float64, burst int) *retryBudget {
	if ratio <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = 10
	}
	return &retryBudget{ratio: ratio, burst: float64(burst), tokens: float64(burst)}
}

// allow spends one token for a retry; false means the budget is dry.
func (b *retryBudget) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// deposit credits a successful request.
func (b *retryBudget) deposit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens = min(b.tokens+b.ratio, b.burst)
}

// sleepCtx sleeps for d or until ctx fires.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
