package client

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// ndjsonServer serves one canned NDJSON body on every path, plus a client
// for it with the scan limit lowered so the oversized-line path is testable
// without multi-gigabyte payloads.
func ndjsonServer(t *testing.T, body string, limit int) *Client {
	t.Helper()
	old := maxScanBuf
	maxScanBuf = limit
	t.Cleanup(func() { maxScanBuf = old })
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/x-ndjson")
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBatchOversizedLineSurfacesTyped: a line larger than the scanner
// buffer used to surface as a bare bufio.ErrTooLong ("token too long") with
// no hint of which stream or limit was involved. It must wrap
// ErrLineTooLong, name the endpoint and limit, keep the bufio cause, and
// stay distinct from ErrTruncated.
func TestBatchOversizedLineSurfacesTyped(t *testing.T) {
	huge := `{"index":0,"error":"` + strings.Repeat("x", 4096) + `"}` + "\n"
	c := ndjsonServer(t, huge, 1024)
	stream, err := c.Batch(context.Background(), BatchRequest{Library: "l", Nets: []string{"n"}})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	_, err = stream.Next()
	if !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("err = %v, want ErrLineTooLong", err)
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("err = %v, the bufio cause must stay unwrappable", err)
	}
	if errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v must not read as a server-side truncation", err)
	}
	if !strings.Contains(err.Error(), "/v1/batch") || !strings.Contains(err.Error(), "1024") {
		t.Fatalf("err = %v, want the endpoint and limit named", err)
	}
	// The error is sticky, like every other stream failure.
	if _, err2 := stream.Next(); !errors.Is(err2, ErrLineTooLong) {
		t.Fatalf("second Next = %v, want the sticky error", err2)
	}
}

// TestCollectDistinguishesTooLongFromTruncated: Collect callers branch on
// the error kind — a truncated batch may be resumed from the last index, an
// oversized line never can be.
func TestCollectDistinguishesTooLongFromTruncated(t *testing.T) {
	huge := `{"index":0,"error":"` + strings.Repeat("x", 4096) + `"}` + "\n"
	c := ndjsonServer(t, huge, 1024)
	stream, err := c.Batch(context.Background(), BatchRequest{Library: "l", Nets: []string{"n"}})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	_, err = stream.Collect(1)
	if !errors.Is(err, ErrLineTooLong) || errors.Is(err, ErrTruncated) {
		t.Fatalf("Collect err = %v, want ErrLineTooLong and not ErrTruncated", err)
	}
}

// TestChipOversizedLineSurfacesTyped: the chip stream shares the pattern
// and names its own endpoint.
func TestChipOversizedLineSurfacesTyped(t *testing.T) {
	huge := `{"done":{"rounds":` + strings.Repeat("1", 4096) + `}}` + "\n"
	c := ndjsonServer(t, huge, 1024)
	stream, err := c.Chip(context.Background(), ChipRequest{Library: "l"})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	_, _, err = stream.Collect()
	if !errors.Is(err, ErrLineTooLong) || errors.Is(err, ErrTruncated) {
		t.Fatalf("Collect err = %v, want ErrLineTooLong and not ErrTruncated", err)
	}
	if !strings.Contains(err.Error(), "/v1/chip") {
		t.Fatalf("err = %v, want the /v1/chip endpoint named", err)
	}
}
