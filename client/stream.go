package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// maxScanBuf caps one NDJSON line on the batch and chip streams. A var,
// not a const, so tests can exercise the limit without allocating
// multi-gigabyte lines.
var maxScanBuf = 16 * 1024 * 1024

// ErrLineTooLong reports an NDJSON line larger than the stream's scanner
// buffer. Distinct from ErrTruncated: the server did not abort — the reply
// is simply bigger than the client is willing to hold, which usually means
// a placement so large the caller should solve that net individually.
var ErrLineTooLong = errors.New("bufferkitd: NDJSON line exceeds the scanner buffer")

// newScanner builds a line scanner bounded at maxScanBuf.
func newScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, min(64*1024, maxScanBuf)), maxScanBuf)
	return sc
}

// scanErr maps a scanner failure to its stream error: a bare
// bufio.ErrTooLong names neither the endpoint nor the limit, so wrap it in
// ErrLineTooLong with both.
func scanErr(endpoint string, err error) error {
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("%w (%s, limit %d bytes): %w", ErrLineTooLong, endpoint, maxScanBuf, err)
	}
	return err
}

// BatchStream iterates a /v1/batch NDJSON response. Not safe for
// concurrent use. Close it when done (early Close aborts the server-side
// batch via the request context).
type BatchStream struct {
	resp   *http.Response
	sc     *bufio.Scanner
	cancel context.CancelFunc
	// complete flips when the stream drained without a terminal error
	// record — the server's contract for "every net was delivered".
	complete bool
	err      error
}

// Batch starts a batch solve and returns the result stream. The retry
// loop applies only up to obtaining the response — once any line has
// been consumed the stream is never retried; a cut or truncated stream
// surfaces from Next as an error (ErrTruncated for the server's in-band
// abort record) and resuming is the caller's decision.
func (c *Client) Batch(ctx context.Context, req BatchRequest) (*BatchStream, error) {
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}
	// A child context detaches the stream's lifetime from the retry
	// loop's: Close cancels it to abort the server-side batch.
	ctx, cancel := context.WithCancel(ctx)
	resp, err := c.do(ctx, http.MethodPost, "/v1/batch", body)
	if err != nil {
		cancel()
		return nil, err
	}
	return &BatchStream{resp: resp, sc: newScanner(resp.Body), cancel: cancel}, nil
}

// Next returns the next batch line, or io.EOF after the last one. A
// truncated stream returns an error wrapping ErrTruncated; a dead
// connection returns the transport error. Neither is retried here.
func (s *BatchStream) Next() (*BatchLine, error) {
	if s.err != nil {
		return nil, s.err
	}
	for s.sc.Scan() {
		if len(s.sc.Bytes()) == 0 {
			continue
		}
		var line BatchLine
		if err := json.Unmarshal(s.sc.Bytes(), &line); err != nil {
			s.err = fmt.Errorf("bufferkitd: bad NDJSON line: %w", err)
			return nil, s.err
		}
		if line.Index < 0 {
			// The server's in-band abort record: the batch ended early.
			s.err = fmt.Errorf("%w: %s", ErrTruncated, line.Error)
			return nil, s.err
		}
		return &line, nil
	}
	if err := s.sc.Err(); err != nil {
		s.err = scanErr("/v1/batch", err)
		return nil, s.err
	}
	s.complete = true
	s.err = io.EOF
	return nil, io.EOF
}

// Collect drains the stream into a slice indexed by input position.
// Lines carrying per-net errors are returned in place (Result nil,
// Error set). On truncation it returns the lines received so far
// alongside the ErrTruncated-wrapping error.
func (s *BatchStream) Collect(n int) ([]*BatchLine, error) {
	lines := make([]*BatchLine, n)
	for {
		line, err := s.Next()
		if err == io.EOF {
			return lines, nil
		}
		if err != nil {
			return lines, err
		}
		if line.Index >= 0 && line.Index < n {
			lines[line.Index] = line
		}
	}
}

// Close releases the stream; abandoning it mid-batch cancels the
// server-side workers through the request context.
func (s *BatchStream) Close() error {
	s.cancel()
	io.Copy(io.Discard, io.LimitReader(s.resp.Body, 1<<20))
	return s.resp.Body.Close()
}
