package client

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"bufferkit/internal/server"
)

// TestSessionHandleSurvivesEviction: the stateful Session handle hides
// server-side eviction — a 404 on a patches-only PUT triggers a transparent
// recreate that replays the full patch history, so the caller sees the same
// state before and after.
func TestSessionHandleSurvivesEviction(t *testing.T) {
	c, ft, _ := newTestClient(t, server.Config{})
	ctx := context.Background()
	s := c.Session("eco", readTestdata(t, "line.net"), readTestdata(t, "lib8.buf"), SolveOptions{})

	base, err := s.Resolve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !s.created || !base.Session.Created || base.Session.ID != "eco" {
		t.Fatalf("first resolve session block = %+v", base.Session)
	}

	res, err := s.Patch(ctx, SinkPatch("v25", 500, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Session.Created || res.Slack == base.Slack {
		t.Fatalf("patch result = slack %v session %+v, want a changed slack on the old session", res.Slack, res.Session)
	}

	// Evict behind the handle's back; the next call must recreate and replay.
	if err := c.SessionDelete(ctx, "eco"); err != nil {
		t.Fatal(err)
	}
	before := ft.Requests()
	revived, err := s.Resolve(ctx)
	if err != nil {
		t.Fatalf("resolve after eviction: %v", err)
	}
	if !revived.Session.Created {
		t.Fatal("handle did not recreate the evicted session")
	}
	if revived.Slack != res.Slack {
		t.Fatalf("replayed history gave slack %v, want %v (state before eviction)", revived.Slack, res.Slack)
	}
	if got := ft.Requests() - before; got != 2 {
		t.Fatalf("recreate took %d requests, want 2 (404 + replay PUT)", got)
	}

	// Close deletes server-side; closing an already-gone session is not an
	// error, and the handle stays revivable.
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("second close: %v", err)
	}
	again, err := s.Resolve(ctx)
	if err != nil || again.Slack != res.Slack {
		t.Fatalf("revive after close: slack %v err %v, want %v", again, err, res.Slack)
	}
}

// TestSessionPutErrorsSurface: raw PUT errors carry their HTTP status so
// callers (and the handle's 404 logic) can tell eviction from bad input.
func TestSessionPutErrorsSurface(t *testing.T) {
	c, _, _ := newTestClient(t, server.Config{})
	ctx := context.Background()

	_, err := c.SessionPut(ctx, "ghost", SessionRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("patch of unknown session: %v, want 404 APIError", err)
	}
	if err := c.SessionDelete(ctx, "ghost"); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("delete of unknown session: %v, want 404 APIError", err)
	}
}
