package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// ChipStream iterates a /v1/chip NDJSON response: one ChipRound line per
// pricing round, then a terminal summary. Not safe for concurrent use.
// Close it when done (early Close aborts the server-side allocator via the
// request context).
type ChipStream struct {
	resp   *http.Response
	sc     *bufio.Scanner
	cancel context.CancelFunc
	err    error
}

// Chip starts a multi-net chip solve and returns the convergence stream.
// Like Batch, retries apply only up to obtaining the response: a chip
// solve is far too expensive to silently re-run, so a cut stream surfaces
// from Next (ErrTruncated for the server's in-band abort record) and
// resuming is the caller's decision.
func (c *Client) Chip(ctx context.Context, req ChipRequest) (*ChipStream, error) {
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	resp, err := c.do(ctx, http.MethodPost, "/v1/chip", body)
	if err != nil {
		cancel()
		return nil, err
	}
	return &ChipStream{resp: resp, sc: newScanner(resp.Body), cancel: cancel}, nil
}

// Next returns the next stream line — a round record or the terminal
// summary — or io.EOF after the summary. A terminal error record (deadline
// or server-side abort mid-run) returns an error wrapping ErrTruncated
// that carries the server's partial-progress message.
func (s *ChipStream) Next() (*ChipLine, error) {
	if s.err != nil {
		return nil, s.err
	}
	for s.sc.Scan() {
		if len(s.sc.Bytes()) == 0 {
			continue
		}
		var line ChipLine
		if err := json.Unmarshal(s.sc.Bytes(), &line); err != nil {
			s.err = fmt.Errorf("bufferkitd: bad NDJSON line: %w", err)
			return nil, s.err
		}
		if line.Error != "" {
			s.err = fmt.Errorf("%w: %s (after %d rounds, %d net solves)",
				ErrTruncated, line.Error, line.CompletedRounds, line.SolvedNets)
			return nil, s.err
		}
		return &line, nil
	}
	if err := s.sc.Err(); err != nil {
		s.err = scanErr("/v1/chip", err)
		return nil, s.err
	}
	s.err = io.EOF
	return nil, io.EOF
}

// Collect drains the stream, returning every round record and the final
// summary. On truncation it returns the rounds received so far alongside
// the ErrTruncated-wrapping error (summary nil).
func (s *ChipStream) Collect() ([]ChipRound, *ChipSummary, error) {
	var rounds []ChipRound
	var done *ChipSummary
	for {
		line, err := s.Next()
		if err == io.EOF {
			if done == nil {
				return rounds, nil, fmt.Errorf("%w: stream ended without a summary", ErrTruncated)
			}
			return rounds, done, nil
		}
		if err != nil {
			return rounds, nil, err
		}
		if line.Round != nil {
			rounds = append(rounds, *line.Round)
		}
		if line.Done != nil {
			done = line.Done
		}
	}
}

// Close releases the stream; abandoning it mid-solve cancels the
// server-side allocator through the request context.
func (s *ChipStream) Close() error {
	s.cancel()
	io.Copy(io.Discard, io.LimitReader(s.resp.Body, 1<<20))
	return s.resp.Body.Close()
}
