package client

import (
	"context"
	"errors"
	"net/http"
)

// ECO sessions: PUT /v1/sessions/{id} keeps an incremental re-solver warm
// on the server, so a synthesis loop iterating on one net sends typed
// patches and pays only for the perturbed vertex-to-root paths. The server
// may evict an idle session at any time (LRU + TTL); the Session handle
// hides that by remembering the net, library and full patch history and
// transparently recreating + replaying on a 404. Patches set absolute
// values, so the replay — and any retried PUT — is idempotent.

// SessionPatch is one typed delta of a session PUT. Kind is "sink" (rat +
// cap), "edge" (res + cap) or "buffer" (ok + optional allowed library type
// indices). Vertices are named as in net files and placements: the file
// name when set, otherwise "v<i>" ("src" for the source). Use the
// SinkPatch/EdgePatch/BufferPatch constructors.
type SessionPatch struct {
	Kind    string   `json:"kind"`
	Vertex  string   `json:"vertex"`
	RAT     *float64 `json:"rat,omitempty"`
	Cap     *float64 `json:"cap,omitempty"`
	Res     *float64 `json:"res,omitempty"`
	OK      *bool    `json:"ok,omitempty"`
	Allowed []int    `json:"allowed,omitempty"`
}

// SinkPatch sets a sink's required arrival time and load capacitance.
func SinkPatch(vertex string, rat, cap float64) SessionPatch {
	return SessionPatch{Kind: "sink", Vertex: vertex, RAT: &rat, Cap: &cap}
}

// EdgePatch sets the R/C of the wire into a vertex.
func EdgePatch(vertex string, res, cap float64) SessionPatch {
	return SessionPatch{Kind: "edge", Vertex: vertex, Res: &res, Cap: &cap}
}

// BufferPatch sets a vertex's buffer-position flag and, optionally, the
// library types allowed there (none = every type).
func BufferPatch(vertex string, ok bool, allowed ...int) SessionPatch {
	return SessionPatch{Kind: "buffer", Vertex: vertex, OK: &ok, Allowed: allowed}
}

// SessionRequest is the PUT /v1/sessions/{id} payload. Net and Library
// are required on the PUT that creates the session and optional
// afterwards; resending them must match byte for byte.
type SessionRequest struct {
	Net     string         `json:"net,omitempty"`
	Library string         `json:"library,omitempty"`
	Patches []SessionPatch `json:"patches,omitempty"`
	SolveOptions
}

// SessionInfo is the session block of a PUT reply.
type SessionInfo struct {
	ID      string `json:"id"`
	Created bool   `json:"created,omitempty"`
	// Resolves, FullRebuilds and Recomputed expose the incremental-work
	// story: Recomputed is the number of vertices the last resolve actually
	// recomputed (0 when the reply came from the server's result cache).
	Resolves     int `json:"resolves"`
	FullRebuilds int `json:"full_rebuilds"`
	Recomputed   int `json:"recomputed"`
}

// SessionResult is the PUT /v1/sessions/{id} reply: a solve result plus
// the session block.
type SessionResult struct {
	SolveResult
	Session SessionInfo `json:"session"`
}

// SessionPut issues one raw PUT /v1/sessions/{id}. Most callers want the
// stateful Session handle instead, which survives server-side eviction.
func (c *Client) SessionPut(ctx context.Context, id string, req SessionRequest) (*SessionResult, error) {
	var out SessionResult
	if err := c.doJSON(ctx, http.MethodPut, "/v1/sessions/"+id, &req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SessionDelete closes a server-side session. Unknown ids return an
// *APIError with status 404.
func (c *Client) SessionDelete(ctx context.Context, id string) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// Session is a stateful handle on one server-side ECO session. It keeps
// the net, library, options and cumulative patch history, so when the
// server evicts the session the next Patch transparently recreates it and
// replays the history — callers never see the eviction. Not safe for
// concurrent use.
type Session struct {
	c       *Client
	id      string
	net     string
	library string
	opts    SolveOptions
	history []SessionPatch
	created bool
}

// Session opens a handle on session id over the given net and library
// texts. Nothing is sent until the first Patch (or Resolve) call.
func (c *Client) Session(id, netText, libText string, opts SolveOptions) *Session {
	return &Session{c: c, id: id, net: netText, library: libText, opts: opts}
}

// Resolve re-solves the session's current state without new patches.
func (s *Session) Resolve(ctx context.Context) (*SessionResult, error) {
	return s.Patch(ctx)
}

// Patch applies patches and re-solves. The first call creates the session;
// a 404 from an evicted session recreates it with the full patch history
// replayed before the new patches.
func (s *Session) Patch(ctx context.Context, patches ...SessionPatch) (*SessionResult, error) {
	if s.created {
		out, err := s.c.SessionPut(ctx, s.id, SessionRequest{Patches: patches, SolveOptions: s.opts})
		if err == nil {
			s.history = append(s.history, patches...)
			return out, nil
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
			return nil, err
		}
		// Evicted server-side: fall through and recreate with history.
	}
	req := SessionRequest{
		Net:          s.net,
		Library:      s.library,
		Patches:      append(append([]SessionPatch(nil), s.history...), patches...),
		SolveOptions: s.opts,
	}
	out, err := s.c.SessionPut(ctx, s.id, req)
	if err != nil {
		return nil, err
	}
	s.created = true
	s.history = append(s.history, patches...)
	return out, nil
}

// Close deletes the server-side session. A 404 (already evicted) is not an
// error; the handle keeps its history and may be revived by another Patch.
func (s *Session) Close(ctx context.Context) error {
	s.created = false
	err := s.c.SessionDelete(ctx, s.id)
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
		return nil
	}
	return err
}
