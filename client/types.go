package client

import "encoding/json"

// Wire types mirroring bufferkitd's JSON API. They are declared here
// rather than imported so the client stays a pure HTTP consumer — the
// same shapes any non-Go client would code against.

// SolveOptions are the algorithm-selection fields shared by solve, batch
// and yield requests.
type SolveOptions struct {
	// Algorithm is a registry name ("" = the paper's O(bn²) algorithm).
	Algorithm string `json:"algorithm,omitempty"`
	// Prune is "transient" (default) or "destructive".
	Prune string `json:"prune,omitempty"`
	// Backend pins a candidate-list representation: "list", "soa" or ""
	// for the server default.
	Backend string `json:"backend,omitempty"`
	// MaxCost caps total buffer cost (costslack only; 0 = no cap).
	MaxCost int `json:"max_cost,omitempty"`
	// NoStats skips Stats on the reply.
	NoStats bool `json:"no_stats,omitempty"`
	// TimeoutMs overrides the server's default solve budget.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// SolveRequest is the POST /v1/solve payload.
type SolveRequest struct {
	// Net is the net in bufferkit's .net text format.
	Net string `json:"net"`
	// Library is the buffer library in the .buf text format.
	Library string `json:"library"`
	SolveOptions
}

// SolveResult is the POST /v1/solve reply and the per-net result of a
// batch line.
type SolveResult struct {
	Net        string            `json:"net,omitempty"`
	Algorithm  string            `json:"algorithm"`
	Slack      float64           `json:"slack"`
	Buffers    int               `json:"buffers"`
	Cost       int               `json:"cost"`
	Candidates int               `json:"candidates,omitempty"`
	Placement  map[string]string `json:"placement"`
	// Stats carries the algorithm's instrumentation verbatim; its fields
	// depend on the algorithm, so it stays raw JSON here.
	Stats    json.RawMessage `json:"stats,omitempty"`
	Frontier []FrontierPoint `json:"frontier,omitempty"`
	// Cached: served from the LRU cache; Coalesced: shared from another
	// caller's in-flight engine run. Either way no engine ran for this
	// request.
	Cached    bool    `json:"cached"`
	Coalesced bool    `json:"coalesced,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms,omitempty"`
	// Trace is the server's trace id for this solve, from the
	// X-Bufferkit-Trace response header (not the JSON body) — quote it
	// against the server's /debug/traces and request-summary logs.
	Trace string `json:"-"`
}

// FrontierPoint is one cost–slack Pareto point (costslack).
type FrontierPoint struct {
	Cost    int     `json:"cost"`
	Slack   float64 `json:"slack"`
	Buffers int     `json:"buffers"`
}

// BatchRequest is the POST /v1/batch payload.
type BatchRequest struct {
	// Library is shared by every net of the batch.
	Library string `json:"library"`
	// Nets are the .net texts to solve.
	Nets []string `json:"nets"`
	// Ordered asks for input-order lines instead of completion order.
	Ordered bool `json:"ordered,omitempty"`
	SolveOptions
}

// BatchLine is one NDJSON line of the batch stream. Exactly one of
// Result and Error is set; Index -1 with Error set is the server's
// terminal truncation record, surfaced by BatchStream.Next as
// ErrTruncated rather than as a line.
type BatchLine struct {
	Index  int          `json:"index"`
	Result *SolveResult `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// ChipRequest is the POST /v1/chip payload.
type ChipRequest struct {
	// Instance is the multi-net chip instance JSON (the format netgen
	// -chip emits: a site grid with blockages plus nets carrying .net text
	// and vertex→site maps).
	Instance json.RawMessage `json:"instance"`
	// Library is the .buf text shared by every net of the instance.
	Library string `json:"library"`
	// Rounds caps pricing rounds (0 = server default).
	Rounds int `json:"rounds,omitempty"`
	// Step is the initial price step in ps per unit of site overflow
	// (0 = server default).
	Step float64 `json:"step,omitempty"`
	// StepDecay is the per-round multiplicative step decay in (0, 1]
	// (0 = server default).
	StepDecay float64 `json:"step_decay,omitempty"`
	// HistoryStep is the permanent price increment per unit of overflow
	// per round (0 = server default, negative disables).
	HistoryStep float64 `json:"history_step,omitempty"`
	// Capacity overrides the instance's default per-site capacity.
	Capacity int `json:"capacity,omitempty"`
	SolveOptions
}

// ChipRound is one price-and-resolve round's convergence record, streamed
// as an NDJSON line the moment the round completes.
type ChipRound struct {
	// Round numbers rounds from 1; Repair marks the final sequential
	// repair pass.
	Round  int  `json:"round"`
	Repair bool `json:"repair,omitempty"`
	// Resolved counts the nets re-solved this round.
	Resolved int `json:"resolved"`
	// Overflow is the total buffer count over capacity (0 = feasible);
	// OverflowSites counts sites over capacity, MaxOverflow the worst one.
	Overflow      int `json:"overflow"`
	OverflowSites int `json:"overflow_sites"`
	MaxOverflow   int `json:"max_overflow"`
	// Buffers is the total number of buffers placed across all nets.
	Buffers int `json:"buffers"`
	// MaxPrice is the largest site price after this round's update.
	MaxPrice float64 `json:"max_price"`
	// TotalSlack and WorstSlack summarize the true (unpriced) slacks.
	TotalSlack float64 `json:"total_slack"`
	WorstSlack float64 `json:"worst_slack"`
}

// ChipSummary is the terminal record of a successful chip stream.
type ChipSummary struct {
	Algorithm  string              `json:"algorithm"`
	Feasible   bool                `json:"feasible"`
	Nets       int                 `json:"nets"`
	Rounds     int                 `json:"rounds"`
	Buffers    int                 `json:"buffers"`
	TotalSlack float64             `json:"total_slack"`
	WorstSlack float64             `json:"worst_slack"`
	WorstNet   int                 `json:"worst_net"`
	Slacks     []float64           `json:"slacks"`
	Placements []map[string]string `json:"placements"`
	ElapsedMs  float64             `json:"elapsed_ms"`
}

// ChipLine is one NDJSON line of the chip stream: a round record while
// the allocator converges, then exactly one terminal record — Done on
// success, or Error (with the partial-progress counters) on a mid-run
// abort. ChipStream.Next surfaces the Error record as ErrTruncated.
type ChipLine struct {
	Round           *ChipRound   `json:"round,omitempty"`
	Done            *ChipSummary `json:"done,omitempty"`
	Error           string       `json:"error,omitempty"`
	CompletedRounds int          `json:"completed_rounds,omitempty"`
	SolvedNets      int          `json:"solved_nets,omitempty"`
}

// YieldRequest is the POST /v1/yield payload.
type YieldRequest struct {
	Net            string  `json:"net"`
	Library        string  `json:"library"`
	Samples        int     `json:"samples,omitempty"`
	Sigma          float64 `json:"sigma,omitempty"`
	Seed           *int64  `json:"seed,omitempty"`
	Target         float64 `json:"target,omitempty"`
	Robust         bool    `json:"robust,omitempty"`
	ProcessCorners bool    `json:"process_corners,omitempty"`
	SolveOptions
}

// YieldResult is the POST /v1/yield reply.
type YieldResult struct {
	Net          string  `json:"net,omitempty"`
	Algorithm    string  `json:"algorithm"`
	Samples      int     `json:"samples"`
	Target       float64 `json:"target"`
	Robust       bool    `json:"robust"`
	Yield        float64 `json:"yield"`
	OptimalYield float64 `json:"optimal_yield"`
	Slack        struct {
		Mean float64 `json:"mean"`
		Std  float64 `json:"std"`
		Min  float64 `json:"min"`
		Max  float64 `json:"max"`
		P5   float64 `json:"p5"`
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
	} `json:"slack"`
	WorstCorner string            `json:"worst_corner"`
	WorstSlack  float64           `json:"worst_slack"`
	Chosen      int               `json:"chosen"`
	Placement   map[string]string `json:"placement"`
	Buffers     int               `json:"buffers"`
	Cost        int               `json:"cost"`
	Cached      bool              `json:"cached"`
	ElapsedMs   float64           `json:"elapsed_ms,omitempty"`
}
