package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"bufferkit/internal/chaoskit"
	"bufferkit/internal/server"
)

func readTestdata(t testing.TB, name string) string {
	t.Helper()
	b, err := os.ReadFile("../testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// newTestClient wires a Client to a fresh bufferkitd handler through a
// chaoskit fault transport, with the sleep seam capturing backoff delays
// instead of really sleeping.
func newTestClient(t testing.TB, cfg server.Config, opts ...Option) (*Client, *chaoskit.Transport, *[]time.Duration) {
	t.Helper()
	srv := httptest.NewServer(server.New(cfg).Handler())
	t.Cleanup(srv.Close)
	ft := &chaoskit.Transport{}
	var sleeps []time.Duration
	opts = append([]Option{WithHTTPClient(&http.Client{Transport: ft})}, opts...)
	c, err := New(srv.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	c.sleep = func(_ context.Context, d time.Duration) error {
		sleeps = append(sleeps, d)
		return nil
	}
	return c, ft, &sleeps
}

func TestNewRejectsBadURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "/just/a/path"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted a bad base URL", bad)
		}
	}
}

func TestSolveRoundTrip(t *testing.T) {
	c, ft, _ := newTestClient(t, server.Config{})
	res, err := c.Solve(context.Background(), SolveRequest{
		Net:     readTestdata(t, "line.net"),
		Library: readTestdata(t, "lib8.buf"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Net != "line" || res.Buffers <= 0 || res.Slack == 0 {
		t.Fatalf("result = %+v", res)
	}
	if ft.Requests() != 1 {
		t.Fatalf("transport saw %d requests, want 1", ft.Requests())
	}
	// Second identical solve is a cache hit.
	res, err = c.Solve(context.Background(), SolveRequest{
		Net:     readTestdata(t, "line.net"),
		Library: readTestdata(t, "lib8.buf"),
	})
	if err != nil || !res.Cached {
		t.Fatalf("second solve cached=%v err=%v, want a cache hit", res != nil && res.Cached, err)
	}
}

func TestSolveValidationErrorIsTerminal(t *testing.T) {
	c, ft, sleeps := newTestClient(t, server.Config{})
	_, err := c.Solve(context.Background(), SolveRequest{Net: "garbage", Library: "more garbage"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want a 400 APIError", err)
	}
	if apiErr.Field == "" {
		t.Fatalf("APIError did not carry the offending field: %+v", apiErr)
	}
	if ft.Requests() != 1 || len(*sleeps) != 0 {
		t.Fatalf("400 was retried: %d requests, %d sleeps", ft.Requests(), len(*sleeps))
	}
}

// TestRetryHonorsRetryAfter: a 429 with Retry-After overrides the
// computed backoff; the client waits exactly the hinted time.
func TestRetryHonorsRetryAfter(t *testing.T) {
	c, ft, sleeps := newTestClient(t, server.Config{})
	ft.Push(chaoskit.Fault{
		Status: http.StatusTooManyRequests,
		Header: http.Header{"Retry-After": {"3"}},
		Body:   `{"error":"shed"}`,
	})
	res, err := c.Solve(context.Background(), SolveRequest{
		Net:     readTestdata(t, "line.net"),
		Library: readTestdata(t, "lib8.buf"),
	})
	if err != nil || res == nil {
		t.Fatalf("solve after one 429 failed: %v", err)
	}
	if ft.Requests() != 2 {
		t.Fatalf("transport saw %d requests, want 2 (original + one retry)", ft.Requests())
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != 3*time.Second {
		t.Fatalf("sleeps = %v, want exactly the server's 3s Retry-After hint", *sleeps)
	}
}

// TestRetryHonorsRetryAfterDate: RFC 9110 allows Retry-After to be an
// HTTP-date as well as delta-seconds — proxies favor the date form. The
// client converts it against its clock and waits exactly until the date.
func TestRetryHonorsRetryAfterDate(t *testing.T) {
	c, ft, sleeps := newTestClient(t, server.Config{})
	epoch := time.Date(2026, time.August, 7, 12, 0, 0, 0, time.UTC)
	c.now = func() time.Time { return epoch }
	ft.Push(chaoskit.Fault{
		Status: http.StatusServiceUnavailable,
		Header: http.Header{"Retry-After": {epoch.Add(90 * time.Second).Format(http.TimeFormat)}},
		Body:   `{"error":"draining"}`,
	})
	res, err := c.Solve(context.Background(), SolveRequest{
		Net:     readTestdata(t, "line.net"),
		Library: readTestdata(t, "lib8.buf"),
	})
	if err != nil || res == nil {
		t.Fatalf("solve after one dated 503 failed: %v", err)
	}
	if ft.Requests() != 2 {
		t.Fatalf("transport saw %d requests, want 2", ft.Requests())
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != 90*time.Second {
		t.Fatalf("sleeps = %v, want exactly the 90s until the server's Retry-After date", *sleeps)
	}
	// A date in the past (or garbage) is no hint: the computed backoff
	// applies, which for the default policy stays under a second.
	for _, s := range []string{epoch.Add(-time.Hour).Format(http.TimeFormat), "soon"} {
		ft.Push(chaoskit.Fault{
			Status: http.StatusServiceUnavailable,
			Header: http.Header{"Retry-After": {s}},
			Body:   `{"error":"draining"}`,
		})
		*sleeps = (*sleeps)[:0]
		if _, err := c.Solve(context.Background(), SolveRequest{
			Net:     readTestdata(t, "line.net"),
			Library: readTestdata(t, "lib8.buf"),
		}); err != nil {
			t.Fatalf("Retry-After %q: solve failed: %v", s, err)
		}
		if len(*sleeps) != 1 || (*sleeps)[0] <= 0 || (*sleeps)[0] >= time.Second {
			t.Fatalf("Retry-After %q: sleeps = %v, want one computed backoff", s, *sleeps)
		}
	}
}

// TestRetryBacksOffWithJitter: without a server hint, delays follow the
// jittered exponential envelope [base/2·2ⁿ, base·2ⁿ).
func TestRetryBacksOffWithJitter(t *testing.T) {
	c, ft, sleeps := newTestClient(t, server.Config{},
		WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 10 * time.Second}))
	ft.Push(chaoskit.Fault{Drop: true}, chaoskit.Fault{Drop: true}, chaoskit.Fault{Drop: true})
	_, err := c.Solve(context.Background(), SolveRequest{
		Net:     readTestdata(t, "line.net"),
		Library: readTestdata(t, "lib8.buf"),
	})
	if err != nil {
		t.Fatalf("solve after three drops failed: %v", err)
	}
	if len(*sleeps) != 3 {
		t.Fatalf("sleeps = %v, want 3 backoffs", *sleeps)
	}
	for i, d := range *sleeps {
		lo := 100 * time.Millisecond << i / 2
		hi := 100 * time.Millisecond << i
		if d < lo || d >= hi {
			t.Fatalf("backoff %d = %v, want in [%v, %v)", i, d, lo, hi)
		}
	}
}

func TestNoRetryOn504(t *testing.T) {
	c, ft, sleeps := newTestClient(t, server.Config{})
	ft.Push(chaoskit.Fault{Status: http.StatusGatewayTimeout, Body: `{"error":"solve canceled: deadline"}`})
	_, err := c.Solve(context.Background(), SolveRequest{
		Net:     readTestdata(t, "line.net"),
		Library: readTestdata(t, "lib8.buf"),
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("err = %v, want the 504 back", err)
	}
	if ft.Requests() != 1 || len(*sleeps) != 0 {
		t.Fatalf("504 was retried: %d requests — the server already declared the work over budget", ft.Requests())
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	c, ft, _ := newTestClient(t, server.Config{},
		WithRetryBudget(0.001, 1),
		WithRetry(RetryPolicy{MaxAttempts: 10}))
	ft.Push(chaoskit.Fault{Drop: true}, chaoskit.Fault{Drop: true}, chaoskit.Fault{Drop: true})
	_, err := c.Solve(context.Background(), SolveRequest{
		Net:     readTestdata(t, "line.net"),
		Library: readTestdata(t, "lib8.buf"),
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if ft.Requests() != 2 {
		t.Fatalf("transport saw %d requests, want 2 (the budget allowed one retry)", ft.Requests())
	}
}

func TestRetryRespectsContext(t *testing.T) {
	c, ft, _ := newTestClient(t, server.Config{})
	c.sleep = sleepCtx // real sleeping so the context can interrupt it
	ft.Push(chaoskit.Fault{Drop: true}, chaoskit.Fault{Drop: true}, chaoskit.Fault{Drop: true})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.Solve(ctx, SolveRequest{
		Net:     readTestdata(t, "line.net"),
		Library: readTestdata(t, "lib8.buf"),
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the caller's deadline to cut the backoff loop", err)
	}
}

func TestBatchStreamCollect(t *testing.T) {
	c, _, _ := newTestClient(t, server.Config{})
	stream, err := c.Batch(context.Background(), BatchRequest{
		Library: readTestdata(t, "lib8.buf"),
		Nets:    []string{readTestdata(t, "line.net"), readTestdata(t, "random12.net")},
		Ordered: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	lines, err := stream.Collect(2)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range lines {
		if l == nil || l.Result == nil || l.Error != "" {
			t.Fatalf("line %d = %+v", i, l)
		}
	}
	if lines[0].Result.Net != "line" || lines[1].Result.Net != "random12" {
		t.Fatalf("net names: %q, %q", lines[0].Result.Net, lines[1].Result.Net)
	}
}

// TestBatchTruncationSurfacesNotRetries: the server's terminal Index:-1
// record maps to ErrTruncated and the partially-consumed stream is never
// silently re-run.
func TestBatchTruncationSurfacesNotRetries(t *testing.T) {
	chaoskit.RegisterAlgorithms()
	chaoskit.SetSlowDelay(200 * time.Millisecond)
	defer chaoskit.SetSlowDelay(50 * time.Millisecond)
	c, ft, _ := newTestClient(t, server.Config{})
	stream, err := c.Batch(context.Background(), BatchRequest{
		Library:      readTestdata(t, "lib8.buf"),
		Nets:         []string{readTestdata(t, "line.net"), readTestdata(t, "random12.net")},
		SolveOptions: SolveOptions{Algorithm: chaoskit.AlgoSlow, TimeoutMs: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	for {
		_, err = stream.Next()
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if ft.Requests() != 1 {
		t.Fatalf("transport saw %d requests — a partially consumed stream must never be retried", ft.Requests())
	}
	// The stream stays in its error state.
	if _, err2 := stream.Next(); !errors.Is(err2, ErrTruncated) {
		t.Fatalf("second Next = %v, want the sticky ErrTruncated", err2)
	}
}

// TestHedgedSolve: with hedging armed, a stalled first request is raced
// by a second one and the fast response wins.
func TestHedgedSolve(t *testing.T) {
	var calls atomic.Int64
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		if calls.Add(1) == 1 {
			<-stall // first request hangs until the test ends
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"net":"line","algorithm":"new","slack":42,"buffers":1,"placement":{"v1":"b0"}}`)
	}))
	defer srv.Close()
	defer close(stall) // LIFO: unblock the stalled handler before Close waits on it
	c, err := New(srv.URL, WithHedging(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := c.Solve(context.Background(), SolveRequest{Net: "x", Library: "y"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slack != 42 {
		t.Fatalf("result = %+v", res)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2 (original + hedge)", calls.Load())
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedged solve took %v — the hedge did not win", elapsed)
	}
}

func TestReadyAndMetrics(t *testing.T) {
	s := server.New(server.Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ready(context.Background()); err != nil {
		t.Fatalf("Ready = %v, want nil", err)
	}
	s.SetDraining(true)
	err = c.Ready(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("Ready while draining = %v, want a 503 APIError", err)
	}
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"engine_runs", "shed_total", "draining"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("metrics missing %q: %v", key, m)
		}
	}
	var draining json.Number
	if err := json.Unmarshal(m["draining"], &draining); err != nil || draining.String() != "1" {
		t.Fatalf("draining metric = %s (%v), want 1", m["draining"], err)
	}
}
