package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bufferkit"
	"bufferkit/internal/server"
)

// chipPayload renders a generated contended instance and library as the
// /v1/chip request fields.
func chipPayload(t testing.TB, o bufferkit.ChipGenOpts) ChipRequest {
	t.Helper()
	var inst, lib bytes.Buffer
	if err := bufferkit.WriteChipInstance(&inst, bufferkit.GenerateChip(o)); err != nil {
		t.Fatal(err)
	}
	if err := bufferkit.WriteLibrary(&lib, bufferkit.GenerateLibrary(8)); err != nil {
		t.Fatal(err)
	}
	return ChipRequest{Instance: inst.Bytes(), Library: lib.String()}
}

// TestChipCollect: the chip stream delivers every pricing round and a
// feasible summary sized to the instance, in one request.
func TestChipCollect(t *testing.T) {
	c, ft, _ := newTestClient(t, server.Config{})
	const nets = 30
	st, err := c.Chip(context.Background(), chipPayload(t, bufferkit.ChipGenOpts{
		W: 10, H: 10, Nets: nets, Capacity: 2, Contention: 0.7, Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rounds, done, err := st.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) == 0 {
		t.Fatal("stream delivered no round records")
	}
	if !done.Feasible || done.Nets != nets || len(done.Placements) != nets {
		t.Fatalf("summary = %+v, want feasible with %d nets", done, nets)
	}
	if done.Rounds != len(rounds) {
		t.Fatalf("summary reports %d rounds, stream delivered %d", done.Rounds, len(rounds))
	}
	if last := rounds[len(rounds)-1]; last.Overflow != 0 {
		t.Fatalf("final round still has overflow %d", last.Overflow)
	}
	if ft.Requests() != 1 {
		t.Fatalf("transport saw %d requests, want 1", ft.Requests())
	}
}

// TestChipTruncationSurfacesNotRetries: the server's in-band abort record
// surfaces from Next as ErrTruncated carrying the partial-progress
// counters, and the stream is never silently re-run.
func TestChipTruncationSurfacesNotRetries(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"round":{"round":1,"resolved":5,"overflow":3}}`)
		fmt.Fprintln(w, `{"error":"chip: allocation aborted","completed_rounds":1,"solved_nets":2}`)
	}))
	defer srv.Close()
	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Chip(context.Background(), ChipRequest{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	line, err := st.Next()
	if err != nil || line.Round == nil || line.Round.Round != 1 {
		t.Fatalf("first line = %+v, %v; want round 1", line, err)
	}
	_, err = st.Next()
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	for _, want := range []string{"allocation aborted", "after 1 rounds", "2 net solves"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("truncation error %q missing %q", err, want)
		}
	}
	// The error is sticky and the request was never retried.
	if _, err2 := st.Next(); !errors.Is(err2, ErrTruncated) {
		t.Fatalf("second Next = %v, want sticky ErrTruncated", err2)
	}
	if hits != 1 {
		t.Fatalf("server saw %d requests, want 1 (no silent re-run)", hits)
	}
}

// TestChipCollectWithoutSummary: a stream cut before the terminal record
// reports truncation instead of returning a nil summary silently.
func TestChipCollectWithoutSummary(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"round":{"round":1,"resolved":5,"overflow":3}}`)
	}))
	defer srv.Close()
	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Chip(context.Background(), ChipRequest{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rounds, done, err := st.Collect()
	if !errors.Is(err, ErrTruncated) || done != nil {
		t.Fatalf("Collect = (%d rounds, %v, %v), want ErrTruncated with nil summary",
			len(rounds), done, err)
	}
	if len(rounds) != 1 {
		t.Fatalf("Collect kept %d rounds, want the 1 delivered", len(rounds))
	}
}

// TestChipValidationErrorIsTerminal: a 400 from /v1/chip is never retried.
func TestChipValidationErrorIsTerminal(t *testing.T) {
	c, ft, sleeps := newTestClient(t, server.Config{})
	_, err := c.Chip(context.Background(), ChipRequest{Library: "garbage"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want a 400 APIError", err)
	}
	if ft.Requests() != 1 || len(*sleeps) != 0 {
		t.Fatalf("400 was retried: %d requests, %d sleeps", ft.Requests(), len(*sleeps))
	}
}
