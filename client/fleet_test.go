package client

import (
	"context"
	"crypto/sha256"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bufferkit/internal/fleet"
	"bufferkit/internal/server"
)

const fakeSolveBody = `{"net":"line","algorithm":"new","slack":42,"buffers":1,"placement":{"v1":"b0"}}`

// fakePeers starts n fake solve endpoints that count their /v1/solve
// hits, returning their URLs and counters.
func fakePeers(t *testing.T, n int) ([]string, []*atomic.Int64) {
	t.Helper()
	urls := make([]string, n)
	calls := make([]*atomic.Int64, n)
	for i := range n {
		c := new(atomic.Int64)
		calls[i] = c
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			c.Add(1)
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, fakeSolveBody)
		}))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls, calls
}

// homeIndex resolves which member of urls is the request digest's ring
// home — the same computation solveTargets performs.
func homeIndex(urls []string, req SolveRequest) int {
	key := fleet.RouteKey(sha256.Sum256([]byte(req.Net)), sha256.Sum256([]byte(req.Library)))
	home := fleet.NewRing(urls).Owners(key, 1)[0]
	for i, u := range urls {
		if u == home {
			return i
		}
	}
	return -1
}

// TestWithPeersAffinityRouting: with a static peer list, Solve goes
// straight to the digest's cache home, not the base URL.
func TestWithPeersAffinityRouting(t *testing.T) {
	urls, calls := fakePeers(t, 3)
	req := SolveRequest{Net: "affinity-net", Library: "affinity-lib"}
	home := homeIndex(urls, req)
	// Base deliberately different from the home, so a hit at the home
	// proves affinity routing.
	base := urls[(home+1)%3]
	c, err := New(base, WithPeers(urls...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	for i, n := range calls {
		want := int64(0)
		if i == home {
			want = 1
		}
		if n.Load() != want {
			t.Fatalf("peer %d saw %d solves, want %d (home = %d)", i, n.Load(), want, home)
		}
	}
}

// TestPeerFailover: a dead home fails over to the next ring member
// immediately, counted in Stats.
func TestPeerFailover(t *testing.T) {
	urls, calls := fakePeers(t, 2)
	// Third member: a dead port — nobody listening.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	ringURLs := append([]string{deadURL}, urls...)
	// Pick a net whose ring home is the dead member, so the first attempt
	// must fail over.
	var req SolveRequest
	for i := 0; ; i++ {
		req = SolveRequest{Net: fmt.Sprintf("failover-net-%d", i), Library: "failover-lib"}
		if ringURLs[homeIndex(ringURLs, req)] == deadURL {
			break
		}
	}
	c, err := New(urls[0], WithPeers(ringURLs...))
	if err != nil {
		t.Fatal(err)
	}
	c.sleep = func(context.Context, time.Duration) error { return nil }
	res, err := c.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slack != 42 {
		t.Fatalf("result = %+v", res)
	}
	if got := c.Stats().PeerFailovers; got < 1 {
		t.Fatalf("PeerFailovers = %d, want >= 1", got)
	}
	total := int64(0)
	for _, n := range calls {
		total += n.Load()
	}
	if total != 1 {
		t.Fatalf("live peers saw %d solves, want exactly 1 after failover", total)
	}
}

// TestBootstrapPeers: the client adopts a fleet node's member list, and
// a single node leaves routing untouched.
func TestBootstrapPeers(t *testing.T) {
	urls, calls := fakePeers(t, 3)
	req := SolveRequest{Net: "bootstrap-net", Library: "bootstrap-lib"}
	home := homeIndex(urls, req)

	topo := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"enabled":true,"self":%q,"replicas":2,"peers":[{"url":%q,"state":"alive"},{"url":%q,"state":"alive"},{"url":%q,"state":"alive"}]}`,
			urls[0], urls[0], urls[1], urls[2])
	}))
	t.Cleanup(topo.Close)
	c, err := New(topo.URL)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.BootstrapPeers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Enabled || len(info.Peers) != 3 {
		t.Fatalf("fleet info = %+v", info)
	}
	if _, err := c.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if calls[home].Load() != 1 {
		t.Fatalf("home saw %d solves after bootstrap, want 1", calls[home].Load())
	}

	// A non-fleet node: bootstrap is a no-op and solves keep using the
	// base URL.
	single := httptest.NewServer(server.New(server.Config{}).Handler())
	t.Cleanup(single.Close)
	sc, err := New(single.URL)
	if err != nil {
		t.Fatal(err)
	}
	info, err = sc.BootstrapPeers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Enabled {
		t.Fatal("single node reported an enabled fleet")
	}
	if sc.solveTargets(&req) != nil {
		t.Fatal("single-node client grew fleet targets")
	}
}

// TestHedgeStats: the win/loss record distinguishes a hedge that beat a
// stalled home from one the primary outran.
func TestHedgeStats(t *testing.T) {
	// Two members whose behavior is assigned after roles are known:
	// mode 0 = answer immediately, 1 = stall until released, 2 = answer
	// after a delay longer than the hedge trigger.
	modes := [2]atomic.Int64{}
	release := make(chan struct{})
	urls := make([]string, 2)
	for i := range urls {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			switch modes[i].Load() {
			case 1:
				<-release
				return
			case 2:
				time.Sleep(60 * time.Millisecond)
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, fakeSolveBody)
		}))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	defer close(release)
	req := SolveRequest{Net: "hedge-net", Library: "hedge-lib"}
	home := homeIndex(urls, req)

	c, err := New(urls[0], WithPeers(urls...), WithHedging(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	// Round 1: home stalls, the hedge to the replica wins.
	modes[home].Store(1)
	if _, err := c.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.HedgesLaunched != 1 || s.HedgeWins != 1 || s.HedgeLosses != 0 {
		t.Fatalf("after hedge win: %+v", s)
	}

	// Round 2: the home answers after 60 ms — late enough to trigger the
	// 10 ms hedge, early enough to beat the stalled replica. The hedge
	// launches and loses.
	modes[home].Store(2)
	modes[1-home].Store(1)
	if _, err := c.Solve(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	s = c.Stats()
	if s.HedgesLaunched != 2 || s.HedgeWins != 1 || s.HedgeLosses != 1 {
		t.Fatalf("after hedge loss: %+v", s)
	}
}

// TestNoHedgeOnStreamingEndpoints: hedging is armed, yet batch, chip and
// session requests — streaming or stateful, hence not idempotent — are
// sent exactly once even when slow.
func TestNoHedgeOnStreamingEndpoints(t *testing.T) {
	var batchCalls, chipCalls, sessionCalls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(30 * time.Millisecond) // far past the hedge delay
		w.Header().Set("Content-Type", "application/json")
		switch {
		case r.URL.Path == "/v1/batch":
			batchCalls.Add(1)
			fmt.Fprintln(w, `{"index":0,"result":`+fakeSolveBody+`}`)
		case r.URL.Path == "/v1/chip":
			chipCalls.Add(1)
			fmt.Fprintln(w, `{"done":{"algorithm":"new","feasible":true,"nets":1}}`)
		default:
			sessionCalls.Add(1)
			fmt.Fprint(w, `{"net":"line","algorithm":"new"}`)
		}
	}))
	t.Cleanup(srv.Close)
	c, err := New(srv.URL, WithHedging(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	bs, err := c.Batch(ctx, BatchRequest{Library: "l", Nets: []string{"n"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bs.Collect(1); err != nil {
		t.Fatal(err)
	}
	bs.Close()

	cs, err := c.Chip(ctx, ChipRequest{Instance: []byte(`{}`), Library: "l"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cs.Collect(); err != nil {
		t.Fatal(err)
	}
	cs.Close()

	if _, err := c.SessionPut(ctx, "s1", SessionRequest{Net: "n", Library: "l"}); err != nil {
		t.Fatal(err)
	}

	for name, n := range map[string]*atomic.Int64{
		"batch": &batchCalls, "chip": &chipCalls, "session": &sessionCalls,
	} {
		if n.Load() != 1 {
			t.Fatalf("%s endpoint saw %d requests, want exactly 1 (never hedged)", name, n.Load())
		}
	}
	if s := c.Stats(); s.HedgesLaunched != 0 {
		t.Fatalf("streaming endpoints launched hedges: %+v", s)
	}
}
