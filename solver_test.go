package bufferkit_test

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"bufferkit"
	"bufferkit/internal/core"
	"bufferkit/internal/costopt"
	"bufferkit/internal/lillis"
	"bufferkit/internal/vanginneken"
)

func ctxBG() context.Context { return context.Background() }

// equalBits asserts two slacks are bit-identical.
func equalBits(t *testing.T, label string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: slack %v (bits %x) != legacy %v (bits %x)",
			label, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

func equalPlacement(t *testing.T, label string, got, want bufferkit.Placement) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: placement length %d != %d", label, len(got), len(want))
	}
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("%s: vertex %d: placement %d != %d", label, v, got[v], want[v])
		}
	}
}

// TestSolverEquivalence is the tentpole acceptance test: Solver.Run must
// dispatch every built-in algorithm through the Algorithm interface with
// results bit-identical to the legacy entry points in the internal
// packages.
func TestSolverEquivalence(t *testing.T) {
	d := bufferkit.Driver{R: 0.25, K: 10}
	nets := map[string]*bufferkit.Tree{
		"twopin": bufferkit.TwoPinNet(9000, 18, 12, 800, bufferkit.PaperWire()),
		"random": bufferkit.RandomNet(bufferkit.NetOpts{Sinks: 11, Seed: 42}),
	}

	for name, net := range nets {
		t.Run("new/"+name, func(t *testing.T) {
			lib := bufferkit.GenerateLibrary(12)
			want, err := core.Insert(net, lib, core.Options{Driver: d})
			if err != nil {
				t.Fatal(err)
			}
			s, err := bufferkit.NewSolver(bufferkit.WithLibrary(lib), bufferkit.WithDriver(d))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			got, err := s.Run(ctxBG(), net)
			if err != nil {
				t.Fatal(err)
			}
			equalBits(t, "new", got.Slack, want.Slack)
			equalPlacement(t, "new", got.Placement, want.Placement)
			if got.Candidates != want.Candidates || !got.Stats.SameCounters(want.Stats) {
				t.Fatalf("stats diverged: %+v vs %+v", got.Stats, want.Stats)
			}
		})

		t.Run("lillis/"+name, func(t *testing.T) {
			lib := bufferkit.GenerateLibrary(6)
			want, err := lillis.Insert(net, lib, d)
			if err != nil {
				t.Fatal(err)
			}
			s, err := bufferkit.NewSolver(
				bufferkit.WithLibrary(lib),
				bufferkit.WithDriver(d),
				bufferkit.WithAlgorithm(bufferkit.AlgoLillis),
			)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Run(ctxBG(), net)
			if err != nil {
				t.Fatal(err)
			}
			equalBits(t, "lillis", got.Slack, want.Slack)
			equalPlacement(t, "lillis", got.Placement, want.Placement)
			if got.Candidates != want.Candidates || got.Stats.BetasKept != want.Stats.BetasInserted ||
				got.Stats.MaxListLen != want.Stats.MaxListLen {
				t.Fatalf("stats diverged: %+v vs %+v", got.Stats, want.Stats)
			}
		})

		t.Run("vanginneken/"+name, func(t *testing.T) {
			lib := bufferkit.GenerateLibrary(1)
			want, err := vanginneken.Insert(net, lib[0], d)
			if err != nil {
				t.Fatal(err)
			}
			s, err := bufferkit.NewSolver(
				bufferkit.WithLibrary(lib),
				bufferkit.WithDriver(d),
				bufferkit.WithAlgorithm(bufferkit.AlgoVanGinneken),
			)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Run(ctxBG(), net)
			if err != nil {
				t.Fatal(err)
			}
			equalBits(t, "vanginneken", got.Slack, want.Slack)
			equalPlacement(t, "vanginneken", got.Placement, want.Placement)
			if got.Candidates != want.Candidates || got.Stats.MaxListLen != want.MaxListLen {
				t.Fatalf("counters diverged: %+v vs %+v", got, want)
			}
		})

		t.Run("costslack/"+name, func(t *testing.T) {
			lib := bufferkit.GenerateLibrary(4)
			want, err := costopt.Pareto(net, lib, costopt.Options{Driver: d})
			if err != nil {
				t.Fatal(err)
			}
			s, err := bufferkit.NewSolver(
				bufferkit.WithLibrary(lib),
				bufferkit.WithDriver(d),
				bufferkit.WithAlgorithm(bufferkit.AlgoCostSlack),
			)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Run(ctxBG(), net)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Frontier) != len(want) {
				t.Fatalf("frontier size %d != %d", len(got.Frontier), len(want))
			}
			for i := range want {
				if got.Frontier[i].Cost != want[i].Cost {
					t.Fatalf("point %d: cost %d != %d", i, got.Frontier[i].Cost, want[i].Cost)
				}
				equalBits(t, "costslack point", got.Frontier[i].Slack, want[i].Slack)
				equalPlacement(t, "costslack point", got.Frontier[i].Placement, want[i].Placement)
			}
			equalBits(t, "costslack best", got.Slack, want[len(want)-1].Slack)
		})
	}
}

// TestDeprecatedWrappersStillAgree pins the compatibility contract: the
// deprecated free functions now route through the Solver and must keep
// returning exactly what the internal entry points produce.
func TestDeprecatedWrappersStillAgree(t *testing.T) {
	net := bufferkit.RandomNet(bufferkit.NetOpts{Sinks: 9, Seed: 7})
	d := bufferkit.Driver{R: 0.3, K: 5}
	lib := bufferkit.GenerateLibrary(8)

	want, err := core.Insert(net, lib, core.Options{Driver: d})
	if err != nil {
		t.Fatal(err)
	}
	got, err := bufferkit.Insert(net, lib, bufferkit.Options{Driver: d})
	if err != nil {
		t.Fatal(err)
	}
	equalBits(t, "Insert", got.Slack, want.Slack)
	equalPlacement(t, "Insert", got.Placement, want.Placement)
	if !got.Stats.SameCounters(want.Stats) {
		t.Fatalf("Insert stats diverged")
	}

	wantL, err := lillis.Insert(net, lib, d)
	if err != nil {
		t.Fatal(err)
	}
	gotL, err := bufferkit.InsertLillis(net, lib, d)
	if err != nil {
		t.Fatal(err)
	}
	equalBits(t, "InsertLillis", gotL.Slack, wantL.Slack)
	if gotL.Stats != wantL.Stats {
		t.Fatalf("InsertLillis stats diverged: %+v vs %+v", gotL.Stats, wantL.Stats)
	}

	wantV, err := vanginneken.Insert(net, lib[0], d)
	if err != nil {
		t.Fatal(err)
	}
	gotV, err := bufferkit.InsertVanGinneken(net, lib[0], d)
	if err != nil {
		t.Fatal(err)
	}
	equalBits(t, "InsertVanGinneken", gotV.Slack, wantV.Slack)
	if gotV.MaxListLen != wantV.MaxListLen || gotV.Candidates != wantV.Candidates {
		t.Fatalf("InsertVanGinneken counters diverged")
	}
}

func TestNewSolverValidation(t *testing.T) {
	if _, err := bufferkit.NewSolver(); err == nil {
		t.Fatal("NewSolver accepted a missing library")
	}
	var verr *bufferkit.ValidationError
	_, err := bufferkit.NewSolver(bufferkit.WithLibrary(bufferkit.Library{}))
	if !errors.As(err, &verr) {
		t.Fatalf("empty library error %v is not a *ValidationError", err)
	}
	_, err = bufferkit.NewSolver(
		bufferkit.WithLibrary(bufferkit.GenerateLibrary(4)),
		bufferkit.WithAlgorithm("does-not-exist"),
	)
	if err == nil {
		t.Fatal("NewSolver accepted an unknown algorithm")
	}
}

// echoAlgo is a registry-extension probe: a third-party algorithm that
// plugs in through Register without touching the facade.
type echoAlgo struct{}

func (echoAlgo) Name() string { return "echo" }
func (echoAlgo) Solve(ctx context.Context, tr *bufferkit.Tree, cfg bufferkit.RunConfig) (*bufferkit.NetResult, error) {
	return &bufferkit.NetResult{Slack: 123, Placement: bufferkit.NewPlacement(tr.Len())}, nil
}

// registerEcho guards against duplicate registration when the test binary
// runs the test more than once in-process (-count=2, stress runs).
var registerEcho = sync.OnceFunc(func() {
	bufferkit.Register("echo", func() bufferkit.Algorithm { return echoAlgo{} })
})

func TestRegisterThirdPartyAlgorithm(t *testing.T) {
	registerEcho()
	found := false
	for _, name := range bufferkit.Algorithms() {
		if name == "echo" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered algorithm not listed")
	}
	s, err := bufferkit.NewSolver(
		bufferkit.WithLibrary(bufferkit.GenerateLibrary(2)),
		bufferkit.WithAlgorithm("echo"),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(ctxBG(), bufferkit.TwoPinNet(1000, 2, 5, 100, bufferkit.PaperWire()))
	if err != nil || res.Slack != 123 {
		t.Fatalf("custom algorithm did not dispatch: res=%+v err=%v", res, err)
	}
}

func TestTypedErrors(t *testing.T) {
	// Polarity the library cannot serve → *ValidationError with vertex
	// and field detail.
	b := bufferkit.NewTreeBuilder()
	v := b.AddBufferPos(0, 1, 1)
	b.AddSinkPol(v, 1, 1, 2, 100, bufferkit.Negative)
	net := b.MustBuild()
	s, err := bufferkit.NewSolver(bufferkit.WithLibrary(bufferkit.GenerateLibrary(4)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(ctxBG(), net)
	var verr *bufferkit.ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("err %v is not a *ValidationError", err)
	}
	if verr.Vertex != 2 || verr.Field != "polarity" {
		t.Fatalf("ValidationError detail wrong: %+v", verr)
	}

	// Negative-polarity sink with inverters in the library but nowhere to
	// put one → ErrInfeasible.
	b2 := bufferkit.NewTreeBuilder()
	b2.AddSinkPol(0, 1, 1, 2, 100, bufferkit.Negative)
	s2, err := bufferkit.NewSolver(bufferkit.WithLibrary(bufferkit.GenerateLibraryWithInverters(4)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(ctxBG(), b2.MustBuild()); !errors.Is(err, bufferkit.ErrInfeasible) {
		t.Fatalf("err %v does not wrap ErrInfeasible", err)
	}

	// A canceled context → ErrCanceled.
	ctx, cancel := context.WithCancel(ctxBG())
	cancel()
	good := bufferkit.TwoPinNet(2000, 4, 10, 1000, bufferkit.PaperWire())
	if _, err := s.Run(ctx, good); !errors.Is(err, bufferkit.ErrCanceled) {
		t.Fatalf("err %v does not wrap ErrCanceled", err)
	}
}

// TestStreamMatchesRun: streaming yields every net exactly once with the
// same result a sequential Run produces, in whatever completion order.
func TestStreamMatchesRun(t *testing.T) {
	nets := batchNets(40)
	lib := bufferkit.GenerateLibrary(8)
	d := bufferkit.Driver{R: 0.25, K: 10}
	s, err := bufferkit.NewSolver(
		bufferkit.WithLibrary(lib),
		bufferkit.WithDriver(d),
		bufferkit.WithWorkers(4),
	)
	if err != nil {
		t.Fatal(err)
	}

	seen := map[int]*bufferkit.NetResult{}
	for res, err := range s.Stream(ctxBG(), nets) {
		if err != nil {
			t.Fatalf("net %d: %v", res.Index, err)
		}
		if _, dup := seen[res.Index]; dup {
			t.Fatalf("net %d yielded twice", res.Index)
		}
		r := res
		seen[res.Index] = &r
	}
	if len(seen) != len(nets) {
		t.Fatalf("stream yielded %d of %d nets", len(seen), len(nets))
	}
	var indices []int
	for i := range seen {
		indices = append(indices, i)
	}
	sort.Ints(indices)
	for _, i := range indices {
		want, err := s.Run(ctxBG(), nets[i])
		if err != nil {
			t.Fatal(err)
		}
		equalBits(t, "stream", seen[i].Slack, want.Slack)
		equalPlacement(t, "stream", seen[i].Placement, want.Placement)
	}
}

// waitGoroutines polls until the goroutine count settles back to base,
// failing with a full stack dump if it does not — the manual goroutine
// leak check for the streaming machinery.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestStreamEarlyBreak: breaking out of the loop stops the workers — no
// goroutine outlives the iterator.
func TestStreamEarlyBreak(t *testing.T) {
	base := runtime.NumGoroutine()
	nets := batchNets(64)
	s, err := bufferkit.NewSolver(
		bufferkit.WithLibrary(bufferkit.GenerateLibrary(8)),
		bufferkit.WithWorkers(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, err := range s.Stream(ctxBG(), nets) {
		if err != nil {
			t.Fatal(err)
		}
		if count++; count == 3 {
			break
		}
	}
	if count != 3 {
		t.Fatalf("consumed %d results, want 3", count)
	}
	waitGoroutines(t, base)
}

// TestStreamCancelMidRun: canceling the context mid-stream ends the
// sequence early without yielding every net and without leaking
// goroutines.
func TestStreamCancelMidRun(t *testing.T) {
	base := runtime.NumGoroutine()
	nets := batchNets(64)
	s, err := bufferkit.NewSolver(
		bufferkit.WithLibrary(bufferkit.GenerateLibrary(8)),
		bufferkit.WithWorkers(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(ctxBG())
	defer cancel()
	count := 0
	for _, err := range s.Stream(ctx, nets) {
		if err != nil {
			t.Fatalf("unexpected per-net error: %v", err)
		}
		if count++; count == 2 {
			cancel()
		}
	}
	// After cancel at 2, only already-in-flight results may still arrive:
	// at most workers + channel buffer more.
	if count > 8 {
		t.Fatalf("stream yielded %d results after a cancel at 2", count)
	}
	waitGoroutines(t, base)
}

// TestRunBatchCanceledPromptly is the satellite acceptance test: RunBatch
// under a canceled context returns promptly with ErrCanceled and leaks no
// goroutines.
func TestRunBatchCanceledPromptly(t *testing.T) {
	base := runtime.NumGoroutine()
	// 12 nets × ~20 ms each on 2 workers ≈ 120 ms of work.
	nets := make([]*bufferkit.Tree, 12)
	for i := range nets {
		tr, err := bufferkit.IndustrialNet(200, 8000, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		nets[i] = tr
	}
	s, err := bufferkit.NewSolver(
		bufferkit.WithLibrary(bufferkit.GenerateLibrary(16)),
		bufferkit.WithDriver(bufferkit.Driver{R: 0.2, K: 15}),
		bufferkit.WithWorkers(2),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-canceled: nothing runs, the error wraps ErrCanceled.
	ctx, cancel := context.WithCancel(ctxBG())
	cancel()
	start := time.Now()
	results, err := s.RunBatch(ctx, nets)
	if !errors.Is(err, bufferkit.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled RunBatch took %s", elapsed)
	}
	for i, r := range results {
		if r != nil {
			t.Fatalf("net %d ran under a canceled context", i)
		}
	}
	waitGoroutines(t, base)

	// Mid-run: cancel fires while workers are inside the per-vertex loops;
	// RunBatch returns the completed results plus ErrCanceled. (The fully
	// deterministic mid-run cancel — triggered from inside the consuming
	// loop — is TestStreamCancelMidRun; this phase additionally checks the
	// RunBatch error surface, skipping if the hardware outran the timer.)
	ctx2, cancel2 := context.WithCancel(ctxBG())
	timer := time.AfterFunc(25*time.Millisecond, cancel2)
	defer timer.Stop()
	defer cancel2()
	_, err = s.RunBatch(ctx2, nets)
	waitGoroutines(t, base)
	if err == nil {
		t.Skip("batch finished before the 25 ms cancel fired")
	}
	if !errors.Is(err, bufferkit.ErrCanceled) {
		t.Fatalf("mid-run err = %v, want ErrCanceled", err)
	}
}

// TestInsertBatchLegacyErrorContract pins the deprecated wrapper's
// historical behavior: an invalid library fails as a *BatchError naming
// every net (the way the per-net engine Resets used to report it), and an
// empty batch succeeds regardless.
func TestInsertBatchLegacyErrorContract(t *testing.T) {
	nets := batchNets(3)
	res, err := bufferkit.InsertBatch(nets, bufferkit.Library{}, bufferkit.BatchOptions{})
	be, ok := err.(*bufferkit.BatchError)
	if !ok {
		t.Fatalf("err = %v, want *BatchError", err)
	}
	if len(be.Errs) != len(nets) || len(res) != len(nets) {
		t.Fatalf("BatchError names %d nets, results %d; want %d each", len(be.Errs), len(res), len(nets))
	}
	if res, err := bufferkit.InsertBatch(nil, bufferkit.Library{}, bufferkit.BatchOptions{}); err != nil || len(res) != 0 {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
}

// TestRunBatchMatchesInsertBatch: the new collecting wrapper and the
// deprecated free function see the same worlds.
func TestRunBatchMatchesInsertBatch(t *testing.T) {
	nets := batchNets(24)
	lib := bufferkit.GenerateLibrary(8)
	d := bufferkit.Driver{R: 0.3, K: 5}

	legacy, err := bufferkit.InsertBatch(nets, lib, bufferkit.BatchOptions{Driver: d, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := bufferkit.NewSolver(
		bufferkit.WithLibrary(lib),
		bufferkit.WithDriver(d),
		bufferkit.WithWorkers(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.RunBatch(ctxBG(), nets)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nets {
		equalBits(t, "batch", got[i].Slack, legacy[i].Slack)
		equalPlacement(t, "batch", got[i].Placement, legacy[i].Placement)
		if got[i].Index != i {
			t.Fatalf("net %d: index %d", i, got[i].Index)
		}
	}
}

// TestBackendSelection covers the facade surface of the backend ablation:
// WithBackend names, the pinned AlgoCore/AlgoCoreSoA registry entries, and
// the validation error for unknown names. Every combination must agree
// bit-exactly, since the backends differ only in memory layout.
func TestBackendSelection(t *testing.T) {
	net := bufferkit.TwoPinNet(8000, 16, 10, 900, bufferkit.PaperWire())
	lib := bufferkit.GenerateLibrary(6)
	drv := bufferkit.Driver{R: 0.25, K: 10}

	var want float64
	first := true
	runWith := func(opts ...bufferkit.Option) {
		t.Helper()
		s, err := bufferkit.NewSolver(append([]bufferkit.Option{
			bufferkit.WithLibrary(lib), bufferkit.WithDriver(drv),
		}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		res, err := s.Run(ctxBG(), net)
		if err != nil {
			t.Fatal(err)
		}
		if first {
			want, first = res.Slack, false
		} else if res.Slack != want {
			t.Fatalf("backend variant diverged: %.17g != %.17g", res.Slack, want)
		}
	}
	for _, backend := range []string{"", "default", "list", "soa"} {
		runWith(bufferkit.WithBackend(backend))
	}
	for _, algo := range []string{bufferkit.AlgoCore, bufferkit.AlgoCoreSoA} {
		runWith(bufferkit.WithAlgorithm(algo))
		// The pinned entries must override a conflicting WithBackend.
		runWith(bufferkit.WithAlgorithm(algo), bufferkit.WithBackend("list"))
	}
	// Lillis honors WithBackend too.
	runWith(bufferkit.WithAlgorithm(bufferkit.AlgoLillis), bufferkit.WithBackend("list"))
	runWith(bufferkit.WithAlgorithm(bufferkit.AlgoLillis), bufferkit.WithBackend("soa"))

	if _, err := bufferkit.NewSolver(bufferkit.WithLibrary(lib), bufferkit.WithBackend("nope")); err == nil {
		t.Fatal("NewSolver accepted an unknown backend name")
	}
}
