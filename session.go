package bufferkit

import (
	"context"

	"bufferkit/internal/core"
	"bufferkit/internal/solvererr"
)

// Delta is one typed ECO perturbation a Session absorbs; the concrete
// types are SinkDelta, EdgeDelta, BufferDelta and PenaltyDelta.
type Delta = core.Delta

// SinkDelta sets a sink's required arrival time and load (absolute values).
type SinkDelta = core.SinkDelta

// EdgeDelta sets the R/C of the wire into a vertex (absolute values).
type EdgeDelta = core.EdgeDelta

// BufferDelta sets a vertex's buffer-position flag and optional per-vertex
// allowed-type restriction.
type BufferDelta = core.BufferDelta

// PenaltyDelta sets the per-vertex site-penalty vector (the chip
// allocator's price channel).
type PenaltyDelta = core.PenaltyDelta

// SessionStats instrument a session's resolve history.
type SessionStats = core.SessionStats

// Session is an incremental ECO re-solver for one net. It owns a private
// clone of the tree and a dedicated warm engine whose arena retains every
// vertex's candidate frontier; Patch applies typed deltas and marks the
// perturbed vertex-to-root paths dirty, and Resolve recomputes exactly
// those paths, reusing checkpointed sibling frontiers at every merge. The
// result of every Resolve is bit-identical — slack, placement, cost — to a
// cold Solver.Run on the identically patched net (enforced by the ECO
// differential suite on both backends), at a cost proportional to the
// dirty region instead of the whole tree.
//
// Patch is chainable and sticky: an invalid delta rejects its whole batch
// atomically (the session state is untouched), and the error surfaces from
// the next Resolve, after which the session is usable again. A Session is
// not safe for concurrent use; it is independent of its Solver's lock, so
// many sessions may resolve in parallel.
type Session struct {
	solver *Solver
	cs     *core.Session
	err    error
}

// NewSession opens an incremental ECO session on net t. Sessions run on
// the core engine, so the solver's algorithm must be the paper's (the
// default, or the pinned "core"/"core-soa" entries); the session follows
// the solver's library, driver, prune mode, backend and invariant-checking
// configuration.
func (s *Solver) NewSession(t *Tree) (*Session, error) {
	backend, err := s.coreBackend("ECO sessions")
	if err != nil {
		return nil, err
	}
	if err := s.checkReducible(t); err != nil {
		return nil, err
	}
	cs, err := core.NewSession(t, s.cfg.Library, core.Options{
		Driver:          s.cfg.Driver,
		Prune:           s.cfg.Prune,
		Backend:         backend,
		CheckInvariants: s.cfg.CheckInvariants,
	})
	if err != nil {
		return nil, err
	}
	return &Session{solver: s, cs: cs}, nil
}

// Patch applies a batch of deltas atomically: every delta is validated
// before any is applied, so an invalid delta leaves the session unchanged.
// The first error sticks to the session and is reported by the next
// Resolve (or Err), keeping call chains `session.Patch(d).Resolve(ctx)`
// ergonomic.
func (ss *Session) Patch(deltas ...Delta) *Session {
	if ss.err != nil {
		return ss
	}
	if ss.solver.libMap != nil {
		for _, d := range deltas {
			if bd, ok := d.(BufferDelta); ok && bd.Allowed != nil {
				ss.err = solvererr.Validation("bufferkit", "allowed",
					"vertex %d restricts allowed types by original library index; incompatible with WithLibraryReduction", bd.Vertex)
				return ss
			}
		}
	}
	if err := ss.cs.Patch(deltas...); err != nil {
		ss.err = err
	}
	return ss
}

// Err returns the sticky error of a failed Patch, without clearing it.
func (ss *Session) Err() error { return ss.err }

// Resolve re-solves the patched net, recomputing only the dirty
// vertex-to-root paths (everything on the first call or after an error).
// A sticky Patch error is returned — and cleared, the rejected batch never
// having touched the session — instead of resolving. Engine errors
// (ErrInfeasible, ErrCanceled) leave the session usable; the next Resolve
// recomputes from scratch.
func (ss *Session) Resolve(ctx context.Context) (*NetResult, error) {
	if ss.err != nil {
		err := ss.err
		ss.err = nil
		return nil, err
	}
	res := &core.Result{} // fresh per call: callers keep their results
	if err := ss.cs.Resolve(ctx, res); err != nil {
		return nil, err
	}
	nr := &NetResult{Slack: res.Slack, Placement: res.Placement, Candidates: res.Candidates}
	if ss.solver.cfg.CollectStats {
		nr.Stats = res.Stats
	}
	ss.solver.remapPlacement(nr.Placement)
	return nr, nil
}

// Stats returns the session's resolve instrumentation (resolve count, full
// rebuilds, vertices recomputed by the last resolve).
func (ss *Session) Stats() SessionStats { return ss.cs.Stats() }

// Tree exposes the session's private patched tree — the instance a cold
// Run must use to reproduce the next Resolve bit for bit (bufferkitd
// serializes it for the result cache's coherence key). Callers must treat
// it as read-only; all mutation goes through Patch.
func (ss *Session) Tree() *Tree { return ss.cs.Tree() }

// Close releases the session's engine state. Further use fails.
func (ss *Session) Close() { ss.cs.Close() }
