// Benchmarks regenerating the paper's evaluation (one benchmark per table
// and figure) plus the DESIGN.md §6 ablations. Workload sizes are the
// paper's divided by benchScale so `go test -bench=.` finishes in minutes;
// `go run ./cmd/repro` runs the same experiments at full paper scale and
// EXPERIMENTS.md records those numbers.
package bufferkit_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"bufferkit"
	"bufferkit/internal/candidate"
	"bufferkit/internal/core"
	"bufferkit/internal/delay"
	"bufferkit/internal/experiments"
	"bufferkit/internal/library"
	"bufferkit/internal/lillis"
	"bufferkit/internal/netgen"
	"bufferkit/internal/tree"
)

// benchScale divides the paper's m and n for the benchmark suite.
const benchScale = 4

var drv = experiments.Driver

var (
	netCache   = map[[2]int]*tree.Tree{}
	netCacheMu sync.Mutex
)

// benchNet returns the (cached) scaled industrial net for a paper case.
func benchNet(b *testing.B, m, n int) *tree.Tree {
	b.Helper()
	netCacheMu.Lock()
	defer netCacheMu.Unlock()
	key := [2]int{m, n}
	if t, ok := netCache[key]; ok {
		return t
	}
	t, err := netgen.Industrial(max(2, m/benchScale), max(2, n/benchScale), 1)
	if err != nil {
		b.Fatal(err)
	}
	netCache[key] = t
	return t
}

func runLillis(b *testing.B, t *tree.Tree, lib library.Library) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lillis.Insert(t, lib, drv); err != nil {
			b.Fatal(err)
		}
	}
}

func runNew(b *testing.B, t *tree.Tree, lib library.Library, mode core.PruneMode) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Insert(t, lib, core.Options{Driver: drv, Prune: mode}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1: the three industrial cases × four
// library sizes × both algorithms. The paper reports the new algorithm up
// to ~11× faster at b = 64.
func BenchmarkTable1(b *testing.B) {
	for _, cs := range experiments.Table1Cases {
		t := benchNet(b, cs.M, cs.N)
		for _, size := range experiments.LibSizes {
			lib := library.Generate(size)
			name := fmt.Sprintf("m%d_n%d/b%d", cs.M, cs.N, size)
			b.Run(name+"/lillis", func(b *testing.B) { runLillis(b, t, lib) })
			b.Run(name+"/new", func(b *testing.B) { runNew(b, t, lib, core.PruneTransient) })
		}
	}
}

// BenchmarkFig3 regenerates Figure 3: runtime versus library size b on the
// 1944-sink net. Normalize each series to its b=8 entry to compare slopes
// with the paper's plot (Lillis ≈ 11×, new ≈ 2× at b = 64).
func BenchmarkFig3(b *testing.B) {
	t := benchNet(b, 1944, 33133)
	for _, size := range []int{8, 16, 24, 32, 40, 48, 56, 64} {
		lib := library.Generate(size)
		b.Run(fmt.Sprintf("b%d/lillis", size), func(b *testing.B) { runLillis(b, t, lib) })
		b.Run(fmt.Sprintf("b%d/new", size), func(b *testing.B) { runNew(b, t, lib, core.PruneTransient) })
	}
}

// BenchmarkFig4 regenerates Figure 4: runtime versus buffer positions n at
// b = 32. Both series grow superlinearly; the new algorithm's growth is
// much slower.
func BenchmarkFig4(b *testing.B) {
	lib := library.Generate(32)
	for _, n := range []int{1943, 4142, 8283, 16566, 33133, 66266} {
		t := benchNet(b, 1944, n)
		b.Run(fmt.Sprintf("n%d/lillis", n), func(b *testing.B) { runLillis(b, t, lib) })
		b.Run(fmt.Sprintf("n%d/new", n), func(b *testing.B) { runNew(b, t, lib, core.PruneTransient) })
	}
}

// BenchmarkAblationAddBuffer isolates the paper's core claim at the data-
// structure level: finding the best candidate for every one of b buffer
// types via b full linear scans (Lillis) versus one Graham scan plus a
// monotone pointer walk (the paper). List lengths span the range the
// industrial nets produce.
func BenchmarkAblationAddBuffer(b *testing.B) {
	lib := library.Generate(64)
	orderR := lib.ByRDesc()
	for _, k := range []int{64, 256, 1024, 4096} {
		pairs := syntheticList(k)
		b.Run(fmt.Sprintf("k%d/linearscan", k), func(b *testing.B) {
			l := candidate.FromPairs(pairs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for ti := range lib {
					if l.BestForR(lib[ti].R) == nil {
						b.Fatal("empty list")
					}
				}
			}
		})
		b.Run(fmt.Sprintf("k%d/hullwalk", k), func(b *testing.B) {
			l := candidate.FromPairs(pairs)
			buf := make([]*candidate.Node, 0, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hull := l.HullViewInto(buf)
				p := 0
				for _, ti := range orderR {
					r := lib[ti].R
					for p+1 < len(hull) && hull[p+1].Q-r*hull[p+1].C > hull[p].Q-r*hull[p].C {
						p++
					}
				}
				buf = hull[:0]
			}
		})
	}
}

// BenchmarkAblationPruneMode compares transient (exact) and destructive
// (paper-literal) convex pruning on a multi-pin net.
func BenchmarkAblationPruneMode(b *testing.B) {
	t := benchNet(b, 1944, 33133)
	lib := library.Generate(32)
	b.Run("transient", func(b *testing.B) { runNew(b, t, lib, core.PruneTransient) })
	b.Run("destructive", func(b *testing.B) { runNew(b, t, lib, core.PruneDestructive) })
}

// BenchmarkAblationListImpl compares the doubly-linked candidate list with
// the structure-of-arrays representation on an identical operation mix
// (wire, merge-betas, convex prune) shaped like one buffer position's work.
// BenchmarkBackends measures the same trade-off through the whole engine.
func BenchmarkAblationListImpl(b *testing.B) {
	for _, k := range []int{64, 512, 4096} {
		pairs := syntheticList(k)
		betas := syntheticBetas(64, pairs[k-1].C)
		b.Run(fmt.Sprintf("k%d/backend=list", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l := candidate.FromPairs(pairs)
				l.AddWire(0.01, 5)
				l.MergeBetas(betas)
				l.ConvexPruneInPlace()
				l.Recycle()
			}
		})
		b.Run(fmt.Sprintf("k%d/backend=soa", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l := candidate.SoAFromPairs(pairs)
				l.AddWire(0.01, 5)
				l.MergeBetas(betas)
				l.ConvexPruneInPlace()
				l.Recycle()
			}
		})
	}
}

// BenchmarkAblationBetaInsert compares the paper's single-pass O(k+b) beta
// merge (Theorem 2) with Lillis-style per-beta O(k) insertion.
func BenchmarkAblationBetaInsert(b *testing.B) {
	for _, k := range []int{256, 4096} {
		pairs := syntheticList(k)
		betas := syntheticBetas(64, pairs[k-1].C)
		b.Run(fmt.Sprintf("k%d/mergebetas", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l := candidate.FromPairs(pairs)
				l.MergeBetas(betas)
				l.Recycle()
			}
		})
		b.Run(fmt.Sprintf("k%d/insertone", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l := candidate.FromPairs(pairs)
				for j := range betas {
					l.InsertOne(betas[j].Q, betas[j].C, 0)
				}
				l.Recycle()
			}
		})
	}
}

// BenchmarkEngineReuse is the tentpole's headline measurement: the same
// instance run through the single-shot path (a fresh engine and arena per
// call, as the seed did on every Insert) versus a warm engine that keeps
// its arena and scratch across runs. The warm series must show ~0 allocs/op
// and materially lower ns/op.
func BenchmarkEngineReuse(b *testing.B) {
	t := benchNet(b, 337, 5729)
	for _, size := range []int{8, 32} {
		lib := library.Generate(size)
		opt := core.Options{Driver: drv}
		b.Run(fmt.Sprintf("b%d/coldshot", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Insert(t, lib, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("b%d/warm", size), func(b *testing.B) {
			eng := core.NewEngine()
			if err := eng.Reset(t, lib, opt); err != nil {
				b.Fatal(err)
			}
			res := &core.Result{}
			if err := eng.Run(res); err != nil { // warm the arena slabs
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.Run(res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkECOResolve measures the incremental-session win: mode=cold is a
// full warm-engine re-solve of the net, mode=delta a session resolve after
// one sink patch, which recomputes only the leaf-to-root path. The case
// table is shared with repro -bench-json (BENCH_engine.json's eco/ series)
// through experiments.ECOBenchCases; the acceptance target is ≥10x on the
// single-sink delta.
func BenchmarkECOResolve(b *testing.B) {
	for _, ec := range experiments.ECOBenchCases() {
		sink := ec.Tree.Sinks()[0]
		for _, backend := range []core.Backend{core.BackendList, core.BackendSoA} {
			opt := core.Options{Driver: drv, Backend: backend}
			b.Run(fmt.Sprintf("regime=%s/backend=%s/mode=cold", ec.Name, backend), func(b *testing.B) {
				eng := core.NewEngine()
				if err := eng.Reset(ec.Tree, ec.Lib, opt); err != nil {
					b.Fatal(err)
				}
				res := &core.Result{}
				if err := eng.Run(res); err != nil { // warm the arena slabs
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := eng.Run(res); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("regime=%s/backend=%s/mode=delta", ec.Name, backend), func(b *testing.B) {
				sess, err := core.NewSession(ec.Tree, ec.Lib, opt)
				if err != nil {
					b.Fatal(err)
				}
				defer sess.Close()
				ctx := context.Background()
				res := &core.Result{}
				for i := 0; i < 8; i++ { // first resolve is full; warm past it
					if err := sess.PatchSink(sink, 1200+float64(i%7), 8); err != nil {
						b.Fatal(err)
					}
					if err := sess.Resolve(ctx, res); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := sess.PatchSink(sink, 1200+float64(i%7), 8); err != nil {
						b.Fatal(err)
					}
					if err := sess.Resolve(ctx, res); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkInsertBatch measures batch throughput scaling over a 256-net
// workload: one engine+arena per worker, results identical to sequential
// runs (asserted by the batch tests). The nets/s metric is the number the
// acceptance criterion tracks.
func BenchmarkInsertBatch(b *testing.B) {
	nets := experiments.BatchWorkload(256) // shared with repro -bench-json
	lib := library.Generate(16)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bufferkit.InsertBatch(nets, lib, bufferkit.BatchOptions{
					Driver:  drv,
					Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(nets)*b.N)/b.Elapsed().Seconds(), "nets/s")
		})
	}
}

// BenchmarkBackends is the head-to-head list-vs-SoA comparison through the
// whole engine, across the list-length regimes that matter: small and large
// libraries on a bushy industrial net, a long 2-pin line (deep lists, the
// pointer-chasing worst case), and a balanced multi-pin tree (many short
// lists, heavy merging). Sub-benchmark names follow the benchstat key=value
// convention, so
//
//	go test -bench 'Backends' -count 10 | benchstat -col /backend -
//
// renders the ablation directly. Engines are warm (Reset once, Run per
// iteration), so the numbers measure the representations, not allocation.
// DESIGN.md §11 records the measured trade-off and the chosen default.
func BenchmarkBackends(b *testing.B) {
	// The regime table is shared with repro -bench-json (BENCH_engine.json)
	// through experiments.BackendRegimes, so the two trajectories measure
	// the same workloads under the same names. The industrial net is the
	// usual benchScale-scaled case; the synthetic lines run at full paper
	// scale here.
	regimes := experiments.BackendRegimes(benchNet(b, 337, 5729), 1)
	for _, rg := range regimes {
		for _, backend := range []core.Backend{core.BackendList, core.BackendSoA} {
			b.Run(fmt.Sprintf("regime=%s/backend=%s", rg.Name, backend), func(b *testing.B) {
				eng := core.NewEngine()
				if err := eng.Reset(rg.Tree, rg.Lib, core.Options{Driver: drv, Backend: backend}); err != nil {
					b.Fatal(err)
				}
				res := &core.Result{}
				if err := eng.Run(res); err != nil { // warm the arena slabs
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := eng.Run(res); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkYieldSweep measures the Monte Carlo corner fan-out of
// Solver.SolveYield on warm pooled engines: the per-corner cost should
// track one warm engine run (the sweep's inner loop allocates nothing),
// and the robust case adds the cross-corner placement re-scoring pass.
// The case table is shared with repro -bench-json (BENCH_engine.json)
// through experiments.YieldBenchCases.
func BenchmarkYieldSweep(b *testing.B) {
	t := benchNet(b, 337, 5729)
	lib := library.Generate(16)
	for _, yb := range experiments.YieldBenchCases() {
		b.Run(yb.Name, func(b *testing.B) {
			solver, err := bufferkit.NewSolver(
				bufferkit.WithLibrary(lib),
				bufferkit.WithDriver(drv),
				bufferkit.WithSamples(yb.Samples),
				bufferkit.WithSigma(yb.Sigma),
				bufferkit.WithRobustPlacement(yb.Robust),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer solver.Close()
			ctx := context.Background()
			if _, err := solver.SolveYield(ctx, t); err != nil { // warm the pool
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.SolveYield(ctx, t); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64((1+yb.Samples)*b.N)/b.Elapsed().Seconds(), "corners/s")
		})
	}
}

// BenchmarkChipSolve measures multi-net price-and-resolve allocation over
// a shared site grid: an uncontended instance (the parallel fan-out floor,
// one solve per net) and a center-contended one driving the full pricing
// loop. nets/s counts oracle re-solves across all rounds; the rounds
// metric is the instance's deterministic rounds-to-feasible. The case
// table is shared with repro -bench-json (BENCH_engine.json) through
// experiments.ChipBenchCases.
func BenchmarkChipSolve(b *testing.B) {
	lib := library.Generate(16)
	for _, cb := range experiments.ChipBenchCases(1) {
		b.Run(cb.Name, func(b *testing.B) {
			solver, err := bufferkit.NewSolver(bufferkit.WithLibrary(lib))
			if err != nil {
				b.Fatal(err)
			}
			defer solver.Close()
			ctx := context.Background()
			inst := bufferkit.GenerateChip(cb.Opts)
			warm, err := solver.SolveChip(ctx, inst) // warm the pool, record rounds
			if err != nil {
				b.Fatal(err)
			}
			solves := 0
			for _, r := range warm.Rounds {
				solves += r.Resolved
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := solver.SolveChip(ctx, inst); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(solves*b.N)/b.Elapsed().Seconds(), "nets/s")
			b.ReportMetric(float64(len(warm.Rounds)), "rounds")
		})
	}
}

// BenchmarkEvaluate measures the exact Elmore oracle, the substrate all
// verification rests on.
func BenchmarkEvaluate(b *testing.B) {
	t := benchNet(b, 1944, 33133)
	lib := library.Generate(16)
	res, err := core.Insert(t, lib, core.Options{Driver: drv})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := delay.Evaluate(t, lib, res.Placement, drv); err != nil {
			b.Fatal(err)
		}
	}
}

// syntheticList builds a deterministic strictly increasing (Q, C) set with
// a mildly concave profile plus noise, so hulls are nontrivial.
func syntheticList(k int) []candidate.Pair {
	rng := rand.New(rand.NewSource(int64(k)))
	pairs := make([]candidate.Pair, k)
	q, c := 0.0, 0.0
	for i := range pairs {
		q += 0.1 + rng.Float64()*10/float64(1+i/8)
		c += 0.1 + rng.Float64()
		pairs[i] = candidate.Pair{Q: q, C: c}
	}
	return pairs
}

// syntheticBetas spreads nb buffered candidates across the list's full
// capacitance range (cmax), so per-beta insertion depth matches a library
// whose input capacitances interleave with the whole candidate set.
func syntheticBetas(nb int, cmax float64) []candidate.Beta {
	rng := rand.New(rand.NewSource(int64(nb) * 7))
	betas := make([]candidate.Beta, nb)
	q, c := 5.0, 0.5
	for i := range betas {
		betas[i] = candidate.Beta{Q: q, C: c}
		q += 0.2 + rng.Float64()*8
		c += cmax / float64(nb) * (0.5 + rng.Float64())
	}
	return betas
}
