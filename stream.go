package bufferkit

import (
	"context"
	"errors"
	"iter"
	"runtime"
	"sync"
	"sync/atomic"

	"bufferkit/internal/orderbuf"
	"bufferkit/internal/solvererr"
)

// Stream runs the solver over every net concurrently on a worker pool and
// yields each net's outcome as soon as it completes — results arrive in
// completion order, not input order; NetResult.Index identifies the net.
// The second sequence value is that net's error (nil on success), so a
// million-net run can report progress, surface per-net failures
// immediately, and stop early.
//
// Breaking out of the loop, or cancellation of ctx, stops the workers and
// releases their engines before the iterator returns — no goroutines
// outlive the loop. After cancellation the sequence ends without yielding
// the unprocessed nets; RunBatch is the collecting wrapper that also
// reports the cancellation as an error.
//
// Configuration errors (a WithDrivers length mismatch) are yielded once
// with Index = -1 before the sequence ends.
func (s *Solver) Stream(ctx context.Context, nets []*Tree) iter.Seq2[NetResult, error] {
	return func(yield func(NetResult, error) bool) {
		if s.drivers != nil && len(s.drivers) != len(nets) {
			yield(NetResult{Index: -1}, solvererr.Validation("bufferkit", "drivers",
				"batch has %d per-net drivers for %d nets", len(s.drivers), len(nets)))
			return
		}
		if len(nets) == 0 {
			return
		}
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()

		workers := s.workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(nets) {
			workers = len(nets)
		}

		type item struct {
			res NetResult
			err error
		}
		ch := make(chan item, workers)
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				algo := s.factory()
				if r, ok := algo.(releaser); ok {
					defer r.release()
				}
				for {
					i := int(next.Add(1)) - 1
					if i >= len(nets) || ctx.Err() != nil {
						return
					}
					cfg := s.cfg
					if s.drivers != nil {
						cfg.Driver = s.drivers[i]
					}
					var nr *NetResult
					err := s.checkReducible(nets[i])
					if err == nil {
						nr, err = algo.Solve(ctx, nets[i], cfg)
					}
					if err == nil {
						s.remapPlacement(nr.Placement)
					}
					it := item{err: err}
					if err != nil {
						// A genuine cancellation abort is not a per-net
						// outcome; the worker just stops. An algorithm
						// returning ErrCanceled while ctx is still alive
						// (a third-party per-net timeout, say) stays a
						// per-net failure.
						if errors.Is(err, ErrCanceled) && ctx.Err() != nil {
							return
						}
						it.res = NetResult{Index: i}
					} else {
						nr.Index = i
						it.res = *nr
					}
					// Try a non-blocking send first: a result that is
					// already computed should reach the consumer even if
					// cancellation races in, so "completed so far" stays
					// deterministic for finished work.
					select {
					case ch <- it:
					default:
						select {
						case ch <- it:
						case <-ctx.Done():
							return
						}
					}
				}
			}()
		}
		go func() {
			wg.Wait()
			close(ch)
		}()
		// On any exit — consumer break, cancellation, or normal drain —
		// stop the workers and wait for them via channel close, so the
		// iterator never leaks a goroutine past its return.
		defer func() {
			cancel()
			for range ch {
			}
		}()
		for it := range ch {
			if !yield(it.res, it.err) {
				return
			}
		}
	}
}

// StreamOrdered is Stream with input-order delivery: net i's outcome is
// yielded only after nets 0..i-1 have been yielded, so consumers printing
// results line-by-line get deterministic output across runs regardless of
// worker scheduling. Out-of-order completions are buffered (worst case
// O(len(nets)) held results, each a small struct), so throughput matches
// Stream; only delivery latency changes.
//
// Cancellation semantics match Stream: after ctx fires the sequence ends
// without yielding unprocessed nets, which under ordering means it ends at
// the first net that never completed — yielded results are always the
// prefix 0..k of the input.
func (s *Solver) StreamOrdered(ctx context.Context, nets []*Tree) iter.Seq2[NetResult, error] {
	return func(yield func(NetResult, error) bool) {
		type item struct {
			res NetResult
			err error
		}
		buf := orderbuf.New[item](len(nets))
		for nr, err := range s.Stream(ctx, nets) {
			if nr.Index < 0 { // configuration error: not tied to a net
				yield(nr, err)
				return
			}
			if !buf.Add(nr.Index, item{res: nr, err: err}, func(it item) bool {
				return yield(it.res, it.err)
			}) {
				return
			}
		}
	}
}

// RunBatch is the collecting wrapper over Stream: it solves every net and
// returns results positionally aligned with nets — identical to running
// Run sequentially on each (the algorithms are deterministic and workers
// share nothing).
//
// If ctx is canceled mid-run, RunBatch returns promptly with the results
// completed so far and an error wrapping ErrCanceled. If individual nets
// fail, the error is a *BatchError naming each one and the result slice
// holds nil at the failed indices.
func (s *Solver) RunBatch(ctx context.Context, nets []*Tree) ([]*NetResult, error) {
	results := make([]*NetResult, len(nets))
	var failed map[int]error
	for nr, err := range s.Stream(ctx, nets) {
		if err != nil {
			if nr.Index < 0 {
				return nil, err
			}
			if failed == nil {
				failed = map[int]error{}
			}
			failed[nr.Index] = err
			continue
		}
		r := nr
		results[r.Index] = &r
	}
	if ctx.Err() != nil {
		canceled := solvererr.Canceled(ctx)
		if len(failed) > 0 {
			// Keep the per-net failures observable (errors.As still finds
			// the *BatchError) alongside the cancellation.
			return results, errors.Join(canceled, &BatchError{Errs: failed})
		}
		return results, canceled
	}
	if len(failed) > 0 {
		return results, &BatchError{Errs: failed}
	}
	return results, nil
}
