package bufferkit_test

import (
	"context"
	"testing"

	"bufferkit"
)

// TestStreamOrdered: results arrive strictly in input order with every
// index present, and agree with RunBatch.
func TestStreamOrdered(t *testing.T) {
	lib := bufferkit.GenerateLibrary(8)
	nets := make([]*bufferkit.Tree, 16)
	for i := range nets {
		nets[i] = bufferkit.RandomNet(bufferkit.NetOpts{Sinks: 3 + i%4, Seed: int64(i)})
	}
	solver, err := bufferkit.NewSolver(bufferkit.WithLibrary(lib), bufferkit.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := solver.RunBatch(context.Background(), nets)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		next := 0
		for res, err := range solver.StreamOrdered(context.Background(), nets) {
			if err != nil {
				t.Fatalf("net %d: %v", res.Index, err)
			}
			if res.Index != next {
				t.Fatalf("round %d: got index %d, want %d (out of order)", round, res.Index, next)
			}
			if res.Slack != want[res.Index].Slack {
				t.Fatalf("net %d: slack %v != RunBatch's %v", res.Index, res.Slack, want[res.Index].Slack)
			}
			next++
		}
		if next != len(nets) {
			t.Fatalf("round %d: yielded %d of %d nets", round, next, len(nets))
		}
	}
}

// TestStreamOrderedEarlyBreak: breaking out mid-iteration releases the
// workers without yielding further nets.
func TestStreamOrderedEarlyBreak(t *testing.T) {
	lib := bufferkit.GenerateLibrary(4)
	nets := make([]*bufferkit.Tree, 8)
	for i := range nets {
		nets[i] = bufferkit.RandomNet(bufferkit.NetOpts{Sinks: 2, Seed: int64(i)})
	}
	solver, err := bufferkit.NewSolver(bufferkit.WithLibrary(lib), bufferkit.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for res, err := range solver.StreamOrdered(context.Background(), nets) {
		if err != nil {
			t.Fatalf("net %d: %v", res.Index, err)
		}
		if seen++; seen == 3 {
			break
		}
	}
	if seen != 3 {
		t.Fatalf("saw %d results, want 3", seen)
	}
}

// TestStreamOrderedConfigError: a drivers-length mismatch is yielded once
// with Index = -1, exactly like Stream.
func TestStreamOrderedConfigError(t *testing.T) {
	lib := bufferkit.GenerateLibrary(2)
	nets := []*bufferkit.Tree{bufferkit.RandomNet(bufferkit.NetOpts{Sinks: 2, Seed: 1})}
	solver, err := bufferkit.NewSolver(
		bufferkit.WithLibrary(lib),
		bufferkit.WithDrivers(make([]bufferkit.Driver, 3)),
	)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for res, err := range solver.StreamOrdered(context.Background(), nets) {
		count++
		if res.Index != -1 || err == nil {
			t.Fatalf("got (%d, %v), want index -1 with an error", res.Index, err)
		}
	}
	if count != 1 {
		t.Fatalf("config error yielded %d times, want once", count)
	}
}

// TestAlgorithmInfos: every built-in algorithm self-describes.
func TestAlgorithmInfos(t *testing.T) {
	infos := bufferkit.AlgorithmInfos()
	if len(infos) < 4 {
		t.Fatalf("got %d algorithms, want ≥ 4", len(infos))
	}
	byName := map[string]string{}
	for _, in := range infos {
		byName[in.Name] = in.Description
	}
	for _, name := range []string{bufferkit.AlgoNew, bufferkit.AlgoLillis, bufferkit.AlgoVanGinneken, bufferkit.AlgoCostSlack} {
		if byName[name] == "" {
			t.Errorf("algorithm %q has no description", name)
		}
	}
}
