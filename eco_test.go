package bufferkit

// The ECO differential harness: every session resolve must be bit-identical
// to a cold Solver.Run on the identically patched net. The test maintains
// its own mirror tree, applies each random delta to both the session and
// the mirror, and compares slack, placement and candidate counts exactly —
// on both candidate-list backends. Infeasibility (a patch can disable the
// only inverter position a negative sink needs) must agree too.

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"bufferkit/internal/netgen"
	"bufferkit/internal/tree"
)

// ecoDelta is one randomized facade-level patch plus its mirror action on
// the test-maintained cold tree. PenaltyDelta is deliberately absent: the
// facade has no penalty channel on cold Run (prices are the chip
// allocator's, covered by TestChipSessionsMatchCold and the core suite).
func ecoDelta(rng *rand.Rand, tr *Tree, libSize int) (Delta, func(*Tree)) {
	var sinks, inner []int
	for v := range tr.Verts {
		if tr.Verts[v].Kind == tree.Sink {
			sinks = append(sinks, v)
		} else if v != 0 {
			inner = append(inner, v)
		}
	}
	switch k := rng.Intn(3); {
	case k == 0 || len(inner) == 0:
		d := SinkDelta{Vertex: sinks[rng.Intn(len(sinks))], RAT: 40 * rng.Float64(), Cap: 0.5 + 4*rng.Float64()}
		return d, func(m *Tree) { m.Verts[d.Vertex].RAT, m.Verts[d.Vertex].Cap = d.RAT, d.Cap }
	case k == 1:
		d := EdgeDelta{Vertex: 1 + rng.Intn(tr.Len()-1), R: 0.5 * rng.Float64(), C: 5 * rng.Float64()}
		return d, func(m *Tree) { m.Verts[d.Vertex].EdgeR, m.Verts[d.Vertex].EdgeC = d.R, d.C }
	default:
		d := BufferDelta{Vertex: inner[rng.Intn(len(inner))], OK: rng.Intn(4) != 0}
		if rng.Intn(3) == 0 {
			d.Allowed = []int{rng.Intn(libSize)}
		}
		return d, func(m *Tree) {
			m.Verts[d.Vertex].BufferOK = d.OK
			m.Verts[d.Vertex].Allowed = append([]int(nil), d.Allowed...)
		}
	}
}

// TestECODifferential drives randomized patch sequences over a ≥100-net
// corpus on both backends, asserting every session Resolve is bit-identical
// to a cold Run on the mirror tree.
func TestECODifferential(t *testing.T) {
	lib := GenerateLibraryWithInverters(3)
	const seeds = 60
	total := 0
	for _, backend := range []string{"list", "soa"} {
		t.Run(backend, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				rng := rand.New(rand.NewSource(seed))
				tr := netgen.RandomSmall(seed, 6, 0.3)
				drv := Driver{R: 0.3 * rng.Float64(), K: 20 * rng.Float64()}
				s, err := NewSolver(WithLibrary(lib), WithDriver(drv), WithBackend(backend))
				if err != nil {
					t.Fatal(err)
				}
				mirror := tr.Clone()
				sess, err := s.NewSession(tr)
				if err != nil {
					t.Fatalf("seed %d: NewSession: %v", seed, err)
				}
				total++
				for step := 0; step < 7; step++ {
					if step > 0 {
						d, apply := ecoDelta(rng, mirror, len(lib))
						if err := sess.Patch(d).Err(); err != nil {
							t.Fatalf("seed %d step %d: patch: %v", seed, step, err)
						}
						apply(mirror)
					}
					got, sessErr := sess.Resolve(context.Background())
					want, coldErr := s.Run(context.Background(), mirror)
					if (sessErr == nil) != (coldErr == nil) {
						t.Fatalf("seed %d step %d: session err %v, cold err %v", seed, step, sessErr, coldErr)
					}
					if sessErr != nil {
						if !errors.Is(sessErr, ErrInfeasible) || !errors.Is(coldErr, ErrInfeasible) {
							t.Fatalf("seed %d step %d: expected matching infeasibility, session %v cold %v",
								seed, step, sessErr, coldErr)
						}
						continue
					}
					if got.Slack != want.Slack {
						t.Fatalf("seed %d step %d: slack diverged: session %.17g, cold %.17g",
							seed, step, got.Slack, want.Slack)
					}
					if got.Candidates != want.Candidates {
						t.Fatalf("seed %d step %d: candidates diverged: session %d, cold %d",
							seed, step, got.Candidates, want.Candidates)
					}
					for v := range want.Placement {
						if got.Placement[v] != want.Placement[v] {
							t.Fatalf("seed %d step %d: placement diverged at vertex %d: session %d, cold %d",
								seed, step, v, got.Placement[v], want.Placement[v])
						}
					}
				}
				sess.Close()
				s.Close()
			}
		})
	}
	if total < 100 {
		t.Fatalf("ECO corpus has %d session nets, want ≥ 100", total)
	}
}

// TestSessionStickyPatchError asserts the chainable-Patch error contract:
// an invalid delta rejects its batch, sticks to the session, surfaces from
// the next Resolve (cleared), and leaves the session usable.
func TestSessionStickyPatchError(t *testing.T) {
	lib := GenerateLibrary(3)
	s, err := NewSolver(WithLibrary(lib), WithDriver(Driver{R: 0.2, K: 10}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr := netgen.RandomSmall(1, 6, 0)
	sess, err := s.NewSession(tr)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	base, err := sess.Resolve(context.Background())
	if err != nil {
		t.Fatalf("baseline resolve: %v", err)
	}

	bad := sess.Patch(SinkDelta{Vertex: 0, RAT: 1, Cap: 1}) // vertex 0 is the source
	if bad.Err() == nil {
		t.Fatal("invalid patch did not stick an error")
	}
	var verr *ValidationError
	if _, err := bad.Resolve(context.Background()); !errors.As(err, &verr) {
		t.Fatalf("Resolve after invalid patch: want ValidationError, got %v", err)
	}
	if sess.Err() != nil {
		t.Fatal("Resolve did not clear the sticky error")
	}
	res, err := sess.Resolve(context.Background())
	if err != nil {
		t.Fatalf("resolve after cleared error: %v", err)
	}
	if res.Slack != base.Slack {
		t.Fatalf("rejected patch changed the result: %.17g vs %.17g", res.Slack, base.Slack)
	}
}

// TestSessionRequiresCoreAlgorithm: sessions run on the core engine only.
func TestSessionRequiresCoreAlgorithm(t *testing.T) {
	s, err := NewSolver(WithLibrary(GenerateLibrary(2)), WithAlgorithm(AlgoLillis))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var verr *ValidationError
	if _, err := s.NewSession(netgen.RandomSmall(1, 6, 0)); !errors.As(err, &verr) {
		t.Fatalf("want ValidationError for non-core algorithm, got %v", err)
	}
}

// TestSessionRejectsAllowedUnderReduction: per-vertex Allowed masks index
// the original library, which a reduced solver has remapped away.
func TestSessionRejectsAllowedUnderReduction(t *testing.T) {
	lib := dominatedAugment(GenerateLibrary(3))
	s, err := NewSolver(WithLibrary(lib), WithLibraryReduction(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess, err := s.NewSession(netgen.RandomSmall(2, 6, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	var verr *ValidationError
	if err := sess.Patch(BufferDelta{Vertex: 1, OK: true, Allowed: []int{0}}).Err(); !errors.As(err, &verr) {
		t.Fatalf("want ValidationError for Allowed under reduction, got %v", err)
	}
}
