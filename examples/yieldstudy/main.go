// Yieldstudy: buffer insertion under process variation. The nominal
// optimum is tuned to one corner; Monte Carlo sampling shows how much of
// its slack survives across fabricated instances, and robust selection
// trades a little nominal slack for a placement that yields on more
// corners (Zhang et al., sampling-based buffer insertion for post-silicon
// yield).
//
//	go run ./examples/yieldstudy
package main

import (
	"context"
	"fmt"
	"log"

	"bufferkit"
)

func main() {
	net := bufferkit.RandomNet(bufferkit.NetOpts{Sinks: 24, Seed: 17})
	lib := bufferkit.GenerateLibrary(16)
	drv := bufferkit.Driver{R: 0.2, K: 15}
	ctx := context.Background()

	// The nominal optimum sets the yield target: we demand every corner
	// keep at least 90 % of the nominal slack headroom.
	ns, err := bufferkit.NewSolver(bufferkit.WithLibrary(lib), bufferkit.WithDriver(drv))
	if err != nil {
		log.Fatal(err)
	}
	nom, err := ns.Run(ctx, net)
	ns.Close()
	if err != nil {
		log.Fatal(err)
	}
	target := nom.Slack * 0.9
	fmt.Printf("nominal slack %.2f ps with %d buffers; yield target %.2f ps\n\n",
		nom.Slack, nom.Placement.Count(), target)

	fmt.Println("-- sweeping sigma: nominal vs robust placement (256 corners each) --")
	fmt.Println("sigma   optima  nominal_yield  robust_yield  robust_worst_ps")
	for _, sigma := range []float64{0.02, 0.05, 0.10, 0.15, 0.20} {
		solveYield := func(robust bool) *bufferkit.YieldResult {
			s, err := bufferkit.NewSolver(
				bufferkit.WithLibrary(lib),
				bufferkit.WithDriver(drv),
				bufferkit.WithSamples(256),
				bufferkit.WithSigma(sigma),
				bufferkit.WithVariationSeed(1),
				bufferkit.WithYieldTarget(target),
				bufferkit.WithRobustPlacement(robust),
			)
			if err != nil {
				log.Fatal(err)
			}
			defer s.Close()
			res, err := s.SolveYield(ctx, net)
			if err != nil {
				log.Fatal(err)
			}
			return res
		}
		nominal := solveYield(false)
		robust := solveYield(true)
		fmt.Printf("%.2f   %6d %14.3f %13.3f %16.2f\n",
			sigma, len(robust.Placements), nominal.Yield, robust.Yield,
			robust.Placements[robust.Chosen].WorstSlack)
	}

	// The named sign-off corners, re-optimized one by one.
	fmt.Println("\n-- deterministic corner set (re-optimized per corner) --")
	fmt.Println("corner              slack_ps  critical_sink")
	s, err := bufferkit.NewSolver(
		bufferkit.WithLibrary(lib),
		bufferkit.WithDriver(drv),
		bufferkit.WithCorners(bufferkit.ProcessCorners()[1:]),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	res, err := s.SolveYield(ctx, net)
	if err != nil {
		log.Fatal(err)
	}
	for _, smp := range res.Samples {
		fmt.Printf("%-18s %9.2f %14d\n", smp.Corner.Name, smp.Slack, smp.CriticalSink)
	}
	fmt.Printf("\nslack distribution across corners: mean %.2f  std %.2f  [%.2f, %.2f] ps\n",
		res.Dist.Mean, res.Dist.Std, res.Dist.Min, res.Dist.Max)
}
