// Costaware: the buffer-cost versus slack trade-off. The paper notes its
// algorithm "can also be applied to reduce buffer cost"; this example runs
// the repository's cost extension, which keeps one candidate list per cost
// level and runs the paper's O(k+b) AddBuffer within each level. The output
// is the full Pareto frontier — for every budget, the best achievable slack
// and a witness placement.
//
//	go run ./examples/costaware
package main

import (
	"context"
	"fmt"
	"log"

	"bufferkit"
)

func main() {
	// A 12 mm two-pin line with a candidate position every 500 µm, plus a
	// graded 8-type library where stronger buffers cost more.
	net := bufferkit.TwoPinNet(12000, 24, 20, 1200, bufferkit.PaperWire())
	lib := bufferkit.GenerateLibrary(8)
	drv := bufferkit.Driver{R: 0.3, K: 15}
	solver, err := bufferkit.NewSolver(
		bufferkit.WithLibrary(lib),
		bufferkit.WithDriver(drv),
		bufferkit.WithAlgorithm(bufferkit.AlgoCostSlack),
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := solver.Run(context.Background(), net)
	if err != nil {
		log.Fatal(err)
	}
	frontier := res.Frontier

	fmt.Println("cost  slack_ps  buffers  marginal_ps_per_cost")
	prev := frontier[0]
	for i, p := range frontier {
		marginal := 0.0
		if i > 0 {
			marginal = (p.Slack - prev.Slack) / float64(p.Cost-prev.Cost)
		}
		fmt.Printf("%4d  %8.2f  %7d  %10.3f\n", p.Cost, p.Slack, p.Placement.Count(), marginal)
		prev = p
	}

	// The knee of the curve is where marginal slack per unit cost drops —
	// a budget-constrained flow would stop there rather than pay for the
	// last picoseconds.
	best := frontier[len(frontier)-1]
	fmt.Printf("\nmax slack %.2f ps costs %d units; ", best.Slack, best.Cost)

	for _, p := range frontier {
		if p.Slack >= best.Slack-25 {
			fmt.Printf("within 25 ps of it for only %d units.\n", p.Cost)
			break
		}
	}

	// Every frontier point is a real, verifiable placement.
	for _, p := range frontier {
		chk, err := bufferkit.Evaluate(net, lib, p.Placement, drv)
		if err != nil {
			log.Fatal(err)
		}
		if d := chk.Slack - p.Slack; d > 1e-6 || d < -1e-6 {
			log.Fatalf("frontier point (cost %d) failed verification", p.Cost)
		}
	}
	fmt.Println("all frontier placements verified against the Elmore oracle")
}
