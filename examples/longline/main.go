// Longline: the classic repeater-insertion story. Elmore delay of an
// unbuffered wire grows quadratically with length; optimally inserted
// buffers restore near-linear growth. This is the workload van Ginneken's
// algorithm was born for, here run with a multi-type library.
//
//	go run ./examples/longline
package main

import (
	"context"
	"fmt"
	"log"

	"bufferkit"
)

func main() {
	lib := bufferkit.GenerateLibrary(16)
	drv := bufferkit.Driver{R: 0.2, K: 15}
	w := bufferkit.PaperWire()
	solver, err := bufferkit.NewSolver(
		bufferkit.WithLibrary(lib),
		bufferkit.WithDriver(drv),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("length_um  unbuf_delay_ps  buf_delay_ps  buffers  strongest_used")
	for _, length := range []float64{2000, 5000, 10000, 20000, 40000} {
		// One candidate position every ~200 µm, as wire segmenting would
		// produce.
		positions := int(length / 200)
		net := bufferkit.TwoPinNet(length, positions, 10, 0, w)

		unbuf, err := bufferkit.Evaluate(net, lib, bufferkit.NewPlacement(net.Len()), drv)
		if err != nil {
			log.Fatal(err)
		}
		res, err := solver.Run(context.Background(), net)
		if err != nil {
			log.Fatal(err)
		}

		// RAT is 0, so delay = −slack. Report the strongest (lowest-R)
		// type the optimizer chose.
		strongest := ""
		bestR := 0.0
		for _, t := range res.Placement {
			if t != bufferkit.NoBuffer && (strongest == "" || lib[t].R < bestR) {
				strongest, bestR = lib[t].Name, lib[t].R
			}
		}
		fmt.Printf("%9.0f  %14.1f  %12.1f  %7d  %s\n",
			length, -unbuf.Slack, -res.Slack, res.Placement.Count(), strongest)
	}

	fmt.Println("\nNote how the unbuffered delay grows ~quadratically with length")
	fmt.Println("while the buffered delay grows ~linearly — the buffers decouple")
	fmt.Println("the RC stages.")
}
