// Clocktree: polarity-aware buffering of a balanced distribution tree with
// a mixed buffer/inverter library. Half of the sinks require the inverted
// phase; the algorithm must deliver each sink its phase while maximizing
// the worst slack. (Polarity support is this repository's extension beyond
// the paper — the DP runs on a pair of candidate lists, one per parity.)
//
//	go run ./examples/clocktree
package main

import (
	"context"
	"fmt"
	"log"

	"bufferkit"
)

func main() {
	// A fanout-2, depth-5 distribution tree: 32 sinks, every junction a
	// legal buffer position.
	w := bufferkit.PaperWire()
	base := bufferkit.BalancedNet(2, 5, 1600, 15, 800, w)

	// Mark alternating octants of the tree (blocks of 8 leaves) as wanting
	// the inverted phase. Phase blocks must align with subtrees that have a
	// buffer position above them — an inverter can only flip a whole
	// subtree, so requiring opposite phases for two sinks that share their
	// last junction would be physically infeasible.
	net := base.Clone()
	for i, s := range net.Sinks() {
		if (i/8)%2 == 1 {
			net.Verts[s].Pol = bufferkit.Negative
		}
	}

	lib := bufferkit.GenerateLibraryWithInverters(16)
	drv := bufferkit.Driver{R: 0.15, K: 10}
	solver, err := bufferkit.NewSolver(
		bufferkit.WithLibrary(lib),
		bufferkit.WithDriver(drv),
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := solver.Run(context.Background(), net)
	if err != nil {
		log.Fatal(err)
	}

	buffers, inverters := 0, 0
	for _, t := range res.Placement {
		if t == bufferkit.NoBuffer {
			continue
		}
		if lib[t].Inverting {
			inverters++
		} else {
			buffers++
		}
	}
	fmt.Printf("sinks: %d (half inverted)   slack: %.2f ps\n", net.NumSinks(), res.Slack)
	fmt.Printf("placed %d buffers and %d inverters\n", buffers, inverters)

	// The oracle confirms both the timing and that every sink receives the
	// phase it asked for.
	check, err := bufferkit.Evaluate(net, lib, res.Placement, drv)
	if err != nil {
		log.Fatal(err)
	}
	if len(check.PolarityViolations) != 0 {
		log.Fatalf("polarity violated at sinks %v", check.PolarityViolations)
	}
	fmt.Printf("oracle: slack %.2f ps, zero polarity violations\n", check.Slack)

	// Compare with the same tree when all sinks take the true phase: the
	// inverted sinks cost slack because inverter pairs (or odd chains to
	// the right sinks) must be threaded through the tree.
	resBase, err := solver.Run(context.Background(), base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-positive variant slack: %.2f ps (phase requirements cost %.2f ps)\n",
		resBase.Slack, resBase.Slack-res.Slack)
}
