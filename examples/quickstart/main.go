// Quickstart: build a small routing tree, run the O(bn²) buffer insertion,
// and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"bufferkit"
)

func main() {
	// A Y-shaped net: 4 mm of wire to a branch point, then two legs to
	// sinks with different loads and required arrival times. Units are
	// kΩ / fF / ps / µm; PaperWire is the TSMC 180 nm parameterization
	// used throughout the paper (0.076 Ω/µm, 0.118 fF/µm).
	w := bufferkit.PaperWire()
	b := bufferkit.NewTreeBuilder()

	r, c := w.R*4000, w.C*4000
	branch := b.AddBufferPos(0, r, c) // buffers may be placed here

	r, c = w.R*2500, w.C*2500
	s1 := b.AddSink(branch, r, c, 12, 1000) // 12 fF, RAT 1 ns

	r, c = w.R*1200, w.C*1200
	s2 := b.AddSink(branch, r, c, 30, 900) // 30 fF, RAT 0.9 ns

	net := b.MustBuild()

	// A graded 16-type library spanning the paper's parameter ranges, and
	// a mid-strength driver, wired into a Solver running the paper's
	// algorithm (the default).
	lib := bufferkit.GenerateLibrary(16)
	drv := bufferkit.Driver{R: 0.2, K: 15}
	solver, err := bufferkit.NewSolver(
		bufferkit.WithLibrary(lib),
		bufferkit.WithDriver(drv),
	)
	if err != nil {
		log.Fatal(err)
	}

	// How bad is it without buffers?
	unbuf, err := bufferkit.Evaluate(net, lib, bufferkit.NewPlacement(net.Len()), drv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unbuffered slack: %8.2f ps (critical sink: vertex %d)\n", unbuf.Slack, unbuf.CriticalSink)

	// Optimal buffer insertion, the paper's algorithm.
	res, err := solver.Run(context.Background(), net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal slack:    %8.2f ps  (+%.2f ps)\n", res.Slack, res.Slack-unbuf.Slack)

	for v, t := range res.Placement {
		if t != bufferkit.NoBuffer {
			fmt.Printf("  place %-6s (R=%.3f kΩ, Cin=%.1f fF) at vertex %d\n",
				lib[t].Name, lib[t].R, lib[t].Cin, v)
		}
	}

	// The result is self-checking: the exact Elmore oracle reproduces the
	// slack the dynamic program predicted.
	check, err := bufferkit.Evaluate(net, lib, res.Placement, drv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle check:     %8.2f ps\n", check.Slack)
	fmt.Printf("sink arrivals: s1=%.2f ps, s2=%.2f ps\n", check.Arrival[s1], check.Arrival[s2])
}
