// Libstudy: why library size matters — the paper's motivation, measured.
// Bigger libraries buy slack; the O(b²n²) baseline makes them expensive in
// runtime, which is why pre-2005 flows clustered libraries down (losing
// quality). The O(bn²) algorithm changes that trade-off.
//
//	go run ./examples/libstudy
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"bufferkit"
)

func main() {
	net, err := bufferkit.IndustrialNet(120, 2000, 7)
	if err != nil {
		log.Fatal(err)
	}
	drv := bufferkit.Driver{R: 0.2, K: 15}

	// One Solver per algorithm, library swapped per round: the registry
	// makes the baseline comparison a one-option change.
	ctx := context.Background()
	solve := func(lib bufferkit.Library, algo string) (*bufferkit.NetResult, time.Duration) {
		s, err := bufferkit.NewSolver(
			bufferkit.WithLibrary(lib),
			bufferkit.WithDriver(drv),
			bufferkit.WithAlgorithm(algo),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		t0 := time.Now()
		res, err := s.Run(ctx, net)
		if err != nil {
			log.Fatal(err)
		}
		return res, time.Since(t0)
	}

	fmt.Println("-- growing the library (slack is monotone, runtime is not quadratic in b) --")
	fmt.Println("b   slack_ps   new_ms   lillis_ms")
	full := bufferkit.GenerateLibrary(64)
	for _, b := range []int{1, 2, 4, 8, 16, 32, 64} {
		lib := bufferkit.GenerateLibrary(b)
		res, tNew := solve(lib, bufferkit.AlgoNew)
		_, tLil := solve(lib, bufferkit.AlgoLillis)
		fmt.Printf("%-3d %9.2f %8.2f %11.2f\n",
			b, res.Slack, tNew.Seconds()*1e3, tLil.Seconds()*1e3)
	}

	fmt.Println("\n-- clustering the 64-type library down (Alpert-style) costs slack --")
	fmt.Println("k    slack_ps   loss_ps")
	opt, _ := solve(full, bufferkit.AlgoNew)
	for _, k := range []int{64, 16, 8, 4, 2} {
		red, _, err := bufferkit.ReduceLibrary(full, k)
		if err != nil {
			log.Fatal(err)
		}
		res, _ := solve(red, bufferkit.AlgoNew)
		fmt.Printf("%-4d %9.2f %9.2f\n", k, res.Slack, opt.Slack-res.Slack)
	}
	fmt.Println("\nWith O(bn²) insertion the full library is affordable, so the")
	fmt.Println("quality loss in the second table never has to be paid.")
}
