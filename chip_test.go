package bufferkit_test

import (
	"context"
	"errors"
	"testing"

	"bufferkit"
)

func chipSolver(t *testing.T, opts ...bufferkit.Option) *bufferkit.Solver {
	t.Helper()
	base := []bufferkit.Option{bufferkit.WithLibrary(bufferkit.GenerateLibrary(8))}
	s, err := bufferkit.NewSolver(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSolveChipSingleNetMatchesRun: one net under unbounded site capacity
// must reproduce Solver.Run bit for bit, on both pinned backends.
func TestSolveChipSingleNetMatchesRun(t *testing.T) {
	inst := bufferkit.GenerateChip(bufferkit.ChipGenOpts{
		W: 10, H: 10, Nets: 1, Capacity: 1 << 20, Contention: 0, Seed: 17,
	})
	net := &inst.Nets[0]
	for _, algo := range []string{bufferkit.AlgoCore, bufferkit.AlgoCoreSoA} {
		s := chipSolver(t, bufferkit.WithAlgorithm(algo), bufferkit.WithDriver(net.Driver))
		res, err := s.SolveChip(context.Background(), inst)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		want, err := s.Run(context.Background(), net.Tree)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		s.Close()
		if !res.Feasible || len(res.Rounds) != 1 {
			t.Fatalf("%s: unconstrained single net took %d rounds (feasible=%v)",
				algo, len(res.Rounds), res.Feasible)
		}
		for v := range want.Placement {
			if res.Placements[0][v] != want.Placement[v] {
				t.Fatalf("%s: placement differs at vertex %d: %d vs %d",
					algo, v, res.Placements[0][v], want.Placement[v])
			}
		}
		ev, err := bufferkit.Evaluate(net.Tree, bufferkit.GenerateLibrary(8), want.Placement, net.Driver)
		if err != nil {
			t.Fatal(err)
		}
		if res.Slacks[0] != ev.Slack {
			t.Fatalf("%s: chip slack %.17g != evaluated Run slack %.17g", algo, res.Slacks[0], ev.Slack)
		}
	}
}

// TestSolveChipZeroCapacityInfeasible: a net that needs a buffer whose only
// site is blocked fails with the typed infeasibility error.
func TestSolveChipZeroCapacityInfeasible(t *testing.T) {
	b := bufferkit.NewTreeBuilder()
	pos := b.AddBufferPos(0, 0.3, 40)
	b.AddSinkPol(pos, 0.2, 30, 10, 500, bufferkit.Negative)
	inst := &bufferkit.ChipInstance{
		Grid: bufferkit.ChipGrid{W: 1, H: 1, Capacity: 0},
		Nets: []bufferkit.ChipNet{{Name: "needs_inv", Tree: b.MustBuild(), Site: []int{bufferkit.NoSite, 0, bufferkit.NoSite}}},
	}
	s := chipSolver(t, bufferkit.WithLibrary(bufferkit.GenerateLibraryWithInverters(4)))
	defer s.Close()
	_, err := s.SolveChip(context.Background(), inst)
	if !errors.Is(err, bufferkit.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

// TestSolveChipContended: the facade end-to-end on a contended instance,
// with the progress callback observing every round.
func TestSolveChipContended(t *testing.T) {
	inst := bufferkit.GenerateChip(bufferkit.ChipGenOpts{
		W: 12, H: 12, Nets: 120, Capacity: 2, Contention: 0.7, Seed: 5,
	})
	var rounds []bufferkit.ChipRound
	s := chipSolver(t,
		bufferkit.WithChipRounds(40),
		bufferkit.WithChipProgress(func(r bufferkit.ChipRound) { rounds = append(rounds, r) }),
	)
	defer s.Close()
	res, err := s.SolveChip(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("result not feasible")
	}
	if len(rounds) != len(res.Rounds) {
		t.Fatalf("progress callback saw %d rounds, result has %d", len(rounds), len(res.Rounds))
	}
	if rounds[0].Overflow == 0 {
		t.Fatal("instance not contended")
	}
}

// TestSolveChipRejectsNonCoreAlgorithm: chip solving is a core-engine
// surface; other registry entries are rejected with a validation error.
func TestSolveChipRejectsNonCoreAlgorithm(t *testing.T) {
	inst := bufferkit.GenerateChip(bufferkit.ChipGenOpts{W: 6, H: 6, Nets: 2, Seed: 1})
	s := chipSolver(t, bufferkit.WithAlgorithm(bufferkit.AlgoLillis))
	defer s.Close()
	var verr *bufferkit.ValidationError
	if _, err := s.SolveChip(context.Background(), inst); !errors.As(err, &verr) {
		t.Fatalf("want *ValidationError, got %v", err)
	}
}
