package bufferkit

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"bufferkit/internal/core"
	"bufferkit/internal/costopt"
	"bufferkit/internal/libreduce"
	"bufferkit/internal/lillis"
	"bufferkit/internal/solvererr"
	"bufferkit/internal/vanginneken"
)

// Built-in algorithm registry keys. WithAlgorithm accepts these (or any
// name added through Register).
const (
	// AlgoNew is the paper's O(bn²) algorithm (Li & Shi, DATE 2005) — the
	// default.
	AlgoNew = "new"
	// AlgoLillis is the Lillis–Cheng–Lin O(b²n²) baseline (no inverters).
	AlgoLillis = "lillis"
	// AlgoVanGinneken is the classic single-type O(n²) algorithm; it
	// requires a one-type library.
	AlgoVanGinneken = "vanginneken"
	// AlgoCostSlack is the cost–slack Pareto extension; NetResult.Frontier
	// carries the full frontier, Slack/Placement its best point.
	AlgoCostSlack = "costslack"
	// AlgoCore is the paper's algorithm pinned to the doubly-linked
	// candidate-list backend, regardless of WithBackend.
	AlgoCore = "core"
	// AlgoCoreSoA is the paper's algorithm pinned to the structure-of-arrays
	// candidate backend, regardless of WithBackend.
	AlgoCoreSoA = "core-soa"
)

// RunConfig is the resolved per-run configuration a Solver hands to an
// Algorithm: the solver-wide settings with any per-net overrides (batch
// drivers) already applied. Algorithm implementations read it; they must
// not retain it across calls.
type RunConfig struct {
	// Library is the buffer library, already validated by NewSolver.
	Library Library
	// Driver is the source driver for this net.
	Driver Driver
	// Prune selects the convex pruning mode (AlgoNew only).
	Prune PruneMode
	// Backend selects the candidate-list representation (AlgoNew and
	// AlgoLillis; the pinned AlgoCore/AlgoCoreSoA entries override it).
	// The zero value resolves to the benchmark-chosen DefaultBackend.
	// Results are identical across backends.
	Backend Backend
	// CollectStats asks the algorithm to fill NetResult.Stats.
	CollectStats bool
	// CheckInvariants enables per-operation list validation (AlgoNew
	// only; for tests, roughly doubles runtime).
	CheckInvariants bool
	// MaxCost caps the total buffer cost (AlgoCostSlack only; 0 = no cap).
	MaxCost int
}

// NetResult is the outcome of solving one net.
type NetResult struct {
	// Index is the net's position in the batch input slice; 0 for
	// single-net runs.
	Index int
	// Slack is the optimal slack at the driver input, in ps.
	Slack float64
	// Placement maps vertex index to a library type index or NoBuffer.
	Placement Placement
	// Candidates is the final candidate count at the root (0 for
	// algorithms that do not report it).
	Candidates int
	// Stats carries algorithm instrumentation when RunConfig.CollectStats
	// is set. Which fields are populated depends on the algorithm: AlgoNew
	// fills everything, AlgoLillis fills Positions / list lengths /
	// BetasKept, AlgoVanGinneken fills MaxListLen only.
	Stats Stats
	// Frontier is the cost–slack Pareto frontier (AlgoCostSlack only).
	Frontier []CostSlackPoint
}

// Algorithm is the single interface every registered solver implements.
// Implementations may keep warm state (engines, arenas) across Solve calls;
// they need not be safe for concurrent use — the Solver serializes Run and
// gives every batch worker its own instance.
type Algorithm interface {
	// Name returns the registry key the algorithm was registered under.
	Name() string
	// Solve runs the algorithm on one net under ctx. On cancellation it
	// returns an error wrapping ErrCanceled; on an instance with no
	// polarity-feasible solution, one wrapping ErrInfeasible; on a
	// malformed instance, a *ValidationError.
	Solve(ctx context.Context, t *Tree, cfg RunConfig) (*NetResult, error)
}

// releaser is implemented by adapters that borrow pooled resources; the
// Solver and batch workers call release when done with an instance.
type releaser interface{ release() }

// configValidator lets an algorithm reject a solver-wide configuration at
// construction time (NewSolver) instead of once per net — e.g. van
// Ginneken's single-type-library requirement.
type configValidator interface {
	validateConfig(cfg RunConfig) error
}

// registry maps algorithm names to factories. Factories return fresh
// instances so batch workers never share engine state.
var (
	registryMu sync.RWMutex
	registry   = map[string]func() Algorithm{}
)

// Register adds an algorithm factory under name, making it available to
// WithAlgorithm and listing it in Algorithms. The factory must return a
// fresh, independent instance on every call (batch workers each get one).
// Register panics on an empty name, a nil factory, or a duplicate name.
func Register(name string, factory func() Algorithm) {
	if name == "" {
		panic("bufferkit: Register: empty algorithm name")
	}
	if factory == nil {
		panic("bufferkit: Register: nil factory for " + name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("bufferkit: Register: duplicate algorithm " + name)
	}
	registry[name] = factory
}

// AlgorithmInfo describes one registered algorithm for introspection
// surfaces (bufferkitd's GET /v1/algorithms, bufopt -help).
type AlgorithmInfo struct {
	// Name is the registry key, accepted by WithAlgorithm.
	Name string `json:"name"`
	// Description is a one-line human summary, or "" if the algorithm does
	// not describe itself.
	Description string `json:"description,omitempty"`
}

// describer is the optional interface an Algorithm implements to describe
// itself in AlgorithmInfos.
type describer interface{ Description() string }

// AlgorithmInfos returns every registered algorithm with its one-line
// description, sorted by name. It instantiates each factory once; instances
// implementing releaser are released again immediately.
func AlgorithmInfos() []AlgorithmInfo {
	names := Algorithms()
	infos := make([]AlgorithmInfo, len(names))
	for i, name := range names {
		infos[i] = AlgorithmInfo{Name: name}
		factory, err := lookup(name)
		if err != nil {
			continue // unregistered between Algorithms and lookup; name-only
		}
		algo := factory()
		if d, ok := algo.(describer); ok {
			infos[i].Description = d.Description()
		}
		if r, ok := algo.(releaser); ok {
			r.release()
		}
	}
	return infos
}

// Algorithms returns the sorted names of every registered algorithm.
func Algorithms() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// lookup resolves a registry name to its factory.
func lookup(name string) (func() Algorithm, error) {
	registryMu.RLock()
	factory, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("bufferkit: unknown algorithm %q (have %v)", name, Algorithms())
	}
	return factory, nil
}

func init() {
	Register(AlgoNew, func() Algorithm { return &coreAlgo{name: AlgoNew} })
	Register(AlgoCore, func() Algorithm { return &coreAlgo{name: AlgoCore, force: core.BackendList} })
	Register(AlgoCoreSoA, func() Algorithm { return &coreAlgo{name: AlgoCoreSoA, force: core.BackendSoA} })
	Register(AlgoLillis, func() Algorithm { return &lillisAlgo{} })
	Register(AlgoVanGinneken, func() Algorithm { return vgAlgo{} })
	Register(AlgoCostSlack, func() Algorithm { return costAlgo{} })
}

// Solver is the unified entry point to every insertion algorithm: construct
// one with NewSolver and functional options, then Run single nets or
// Stream/RunBatch many. A Solver is safe for concurrent use — Run is
// serialized on one warm algorithm instance, and batch runs give each
// worker its own instance.
type Solver struct {
	cfg      RunConfig
	algoName string
	factory  func() Algorithm
	drivers  []Driver
	workers  int
	yield    yieldConfig // SolveYield options (see yield.go)
	chip     chipConfig  // SolveChip options (see chip.go)
	reduceK  int         // WithLibraryReduction: <0 dominance-only, >0 cluster target
	libMap   []int       // reduced type index -> original library index; nil = identity

	mu   sync.Mutex
	algo Algorithm // lazily built warm instance for Run
}

// Option configures a Solver under construction.
type Option func(*Solver) error

// WithLibrary sets the buffer library (required). The library is validated
// by NewSolver and must not be mutated afterwards.
func WithLibrary(lib Library) Option {
	return func(s *Solver) error { s.cfg.Library = lib; return nil }
}

// WithDriver sets the source driver applied to every net (zero value =
// ideal driver).
func WithDriver(d Driver) Option {
	return func(s *Solver) error { s.cfg.Driver = d; return nil }
}

// WithDrivers sets a per-net driver override for batch runs (Stream,
// RunBatch); its length must equal the batch's net count. Single-net Run
// ignores it.
func WithDrivers(drivers []Driver) Option {
	return func(s *Solver) error { s.drivers = drivers; return nil }
}

// WithPruneMode selects the convex pruning mode for AlgoNew.
func WithPruneMode(m PruneMode) Option {
	return func(s *Solver) error { s.cfg.Prune = m; return nil }
}

// WithBackend selects the candidate-list representation by name: "list"
// (the paper's doubly-linked list), "soa" (structure-of-arrays slabs), or
// "" / "default" for the benchmark-chosen default. Both backends produce
// identical results; see DESIGN.md §11 for the measured trade-off. The
// pinned registry entries AlgoCore and AlgoCoreSoA override this setting.
func WithBackend(name string) Option {
	return func(s *Solver) error {
		b, err := core.ParseBackend(name)
		if err != nil {
			return solvererr.Validation("bufferkit", "backend", "%v", err)
		}
		s.cfg.Backend = b
		return nil
	}
}

// WithAlgorithm selects a registered algorithm by name; the default is
// AlgoNew.
func WithAlgorithm(name string) Option {
	return func(s *Solver) error {
		factory, err := lookup(name)
		if err != nil {
			return err
		}
		s.algoName, s.factory = name, factory
		return nil
	}
}

// WithStats controls whether NetResult.Stats is filled (default true);
// disabling it lets adapters skip the copy on throughput-critical batches.
func WithStats(collect bool) Option {
	return func(s *Solver) error { s.cfg.CollectStats = collect; return nil }
}

// WithCheckInvariants enables per-operation candidate-list validation in
// AlgoNew (for tests; roughly doubles runtime).
func WithCheckInvariants(check bool) Option {
	return func(s *Solver) error { s.cfg.CheckInvariants = check; return nil }
}

// WithMaxCost caps the total buffer cost explored by AlgoCostSlack
// (0 = unlimited).
func WithMaxCost(max int) Option {
	return func(s *Solver) error { s.cfg.MaxCost = max; return nil }
}

// WithLibraryReduction shrinks the library before solving. k < 0 applies
// dominance pruning only — dropping every type another type beats on all of
// R, K and Cin — which is bit-exact for slack-optimal insertion: slacks and
// placements are identical to the full library (asserted by the
// differential suite). k > 0 additionally clusters the survivors down to at
// most k representatives (Alpert-style k-center selection), trading
// solution quality for a smaller b; the reproduction's library-reduction
// experiment quantifies that loss. Placements are always reported in the
// original library's index space. Incompatible with AlgoCostSlack (a
// dominated-but-cheaper type is a legitimate frontier point) and with trees
// using Vertex.Allowed (the per-vertex masks index the original library).
func WithLibraryReduction(k int) Option {
	return func(s *Solver) error {
		if k == 0 {
			return solvererr.Validation("bufferkit", "reduce",
				"reduction target 0 is ambiguous: use a negative k for exact dominance-only pruning or k > 0 to cluster")
		}
		s.reduceK = k
		return nil
	}
}

// WithWorkers caps the number of concurrent workers used by Stream and
// RunBatch; 0 or negative means runtime.GOMAXPROCS(0).
func WithWorkers(n int) Option {
	return func(s *Solver) error { s.workers = n; return nil }
}

// NewSolver builds a Solver from functional options. WithLibrary is
// required; the algorithm defaults to AlgoNew with stats collection on.
func NewSolver(opts ...Option) (*Solver, error) {
	s := &Solver{algoName: AlgoNew, cfg: RunConfig{CollectStats: true}, yield: yieldConfig{seed: 1}}
	var err error
	if s.factory, err = lookup(AlgoNew); err != nil {
		return nil, err
	}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if s.cfg.Library == nil {
		return nil, solvererr.Validation("bufferkit", "library", "a buffer library is required (use WithLibrary)")
	}
	if err := s.cfg.Library.Validate(); err != nil {
		return nil, err
	}
	if err := s.applyReduction(); err != nil {
		return nil, err
	}
	// Give the algorithm a chance to reject the configuration up front;
	// the instance doubles as the warm one Run will use.
	algo := s.factory()
	if v, ok := algo.(configValidator); ok {
		if err := v.validateConfig(s.cfg); err != nil {
			return nil, err
		}
	}
	s.algo = algo
	return s, nil
}

// applyReduction shrinks the solver's library per WithLibraryReduction and
// records the reduced-to-original index map. Runs once in NewSolver, after
// library validation and before algorithm config validation (so e.g. van
// Ginneken's single-type check sees the library it will actually solve).
func (s *Solver) applyReduction() error {
	if s.reduceK == 0 {
		return nil
	}
	if s.algoName == AlgoCostSlack {
		return solvererr.Validation("bufferkit", "reduce",
			"library reduction is incompatible with %q: dominated-but-cheaper types are legitimate frontier points", AlgoCostSlack)
	}
	reduced, idx := libreduce.DominancePrune(s.cfg.Library)
	if s.reduceK > 0 && s.reduceK < len(reduced) {
		clustered, idx2, err := libreduce.Reduce(reduced, s.reduceK)
		if err != nil {
			return err
		}
		for i, j := range idx2 {
			idx2[i] = idx[j]
		}
		reduced, idx = clustered, idx2
	}
	if len(reduced) == len(s.cfg.Library) {
		return nil // nothing pruned; skip the remap entirely
	}
	s.cfg.Library, s.libMap = reduced, idx
	return nil
}

// checkReducible rejects trees whose per-vertex Allowed masks would be
// misread against a reduced library (they index the original one).
func (s *Solver) checkReducible(t *Tree) error {
	if s.libMap == nil {
		return nil
	}
	for v := range t.Verts {
		if t.Verts[v].Allowed != nil {
			return solvererr.Validation("bufferkit", "allowed",
				"vertex %d restricts allowed types by original library index; incompatible with WithLibraryReduction", v)
		}
	}
	return nil
}

// remapPlacement rewrites type indices from the reduced library's index
// space back to the original library the caller supplied.
func (s *Solver) remapPlacement(p Placement) {
	if s.libMap == nil {
		return
	}
	for v, ti := range p {
		if ti != NoBuffer {
			p[v] = s.libMap[ti]
		}
	}
}

// Algorithm returns the name of the algorithm this solver dispatches to.
func (s *Solver) Algorithm() string { return s.algoName }

// Run solves one net under ctx on the solver's warm algorithm instance.
// Concurrent Run calls are serialized; use Stream or RunBatch for
// parallelism across nets.
func (s *Solver) Run(ctx context.Context, t *Tree) (*NetResult, error) {
	if err := s.checkReducible(t); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.algo == nil {
		s.algo = s.factory()
	}
	nr, err := s.algo.Solve(ctx, t, s.cfg)
	if err != nil {
		return nil, err
	}
	s.remapPlacement(nr.Placement)
	return nr, nil
}

// Close releases pooled resources held by the solver's warm algorithm
// instance (batch workers release theirs automatically). Optional: a
// dropped Solver is also reclaimed by the garbage collector; Close merely
// returns warm engines to the shared pool earlier. The Solver remains
// usable — the next Run builds a fresh instance.
func (s *Solver) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.algo.(releaser); ok {
		r.release()
	}
	s.algo = nil
}

// enginePool recycles warm O(bn²) engines (and their arenas) across solvers
// and batch runs, so a service issuing run after run reaches steady state
// with no per-run engine construction at all.
var enginePool = sync.Pool{New: func() any { return core.NewEngine() }}

// coreAlgo adapts internal/core (the paper's O(bn²) algorithm) to the
// Algorithm interface, holding one pooled warm engine. The registry carries
// it under three names: AlgoNew follows RunConfig.Backend (WithBackend),
// while AlgoCore and AlgoCoreSoA are pinned to one representation each —
// the shape head-to-head comparisons and the server's ablation traffic
// want.
type coreAlgo struct {
	eng   *core.Engine
	name  string
	force core.Backend // BackendDefault = follow RunConfig.Backend
}

func (a *coreAlgo) Name() string { return a.name }

func (a *coreAlgo) Description() string {
	switch a.force {
	case core.BackendList:
		return "Li–Shi O(bn²) on the doubly-linked candidate list backend"
	case core.BackendSoA:
		return "Li–Shi O(bn²) on the structure-of-arrays candidate backend"
	}
	return "Li–Shi O(bn²) algorithm (DATE 2005); inverters and sink polarities supported (default)"
}

// backend resolves which representation this instance runs: the pinned one
// for AlgoCore/AlgoCoreSoA, the solver-wide WithBackend choice otherwise.
func (a *coreAlgo) backend(cfg RunConfig) core.Backend {
	if a.force != core.BackendDefault {
		return a.force
	}
	return cfg.Backend
}

func (a *coreAlgo) Solve(ctx context.Context, t *Tree, cfg RunConfig) (*NetResult, error) {
	if a.eng == nil {
		a.eng = enginePool.Get().(*core.Engine)
	}
	opt := core.Options{Driver: cfg.Driver, Prune: cfg.Prune, Backend: a.backend(cfg), CheckInvariants: cfg.CheckInvariants}
	if err := a.eng.Reset(t, cfg.Library, opt); err != nil {
		return nil, err
	}
	res := &Result{}
	if err := a.eng.RunContext(ctx, res); err != nil {
		return nil, err
	}
	nr := &NetResult{Slack: res.Slack, Placement: res.Placement, Candidates: res.Candidates}
	if cfg.CollectStats {
		nr.Stats = res.Stats
	}
	return nr, nil
}

func (a *coreAlgo) release() {
	if a.eng == nil {
		return
	}
	a.eng.Release() // don't let pooled engines pin whole designs
	enginePool.Put(a.eng)
	a.eng = nil
}

// lillisAlgo adapts internal/lillis (the O(b²n²) baseline).
type lillisAlgo struct {
	eng *lillis.Engine
}

func (a *lillisAlgo) Name() string { return AlgoLillis }

func (a *lillisAlgo) Description() string {
	return "Lillis–Cheng–Lin O(b²n²) baseline; non-inverting libraries only"
}

func (a *lillisAlgo) Solve(ctx context.Context, t *Tree, cfg RunConfig) (*NetResult, error) {
	if a.eng == nil {
		a.eng = lillis.NewEngine()
	}
	a.eng.SetBackend(cfg.Backend)
	res := &LillisResult{}
	if err := a.eng.RunContext(ctx, t, cfg.Library, cfg.Driver, res); err != nil {
		return nil, err
	}
	nr := &NetResult{Slack: res.Slack, Placement: res.Placement, Candidates: res.Candidates}
	if cfg.CollectStats {
		nr.Stats = Stats{
			Positions:  res.Stats.Positions,
			MaxListLen: res.Stats.MaxListLen,
			SumListLen: res.Stats.SumListLen,
			BetasKept:  res.Stats.BetasInserted,
		}
	}
	return nr, nil
}

// vgAlgo adapts internal/vanginneken (the classic single-type O(n²)
// algorithm). It is stateless, so the zero value is ready to use.
type vgAlgo struct{}

func (vgAlgo) Name() string { return AlgoVanGinneken }

func (vgAlgo) Description() string {
	return "van Ginneken O(n²) classic; requires a single-type library"
}

// validateConfig rejects multi-type libraries at NewSolver time, so a
// misconfigured batch fails once instead of once per net. Solve re-checks
// for callers using the Algorithm directly.
func (vgAlgo) validateConfig(cfg RunConfig) error {
	if len(cfg.Library) != 1 {
		return solvererr.Validation("vanginneken", "library",
			"needs a single-type library, got %d types", len(cfg.Library))
	}
	return nil
}

func (vgAlgo) Solve(ctx context.Context, t *Tree, cfg RunConfig) (*NetResult, error) {
	if err := (vgAlgo{}).validateConfig(cfg); err != nil {
		return nil, err
	}
	res, err := vanginneken.InsertContext(ctx, t, cfg.Library[0], cfg.Driver)
	if err != nil {
		return nil, err
	}
	nr := &NetResult{Slack: res.Slack, Placement: res.Placement, Candidates: res.Candidates}
	if cfg.CollectStats {
		nr.Stats = Stats{MaxListLen: res.MaxListLen}
	}
	return nr, nil
}

// costAlgo adapts internal/costopt (the cost–slack Pareto extension). The
// frontier's best point becomes Slack/Placement, so the unified interface
// still answers "what is the best achievable slack".
type costAlgo struct{}

func (costAlgo) Name() string { return AlgoCostSlack }

func (costAlgo) Description() string {
	return "cost–slack Pareto extension; NetResult.Frontier carries the full trade-off curve"
}

func (costAlgo) Solve(ctx context.Context, t *Tree, cfg RunConfig) (*NetResult, error) {
	pts, err := costopt.ParetoContext(ctx, t, cfg.Library, costopt.Options{Driver: cfg.Driver, MaxCost: cfg.MaxCost})
	if err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, solvererr.Infeasible("costslack: empty frontier")
	}
	best := pts[len(pts)-1]
	return &NetResult{Slack: best.Slack, Placement: best.Placement, Frontier: pts}, nil
}
