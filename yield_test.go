package bufferkit_test

import (
	"context"
	"errors"
	"testing"

	"bufferkit"
)

// yieldSolver builds a solver configured for a small Monte Carlo sweep.
func yieldSolver(t *testing.T, opts ...bufferkit.Option) *bufferkit.Solver {
	t.Helper()
	base := []bufferkit.Option{
		bufferkit.WithLibrary(bufferkit.GenerateLibrary(8)),
		bufferkit.WithDriver(bufferkit.Driver{R: 0.2, K: 15}),
	}
	s, err := bufferkit.NewSolver(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSolveYieldNominalOnly(t *testing.T) {
	net := bufferkit.TwoPinNet(10000, 20, 12, 1000, bufferkit.PaperWire())
	s := yieldSolver(t)
	defer s.Close()
	run, err := s.Run(context.Background(), net)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SolveYield(context.Background(), net)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 1 {
		t.Fatalf("nominal-only sweep has %d samples, want 1", len(res.Samples))
	}
	if res.Samples[0].Slack != run.Slack {
		t.Fatalf("nominal sweep slack %.17g != Run slack %.17g", res.Samples[0].Slack, run.Slack)
	}
	if res.Yield != 1 || res.OptimalYield != 1 {
		t.Fatalf("feasible nominal-only sweep yield %g/%g, want 1/1", res.Yield, res.OptimalYield)
	}
}

// TestSolveYieldDeterministic: the same seed must reproduce the whole
// result; a different seed must perturb it.
func TestSolveYieldDeterministic(t *testing.T) {
	net := bufferkit.RandomNet(bufferkit.NetOpts{Sinks: 10, Seed: 4})
	run := func(seed int64) *bufferkit.YieldResult {
		s := yieldSolver(t,
			bufferkit.WithSamples(40),
			bufferkit.WithSigma(0.1),
			bufferkit.WithVariationSeed(seed),
			bufferkit.WithRobustPlacement(true),
		)
		defer s.Close()
		res, err := s.SolveYield(context.Background(), net)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(9), run(9)
	if len(a.Samples) != 41 || len(b.Samples) != 41 {
		t.Fatalf("expected 41 samples (nominal + 40 MC), got %d and %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs across identical seeds", i)
		}
	}
	if a.Dist != b.Dist || a.Yield != b.Yield || a.Chosen != b.Chosen {
		t.Fatal("aggregate result differs across identical seeds")
	}
	c := run(10)
	diff := false
	for i := range a.Samples {
		if a.Samples[i].Slack != c.Samples[i].Slack {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different variation seeds produced identical sample slacks")
	}
}

// TestSolveYieldExplicitCorners: WithCorners adds the deterministic corner
// set after nominal, and the slow corner must not beat nominal slack.
func TestSolveYieldExplicitCorners(t *testing.T) {
	net := bufferkit.TwoPinNet(8000, 16, 10, 900, bufferkit.PaperWire())
	s := yieldSolver(t, bufferkit.WithCorners(bufferkit.ProcessCorners()[1:]))
	defer s.Close()
	res, err := s.SolveYield(context.Background(), net)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 5 {
		t.Fatalf("got %d samples, want 5 (nominal + 4 named corners)", len(res.Samples))
	}
	if res.Samples[0].Corner.Name != "nominal" {
		t.Fatalf("corner 0 is %q, want nominal", res.Samples[0].Corner.Name)
	}
	var nom, slow, fast float64
	for _, smp := range res.Samples {
		switch smp.Corner.Name {
		case "nominal":
			nom = smp.Slack
		case "slow":
			slow = smp.Slack
		case "fast":
			fast = smp.Slack
		}
	}
	if !(slow < nom && nom < fast) {
		t.Fatalf("corner ordering violated: slow %.4f, nominal %.4f, fast %.4f", slow, nom, fast)
	}
}

// TestSolveYieldRobustNeverWorse: the robust choice's fixed-placement
// yield must be at least the nominal placement's on the same corners.
func TestSolveYieldRobustNeverWorse(t *testing.T) {
	net := bufferkit.RandomNet(bufferkit.NetOpts{Sinks: 12, Seed: 21})
	for _, seed := range []int64{1, 2, 3} {
		opts := []bufferkit.Option{
			bufferkit.WithSamples(64),
			bufferkit.WithSigma(0.2),
			bufferkit.WithVariationSeed(seed),
			bufferkit.WithYieldTarget(-2000),
		}
		sn := yieldSolver(t, opts...)
		nominal, err := sn.SolveYield(context.Background(), net)
		sn.Close()
		if err != nil {
			t.Fatal(err)
		}
		sr := yieldSolver(t, append(opts, bufferkit.WithRobustPlacement(true))...)
		robust, err := sr.SolveYield(context.Background(), net)
		sr.Close()
		if err != nil {
			t.Fatal(err)
		}
		if robust.Yield < nominal.Yield {
			t.Fatalf("seed %d: robust yield %g < nominal yield %g", seed, robust.Yield, nominal.Yield)
		}
		if robust.Yield > robust.OptimalYield+1e-15 {
			t.Fatalf("seed %d: robust yield %g exceeds optimal yield %g", seed, robust.Yield, robust.OptimalYield)
		}
	}
}

func TestSolveYieldOptionValidation(t *testing.T) {
	lib := bufferkit.GenerateLibrary(4)
	if _, err := bufferkit.NewSolver(bufferkit.WithLibrary(lib), bufferkit.WithSamples(-1)); err == nil {
		t.Fatal("negative sample count accepted")
	}
	if _, err := bufferkit.NewSolver(bufferkit.WithLibrary(lib), bufferkit.WithSigma(-0.1)); err == nil {
		t.Fatal("negative sigma accepted")
	}
	if _, err := bufferkit.NewSolver(bufferkit.WithLibrary(lib), bufferkit.WithSigma(0.9)); err == nil {
		t.Fatal("oversized sigma accepted")
	}

	// Yield analysis is a core-engine feature; other algorithms refuse.
	s, err := bufferkit.NewSolver(bufferkit.WithLibrary(lib), bufferkit.WithAlgorithm(bufferkit.AlgoLillis))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var verr *bufferkit.ValidationError
	net := bufferkit.TwoPinNet(4000, 8, 10, 800, bufferkit.PaperWire())
	if _, err := s.SolveYield(context.Background(), net); !errors.As(err, &verr) {
		t.Fatalf("lillis SolveYield: got %v, want ValidationError", err)
	}

	// A malformed explicit corner is rejected before any engine run.
	bad := yieldSolver(t, bufferkit.WithCorners([]bufferkit.Corner{{Name: "bad"}}))
	defer bad.Close()
	if _, err := bad.SolveYield(context.Background(), net); !errors.As(err, &verr) {
		t.Fatalf("bad corner: got %v, want ValidationError", err)
	}
}

// TestSolveYieldPinnedBackends: the pinned core/core-soa registry entries
// sweep on their pinned representation and agree bit-exactly.
func TestSolveYieldPinnedBackends(t *testing.T) {
	net := bufferkit.RandomNet(bufferkit.NetOpts{Sinks: 8, Seed: 13})
	results := map[string]*bufferkit.YieldResult{}
	for _, algo := range []string{bufferkit.AlgoCore, bufferkit.AlgoCoreSoA} {
		s := yieldSolver(t,
			bufferkit.WithAlgorithm(algo),
			bufferkit.WithSamples(24),
			bufferkit.WithSigma(0.12),
		)
		res, err := s.SolveYield(context.Background(), net)
		s.Close()
		if err != nil {
			t.Fatal(err)
		}
		results[algo] = res
	}
	a, b := results[bufferkit.AlgoCore], results[bufferkit.AlgoCoreSoA]
	for i := range a.Samples {
		if a.Samples[i].Slack != b.Samples[i].Slack {
			t.Fatalf("sample %d: core %.17g != core-soa %.17g", i, a.Samples[i].Slack, b.Samples[i].Slack)
		}
	}
	if a.Yield != b.Yield {
		t.Fatalf("yield differs across pinned backends: %g vs %g", a.Yield, b.Yield)
	}
}

// TestSolveYieldCancellation: cancellation mid-sweep surfaces as a
// *PartialSweepError wrapping ErrCanceled.
func TestSolveYieldCancellation(t *testing.T) {
	net := bufferkit.RandomNet(bufferkit.NetOpts{Sinks: 40, Seed: 2})
	s := yieldSolver(t, bufferkit.WithSamples(128), bufferkit.WithSigma(0.05))
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.SolveYield(ctx, net)
	var perr *bufferkit.PartialSweepError
	if !errors.As(err, &perr) {
		t.Fatalf("got %v, want *PartialSweepError", err)
	}
	if !errors.Is(err, bufferkit.ErrCanceled) {
		t.Fatalf("error does not wrap ErrCanceled: %v", err)
	}
	if perr.Total != 129 {
		t.Fatalf("partial error total %d, want 129", perr.Total)
	}
}
