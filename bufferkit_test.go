package bufferkit_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"bufferkit"
)

// TestFacadeQuickstart exercises the documented public workflow end to end.
func TestFacadeQuickstart(t *testing.T) {
	w := bufferkit.PaperWire()
	b := bufferkit.NewTreeBuilder()
	v := b.AddBufferPos(0, w.R*4000, w.C*4000)
	b.AddSink(v, w.R*2500, w.C*2500, 12, 1000)
	b.AddSink(v, w.R*1200, w.C*1200, 30, 900)
	net := b.MustBuild()

	lib := bufferkit.GenerateLibrary(16)
	d := bufferkit.Driver{R: 0.2, K: 15}
	res, err := bufferkit.Insert(net, lib, bufferkit.Options{Driver: d})
	if err != nil {
		t.Fatal(err)
	}
	unbuf, err := bufferkit.Evaluate(net, lib, bufferkit.NewPlacement(net.Len()), d)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Slack > unbuf.Slack) {
		t.Fatalf("insertion did not improve slack: %g vs %g", res.Slack, unbuf.Slack)
	}
	chk, err := bufferkit.Evaluate(net, lib, res.Placement, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(chk.Slack-res.Slack) > 1e-6 {
		t.Fatalf("oracle %g != reported %g", chk.Slack, res.Slack)
	}
}

// TestFacadeAlgorithmsAgree checks the three exported algorithms against
// each other through the public API only.
func TestFacadeAlgorithmsAgree(t *testing.T) {
	net := bufferkit.TwoPinNet(9000, 18, 12, 800, bufferkit.PaperWire())
	d := bufferkit.Driver{R: 0.25, K: 10}
	lib := bufferkit.GenerateLibrary(1)

	vg, err := bufferkit.InsertVanGinneken(net, lib[0], d)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := bufferkit.InsertLillis(net, lib, d)
	if err != nil {
		t.Fatal(err)
	}
	co, err := bufferkit.Insert(net, lib, bufferkit.Options{Driver: d})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vg.Slack-ll.Slack) > 1e-6 || math.Abs(ll.Slack-co.Slack) > 1e-6 {
		t.Fatalf("algorithms disagree: vg %g, lillis %g, new %g", vg.Slack, ll.Slack, co.Slack)
	}
}

func TestFacadeNetlistRoundTrip(t *testing.T) {
	tr, err := bufferkit.IndustrialNet(15, 80, 3)
	if err != nil {
		t.Fatal(err)
	}
	in := &bufferkit.Net{Name: "rt", Tree: tr, Driver: bufferkit.Driver{R: 0.3}}
	var buf bytes.Buffer
	if err := bufferkit.WriteNet(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := bufferkit.ParseNet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "rt" || out.Tree.Len() != tr.Len() || out.Driver != in.Driver {
		t.Fatalf("round trip lost data: %+v", out)
	}

	var lb bytes.Buffer
	if err := bufferkit.WriteLibrary(&lb, bufferkit.GenerateLibraryWithInverters(6)); err != nil {
		t.Fatal(err)
	}
	lib2, err := bufferkit.ParseLibrary(strings.NewReader(lb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(lib2) != 6 || !lib2.HasInverters() {
		t.Fatalf("library round trip lost data: %+v", lib2)
	}
}

func TestFacadeCostPareto(t *testing.T) {
	net := bufferkit.TwoPinNet(8000, 10, 15, 900, bufferkit.PaperWire())
	pts, err := bufferkit.CostSlackPareto(net, bufferkit.GenerateLibrary(4), bufferkit.CostOptions{
		Driver: bufferkit.Driver{R: 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 2 {
		t.Fatalf("degenerate frontier: %+v", pts)
	}
	opt, err := bufferkit.Insert(net, bufferkit.GenerateLibrary(4), bufferkit.Options{Driver: bufferkit.Driver{R: 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pts[len(pts)-1].Slack-opt.Slack) > 1e-6 {
		t.Fatalf("frontier max %g != optimum %g", pts[len(pts)-1].Slack, opt.Slack)
	}
}

func TestFacadeSegmentAndReduce(t *testing.T) {
	base := bufferkit.RandomNet(bufferkit.NetOpts{Sinks: 10, Seed: 4})
	seg, err := bufferkit.SegmentUniform(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Len() <= base.Len() {
		t.Fatal("segmenting did not add vertices")
	}
	seg2, err := bufferkit.SegmentToPositions(base, 200)
	if err != nil {
		t.Fatal(err)
	}
	if seg2.NumBufferPositions() != 200 {
		t.Fatalf("positions = %d", seg2.NumBufferPositions())
	}
	red, idx, err := bufferkit.ReduceLibrary(bufferkit.GenerateLibrary(32), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(red) != 8 || len(idx) != 8 {
		t.Fatalf("reduce returned %d types", len(red))
	}
}

func TestFacadeDestructiveMode(t *testing.T) {
	net := bufferkit.TwoPinNet(9000, 20, 12, 800, bufferkit.PaperWire())
	d := bufferkit.Driver{R: 0.3}
	lib := bufferkit.GenerateLibrary(8)
	a, err := bufferkit.Insert(net, lib, bufferkit.Options{Driver: d, Prune: bufferkit.PruneTransient})
	if err != nil {
		t.Fatal(err)
	}
	b, err := bufferkit.Insert(net, lib, bufferkit.Options{Driver: d, Prune: bufferkit.PruneDestructive})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Slack-b.Slack) > 1e-6 {
		t.Fatalf("modes disagree on a 2-pin net: %g vs %g", a.Slack, b.Slack)
	}
}
