module bufferkit

go 1.24
