package bufferkit_test

import (
	"math"
	"testing"

	"bufferkit"
	"bufferkit/internal/netgen"
)

// batchNets builds n deterministic random nets of varying shapes.
func batchNets(n int) []*bufferkit.Tree {
	nets := make([]*bufferkit.Tree, n)
	for i := range nets {
		nets[i] = bufferkit.RandomNet(bufferkit.NetOpts{
			Sinks: 4 + i%13,
			Seed:  int64(i) * 31,
		})
	}
	return nets
}

// TestInsertBatchMatchesSequential is the batch correctness property: with
// any worker count, InsertBatch must produce results byte-identical to a
// sequential Insert per net — same slack bits, same placement, same stats.
func TestInsertBatchMatchesSequential(t *testing.T) {
	nets := batchNets(72)
	lib := bufferkit.GenerateLibrary(12)
	d := bufferkit.Driver{R: 0.25, K: 10}

	want := make([]*bufferkit.Result, len(nets))
	for i, tr := range nets {
		res, err := bufferkit.Insert(tr, lib, bufferkit.Options{Driver: d})
		if err != nil {
			t.Fatalf("net %d: %v", i, err)
		}
		want[i] = res
	}

	for _, workers := range []int{1, 3, 8} {
		got, err := bufferkit.InsertBatch(nets, lib, bufferkit.BatchOptions{Driver: d, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(nets) {
			t.Fatalf("workers=%d: %d results for %d nets", workers, len(got), len(nets))
		}
		for i := range got {
			if got[i] == nil {
				t.Fatalf("workers=%d net %d: nil result", workers, i)
			}
			if math.Float64bits(got[i].Slack) != math.Float64bits(want[i].Slack) {
				t.Fatalf("workers=%d net %d: slack %v != sequential %v", workers, i, got[i].Slack, want[i].Slack)
			}
			if len(got[i].Placement) != len(want[i].Placement) {
				t.Fatalf("workers=%d net %d: placement length differs", workers, i)
			}
			for v := range got[i].Placement {
				if got[i].Placement[v] != want[i].Placement[v] {
					t.Fatalf("workers=%d net %d vertex %d: placement %d != %d",
						workers, i, v, got[i].Placement[v], want[i].Placement[v])
				}
			}
			if got[i].Candidates != want[i].Candidates || !got[i].Stats.SameCounters(want[i].Stats) {
				t.Fatalf("workers=%d net %d: stats diverged", workers, i)
			}
		}
	}
}

// TestInsertBatchConcurrent exercises the worker pool with maximum overlap
// (more nets than workers, all workers busy); run with -race this is the
// batch data-race test required for the concurrent arena/engine design.
func TestInsertBatchConcurrent(t *testing.T) {
	nets := batchNets(96)
	lib := bufferkit.GenerateLibrary(8)
	for round := 0; round < 3; round++ {
		res, err := bufferkit.InsertBatch(nets, lib, bufferkit.BatchOptions{
			Driver:  bufferkit.Driver{R: 0.3, K: 5},
			Workers: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range res {
			if r == nil || r.Placement.Count() == 0 && r.Slack == 0 {
				t.Fatalf("round %d net %d: implausible result %+v", round, i, r)
			}
		}
	}
}

// TestInsertBatchPartialFailure: failed nets surface in a *BatchError while
// healthy nets still return results.
func TestInsertBatchPartialFailure(t *testing.T) {
	nets := batchNets(6)
	// Net 2 demands negative polarity, which a buffer-only library cannot
	// serve.
	bad := bufferkit.NewTreeBuilder()
	v := bad.AddBufferPos(0, 1, 1)
	bad.AddSinkPol(v, 1, 1, 2, 100, bufferkit.Negative)
	nets[2] = bad.MustBuild()

	res, err := bufferkit.InsertBatch(nets, bufferkit.GenerateLibrary(4), bufferkit.BatchOptions{Workers: 2})
	be, ok := err.(*bufferkit.BatchError)
	if !ok {
		t.Fatalf("err = %v, want *BatchError", err)
	}
	if len(be.Errs) != 1 || be.Errs[2] == nil {
		t.Fatalf("Errs = %v, want exactly net 2", be.Errs)
	}
	if res[2] != nil {
		t.Fatal("failed net produced a result")
	}
	for i, r := range res {
		if i != 2 && r == nil {
			t.Fatalf("healthy net %d lost its result", i)
		}
	}
}

func TestInsertBatchDriverMismatch(t *testing.T) {
	nets := batchNets(3)
	_, err := bufferkit.InsertBatch(nets, bufferkit.GenerateLibrary(4), bufferkit.BatchOptions{
		Drivers: make([]bufferkit.Driver, 2),
	})
	if err == nil {
		t.Fatal("accepted mismatched per-net drivers")
	}
}

func TestInsertBatchEmpty(t *testing.T) {
	res, err := bufferkit.InsertBatch(nil, bufferkit.GenerateLibrary(4), bufferkit.BatchOptions{})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
}

// TestWarmEngineZeroAllocs is the tentpole's acceptance assertion: once an
// Engine has run a net, re-running the same-shaped instance performs zero
// steady-state heap allocations — decisions, candidate nodes, list headers
// and every scratch buffer come from memory retained across runs.
func TestWarmEngineZeroAllocs(t *testing.T) {
	tr, err := netgen.Industrial(40, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	lib := bufferkit.GenerateLibrary(16)
	opt := bufferkit.Options{Driver: bufferkit.Driver{R: 0.2, K: 15}}

	eng := bufferkit.NewEngine()
	if err := eng.Reset(tr, lib, opt); err != nil {
		t.Fatal(err)
	}
	res := &bufferkit.Result{}
	if err := eng.Run(res); err != nil {
		t.Fatal(err)
	}
	cold, err := bufferkit.Insert(tr, lib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res.Slack) != math.Float64bits(cold.Slack) {
		t.Fatalf("warm %v != cold %v", res.Slack, cold.Slack)
	}

	allocs := testing.AllocsPerRun(20, func() {
		if err := eng.Run(res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("warm Engine.Run allocates %.1f objects per run, want 0", allocs)
	}

	// Reset to the same instance must stay allocation-free too.
	allocs = testing.AllocsPerRun(20, func() {
		if err := eng.Reset(tr, lib, opt); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("warm Reset+Run allocates %.1f objects per run, want 0", allocs)
	}
}

// TestWarmEngineAcrossShapes: an engine hopping between differently shaped
// nets still produces exact results (scratch resizing is correct).
func TestWarmEngineAcrossShapes(t *testing.T) {
	lib := bufferkit.GenerateLibrary(8)
	d := bufferkit.Driver{R: 0.3}
	eng := bufferkit.NewEngine()
	res := &bufferkit.Result{}
	for i, tr := range batchNets(24) {
		if err := eng.Reset(tr, lib, bufferkit.Options{Driver: d}); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(res); err != nil {
			t.Fatal(err)
		}
		want, err := bufferkit.Insert(tr, lib, bufferkit.Options{Driver: d})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(res.Slack) != math.Float64bits(want.Slack) {
			t.Fatalf("net %d: warm engine %v != fresh %v", i, res.Slack, want.Slack)
		}
		chk, err := bufferkit.Evaluate(tr, lib, res.Placement, d)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(chk.Slack-res.Slack) > 1e-6 {
			t.Fatalf("net %d: oracle %g != reported %g", i, chk.Slack, res.Slack)
		}
	}
}

func TestEngineRunBeforeReset(t *testing.T) {
	if err := bufferkit.NewEngine().Run(&bufferkit.Result{}); err == nil {
		t.Fatal("Run before Reset must fail")
	}
}

// TestEngineFailedResetBlocksRun: a failed Reset must not leave the
// previous instance runnable — Run after it must error, not silently
// report the stale net's result.
func TestEngineFailedResetBlocksRun(t *testing.T) {
	eng := bufferkit.NewEngine()
	good := bufferkit.TwoPinNet(2000, 4, 10, 1000, bufferkit.PaperWire())
	if err := eng.Reset(good, bufferkit.GenerateLibrary(4), bufferkit.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(&bufferkit.Result{}); err != nil {
		t.Fatal(err)
	}

	bad := bufferkit.NewTreeBuilder()
	v := bad.AddBufferPos(0, 1, 1)
	bad.AddSinkPol(v, 1, 1, 2, 100, bufferkit.Negative)
	if err := eng.Reset(bad.MustBuild(), bufferkit.GenerateLibrary(4), bufferkit.Options{}); err == nil {
		t.Fatal("Reset accepted an infeasible instance")
	}
	if err := eng.Run(&bufferkit.Result{}); err == nil {
		t.Fatal("Run after failed Reset reported a stale result")
	}
	// Release also de-arms the engine.
	if err := eng.Reset(good, bufferkit.GenerateLibrary(4), bufferkit.Options{}); err != nil {
		t.Fatal(err)
	}
	eng.Release()
	if err := eng.Run(&bufferkit.Result{}); err == nil {
		t.Fatal("Run after Release must fail until the next Reset")
	}
}
