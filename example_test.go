package bufferkit_test

import (
	"context"
	"fmt"
	"math"
	"sort"

	"bufferkit"
)

// ExampleSolver_Run shows the canonical workflow: build a net, construct a
// Solver with functional options, run it under a context, and inspect the
// placement.
func ExampleSolver_Run() {
	// A 10 mm two-pin line with 20 candidate buffer positions.
	net := bufferkit.TwoPinNet(10000, 20, 12, 1000, bufferkit.PaperWire())

	solver, err := bufferkit.NewSolver(
		bufferkit.WithLibrary(bufferkit.GenerateLibrary(8)),
		bufferkit.WithDriver(bufferkit.Driver{R: 0.2, K: 15}),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer solver.Close()

	res, err := solver.Run(context.Background(), net)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("algorithm: %s\n", solver.Algorithm())
	fmt.Printf("buffers placed: %d\n", res.Placement.Count())
	fmt.Printf("slack: %.1f ps\n", res.Slack)
	// Output:
	// algorithm: new
	// buffers placed: 2
	// slack: 516.9 ps
}

// ExampleWithAlgorithm selects a registered algorithm by name — here the
// O(b²n²) Lillis baseline — and confirms it finds the same optimum as the
// paper's O(bn²) algorithm.
func ExampleWithAlgorithm() {
	net := bufferkit.TwoPinNet(8000, 16, 10, 900, bufferkit.PaperWire())
	lib := bufferkit.GenerateLibrary(6)
	drv := bufferkit.Driver{R: 0.25, K: 10}

	slacks := map[string]float64{}
	for _, algo := range []string{bufferkit.AlgoNew, bufferkit.AlgoLillis} {
		s, err := bufferkit.NewSolver(
			bufferkit.WithLibrary(lib),
			bufferkit.WithDriver(drv),
			bufferkit.WithAlgorithm(algo),
		)
		if err != nil {
			fmt.Println(err)
			return
		}
		res, err := s.Run(context.Background(), net)
		if err != nil {
			fmt.Println(err)
			return
		}
		slacks[algo] = res.Slack
	}
	fmt.Println("same optimum:", math.Abs(slacks[bufferkit.AlgoNew]-slacks[bufferkit.AlgoLillis]) < 1e-9)
	// Output:
	// same optimum: true
}

// ExampleWithBackend pins the candidate-list representation. The two
// backends — the paper's doubly-linked list and the cache-friendly
// structure-of-arrays slabs — execute the same arithmetic and return
// bit-identical results; only the constant factor differs (DESIGN.md §11),
// so selecting one is purely a performance decision.
func ExampleWithBackend() {
	net := bufferkit.TwoPinNet(10000, 20, 12, 1000, bufferkit.PaperWire())
	lib := bufferkit.GenerateLibrary(8)

	slacks := map[string]float64{}
	for _, backend := range []string{"list", "soa"} {
		s, err := bufferkit.NewSolver(
			bufferkit.WithLibrary(lib),
			bufferkit.WithDriver(bufferkit.Driver{R: 0.2, K: 15}),
			bufferkit.WithBackend(backend),
		)
		if err != nil {
			fmt.Println(err)
			return
		}
		res, err := s.Run(context.Background(), net)
		s.Close()
		if err != nil {
			fmt.Println(err)
			return
		}
		slacks[backend] = res.Slack
	}
	fmt.Println("bit-identical:", slacks["list"] == slacks["soa"])
	fmt.Printf("slack: %.1f ps\n", slacks["soa"])
	// Output:
	// bit-identical: true
	// slack: 516.9 ps
}

// ExampleSolver_SolveYield estimates timing yield under process variation:
// 64 seeded Monte Carlo corners perturb the library and wire parameters,
// and robust selection returns the placement maximizing the fraction of
// corners that still meet timing, rather than the nominal optimum.
func ExampleSolver_SolveYield() {
	net := bufferkit.TwoPinNet(10000, 20, 12, 1000, bufferkit.PaperWire())

	solver, err := bufferkit.NewSolver(
		bufferkit.WithLibrary(bufferkit.GenerateLibrary(8)),
		bufferkit.WithDriver(bufferkit.Driver{R: 0.2, K: 15}),
		bufferkit.WithSamples(64),
		bufferkit.WithSigma(0.1),
		bufferkit.WithVariationSeed(1),
		bufferkit.WithYieldTarget(450),
		bufferkit.WithRobustPlacement(true),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer solver.Close()

	res, err := solver.SolveYield(context.Background(), net)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("samples: %d\n", len(res.Samples))
	fmt.Printf("yield at target: %.3f\n", res.Yield)
	fmt.Printf("median slack: %.1f ps\n", res.Dist.P50)
	fmt.Printf("distinct optima: %d, chosen buffers: %d\n", len(res.Placements), res.Placement.Count())
	// Output:
	// samples: 65
	// yield at target: 0.969
	// median slack: 521.5 ps
	// distinct optima: 5, chosen buffers: 3
}

// ExampleSolver_Stream runs a batch and consumes results as they complete;
// NetResult.Index ties each result back to its net, so completion order
// does not matter.
func ExampleSolver_Stream() {
	nets := []*bufferkit.Tree{
		bufferkit.TwoPinNet(4000, 8, 10, 800, bufferkit.PaperWire()),
		bufferkit.TwoPinNet(8000, 16, 10, 800, bufferkit.PaperWire()),
		bufferkit.TwoPinNet(12000, 24, 10, 800, bufferkit.PaperWire()),
	}
	solver, err := bufferkit.NewSolver(
		bufferkit.WithLibrary(bufferkit.GenerateLibrary(8)),
		bufferkit.WithDriver(bufferkit.Driver{R: 0.2, K: 15}),
		bufferkit.WithWorkers(2),
	)
	if err != nil {
		fmt.Println(err)
		return
	}

	buffers := make([]int, len(nets))
	for res, err := range solver.Stream(context.Background(), nets) {
		if err != nil {
			fmt.Println(err)
			return
		}
		buffers[res.Index] = res.Placement.Count()
	}
	fmt.Println("sorted by length, buffers:", buffers, "monotone:", sort.IntsAreSorted(buffers))
	// Output:
	// sorted by length, buffers: [0 2 3] monotone: true
}
