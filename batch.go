package bufferkit

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"bufferkit/internal/core"
)

// BatchOptions configure InsertBatch.
type BatchOptions struct {
	// Driver is the source driver applied to every net (zero = ideal).
	Driver Driver
	// Drivers optionally overrides Driver per net; when non-nil its length
	// must equal the number of nets.
	Drivers []Driver
	// Prune selects the convex pruning mode for every run.
	Prune PruneMode
	// Workers caps the number of concurrent worker goroutines; 0 or
	// negative means runtime.GOMAXPROCS(0).
	Workers int
}

// enginePool recycles warm engines (and their arenas) across InsertBatch
// calls, so a service issuing batch after batch reaches steady state with
// no per-batch engine construction at all.
var enginePool = sync.Pool{New: func() any { return core.NewEngine() }}

// BatchError reports every net that failed in an InsertBatch call.
type BatchError struct {
	// Errs maps net index to its error; only failed nets appear.
	Errs map[int]error
}

// Error implements error, naming the first failed net and the failure
// count.
func (e *BatchError) Error() string {
	first := -1
	for i := range e.Errs {
		if first < 0 || i < first {
			first = i
		}
	}
	return fmt.Sprintf("bufferkit: batch: %d nets failed; first failure at net %d: %v",
		len(e.Errs), first, e.Errs[first])
}

// InsertBatch runs the paper's O(bn²) insertion over every net concurrently
// on a worker pool. Each worker owns one pooled Engine (and therefore one
// decision arena), so the steady-state hot path allocates nothing no matter
// how many nets stream through — the batch analogue of holding a warm
// Engine.
//
// Results are positionally aligned with nets and identical to running
// Insert sequentially on each net (the algorithm is deterministic and
// workers share nothing). On failure the returned error is a *BatchError
// naming every failed net; the result slice still carries the successful
// nets, with nil at failed indices.
func InsertBatch(nets []*Tree, lib Library, opt BatchOptions) ([]*Result, error) {
	if opt.Drivers != nil && len(opt.Drivers) != len(nets) {
		return nil, fmt.Errorf("bufferkit: batch: %d per-net drivers for %d nets", len(opt.Drivers), len(nets))
	}
	results := make([]*Result, len(nets))
	if len(nets) == 0 {
		return results, nil
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(nets) {
		workers = len(nets)
	}

	errs := make([]error, len(nets))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			eng := enginePool.Get().(*core.Engine)
			defer func() {
				eng.Release() // don't let pooled engines pin the batch's trees
				enginePool.Put(eng)
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(nets) {
					return
				}
				o := core.Options{Driver: opt.Driver, Prune: opt.Prune}
				if opt.Drivers != nil {
					o.Driver = opt.Drivers[i]
				}
				if err := eng.Reset(nets[i], lib, o); err != nil {
					errs[i] = err
					continue
				}
				res := &Result{}
				if err := eng.Run(res); err != nil {
					errs[i] = err
					continue
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()

	failed := map[int]error{}
	for i, err := range errs {
		if err != nil {
			failed[i] = err
		}
	}
	if len(failed) > 0 {
		return results, &BatchError{Errs: failed}
	}
	return results, nil
}

// NewEngine returns a reusable insertion engine for workloads that manage
// their own concurrency: Reset it at a net, Run it (repeatedly, if
// useful), and keep it warm — a warm engine allocates nothing on the
// steady-state path. Engines are not safe for concurrent use.
func NewEngine() *Engine { return core.NewEngine() }

// Engine is a reusable insertion engine (see internal/core.Engine).
type Engine = core.Engine
