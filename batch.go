package bufferkit

import (
	"context"
	"fmt"

	"bufferkit/internal/core"
)

// BatchOptions configure InsertBatch.
//
// Deprecated: construct a Solver with WithDriver / WithDrivers /
// WithPruneMode / WithWorkers instead.
type BatchOptions struct {
	// Driver is the source driver applied to every net (zero = ideal).
	Driver Driver
	// Drivers optionally overrides Driver per net; when non-nil its length
	// must equal the number of nets.
	Drivers []Driver
	// Prune selects the convex pruning mode for every run.
	Prune PruneMode
	// Workers caps the number of concurrent worker goroutines; 0 or
	// negative means runtime.GOMAXPROCS(0).
	Workers int
}

// BatchError reports every net that failed in a RunBatch or InsertBatch
// call.
type BatchError struct {
	// Errs maps net index to its error; only failed nets appear.
	Errs map[int]error
}

// Error implements error, naming the first failed net and the failure
// count.
func (e *BatchError) Error() string {
	first := -1
	for i := range e.Errs {
		if first < 0 || i < first {
			first = i
		}
	}
	return fmt.Sprintf("bufferkit: batch: %d nets failed; first failure at net %d: %v",
		len(e.Errs), first, e.Errs[first])
}

// InsertBatch runs the paper's O(bn²) insertion over every net concurrently
// on a worker pool. Results are positionally aligned with nets and
// identical to running Insert sequentially on each net. On failure the
// returned error is a *BatchError naming every failed net; the result
// slice still carries the successful nets, with nil at failed indices.
//
// Deprecated: use NewSolver with Solver.RunBatch, which adds context
// cancellation, or Solver.Stream, which yields results as they complete.
func InsertBatch(nets []*Tree, lib Library, opt BatchOptions) ([]*Result, error) {
	// Preserve the legacy error contract exactly: a driver-count mismatch
	// fails with this message, an empty batch succeeds even with a bad
	// library, and an invalid library surfaces as a *BatchError naming
	// every net (as the per-net engine Resets used to report it).
	if opt.Drivers != nil && len(opt.Drivers) != len(nets) {
		return nil, fmt.Errorf("bufferkit: batch: %d per-net drivers for %d nets", len(opt.Drivers), len(nets))
	}
	if len(nets) == 0 {
		return []*Result{}, nil
	}
	s, err := NewSolver(
		WithLibrary(lib),
		WithDriver(opt.Driver),
		WithDrivers(opt.Drivers),
		WithPruneMode(opt.Prune),
		WithWorkers(opt.Workers),
	)
	if err != nil {
		errs := make(map[int]error, len(nets))
		for i := range nets {
			errs[i] = err
		}
		return make([]*Result, len(nets)), &BatchError{Errs: errs}
	}
	nrs, err := s.RunBatch(context.Background(), nets)
	if _, partial := err.(*BatchError); err != nil && !partial {
		return nil, err
	}
	results := make([]*Result, len(nets))
	for i, nr := range nrs {
		if nr != nil {
			results[i] = legacyResult(nr)
		}
	}
	return results, err
}

// legacyResult converts a NetResult back into the pre-Solver Result shape
// shared by the deprecated Insert and InsertBatch wrappers.
func legacyResult(nr *NetResult) *Result {
	return &Result{Slack: nr.Slack, Placement: nr.Placement, Candidates: nr.Candidates, Stats: nr.Stats}
}

// NewEngine returns a reusable insertion engine for workloads that manage
// their own concurrency: Reset it at a net, Run it (repeatedly, if
// useful), and keep it warm — a warm engine allocates nothing on the
// steady-state path. Engines are not safe for concurrent use.
//
// Most callers are better served by a Solver, which pools warm engines
// behind the same zero-allocation path; NewEngine remains for callers that
// need direct control of Reset/Run scheduling.
func NewEngine() *Engine { return core.NewEngine() }

// Engine is a reusable insertion engine (see internal/core.Engine).
type Engine = core.Engine
