// Package bufferkit is a Go implementation of optimal buffer insertion for
// interconnect delay optimization, reproducing Li & Shi, "An O(bn²) Time
// Algorithm for Optimal Buffer Insertion with b Buffer Types" (DATE 2005).
//
// Given a routing tree with sink capacitances and required arrival times,
// per-edge lumped RC, a set of legal buffer positions and a library of b
// buffer types, Insert places buffers to maximize the slack at the source
// under the Elmore wire delay model and the linear buffer delay model — in
// O(bn²) time, versus the classic Lillis–Cheng–Lin O(b²n²).
//
// Units everywhere: resistance kΩ, capacitance fF, time ps (kΩ·fF = ps),
// distance µm.
//
// Quick start:
//
//	b := bufferkit.NewTreeBuilder()
//	v := b.AddBufferPos(0, 0.38, 590)          // 5 mm of wire, then a leg
//	b.AddSink(v, 0.19, 295, 10, 1000)          // 10 fF sink, RAT 1 ns
//	net := b.MustBuild()
//	solver, err := bufferkit.NewSolver(
//		bufferkit.WithLibrary(bufferkit.GenerateLibrary(16)),
//		bufferkit.WithDriver(bufferkit.Driver{R: 0.2, K: 15}),
//	)
//	res, err := solver.Run(ctx, net)
//	// res.Slack is the optimal slack; res.Placement says which buffer
//	// type (if any) to place at every vertex.
//
// The Solver is the single entry point to every algorithm: the paper's
// O(bn²) (the default), the Lillis O(b²n²) and van Ginneken O(n²)
// baselines, and the cost–slack Pareto extension, all behind the Algorithm
// interface and selected with WithAlgorithm. New algorithms plug in
// through Register without touching the facade. Solver.Run takes a
// context.Context and cancels mid-run; typed errors (ErrInfeasible,
// ErrCanceled, *ValidationError) support errors.Is / errors.As branching.
//
// The O(bn²) and Lillis engines run on either of two candidate-list
// representations — the paper's doubly-linked list or cache-friendly
// structure-of-arrays slabs — selected with WithBackend; results are
// bit-identical and the SoA default is the measured-faster one
// (DESIGN.md §11).
//
// The package is a facade over focused internal packages: routing trees,
// buffer libraries, exact Elmore evaluation, the candidate-list machinery
// with the paper's convex pruning, the O(bn²) algorithm, the van Ginneken
// and Lillis baselines, wire segmenting, workload generation, netlist I/O,
// a cost–slack Pareto extension, and library clustering. See DESIGN.md for
// the system inventory and EXPERIMENTS.md for the reproduction results.
//
// For many-net workloads (thousands of nets per design, or the same net
// under many process corners), Solver.Stream runs the algorithm
// concurrently on a worker pool of warm engines and yields results as they
// complete; Solver.RunBatch collects them, and NewEngine exposes a
// reusable zero-steady-state-allocation engine directly — see DESIGN.md
// §7–§9.
//
// Solver.SolveYield evaluates a net across process/interconnect variation:
// deterministic sign-off corners (WithCorners) and seeded Monte Carlo
// samples (WithSamples, WithSigma) fan out over the same warm engine pool,
// returning the slack distribution, the yield at a target
// (WithYieldTarget), and — with WithRobustPlacement — the placement
// maximizing yield across corners rather than nominal slack. See
// DESIGN.md §12.
package bufferkit

import (
	"context"
	"io"

	"bufferkit/internal/core"
	"bufferkit/internal/costopt"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/libreduce"
	"bufferkit/internal/lillis"
	"bufferkit/internal/netgen"
	"bufferkit/internal/netlist"
	"bufferkit/internal/segment"
	"bufferkit/internal/tree"
	"bufferkit/internal/vanginneken"
)

// Core model types.
type (
	// Tree is a routing tree rooted at the source (vertex 0).
	Tree = tree.Tree
	// TreeBuilder constructs routing trees top-down.
	TreeBuilder = tree.Builder
	// Vertex is one node of a routing tree.
	Vertex = tree.Vertex
	// Polarity is a sink's required signal polarity.
	Polarity = tree.Polarity
	// Buffer is one buffer (or inverter) type.
	Buffer = library.Buffer
	// Library is an ordered set of buffer types.
	Library = library.Library
	// Driver models the net's source driver.
	Driver = delay.Driver
	// Placement maps vertex index to a library type index or NoBuffer.
	Placement = delay.Placement
	// TimingResult is the exact Elmore evaluation of one placement.
	TimingResult = delay.Result
	// Options configure Insert.
	Options = core.Options
	// Result is the outcome of Insert.
	Result = core.Result
	// LillisResult is the outcome of InsertLillis.
	LillisResult = lillis.Result
	// VanGinnekenResult is the outcome of InsertVanGinneken.
	VanGinnekenResult = vanginneken.Result
	// Stats are Insert's instrumentation counters.
	Stats = core.Stats
	// PruneMode selects transient (exact) or destructive (paper-literal)
	// convex pruning.
	PruneMode = core.PruneMode
	// Backend selects the candidate-list representation (see WithBackend).
	Backend = core.Backend
	// Net bundles a parsed net file: name, tree and driver.
	Net = netlist.Net
	// CostSlackPoint is one point of the cost–slack Pareto frontier.
	CostSlackPoint = costopt.Point
	// CostOptions configure CostSlackPareto.
	CostOptions = costopt.Options
	// NetOpts parameterize RandomNet topologies.
	NetOpts = netgen.Opts
	// Wire is a per-µm wire parameterization for the net generators.
	Wire = netgen.Wire
)

// Re-exported constants.
const (
	// Positive and Negative are sink polarity requirements.
	Positive = tree.Positive
	Negative = tree.Negative
	// NoBuffer marks an unbuffered vertex in a Placement.
	NoBuffer = delay.NoBuffer
	// PruneTransient keeps the full candidate list and is exact everywhere.
	PruneTransient = core.PruneTransient
	// PruneDestructive reproduces the paper's printed pruning code; exact
	// on 2-pin nets, heuristic on multi-pin nets (DESIGN.md §4).
	PruneDestructive = core.PruneDestructive
	// BackendDefault resolves to the benchmark-chosen default backend.
	BackendDefault = core.BackendDefault
	// BackendList is the paper's doubly-linked candidate list.
	BackendList = core.BackendList
	// BackendSoA is the cache-friendly structure-of-arrays representation.
	BackendSoA = core.BackendSoA
)

// NewTreeBuilder returns a builder whose vertex 0 is the source.
func NewTreeBuilder() *TreeBuilder { return tree.NewBuilder() }

// Insert runs the paper's O(bn²) optimal buffer insertion.
//
// Deprecated: construct a Solver (NewSolver with WithLibrary, WithDriver,
// WithPruneMode) and call Solver.Run, which adds context cancellation and
// reuses warm engines across runs. Insert remains as a thin wrapper.
func Insert(t *Tree, lib Library, opt Options) (*Result, error) {
	s, err := NewSolver(
		WithLibrary(lib),
		WithDriver(opt.Driver),
		WithPruneMode(opt.Prune),
		WithCheckInvariants(opt.CheckInvariants),
	)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	nr, err := s.Run(context.Background(), t)
	if err != nil {
		return nil, err
	}
	return legacyResult(nr), nil
}

// InsertLillis runs the Lillis–Cheng–Lin O(b²n²) baseline (no inverter
// support). Same optimum as Insert; quadratic in the library size.
//
// Deprecated: use NewSolver with WithAlgorithm(AlgoLillis) and Solver.Run.
// InsertLillis remains as a thin wrapper.
func InsertLillis(t *Tree, lib Library, drv Driver) (*LillisResult, error) {
	s, err := NewSolver(WithLibrary(lib), WithDriver(drv), WithAlgorithm(AlgoLillis))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	nr, err := s.Run(context.Background(), t)
	if err != nil {
		return nil, err
	}
	return &LillisResult{
		Slack:      nr.Slack,
		Placement:  nr.Placement,
		Candidates: nr.Candidates,
		Stats: lillis.Stats{
			Positions:     nr.Stats.Positions,
			MaxListLen:    nr.Stats.MaxListLen,
			SumListLen:    nr.Stats.SumListLen,
			BetasInserted: nr.Stats.BetasKept,
		},
	}, nil
}

// InsertVanGinneken runs the classic single-type O(n²) algorithm.
//
// Deprecated: use NewSolver with WithAlgorithm(AlgoVanGinneken) — and a
// one-type library — and Solver.Run. InsertVanGinneken remains as a thin
// wrapper.
func InsertVanGinneken(t *Tree, buf Buffer, drv Driver) (*VanGinnekenResult, error) {
	s, err := NewSolver(WithLibrary(Library{buf}), WithDriver(drv), WithAlgorithm(AlgoVanGinneken))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	nr, err := s.Run(context.Background(), t)
	if err != nil {
		return nil, err
	}
	return &VanGinnekenResult{
		Slack:      nr.Slack,
		Placement:  nr.Placement,
		Candidates: nr.Candidates,
		MaxListLen: nr.Stats.MaxListLen,
	}, nil
}

// Evaluate computes exact Elmore timing of a placement — the oracle Insert
// results agree with.
func Evaluate(t *Tree, lib Library, p Placement, drv Driver) (*TimingResult, error) {
	return delay.Evaluate(t, lib, p, drv)
}

// NewPlacement returns an all-unbuffered placement for n vertices.
func NewPlacement(n int) Placement { return delay.NewPlacement(n) }

// CostSlackPareto computes the buffer-cost versus slack trade-off frontier
// (the paper's cost-reduction application).
//
// Deprecated: use NewSolver with WithAlgorithm(AlgoCostSlack) and
// Solver.Run; NetResult.Frontier carries the frontier. CostSlackPareto
// remains as a thin wrapper.
func CostSlackPareto(t *Tree, lib Library, opt CostOptions) ([]CostSlackPoint, error) {
	if opt.NoCrossLevelPrune {
		// The ablation switch has no Solver option; take the direct path.
		return costopt.Pareto(t, lib, opt)
	}
	s, err := NewSolver(
		WithLibrary(lib),
		WithDriver(opt.Driver),
		WithAlgorithm(AlgoCostSlack),
		WithMaxCost(opt.MaxCost),
	)
	if err != nil {
		return nil, err
	}
	nr, err := s.Run(context.Background(), t)
	if err != nil {
		return nil, err
	}
	return nr.Frontier, nil
}

// GenerateLibrary builds a graded library of the given size spanning the
// paper's TSMC 180 nm parameter ranges.
func GenerateLibrary(size int) Library { return library.Generate(size) }

// GenerateLibraryWithInverters is GenerateLibrary with every second type an
// inverter.
func GenerateLibraryWithInverters(size int) Library { return library.GenerateWithInverters(size) }

// ReduceLibrary clusters lib down to k representative types (Alpert-style
// library selection). Returns the reduced library and the chosen original
// indices.
func ReduceLibrary(lib Library, k int) (Library, []int, error) {
	return libreduce.Reduce(lib, k)
}

// PaperWire returns the paper's wire parameterization (0.076 Ω/µm,
// 0.118 fF/µm).
func PaperWire() Wire { return netgen.PaperWire() }

// TwoPinNet builds a source→sink line of the given length (µm) with evenly
// spaced buffer positions.
func TwoPinNet(length float64, positions int, sinkCap, rat float64, w Wire) *Tree {
	return netgen.TwoPin(length, positions, sinkCap, rat, w)
}

// BalancedNet builds a clock-tree-like balanced topology.
func BalancedNet(fanout, depth int, rootEdge, sinkCap, rat float64, w Wire) *Tree {
	return netgen.Balanced(fanout, depth, rootEdge, sinkCap, rat, w)
}

// RandomNet builds a seeded random routing tree.
func RandomNet(o NetOpts) *Tree { return netgen.Random(o) }

// IndustrialNet builds a synthetic industrial-scale net: `sinks` sinks and
// exactly `positions` buffer positions created by wire segmenting.
func IndustrialNet(sinks, positions int, seed int64) (*Tree, error) {
	return netgen.Industrial(sinks, positions, seed)
}

// SegmentUniform splits every edge of t into k equal segments whose
// junctions are buffer positions.
func SegmentUniform(t *Tree, k int) (*Tree, error) { return segment.Uniform(t, k) }

// SegmentToPositions segments edges proportionally to capacitance until the
// tree has the target number of buffer positions.
func SegmentToPositions(t *Tree, target int) (*Tree, error) {
	return segment.ToPositions(t, target)
}

// ParseNet reads a net file (see the netlist format in cmd/bufopt -help or
// internal/netlist's package documentation).
func ParseNet(r io.Reader) (*Net, error) { return netlist.ParseNet(r) }

// WriteNet writes a net file ParseNet reproduces exactly.
func WriteNet(w io.Writer, n *Net) error { return netlist.WriteNet(w, n) }

// ParseLibrary reads a buffer library file.
func ParseLibrary(r io.Reader) (Library, error) { return netlist.ParseLibrary(r) }

// WriteLibrary writes a library file ParseLibrary reproduces exactly.
func WriteLibrary(w io.Writer, lib Library) error { return netlist.WriteLibrary(w, lib) }
