package bufferkit

import (
	"context"

	"bufferkit/internal/core"
	"bufferkit/internal/solvererr"
	"bufferkit/internal/variation"
)

// Variation and yield types, re-exported from internal/variation.
type (
	// Corner is one multiplicative perturbation of the instance's
	// electrical parameters (library R/K/Cin, wire r/c). Construct corners
	// from NominalCorner, ProcessCorners or SampleCorners — the zero value
	// is invalid.
	Corner = variation.Corner
	// YieldResult is the outcome of SolveYield: per-corner samples, the
	// slack distribution, yield at the target, the distinct optimal
	// placements observed, and the chosen placement.
	YieldResult = variation.Result
	// YieldSample is one corner's re-optimized outcome.
	YieldSample = variation.Sample
	// SlackDistribution summarizes the per-corner optimal slacks.
	SlackDistribution = variation.Distribution
	// PlacementGroup is one distinct optimal placement with its
	// fixed-placement yield across all corners.
	PlacementGroup = variation.PlacementGroup
	// PartialSweepError reports a yield sweep aborted mid-run by
	// cancellation, with completed/total sample counts. It wraps
	// ErrCanceled.
	PartialSweepError = variation.PartialError
)

// NominalCorner returns the identity corner (every factor exactly 1).
func NominalCorner() Corner { return variation.Nominal() }

// ProcessCorners returns the deterministic sign-off corner set: nominal,
// fast, slow and the two device/wire cross corners.
func ProcessCorners() []Corner { return variation.ProcessCorners() }

// SampleCorners draws n seeded Monte Carlo corners whose five factors are
// independent Gaussians 1 + sigma·N(0,1) (floored at a small positive
// value). The sequence is deterministic for a fixed seed.
func SampleCorners(n int, sigma float64, seed int64) []Corner {
	return variation.Sampler{Params: variation.Uniform(sigma), Seed: seed}.Corners(n)
}

// yieldConfig collects the SolveYield options on a Solver.
type yieldConfig struct {
	corners []Corner
	samples int
	sigma   float64
	seed    int64
	target  float64
	robust  bool
}

// WithCorners sets explicit corners evaluated by SolveYield, in addition
// to the nominal corner (always evaluated first) and any Monte Carlo
// samples requested with WithSamples.
func WithCorners(corners []Corner) Option {
	return func(s *Solver) error { s.yield.corners = corners; return nil }
}

// WithSamples sets the number of Monte Carlo corners SolveYield draws
// (default 0: only the nominal corner plus any WithCorners set).
func WithSamples(n int) Option {
	return func(s *Solver) error {
		if n < 0 {
			return solvererr.Validation("bufferkit", "samples", "sample count %d must be nonnegative", n)
		}
		s.yield.samples = n
		return nil
	}
}

// WithSigma sets the relative sigma of the Monte Carlo sampler used by
// SolveYield (applied uniformly to library R/K/Cin and wire r/c; default
// 0, which samples the nominal corner).
func WithSigma(sigma float64) Option {
	return func(s *Solver) error {
		if err := variation.Uniform(sigma).Validate(); err != nil {
			return solvererr.Validation("bufferkit", "sigma",
				"sigma %g must be in [0, %g]", sigma, variation.MaxSigma)
		}
		s.yield.sigma = sigma
		return nil
	}
}

// WithVariationSeed seeds the Monte Carlo sampler (default 1). The corner
// sequence — and therefore the whole YieldResult — is deterministic for a
// fixed seed.
func WithVariationSeed(seed int64) Option {
	return func(s *Solver) error { s.yield.seed = seed; return nil }
}

// WithYieldTarget sets the slack threshold (ps) a corner must meet to
// count as yielding (default 0: the corner meets every sink's RAT).
func WithYieldTarget(ps float64) Option {
	return func(s *Solver) error { s.yield.target = ps; return nil }
}

// WithRobustPlacement makes SolveYield return the placement maximizing
// fixed-placement yield across all corners instead of the nominal
// optimum (default false).
func WithRobustPlacement(robust bool) Option {
	return func(s *Solver) error { s.yield.robust = robust; return nil }
}

// coreBackend resolves the candidate-list backend for surfaces that run
// directly on the core engine (yield sweeps, chip allocation), honoring the
// pinned AlgoCore / AlgoCoreSoA registry entries the same way Run does.
func (s *Solver) coreBackend(surface string) (core.Backend, error) {
	switch s.algoName {
	case AlgoNew:
		return s.cfg.Backend, nil
	case AlgoCore:
		return core.BackendList, nil
	case AlgoCoreSoA:
		return core.BackendSoA, nil
	}
	return 0, solvererr.Validation("bufferkit", "algorithm",
		"%s runs on the core engine; algorithm %q is not supported (use %q, %q or %q)",
		surface, s.algoName, AlgoNew, AlgoCore, AlgoCoreSoA)
}

// yieldCorners assembles the corner list of one sweep: nominal first, then
// any explicit WithCorners set, then the Monte Carlo samples.
func (s *Solver) yieldCorners() []Corner {
	corners := make([]Corner, 0, 1+len(s.yield.corners)+s.yield.samples)
	corners = append(corners, variation.Nominal())
	corners = append(corners, s.yield.corners...)
	if s.yield.samples > 0 {
		mc := corners[len(corners) : len(corners)+s.yield.samples]
		variation.Sampler{Params: variation.Uniform(s.yield.sigma), Seed: s.yield.seed}.CornersInto(mc)
		corners = corners[:len(corners)+s.yield.samples]
	}
	return corners
}

// SolveYield evaluates the net across process/interconnect variation: it
// re-optimizes the net under the nominal corner, every corner set with
// WithCorners, and WithSamples seeded Monte Carlo corners (WithSigma,
// WithVariationSeed), fanning the corners out over a worker pool of warm
// engines (WithWorkers). The result carries the slack distribution, the
// yield at the target (WithYieldTarget), the distinct optimal placements
// observed, and the chosen placement — the nominal optimum, or the
// fixed-placement yield maximizer under WithRobustPlacement.
//
// A sweep with one sample and sigma 0 reproduces Run's slack, placement
// and cost bit for bit (asserted by the differential suite on both
// backends). Cancellation mid-sweep returns a *PartialSweepError wrapping
// ErrCanceled with completed/total sample counts.
func (s *Solver) SolveYield(ctx context.Context, t *Tree) (*YieldResult, error) {
	backend, err := s.coreBackend("yield analysis")
	if err != nil {
		return nil, err
	}
	if err := s.checkReducible(t); err != nil {
		return nil, err
	}
	res, err := variation.Sweep(ctx, t, s.cfg.Library, variation.Config{
		Corners:         s.yieldCorners(),
		Driver:          s.cfg.Driver,
		Prune:           s.cfg.Prune,
		Backend:         backend,
		CheckInvariants: s.cfg.CheckInvariants,
		Target:          s.yield.target,
		Robust:          s.yield.robust,
		Workers:         s.workers,
		GetEngine:       func() *core.Engine { return enginePool.Get().(*core.Engine) },
		PutEngine:       func(e *core.Engine) { enginePool.Put(e) },
	})
	if res != nil {
		// Report placements in the original library's index space (see
		// WithLibraryReduction). Result.Placement aliases one of the group
		// placements, so remapping the groups covers it.
		for i := range res.Placements {
			s.remapPlacement(res.Placements[i].Placement)
		}
	}
	return res, err
}
