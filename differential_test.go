package bufferkit

// The differential test harness: a seeded corpus of small random nets on
// which every dynamic program must agree exactly with the exponential
// brute-force oracle. This is the strongest correctness net in the
// repository — any systematic pruning bug, polarity mishandling, or
// registry-adapter regression shows up here before anything else.

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"bufferkit/internal/bruteforce"
	"bufferkit/internal/netgen"
	"bufferkit/internal/testutil"
	"bufferkit/internal/tree"
)

// corpusConfig is one slice of the differential corpus.
type corpusConfig struct {
	name string
	// lib is the buffer library the slice runs under.
	lib Library
	// negProb makes some sinks require inverted polarity.
	negProb float64
	// seeds is how many nets the slice contributes.
	seeds int
	// lillis also cross-checks the Lillis O(b²n²) baseline (requires a
	// non-inverting library and, to stay feasible, negProb = 0).
	lillis bool
}

// TestDifferentialCorpus cross-checks the paper's O(bn²) algorithm — on
// both candidate-list backends — and, where applicable, the Lillis
// baseline, against the brute-force oracle on 300 seeded random nets
// spanning plain libraries, inverter libraries, and mixed sink polarities.
// Exact slack agreement with the oracle is required everywhere; between the
// two backends the agreement must be bit-exact (identical slack, identical
// placement, identical buffer cost), since they execute the identical
// arithmetic over different memory layouts. Every reported placement must
// reproduce its slack under the Elmore oracle.
func TestDifferentialCorpus(t *testing.T) {
	const maxPositions = 6 // (b+1)^positions stays ≤ 4^6 evaluations per net
	configs := []corpusConfig{
		{name: "plain-1type", lib: GenerateLibrary(1), seeds: 60, lillis: true},
		{name: "plain-3types", lib: GenerateLibrary(3), seeds: 80, lillis: true},
		{name: "inverters", lib: GenerateLibraryWithInverters(2), seeds: 80},
		{name: "inverters-mixed-polarity", lib: GenerateLibraryWithInverters(3), negProb: 0.5, seeds: 80},
	}

	total, infeasible, negSinks := 0, 0, 0
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(0); seed < int64(cfg.seeds); seed++ {
				tr := netgen.RandomSmall(seed, maxPositions, cfg.negProb)
				// Vary the driver with the seed: ideal drivers, resistive
				// drivers, and drivers with intrinsic delay all appear.
				rng := rand.New(rand.NewSource(seed))
				drv := Driver{R: 0.3 * rng.Float64(), K: 20 * rng.Float64()}
				if seed%5 == 0 {
					drv = Driver{}
				}
				total++
				for v := range tr.Verts {
					if tr.Verts[v].Kind == tree.Sink && tr.Verts[v].Pol == Negative {
						negSinks++
						break
					}
				}

				brute, err := bruteforce.Best(tr, cfg.lib, drv)
				if err != nil {
					t.Fatalf("seed %d: bruteforce: %v", seed, err)
				}

				solver, err := NewSolver(WithLibrary(cfg.lib), WithDriver(drv), WithBackend("list"))
				if err != nil {
					t.Fatalf("seed %d: NewSolver: %v", seed, err)
				}
				res, err := solver.Run(context.Background(), tr)
				solver.Close()

				ss, err2 := NewSolver(WithLibrary(cfg.lib), WithDriver(drv), WithBackend("soa"))
				if err2 != nil {
					t.Fatalf("seed %d: NewSolver(soa): %v", seed, err2)
				}
				soa, err2 := ss.Run(context.Background(), tr)
				ss.Close()

				if !brute.Feasible {
					infeasible++
					if !errors.Is(err, ErrInfeasible) {
						t.Fatalf("seed %d: oracle says infeasible; core returned %v", seed, err)
					}
					if !errors.Is(err2, ErrInfeasible) {
						t.Fatalf("seed %d: oracle says infeasible; soa backend returned %v", seed, err2)
					}
					continue
				}
				if err != nil {
					t.Fatalf("seed %d: core: %v (oracle slack %.6f)", seed, err, brute.Slack)
				}
				if err2 != nil {
					t.Fatalf("seed %d: soa backend: %v (oracle slack %.6f)", seed, err2, brute.Slack)
				}
				if !testutil.AlmostEqual(res.Slack, brute.Slack) {
					t.Fatalf("seed %d: core slack %.12g != brute-force optimum %.12g (Δ=%g)",
						seed, res.Slack, brute.Slack, res.Slack-brute.Slack)
				}
				testutil.CheckPlacement(t, tr, cfg.lib, res.Placement, drv, res.Slack, "core")

				// Backend agreement must be bit-exact, not merely within
				// tolerance: same arithmetic, different memory layout.
				if soa.Slack != res.Slack {
					t.Fatalf("seed %d: soa slack %.17g != list slack %.17g", seed, soa.Slack, res.Slack)
				}
				if len(soa.Placement) != len(res.Placement) {
					t.Fatalf("seed %d: placement lengths differ", seed)
				}
				for v := range res.Placement {
					if soa.Placement[v] != res.Placement[v] {
						t.Fatalf("seed %d: placements differ at vertex %d: %d vs %d",
							seed, v, soa.Placement[v], res.Placement[v])
					}
				}
				if soa.Placement.Cost(cfg.lib) != res.Placement.Cost(cfg.lib) {
					t.Fatalf("seed %d: placement costs differ", seed)
				}
				testutil.CheckPlacement(t, tr, cfg.lib, soa.Placement, drv, soa.Slack, "core-soa")

				if cfg.lillis {
					ls, err := NewSolver(WithLibrary(cfg.lib), WithDriver(drv), WithAlgorithm(AlgoLillis))
					if err != nil {
						t.Fatalf("seed %d: lillis solver: %v", seed, err)
					}
					lres, err := ls.Run(context.Background(), tr)
					ls.Close()
					if err != nil {
						t.Fatalf("seed %d: lillis: %v", seed, err)
					}
					if !testutil.AlmostEqual(lres.Slack, brute.Slack) {
						t.Fatalf("seed %d: lillis slack %.12g != brute-force optimum %.12g",
							seed, lres.Slack, brute.Slack)
					}
					testutil.CheckPlacement(t, tr, cfg.lib, lres.Placement, drv, lres.Slack, "lillis")
				}
			}
		})
	}

	// Corpus diversity guards: the suite must actually exercise what it
	// claims to — ≥200 nets, some with negative sinks, and at least one
	// polarity-infeasible instance proving the infeasible path is hit.
	checkCorpusDiversity(t, total, negSinks, infeasible)
}

// TestVariationSigmaZeroMatchesNominal is the sigma=0 property: a yield
// sweep drawing one Monte Carlo sample at sigma 0 evaluates only nominal
// corners, so its slack, placement and buffer cost must agree bit-exactly
// with the plain Solver.Run result — on both candidate-list backends,
// across plain libraries, inverter libraries and mixed sink polarities.
func TestVariationSigmaZeroMatchesNominal(t *testing.T) {
	configs := []corpusConfig{
		{name: "plain-3types", lib: GenerateLibrary(3), seeds: 25},
		{name: "inverters-mixed-polarity", lib: GenerateLibraryWithInverters(3), negProb: 0.5, seeds: 25},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(0); seed < int64(cfg.seeds); seed++ {
				tr := netgen.RandomSmall(seed, 6, cfg.negProb)
				drv := Driver{R: 0.25, K: 12}
				for _, backend := range []string{"list", "soa"} {
					s, err := NewSolver(WithLibrary(cfg.lib), WithDriver(drv), WithBackend(backend))
					if err != nil {
						t.Fatal(err)
					}
					run, runErr := s.Run(context.Background(), tr)

					ys, err := NewSolver(
						WithLibrary(cfg.lib), WithDriver(drv), WithBackend(backend),
						WithSamples(1), WithSigma(0), WithVariationSeed(seed),
					)
					if err != nil {
						t.Fatal(err)
					}
					yres, yerr := ys.SolveYield(context.Background(), tr)
					s.Close()
					ys.Close()

					if runErr != nil {
						// Infeasibility must agree too: no polarity-feasible
						// solution nominally means none under any corner.
						if !errors.Is(runErr, ErrInfeasible) {
							t.Fatalf("seed %d %s: Run: %v", seed, backend, runErr)
						}
						if !errors.Is(yerr, ErrInfeasible) {
							t.Fatalf("seed %d %s: Run infeasible but SolveYield returned %v", seed, backend, yerr)
						}
						continue
					}
					if yerr != nil {
						t.Fatalf("seed %d %s: SolveYield: %v", seed, backend, yerr)
					}
					if len(yres.Samples) != 2 {
						t.Fatalf("seed %d %s: got %d samples, want 2 (nominal + one sigma-0 draw)", seed, backend, len(yres.Samples))
					}
					for i, smp := range yres.Samples {
						if smp.Slack != run.Slack {
							t.Fatalf("seed %d %s: sample %d slack %.17g != Run slack %.17g",
								seed, backend, i, smp.Slack, run.Slack)
						}
					}
					if len(yres.Placements) != 1 {
						t.Fatalf("seed %d %s: sigma-0 sweep found %d distinct placements, want 1", seed, backend, len(yres.Placements))
					}
					for v := range run.Placement {
						if yres.Placement[v] != run.Placement[v] {
							t.Fatalf("seed %d %s: placements differ at vertex %d", seed, backend, v)
						}
					}
					if yres.Placements[0].Cost != run.Placement.Cost(cfg.lib) {
						t.Fatalf("seed %d %s: cost %d != Run cost %d",
							seed, backend, yres.Placements[0].Cost, run.Placement.Cost(cfg.lib))
					}
				}
			}
		})
	}
}

// dominatedAugment prepends to lib one strictly-dominated copy of every
// type — same polarity class, R and K no better, Cin strictly larger — so
// dominance pruning has something real to remove, and the surviving
// originals land at shifted indices, exercising the placement remap.
func dominatedAugment(lib Library) Library {
	out := make(Library, 0, 2*len(lib))
	for _, b := range lib {
		d := b
		d.Name = b.Name + "_dom"
		d.R *= 1.25
		d.K += 1
		d.Cin *= 1.01
		out = append(out, d)
	}
	return append(out, lib...)
}

// TestLibraryReductionDominanceExact is WithLibraryReduction's exactness
// property on the differential corpus: with a library carrying one
// strictly-dominated copy of every type, dominance-only reduction (k < 0)
// must reproduce the full-library solve bit for bit — identical slack,
// identical placement in the original index space — on both candidate-list
// backends, across plain libraries, inverter libraries and mixed sink
// polarities. Infeasibility must agree too.
func TestLibraryReductionDominanceExact(t *testing.T) {
	configs := []corpusConfig{
		{name: "plain-1type", lib: GenerateLibrary(1), seeds: 60},
		{name: "plain-3types", lib: GenerateLibrary(3), seeds: 80},
		{name: "inverters", lib: GenerateLibraryWithInverters(2), seeds: 80},
		{name: "inverters-mixed-polarity", lib: GenerateLibraryWithInverters(3), negProb: 0.5, seeds: 80},
	}
	total := 0
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			aug := dominatedAugment(cfg.lib)
			for seed := int64(0); seed < int64(cfg.seeds); seed++ {
				tr := netgen.RandomSmall(seed, 6, cfg.negProb)
				rng := rand.New(rand.NewSource(seed))
				drv := Driver{R: 0.3 * rng.Float64(), K: 20 * rng.Float64()}
				total++
				for _, backend := range []string{"list", "soa"} {
					full, err := NewSolver(WithLibrary(aug), WithDriver(drv), WithBackend(backend))
					if err != nil {
						t.Fatal(err)
					}
					fres, ferr := full.Run(context.Background(), tr)
					full.Close()

					red, err := NewSolver(WithLibrary(aug), WithDriver(drv), WithBackend(backend),
						WithLibraryReduction(-1))
					if err != nil {
						t.Fatal(err)
					}
					if red.libMap == nil {
						t.Fatal("dominated-augmented library triggered no pruning")
					}
					if len(red.cfg.Library) > len(cfg.lib) {
						t.Fatalf("reduction kept %d of %d types, want ≤ %d",
							len(red.cfg.Library), len(aug), len(cfg.lib))
					}
					rres, rerr := red.Run(context.Background(), tr)
					red.Close()

					if ferr != nil {
						if !errors.Is(ferr, ErrInfeasible) {
							t.Fatalf("seed %d %s: full: %v", seed, backend, ferr)
						}
						if !errors.Is(rerr, ErrInfeasible) {
							t.Fatalf("seed %d %s: full infeasible but reduced returned %v", seed, backend, rerr)
						}
						continue
					}
					if rerr != nil {
						t.Fatalf("seed %d %s: reduced: %v (full slack %.6f)", seed, backend, rerr, fres.Slack)
					}
					if rres.Slack != fres.Slack {
						t.Fatalf("seed %d %s: reduced slack %.17g != full slack %.17g",
							seed, backend, rres.Slack, fres.Slack)
					}
					for v := range fres.Placement {
						if rres.Placement[v] != fres.Placement[v] {
							t.Fatalf("seed %d %s: placements differ at vertex %d: %d vs %d",
								seed, backend, v, rres.Placement[v], fres.Placement[v])
						}
					}
				}
			}
		})
	}
	if total < 300 {
		t.Fatalf("reduction corpus has %d nets, want ≥ 300", total)
	}
}

// checkCorpusDiversity asserts the differential corpus exercises what it
// claims to.
func checkCorpusDiversity(t *testing.T, total, negSinks, infeasible int) {
	t.Helper()
	if total < 200 {
		t.Fatalf("corpus has %d nets, want ≥ 200", total)
	}
	if negSinks == 0 {
		t.Fatal("corpus never generated a negative-polarity sink")
	}
	t.Logf("corpus: %d nets, %d with negative sinks, %d infeasible", total, negSinks, infeasible)
}
