// Package chip models chip-scale buffered routing: many nets competing for
// a shared pool of legal buffer locations ("sites"), solved by Lagrangian
// price-and-resolve rounds over the repository's warm O(bn²) engines.
//
// The model is a W×H site grid with a per-site buffer capacity and optional
// rectangular blockages (capacity 0). Each net is an ordinary routing tree
// whose buffer positions are mapped to site IDs; positions without a site
// (NoSite) are unconstrained. The Allocator (see alloc.go) iterates:
//
//  1. Solve every net whose site prices changed, in parallel, with the
//     per-vertex price folded into the dynamic program through
//     core.Options.SitePenalty.
//  2. Recompute per-site usage and update prices by a projected
//     subgradient step on the overflow.
//
// until the allocation is capacity-feasible or the round budget is spent,
// then guarantees feasibility with a deterministic sequential repair pass
// that re-solves offending nets with saturated sites masked out. See
// DESIGN.md §14.
package chip

import (
	"bufferkit/internal/delay"
	"bufferkit/internal/solvererr"
	"bufferkit/internal/tree"
)

// NoSite marks a vertex with no site constraint in Net.Site.
const NoSite = -1

// Grid is a rectangular array of buffer sites. Site IDs are y*W + x.
type Grid struct {
	// W and H are the grid dimensions in sites.
	W, H int
	// Capacity is the default per-site buffer capacity.
	Capacity int
}

// NumSites returns the number of sites in the grid.
func (g Grid) NumSites() int { return g.W * g.H }

// Site returns the site ID of cell (x, y).
func (g Grid) Site(x, y int) int { return y*g.W + x }

// Blockage is an inclusive cell rectangle whose sites have capacity 0 —
// a macro, a memory, anything buffers cannot be placed under.
type Blockage struct {
	X0, Y0, X1, Y1 int
}

// contains reports whether the blockage covers cell (x, y).
func (b Blockage) contains(x, y int) bool {
	return x >= b.X0 && x <= b.X1 && y >= b.Y0 && y <= b.Y1
}

// Net is one routing tree competing for sites.
type Net struct {
	// Name labels the net in reports and errors.
	Name string
	// Tree is the routing tree; it is never mutated by the allocator
	// (scratch clones carry per-net masking).
	Tree *tree.Tree
	// Driver is the net's source driver (zero value = ideal driver).
	Driver delay.Driver
	// Site maps vertex index to the site ID its buffer position occupies,
	// or NoSite for unconstrained vertices. Its length must equal
	// Tree.Len(), only legal buffer positions may carry a site, and a net
	// may visit each site at most once.
	Site []int
}

// Instance is a multi-net buffered-routing problem over one site grid.
type Instance struct {
	// Grid is the site grid.
	Grid Grid
	// Blockages are capacity-0 rectangles on the grid.
	Blockages []Blockage
	// Nets are the competing nets.
	Nets []Net
}

// Capacities materializes the per-site capacity vector: Grid.Capacity
// everywhere, 0 under blockages. capacity, when positive, overrides the
// grid default (blockages stay 0).
func (inst *Instance) Capacities(capacity int) []int {
	if capacity <= 0 {
		capacity = inst.Grid.Capacity
	}
	caps := make([]int, inst.Grid.NumSites())
	for i := range caps {
		caps[i] = capacity
	}
	for _, b := range inst.Blockages {
		for y := b.Y0; y <= b.Y1; y++ {
			for x := b.X0; x <= b.X1; x++ {
				caps[inst.Grid.Site(x, y)] = 0
			}
		}
	}
	return caps
}

// Validate checks the instance shape: positive grid dimensions, nonnegative
// capacity, blockages inside the grid, and per-net site vectors that match
// the tree, stay in range, sit only on legal buffer positions, and never
// visit a site twice. Failures are *solvererr.ValidationError values.
func (inst *Instance) Validate() error {
	g := inst.Grid
	if g.W <= 0 || g.H <= 0 {
		return solvererr.Validation("chip", "grid", "grid %dx%d must have positive dimensions", g.W, g.H)
	}
	if g.Capacity < 0 {
		return solvererr.Validation("chip", "capacity", "site capacity %d must be nonnegative", g.Capacity)
	}
	for i, b := range inst.Blockages {
		if b.X0 < 0 || b.Y0 < 0 || b.X1 >= g.W || b.Y1 >= g.H || b.X0 > b.X1 || b.Y0 > b.Y1 {
			return solvererr.Validation("chip", "blockage",
				"blockage %d (%d,%d)-(%d,%d) outside %dx%d grid or inverted", i, b.X0, b.Y0, b.X1, b.Y1, g.W, g.H)
		}
	}
	if len(inst.Nets) == 0 {
		return solvererr.Validation("chip", "nets", "instance has no nets")
	}
	n := g.NumSites()
	seen := make(map[int]int) // site -> net index of last visit (per net via stamp)
	for i := range inst.Nets {
		net := &inst.Nets[i]
		if net.Tree == nil {
			return solvererr.Validation("chip", "net", "net %d (%q) has no tree", i, net.Name)
		}
		if len(net.Site) != net.Tree.Len() {
			return solvererr.Validation("chip", "sites",
				"net %d (%q): site vector length %d != tree size %d", i, net.Name, len(net.Site), net.Tree.Len())
		}
		for v, s := range net.Site {
			if s == NoSite {
				continue
			}
			if s < 0 || s >= n {
				return solvererr.Validation("chip", "sites",
					"net %d (%q): vertex %d site %d out of range [0,%d)", i, net.Name, v, s, n)
			}
			if !net.Tree.Verts[v].BufferOK {
				return solvererr.Validation("chip", "sites",
					"net %d (%q): vertex %d carries site %d but is not a buffer position", i, net.Name, v, s)
			}
			if last, ok := seen[s]; ok && last == i {
				return solvererr.Validation("chip", "sites",
					"net %d (%q): site %d visited twice", i, net.Name, s)
			}
			seen[s] = i
		}
	}
	return nil
}
