package chip

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"bufferkit/internal/core"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/solvererr"
	"bufferkit/internal/tree"
)

// contended returns a moderately contended instance for the fast tests.
func contended(nets int, seed int64) *Instance {
	return Generate(GenOpts{W: 12, H: 12, Nets: nets, Capacity: 2, Contention: 0.7, Seed: seed})
}

func solveOK(t *testing.T, inst *Instance, cfg Config) *Result {
	t.Helper()
	res, err := Solve(context.Background(), inst, library.Generate(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkFeasible asserts the result's placements respect every site capacity
// and agree with the reported usage.
func checkFeasible(t *testing.T, inst *Instance, cfg Config, res *Result) {
	t.Helper()
	caps := inst.Capacities(cfg.Capacity)
	usage := make([]int, len(caps))
	for i := range inst.Nets {
		net := &inst.Nets[i]
		for v, s := range net.Site {
			if s != NoSite && res.Placements[i][v] != delay.NoBuffer {
				usage[s]++
			}
		}
	}
	for s := range usage {
		if usage[s] != res.Usage[s] {
			t.Fatalf("site %d: recomputed usage %d != reported %d", s, usage[s], res.Usage[s])
		}
		if usage[s] > caps[s] {
			t.Fatalf("site %d: usage %d exceeds capacity %d", s, usage[s], caps[s])
		}
	}
	if last := res.Rounds[len(res.Rounds)-1]; last.Overflow != 0 {
		t.Fatalf("final round overflow %d != 0", last.Overflow)
	}
	if !res.Feasible {
		t.Fatal("result not marked feasible")
	}
}

func TestChipContendedConverges(t *testing.T) {
	inst := contended(150, 7)
	var cfg Config
	res := solveOK(t, inst, cfg)
	checkFeasible(t, inst, cfg, res)
	if res.Rounds[0].Overflow == 0 {
		t.Fatal("instance not contended: round 1 already feasible")
	}
	if res.Rounds[0].Resolved != len(inst.Nets) {
		t.Fatalf("round 1 resolved %d of %d nets", res.Rounds[0].Resolved, len(inst.Nets))
	}
}

// TestChipAcceptance1000Nets is the issue's acceptance-scale instance: 1000
// nets over a 32×32 grid at capacity 8 with half the nets detoured through
// the central hotspot. The allocator must reach zero overflow inside the
// default pricing budget — without the repair end-game — and the per-round
// overflow must trend monotonically down (windowed, to tolerate the ±1–2
// integer jitter of marginal nets near convergence).
func TestChipAcceptance1000Nets(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance-scale instance; skipped with -short")
	}
	inst := Generate(GenOpts{W: 32, H: 32, Nets: 1000, Capacity: 8, Contention: 0.5, Seed: 1})
	var cfg Config
	res := solveOK(t, inst, cfg)
	checkFeasible(t, inst, cfg, res)
	if res.Rounds[0].Overflow == 0 {
		t.Fatal("instance not contended: round 1 already feasible")
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.Repair {
		t.Fatalf("pricing did not converge within the round budget; repair pass needed (%d rounds)", len(res.Rounds))
	}
	if last.Overflow != 0 {
		t.Fatalf("final overflow %d != 0 after %d rounds", last.Overflow, len(res.Rounds))
	}
	// Windowed monotone trend: the max overflow over each 4-round window
	// must never exceed the previous window's max.
	const win = 4
	prev := -1
	for lo := 0; lo < len(res.Rounds); lo += win {
		hi := lo + win
		if hi > len(res.Rounds) {
			hi = len(res.Rounds)
		}
		peak := 0
		for _, r := range res.Rounds[lo:hi] {
			if r.Overflow > peak {
				peak = r.Overflow
			}
		}
		if prev >= 0 && peak > prev {
			t.Fatalf("overflow not trending down: window [%d,%d) peak %d > previous window peak %d",
				lo, hi, peak, prev)
		}
		prev = peak
	}
}

func TestChipDeterministicAcrossWorkers(t *testing.T) {
	inst := contended(80, 3)
	a := solveOK(t, inst, Config{Workers: 1})
	b := solveOK(t, inst, Config{Workers: 8})
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(a.Rounds), len(b.Rounds))
	}
	for r := range a.Rounds {
		if a.Rounds[r] != b.Rounds[r] {
			t.Fatalf("round %d records differ:\n%+v\n%+v", r, a.Rounds[r], b.Rounds[r])
		}
	}
	for i := range a.Slacks {
		if a.Slacks[i] != b.Slacks[i] {
			t.Fatalf("net %d slack differs: %.17g vs %.17g", i, a.Slacks[i], b.Slacks[i])
		}
		for v := range a.Placements[i] {
			if a.Placements[i][v] != b.Placements[i][v] {
				t.Fatalf("net %d placement differs at vertex %d", i, v)
			}
		}
	}
}

// TestChipOnRoundStreams asserts OnRound fires once per report, in order,
// matching Result.Rounds — the server's streaming contract.
func TestChipOnRoundStreams(t *testing.T) {
	inst := contended(60, 11)
	var streamed []Round
	cfg := Config{OnRound: func(r Round) { streamed = append(streamed, r) }}
	res := solveOK(t, inst, cfg)
	if len(streamed) != len(res.Rounds) {
		t.Fatalf("streamed %d rounds, result has %d", len(streamed), len(res.Rounds))
	}
	for i := range streamed {
		if streamed[i] != res.Rounds[i] {
			t.Fatalf("streamed round %d differs from result", i)
		}
	}
}

// TestChipSingleNetMatchesEngine: with one net and unbounded capacity the
// allocator must reproduce a plain engine run bit for bit, on both
// candidate backends.
func TestChipSingleNetMatchesEngine(t *testing.T) {
	lib := library.Generate(6)
	inst := Generate(GenOpts{W: 10, H: 10, Nets: 1, Capacity: 1 << 20, Contention: 0, Seed: 5})
	net := &inst.Nets[0]
	for _, backend := range []core.Backend{core.BackendList, core.BackendSoA} {
		want, err := core.Insert(net.Tree, lib, core.Options{Driver: net.Driver, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(context.Background(), inst, lib, Config{Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rounds) != 1 {
			t.Fatalf("backend %v: expected 1 round, got %d", backend, len(res.Rounds))
		}
		ev := delay.Evaluator{}
		ev.Slack(net.Tree, lib, want.Placement, net.Driver)
		if res.Slacks[0] != ev.MinSlack {
			t.Fatalf("backend %v: slack %.17g != engine-evaluated %.17g", backend, res.Slacks[0], ev.MinSlack)
		}
		for v := range want.Placement {
			if res.Placements[0][v] != want.Placement[v] {
				t.Fatalf("backend %v: placement differs at vertex %d: %d vs %d",
					backend, v, res.Placements[0][v], want.Placement[v])
			}
		}
	}
}

// TestChipZeroCapacityInfeasible: a net that *needs* a buffer (negative
// polarity sink, inverting library) whose only site is blocked must fail
// with a typed infeasibility, not hang in the pricing loop.
func TestChipZeroCapacityInfeasible(t *testing.T) {
	lib := library.GenerateWithInverters(4)
	b := tree.NewBuilder()
	pos := b.AddBufferPos(0, 0.3, 40)
	b.AddSinkPol(pos, 0.2, 30, 10, 500, tree.Negative)
	inst := &Instance{
		Grid:      Grid{W: 2, H: 1, Capacity: 1},
		Blockages: []Blockage{{0, 0, 0, 0}},
		Nets:      []Net{{Name: "needs_inv", Tree: b.MustBuild(), Site: []int{NoSite, 0, NoSite}}},
	}
	_, err := Solve(context.Background(), inst, lib, Config{})
	if !errors.Is(err, solvererr.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

// TestChipRepairAfterTinyBudget: with a 1-round budget on a contended
// instance the repair pass must still deliver zero overflow.
// TestChipSessionsMatchCold is the allocator-level face of the session
// bit-identity contract: the incremental path (per-net ECO sessions
// absorbing price and mask patches) must reproduce the cold path
// (from-scratch re-solves every round) exactly — every round record, every
// slack, every placement — including through a forced repair pass.
func TestChipSessionsMatchCold(t *testing.T) {
	for _, tc := range []struct {
		name string
		inst *Instance
		cfg  Config
	}{
		{"converges", contended(80, 3), Config{}},
		{"repair", contended(120, 9), Config{Rounds: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cold := tc.cfg
			cold.NoSessions = true
			a := solveOK(t, tc.inst, cold)
			b := solveOK(t, tc.inst, tc.cfg)
			if len(a.Rounds) != len(b.Rounds) {
				t.Fatalf("round counts differ: cold %d, sessions %d", len(a.Rounds), len(b.Rounds))
			}
			for r := range a.Rounds {
				if a.Rounds[r] != b.Rounds[r] {
					t.Fatalf("round %d records differ:\ncold     %+v\nsessions %+v", r, a.Rounds[r], b.Rounds[r])
				}
			}
			for i := range a.Slacks {
				if a.Slacks[i] != b.Slacks[i] {
					t.Fatalf("net %d slack differs: cold %.17g, sessions %.17g", i, a.Slacks[i], b.Slacks[i])
				}
				for v := range a.Placements[i] {
					if a.Placements[i][v] != b.Placements[i][v] {
						t.Fatalf("net %d placement differs at vertex %d", i, v)
					}
				}
			}
		})
	}
}

func TestChipRepairAfterTinyBudget(t *testing.T) {
	inst := contended(120, 9)
	cfg := Config{Rounds: 1}
	res := solveOK(t, inst, cfg)
	checkFeasible(t, inst, cfg, res)
	last := res.Rounds[len(res.Rounds)-1]
	if !last.Repair {
		t.Fatalf("expected terminal repair round, got %+v", last)
	}
	if last.Resolved == 0 {
		t.Fatal("repair pass resolved no nets on a contended instance")
	}
}

func TestChipCancellation(t *testing.T) {
	inst := contended(60, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Solve(ctx, inst, library.Generate(6), Config{})
	var perr *PartialError
	if !errors.As(err, &perr) {
		t.Fatalf("want PartialError, got %v", err)
	}
	if !errors.Is(err, solvererr.ErrCanceled) {
		t.Fatalf("PartialError must wrap ErrCanceled, got %v", err)
	}
	if perr.CompletedRounds != 0 {
		t.Fatalf("pre-canceled context completed %d rounds", perr.CompletedRounds)
	}
}

func TestChipInstanceRoundTrip(t *testing.T) {
	inst := Generate(GenOpts{W: 8, H: 8, Nets: 12, Capacity: 2, Contention: 0.5, Seed: 42})
	inst.Blockages = []Blockage{{0, 0, 1, 0}}
	var buf bytes.Buffer
	if err := WriteInstance(&buf, inst); err != nil {
		t.Fatal(err)
	}
	got, err := ParseInstance(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := WriteInstance(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("instance did not survive a write/parse/write round trip")
	}
}

func TestChipValidateRejects(t *testing.T) {
	mk := func() *Instance { return Generate(GenOpts{W: 6, H: 6, Nets: 2, Seed: 1}) }

	bad := mk()
	bad.Nets[0].Site[1] = bad.Grid.NumSites()
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range site accepted")
	}

	bad = mk()
	bad.Nets[0].Site = bad.Nets[0].Site[:1]
	if err := bad.Validate(); err == nil {
		t.Fatal("short site vector accepted")
	}

	bad = mk()
	bad.Nets[0].Site[0] = 0 // source is not a buffer position
	if err := bad.Validate(); err == nil {
		t.Fatal("site on non-buffer vertex accepted")
	}

	bad = mk()
	if len(bad.Nets[0].Site) > 2 && bad.Nets[0].Site[1] != NoSite {
		bad.Nets[0].Site[2] = bad.Nets[0].Site[1]
		if err := bad.Validate(); err == nil {
			t.Fatal("duplicate site within one net accepted")
		}
	}

	bad = mk()
	bad.Blockages = []Blockage{{5, 5, 9, 9}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-grid blockage accepted")
	}
}
