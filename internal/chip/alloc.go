package chip

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"bufferkit/internal/core"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/solvererr"
	"bufferkit/internal/tree"
)

// Config parameterizes a Solve.
type Config struct {
	// Rounds is the pricing-round budget (default 48). The repair pass, if
	// needed, runs once after the budget regardless.
	Rounds int
	// Step is the initial subgradient step size: the price increment per
	// unit of site overflow, in ps (default 8).
	Step float64
	// StepDecay multiplies the step after every pricing round (default
	// 0.9); values in (0, 1] are legal.
	StepDecay float64
	// HistoryStep is the PathFinder-style history increment: every round a
	// site is overflowed adds HistoryStep·overflow to a price floor that
	// never decays (default 4, in ps). The reversible subgradient component
	// resolves transient contention; the history term breaks the integer
	// oscillations the subgradient cannot (marginal nets flipping between
	// two sites as the price crosses their indifference point). Negative
	// disables it; 0 selects the default.
	HistoryStep float64
	// Capacity, when positive, overrides the instance grid's default
	// per-site capacity. Blockages stay at capacity 0.
	Capacity int
	// Workers caps the per-round solve concurrency; 0 or negative means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Prune selects the core engine's convex pruning mode.
	Prune core.PruneMode
	// Backend selects the candidate-list representation.
	Backend core.Backend
	// CheckInvariants enables per-operation candidate-list validation in
	// every oracle run (for tests; roughly doubles runtime).
	CheckInvariants bool
	// GetEngine and PutEngine, when both non-nil, borrow warm core engines
	// from a caller-owned pool — the bufferkit facade wires its shared
	// engine pool in here. They are used only on the cold-solve path
	// (NoSessions); ECO sessions own a dedicated engine per net.
	GetEngine func() *core.Engine
	PutEngine func(*core.Engine)
	// NoSessions disables the per-net incremental ECO sessions and re-solves
	// every price-affected net from scratch each round — the pre-session
	// cold path, kept as a differential reference (the two paths are
	// bit-identical round for round, asserted by TestChipSessionsMatchCold)
	// and as a low-memory fallback: sessions retain each net's candidate
	// frontiers between rounds.
	NoSessions bool
	// OnRound, when non-nil, is called with each round's convergence
	// record as soon as the round completes, from the coordinating
	// goroutine — the server streams these as NDJSON.
	OnRound func(Round)
	// CompletedRounds and SolvedNets, when non-nil, are incremented as
	// rounds finish and as individual oracle solves finish within the
	// current round, so callers (the server's partial-progress counters)
	// can observe progress across a deadline abort.
	CompletedRounds *atomic.Int64
	SolvedNets      *atomic.Int64
}

func (c *Config) fill() {
	if c.Rounds <= 0 {
		c.Rounds = 48
	}
	if c.Step <= 0 {
		c.Step = 8
	}
	if c.StepDecay <= 0 || c.StepDecay > 1 {
		c.StepDecay = 0.9
	}
	if c.HistoryStep == 0 {
		c.HistoryStep = 4
	} else if c.HistoryStep < 0 {
		c.HistoryStep = 0
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// Round is one price-and-resolve round's convergence record.
type Round struct {
	// Round numbers rounds from 1.
	Round int `json:"round"`
	// Repair marks the final sequential repair pass.
	Repair bool `json:"repair,omitempty"`
	// Resolved is the number of nets re-solved this round (nets whose
	// site prices did not change are skipped).
	Resolved int `json:"resolved"`
	// Overflow is the total buffer count over capacity, summed over sites;
	// OverflowSites counts sites over capacity and MaxOverflow the worst
	// single site. Overflow 0 means the allocation is feasible.
	Overflow      int `json:"overflow"`
	OverflowSites int `json:"overflow_sites"`
	MaxOverflow   int `json:"max_overflow"`
	// Buffers is the total number of buffers placed across all nets.
	Buffers int `json:"buffers"`
	// MaxPrice is the largest site price after this round's update.
	MaxPrice float64 `json:"max_price"`
	// TotalSlack and WorstSlack summarize the true (unpriced) per-net
	// slacks of the current placements.
	TotalSlack float64 `json:"total_slack"`
	WorstSlack float64 `json:"worst_slack"`
}

// Result is the outcome of a Solve.
type Result struct {
	// Feasible reports whether the final allocation respects every site
	// capacity. Solve only returns Feasible results (infeasibility is an
	// error), so this is true on success.
	Feasible bool
	// Rounds holds every round's convergence record, in order; the last
	// entry may be the repair pass.
	Rounds []Round
	// Placements and Slacks hold each net's final placement and true
	// (unpriced) slack, indexed like Instance.Nets.
	Placements []delay.Placement
	Slacks     []float64
	// Usage and Prices are the final per-site buffer counts and Lagrangian
	// prices.
	Usage  []int
	Prices []float64
	// Buffers is the total number of buffers placed.
	Buffers int
	// TotalSlack sums Slacks; WorstSlack/WorstNet identify the minimum.
	TotalSlack float64
	WorstSlack float64
	WorstNet   int
}

// PartialError reports a Solve aborted by context cancellation, with the
// progress made before the abort. It wraps the cancellation cause, so
// errors.Is(err, solvererr.ErrCanceled) still holds.
type PartialError struct {
	// CompletedRounds counts fully finished pricing rounds; SolvedNets
	// counts oracle solves completed inside the aborted round.
	CompletedRounds, SolvedNets int
	// Err is the underlying cancellation error.
	Err error
}

// Error implements error.
func (e *PartialError) Error() string {
	return fmt.Sprintf("chip: allocation aborted after %d rounds (+%d net solves): %v",
		e.CompletedRounds, e.SolvedNets, e.Err)
}

// Unwrap exposes the cancellation cause to errors.Is / errors.As.
func (e *PartialError) Unwrap() error { return e.Err }

// sited is one (vertex, site) pair of a net.
type sited struct{ v, s int }

// netState is the allocator's per-net working state.
type netState struct {
	net    *Net
	tr     *tree.Tree    // scratch clone; zero-capacity sites pre-masked
	sess   *core.Session // incremental re-solver (nil under NoSessions)
	sites  []sited       // sited buffer positions, in vertex order
	pen    []float64     // per-vertex penalty of the last solve
	plc    delay.Placement
	slack  float64 // true (unpriced) slack of plc
	solved bool
}

// solver is one worker's solving kit: scratch for results and slack
// evaluation, plus a warm engine on the cold (NoSessions) path — sessions
// carry their own engines, so session-mode workers skip the engine
// entirely.
type solver struct {
	eng *core.Engine
	put func(*core.Engine)
	res core.Result
	ev  delay.Evaluator
	opt core.Options
}

func newSolver(cfg *Config) *solver {
	s := &solver{opt: core.Options{Prune: cfg.Prune, Backend: cfg.Backend, CheckInvariants: cfg.CheckInvariants}}
	if !cfg.NoSessions {
		return s
	}
	if cfg.GetEngine != nil && cfg.PutEngine != nil {
		s.eng, s.put = cfg.GetEngine(), cfg.PutEngine
	} else {
		s.eng = core.NewEngine()
	}
	return s
}

func (s *solver) release() {
	if s.eng == nil {
		return
	}
	s.eng.Release()
	if s.put != nil {
		s.put(s.eng)
	}
	s.eng = nil
}

// solve runs the priced oracle on one net: prices folded in through
// SitePenalty (nil when every price on the net is zero, which keeps the
// unpriced round bit-identical to a plain Solver.Run), placement copied
// out of engine scratch, true slack re-derived without prices.
func (s *solver) solve(ctx context.Context, st *netState, lib library.Library, priced bool) error {
	s.opt.Driver = st.net.Driver
	s.opt.SitePenalty = nil
	if priced {
		s.opt.SitePenalty = st.pen
	}
	if err := s.eng.Reset(st.tr, lib, s.opt); err != nil {
		return err
	}
	if err := s.eng.RunContext(ctx, &s.res); err != nil {
		return err
	}
	st.plc = st.plc.Reuse(len(s.res.Placement))
	copy(st.plc, s.res.Placement)
	s.ev.Slack(st.tr, lib, st.plc, st.net.Driver)
	st.slack = s.ev.MinSlack
	st.solved = true
	return nil
}

// solveSession is solve over the net's incremental session: the round's
// price vector lands as a penalty patch (dirtying only re-priced live
// sites), repair masks have already been patched in by the caller, and
// Resolve recomputes just the dirty vertex-to-root paths. Bit-identical to
// solve on the same state — the session contract — so the allocator's
// convergence trajectory is exactly the cold path's.
func (s *solver) solveSession(ctx context.Context, st *netState, lib library.Library) error {
	if err := st.sess.PatchPenalty(st.pen); err != nil {
		return err
	}
	if err := st.sess.Resolve(ctx, &s.res); err != nil {
		return err
	}
	st.plc = st.plc.Reuse(len(s.res.Placement))
	copy(st.plc, s.res.Placement)
	s.ev.Slack(st.tr, lib, st.plc, st.net.Driver)
	st.slack = s.ev.MinSlack
	st.solved = true
	return nil
}

// Solve runs price-and-resolve allocation on inst with library lib.
//
// Round 1 solves every net at zero prices (the unconstrained optimum).
// Each later round updates prices by a projected subgradient step on the
// per-site overflow — price(s) ← max(0, price(s) + step·(usage(s) −
// cap(s))) with a geometrically decaying step — and re-solves, in
// parallel, exactly the nets whose prices changed. If the round budget
// ends with overflow remaining, a deterministic sequential repair pass
// re-solves every net touching an overfull site with saturated sites
// masked out of its scratch tree, which either reaches zero overflow or
// proves a net unplaceable (an error wrapping solvererr.ErrInfeasible —
// the guaranteed terminal answer for, e.g., nets whose every inverter
// site is blocked).
//
// The result is deterministic for a given instance and configuration:
// per-round placements are stored by net index and the repair pass is
// sequential, so the worker count never changes the outcome. On
// cancellation the error is a *PartialError wrapping solvererr.ErrCanceled.
func Solve(ctx context.Context, inst *Instance, lib library.Library, cfg Config) (*Result, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	caps := inst.Capacities(cfg.Capacity)
	nsites := len(caps)
	nnets := len(inst.Nets)

	// Per-net working state; zero-capacity sites are masked up front so
	// the oracle never places a buffer there — and a net that *needs* one
	// (a polarity-constrained net with every inverter site blocked) fails
	// fast with a typed infeasibility instead of chasing prices forever.
	// Unless disabled, every net also gets an incremental ECO session
	// (opened on the masked scratch tree, so the session's private clone
	// carries the masks): rounds then patch prices and re-solve only the
	// re-priced sites' root paths instead of re-running the whole net.
	states := make([]netState, nnets)
	defer func() {
		for i := range states {
			if states[i].sess != nil {
				states[i].sess.Close()
			}
		}
	}()
	for i := range states {
		st := &states[i]
		net := &inst.Nets[i]
		st.net = net
		st.tr = net.Tree.Clone()
		st.pen = make([]float64, net.Tree.Len())
		for v, s := range net.Site {
			if s == NoSite {
				continue
			}
			st.sites = append(st.sites, sited{v, s})
			if caps[s] == 0 {
				st.tr.Verts[v].BufferOK = false
			}
		}
		if !cfg.NoSessions {
			sess, err := core.NewSession(st.tr, lib, core.Options{
				Driver:          net.Driver,
				Prune:           cfg.Prune,
				Backend:         cfg.Backend,
				CheckInvariants: cfg.CheckInvariants,
			})
			if err != nil {
				return nil, fmt.Errorf("chip: net %d (%q): %w", i, net.Name, err)
			}
			st.sess = sess
		}
	}

	prices := make([]float64, nsites)
	pres := make([]float64, nsites) // reversible subgradient component
	hist := make([]float64, nsites) // monotone history component
	usage := make([]int, nsites)
	res := &Result{}
	step := cfg.Step
	workers := cfg.Workers
	if workers > nnets {
		workers = nnets
	}

	for round := 1; round <= cfg.Rounds; round++ {
		if round > 1 {
			// Projected subgradient update on the previous round's usage,
			// plus the non-decaying history term for persistent overflow.
			for s := range prices {
				over := usage[s] - caps[s]
				if p := pres[s] + step*float64(over); p > 0 {
					pres[s] = p
				} else {
					pres[s] = 0
				}
				if over > 0 {
					hist[s] += cfg.HistoryStep * float64(over)
				}
				prices[s] = hist[s] + pres[s]
			}
			step *= cfg.StepDecay
		}

		// Parallel re-solve of every net whose prices changed. Results are
		// written by net index, so the worker count never affects the
		// outcome.
		var next, resolved, solvedNow atomic.Int64
		errs := make([]error, nnets)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				sv := newSolver(&cfg)
				defer sv.release()
				for {
					i := int(next.Add(1)) - 1
					if i >= nnets || ctx.Err() != nil {
						return
					}
					st := &states[i]
					changed, priced := !st.solved, false
					for _, vs := range st.sites {
						p := prices[vs.s]
						if st.pen[vs.v] != p {
							st.pen[vs.v] = p
							changed = true
						}
						if p != 0 {
							priced = true
						}
					}
					if !changed {
						continue
					}
					resolved.Add(1)
					var err error
					if st.sess != nil {
						err = sv.solveSession(ctx, st, lib)
					} else {
						err = sv.solve(ctx, st, lib, priced)
					}
					if err != nil {
						errs[i] = err
						if errors.Is(err, solvererr.ErrCanceled) {
							return
						}
						continue
					}
					solvedNow.Add(1)
					if cfg.SolvedNets != nil {
						cfg.SolvedNets.Add(1)
					}
				}
			}()
		}
		wg.Wait()

		for i, err := range errs {
			if err != nil && !errors.Is(err, solvererr.ErrCanceled) {
				return nil, fmt.Errorf("chip: net %d (%q): %w", i, inst.Nets[i].Name, err)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, &PartialError{
				CompletedRounds: round - 1,
				SolvedNets:      int(solvedNow.Load()),
				Err:             solvererr.Canceled(ctx),
			}
		}

		rec := observe(states, caps, prices, usage)
		rec.Round = round
		rec.Resolved = int(resolved.Load())
		res.Rounds = append(res.Rounds, rec)
		if cfg.CompletedRounds != nil {
			cfg.CompletedRounds.Add(1)
		}
		if cfg.OnRound != nil {
			cfg.OnRound(rec)
		}
		if rec.Overflow == 0 {
			break
		}
	}

	if last := &res.Rounds[len(res.Rounds)-1]; last.Overflow > 0 {
		rec, err := repair(ctx, states, lib, caps, prices, usage, &cfg)
		if err != nil {
			return nil, err
		}
		rec.Round = len(res.Rounds) + 1
		res.Rounds = append(res.Rounds, rec)
		if cfg.CompletedRounds != nil {
			cfg.CompletedRounds.Add(1)
		}
		if cfg.OnRound != nil {
			cfg.OnRound(rec)
		}
	}

	res.Feasible = true
	res.Usage = usage
	res.Prices = prices
	res.Placements = make([]delay.Placement, nnets)
	res.Slacks = make([]float64, nnets)
	res.WorstSlack = math.Inf(1)
	for i := range states {
		st := &states[i]
		res.Placements[i] = st.plc
		res.Slacks[i] = st.slack
		res.Buffers += st.plc.Count()
		res.TotalSlack += st.slack
		if st.slack < res.WorstSlack {
			res.WorstSlack = st.slack
			res.WorstNet = i
		}
	}
	return res, nil
}

// observe recomputes per-site usage from the current placements and
// summarizes the round.
func observe(states []netState, caps []int, prices []float64, usage []int) Round {
	clear(usage)
	rec := Round{WorstSlack: math.Inf(1)}
	for i := range states {
		st := &states[i]
		for _, vs := range st.sites {
			if st.plc[vs.v] != delay.NoBuffer {
				usage[vs.s]++
			}
		}
		rec.Buffers += st.plc.Count()
		rec.TotalSlack += st.slack
		if st.slack < rec.WorstSlack {
			rec.WorstSlack = st.slack
		}
	}
	for s := range usage {
		if over := usage[s] - caps[s]; over > 0 {
			rec.Overflow += over
			rec.OverflowSites++
			if over > rec.MaxOverflow {
				rec.MaxOverflow = over
			}
		}
		if prices[s] > rec.MaxPrice {
			rec.MaxPrice = prices[s]
		}
	}
	return rec
}

// repair is the deterministic end-game: walk nets in index order, and for
// every net occupying an overfull site, re-solve it with all sites that are
// saturated by the *other* nets masked out, committing usage as it goes.
// New placements only ever use spare capacity, so when the pass completes
// every site is within capacity — or some net has no capacity-feasible
// placement at all, which is a typed infeasibility.
func repair(ctx context.Context, states []netState, lib library.Library, caps []int, prices []float64, usage []int, cfg *Config) (Round, error) {
	sv := newSolver(cfg)
	defer sv.release()
	rec := Round{Repair: true}
	for i := range states {
		st := &states[i]
		if ctx.Err() != nil {
			return rec, &PartialError{
				CompletedRounds: cfg.Rounds,
				SolvedNets:      rec.Resolved,
				Err:             solvererr.Canceled(ctx),
			}
		}
		over := false
		for _, vs := range st.sites {
			if st.plc[vs.v] != delay.NoBuffer && usage[vs.s] > caps[vs.s] {
				over = true
				break
			}
		}
		if !over {
			continue
		}
		// Withdraw this net's buffers, mask sites with no capacity left
		// for it, and re-solve under the current prices (they still steer
		// it toward uncontended sites among the unmasked ones). The
		// session, when present, absorbs the masks through PatchBufferOK —
		// which preserves each site's Allowed restriction — and the prices
		// through solveSession's penalty patch; the scratch tree is kept in
		// sync regardless so both solve paths see one instance.
		priced := false
		for _, vs := range st.sites {
			if st.plc[vs.v] != delay.NoBuffer {
				usage[vs.s]--
			}
			ok := usage[vs.s] < caps[vs.s]
			st.tr.Verts[vs.v].BufferOK = ok
			if st.sess != nil {
				if perr := st.sess.PatchBufferOK(vs.v, ok); perr != nil {
					return rec, fmt.Errorf("chip: repair: net %d (%q): %w", i, st.net.Name, perr)
				}
			}
			if st.pen[vs.v] = prices[vs.s]; st.pen[vs.v] != 0 {
				priced = true
			}
		}
		rec.Resolved++
		var err error
		if st.sess != nil {
			err = sv.solveSession(ctx, st, lib)
		} else {
			err = sv.solve(ctx, st, lib, priced)
		}
		if err != nil {
			if errors.Is(err, solvererr.ErrCanceled) {
				return rec, &PartialError{
					CompletedRounds: cfg.Rounds,
					SolvedNets:      rec.Resolved - 1,
					Err:             err,
				}
			}
			return rec, fmt.Errorf("chip: repair: net %d (%q) has no capacity-feasible placement: %w",
				i, st.net.Name, err)
		}
		for _, vs := range st.sites {
			if st.plc[vs.v] != delay.NoBuffer {
				usage[vs.s]++
			}
		}
	}

	full := observe(states, caps, prices, usage)
	full.Round, full.Repair, full.Resolved = rec.Round, true, rec.Resolved
	if full.Overflow != 0 {
		// Unreachable by construction; fail loudly rather than report a
		// feasible allocation that is not.
		return full, solvererr.Infeasible("chip: repair pass left overflow %d", full.Overflow)
	}
	return full, nil
}
