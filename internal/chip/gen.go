package chip

import (
	"fmt"
	"math/rand"

	"bufferkit/internal/delay"
	"bufferkit/internal/netgen"
	"bufferkit/internal/tree"
)

// GenOpts parameterizes Generate.
type GenOpts struct {
	// W and H are the grid dimensions in sites (default 16×16).
	W, H int
	// Nets is the number of nets to generate (default 64).
	Nets int
	// Capacity is the per-site buffer capacity (default 2).
	Capacity int
	// Contention in [0, 1] is the fraction of nets routed through the
	// central hotspot window, concentrating demand on a few sites
	// (default 0.5). 0 spreads nets uniformly.
	Contention float64
	// Pitch is the site spacing in µm (default 700): every routing step
	// between adjacent sites is one Pitch of wire.
	Pitch float64
	// Seed seeds the generator; instances are deterministic per seed.
	Seed int64
	// Wire is the per-µm wire parameterization; zero value = PaperWire.
	Wire netgen.Wire
}

func (o *GenOpts) fill() {
	if o.W <= 0 {
		o.W = 16
	}
	if o.H <= 0 {
		o.H = 16
	}
	if o.Nets <= 0 {
		o.Nets = 64
	}
	if o.Capacity <= 0 {
		o.Capacity = 2
	}
	if o.Contention < 0 {
		o.Contention = 0
	}
	if o.Contention > 1 {
		o.Contention = 1
	}
	if o.Pitch <= 0 {
		o.Pitch = 700
	}
	if o.Wire == (netgen.Wire{}) {
		o.Wire = netgen.PaperWire()
	}
}

// cell is a grid coordinate.
type cell struct{ x, y int }

// lRoute returns the L-shaped Manhattan cell path from a to b (inclusive),
// horizontal leg first when horiz is true.
func lRoute(a, b cell, horiz bool) []cell {
	var path []cell
	step := func(from, to, fixed int, xAxis bool) {
		d := 1
		if to < from {
			d = -1
		}
		for v := from; v != to; v += d {
			if xAxis {
				path = append(path, cell{v, fixed})
			} else {
				path = append(path, cell{fixed, v})
			}
		}
	}
	if horiz {
		step(a.x, b.x, a.y, true)
		step(a.y, b.y, b.x, false)
	} else {
		step(a.y, b.y, a.x, false)
		step(a.x, b.x, b.y, true)
	}
	return append(path, b)
}

// Generate builds a seeded multi-net instance over a shared site grid:
// 2-pin nets routed as L-shaped Manhattan paths, each intermediate site a
// buffer position, with a Contention-controlled fraction of nets detoured
// through the grid's central window so they compete for the same sites.
func Generate(o GenOpts) *Instance {
	o.fill()
	rng := rand.New(rand.NewSource(o.Seed))
	inst := &Instance{Grid: Grid{W: o.W, H: o.H, Capacity: o.Capacity}}
	minDist := (o.W + o.H) / 3
	if minDist < 2 {
		minDist = 2
	}
	center := cell{o.W / 2, o.H / 2}

	for i := 0; i < o.Nets; i++ {
		src := cell{rng.Intn(o.W), rng.Intn(o.H)}
		dst := src
		for abs(dst.x-src.x)+abs(dst.y-src.y) < minDist {
			dst = cell{rng.Intn(o.W), rng.Intn(o.H)}
		}
		var path []cell
		if rng.Float64() < o.Contention {
			// Detour through the hotspot window around the grid center.
			via := cell{center.x + rng.Intn(3) - 1, center.y + rng.Intn(3) - 1}
			via.x, via.y = clamp(via.x, 0, o.W-1), clamp(via.y, 0, o.H-1)
			path = lRoute(src, via, rng.Intn(2) == 0)
			path = append(path, lRoute(via, dst, rng.Intn(2) == 0)[1:]...)
		} else {
			path = lRoute(src, dst, rng.Intn(2) == 0)
		}

		b := tree.NewBuilder()
		sites := []int{NoSite} // vertex 0: source
		visited := map[cell]bool{src: true, dst: true}
		prev, pending := 0, 0.0
		for _, c := range path[1:] {
			pending += o.Pitch
			if c == dst || visited[c] {
				continue // merge repeated cells into one longer wire
			}
			visited[c] = true
			r, wc := o.Wire.Edge(pending)
			prev = b.AddBufferPos(prev, r, wc)
			sites = append(sites, inst.Grid.Site(c.x, c.y))
			pending = 0
		}
		r, wc := o.Wire.Edge(pending)
		b.AddSink(prev, r, wc, 5+rng.Float64()*15, 200+rng.Float64()*600)
		sites = append(sites, NoSite)

		inst.Nets = append(inst.Nets, Net{
			Name:   fmt.Sprintf("net%04d", i),
			Tree:   b.MustBuild(),
			Driver: delay.Driver{R: 0.1 + rng.Float64()*0.2, K: rng.Float64() * 10},
			Site:   sites,
		})
	}
	return inst
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
