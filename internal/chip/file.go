package chip

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"bufferkit/internal/netlist"
)

// The on-disk / on-wire chip instance format is JSON with each net's
// topology embedded as the repository's .net text (see internal/netlist):
//
//	{
//	  "grid": {"w": 16, "h": 16, "capacity": 2},
//	  "blockages": [{"x0": 3, "y0": 3, "x1": 4, "y1": 5}],
//	  "nets": [
//	    {"net": "net net0000\ndriver res 0.2 k 4\n...", "sites": [-1, 37, 38, -1]}
//	  ]
//	}
//
// cmd/netgen -chip emits it, bufopt -chip and POST /v1/chip consume it.

type jsonInstance struct {
	Grid      jsonGrid       `json:"grid"`
	Blockages []jsonBlockage `json:"blockages,omitempty"`
	Nets      []jsonNet      `json:"nets"`
}

type jsonGrid struct {
	W        int `json:"w"`
	H        int `json:"h"`
	Capacity int `json:"capacity"`
}

type jsonBlockage struct {
	X0 int `json:"x0"`
	Y0 int `json:"y0"`
	X1 int `json:"x1"`
	Y1 int `json:"y1"`
}

type jsonNet struct {
	Net   string `json:"net"`
	Sites []int  `json:"sites"`
}

// WriteInstance writes inst in the JSON instance format (indented, so
// generated instances diff cleanly under version control).
func WriteInstance(w io.Writer, inst *Instance) error {
	out := jsonInstance{
		Grid: jsonGrid{W: inst.Grid.W, H: inst.Grid.H, Capacity: inst.Grid.Capacity},
		Nets: make([]jsonNet, len(inst.Nets)),
	}
	for _, b := range inst.Blockages {
		out.Blockages = append(out.Blockages, jsonBlockage{b.X0, b.Y0, b.X1, b.Y1})
	}
	for i := range inst.Nets {
		n := &inst.Nets[i]
		var buf bytes.Buffer
		if err := netlist.WriteNet(&buf, &netlist.Net{Name: n.Name, Tree: n.Tree, Driver: n.Driver}); err != nil {
			return fmt.Errorf("chip: net %d (%q): %w", i, n.Name, err)
		}
		out.Nets[i] = jsonNet{Net: buf.String(), Sites: n.Site}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// ParseInstance reads the JSON instance format. The parsed instance is
// validated; errors carry the offending net.
func ParseInstance(r io.Reader) (*Instance, error) {
	var in jsonInstance
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("chip: bad instance JSON: %w", err)
	}
	inst := &Instance{Grid: Grid{W: in.Grid.W, H: in.Grid.H, Capacity: in.Grid.Capacity}}
	for _, b := range in.Blockages {
		inst.Blockages = append(inst.Blockages, Blockage{b.X0, b.Y0, b.X1, b.Y1})
	}
	for i, jn := range in.Nets {
		net, err := netlist.ParseNet(strings.NewReader(jn.Net))
		if err != nil {
			return nil, fmt.Errorf("chip: net %d: %w", i, err)
		}
		inst.Nets = append(inst.Nets, Net{Name: net.Name, Tree: net.Tree, Driver: net.Driver, Site: jn.Sites})
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}
