package delay

import (
	"math"
	"strings"
	"testing"

	"bufferkit/internal/library"
	"bufferkit/internal/tree"
)

var lib = library.Library{
	{Name: "buf", R: 0.5, Cin: 1, K: 5},
	{Name: "inv", R: 0.5, Cin: 1, K: 5, Inverting: true},
}

func twoPin(t *testing.T, bufferable bool) *tree.Tree {
	t.Helper()
	b := tree.NewBuilder()
	var v int
	if bufferable {
		v = b.AddBufferPos(0, 1, 2)
	} else {
		v = b.AddInternal(0, 1, 2)
	}
	b.AddSink(v, 2, 4, 3, 100)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestWireDelay(t *testing.T) {
	if got := WireDelay(2, 4, 3); got != 10 {
		t.Fatalf("WireDelay = %g, want 10", got)
	}
	if got := WireDelay(0, 100, 100); got != 0 {
		t.Fatalf("zero-R WireDelay = %g, want 0", got)
	}
}

func TestEvaluateUnbuffered(t *testing.T) {
	tr := twoPin(t, true)
	r, err := Evaluate(tr, lib, NewPlacement(tr.Len()), Driver{})
	if err != nil {
		t.Fatal(err)
	}
	// arr(v1) = 1*(2/2 + (4+3)) = 8; arr(sink) = 8 + 2*(4/2+3) = 18
	if want := 100.0 - 18; r.Slack != want {
		t.Fatalf("Slack = %g, want %g", r.Slack, want)
	}
	if r.CriticalSink != 2 {
		t.Fatalf("CriticalSink = %d, want 2", r.CriticalSink)
	}
	if r.RootCap != 2+4+3 {
		t.Fatalf("RootCap = %g, want 9", r.RootCap)
	}
	if r.Buffers != 0 || len(r.PolarityViolations) != 0 {
		t.Fatalf("unexpected buffers/violations: %+v", r)
	}
}

func TestEvaluateBuffered(t *testing.T) {
	tr := twoPin(t, true)
	p := NewPlacement(tr.Len())
	p[1] = 0
	r, err := Evaluate(tr, lib, p, Driver{})
	if err != nil {
		t.Fatal(err)
	}
	// arr_in(v1) = 1*(2/2 + 1) = 2 ; buffer: +5 + 0.5*(4+3) = 8.5
	// arr(sink) = 2 + 8.5 + 2*(4/2+3) = 20.5
	if want := 100.0 - 20.5; r.Slack != want {
		t.Fatalf("Slack = %g, want %g", r.Slack, want)
	}
	if r.RootCap != 2+1 {
		t.Fatalf("RootCap = %g, want 3 (buffer shields downstream)", r.RootCap)
	}
	if r.Buffers != 1 {
		t.Fatalf("Buffers = %d, want 1", r.Buffers)
	}
}

func TestEvaluateDriver(t *testing.T) {
	tr := twoPin(t, true)
	r, err := Evaluate(tr, lib, NewPlacement(tr.Len()), Driver{R: 0.5, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	// driver: 10 + 0.5*9 = 14.5 on top of the unbuffered 18.
	if want := 100.0 - 18 - 14.5; r.Slack != want {
		t.Fatalf("Slack = %g, want %g", r.Slack, want)
	}
	if r.Arrival[0] != 14.5 {
		t.Fatalf("Arrival[0] = %g, want 14.5", r.Arrival[0])
	}
}

func TestEvaluateYNetMinSlack(t *testing.T) {
	b := tree.NewBuilder()
	v := b.AddBufferPos(0, 1, 2)
	s1 := b.AddSink(v, 2, 4, 3, 100)
	s2 := b.AddSink(v, 1, 2, 5, 50)
	tr := b.MustBuild()
	r, err := Evaluate(tr, lib, NewPlacement(tr.Len()), Driver{})
	if err != nil {
		t.Fatal(err)
	}
	// load(v) = (4+3)+(2+5) = 14; arr(v) = 1*(2/2+14) = 15
	// arr(s1) = 15 + 2*(4/2+3) = 25 ; slack 75
	// arr(s2) = 15 + 1*(2/2+5) = 21 ; slack 29
	if r.Slack != 29 {
		t.Fatalf("Slack = %g, want 29", r.Slack)
	}
	if r.CriticalSink != s2 {
		t.Fatalf("CriticalSink = %d, want %d", r.CriticalSink, s2)
	}
	if r.Arrival[s1] != 25 {
		t.Fatalf("Arrival[s1] = %g, want 25", r.Arrival[s1])
	}
}

func TestPolarityTracking(t *testing.T) {
	b := tree.NewBuilder()
	v1 := b.AddBufferPos(0, 1, 1)
	v2 := b.AddBufferPos(v1, 1, 1)
	b.AddSinkPol(v2, 1, 1, 2, 100, tree.Negative)
	tr := b.MustBuild()

	// No inverter: the negative sink is violated.
	r, err := Evaluate(tr, lib, NewPlacement(tr.Len()), Driver{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PolarityViolations) != 1 || r.PolarityViolations[0] != 3 {
		t.Fatalf("violations = %v, want [3]", r.PolarityViolations)
	}

	// One inverter fixes it.
	p := NewPlacement(tr.Len())
	p[v1] = 1
	r, err = Evaluate(tr, lib, p, Driver{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PolarityViolations) != 0 {
		t.Fatalf("violations = %v, want none", r.PolarityViolations)
	}

	// Two inverters break it again.
	p[v2] = 1
	r, err = Evaluate(tr, lib, p, Driver{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PolarityViolations) != 1 {
		t.Fatalf("violations = %v, want [3]", r.PolarityViolations)
	}
}

func TestEvaluateErrors(t *testing.T) {
	tr := twoPin(t, false) // not a buffer position
	p := NewPlacement(tr.Len())
	p[1] = 0
	if _, err := Evaluate(tr, lib, p, Driver{}); err == nil || !strings.Contains(err.Error(), "not a legal buffer position") {
		t.Fatalf("err = %v", err)
	}

	tr2 := twoPin(t, true)
	if _, err := Evaluate(tr2, lib, NewPlacement(1), Driver{}); err == nil || !strings.Contains(err.Error(), "placement length") {
		t.Fatalf("err = %v", err)
	}

	p2 := NewPlacement(tr2.Len())
	p2[1] = 99
	if _, err := Evaluate(tr2, lib, p2, Driver{}); err == nil || !strings.Contains(err.Error(), "out of library range") {
		t.Fatalf("err = %v", err)
	}
}

func TestEvaluateRespectsAllowed(t *testing.T) {
	b := tree.NewBuilder()
	v := b.AddBufferPosRestricted(0, 1, 1, []int{1})
	b.AddSink(v, 1, 1, 2, 100)
	tr := b.MustBuild()
	p := NewPlacement(tr.Len())
	p[v] = 0
	if _, err := Evaluate(tr, lib, p, Driver{}); err == nil || !strings.Contains(err.Error(), "not allowed") {
		t.Fatalf("err = %v", err)
	}
	p[v] = 1
	if _, err := Evaluate(tr, lib, p, Driver{}); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementHelpers(t *testing.T) {
	p := NewPlacement(4)
	for _, v := range p {
		if v != NoBuffer {
			t.Fatal("NewPlacement not all NoBuffer")
		}
	}
	p[1], p[3] = 0, 1
	if p.Count() != 2 {
		t.Fatalf("Count = %d, want 2", p.Count())
	}
	costLib := library.Library{{R: 1, Cin: 1, Cost: 3}, {R: 1, Cin: 1, Cost: 5}}
	if got := p.Cost(costLib); got != 8 {
		t.Fatalf("Cost = %d, want 8", got)
	}
}

// TestBufferShieldingImprovesLongLine checks the physics the whole exercise
// rests on: on a long resistive line, a buffer placed mid-way reduces the
// sink delay.
func TestBufferShieldingImprovesLongLine(t *testing.T) {
	w := 5000.0 // µm
	r, c := library.PaperWireR*w/2, library.PaperWireC*w/2
	b := tree.NewBuilder()
	v := b.AddBufferPos(0, r, c)
	b.AddSink(v, r, c, 10, 0)
	tr := b.MustBuild()

	drv := Driver{R: 0.5}
	unbuf, err := Evaluate(tr, lib, NewPlacement(tr.Len()), drv)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlacement(tr.Len())
	p[v] = 0
	buf, err := Evaluate(tr, lib, p, drv)
	if err != nil {
		t.Fatal(err)
	}
	if !(buf.Slack > unbuf.Slack) {
		t.Fatalf("buffering did not help: %g vs %g", buf.Slack, unbuf.Slack)
	}
	if math.IsNaN(buf.Slack) || math.IsInf(buf.Slack, 0) {
		t.Fatal("non-finite slack")
	}
}

func TestCriticalPath(t *testing.T) {
	b := tree.NewBuilder()
	v := b.AddBufferPos(0, 1, 2)
	b.AddSink(v, 2, 4, 3, 100)
	s2 := b.AddSink(v, 1, 2, 5, 10) // much tighter RAT: critical
	tr := b.MustBuild()
	r, err := Evaluate(tr, lib, NewPlacement(tr.Len()), Driver{})
	if err != nil {
		t.Fatal(err)
	}
	got := r.CriticalPath(tr)
	want := []int{0, v, s2}
	if len(got) != len(want) {
		t.Fatalf("CriticalPath = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CriticalPath = %v, want %v", got, want)
		}
	}
	empty := &Result{CriticalSink: -1}
	if empty.CriticalPath(tr) != nil {
		t.Fatal("no critical sink must yield nil path")
	}
}
