// Package delay evaluates buffered routing trees under the Elmore wire
// delay model and the linear buffer delay model used by the paper.
//
// It is the exact timing oracle of the repository: the dynamic-programming
// algorithms predict a slack, and tests assert that delay.Evaluate of the
// reconstructed placement reproduces that prediction bit-for-bit (the DP and
// the oracle perform the same floating-point operations in the same order up
// to associativity of independent sums).
package delay

import (
	"fmt"
	"math"

	"bufferkit/internal/library"
	"bufferkit/internal/tree"
)

// Driver models the net's source driver: a resistance R (kΩ) and intrinsic
// delay K (ps). The zero value is an ideal driver contributing no delay.
type Driver struct {
	R float64
	K float64
}

// WireDelay returns the Elmore delay R·(C/2 + cdown) of a wire with total
// resistance R and capacitance C driving a downstream load cdown.
func WireDelay(r, c, cdown float64) float64 { return r * (c/2 + cdown) }

// Placement assigns a buffer type to tree vertices: Placement[v] is an index
// into the library, or NoBuffer.
type Placement []int

// NoBuffer marks an unbuffered vertex in a Placement.
const NoBuffer = -1

// NewPlacement returns an all-unbuffered placement for n vertices.
func NewPlacement(n int) Placement {
	p := make(Placement, n)
	for i := range p {
		p[i] = NoBuffer
	}
	return p
}

// Reuse returns an all-unbuffered placement for n vertices, reusing p's
// backing array when its capacity suffices — the allocation-free reset the
// warm engines rely on.
func (p Placement) Reuse(n int) Placement {
	if cap(p) < n {
		return NewPlacement(n)
	}
	p = p[:n]
	for i := range p {
		p[i] = NoBuffer
	}
	return p
}

// Count returns the number of buffered vertices.
func (p Placement) Count() int {
	n := 0
	for _, b := range p {
		if b != NoBuffer {
			n++
		}
	}
	return n
}

// Cost returns the total library cost of the placement.
func (p Placement) Cost(lib library.Library) int {
	c := 0
	for _, b := range p {
		if b != NoBuffer {
			c += lib[b].Cost
		}
	}
	return c
}

// Result is the full timing picture of one placement.
type Result struct {
	// Slack is min over sinks of RAT − arrival, after the driver (if any).
	Slack float64
	// CriticalSink is the vertex index of the sink attaining Slack.
	CriticalSink int
	// Arrival[v] is the delay from the driver input to the signal at the
	// *input* of v (before any buffer placed at v).
	Arrival []float64
	// Load[v] is the capacitance driven by the buffer or wire output at v:
	// the sum over children edges of edge capacitance plus viewed child cap.
	Load []float64
	// RootCap is the capacitance the driver sees at the root.
	RootCap float64
	// Buffers is the number of buffers placed.
	Buffers int
	// PolarityViolations lists sinks whose polarity requirement is not met.
	PolarityViolations []int
}

// Evaluate computes exact Elmore timing of placement p on tree t.
// It validates that buffers appear only at legal positions with allowed
// types.
func Evaluate(t *tree.Tree, lib library.Library, p Placement, drv Driver) (*Result, error) {
	n := t.Len()
	if len(p) != n {
		return nil, fmt.Errorf("delay: placement length %d != tree size %d", len(p), n)
	}
	for v := 0; v < n; v++ {
		b := p[v]
		if b == NoBuffer {
			continue
		}
		if b < 0 || b >= len(lib) {
			return nil, fmt.Errorf("delay: vertex %d: buffer index %d out of library range", v, b)
		}
		vert := &t.Verts[v]
		if !vert.BufferOK {
			return nil, fmt.Errorf("delay: vertex %d is not a legal buffer position", v)
		}
		if len(vert.Allowed) > 0 && !contains(vert.Allowed, b) {
			return nil, fmt.Errorf("delay: vertex %d: buffer type %d not allowed here", v, b)
		}
	}

	res := &Result{
		Arrival:      make([]float64, n),
		Load:         make([]float64, n),
		CriticalSink: -1,
	}

	// view[v]: capacitance v presents to its parent edge.
	view := make([]float64, n)
	for _, v := range t.PostOrder() {
		vert := &t.Verts[v]
		if vert.Kind == tree.Sink {
			view[v] = vert.Cap
			continue
		}
		load := 0.0
		for _, c := range t.Children(v) {
			load += t.Verts[c].EdgeC + view[c]
		}
		res.Load[v] = load
		if b := p[v]; b != NoBuffer {
			view[v] = lib[b].Cin
			res.Buffers++
		} else {
			view[v] = load
		}
	}
	res.RootCap = res.Load[0]

	// Top-down arrival times and inverter parity. Vertex indices are
	// topologically ordered (parents first), so a forward scan suffices.
	parity := make([]uint8, n)
	out := make([]float64, n) // delay at the output side of v
	res.Arrival[0] = drv.K + drv.R*res.RootCap
	out[0] = res.Arrival[0]
	res.Slack = math.Inf(1)
	for v := 1; v < n; v++ {
		vert := &t.Verts[v]
		pnt := vert.Parent
		arr := out[pnt] + WireDelay(vert.EdgeR, vert.EdgeC, view[v])
		res.Arrival[v] = arr
		parity[v] = parity[pnt]
		if b := p[v]; b != NoBuffer {
			out[v] = arr + lib[b].Delay(res.Load[v])
			if lib[b].Inverting {
				parity[v] ^= 1
			}
		} else {
			out[v] = arr
		}
		if vert.Kind == tree.Sink {
			slack := vert.RAT - arr
			if slack < res.Slack {
				res.Slack = slack
				res.CriticalSink = v
			}
			want := uint8(0)
			if vert.Pol == tree.Negative {
				want = 1
			}
			if parity[v] != want {
				res.PolarityViolations = append(res.PolarityViolations, v)
			}
		}
	}
	return res, nil
}

// CriticalPath returns the vertex indices from the source to the critical
// sink of an evaluation, root first.
func (r *Result) CriticalPath(t *tree.Tree) []int {
	if r.CriticalSink < 0 {
		return nil
	}
	var rev []int
	for v := r.CriticalSink; v != -1; v = t.Verts[v].Parent {
		rev = append(rev, v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
