package delay

import (
	"math"

	"bufferkit/internal/library"
	"bufferkit/internal/tree"
)

// Evaluator computes the slack of a placement on a tree with reusable
// scratch — the alloc-free counterpart of Evaluate for inner loops that
// re-time many placements (the variation sweep, the chip allocator's
// per-round true-slack accounting). It performs the same floating-point
// operations in the same order as Evaluate, so its slack agrees bit-for-bit
// with both the oracle and the dynamic program.
//
// An Evaluator is not safe for concurrent use; give each worker its own.
type Evaluator struct {
	view, out []float64
	// MinSlack is the slack of the last Slack call: min over sinks of
	// RAT − arrival.
	MinSlack float64
}

// Slack fills e.MinSlack and returns the critical sink index (-1 when the
// tree has no sinks). Placements handed to it come from the DP (or from a
// prior DP run on the same tree), so it skips the legality validation
// Evaluate performs.
func (e *Evaluator) Slack(t *tree.Tree, lib library.Library, p Placement, drv Driver) (critical int) {
	n := t.Len()
	if cap(e.view) < n {
		e.view = make([]float64, n)
		e.out = make([]float64, n)
	}
	view, out := e.view[:n], e.out[:n]

	for _, v := range t.PostOrder() {
		vert := &t.Verts[v]
		if vert.Kind == tree.Sink {
			view[v] = vert.Cap
			continue
		}
		load := 0.0
		for _, c := range t.Children(v) {
			load += t.Verts[c].EdgeC + view[c]
		}
		if b := p[v]; b != NoBuffer {
			view[v] = lib[b].Cin
			out[v] = load // stash the driven load for the forward pass
		} else {
			view[v] = load
			out[v] = load
		}
	}

	rootLoad := out[0]
	arr0 := drv.K + drv.R*rootLoad
	e.MinSlack = math.Inf(1)
	critical = -1
	// Forward scan: out[v] becomes the delay at v's output side.
	out[0] = arr0
	for v := 1; v < n; v++ {
		vert := &t.Verts[v]
		arr := out[vert.Parent] + WireDelay(vert.EdgeR, vert.EdgeC, view[v])
		if b := p[v]; b != NoBuffer {
			out[v] = arr + lib[b].Delay(out[v])
		} else {
			out[v] = arr
		}
		if vert.Kind == tree.Sink {
			if s := vert.RAT - arr; s < e.MinSlack {
				e.MinSlack = s
				critical = v
			}
		}
	}
	return critical
}
