// Package segment implements wire segmenting in the spirit of Alpert &
// Devgan (DAC 1997): splitting tree edges into shorter segments whose
// junctions become legal buffer positions. Segmenting is how a routed
// topology with m sinks acquires its n ≫ m candidate buffer positions — the
// paper's 1944-sink test case has 33133 positions.
package segment

import (
	"fmt"
	"math"
	"sort"

	"bufferkit/internal/tree"
)

// Split returns a copy of t in which the edge above each vertex v is divided
// into segs(v) equal RC segments; the segs(v)−1 new junction vertices are
// buffer positions. segs(v) < 1 is treated as 1 (no split). Existing
// vertices keep their kinds, parameters and buffer-position flags.
func Split(t *tree.Tree, segs func(v int) int) (*tree.Tree, error) {
	b := tree.NewBuilder()
	// old vertex id -> new vertex id. Vertex 0 maps to 0.
	idMap := make([]int, t.Len())
	for v := 1; v < t.Len(); v++ {
		vert := t.Verts[v]
		k := segs(v)
		if k < 1 {
			k = 1
		}
		parent := idMap[vert.Parent]
		r, c := vert.EdgeR/float64(k), vert.EdgeC/float64(k)
		for i := 0; i < k-1; i++ {
			parent = b.AddBufferPos(parent, r, c)
		}
		var id int
		switch vert.Kind {
		case tree.Sink:
			id = b.AddSinkPol(parent, r, c, vert.Cap, vert.RAT, vert.Pol)
		case tree.Internal:
			if vert.BufferOK {
				if vert.Allowed != nil {
					id = b.AddBufferPosRestricted(parent, r, c, vert.Allowed)
				} else {
					id = b.AddBufferPos(parent, r, c)
				}
			} else {
				id = b.AddInternal(parent, r, c)
			}
		default:
			return nil, fmt.Errorf("segment: unexpected kind %v at vertex %d", vert.Kind, v)
		}
		if vert.Name != "" {
			b.SetName(id, vert.Name)
		}
		idMap[v] = id
	}
	return b.Build()
}

// Uniform splits every edge into k segments.
func Uniform(t *tree.Tree, k int) (*tree.Tree, error) {
	return Split(t, func(int) int { return k })
}

// ByMaxCap splits every edge into the fewest equal segments whose
// individual capacitance does not exceed capLimit (fF) — the Alpert–Devgan
// style rule of bounding per-segment RC so that a buffer position exists
// wherever one could profitably go. Edges already below the limit are
// untouched.
func ByMaxCap(t *tree.Tree, capLimit float64) (*tree.Tree, error) {
	if capLimit <= 0 {
		return nil, fmt.Errorf("segment: capLimit %g must be positive", capLimit)
	}
	return Split(t, func(v int) int {
		return int(math.Ceil(t.Verts[v].EdgeC / capLimit))
	})
}

// ToPositions segments edges proportionally to their capacitance (a proxy
// for length) so the result has approximately target buffer positions in
// total, counting positions that already exist. Edges with zero capacitance
// are not split.
func ToPositions(t *tree.Tree, target int) (*tree.Tree, error) {
	existing := t.NumBufferPositions()
	extra := target - existing
	if extra <= 0 {
		return t.Clone(), nil
	}
	total := t.TotalWireCap()
	if total <= 0 {
		return nil, fmt.Errorf("segment: tree has no wire capacitance to segment")
	}
	// Largest-remainder apportionment of `extra` new junctions over edges:
	// floor the quotas, then hand the leftover junctions to the edges with
	// the largest fractional remainders. The remainders sum to the
	// leftover, so one sorted pass always suffices.
	n := t.Len()
	segs := make([]int, n)
	type rem struct {
		v int
		r float64
	}
	rems := make([]rem, 0, n-1)
	assigned := 0
	for v := 1; v < n; v++ {
		quota := float64(extra) * t.Verts[v].EdgeC / total
		segs[v] = int(quota)
		assigned += segs[v]
		if t.Verts[v].EdgeC > 0 {
			rems = append(rems, rem{v, quota - float64(segs[v])})
		}
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].r != rems[j].r {
			return rems[i].r > rems[j].r
		}
		return rems[i].v < rems[j].v
	})
	for i := 0; assigned < extra && i < len(rems); i++ {
		segs[rems[i].v]++
		assigned++
	}
	return Split(t, func(v int) int { return segs[v] + 1 })
}
