package segment_test

import (
	"math"
	"testing"
	"testing/quick"

	"bufferkit/internal/core"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/netgen"
	"bufferkit/internal/segment"
	"bufferkit/internal/tree"
)

func yNet(t *testing.T) *tree.Tree {
	t.Helper()
	b := tree.NewBuilder()
	v := b.AddBufferPos(0, 1.0, 10)
	b.AddSink(v, 2.0, 20, 5, 1000)
	b.AddSinkPol(v, 3.0, 30, 7, 900, tree.Negative)
	return b.MustBuild()
}

func TestUniformPreservesTotalsAndKinds(t *testing.T) {
	tr := yNet(t)
	for _, k := range []int{1, 2, 5} {
		seg, err := segment.Uniform(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := seg.Validate(); err != nil {
			t.Fatal(err)
		}
		if seg.NumSinks() != tr.NumSinks() {
			t.Fatalf("k=%d: sinks %d != %d", k, seg.NumSinks(), tr.NumSinks())
		}
		wantPos := tr.NumBufferPositions() + (k-1)*(tr.Len()-1)
		if got := seg.NumBufferPositions(); got != wantPos {
			t.Fatalf("k=%d: positions %d, want %d", k, got, wantPos)
		}
		if math.Abs(seg.TotalWireCap()-tr.TotalWireCap()) > 1e-9 {
			t.Fatalf("k=%d: wire cap changed: %g vs %g", k, seg.TotalWireCap(), tr.TotalWireCap())
		}
		totalR := func(tt *tree.Tree) float64 {
			s := 0.0
			for i := range tt.Verts {
				s += tt.Verts[i].EdgeR
			}
			return s
		}
		if math.Abs(totalR(seg)-totalR(tr)) > 1e-9 {
			t.Fatalf("k=%d: wire resistance changed", k)
		}
		// Sink parameters survive.
		var negSeen bool
		for _, s := range seg.Sinks() {
			if seg.Verts[s].Pol == tree.Negative {
				negSeen = true
				if seg.Verts[s].Cap != 7 || seg.Verts[s].RAT != 900 {
					t.Fatalf("negative sink parameters lost: %+v", seg.Verts[s])
				}
			}
		}
		if !negSeen {
			t.Fatal("negative sink lost")
		}
	}
}

func TestUniformK1IsIdentityShape(t *testing.T) {
	tr := yNet(t)
	seg, err := segment.Uniform(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Len() != tr.Len() {
		t.Fatalf("k=1 changed vertex count: %d vs %d", seg.Len(), tr.Len())
	}
}

func TestSplitPreservesRestrictions(t *testing.T) {
	b := tree.NewBuilder()
	v := b.AddBufferPosRestricted(0, 1, 1, []int{2})
	b.AddSink(v, 1, 1, 2, 100)
	tr := b.MustBuild()
	seg, err := segment.Uniform(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range seg.Verts {
		if a := seg.Verts[i].Allowed; len(a) == 1 && a[0] == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("Allowed restriction lost in split")
	}
}

func TestToPositionsHitsTarget(t *testing.T) {
	base := netgen.Random(netgen.Opts{Sinks: 20, Seed: 1})
	for _, target := range []int{50, 200, 1000, 5000} {
		seg, err := segment.ToPositions(base, target)
		if err != nil {
			t.Fatal(err)
		}
		got := seg.NumBufferPositions()
		if got != target {
			t.Fatalf("target %d: got %d positions", target, got)
		}
		if err := seg.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestToPositionsBelowExistingIsClone(t *testing.T) {
	base := netgen.Random(netgen.Opts{Sinks: 20, Seed: 2})
	seg, err := segment.ToPositions(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seg.NumBufferPositions() != base.NumBufferPositions() {
		t.Fatal("ToPositions below existing count must not remove positions")
	}
}

// TestSegmentingPreservesUnbufferedTiming: splitting a wire into equal
// segments preserves the Elmore delay of the unbuffered net exactly
// (lumped L-segments in series reproduce the same sums).
func TestSegmentingPreservesUnbufferedTiming(t *testing.T) {
	lib := library.Generate(2)
	for seed := int64(0); seed < 10; seed++ {
		base := netgen.Random(netgen.Opts{Sinks: 5, Seed: seed})
		r0, err := delay.Evaluate(base, lib, delay.NewPlacement(base.Len()), delay.Driver{R: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		seg, err := segment.Uniform(base, 4)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := delay.Evaluate(seg, lib, delay.NewPlacement(seg.Len()), delay.Driver{R: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		// Under the half-capacitance convention D = R(C/2 + Cdown), a
		// uniform k-way split of a lumped wire reproduces the original
		// Elmore delay exactly: Σᵢ (R/k)(C/2k + (k−i)C/k + L) = RC/2 + RL.
		if math.Abs(r1.Slack-r0.Slack) > 1e-9*math.Max(1, math.Abs(r0.Slack)) {
			t.Fatalf("seed %d: segmenting changed unbuffered slack: %.12g -> %.12g", seed, r0.Slack, r1.Slack)
		}
	}
}

func TestQuickToPositionsAlwaysValid(t *testing.T) {
	f := func(seed int64, targetRaw uint16) bool {
		base := netgen.Random(netgen.Opts{Sinks: 3 + int(seed%5+5)%5, Seed: seed})
		target := int(targetRaw)%2000 + 1
		seg, err := segment.ToPositions(base, target)
		if err != nil {
			return false
		}
		if seg.Validate() != nil {
			return false
		}
		want := target
		if base.NumBufferPositions() > target {
			want = base.NumBufferPositions()
		}
		return seg.NumBufferPositions() == want && seg.NumSinks() == base.NumSinks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestByMaxCapBoundsEverySegment(t *testing.T) {
	base := netgen.Random(netgen.Opts{Sinks: 15, Seed: 4})
	for _, limit := range []float64{5, 20, 1e9} {
		seg, err := segment.ByMaxCap(base, limit)
		if err != nil {
			t.Fatal(err)
		}
		if err := seg.Validate(); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < seg.Len(); i++ {
			if seg.Verts[i].EdgeC > limit+1e-9 {
				t.Fatalf("limit %g: segment cap %g exceeds it", limit, seg.Verts[i].EdgeC)
			}
		}
		if math.Abs(seg.TotalWireCap()-base.TotalWireCap()) > 1e-9 {
			t.Fatalf("limit %g: total wire cap changed", limit)
		}
	}
	// A huge limit must be the identity shape.
	seg, err := segment.ByMaxCap(base, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Len() != base.Len() {
		t.Fatalf("huge limit changed vertex count %d -> %d", base.Len(), seg.Len())
	}
}

func TestByMaxCapRejectsNonPositive(t *testing.T) {
	base := netgen.Random(netgen.Opts{Sinks: 3, Seed: 1})
	if _, err := segment.ByMaxCap(base, 0); err == nil {
		t.Fatal("accepted zero limit")
	}
}

// TestByMaxCapImprovesSolution: finer buffer-position granularity can only
// help the optimizer (more choices), never hurt.
func TestByMaxCapImprovesSolution(t *testing.T) {
	lib := library.Generate(8)
	drv := delay.Driver{R: 0.3}
	base := netgen.Random(netgen.Opts{Sinks: 8, Seed: 6})
	coarse, err := core.Insert(base, lib, core.Options{Driver: drv})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := segment.ByMaxCap(base, 10)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := core.Insert(seg, lib, core.Options{Driver: drv})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Slack < coarse.Slack-1e-9 {
		t.Fatalf("more positions reduced slack: %g -> %g", coarse.Slack, fine.Slack)
	}
}
