// Package fleet is the peer tier behind a multi-node bufferkitd
// deployment. Each node is handed the same static member list and answers
// three questions locally, with no coordination protocol:
//
//   - Placement: which R members own the cached result for a given request
//     digest? (consistent hashing over the content-addressed cache key —
//     ring.go)
//   - Health: is a member alive, suspect, or dead right now? (a
//     phi-accrual-style failure detector fed by periodic probes and
//     per-request outcomes — detector.go)
//   - Tail latency: how do we race a slow home peer against its replica
//     without doubling fleet load? (budget-capped hedged calls — fleet.go)
//
// The package is transport-agnostic: it ranks peers and schedules calls,
// while internal/server supplies the actual HTTP forwarding. Every
// decision degrades toward "serve locally" — a node that can reach no
// peer at all still answers every request from its own engines.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// RouteKey folds a request's content digests into the routing hash.
// Deliberately built from the net and library digests only — not the
// solve options — so any party that can hash the raw payloads (the Go
// client, a sidecar, another node) computes the same home peer without
// knowing the server's canonical option encoding. Different option sets
// for one net share a home, which is what a synthesis loop wants anyway:
// the net's results concentrate on one peer's cache.
func RouteKey(netDigest, libDigest [32]byte) uint64 {
	h := fnv.New64a()
	h.Write(netDigest[:])
	h.Write(libDigest[:])
	return h.Sum64()
}

// vnodesPerMember is the number of ring points per member. 64 keeps the
// per-member load imbalance under ~10% for small fleets while the whole
// ring stays a few KB.
const vnodesPerMember = 64

// Ring is an immutable consistent-hash ring over the fleet's member URLs.
// Build once with NewRing; lookups are lock-free.
type Ring struct {
	points  []ringPoint // sorted by hash
	members []string
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// NewRing builds the ring. Member order does not matter: placement
// depends only on the member strings, so every node (and the client)
// derives the same ring from the same -peers list in any order.
func NewRing(members []string) *Ring {
	r := &Ring{members: append([]string(nil), members...)}
	sort.Strings(r.members)
	for i, m := range r.members {
		for v := 0; v < vnodesPerMember; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", m, v)
			r.points = append(r.points, ringPoint{hash: h.Sum64(), member: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// Members returns the ring's member list (sorted).
func (r *Ring) Members() []string { return r.members }

// Owners returns the first n distinct members clockwise from key — the
// replica set for key, in ring (preference) order. n is clamped to the
// member count.
func (r *Ring) Owners(key uint64, n int) []string {
	if len(r.members) == 0 {
		return nil
	}
	n = min(n, len(r.members))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}
