package fleet

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func digests(i int) ([32]byte, [32]byte) {
	return sha256.Sum256([]byte(fmt.Sprintf("net-%d", i))), sha256.Sum256([]byte("lib"))
}

func TestRingDeterministicAcrossOrder(t *testing.T) {
	a := NewRing([]string{"http://a", "http://b", "http://c"})
	b := NewRing([]string{"http://c", "http://a", "http://b"})
	for i := 0; i < 200; i++ {
		n, l := digests(i)
		key := RouteKey(n, l)
		oa, ob := a.Owners(key, 2), b.Owners(key, 2)
		if len(oa) != 2 || len(ob) != 2 {
			t.Fatalf("key %d: owner counts %d, %d", i, len(oa), len(ob))
		}
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("key %d: rings disagree: %v vs %v", i, oa, ob)
			}
		}
		if oa[0] == oa[1] {
			t.Fatalf("key %d: duplicate owner %q", i, oa[0])
		}
	}
}

func TestRingBalanceAndMinimalMovement(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c"}
	r3 := NewRing(members)
	count := map[string]int{}
	const keys = 3000
	home := make([]string, keys)
	for i := 0; i < keys; i++ {
		n, l := digests(i)
		o := r3.Owners(RouteKey(n, l), 1)[0]
		home[i] = o
		count[o]++
	}
	for m, c := range count {
		if c < keys/6 || c > keys/2+keys/10 {
			t.Errorf("member %s owns %d of %d keys — badly unbalanced", m, c, keys)
		}
	}
	// Adding a member must move only keys that land on the new member —
	// existing assignments either stay or go to http://d.
	r4 := NewRing(append(append([]string(nil), members...), "http://d"))
	moved := 0
	for i := 0; i < keys; i++ {
		n, l := digests(i)
		o := r4.Owners(RouteKey(n, l), 1)[0]
		if o != home[i] {
			if o != "http://d" {
				t.Fatalf("key %d moved %s -> %s, not to the new member", i, home[i], o)
			}
			moved++
		}
	}
	if moved == 0 || moved > keys/2 {
		t.Errorf("adding a member moved %d of %d keys; want ~%d", moved, keys, keys/4)
	}
}

func TestDetectorLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	d := NewDetector([]string{"p"}, DetectorConfig{Now: clock})
	// Steady heartbeats at 1 s: alive.
	for i := 0; i < 10; i++ {
		now = now.Add(time.Second)
		d.ReportSuccess("p")
	}
	if got := d.State("p"); got != Alive {
		t.Fatalf("steady peer = %v, want alive", got)
	}
	// Silence accrues suspicion continuously: suspect first, dead later.
	now = now.Add(3 * time.Second)
	if got := d.State("p"); got != Suspect {
		t.Fatalf("after 3 s silence = %v (phi %.1f), want suspect", got, d.Phi("p"))
	}
	now = now.Add(20 * time.Second)
	if got := d.State("p"); got != Dead {
		t.Fatalf("after 23 s silence = %v (phi %.1f), want dead", got, d.Phi("p"))
	}
	// One success resurrects instantly.
	d.ReportSuccess("p")
	if got := d.State("p"); got != Alive {
		t.Fatalf("after success = %v, want alive", got)
	}
}

func TestDetectorConsecutiveFailures(t *testing.T) {
	now := time.Unix(1000, 0)
	d := NewDetector([]string{"p"}, DetectorConfig{Now: func() time.Time { return now }})
	d.ReportSuccess("p")
	d.ReportFailure("p")
	if got := d.State("p"); got != Suspect {
		t.Fatalf("one failure = %v, want suspect", got)
	}
	d.ReportFailure("p")
	d.ReportFailure("p")
	if got := d.State("p"); got != Dead {
		t.Fatalf("three failures = %v, want dead", got)
	}
	d.ReportSuccess("p")
	if got := d.State("p"); got != Alive {
		t.Fatalf("success after failures = %v, want alive", got)
	}
}

func TestRankDemotesUnhealthy(t *testing.T) {
	now := time.Unix(1000, 0)
	d := NewDetector([]string{"a", "b", "c"}, DetectorConfig{Now: func() time.Time { return now }})
	for i := 0; i < 3; i++ {
		d.ReportFailure("a") // dead
	}
	d.ReportFailure("b") // suspect
	got := d.Rank([]string{"a", "b", "c"})
	want := []string{"c", "b", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", got, want)
		}
	}
}

func TestFleetRouting(t *testing.T) {
	f, err := New(Config{
		Self:  "http://b",
		Peers: []string{"http://a", "http://b", "http://c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ownedBySelf := 0
	for i := 0; i < 300; i++ {
		n, l := digests(i)
		key := RouteKey(n, l)
		owners := f.Owners(key)
		if len(owners) != 2 {
			t.Fatalf("key %d: %d owners, want 2", i, len(owners))
		}
		if f.IsOwner(key) {
			ownedBySelf++
		}
	}
	// With R=2 of 3 members, self owns ~2/3 of keys.
	if ownedBySelf < 100 || ownedBySelf > 280 {
		t.Errorf("self owns %d of 300 keys; want ~200", ownedBySelf)
	}
	// Killing the home peer reroutes to the replica.
	n, l := digests(7)
	key := RouteKey(n, l)
	owners := f.Owners(key)
	other := owners[0]
	if other == "http://b" {
		other = owners[1]
	}
	for i := 0; i < 3; i++ {
		f.Detector().ReportFailure(other)
	}
	routed := f.Route(key)
	if routed[len(routed)-1] != other {
		t.Errorf("Route after killing %s = %v; dead peer should rank last", other, routed)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{Self: "http://a", Peers: []string{"http://a", "http://b"}}, true},
		{Config{Self: "", Peers: []string{"http://a"}}, false},
		{Config{Self: "http://a", Peers: []string{"http://b"}}, false},
		{Config{Self: "http://a", Peers: []string{"http://a", "http://a"}}, false},
	}
	for i, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%t", i, err, c.ok)
		}
	}
}

func TestHedgedFirstWins(t *testing.T) {
	launches := atomic.Int32{}
	v, target, hedged, err := Hedged(context.Background(), []string{"slow", "fast"}, 10*time.Millisecond,
		nil, func(int) { launches.Add(1) },
		func(ctx context.Context, t string) (string, error) {
			if t == "slow" {
				select {
				case <-time.After(2 * time.Second):
					return "slow-done", nil
				case <-ctx.Done():
					return "", ctx.Err()
				}
			}
			return "fast-done", nil
		})
	if err != nil || v != "fast-done" || target != "fast" || !hedged {
		t.Fatalf("Hedged = (%q, %q, %t, %v), want fast hedge win", v, target, hedged, err)
	}
	if launches.Load() != 2 {
		t.Fatalf("launches = %d, want 2", launches.Load())
	}
}

func TestHedgedFailoverImmediate(t *testing.T) {
	// The primary fails fast; the second target must launch without
	// waiting for the hedge delay and without a hedge token.
	start := time.Now()
	v, target, hedged, err := Hedged(context.Background(), []string{"bad", "good"}, time.Hour,
		func() bool { return false }, nil,
		func(ctx context.Context, t string) (string, error) {
			if t == "bad" {
				return "", errors.New("refused")
			}
			return "ok", nil
		})
	if err != nil || v != "ok" || target != "good" {
		t.Fatalf("Hedged = (%q, %q, %t, %v), want failover to good", v, target, hedged, err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("failover waited for the hedge delay")
	}
}

func TestHedgedAllFail(t *testing.T) {
	first := errors.New("first")
	_, _, _, err := Hedged(context.Background(), []string{"a", "b"}, time.Millisecond,
		nil, nil,
		func(ctx context.Context, t string) (int, error) {
			if t == "a" {
				return 0, first
			}
			return 0, errors.New("second")
		})
	if !errors.Is(err, first) {
		t.Fatalf("err = %v, want the first error", err)
	}
}

func TestHedgeBudget(t *testing.T) {
	f, err := New(Config{
		Self:       "http://a",
		Peers:      []string{"http://a", "http://b"},
		HedgeRatio: 0.5, HedgeBurst: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := 0
	for i := 0; i < 5; i++ {
		if f.AllowHedge() {
			got++
		}
	}
	if got != 2 {
		t.Fatalf("burst grants = %d, want 2", got)
	}
	f.EarnHedge()
	f.EarnHedge() // 2 forwards x 0.5 = 1 token
	if !f.AllowHedge() {
		t.Fatal("earned token not granted")
	}
	if f.AllowHedge() {
		t.Fatal("over-granted beyond earned tokens")
	}
}

func TestProbeLoopDrivesDetector(t *testing.T) {
	f, err := New(Config{
		Self:          "http://a",
		Peers:         []string{"http://a", "http://b"},
		ProbeInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	probes := atomic.Int32{}
	f.Start(func(ctx context.Context, peer string) error {
		probes.Add(1)
		return errors.New("down")
	}, nil)
	deadline := time.Now().Add(5 * time.Second)
	for f.Detector().State("http://b") != Dead {
		if time.Now().After(deadline) {
			t.Fatalf("peer never went dead after %d failing probes", probes.Load())
		}
		time.Sleep(time.Millisecond)
	}
	f.Close()
	n := probes.Load()
	time.Sleep(20 * time.Millisecond)
	if probes.Load() != n {
		t.Fatal("prober still running after Close")
	}
}
