package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Config parameterizes a Fleet. Self and Peers are required; everything
// else has production defaults.
type Config struct {
	// Self is this node's advertised base URL. It must appear in Peers.
	Self string
	// Peers is the full static member list, Self included. Every node of
	// the fleet must be started with the same set (order is irrelevant).
	Peers []string
	// Replicas is the replication factor R: each digest's cached result
	// lives on this many ring-consecutive members (0 = 2). Clamped to the
	// fleet size.
	Replicas int
	// ProbeInterval is the /readyz probe period feeding the failure
	// detector (0 = 1 s).
	ProbeInterval time.Duration
	// HedgeAfter is how long a forwarded request waits on the home peer
	// before racing the replica (0 = 30 ms).
	HedgeAfter time.Duration
	// ForwardTimeout caps the sub-deadline given to one forwarded attempt
	// (0 = 5 s). The actual sub-deadline is the smaller of this and most
	// of the request's remaining budget.
	ForwardTimeout time.Duration
	// HedgeRatio/HedgeBurst bound hedge volume like the client's retry
	// budget: each forward earns HedgeRatio hedge tokens (capped at
	// HedgeBurst) and each hedge spends one, so a uniformly slow fleet
	// degrades to plain forwarding instead of doubling its own load
	// (ratio 0 = default 0.1; ratio < 0 disables hedging).
	HedgeRatio float64
	HedgeBurst int
	// Detector tunes the failure detector.
	Detector DetectorConfig
	// Transport is the HTTP transport for probes and forwards (nil =
	// http.DefaultTransport). Chaos tests inject partitions here.
	Transport http.RoundTripper
}

// Enabled reports whether cfg describes a real fleet: a self URL plus at
// least one other member.
func (c *Config) Enabled() bool { return c.Self != "" && len(c.Peers) > 1 }

func (c *Config) fill() {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	c.Replicas = min(c.Replicas, len(c.Peers))
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 30 * time.Millisecond
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 5 * time.Second
	}
	if c.HedgeRatio == 0 {
		c.HedgeRatio = 0.1
	}
	if c.HedgeBurst <= 0 {
		c.HedgeBurst = 10
	}
}

// Validate checks a fleet configuration before any node state is built.
func (c *Config) Validate() error {
	if c.Self == "" {
		return errors.New("fleet: Self URL is required")
	}
	seen := make(map[string]bool, len(c.Peers))
	for _, p := range c.Peers {
		if p == "" {
			return errors.New("fleet: empty peer URL")
		}
		if seen[p] {
			return fmt.Errorf("fleet: duplicate peer %q", p)
		}
		seen[p] = true
	}
	if !seen[c.Self] {
		return fmt.Errorf("fleet: self %q is not in the peer list", c.Self)
	}
	return nil
}

// Fleet is one node's view of the peer tier: the ring, the failure
// detector, the probe loop, and the hedge budget. Create with New, start
// the prober with Start, and Close before discarding.
type Fleet struct {
	cfg  Config
	ring *Ring
	det  *Detector

	hedgeMu     sync.Mutex
	hedgeTokens float64

	stop   chan struct{}
	wg     sync.WaitGroup
	closed sync.Once
}

// New builds a Fleet. cfg must Validate.
func New(cfg Config) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fill()
	var others []string
	for _, p := range cfg.Peers {
		if p != cfg.Self {
			others = append(others, p)
		}
	}
	return &Fleet{
		cfg:         cfg,
		ring:        NewRing(cfg.Peers),
		det:         NewDetector(others, cfg.Detector),
		hedgeTokens: float64(cfg.HedgeBurst),
		stop:        make(chan struct{}),
	}, nil
}

// Config returns the filled configuration.
func (f *Fleet) Config() Config { return f.cfg }

// Self returns this node's advertised URL.
func (f *Fleet) Self() string { return f.cfg.Self }

// Members returns the full member list (sorted).
func (f *Fleet) Members() []string { return f.ring.Members() }

// Detector exposes the failure detector for outcome reporting.
func (f *Fleet) Detector() *Detector { return f.det }

// Owners returns key's replica set in ring order (health-blind).
func (f *Fleet) Owners(key uint64) []string { return f.ring.Owners(key, f.cfg.Replicas) }

// IsOwner reports whether this node is in key's replica set.
func (f *Fleet) IsOwner(key uint64) bool {
	for _, o := range f.Owners(key) {
		if o == f.cfg.Self {
			return true
		}
	}
	return false
}

// Route returns key's replica set reordered by health — alive owners in
// ring order, then suspect, then dead. Self always counts as alive: a
// node that is executing this call is, by construction, serving. The
// caller forwards to the first and hedges to the second.
func (f *Fleet) Route(key uint64) []string {
	owners := f.Owners(key)
	out := make([]string, 0, len(owners))
	for want := Alive; want <= Dead; want++ {
		for _, p := range owners {
			st := Alive
			if p != f.cfg.Self {
				st = f.det.State(p)
			}
			if st == want {
				out = append(out, p)
			}
		}
	}
	return out
}

// AllowHedge spends one hedge token; false means the budget is dry and
// the caller should wait out the primary instead of racing it.
func (f *Fleet) AllowHedge() bool {
	if f.cfg.HedgeRatio < 0 {
		return false
	}
	f.hedgeMu.Lock()
	defer f.hedgeMu.Unlock()
	if f.hedgeTokens < 1 {
		return false
	}
	f.hedgeTokens--
	return true
}

// EarnHedge credits the hedge budget for one completed forward.
func (f *Fleet) EarnHedge() {
	if f.cfg.HedgeRatio <= 0 {
		return
	}
	f.hedgeMu.Lock()
	f.hedgeTokens = min(f.hedgeTokens+f.cfg.HedgeRatio, float64(f.cfg.HedgeBurst))
	f.hedgeMu.Unlock()
}

// Start launches the probe loop: every ProbeInterval, probe is invoked
// for each other member and its verdict feeds the failure detector. The
// onProbe callback (nil ok) observes each outcome for metrics.
func (f *Fleet) Start(probe func(ctx context.Context, peer string) error, onProbe func(peer string, err error)) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		t := time.NewTicker(f.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
			}
			for _, p := range f.Members() {
				if p == f.cfg.Self {
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), f.cfg.ProbeInterval)
				err := probe(ctx, p)
				cancel()
				if err != nil {
					f.det.ReportFailure(p)
				} else {
					f.det.ReportSuccess(p)
				}
				if onProbe != nil {
					onProbe(p, err)
				}
				select {
				case <-f.stop:
					return
				default:
				}
			}
		}
	}()
}

// Go runs fn on a fleet-tracked goroutine (write-through, read-repair);
// Close waits for all of them, so tests get a clean goroutine baseline.
func (f *Fleet) Go(fn func()) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		fn()
	}()
}

// Close stops the prober and waits for tracked goroutines to finish.
func (f *Fleet) Close() {
	f.closed.Do(func() { close(f.stop) })
	f.wg.Wait()
}

// PeerStatus is one member's health snapshot for GET /v1/fleet.
type PeerStatus struct {
	URL   string  `json:"url"`
	Self  bool    `json:"self,omitempty"`
	State string  `json:"state"`
	Phi   float64 `json:"phi"`
}

// Snapshot reports every member's current verdict. Self is always alive —
// a node that can run the handler is, by construction, serving.
func (f *Fleet) Snapshot() []PeerStatus {
	out := make([]PeerStatus, 0, len(f.Members()))
	for _, p := range f.Members() {
		if p == f.cfg.Self {
			out = append(out, PeerStatus{URL: p, Self: true, State: Alive.String()})
			continue
		}
		out = append(out, PeerStatus{URL: p, State: f.det.State(p).String(), Phi: f.det.Phi(p)})
	}
	return out
}

// Hedged races call across targets, first response wins. The first
// target launches immediately; each later one launches when the previous
// attempt fails, or after `after` elapses with the in-flight attempts
// still silent and allowHedge grants a token (nil allowHedge = always).
// Losers are canceled on return. onLaunch (nil ok) observes each launch
// index, so callers can count hedges. Returns the winning value, the
// winning target, and whether the winner was a hedge (launch index > 0);
// when every target fails, the first error is returned.
func Hedged[T any](ctx context.Context, targets []string, after time.Duration,
	allowHedge func() bool, onLaunch func(i int),
	call func(ctx context.Context, target string) (T, error)) (T, string, bool, error) {

	var zero T
	if len(targets) == 0 {
		return zero, "", false, errors.New("fleet: no targets")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // stops the losers
	type outcome struct {
		val    T
		target string
		idx    int
		err    error
	}
	results := make(chan outcome, len(targets))
	launched, inFlight := 0, 0
	launch := func() {
		i := launched
		t := targets[i]
		launched++
		inFlight++
		if onLaunch != nil {
			onLaunch(i)
		}
		go func() {
			v, err := call(ctx, t)
			results <- outcome{val: v, target: t, idx: i, err: err}
		}()
	}
	launch()
	timer := time.NewTimer(after)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case <-timer.C:
			if launched < len(targets) && (allowHedge == nil || allowHedge()) {
				launch()
			}
			timer.Reset(after) // next hedge (or a retried budget grab) waits again
		case o := <-results:
			inFlight--
			if o.err == nil {
				return o.val, o.target, o.idx > 0, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			// A failed attempt frees its slot: fail over to the next target
			// immediately (no hedge token needed — this is failover, not a
			// race).
			if launched < len(targets) {
				launch()
			} else if inFlight == 0 {
				return zero, "", false, firstErr
			}
		case <-ctx.Done():
			return zero, "", false, ctx.Err()
		}
	}
}
