package fleet

import (
	"math"
	"sync"
	"time"
)

// State is a peer's health as judged by the failure detector.
type State int

const (
	// Alive: recent successes, low suspicion — route normally.
	Alive State = iota
	// Suspect: suspicion crossed the soft threshold or a request just
	// failed. A suspect peer is still tried, but demoted behind alive
	// replicas and hedged aggressively.
	Suspect
	// Dead: suspicion crossed the hard threshold or failures are
	// consecutive. Dead peers are routed around entirely until a probe or
	// request succeeds again.
	Dead
)

// String names the state for /v1/fleet and logs.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return "unknown"
}

// DetectorConfig tunes the failure detector. Zero values take defaults.
type DetectorConfig struct {
	// SuspectPhi and DeadPhi are the suspicion thresholds (defaults 2, 8).
	SuspectPhi float64
	DeadPhi    float64
	// FailuresToDead marks a peer dead after this many consecutive
	// reported failures regardless of timing (default 3).
	FailuresToDead int
	// MinInterval floors the expected heartbeat interval so one fast
	// probe burst cannot make the detector hair-triggered (default 100ms).
	MinInterval time.Duration
	// Now is the clock (tests inject a fake; default time.Now).
	Now func() time.Time
}

func (c *DetectorConfig) fill() {
	if c.SuspectPhi <= 0 {
		c.SuspectPhi = 2
	}
	if c.DeadPhi <= c.SuspectPhi {
		c.DeadPhi = max(8, c.SuspectPhi*2)
	}
	if c.FailuresToDead <= 0 {
		c.FailuresToDead = 3
	}
	if c.MinInterval <= 0 {
		c.MinInterval = 100 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Detector is a phi-accrual-style failure detector: rather than a binary
// timeout, it accrues a continuous suspicion level per peer from the
// history of successful-contact inter-arrival times (probe answers and
// forwarded-request successes both count). Suspicion is the time since
// the last success divided by the expected interval padded with its
// observed jitter:
//
//	phi = elapsed / (mean + 4*stddev)
//
// phi < SuspectPhi is Alive, phi >= DeadPhi is Dead, in between is
// Suspect. Reported request failures bias the verdict immediately: one
// failure demotes to at least Suspect, FailuresToDead consecutive ones to
// Dead — a refused connection should not wait out a probe interval. Any
// success resurrects the peer instantly; there is no quarantine, because
// the caller re-probes on its own schedule.
//
// All methods are safe for concurrent use.
type Detector struct {
	cfg DetectorConfig

	mu    sync.Mutex
	peers map[string]*peerHealth
}

type peerHealth struct {
	lastOK time.Time
	// mean/vari are exponential moments of the success inter-arrival time
	// (ns); seen counts successes.
	mean, vari float64
	seen       int
	fails      int // consecutive failures since the last success
}

// NewDetector builds a detector for the given peers.
func NewDetector(peers []string, cfg DetectorConfig) *Detector {
	cfg.fill()
	d := &Detector{cfg: cfg, peers: make(map[string]*peerHealth, len(peers))}
	now := cfg.Now()
	for _, p := range peers {
		// Start optimistic: a fresh peer is Alive with "last success now",
		// so a cold fleet routes normally and the first probe round settles
		// the truth.
		d.peers[p] = &peerHealth{lastOK: now}
	}
	return d
}

// ReportSuccess records a successful contact with peer (probe answer or
// forwarded request that completed).
func (d *Detector) ReportSuccess(peer string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.peers[peer]
	if !ok {
		return
	}
	now := d.cfg.Now()
	dt := float64(now.Sub(h.lastOK))
	if h.seen == 0 {
		h.mean = dt
	} else {
		const alpha = 0.2
		dev := dt - h.mean
		h.mean += alpha * dev
		h.vari = (1 - alpha) * (h.vari + alpha*dev*dev)
	}
	h.seen++
	h.lastOK = now
	h.fails = 0
}

// ReportFailure records a failed contact with peer.
func (d *Detector) ReportFailure(peer string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if h, ok := d.peers[peer]; ok {
		h.fails++
	}
}

// State returns the peer's current verdict. Unknown peers are Dead — the
// ring never produces them, so an unknown name is a caller bug routed
// around rather than crashed on.
func (d *Detector) State(peer string) State {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.peers[peer]
	if !ok {
		return Dead
	}
	return d.stateLocked(h)
}

func (d *Detector) stateLocked(h *peerHealth) State {
	if h.fails >= d.cfg.FailuresToDead {
		return Dead
	}
	phi := d.phiLocked(h)
	switch {
	case phi >= d.cfg.DeadPhi:
		return Dead
	case phi >= d.cfg.SuspectPhi || h.fails > 0:
		return Suspect
	}
	return Alive
}

// phiLocked computes the suspicion level for h.
func (d *Detector) phiLocked(h *peerHealth) float64 {
	elapsed := float64(d.cfg.Now().Sub(h.lastOK))
	expected := h.mean + 4*math.Sqrt(h.vari)
	expected = math.Max(expected, float64(d.cfg.MinInterval))
	return elapsed / expected
}

// Phi returns the peer's current suspicion level (for /v1/fleet).
func (d *Detector) Phi(peer string) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.peers[peer]
	if !ok {
		return math.Inf(1)
	}
	return d.phiLocked(h)
}

// Rank orders peers for routing: Alive first, then Suspect, then Dead,
// stable within a class — so the ring's preference order survives among
// equally healthy replicas and the home peer stays the home peer unless
// it is actually in trouble.
func (d *Detector) Rank(peers []string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(peers))
	for want := Alive; want <= Dead; want++ {
		for _, p := range peers {
			h, ok := d.peers[p]
			if ok && d.stateLocked(h) == want {
				out = append(out, p)
			} else if !ok && want == Dead {
				out = append(out, p)
			}
		}
	}
	return out
}

// Counts returns how many tracked peers are in each state.
func (d *Detector) Counts() (alive, suspect, dead int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, h := range d.peers {
		switch d.stateLocked(h) {
		case Alive:
			alive++
		case Suspect:
			suspect++
		default:
			dead++
		}
	}
	return
}
