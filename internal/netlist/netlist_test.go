package netlist

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/netgen"
	"bufferkit/internal/tree"
)

const sampleNet = `
# a small Y net
net clk_east
driver res 0.5 k 20
node n1 parent src res 0.4 cap 12 buffer
node n2 parent n1 res 0.1 cap 3 buffer allowed 0,2
node n3 parent n1 res 0 cap 0
sink s1 parent n2 res 0.2 cap 8 load 14 rat 950
sink s2 parent n3 res 0.3 cap 9 load 21 rat 1000 neg
`

func TestParseNetSample(t *testing.T) {
	net, err := ParseNet(strings.NewReader(sampleNet))
	if err != nil {
		t.Fatal(err)
	}
	if net.Name != "clk_east" {
		t.Fatalf("Name = %q", net.Name)
	}
	if net.Driver != (delay.Driver{R: 0.5, K: 20}) {
		t.Fatalf("Driver = %+v", net.Driver)
	}
	tr := net.Tree
	if tr.Len() != 6 || tr.NumSinks() != 2 || tr.NumBufferPositions() != 2 {
		t.Fatalf("shape: len=%d sinks=%d pos=%d", tr.Len(), tr.NumSinks(), tr.NumBufferPositions())
	}
	if got := tr.Verts[2].Allowed; !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Allowed = %v", got)
	}
	s2 := tr.Sinks()[1]
	if tr.Verts[s2].Pol != tree.Negative || tr.Verts[s2].Cap != 21 || tr.Verts[s2].RAT != 1000 {
		t.Fatalf("sink s2 = %+v", tr.Verts[s2])
	}
	if tr.Verts[3].EdgeR != 0 || tr.Verts[3].EdgeC != 0 {
		t.Fatalf("zero-RC edge lost: %+v", tr.Verts[3])
	}
}

func TestNetWriteParseFixedPoint(t *testing.T) {
	net, err := ParseNet(strings.NewReader(sampleNet))
	if err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	if err := WriteNet(&buf1, net); err != nil {
		t.Fatal(err)
	}
	net2, err := ParseNet(&buf1)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	var buf2 bytes.Buffer
	if err := WriteNet(&buf2, net2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() == "" || buf2.String() != mustWrite(t, net) {
		t.Fatalf("write∘parse not a fixed point:\n%s\nvs\n%s", mustWrite(t, net), buf2.String())
	}
	if !reflect.DeepEqual(net.Tree.Verts, net2.Tree.Verts) {
		t.Fatal("vertex data changed across round trip")
	}
}

func mustWrite(t *testing.T, net *Net) string {
	t.Helper()
	var b bytes.Buffer
	if err := WriteNet(&b, net); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestNetRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		tr := netgen.Random(netgen.Opts{Sinks: int(seed%17+17)%17 + 1, Seed: seed, NegativeSinkProb: 0.3})
		net := &Net{Name: "rnd", Tree: tr, Driver: delay.Driver{R: 0.25, K: 3}}
		var b bytes.Buffer
		if WriteNet(&b, net) != nil {
			return false
		}
		got, err := ParseNet(&b)
		if err != nil {
			return false
		}
		if got.Driver != net.Driver || got.Name != net.Name {
			return false
		}
		// Structure and parameters must survive exactly (names are
		// canonicalized by the writer, so compare everything else).
		a, c := tr.Verts, got.Tree.Verts
		if len(a) != len(c) {
			return false
		}
		for i := range a {
			x, y := a[i], c[i]
			x.Name, y.Name = "", ""
			if x.Allowed == nil {
				x.Allowed = []int{}
			}
			if y.Allowed == nil {
				y.Allowed = []int{}
			}
			if !reflect.DeepEqual(x, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParseNetErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"unknown directive", "frobnicate x\n", "unknown directive"},
		{"duplicate vertex", "node a parent src res 1 cap 1\nnode a parent src res 1 cap 1\nsink s parent a res 0 cap 0 load 1 rat 1\n", "duplicate vertex"},
		{"unknown parent", "node a parent nope res 1 cap 1\n", "unknown parent"},
		{"missing parent", "node a res 1 cap 1\n", "missing parent"},
		{"dangling token", "node a parent src res\n", "dangling token"},
		{"bad float", "node a parent src res abc cap 1\n", "bad res value"},
		{"sink missing load", "sink s parent src res 0 cap 0 rat 5\n", "missing load"},
		{"sink missing rat", "sink s parent src res 0 cap 0 load 5\n", "missing rat"},
		{"buffered sink", "sink s parent src res 0 cap 0 load 5 rat 5 buffer\n", "cannot be a buffer position"},
		{"neg on node", "node a parent src res 1 cap 1 neg\n", "neg applies to sinks"},
		{"allowed without buffer", "node a parent src res 1 cap 1 allowed 1\n", "allowed requires buffer"},
		{"bad allowed", "node a parent src res 1 cap 1 buffer allowed x\n", "bad allowed index"},
		{"allowed at end", "node a parent src res 1 cap 1 buffer allowed\n", "allowed needs"},
		{"empty tree", "# nothing\n", "source has no children"},
		{"leaf internal", "node a parent src res 1 cap 1\n", "is a leaf"},
		{"duplicate key", "node a parent src res 1 res 2 cap 1\n", "duplicate key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseNet(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestParseNetReportsLineNumbers(t *testing.T) {
	_, err := ParseNet(strings.NewReader("net x\n\nbogus y\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line 3", err)
	}
}

const sampleLib = `
# two types
buffer buf1 res 7 cin 0.7 delay 29 cost 1
buffer inv1 res 3.5 cin 1.5 delay 30 cost 2 inverting
`

func TestParseLibrarySample(t *testing.T) {
	lib, err := ParseLibrary(strings.NewReader(sampleLib))
	if err != nil {
		t.Fatal(err)
	}
	want := library.Library{
		{Name: "buf1", R: 7, Cin: 0.7, K: 29, Cost: 1},
		{Name: "inv1", R: 3.5, Cin: 1.5, K: 30, Cost: 2, Inverting: true},
	}
	if !reflect.DeepEqual(lib, want) {
		t.Fatalf("lib = %+v", lib)
	}
}

func TestLibraryRoundTrip(t *testing.T) {
	for _, lib := range []library.Library{
		library.Generate(8),
		library.GenerateWithInverters(16),
		{{Name: "", R: 1.25, Cin: 2.5, K: 0}},
	} {
		var b bytes.Buffer
		if err := WriteLibrary(&b, lib); err != nil {
			t.Fatal(err)
		}
		got, err := ParseLibrary(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(lib) {
			t.Fatalf("length %d vs %d", len(got), len(lib))
		}
		for i := range lib {
			w := lib[i]
			if w.Name == "" {
				w.Name = "b0"
			}
			if got[i] != w {
				t.Fatalf("type %d: %+v vs %+v", i, got[i], w)
			}
		}
	}
}

func TestParseLibraryErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"unknown directive", "net x\n", "unknown directive"},
		{"missing res", "buffer b cin 1\n", "missing res"},
		{"missing cin", "buffer b res 1\n", "missing cin"},
		{"fractional cost", "buffer b res 1 cin 1 cost 1.5\n", "nonnegative integer"},
		{"invalid electrical", "buffer b res -1 cin 1\n", "driving resistance"},
		{"empty", "\n", "empty"},
		{"no name", "buffer\n", "missing buffer name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseLibrary(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}
