// Package netlist reads and writes the repository's plain-text formats for
// nets and buffer libraries, so the CLIs can work on files and users can
// bring their own designs.
//
// Net format (units: kΩ, fF, ps; '#' starts a comment; parents must be
// declared before children; the source is the implicit vertex "src"):
//
//	net clk_east                        # optional net name
//	driver res 0.5 k 20                 # optional source driver
//	node n1 parent src res 0.4 cap 12 buffer
//	node n2 parent n1 res 0.1 cap 3 buffer allowed 0,2
//	node n3 parent n1 res 0 cap 0
//	sink s1 parent n2 res 0.2 cap 8 load 14 rat 950
//	sink s2 parent n3 res 0.3 cap 9 load 21 rat 1000 neg
//
// Library format:
//
//	buffer buf1 res 7 cin 0.7 delay 29 cost 1
//	buffer inv1 res 3.5 cin 1.5 delay 30 cost 2 inverting
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/tree"
)

// Net bundles everything a net file describes.
type Net struct {
	Name   string
	Tree   *tree.Tree
	Driver delay.Driver
}

// ParseNet reads a net file.
func ParseNet(r io.Reader) (*Net, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	b := tree.NewBuilder()
	b.SetName(0, "src")
	ids := map[string]int{"src": 0}
	net := &Net{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("netlist: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "net":
			if len(f) != 2 {
				return nil, fail("want: net <name>")
			}
			net.Name = f[1]
		case "driver":
			kv, err := keyVals(f[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			if net.Driver.R, err = fval(kv, "res", 0); err != nil {
				return nil, fail("%v", err)
			}
			if net.Driver.K, err = fval(kv, "k", 0); err != nil {
				return nil, fail("%v", err)
			}
		case "node", "sink":
			if len(f) < 2 {
				return nil, fail("missing vertex name")
			}
			name := f[1]
			if _, dup := ids[name]; dup {
				return nil, fail("duplicate vertex %q", name)
			}
			// Trailing bare flags ("buffer", "neg") before key/value pairs
			// are extracted first.
			rest := f[2:]
			var bufferable, neg bool
			var allowed []int
			kvFields := rest[:0:0]
			for i := 0; i < len(rest); i++ {
				switch rest[i] {
				case "buffer":
					bufferable = true
				case "neg":
					neg = true
				case "allowed":
					if i+1 >= len(rest) {
						return nil, fail("allowed needs a comma-separated index list")
					}
					i++
					for _, s := range strings.Split(rest[i], ",") {
						v, err := strconv.Atoi(s)
						if err != nil || v < 0 {
							return nil, fail("bad allowed index %q", s)
						}
						allowed = append(allowed, v)
					}
				default:
					kvFields = append(kvFields, rest[i])
				}
			}
			kv, err := keyVals(kvFields)
			if err != nil {
				return nil, fail("%v", err)
			}
			pname, ok := kv["parent"]
			if !ok {
				return nil, fail("missing parent")
			}
			parent, ok := ids[pname]
			if !ok {
				return nil, fail("unknown parent %q (parents must be declared first)", pname)
			}
			er, err := fval(kv, "res", 0)
			if err != nil {
				return nil, fail("%v", err)
			}
			ec, err := fval(kv, "cap", 0)
			if err != nil {
				return nil, fail("%v", err)
			}
			var id int
			if f[0] == "sink" {
				load, err := fvalRequired(kv, "load")
				if err != nil {
					return nil, fail("%v", err)
				}
				rat, err := fvalRequired(kv, "rat")
				if err != nil {
					return nil, fail("%v", err)
				}
				pol := tree.Positive
				if neg {
					pol = tree.Negative
				}
				if bufferable {
					return nil, fail("a sink cannot be a buffer position")
				}
				id = b.AddSinkPol(parent, er, ec, load, rat, pol)
			} else {
				if neg {
					return nil, fail("neg applies to sinks only")
				}
				switch {
				case bufferable && len(allowed) > 0:
					id = b.AddBufferPosRestricted(parent, er, ec, allowed)
				case bufferable:
					id = b.AddBufferPos(parent, er, ec)
				case len(allowed) > 0:
					return nil, fail("allowed requires buffer")
				default:
					id = b.AddInternal(parent, er, ec)
				}
			}
			if id >= 0 {
				b.SetName(id, name)
				ids[name] = id
			}
		default:
			return nil, fail("unknown directive %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: read: %w", err)
	}
	t, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	net.Tree = t
	return net, nil
}

// WriteNet writes a net file that ParseNet reproduces exactly.
func WriteNet(w io.Writer, net *Net) error {
	bw := bufio.NewWriter(w)
	if net.Name != "" {
		fmt.Fprintf(bw, "net %s\n", net.Name)
	}
	if net.Driver != (delay.Driver{}) {
		fmt.Fprintf(bw, "driver res %s k %s\n", g(net.Driver.R), g(net.Driver.K))
	}
	t := net.Tree
	names := canonicalNames(t)
	for v := 1; v < t.Len(); v++ {
		vert := &t.Verts[v]
		if vert.Kind == tree.Sink {
			fmt.Fprintf(bw, "sink %s parent %s res %s cap %s load %s rat %s",
				names[v], names[vert.Parent], g(vert.EdgeR), g(vert.EdgeC), g(vert.Cap), g(vert.RAT))
			if vert.Pol == tree.Negative {
				bw.WriteString(" neg")
			}
		} else {
			fmt.Fprintf(bw, "node %s parent %s res %s cap %s",
				names[v], names[vert.Parent], g(vert.EdgeR), g(vert.EdgeC))
			if vert.BufferOK {
				bw.WriteString(" buffer")
				if len(vert.Allowed) > 0 {
					a := append([]int(nil), vert.Allowed...)
					sort.Ints(a)
					parts := make([]string, len(a))
					for i, x := range a {
						parts[i] = strconv.Itoa(x)
					}
					fmt.Fprintf(bw, " allowed %s", strings.Join(parts, ","))
				}
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// canonicalNames returns unique vertex names: the stored name when present
// and unique, otherwise "v<i>". Vertex 0 is always "src".
func canonicalNames(t *tree.Tree) []string {
	names := make([]string, t.Len())
	used := map[string]bool{"src": true}
	names[0] = "src"
	for v := 1; v < t.Len(); v++ {
		n := t.Verts[v].Name
		if n == "" || used[n] {
			n = fmt.Sprintf("v%d", v)
		}
		for used[n] {
			n = "x" + n
		}
		used[n] = true
		names[v] = n
	}
	return names
}

// ParseLibrary reads a library file.
func ParseLibrary(r io.Reader) (library.Library, error) {
	sc := bufio.NewScanner(r)
	var lib library.Library
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("netlist: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		if f[0] != "buffer" {
			return nil, fail("unknown directive %q", f[0])
		}
		if len(f) < 2 {
			return nil, fail("missing buffer name")
		}
		buf := library.Buffer{Name: f[1]}
		rest := f[2:]
		kvFields := rest[:0:0]
		for _, tok := range rest {
			if tok == "inverting" {
				buf.Inverting = true
			} else {
				kvFields = append(kvFields, tok)
			}
		}
		kv, err := keyVals(kvFields)
		if err != nil {
			return nil, fail("%v", err)
		}
		if buf.R, err = fvalRequired(kv, "res"); err != nil {
			return nil, fail("%v", err)
		}
		if buf.Cin, err = fvalRequired(kv, "cin"); err != nil {
			return nil, fail("%v", err)
		}
		if buf.K, err = fval(kv, "delay", 0); err != nil {
			return nil, fail("%v", err)
		}
		cost, err := fval(kv, "cost", 0)
		if err != nil {
			return nil, fail("%v", err)
		}
		if cost != float64(int(cost)) || cost < 0 {
			return nil, fail("cost must be a nonnegative integer, got %v", cost)
		}
		buf.Cost = int(cost)
		lib = append(lib, buf)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: read: %w", err)
	}
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	return lib, nil
}

// WriteLibrary writes a library file that ParseLibrary reproduces exactly.
func WriteLibrary(w io.Writer, lib library.Library) error {
	bw := bufio.NewWriter(w)
	for i, b := range lib {
		name := b.Name
		if name == "" {
			name = fmt.Sprintf("b%d", i)
		}
		fmt.Fprintf(bw, "buffer %s res %s cin %s delay %s cost %d", name, g(b.R), g(b.Cin), g(b.K), b.Cost)
		if b.Inverting {
			bw.WriteString(" inverting")
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// keyVals parses alternating "key value" tokens.
func keyVals(f []string) (map[string]string, error) {
	if len(f)%2 != 0 {
		return nil, fmt.Errorf("dangling token %q", f[len(f)-1])
	}
	kv := make(map[string]string, len(f)/2)
	for i := 0; i < len(f); i += 2 {
		if _, dup := kv[f[i]]; dup {
			return nil, fmt.Errorf("duplicate key %q", f[i])
		}
		kv[f[i]] = f[i+1]
	}
	return kv, nil
}

func fval(kv map[string]string, key string, def float64) (float64, error) {
	s, ok := kv[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s value %q", key, s)
	}
	return v, nil
}

func fvalRequired(kv map[string]string, key string) (float64, error) {
	if _, ok := kv[key]; !ok {
		return 0, fmt.Errorf("missing %s", key)
	}
	return fval(kv, key, 0)
}

// g formats a float with full round-trip precision.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
