package netlist

import (
	"bytes"
	"os"
	"path/filepath"
	"slices"
	"testing"
)

// FuzzNetRoundTrip asserts WriteNet is a canonicalizing inverse of
// ParseNet: anything ParseNet accepts must serialize, re-parse, and
// re-serialize to the identical bytes (write∘parse is a fixed point), with
// the tree structure preserved. Seeded with the repository's testdata
// nets.
func FuzzNetRoundTrip(f *testing.F) {
	for _, name := range []string{"line.net", "random12.net"} {
		data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("net tiny\ndriver res 0.2 k 15\nnode n1 parent src res 0.4 cap 12 buffer\nsink s1 parent n1 res 0.2 cap 8 load 14 rat 950\n")

	f.Fuzz(func(t *testing.T, in string) {
		net, err := ParseNet(bytes.NewReader([]byte(in)))
		if err != nil {
			t.Skip() // invalid inputs are ParseNet's to reject, not ours
		}
		var first bytes.Buffer
		if err := WriteNet(&first, net); err != nil {
			t.Fatalf("WriteNet rejected a parsed net: %v", err)
		}
		net2, err := ParseNet(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("ParseNet rejected WriteNet output: %v\n%s", err, first.String())
		}
		if net2.Name != net.Name || net2.Driver != net.Driver {
			t.Fatalf("round trip changed name/driver: %+v vs %+v", net2, net)
		}
		if got, want := net2.Tree.Len(), net.Tree.Len(); got != want {
			t.Fatalf("round trip changed vertex count: %d != %d", got, want)
		}
		for i := range net.Tree.Verts {
			a, b := &net.Tree.Verts[i], &net2.Tree.Verts[i]
			if a.Parent != b.Parent || a.Kind != b.Kind || a.Pol != b.Pol ||
				a.BufferOK != b.BufferOK || !slices.Equal(a.Allowed, b.Allowed) ||
				a.EdgeR != b.EdgeR || a.EdgeC != b.EdgeC ||
				a.Cap != b.Cap || a.RAT != b.RAT {
				t.Fatalf("round trip changed vertex %d: %+v vs %+v", i, a, b)
			}
		}
		var second bytes.Buffer
		if err := WriteNet(&second, net2); err != nil {
			t.Fatalf("second WriteNet failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("WriteNet is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s",
				first.String(), second.String())
		}
	})
}
