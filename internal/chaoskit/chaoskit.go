// Package chaoskit is bufferkit's fault-injection toolkit. It exists for
// the TestChaos* suite: every resilience claim the server makes (load
// shedding, singleflight collapse, panic containment, client retry
// semantics) is proved against faults injected here rather than asserted
// from code reading.
//
// Three fault surfaces:
//
//   - Transport: an http.RoundTripper that drops, delays, or rewrites
//     requests, and can cut a response body mid-stream — the client-side
//     view of a misbehaving network.
//   - Listener: a net.Listener whose accepted connections reset after a
//     byte budget — the server-side view of a flaky L4 path.
//   - Chaos algorithms: "chaos-slow", "chaos-gate" and "chaos-panic"
//     engine algorithms registered with the bufferkit registry, so a test
//     can make the engine arbitrarily slow, block it deterministically, or
//     blow it up on demand through the public HTTP API.
//
// Everything here is deterministic: faults fire on a scripted schedule,
// never randomly, so chaos tests are reproducible failures, not flaky
// ones.
package chaoskit

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Fault scripts the treatment of one request through Transport. The zero
// value is a clean passthrough.
type Fault struct {
	// Drop fails the request immediately with a synthetic connection
	// error, before anything is sent.
	Drop bool
	// Delay pauses before forwarding (or before the synthetic response).
	// The request context is honored during the pause.
	Delay time.Duration
	// Status, when nonzero, synthesizes a response with this status code,
	// Header and Body instead of forwarding to the base transport.
	Status int
	Header http.Header
	Body   string
	// CutBodyAfter, when positive, forwards the request but truncates the
	// response body with a connection error after this many bytes — a
	// mid-stream cut, as seen from a reset TCP connection.
	CutBodyAfter int64
}

// Transport is a fault-injecting http.RoundTripper. Faults are consumed
// in FIFO order, one per request; when the script is empty requests pass
// through untouched. Safe for concurrent use.
type Transport struct {
	// Base handles forwarded requests (nil = http.DefaultTransport).
	Base http.RoundTripper

	mu     sync.Mutex
	script []Fault
	sent   int
}

// Push appends faults to the script.
func (t *Transport) Push(faults ...Fault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.script = append(t.script, faults...)
}

// Requests reports how many requests the transport has seen — the
// attempt counter chaos tests assert retry budgets against.
func (t *Transport) Requests() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sent
}

// next pops the next scripted fault (zero Fault when the script is dry).
func (t *Transport) next() Fault {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sent++
	if len(t.script) == 0 {
		return Fault{}
	}
	f := t.script[0]
	t.script = t.script[1:]
	return f
}

// errInjected is the synthetic connection failure for Drop and body cuts.
type errInjected struct{ op string }

func (e *errInjected) Error() string { return "chaoskit: injected " + e.op }

// Timeout marks the injected error as a timeout so net.Error consumers
// treat it like a real dead connection.
func (e *errInjected) Timeout() bool   { return true }
func (e *errInjected) Temporary() bool { return true }

// RoundTrip applies the next scripted fault to req.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.next()
	if f.Delay > 0 {
		select {
		case <-time.After(f.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if f.Drop {
		// Drain and close the body like a real transport would on a
		// connection failure, so callers can reuse buffers.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, &errInjected{op: "connection drop"}
	}
	if f.Status != 0 {
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		h := f.Header
		if h == nil {
			h = http.Header{}
		}
		return &http.Response{
			Status:        fmt.Sprintf("%d %s", f.Status, http.StatusText(f.Status)),
			StatusCode:    f.Status,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        h.Clone(),
			Body:          io.NopCloser(strings.NewReader(f.Body)),
			ContentLength: int64(len(f.Body)),
			Request:       req,
		}, nil
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if f.CutBodyAfter > 0 {
		resp.Body = &cutBody{rc: resp.Body, remaining: f.CutBodyAfter}
	}
	return resp, nil
}

// cutBody truncates a response body with a synthetic connection error
// after a byte budget.
type cutBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, &errInjected{op: "mid-stream cut"}
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.rc.Read(p)
	c.remaining -= int64(n)
	if err == nil && c.remaining <= 0 {
		// Deliver the bytes read so far; the next Read reports the cut.
		return n, nil
	}
	return n, err
}

func (c *cutBody) Close() error { return c.rc.Close() }

// Listener wraps a net.Listener so every accepted connection resets
// (closes abruptly) after writing MaxWriteBytes — the server-side shape
// of a flaky network path. MaxWriteBytes <= 0 passes connections through
// untouched.
type Listener struct {
	net.Listener
	// MaxWriteBytes is the per-connection write budget before the reset.
	MaxWriteBytes int64
}

// Accept wraps the accepted connection with the write budget.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil || l.MaxWriteBytes <= 0 {
		return c, err
	}
	return &limitConn{Conn: c, remaining: l.MaxWriteBytes}, nil
}

// limitConn closes the connection once its write budget is spent.
type limitConn struct {
	net.Conn
	mu        sync.Mutex
	remaining int64
}

func (c *limitConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining <= 0 {
		c.Conn.Close()
		return 0, &errInjected{op: "connection reset"}
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.Conn.Write(p)
	c.remaining -= int64(n)
	if err == nil && c.remaining <= 0 {
		c.Conn.Close()
		return n, &errInjected{op: "connection reset"}
	}
	return n, err
}
