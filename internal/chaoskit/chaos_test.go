package chaoskit_test

// The TestChaos* suite: end-to-end proof of graceful degradation. A real
// bufferkitd handler is served over real sockets, the public client talks
// to it, and chaoskit injects the faults. Every scenario also gates on
// goroutine leaks — resilience that leaks a goroutine per fault is a slow
// outage, not resilience. CI runs this suite separately under -race
// (`go test -race -run 'TestChaos' ./...`).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"bufferkit/client"
	"bufferkit/internal/chaoskit"
	"bufferkit/internal/server"
)

func TestMain(m *testing.M) {
	chaoskit.RegisterAlgorithms()
	os.Exit(m.Run())
}

func readTestdata(t testing.TB, name string) string {
	t.Helper()
	b, err := os.ReadFile("../../testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// distinctNet renames the line.net payload so each request gets its own
// cache key (and therefore its own engine run).
func distinctNet(t testing.TB, i int) string {
	t.Helper()
	return strings.Replace(readTestdata(t, "line.net"), "net line", fmt.Sprintf("net line%d", i), 1)
}

// leakCheck snapshots the goroutine count and returns a gate that fails
// the test if it has not returned to baseline.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if n := runtime.NumGoroutine(); n <= before {
				return
			} else if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, n, buf[:runtime.Stack(buf, true)])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// testRig is one chaos scenario's fixture: a real server over a real
// socket, a client with its own transport, and metric access.
type testRig struct {
	srv    *server.Server
	ts     *httptest.Server
	client *client.Client
	tr     *http.Transport
}

func newRig(t *testing.T, cfg server.Config, opts ...client.Option) *testRig {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	tr := &http.Transport{}
	opts = append([]client.Option{client.WithHTTPClient(&http.Client{Transport: tr})}, opts...)
	c, err := client.New(ts.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	rig := &testRig{srv: s, ts: ts, client: c, tr: tr}
	t.Cleanup(rig.close)
	return rig
}

// close tears the rig down; idempotent so tests can call it before their
// goroutine-leak gate and still leave the Cleanup registered.
func (r *testRig) close() {
	r.tr.CloseIdleConnections()
	r.ts.Close()
}

func (r *testRig) metric(t testing.TB, name string) int64 {
	t.Helper()
	m, err := r.client.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var n json.Number
	if err := json.Unmarshal(m[name], &n); err != nil {
		t.Fatalf("metric %q = %s: %v", name, m[name], err)
	}
	f, err := n.Float64()
	if err != nil {
		t.Fatal(err)
	}
	return int64(f)
}

func (r *testRig) waitMetric(t testing.TB, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for r.metric(t, name) != want {
		if time.Now().After(deadline) {
			t.Fatalf("metric %s = %d never reached %d", name, r.metric(t, name), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosSingleflightCollapse: 64 identical concurrent solves through
// the public API run the engine exactly once.
func TestChaosSingleflightCollapse(t *testing.T) {
	check := leakCheck(t)
	rig := newRig(t, server.Config{MaxConcurrent: 4})
	release := chaoskit.HoldGate()
	defer release()
	req := client.SolveRequest{
		Net:          readTestdata(t, "line.net"),
		Library:      readTestdata(t, "lib8.buf"),
		SolveOptions: client.SolveOptions{Algorithm: chaoskit.AlgoGate},
	}
	runsBefore := rig.metric(t, "engine_runs")

	const n = 64
	var wg sync.WaitGroup
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := rig.client.Solve(context.Background(), req)
			if err != nil {
				errc <- err
				return
			}
			if res.Buffers != 0 { // chaos-gate places no buffers
				errc <- fmt.Errorf("unexpected result %+v", res)
			}
		}()
	}
	// All 64 are in the handler, exactly one engine run holds the gate;
	// give the rest a beat to join the flight, then open it.
	rig.waitMetric(t, "solve_requests", n)
	rig.waitMetric(t, "in_flight_runs", 1)
	time.Sleep(20 * time.Millisecond)
	release()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if runs := rig.metric(t, "engine_runs"); runs != runsBefore+1 {
		t.Fatalf("engine_runs moved %d → %d for %d identical solves, want exactly +1",
			runsBefore, runs, n)
	}
	rig.close()
	check()
}

// TestChaosOverloadSheds: 4× offered load over engine capacity — every
// request terminates promptly as a result or a clean 429 with
// Retry-After; nothing hangs, the shed counters advance, and the
// goroutine count returns to baseline.
func TestChaosOverloadSheds(t *testing.T) {
	check := leakCheck(t)
	rig := newRig(t, server.Config{
		MaxConcurrent: 2,
		MaxQueue:      2,
		QueueTimeout:  50 * time.Millisecond,
	}, client.WithRetry(client.RetryPolicy{MaxAttempts: 1}))
	chaoskit.SetSlowDelay(100 * time.Millisecond)
	defer chaoskit.SetSlowDelay(50 * time.Millisecond)
	lib := readTestdata(t, "lib8.buf")

	const n = 16 // 4× the 2 slots + 2 queue positions
	type outcome struct {
		status  int
		elapsed time.Duration
	}
	outcomes := make(chan outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			_, err := rig.client.Solve(context.Background(), client.SolveRequest{
				Net: distinctNet(t, i), Library: lib,
				SolveOptions: client.SolveOptions{Algorithm: chaoskit.AlgoSlow},
			})
			o := outcome{status: http.StatusOK, elapsed: time.Since(start)}
			if err != nil {
				var apiErr *client.APIError
				if !errors.As(err, &apiErr) {
					t.Errorf("request %d died with a non-API error: %v", i, err)
					o.status = -1
				} else {
					o.status = apiErr.Status
					if apiErr.Status == http.StatusTooManyRequests && apiErr.RetryAfter <= 0 {
						t.Errorf("429 without a Retry-After hint: %+v", apiErr)
					}
				}
			}
			outcomes <- o
		}(i)
	}
	wg.Wait()
	close(outcomes)
	var solved, shed int
	var worstShed time.Duration
	for o := range outcomes {
		switch o.status {
		case http.StatusOK:
			solved++
		case http.StatusTooManyRequests:
			shed++
			if o.elapsed > worstShed {
				worstShed = o.elapsed
			}
		default:
			t.Errorf("terminal status %d, want 200 or 429", o.status)
		}
	}
	if solved+shed != n {
		t.Fatalf("solved %d + shed %d != %d offered", solved, shed, n)
	}
	if shed == 0 {
		t.Fatal("4× overload shed nothing — the queue is not bounding load")
	}
	if solved == 0 {
		t.Fatal("4× overload solved nothing — shedding everything is an outage, not degradation")
	}
	// A shed is a fast failure: bounded by queue timeout + slack, far
	// below what waiting for the full backlog would take.
	if worstShed > 2*time.Second {
		t.Fatalf("slowest shed took %v — sheds must fail fast", worstShed)
	}
	if rig.metric(t, "shed_total") != int64(shed) {
		t.Fatalf("shed_total = %d, client saw %d sheds", rig.metric(t, "shed_total"), shed)
	}
	rig.close()
	check()
}

// TestChaosPanicContained: an engine panic becomes a 500 with
// panics_total incremented, and the server keeps serving on the same
// connection pool.
func TestChaosPanicContained(t *testing.T) {
	log.SetOutput(io.Discard) // silence the expected panic stack
	defer log.SetOutput(os.Stderr)
	check := leakCheck(t)
	rig := newRig(t, server.Config{})
	lib := readTestdata(t, "lib8.buf")
	_, err := rig.client.Solve(context.Background(), client.SolveRequest{
		Net: readTestdata(t, "line.net"), Library: lib,
		SolveOptions: client.SolveOptions{Algorithm: chaoskit.AlgoPanic},
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("panicking solve = %v, want a 500 APIError", err)
	}
	if got := rig.metric(t, "panics_total"); got != 1 {
		t.Fatalf("panics_total = %d, want 1", got)
	}
	// The server is still alive, correct, and countable.
	res, err := rig.client.Solve(context.Background(), client.SolveRequest{
		Net: readTestdata(t, "line.net"), Library: lib,
	})
	if err != nil || res.Buffers <= 0 {
		t.Fatalf("solve after panic: %+v, %v", res, err)
	}
	if got := rig.metric(t, "panics_total"); got != 1 {
		t.Fatalf("panics_total after recovery = %d, want still 1", got)
	}
	rig.close()
	check()
}

// TestChaosRetryRecoversFromShed: a request shed by a saturated server is
// retried after the server's Retry-After hint and succeeds once capacity
// frees up — the end-to-end client/server backpressure loop.
func TestChaosRetryRecoversFromShed(t *testing.T) {
	check := leakCheck(t)
	rig := newRig(t, server.Config{MaxConcurrent: 1, MaxQueue: -1})
	lib := readTestdata(t, "lib8.buf")
	release := chaoskit.HoldGate()
	defer release()
	gateDone := make(chan error, 1)
	go func() {
		_, err := rig.client.Solve(context.Background(), client.SolveRequest{
			Net: readTestdata(t, "line.net"), Library: lib,
			SolveOptions: client.SolveOptions{Algorithm: chaoskit.AlgoGate},
		})
		gateDone <- err
	}()
	rig.waitMetric(t, "in_flight_runs", 1)

	// This solve is shed (429 + Retry-After ~1s), sleeps, retries, and
	// must succeed because the gate opens meanwhile.
	retried := make(chan error, 1)
	go func() {
		_, err := rig.client.Solve(context.Background(), client.SolveRequest{
			Net: distinctNet(t, 1), Library: lib,
		})
		retried <- err
	}()
	rig.waitMetric(t, "shed_total", 1)
	release()
	if err := <-gateDone; err != nil {
		t.Fatalf("gated solve failed: %v", err)
	}
	if err := <-retried; err != nil {
		t.Fatalf("shed solve was not recovered by the retry loop: %v", err)
	}
	rig.close()
	check()
}

// TestChaosDeadlineShedFastFail: with a warm EWMA and a saturated server,
// a request whose budget cannot cover a solve fails in microseconds, not
// after queueing for its whole deadline.
func TestChaosDeadlineShedFastFail(t *testing.T) {
	check := leakCheck(t)
	rig := newRig(t, server.Config{MaxConcurrent: 1},
		client.WithRetry(client.RetryPolicy{MaxAttempts: 1}))
	lib := readTestdata(t, "lib8.buf")
	chaoskit.SetSlowDelay(80 * time.Millisecond)
	defer chaoskit.SetSlowDelay(50 * time.Millisecond)
	if _, err := rig.client.Solve(context.Background(), client.SolveRequest{
		Net: readTestdata(t, "line.net"), Library: lib,
		SolveOptions: client.SolveOptions{Algorithm: chaoskit.AlgoSlow},
	}); err != nil {
		t.Fatalf("EWMA warmup solve: %v", err)
	}
	release := chaoskit.HoldGate()
	defer release()
	gateDone := make(chan error, 1)
	go func() {
		_, err := rig.client.Solve(context.Background(), client.SolveRequest{
			Net: distinctNet(t, 1), Library: lib,
			SolveOptions: client.SolveOptions{Algorithm: chaoskit.AlgoGate},
		})
		gateDone <- err
	}()
	rig.waitMetric(t, "in_flight_runs", 1)

	start := time.Now()
	_, err := rig.client.Solve(context.Background(), client.SolveRequest{
		Net: distinctNet(t, 2), Library: lib,
		SolveOptions: client.SolveOptions{TimeoutMs: 1},
	})
	elapsed := time.Since(start)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("doomed solve = %v, want 429", err)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline shed took %v — it must fail fast, not queue", elapsed)
	}
	if rig.metric(t, "shed_deadline") != 1 {
		t.Fatalf("shed_deadline = %d, want 1", rig.metric(t, "shed_deadline"))
	}
	release()
	if err := <-gateDone; err != nil {
		t.Fatalf("gated solve failed: %v", err)
	}
	rig.close()
	check()
}

// TestChaosPartialBatchStreamCut: a mid-NDJSON connection cut surfaces
// from the stream as an error on attempt #1 — a partially consumed batch
// is never silently re-run.
func TestChaosPartialBatchStreamCut(t *testing.T) {
	check := leakCheck(t)
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ft := &chaoskit.Transport{Base: &http.Transport{}}
	defer ft.Base.(*http.Transport).CloseIdleConnections()
	c, err := client.New(ts.URL, client.WithHTTPClient(&http.Client{Transport: ft}))
	if err != nil {
		t.Fatal(err)
	}
	// Cut the batch response after the first line's worth of bytes.
	ft.Push(chaoskit.Fault{CutBodyAfter: 64})
	nets := make([]string, 8)
	for i := range nets {
		nets[i] = distinctNet(t, i)
	}
	stream, err := c.Batch(context.Background(), client.BatchRequest{
		Library: readTestdata(t, "lib8.buf"), Nets: nets, Ordered: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err = stream.Next(); err != nil {
			break
		}
	}
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatal("cut stream drained cleanly — the truncation was invisible")
	}
	stream.Close()
	if got := ft.Requests(); got != 1 {
		t.Fatalf("transport saw %d requests — a partially consumed stream must never be retried", got)
	}
	ts.Close()
	check()
}

// TestChaosListenerReset: connections that reset after a byte budget
// produce bounded, surfaced failures — no hangs, no leaks.
func TestChaosListenerReset(t *testing.T) {
	check := leakCheck(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: server.New(server.Config{}).Handler()}
	go hs.Serve(&chaoskit.Listener{Listener: ln, MaxWriteBytes: 100})
	defer hs.Close()
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	c, err := client.New("http://"+ln.Addr().String(),
		client.WithHTTPClient(&http.Client{Transport: tr}),
		client.WithRetry(client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Solve(ctx, client.SolveRequest{
		Net: readTestdata(t, "line.net"), Library: readTestdata(t, "lib8.buf"),
	}); err == nil {
		t.Fatal("solve through a 100-byte resetting listener succeeded?")
	} else if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("solve hung until the test deadline: %v", err)
	}
	hs.Close()
	check()
}

// TestChaosHedgedSolve: a delayed first attempt is overtaken by the
// hedge launched after the latency hint.
func TestChaosHedgedSolve(t *testing.T) {
	check := leakCheck(t)
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ft := &chaoskit.Transport{Base: &http.Transport{}}
	defer ft.Base.(*http.Transport).CloseIdleConnections()
	c, err := client.New(ts.URL,
		client.WithHTTPClient(&http.Client{Transport: ft}),
		client.WithHedging(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// First attempt stalls 5s in the network; the hedge passes clean.
	ft.Push(chaoskit.Fault{Delay: 5 * time.Second})
	start := time.Now()
	res, err := c.Solve(context.Background(), client.SolveRequest{
		Net: readTestdata(t, "line.net"), Library: readTestdata(t, "lib8.buf"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Buffers <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("hedged solve took %v — the hedge did not win", elapsed)
	}
	if got := ft.Requests(); got != 2 {
		t.Fatalf("transport saw %d requests, want original + hedge", got)
	}
	ts.Close()
	check()
}
