package chaoskit

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bufferkit"
)

// Chaos algorithm registry names. RegisterAlgorithms installs them.
const (
	// AlgoSlow sleeps for the configured delay (SetSlowDelay) before
	// returning a trivial result; the request context is honored.
	AlgoSlow = "chaos-slow"
	// AlgoGate blocks every Solve until the gate opened by HoldGate is
	// released; the request context is honored.
	AlgoGate = "chaos-gate"
	// AlgoPanic panics inside the engine run.
	AlgoPanic = "chaos-panic"
)

// PanicMessage is the value AlgoPanic panics with.
const PanicMessage = "chaoskit: injected engine panic"

var (
	registerOnce sync.Once

	// slowDelayNS is the AlgoSlow sleep, in nanoseconds.
	slowDelayNS atomic.Int64

	// gateMu guards gate, the channel AlgoGate blocks on. A nil gate is
	// open (no blocking).
	gateMu sync.Mutex
	gate   chan struct{}
)

// RegisterAlgorithms installs the chaos algorithms in the bufferkit
// registry. Idempotent; safe from multiple test packages in one process.
func RegisterAlgorithms() {
	registerOnce.Do(func() {
		slowDelayNS.Store(int64(50 * time.Millisecond))
		bufferkit.Register(AlgoSlow, func() bufferkit.Algorithm { return chaosAlgo{name: AlgoSlow} })
		bufferkit.Register(AlgoGate, func() bufferkit.Algorithm { return chaosAlgo{name: AlgoGate} })
		bufferkit.Register(AlgoPanic, func() bufferkit.Algorithm { return chaosAlgo{name: AlgoPanic} })
	})
}

// SetSlowDelay configures how long AlgoSlow holds an engine slot.
func SetSlowDelay(d time.Duration) { slowDelayNS.Store(int64(d)) }

// HoldGate closes the AlgoGate path: every Solve blocks until the
// returned release function is called. Release is idempotent.
func HoldGate() (release func()) {
	ch := make(chan struct{})
	gateMu.Lock()
	gate = ch
	gateMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			gateMu.Lock()
			if gate == ch {
				gate = nil
			}
			gateMu.Unlock()
			close(ch)
		})
	}
}

// canceled wraps a fired context error per the Algorithm contract: on
// cancellation, Solve returns an error wrapping bufferkit.ErrCanceled.
func canceled(ctx context.Context) error {
	return fmt.Errorf("%w: %v", bufferkit.ErrCanceled, ctx.Err())
}

// chaosAlgo implements bufferkit.Algorithm for the three chaos behaviors.
type chaosAlgo struct{ name string }

func (a chaosAlgo) Name() string { return a.name }

func (a chaosAlgo) Description() string {
	return "chaoskit fault-injection algorithm (testing only)"
}

func (a chaosAlgo) Solve(ctx context.Context, t *bufferkit.Tree, cfg bufferkit.RunConfig) (*bufferkit.NetResult, error) {
	switch a.name {
	case AlgoPanic:
		panic(PanicMessage)
	case AlgoSlow:
		if d := time.Duration(slowDelayNS.Load()); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, canceled(ctx)
			}
		}
	case AlgoGate:
		gateMu.Lock()
		ch := gate
		gateMu.Unlock()
		if ch != nil {
			select {
			case <-ch:
			case <-ctx.Done():
				return nil, canceled(ctx)
			}
		}
	}
	// A trivial but well-formed result: no buffers anywhere.
	return &bufferkit.NetResult{
		Slack:     0,
		Placement: bufferkit.NewPlacement(t.Len()),
	}, nil
}
