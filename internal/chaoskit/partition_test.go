package chaoskit

import (
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestPartitionSymmetricCutAndHeal(t *testing.T) {
	p := NewPartition()
	p.Cut("a:1", "b:2")
	if !p.Blocked("a:1", "b:2") || !p.Blocked("b:2", "a:1") {
		t.Fatal("cut is not symmetric")
	}
	if p.Blocked("a:1", "c:3") {
		t.Fatal("unrelated pair blocked")
	}
	p.Heal("b:2", "a:1") // heal in the other orientation
	if p.Blocked("a:1", "b:2") {
		t.Fatal("heal did not restore the pair")
	}
	p.Isolate("a:1", "b:2", "c:3", "a:1")
	if p.Cuts() != 2 {
		t.Fatalf("Isolate cut %d pairs, want 2", p.Cuts())
	}
	p.HealAll()
	if p.Cuts() != 0 {
		t.Fatal("HealAll left cuts behind")
	}
}

func TestPartitionCutForHealsOnSchedule(t *testing.T) {
	p := NewPartition()
	p.CutFor("a:1", "b:2", 30*time.Millisecond)
	if !p.Blocked("a:1", "b:2") {
		t.Fatal("CutFor did not cut immediately")
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Blocked("a:1", "b:2") {
		if time.Now().After(deadline) {
			t.Fatal("CutFor never healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPartitionTransport(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	host := srv.Listener.Addr().String()

	p := NewPartition()
	hc := &http.Client{Transport: &PartitionTransport{Self: "self:1", Part: p}}

	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("healed request failed: %v", err)
	}
	resp.Body.Close()

	p.Cut("self:1", host)
	_, err = hc.Get(srv.URL)
	if err == nil {
		t.Fatal("partitioned request succeeded")
	}
	var nerr net.Error
	if ok := asNetError(err, &nerr); !ok || !nerr.Timeout() {
		t.Fatalf("partition error %v is not a net.Error timeout", err)
	}

	p.Heal("self:1", host)
	resp, err = hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("request after heal failed: %v", err)
	}
	resp.Body.Close()
}

// asNetError unwraps url.Error wrapping to find a net.Error.
func asNetError(err error, target *net.Error) bool {
	for err != nil {
		if ne, ok := err.(net.Error); ok {
			*target = ne
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
