package chaoskit

import (
	"net/http"
	"sync"
	"time"
)

// Partition scripts symmetric network partitions between fleet peers:
// while a pair is cut, every request between its two endpoints (either
// direction) fails with a synthetic connection error. Pairs are keyed by
// host (URL host:port), so the same Partition instance can be shared by
// every node's PartitionTransport to model one network. Heals can be
// immediate (Heal/HealAll) or scheduled (CutFor), so fleet chaos tests
// can script split-brain-then-heal without sleeping in the fault layer.
//
// Like every chaoskit fault, partitions are deterministic: traffic is
// dropped if and only if the pair is currently cut.
type Partition struct {
	mu  sync.Mutex
	cut map[[2]string]bool
}

// NewPartition returns an empty (fully healed) partition script.
func NewPartition() *Partition {
	return &Partition{cut: make(map[[2]string]bool)}
}

// pairKey normalizes an unordered host pair.
func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Cut drops all traffic between hosts a and b, both directions, until
// healed.
func (p *Partition) Cut(a, b string) {
	p.mu.Lock()
	p.cut[pairKey(a, b)] = true
	p.mu.Unlock()
}

// CutFor cuts the pair now and heals it automatically after d. The
// returned timer can stop the scheduled heal.
func (p *Partition) CutFor(a, b string, d time.Duration) *time.Timer {
	p.Cut(a, b)
	return time.AfterFunc(d, func() { p.Heal(a, b) })
}

// Isolate cuts host a from every host in others — the "one node falls
// off the network" script.
func (p *Partition) Isolate(a string, others ...string) {
	for _, o := range others {
		if o != a {
			p.Cut(a, o)
		}
	}
}

// Heal restores traffic between a and b.
func (p *Partition) Heal(a, b string) {
	p.mu.Lock()
	delete(p.cut, pairKey(a, b))
	p.mu.Unlock()
}

// HealAll restores all traffic.
func (p *Partition) HealAll() {
	p.mu.Lock()
	p.cut = make(map[[2]string]bool)
	p.mu.Unlock()
}

// Blocked reports whether traffic between a and b is currently dropped.
func (p *Partition) Blocked(a, b string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cut[pairKey(a, b)]
}

// Cuts returns the number of currently cut pairs.
func (p *Partition) Cuts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.cut)
}

// PartitionTransport is the http.RoundTripper one node plugs into its
// fleet client to live inside a Partition: requests to a host the node is
// cut from fail immediately with a synthetic connection error (a
// net.Error timeout, like a dropped SYN), everything else forwards to
// Base. Probes and forwards both go through it, so the failure detector
// sees the partition exactly as it would a dead network path.
type PartitionTransport struct {
	// Self is this node's own host (host:port), one endpoint of every
	// check.
	Self string
	// Part is the shared partition script.
	Part *Partition
	// Base handles unblocked requests (nil = http.DefaultTransport).
	Base http.RoundTripper
}

// RoundTrip drops the request when the target host is partitioned away.
func (t *PartitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Part != nil && t.Part.Blocked(t.Self, req.URL.Host) {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &errInjected{op: "partition drop " + t.Self + " -x- " + req.URL.Host}
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}
