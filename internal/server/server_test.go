package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"bufferkit"
)

// readTestdata loads a repository testdata file as a string payload.
func readTestdata(t testing.TB, name string) string {
	t.Helper()
	b, err := os.ReadFile("../../testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// netText renders a generated tree as .net payload text.
func netText(t testing.TB, tr *bufferkit.Tree, name string, drv bufferkit.Driver) string {
	t.Helper()
	var buf bytes.Buffer
	if err := bufferkit.WriteNet(&buf, &bufferkit.Net{Name: name, Tree: tr, Driver: drv}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// post sends body as JSON to the handler and returns the recorded reply.
func post(t testing.TB, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t testing.TB, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// decodeInto decodes a recorded JSON body.
func decodeInto(t testing.TB, rec *httptest.ResponseRecorder, dst any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), dst); err != nil {
		t.Fatalf("bad JSON body: %v\n%s", err, rec.Body.String())
	}
}

// metricsMap fetches GET /metrics as raw JSON values. Values stay raw
// because the map mixes numbers (counters), strings (go_version) and
// objects (solve_latency_ms).
func metricsMap(t testing.TB, h http.Handler) map[string]json.RawMessage {
	t.Helper()
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, rec.Body.String())
	}
	return m
}

// metric fetches one numeric counter from GET /metrics.
func metric(t testing.TB, h http.Handler, name string) int64 {
	t.Helper()
	m := metricsMap(t, h)
	v, ok := m[name]
	if !ok {
		t.Fatalf("metric %q missing in /metrics", name)
	}
	var n json.Number
	if err := json.Unmarshal(v, &n); err != nil {
		t.Fatalf("metric %q = %s: %v", name, v, err)
	}
	f, err := n.Float64()
	if err != nil {
		t.Fatalf("metric %q = %q: %v", name, n, err)
	}
	return int64(f)
}

// checkNoGoroutineLeak records the goroutine count and returns a function
// that fails the test if the count has not returned to (near) baseline.
func checkNoGoroutineLeak(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC() // nudge finished goroutines to exit
			if n := runtime.NumGoroutine(); n <= before {
				return
			} else if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, n, buf[:runtime.Stack(buf, true)])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestSolveHappyPath(t *testing.T) {
	h := New(Config{}).Handler()
	req := solveRequest{Net: readTestdata(t, "line.net"), Library: readTestdata(t, "lib8.buf")}
	rec := post(t, h, "/v1/solve", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp solveResponse
	decodeInto(t, rec, &resp)
	if resp.Net != "line" || resp.Algorithm != "new" || resp.Cached {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Buffers <= 0 || len(resp.Placement) != resp.Buffers {
		t.Fatalf("placement inconsistent: %+v", resp)
	}
	// Cross-check the reported slack against a direct Solver run.
	net, err := bufferkit.ParseNet(strings.NewReader(req.Net))
	if err != nil {
		t.Fatal(err)
	}
	lib, err := bufferkit.ParseLibrary(strings.NewReader(req.Library))
	if err != nil {
		t.Fatal(err)
	}
	solver, err := bufferkit.NewSolver(bufferkit.WithLibrary(lib), bufferkit.WithDriver(net.Driver))
	if err != nil {
		t.Fatal(err)
	}
	defer solver.Close()
	want, err := solver.Run(context.Background(), net.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Slack != want.Slack {
		t.Fatalf("server slack %v != solver slack %v", resp.Slack, want.Slack)
	}
	if resp.Stats == nil {
		t.Fatal("stats missing with default options")
	}
}

// TestSolveCacheHit: the second identical request is served from the LRU
// cache with no engine run — asserted through the expvar counters.
func TestSolveCacheHit(t *testing.T) {
	h := New(Config{}).Handler()
	req := solveRequest{Net: readTestdata(t, "line.net"), Library: readTestdata(t, "lib8.buf")}

	first := post(t, h, "/v1/solve", req)
	if first.Code != http.StatusOK {
		t.Fatalf("first solve: %d %s", first.Code, first.Body.String())
	}
	if runs := metric(t, h, "engine_runs"); runs != 1 {
		t.Fatalf("engine_runs after first solve = %d, want 1", runs)
	}

	second := post(t, h, "/v1/solve", req)
	if second.Code != http.StatusOK {
		t.Fatalf("second solve: %d %s", second.Code, second.Body.String())
	}
	var warm, cold solveResponse
	decodeInto(t, first, &cold)
	decodeInto(t, second, &warm)
	if !warm.Cached || cold.Cached {
		t.Fatalf("cached flags: first %v second %v", cold.Cached, warm.Cached)
	}
	if warm.Slack != cold.Slack || warm.Buffers != cold.Buffers {
		t.Fatalf("cache returned a different result: %+v vs %+v", warm, cold)
	}
	if runs := metric(t, h, "engine_runs"); runs != 1 {
		t.Fatalf("engine_runs after cache hit = %d, want still 1 (no engine run)", runs)
	}
	if hits := metric(t, h, "cache_hits"); hits != 1 {
		t.Fatalf("cache_hits = %d, want 1", hits)
	}
	// Different options must miss: same payload, different algorithm.
	req.Algorithm = bufferkit.AlgoLillis
	third := post(t, h, "/v1/solve", req)
	if third.Code != http.StatusOK {
		t.Fatalf("lillis solve: %d %s", third.Code, third.Body.String())
	}
	if runs := metric(t, h, "engine_runs"); runs != 2 {
		t.Fatalf("engine_runs after option change = %d, want 2", runs)
	}
}

func TestSolveMalformedPayloads(t *testing.T) {
	h := New(Config{}).Handler()
	lib := readTestdata(t, "lib8.buf")
	net := readTestdata(t, "line.net")

	cases := []struct {
		name      string
		body      any
		raw       string
		status    int
		field     string
		hasVertex bool
	}{
		{name: "invalid JSON", raw: "{not json", status: 400},
		{name: "empty net", body: solveRequest{Net: "", Library: lib}, status: 400, field: "net"},
		{name: "garbage net", body: solveRequest{Net: "frobnicate all", Library: lib}, status: 400, field: "net"},
		{name: "garbage library", body: solveRequest{Net: net, Library: "buffer oops"}, status: 400, field: "library"},
		{name: "unknown algorithm", body: solveRequest{Net: net, Library: lib,
			solveOptions: solveOptions{Algorithm: "nope"}}, status: 400, field: "algorithm"},
		{name: "unknown prune", body: solveRequest{Net: net, Library: lib,
			solveOptions: solveOptions{Prune: "nope"}}, status: 400, field: "prune"},
		{name: "vanginneken multi-type library", body: solveRequest{Net: net, Library: lib,
			solveOptions: solveOptions{Algorithm: bufferkit.AlgoVanGinneken}}, status: 400, field: "library"},
		{name: "negative sink without inverters", status: 400, field: "polarity", hasVertex: true,
			body: solveRequest{Library: lib,
				Net: "node n1 parent src res 0.1 cap 5 buffer\nsink s1 parent n1 res 0.1 cap 5 load 10 rat 1000 neg\n"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rec *httptest.ResponseRecorder
			if tc.raw != "" {
				req := httptest.NewRequest("POST", "/v1/solve", strings.NewReader(tc.raw))
				rec = httptest.NewRecorder()
				h.ServeHTTP(rec, req)
			} else {
				rec = post(t, h, "/v1/solve", tc.body)
			}
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.status, rec.Body.String())
			}
			var er errorResponse
			decodeInto(t, rec, &er)
			if er.Error == "" {
				t.Fatal("error body missing the error message")
			}
			if er.Field != tc.field {
				t.Fatalf("error field %q, want %q (%s)", er.Field, tc.field, rec.Body.String())
			}
			if tc.hasVertex && er.Vertex == nil {
				t.Fatalf("expected vertex detail in %s", rec.Body.String())
			}
		})
	}
}

// TestSolveInfeasible: a polarity-unsatisfiable net (negative sink, no
// legal position for the inverter) maps to 422.
func TestSolveInfeasible(t *testing.T) {
	h := New(Config{}).Handler()
	var lb bytes.Buffer
	if err := bufferkit.WriteLibrary(&lb, bufferkit.GenerateLibraryWithInverters(4)); err != nil {
		t.Fatal(err)
	}
	rec := post(t, h, "/v1/solve", solveRequest{
		Net:     "sink s1 parent src res 0.1 cap 5 load 10 rat 1000 neg\n",
		Library: lb.String(),
	})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", rec.Code, rec.Body.String())
	}
}

// TestSolveDeadline: a 1 ms budget on a large net aborts mid-run and maps
// to 504 Gateway Timeout. The net is sized to solve in ~100 ms so the
// request deadline reliably fires first even with coarse kernel timers.
func TestSolveDeadline(t *testing.T) {
	h := New(Config{}).Handler()
	tr, err := bufferkit.IndustrialNet(500, 40000, 7)
	if err != nil {
		t.Fatal(err)
	}
	rec := post(t, h, "/v1/solve", solveRequest{
		Net:          netText(t, tr, "huge", bufferkit.Driver{R: 0.2, K: 15}),
		Library:      readTestdata(t, "lib8.buf"),
		solveOptions: solveOptions{TimeoutMs: 1},
	})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	var er errorResponse
	decodeInto(t, rec, &er)
	if !strings.Contains(er.Error, "canceled") {
		t.Fatalf("error %q does not mention cancellation", er.Error)
	}
}

// decodeBatch splits an NDJSON body into lines.
func decodeBatch(t testing.TB, body io.Reader) []batchLine {
	t.Helper()
	var lines []batchLine
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var l batchLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestBatchOrdered(t *testing.T) {
	h := New(Config{}).Handler()
	line := readTestdata(t, "line.net")
	random12 := readTestdata(t, "random12.net")
	req := batchRequest{
		Library: readTestdata(t, "lib8.buf"),
		Nets:    []string{line, random12, line},
		Ordered: true,
	}
	rec := post(t, h, "/v1/batch", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	lines := decodeBatch(t, rec.Body)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), rec.Body.String())
	}
	for i, l := range lines {
		if l.Index != i {
			t.Fatalf("line %d has index %d; ordered batch must be in input order", i, l.Index)
		}
		if l.Error != "" || l.Result == nil {
			t.Fatalf("line %d: %+v", i, l)
		}
	}
	// Nets 0 and 2 are byte-identical: same slack, and the duplicate is
	// either solved once more or served from the cache — never divergent.
	if lines[0].Result.Slack != lines[2].Result.Slack {
		t.Fatalf("duplicate nets disagree: %v vs %v", lines[0].Result.Slack, lines[2].Result.Slack)
	}
	if lines[0].Result.Net != "line" || lines[1].Result.Net != "random12" {
		t.Fatalf("net names wrong: %q, %q", lines[0].Result.Net, lines[1].Result.Net)
	}
}

// TestBatchCacheHits: a second identical batch is served entirely from the
// cache — engine_runs does not move.
func TestBatchCacheHits(t *testing.T) {
	h := New(Config{}).Handler()
	req := batchRequest{
		Library: readTestdata(t, "lib8.buf"),
		Nets:    []string{readTestdata(t, "line.net"), readTestdata(t, "random12.net")},
	}
	if rec := post(t, h, "/v1/batch", req); rec.Code != http.StatusOK {
		t.Fatalf("first batch: %d", rec.Code)
	}
	runs := metric(t, h, "engine_runs")
	rec := post(t, h, "/v1/batch", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("second batch: %d", rec.Code)
	}
	for _, l := range decodeBatch(t, rec.Body) {
		if l.Result == nil || !l.Result.Cached {
			t.Fatalf("expected every line cached, got %+v", l)
		}
	}
	if after := metric(t, h, "engine_runs"); after != runs {
		t.Fatalf("engine_runs moved %d → %d on a fully cached batch", runs, after)
	}
}

func TestBatchMalformed(t *testing.T) {
	h := New(Config{}).Handler()
	lib := readTestdata(t, "lib8.buf")
	t.Run("empty nets", func(t *testing.T) {
		rec := post(t, h, "/v1/batch", batchRequest{Library: lib})
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", rec.Code)
		}
	})
	t.Run("bad net names its index", func(t *testing.T) {
		rec := post(t, h, "/v1/batch", batchRequest{
			Library: lib,
			Nets:    []string{readTestdata(t, "line.net"), "garbage here"},
		})
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", rec.Code, rec.Body.String())
		}
		var er errorResponse
		decodeInto(t, rec, &er)
		if !strings.Contains(er.Error, "net 1") {
			t.Fatalf("error %q does not name the offending net index", er.Error)
		}
	})
	t.Run("over batch limit", func(t *testing.T) {
		small := New(Config{MaxBatchNets: 2}).Handler()
		rec := post(t, small, "/v1/batch", batchRequest{Library: lib, Nets: []string{"a", "b", "c"}})
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", rec.Code)
		}
	})
}

// TestBatchStreamNoGoroutineLeak drives the NDJSON stream over a real
// network connection and disconnects mid-stream: the handler's workers
// must all exit.
func TestBatchStreamNoGoroutineLeak(t *testing.T) {
	check := checkNoGoroutineLeak(t)
	srv := httptest.NewServer(New(Config{}).Handler())
	defer srv.Close()

	// Large-ish nets so the batch is still streaming when we disconnect.
	nets := make([]string, 16)
	for i := range nets {
		tr := bufferkit.TwoPinNet(50000, 600+i, 10, 1e6, bufferkit.PaperWire())
		nets[i] = netText(t, tr, fmt.Sprintf("n%d", i), bufferkit.Driver{R: 0.2, K: 15})
	}
	body, err := json.Marshal(batchRequest{Library: readTestdata(t, "lib8.buf"), Nets: nets})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", srv.URL+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one line, then hang up.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading first NDJSON line: %v", err)
	}
	cancel()
	resp.Body.Close()

	// A full, cleanly drained batch must not leak either.
	resp2, err := http.Post(srv.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()

	srv.CloseClientConnections()
	srv.Close() // idempotent; waits for outstanding handlers before check
	check()
}

// TestConcurrentSolves64 is the acceptance bar: 64 concurrent /v1/solve
// requests against one server under -race, every reply correct, no
// goroutine leaks afterwards.
func TestConcurrentSolves64(t *testing.T) {
	check := checkNoGoroutineLeak(t)
	s := New(Config{MaxConcurrent: 8})
	h := s.Handler()
	lib := readTestdata(t, "lib8.buf")

	const n = 64
	// Distinct nets (different RATs) so every request takes the full
	// parse+solve path under contention for the 8 engine slots.
	reqs := make([]solveRequest, n)
	for i := range reqs {
		tr := bufferkit.TwoPinNet(10000, 24, 10, 1000+float64(i), bufferkit.PaperWire())
		reqs[i] = solveRequest{
			Net:     netText(t, tr, fmt.Sprintf("net%d", i), bufferkit.Driver{R: 0.2, K: 15}),
			Library: lib,
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := post(t, h, "/v1/solve", reqs[i])
			if rec.Code != http.StatusOK {
				errs <- fmt.Errorf("req %d: status %d: %s", i, rec.Code, rec.Body.String())
				return
			}
			var resp solveResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				errs <- fmt.Errorf("req %d: %v", i, err)
				return
			}
			if resp.Buffers <= 0 {
				errs <- fmt.Errorf("req %d: no buffers placed: %+v", i, resp)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if runs := metric(t, h, "engine_runs"); runs != n {
		t.Fatalf("engine_runs = %d, want %d", runs, n)
	}
	if inFlight := metric(t, h, "in_flight_runs"); inFlight != 0 {
		t.Fatalf("in_flight_runs = %d after drain, want 0", inFlight)
	}
	check()
}

func TestAlgorithmsEndpoint(t *testing.T) {
	h := New(Config{}).Handler()
	rec := get(t, h, "/v1/algorithms")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp struct {
		Algorithms []bufferkit.AlgorithmInfo `json:"algorithms"`
	}
	decodeInto(t, rec, &resp)
	names := map[string]string{}
	for _, a := range resp.Algorithms {
		names[a.Name] = a.Description
	}
	for _, want := range []string{"new", "lillis", "vanginneken", "costslack"} {
		desc, ok := names[want]
		if !ok {
			t.Fatalf("algorithm %q missing from %v", want, names)
		}
		if desc == "" {
			t.Fatalf("algorithm %q has no description", want)
		}
	}
}

func TestHealthz(t *testing.T) {
	rec := get(t, New(Config{}).Handler(), "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}
}

func TestMetricsShape(t *testing.T) {
	h := New(Config{}).Handler()
	for _, name := range []string{
		"solve_requests", "batch_requests", "engine_runs", "cache_hits",
		"cache_misses", "cache_len", "http_errors", "in_flight_runs", "max_concurrent",
		"panics_total", "singleflight_shared", "shed_total", "shed_queue_full",
		"shed_deadline", "shed_queue_timeout", "queue_depth", "admission_wait_ns",
		"max_queue", "solve_ewma_ms", "draining", "uptime_seconds",
	} {
		metric(t, h, name) // fails the test if absent or non-numeric
	}
	m := metricsMap(t, h)
	var goVersion string
	if err := json.Unmarshal(m["go_version"], &goVersion); err != nil || !strings.HasPrefix(goVersion, "go") {
		t.Fatalf("go_version = %s (%v), want a go version string", m["go_version"], err)
	}
	var hist map[string]json.Number
	if err := json.Unmarshal(m["solve_latency_ms"], &hist); err != nil {
		t.Fatalf("solve_latency_ms = %s: %v", m["solve_latency_ms"], err)
	}
	for _, key := range []string{"count", "sum_ms", "le_1", "le_5000", "le_inf"} {
		if _, ok := hist[key]; !ok {
			t.Fatalf("solve_latency_ms missing %q: %v", key, hist)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	h := New(Config{}).Handler()
	rec := get(t, h, "/v1/solve")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve = %d, want 405", rec.Code)
	}
}

func TestBodyTooLarge(t *testing.T) {
	h := New(Config{MaxBodyBytes: 128}).Handler()
	rec := post(t, h, "/v1/solve", solveRequest{Net: strings.Repeat("x", 1024)})
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
	var er errorResponse
	decodeInto(t, rec, &er)
	if !strings.Contains(er.Error, "128") {
		t.Fatalf("413 body %q does not name the limit", er.Error)
	}
	// The batch endpoint shares the limiter.
	rec = post(t, h, "/v1/batch", batchRequest{Library: strings.Repeat("x", 1024)})
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("batch status %d, want 413", rec.Code)
	}
}

// TestSolveBackendField: the backend request field selects a candidate-list
// representation (identical results), distinct backends get distinct cache
// keys, and unknown names map to a 400 naming the field.
func TestSolveBackendField(t *testing.T) {
	srv := New(Config{})
	h := srv.Handler()
	netT, libT := readTestdata(t, "line.net"), readTestdata(t, "lib8.buf")
	slacks := map[string]float64{}
	for _, backend := range []string{"list", "soa"} {
		rec := post(t, h, "/v1/solve", solveRequest{Net: netT, Library: libT,
			solveOptions: solveOptions{Backend: backend}})
		if rec.Code != http.StatusOK {
			t.Fatalf("backend=%s: status %d: %s", backend, rec.Code, rec.Body.String())
		}
		var resp solveResponse
		decodeInto(t, rec, &resp)
		if resp.Cached {
			t.Fatalf("backend=%s unexpectedly served from cache — backends must have distinct keys", backend)
		}
		slacks[backend] = resp.Slack
	}
	if slacks["list"] != slacks["soa"] {
		t.Fatalf("backends disagree over HTTP: %v", slacks)
	}
	// "" and "default" normalize to the resolved default backend in the
	// cache key, so they hit the entry the explicit default stored.
	def := bufferkit.BackendDefault.Resolve().String()
	for _, backend := range []string{"", "default"} {
		rec := post(t, h, "/v1/solve", solveRequest{Net: netT, Library: libT,
			solveOptions: solveOptions{Backend: backend}})
		var resp solveResponse
		decodeInto(t, rec, &resp)
		if !resp.Cached {
			t.Fatalf("backend=%q missed the cache entry stored by backend=%q", backend, def)
		}
	}
	rec := post(t, h, "/v1/solve", solveRequest{Net: netT, Library: libT,
		solveOptions: solveOptions{Backend: "nope"}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown backend: status %d", rec.Code)
	}
	var errResp errorResponse
	decodeInto(t, rec, &errResp)
	if errResp.Field != "backend" {
		t.Fatalf("error field = %q, want backend", errResp.Field)
	}
}
