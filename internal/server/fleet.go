package server

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"bufferkit/internal/fleet"
	"bufferkit/internal/obs"
	"bufferkit/internal/resilience"
	"bufferkit/internal/server/cache"
)

// The fleet tier for /v1/solve. Every node computes the same consistent-
// hash placement from the request's content digests, so a solve arriving
// anywhere routes to its cache home:
//
//   - A node that is NOT one of the digest's R owners forwards the request
//     to the healthiest owner with a tight sub-deadline and a hop-count
//     guard, hedging to the replica when the home peer is slow
//     (budget-capped, first response wins, loser canceled). Duplicate
//     concurrent forwards of one digest collapse onto one peer call.
//   - A node that IS an owner solves locally and writes the result
//     through to the other owners, so one node's death loses no cached
//     work (R=2 by default).
//   - When a replica served because the ring-preferred owner was slow or
//     freshly restarted, the forwarding node read-repairs the preferred
//     owner's cache in the background.
//   - Every degraded path ends in a local solve: a fully partitioned node
//     still answers each request from its own engines, just without cache
//     sharing.
//
// Only single solves route through the fleet. Batch, yield, chip and
// session requests are streaming or stateful — forwarding them would
// double engine time or split session state — so they always run on the
// node that received them.

// Forward headers. hopsHeader carries the hop count of a forwarded
// request (a node seeing a nonzero count never re-forwards — the guard
// against routing loops when nodes disagree about ring membership);
// originHeader names the forwarding node. Both are rewritten from
// scratch on every forward: client-supplied values never propagate, and
// the tenant header is deliberately NOT forwarded — the tenant quota was
// charged at the ingress node, and charging the hop again would bill one
// request twice.
const (
	hopsHeader   = "X-Bufferkit-Hops"
	originHeader = "X-Bufferkit-Origin"
	tenantHeader = "X-Bufferkit-Tenant"
)

// hopCount reads the forwarded-hop count (0 = a direct client request).
func hopCount(r *http.Request) int {
	n, _ := strconv.Atoi(r.Header.Get(hopsHeader))
	return max(n, 0)
}

// forwardError is a transport-level or capacity failure talking to a
// peer: connection refused, partition drop, peer 429/502/503, or the
// peer's own 504 sub-deadline verdict. Eligible for failover to the
// replica and, ultimately, a local-solve fallback. Unwrap keeps the
// context sentinels visible for the 504 mapping.
type forwardError struct {
	peer string
	err  error
}

func (e *forwardError) Error() string { return fmt.Sprintf("peer %s: %v", e.peer, e.err) }
func (e *forwardError) Unwrap() error { return e.err }

// relayedError is an authoritative non-2xx verdict from a peer (400, 409,
// 413, 422, 500...): the request itself is at fault, so the reply is
// relayed to the client verbatim with the origin peer surfaced in the
// error payload.
type relayedError struct {
	peer       string
	status     int
	body       errorResponse
	retryAfter string
}

func (e *relayedError) Error() string {
	return fmt.Sprintf("peer %s: %d %s", e.peer, e.status, e.body.Error)
}

// forwardOutcome is one peer call's result: a solve response, or an
// authoritative error to relay (which must stop hedged failover — the
// replica would only repeat the verdict).
type forwardOutcome struct {
	resp  *solveResponse
	relay *relayedError
}

// handleSolveForward routes a /v1/solve this node does not own to the
// digest's owners. It reports true when it wrote the response; false
// means the caller should solve locally (this node is an owner, the
// request already hopped once, or every peer path failed and the local
// fallback still has budget).
func (s *Server) handleSolveForward(w http.ResponseWriter, r *http.Request, req *solveRequest, key cache.Key) bool {
	if s.fleet == nil || hopCount(r) > 0 {
		return false
	}
	h := fleet.RouteKey(key.Net, key.Library)
	if s.fleet.IsOwner(h) {
		return false
	}
	targets := s.fleet.Route(h)
	// All owners dead: skip the doomed round-trips and serve locally —
	// the fully-partitioned node still answers, just without cache
	// sharing.
	if len(targets) == 0 || s.fleet.Detector().State(targets[0]) == fleet.Dead {
		s.fleetFallbacks.Add(1)
		return false
	}
	tr := obs.TraceFromContext(r.Context())
	tr.Set("forwarded", true)
	fwd := tr.StartSpan("peer_forward")
	defer fwd.End()
	timeout := s.timeout(req.solveOptions)
	resp, err, shared := s.forwardFlights.Do(r.Context(), key, func(ctx context.Context) (*solveResponse, error) {
		ctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		// The creator's trace rides along so the hedge arms span under it
		// and the outgoing calls carry its traceparent.
		return s.forwardSolve(obs.ContextWithTrace(ctx, tr), req, key, h, targets)
	})
	if err != nil {
		var pe *resilience.PanicError
		if errors.As(err, &pe) {
			panic(pe)
		}
		var relay *relayedError
		if errors.As(err, &relay) {
			s.writeRelayed(w, relay)
			return true
		}
		s.fleetForwardErrors.Add(1)
		if r.Context().Err() == nil {
			// Peers failed but this request still has budget: solve it
			// here. Forwarding is an optimization, never a dependency.
			s.fleetFallbacks.Add(1)
			return false
		}
		s.writeError(w, s.asCanceled(annotatePeerErr(err)))
		return true
	}
	s.fleetForwards.Add(1)
	if shared {
		s.fleetForwardShared.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
	return true
}

// forwardSolve races the request across the digest's owners: the
// healthiest owner first, the replica hedged in after HedgeAfter (budget
// permitting) or immediately on failure. On success the result is
// near-cached locally and the ring-preferred owner read-repaired when a
// replica served.
func (s *Server) forwardSolve(ctx context.Context, req *solveRequest, key cache.Key, h uint64, targets []string) (*solveResponse, error) {
	fcfg := s.fleet.Config()
	tr := obs.TraceFromContext(ctx)
	var arms atomic.Int32
	out, winner, hedged, err := fleet.Hedged(ctx, targets, fcfg.HedgeAfter,
		s.fleet.AllowHedge,
		func(i int) {
			if i > 0 {
				s.fleetHedges.Add(1)
				tr.Set("hedged", true)
			}
		},
		func(ctx context.Context, peer string) (forwardOutcome, error) {
			name := "peer_call"
			if arms.Add(1) > 1 {
				name = "hedge_attempt"
			}
			sp := tr.StartSpan(name)
			sp.Set("peer", peer)
			defer sp.End()
			return s.callPeerSolve(ctx, peer, req, tr.Traceparent())
		})
	if err != nil {
		return nil, err
	}
	if hedged {
		s.fleetHedgeWins.Add(1)
	}
	if out.relay != nil {
		return nil, out.relay
	}
	s.fleet.EarnHedge()
	// Near-cache: repeats of this digest at this node now hit locally,
	// which also keeps the fleet-wide singleflight invariant — the next
	// identical burst never leaves this node. Flags are normalized so a
	// later local hit reports its own cache story, not the peer's.
	norm := *out.resp
	norm.Cached, norm.Coalesced = false, false
	s.cache.PutIfAbsent(key, &norm)
	// Read-repair: the ring-preferred owner missed its chance to serve
	// (slow, just restarted, or briefly dead); push the result so its
	// cache converges without waiting for the next write.
	owners := s.fleet.Owners(h)
	if winner != owners[0] && s.fleet.Detector().State(owners[0]) != fleet.Dead {
		s.sendReplica(owners[0], key, &norm, s.fleetReadRepairs, tr.Traceparent())
	}
	return out.resp, nil
}

// callPeerSolve sends one forwarded solve to peer under a tight
// sub-deadline: most of the remaining budget, capped at ForwardTimeout,
// and carried in the payload's timeout_ms so the peer's admission
// controller sees the same number the wire enforces.
func (s *Server) callPeerSolve(ctx context.Context, peer string, req *solveRequest, traceparent string) (forwardOutcome, error) {
	sub := s.fleet.Config().ForwardTimeout
	if dl, ok := ctx.Deadline(); ok {
		// Keep 1/8 of the remaining budget in reserve so a peer that burns
		// its whole sub-deadline leaves room to answer the client (or fall
		// back locally to a cached result).
		if remaining := time.Until(dl); remaining-remaining/8 < sub {
			sub = remaining - remaining/8
		}
	}
	if sub <= 0 {
		return forwardOutcome{}, &forwardError{peer: peer, err: context.DeadlineExceeded}
	}
	fwd := *req
	fwd.TimeoutMs = int(sub / time.Millisecond)
	body, err := json.Marshal(&fwd)
	if err != nil {
		return forwardOutcome{}, err
	}
	ctx, cancel := context.WithTimeout(ctx, sub)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return forwardOutcome{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(hopsHeader, "1")
	hreq.Header.Set(originHeader, s.fleet.Self())
	if traceparent != "" {
		hreq.Header.Set(traceparentHeader, traceparent)
	}
	hresp, err := s.fleetHTTP.Do(hreq)
	if err != nil {
		s.fleet.Detector().ReportFailure(peer)
		return forwardOutcome{}, &forwardError{peer: peer, err: err}
	}
	defer hresp.Body.Close()
	// Any HTTP reply means the peer process is alive, whatever the status.
	s.fleet.Detector().ReportSuccess(peer)
	if hresp.StatusCode == http.StatusOK {
		var resp solveResponse
		if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
			return forwardOutcome{}, &forwardError{peer: peer, err: err}
		}
		return forwardOutcome{resp: &resp}, nil
	}
	var eb errorResponse
	_ = json.NewDecoder(io.LimitReader(hresp.Body, 1<<20)).Decode(&eb)
	if eb.Error == "" {
		eb.Error = hresp.Status
	}
	switch hresp.StatusCode {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		// Capacity or deadline trouble at the peer: eligible for failover
		// to the replica and local fallback.
		return forwardOutcome{}, &forwardError{peer: peer,
			err: fmt.Errorf("%d from peer: %s", hresp.StatusCode, eb.Error)}
	}
	// Authoritative verdict (400/409/413/422/500...): relay as-is; the
	// replica would only repeat it.
	return forwardOutcome{relay: &relayedError{
		peer:       peer,
		status:     hresp.StatusCode,
		body:       eb,
		retryAfter: hresp.Header.Get("Retry-After"),
	}}, nil
}

// writeRelayed writes a peer's authoritative error to the client with
// the origin peer surfaced in the payload, so a relayed 504 is
// distinguishable from this node's own deadline verdict.
func (s *Server) writeRelayed(w http.ResponseWriter, relay *relayedError) {
	s.httpErrors.Add(1)
	body := relay.body
	body.Peer = relay.peer
	// The relaying node's own trace id, not the peer's: the client talked
	// to this node, and this trace contains the forward + relay spans.
	body.Trace = requestTrace(w).TraceID()
	if relay.retryAfter != "" {
		w.Header().Set("Retry-After", relay.retryAfter)
	}
	writeJSON(w, relay.status, &body)
}

// annotatePeerErr folds the failing peer's identity into the error text
// for the degraded paths that end in writeError rather than writeRelayed.
func annotatePeerErr(err error) error {
	var fe *forwardError
	if errors.As(err, &fe) {
		return fmt.Errorf("forward to peer %s failed: %w", fe.peer, fe.err)
	}
	return err
}

// replicate writes a freshly solved result through to the digest's other
// owners (skipping dead ones), so one node's death loses no cached work.
// No-op when this node is not an owner: a local-fallback solve on a
// partitioned non-owner has no replica responsibility — and no reachable
// peers anyway.
func (s *Server) replicate(key cache.Key, resp *solveResponse, traceparent string) {
	if s.fleet == nil {
		return
	}
	h := fleet.RouteKey(key.Net, key.Library)
	owners := s.fleet.Owners(h)
	self := s.fleet.Self()
	isOwner := false
	for _, o := range owners {
		if o == self {
			isOwner = true
			break
		}
	}
	if !isOwner {
		return
	}
	for _, o := range owners {
		if o != self && s.fleet.Detector().State(o) != fleet.Dead {
			s.sendReplica(o, key, resp, s.fleetWriteThroughs, traceparent)
		}
	}
}

// cacheReplica is the PUT /internal/v1/cache payload: the cache key's
// raw digests (hex) plus the immutable response to store.
type cacheReplica struct {
	NetSHA   string         `json:"net_sha"`
	LibSHA   string         `json:"lib_sha"`
	Options  string         `json:"options"`
	Response *solveResponse `json:"response"`
}

// sendReplica pushes one cached result to peer in the background,
// incrementing okCounter on success (write-through or read-repair). The
// goroutine is fleet-tracked, so Server.Close waits it out. The
// originating request's traceparent rides along so the receiver's
// replica_write span joins the same trace.
func (s *Server) sendReplica(peer string, key cache.Key, resp *solveResponse, okCounter *expvar.Int, traceparent string) {
	payload := &cacheReplica{
		NetSHA:   hex.EncodeToString(key.Net[:]),
		LibSHA:   hex.EncodeToString(key.Library[:]),
		Options:  key.Options,
		Response: resp,
	}
	s.fleet.Go(func() {
		body, err := json.Marshal(payload)
		if err != nil {
			s.fleetWriteThroughErrs.Add(1)
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, peer+"/internal/v1/cache", bytes.NewReader(body))
		if err != nil {
			s.fleetWriteThroughErrs.Add(1)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(originHeader, s.fleet.Self())
		if traceparent != "" {
			req.Header.Set(traceparentHeader, traceparent)
		}
		hresp, err := s.fleetHTTP.Do(req)
		if err != nil {
			s.fleet.Detector().ReportFailure(peer)
			s.fleetWriteThroughErrs.Add(1)
			return
		}
		io.Copy(io.Discard, hresp.Body)
		hresp.Body.Close()
		s.fleet.Detector().ReportSuccess(peer)
		if hresp.StatusCode == http.StatusOK {
			okCounter.Add(1)
		} else {
			s.fleetWriteThroughErrs.Add(1)
		}
	})
}

// handleCacheReplica accepts a peer's write-through or read-repair push.
// The entry is stored only when absent — results are deterministic, and
// replication must not disturb locally established LRU order.
func (s *Server) handleCacheReplica(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		s.writeError(w, &httpError{status: http.StatusNotFound, msg: "not a fleet member"})
		return
	}
	var req cacheReplica
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	netSHA, err1 := hex.DecodeString(req.NetSHA)
	libSHA, err2 := hex.DecodeString(req.LibSHA)
	if err1 != nil || err2 != nil || len(netSHA) != 32 || len(libSHA) != 32 || req.Response == nil {
		s.writeError(w, badRequestf("", "malformed cache replica"))
		return
	}
	var key cache.Key
	copy(key.Net[:], netSHA)
	copy(key.Library[:], libSHA)
	key.Options = req.Options
	resp := *req.Response
	resp.Cached, resp.Coalesced = false, false
	tr := obs.TraceFromContext(r.Context())
	tr.Set("digest", digestAttr(key.Net))
	sp := tr.StartSpan("replica_write")
	stored := s.cache.PutIfAbsent(key, &resp)
	sp.Set("stored", stored)
	sp.End()
	if stored {
		s.fleetReplicasStored.Add(1)
	}
	writeJSON(w, http.StatusOK, map[string]bool{"stored": stored})
}

// handleFleet reports the fleet topology and per-peer health — the
// client's peer-list bootstrap and an operator's split-brain view.
func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	if s.fleet == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":  true,
		"self":     s.fleet.Self(),
		"replicas": s.fleet.Config().Replicas,
		"peers":    s.fleet.Snapshot(),
	})
}

// probePeer is the failure detector's heartbeat: GET /readyz under the
// probe-interval deadline. A draining peer answers 503 and is treated as
// failing — exactly right, new traffic should route around it.
func (s *Server) probePeer(ctx context.Context, peer string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := s.fleetHTTP.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz: %s", resp.Status)
	}
	return nil
}

// tenantLimit is the per-tenant quota middleware: mutating /v1 requests
// are charged to the X-Bufferkit-Tenant bucket before admission, so one
// tenant's overload sheds only that tenant while probes, metrics and
// forwarded hops (already charged at their ingress node) pass free.
func (s *Server) tenantLimit(next http.Handler) http.Handler {
	if s.quotas == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet || !strings.HasPrefix(r.URL.Path, "/v1/") || hopCount(r) > 0 {
			next.ServeHTTP(w, r)
			return
		}
		tr := obs.TraceFromContext(r.Context())
		tenant := r.Header.Get(tenantHeader)
		sp := tr.StartSpan("tenant_quota")
		ok, retry := s.quotas.Allow(tenant)
		sp.Set("allowed", ok)
		sp.End()
		if !ok {
			s.httpErrors.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retry)))
			writeJSON(w, http.StatusTooManyRequests, &errorResponse{
				Error: fmt.Sprintf("tenant %q over quota (retry after %s)", tenant, retry.Round(time.Millisecond)),
				Trace: tr.TraceID(),
			})
			return
		}
		next.ServeHTTP(w, r)
	})
}
