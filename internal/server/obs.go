package server

import (
	"encoding/hex"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"bufferkit"
	"bufferkit/internal/obs"
	"bufferkit/internal/resilience"
)

// traceparentHeader is the W3C Trace Context request header; traceHeader
// is the response header carrying the request's trace id back to the
// client so any reply — success or error — is correlatable with
// /debug/traces and the request-summary log lines.
const (
	traceparentHeader = "traceparent"
	traceHeader       = "X-Bufferkit-Trace"
)

// traceCarrier is implemented by the instrumented response writer so the
// error writers deep in the handler stack can stamp the trace id into
// error payloads without changing every call signature.
type traceCarrier interface {
	Trace() *obs.Trace
}

// requestTrace extracts the current trace from a response writer (nil
// when observability is disabled or w is a bare writer, as in tests).
func requestTrace(w http.ResponseWriter) *obs.Trace {
	if tc, ok := w.(traceCarrier); ok {
		return tc.Trace()
	}
	return nil
}

// instrument is the outermost middleware: it opens the request's root
// span (joining the caller's trace when a valid traceparent header is
// present — the fleet-forward correlation path), exposes the trace id in
// the X-Bufferkit-Trace response header, recovers panics into 500s, and
// seals the trace with the response status — which emits the one
// request-summary log line. With observability disabled (Config.TraceRing
// < 0) the recorder is nil and every trace operation no-ops.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := s.rec.StartTrace(r.Method+" "+r.URL.Path, r.Header.Get(traceparentHeader))
		tw := &trackingWriter{ResponseWriter: w, trace: tr}
		if tr != nil {
			w.Header().Set(traceHeader, tr.TraceID())
			r = r.WithContext(obs.ContextWithTrace(r.Context(), tr))
			if origin := r.Header.Get(originHeader); origin != "" && hopCount(r) > 0 {
				tr.Set("origin", origin)
			}
			if tenant := r.Header.Get(tenantHeader); tenant != "" {
				tr.Set("tenant", tenant)
			}
		}
		defer func() {
			rec := recover()
			if rec == nil {
				tr.Finish(tw.status())
				return
			}
			if rec == http.ErrAbortHandler {
				tr.Finish(499) // client went away mid-response
				panic(rec)
			}
			s.panicsTotal.Add(1)
			val, stack := rec, debug.Stack()
			if pe, ok := rec.(*resilience.PanicError); ok {
				val, stack = pe.Value, pe.Stack
			}
			s.rec.Logger().Error("panic serving request",
				"method", r.Method, "path", r.URL.Path, "trace", tr.TraceID(),
				"panic", fmt.Sprint(val), "stack", string(stack))
			if !tw.wroteHeader {
				s.httpErrors.Add(1)
				writeJSON(tw, http.StatusInternalServerError,
					&errorResponse{Error: fmt.Sprintf("internal error: %v", val), Trace: tr.TraceID()})
			}
			tr.Finish(tw.status())
		}()
		next.ServeHTTP(tw, r)
	})
}

// handleDebugTraces serves the recorder's ring of completed traces,
// newest first, optionally filtered by ?min_ms=<float>.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		s.writeError(w, &httpError{status: http.StatusNotFound, msg: "tracing disabled"})
		return
	}
	var minDur time.Duration
	if q := r.URL.Query().Get("min_ms"); q != "" {
		ms, err := strconv.ParseFloat(q, 64)
		if err != nil || ms < 0 {
			s.writeError(w, badRequestf("min_ms", "min_ms must be a non-negative number"))
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	traces := s.rec.Snapshot(minDur)
	writeJSON(w, http.StatusOK, map[string]any{
		"count":  len(traces),
		"traces": traces,
	})
}

// recordEngineStats folds one engine run's DP counters into the
// engine_candidates_total / engine_pruned_total counters and, when a span
// is supplied, its attributes — the per-request view of the O(bn²)
// algorithm's actual work.
func (s *Server) recordEngineStats(st *bufferkit.Stats, sp obs.SpanRef) {
	if st == nil {
		return
	}
	s.engCandidates.Add(int64(st.BetasGenerated))
	s.engPruned.Add(int64(st.HullPruned))
	sp.Set("candidates", st.BetasGenerated)
	sp.Set("pruned", st.HullPruned)
	sp.Set("kept", st.BetasKept)
	if st.ArenaBytes > 0 {
		sp.Set("arena_bytes", st.ArenaBytes)
	}
}

// digestAttr renders the first 8 bytes of the net digest — enough to
// correlate a request with cache keys and fleet routing in log lines.
func digestAttr(d [32]byte) string { return hex.EncodeToString(d[:8]) }
