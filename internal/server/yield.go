package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"bufferkit"
	"bufferkit/internal/resilience"
	"bufferkit/internal/server/cache"
)

// yieldRequest is the POST /v1/yield payload. The embedded solveOptions
// select algorithm / prune / backend / timeout exactly as /v1/solve does;
// yield analysis accepts the core-engine algorithms only ("", "new",
// "core", "core-soa").
type yieldRequest struct {
	// Net is the net in the repository's .net text format.
	Net string `json:"net"`
	// Library is the buffer library in the .buf text format.
	Library string `json:"library"`
	// Samples is the number of Monte Carlo corners to draw (0 = none;
	// capped by Config.MaxYieldSamples).
	Samples int `json:"samples,omitempty"`
	// Sigma is the sampler's relative sigma (uniform across library R/K/Cin
	// and wire r/c).
	Sigma float64 `json:"sigma,omitempty"`
	// Seed seeds the sampler (absent = the solver default, 1); results are
	// deterministic per seed, and an explicit 0 is a valid seed distinct
	// from the default.
	Seed *int64 `json:"seed,omitempty"`
	// Target is the slack threshold (ps) a corner must meet to yield.
	Target float64 `json:"target,omitempty"`
	// Robust selects the placement maximizing fixed-placement yield across
	// corners instead of the nominal optimum.
	Robust bool `json:"robust,omitempty"`
	// ProcessCorners additionally evaluates the deterministic named corner
	// set (fast/slow and the cross corners).
	ProcessCorners bool `json:"process_corners,omitempty"`
	solveOptions
}

// yieldResponse is the POST /v1/yield reply.
type yieldResponse struct {
	Net       string  `json:"net,omitempty"`
	Algorithm string  `json:"algorithm"`
	Samples   int     `json:"samples"`
	Target    float64 `json:"target"`
	Robust    bool    `json:"robust"`
	// Yield is the chosen placement's fixed-placement yield; OptimalYield
	// re-optimizes per corner and upper-bounds it.
	Yield        float64 `json:"yield"`
	OptimalYield float64 `json:"optimal_yield"`
	// Slack summarizes the per-corner optimal slack distribution.
	Slack struct {
		Mean float64 `json:"mean"`
		Std  float64 `json:"std"`
		Min  float64 `json:"min"`
		Max  float64 `json:"max"`
		P5   float64 `json:"p5"`
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
	} `json:"slack"`
	// WorstCorner names the corner with the smallest optimal slack.
	WorstCorner string  `json:"worst_corner"`
	WorstSlack  float64 `json:"worst_slack"`
	// Placements summarizes every distinct optimal placement observed.
	Placements []yieldPlacement `json:"placements"`
	// Chosen indexes Placements; Placement/Buffers/Cost describe it.
	Chosen    int               `json:"chosen"`
	Placement map[string]string `json:"placement"`
	Buffers   int               `json:"buffers"`
	Cost      int               `json:"cost"`
	// Cached reports whether the result came from the LRU cache without an
	// engine run.
	Cached bool `json:"cached"`
	// ElapsedMs is the sweep runtime of the (original) solve.
	ElapsedMs float64 `json:"elapsed_ms,omitempty"`
}

// yieldPlacement summarizes one distinct optimal placement.
type yieldPlacement struct {
	Count      int     `json:"count"`
	Yield      float64 `json:"yield"`
	WorstSlack float64 `json:"worst_slack"`
	MeanSlack  float64 `json:"mean_slack"`
	Buffers    int     `json:"buffers"`
	Cost       int     `json:"cost"`
}

// seed resolves the request seed against the solver default, so an absent
// field and an explicit default share one cache entry.
func (req *yieldRequest) seed() int64 {
	if req.Seed != nil {
		return *req.Seed
	}
	return 1
}

// yieldCacheOptions extends the solve option canonicalization with the
// sweep parameters, so distinct sweeps never share a cache entry.
func (req *yieldRequest) yieldCacheOptions() string {
	return fmt.Sprintf("%s yield samples=%d sigma=%g seed=%d target=%g robust=%t pcorners=%t",
		req.solveOptions.cacheOptions(), req.Samples, req.Sigma, req.seed(),
		req.Target, req.Robust, req.ProcessCorners)
}

// handleYield runs Monte Carlo / multi-corner yield analysis on one net:
// cache lookup on the payload digests plus sweep parameters, then parse,
// sweep under the request deadline on as many engine slots as are idle —
// collapsing onto an identical in-flight sweep when one exists
// (singleflight, same contract as /v1/solve). Deadline expiry mid-sweep
// maps to 504 with the completed sample count recorded in the
// yield_aborted_samples counter.
func (s *Server) handleYield(w http.ResponseWriter, r *http.Request) {
	s.yieldReqs.Add(1)
	var req yieldRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.Samples < 0 {
		s.writeError(w, badRequestf("samples", "sample count %d must be nonnegative", req.Samples))
		return
	}
	if req.Samples > s.cfg.MaxYieldSamples {
		s.writeError(w, badRequestf("samples", "sample count %d exceeds limit %d", req.Samples, s.cfg.MaxYieldSamples))
		return
	}

	key := cache.NewKey([]byte(req.Net), []byte(req.Library), req.yieldCacheOptions())
	if v, ok := s.cache.Get(key); ok {
		resp := *v.(*yieldResponse) // copy: cached entries are immutable
		resp.Cached = true
		writeJSON(w, http.StatusOK, &resp)
		return
	}
	net, lib, err := parsePayload(req.Net, req.Library)
	if err != nil {
		s.writeError(w, err)
		return
	}

	timeout := s.timeout(req.solveOptions)
	resp, err, shared := s.yieldFlights.Do(r.Context(), key, func(ctx context.Context) (*yieldResponse, error) {
		ctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		// One guaranteed engine slot plus whatever is idle, capped by the
		// number of corners: a sweep is a batch of corner runs, so it widens
		// like /v1/batch and can never deadlock other requests.
		corners := 1 + req.Samples
		if req.ProcessCorners {
			corners += len(bufferkit.ProcessCorners()) - 1
		}
		if err := s.adm.Acquire(ctx); err != nil {
			return nil, err
		}
		slots := 1 + s.adm.TryExtra(min(corners, s.cfg.MaxConcurrent)-1)
		s.inFlightRuns.Add(int64(slots))
		defer func() {
			s.inFlightRuns.Add(int64(-slots))
			s.adm.Release(slots)
		}()

		opts := []bufferkit.Option{
			bufferkit.WithDriver(net.Driver),
			bufferkit.WithSamples(req.Samples),
			bufferkit.WithSigma(req.Sigma),
			bufferkit.WithVariationSeed(req.seed()),
			bufferkit.WithYieldTarget(req.Target),
			bufferkit.WithRobustPlacement(req.Robust),
			bufferkit.WithWorkers(slots),
		}
		if req.ProcessCorners {
			opts = append(opts, bufferkit.WithCorners(bufferkit.ProcessCorners()[1:]))
		}
		solver, err := req.newSolver(lib, opts...)
		if err != nil {
			return nil, err
		}
		defer solver.Close()

		start := time.Now()
		res, err := solver.SolveYield(ctx, net.Tree)
		elapsed := time.Since(start)
		if err != nil {
			// A deadline abort mid-sweep still carries progress: expose the
			// completed/total sample counts through /metrics before the 504.
			var perr *bufferkit.PartialSweepError
			if errors.As(err, &perr) {
				s.yieldDeadlineAborts.Add(1)
				s.yieldAbortedSamples.Add(int64(perr.Completed))
			}
			return nil, err
		}
		s.engineRuns.Add(int64(len(res.Samples)))
		s.yieldSamples.Add(int64(len(res.Samples)))

		resp := buildYieldResponse(net, lib, solver.Algorithm(), res, elapsed)
		s.cache.Put(key, resp)
		s.cacheStores.Add(1)
		return resp, nil
	})
	if err != nil {
		var pe *resilience.PanicError
		if errors.As(err, &pe) {
			panic(pe) // recovery middleware: 500 + panics_total + original stack
		}
		s.writeError(w, s.asCanceled(err))
		return
	}
	if shared {
		s.sfShared.Add(1)
		out := *resp // copy: the shared result is immutable
		out.Cached = false
		writeJSON(w, http.StatusOK, &out)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// buildYieldResponse converts a YieldResult into the wire shape.
func buildYieldResponse(net *bufferkit.Net, lib bufferkit.Library, algo string, res *bufferkit.YieldResult, elapsed time.Duration) *yieldResponse {
	resp := &yieldResponse{
		Net:          net.Name,
		Algorithm:    algo,
		Samples:      len(res.Samples),
		Target:       res.Target,
		Robust:       res.Robust,
		Yield:        res.Yield,
		OptimalYield: res.OptimalYield,
		WorstCorner:  res.Samples[res.WorstSample].Corner.Name,
		WorstSlack:   res.Samples[res.WorstSample].Slack,
		Chosen:       res.Chosen,
		Placement:    placementNames(net.Tree, lib, res.Placement),
		Buffers:      res.Placement.Count(),
		Cost:         res.Placements[res.Chosen].Cost,
		ElapsedMs:    float64(elapsed) / float64(time.Millisecond),
	}
	d := res.Dist
	resp.Slack.Mean, resp.Slack.Std = d.Mean, d.Std
	resp.Slack.Min, resp.Slack.Max = d.Min, d.Max
	resp.Slack.P5, resp.Slack.P50, resp.Slack.P95 = d.P5, d.P50, d.P95
	for _, g := range res.Placements {
		resp.Placements = append(resp.Placements, yieldPlacement{
			Count:      g.Count,
			Yield:      g.Yield,
			WorstSlack: g.WorstSlack,
			MeanSlack:  g.MeanSlack,
			Buffers:    g.Placement.Count(),
			Cost:       g.Cost,
		})
	}
	return resp
}
