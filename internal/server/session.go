package server

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"time"

	"bufferkit"
	"bufferkit/internal/server/cache"
)

// The ECO-session surface: PUT /v1/sessions/{id} applies typed patches to a
// server-retained incremental session and re-solves only the dirty
// vertex-to-root paths, so a synthesis loop iterating on one net pays for
// its deltas instead of whole re-solves. The session table is LRU + TTL
// evicted; a client whose session expired gets a 404 and recreates it by
// resending net and library under the same id (the client package does this
// transparently). Results are cache-coherent with /v1/solve: the patched
// tree is serialized back to canonical .net text and keyed into the same
// LRU, so a session resolve can be answered by an earlier plain solve of
// the identical net — and vice versa.

// sessionRequest is the PUT /v1/sessions/{id} payload. Net and Library are
// required when the id is new (they define the session) and optional
// afterwards; when resent they must match the originals byte for byte (409
// otherwise), which makes retried PUTs safe.
type sessionRequest struct {
	Net     string         `json:"net,omitempty"`
	Library string         `json:"library,omitempty"`
	Patches []sessionPatch `json:"patches,omitempty"`
	solveOptions
}

// sessionPatch is one typed delta. Kind selects the shape: "sink" sets a
// sink's rat and cap, "edge" sets the res and cap of the wire into the
// vertex, "buffer" sets the vertex's buffer-position flag (and optionally
// the allowed library type indices, as in the .net text format). All values
// are absolute, not increments — retransmitting a patch is idempotent.
// Vertices are named as in net files and placements: the file name when
// set, otherwise "v<i>" ("src" for the source).
type sessionPatch struct {
	Kind   string `json:"kind"`
	Vertex string `json:"vertex"`
	// RAT and Cap parameterize "sink" patches; Res and Cap "edge" patches.
	RAT *float64 `json:"rat,omitempty"`
	Cap *float64 `json:"cap,omitempty"`
	Res *float64 `json:"res,omitempty"`
	// OK and Allowed parameterize "buffer" patches.
	OK      *bool `json:"ok,omitempty"`
	Allowed []int `json:"allowed,omitempty"`
}

// sessionInfo is the session block of a PUT response.
type sessionInfo struct {
	ID string `json:"id"`
	// Created marks the PUT that opened the session.
	Created bool `json:"created,omitempty"`
	// Resolves, FullRebuilds and Recomputed expose the session's
	// incremental-work story: Recomputed is the number of vertices the last
	// resolve actually recomputed (0 when the reply came from the cache).
	Resolves     int `json:"resolves"`
	FullRebuilds int `json:"full_rebuilds"`
	Recomputed   int `json:"recomputed"`
}

// sessionResponse is the PUT /v1/sessions/{id} reply: a solve response plus
// the session block.
type sessionResponse struct {
	solveResponse
	Session sessionInfo `json:"session"`
}

// sessionEntry is one retained session. mu serializes use of the session
// (sessions are single-threaded by contract); lastUsed is guarded by the
// server's sessMu, not mu, so eviction scans never block on a resolve.
type sessionEntry struct {
	id      string
	netText string // original .net payload, for idempotent-create matching
	libText string
	lib     bufferkit.Library
	name    string           // net name, for response building
	driver  bufferkit.Driver // net driver, for cache-key serialization
	names   map[string]int   // vertex name → index, for patch addressing
	tree    *bufferkit.Tree  // the session's patched tree (read-only view)
	opts    solveOptions     // pinned at create; later requests must not conflict
	optsKey string           // opts.cacheOptions(), pinned at create

	mu     sync.Mutex
	solver *bufferkit.Solver
	sess   *bufferkit.Session
	last   bufferkit.SessionStats // stats at last observation, for counter deltas
	closed bool

	lastUsed time.Time // guarded by Server.sessMu
}

// handleSessionPut creates/patches/re-solves one session.
func (s *Server) handleSessionPut(w http.ResponseWriter, r *http.Request) {
	s.sessionReqs.Add(1)
	if s.cfg.MaxSessions < 0 {
		s.writeError(w, &httpError{status: http.StatusNotFound, msg: "sessions are disabled on this server"})
		return
	}
	id := r.PathValue("id")
	if id == "" || len(id) > 128 {
		s.writeError(w, badRequestf("id", "session id must be 1–128 characters"))
		return
	}
	var req sessionRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	e, created, err := s.getOrCreateSession(id, &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		// Evicted between table lookup and lock; the client's retry recreates.
		s.writeError(w, &httpError{status: http.StatusNotFound, field: "id",
			msg: "session " + id + " was evicted; retry with net and library to recreate it"})
		return
	}

	if len(req.Patches) > 0 {
		deltas, err := e.buildDeltas(req.Patches)
		if err != nil {
			s.writeError(w, err)
			return
		}
		if e.sess.Patch(deltas...).Err() != nil {
			// Resolve returns — and clears — the sticky patch error without
			// an engine run; the rejected batch never touched the session.
			_, err := e.sess.Resolve(r.Context())
			s.writeError(w, err)
			return
		}
		s.sessionPatches.Add(int64(len(req.Patches)))
	}

	// Cache coherence: the patched tree serializes back to canonical .net
	// text, keyed exactly like /v1/solve — so identical patched nets share
	// results across both endpoints, in both directions.
	var netBuf bytes.Buffer
	if err := bufferkit.WriteNet(&netBuf, &bufferkit.Net{Name: e.name, Tree: e.tree, Driver: e.driver}); err != nil {
		s.writeError(w, err)
		return
	}
	key := cache.NewKey(netBuf.Bytes(), []byte(e.libText), e.optsKey)
	if v, ok := s.cache.Get(key); ok {
		s.sessionCacheHits.Add(1)
		resp := *v.(*solveResponse) // copy: cached entries are immutable
		resp.Cached = true
		writeJSON(w, http.StatusOK, &sessionResponse{solveResponse: resp, Session: e.info(s, id, created)})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(e.opts))
	defer cancel()
	if err := s.adm.Acquire(ctx); err != nil {
		s.writeError(w, s.asCanceled(err))
		return
	}
	defer s.adm.Release(1)
	s.inFlightRuns.Add(1)
	s.engineRuns.Add(1)
	s.sessionResolves.Add(1)
	start := time.Now()
	res, err := e.sess.Resolve(ctx)
	elapsed := time.Since(start)
	s.inFlightRuns.Add(-1)
	s.adm.Observe(elapsed)
	s.solveLatency.observe(elapsed)
	info := e.info(s, id, created)
	if err != nil {
		s.writeError(w, s.asCanceled(err))
		return
	}
	resp := buildResponse(&bufferkit.Net{Name: e.name, Tree: e.tree, Driver: e.driver},
		e.lib, e.solver.Algorithm(), res, elapsed)
	s.cache.Put(key, resp)
	s.cacheStores.Add(1)
	writeJSON(w, http.StatusOK, &sessionResponse{solveResponse: *resp, Session: info})
}

// handleSessionDelete closes and forgets a session.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	s.sessionReqs.Add(1)
	id := r.PathValue("id")
	s.sessMu.Lock()
	e, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.sessMu.Unlock()
	if !ok {
		s.writeError(w, &httpError{status: http.StatusNotFound, field: "id", msg: "unknown session " + id})
		return
	}
	e.close()
	writeJSON(w, http.StatusOK, map[string]any{"closed": true, "id": id})
}

// getOrCreateSession returns the table entry for id, creating it (and
// evicting expired or least-recently-used sessions) when the request
// carries net and library.
func (s *Server) getOrCreateSession(id string, req *sessionRequest) (*sessionEntry, bool, error) {
	now := time.Now()
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	s.evictExpiredLocked(now)
	if e, ok := s.sessions[id]; ok {
		if req.Net != "" && req.Net != e.netText {
			return nil, false, &httpError{status: http.StatusConflict, field: "net",
				msg: "session " + id + " exists with a different net; DELETE it or use a new id"}
		}
		if req.Library != "" && req.Library != e.libText {
			return nil, false, &httpError{status: http.StatusConflict, field: "library",
				msg: "session " + id + " exists with a different library; DELETE it or use a new id"}
		}
		if opts := req.solveOptions.cacheOptions(); opts != e.optsKey {
			return nil, false, &httpError{status: http.StatusConflict, field: "algorithm",
				msg: "session " + id + " exists with different solve options; DELETE it or use a new id"}
		}
		e.lastUsed = now
		return e, false, nil
	}
	if req.Net == "" || req.Library == "" {
		return nil, false, &httpError{status: http.StatusNotFound, field: "id",
			msg: "unknown or expired session " + id + "; include net and library to create it"}
	}
	net, lib, err := parsePayload(req.Net, req.Library)
	if err != nil {
		return nil, false, err
	}
	solver, err := req.newSolver(lib, bufferkit.WithDriver(net.Driver))
	if err != nil {
		return nil, false, err
	}
	sess, err := solver.NewSession(net.Tree)
	if err != nil {
		solver.Close()
		return nil, false, err
	}
	names := make(map[string]int, net.Tree.Len())
	for v := range net.Tree.Verts {
		names[vertexName(net.Tree, v)] = v
	}
	e := &sessionEntry{
		id:      id,
		netText: req.Net,
		libText: req.Library,
		lib:     lib,
		name:    net.Name,
		driver:  net.Driver,
		names:   names,
		tree:    sess.Tree(),
		opts:    req.solveOptions,
		optsKey: req.solveOptions.cacheOptions(),
		solver:  solver,
		sess:    sess,
	}
	for len(s.sessions) >= s.cfg.MaxSessions {
		s.evictOldestLocked()
	}
	s.sessions[id] = e
	e.lastUsed = now
	s.sessionsCreated.Add(1)
	return e, true, nil
}

// evictExpiredLocked drops every session idle past the TTL. Callers hold
// sessMu.
func (s *Server) evictExpiredLocked(now time.Time) {
	for id, e := range s.sessions {
		if now.Sub(e.lastUsed) > s.cfg.SessionTTL {
			delete(s.sessions, id)
			s.sessionsEvicted.Add(1)
			go e.close()
		}
	}
}

// evictOldestLocked drops the least-recently-used session. Callers hold
// sessMu and guarantee the table is non-empty.
func (s *Server) evictOldestLocked() {
	var oldest *sessionEntry
	var oid string
	for id, e := range s.sessions {
		if oldest == nil || e.lastUsed.Before(oldest.lastUsed) {
			oldest, oid = e, id
		}
	}
	delete(s.sessions, oid)
	s.sessionsEvicted.Add(1)
	go oldest.close() // may wait on an in-flight resolve; don't hold sessMu for it
}

// close releases the entry's engine state, waiting out any in-flight use.
func (e *sessionEntry) close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	e.sess.Close()
	e.solver.Close()
}

// info snapshots the session block for a response and feeds the counter
// deltas since the last observation into the server-wide rebuild/recompute
// totals. Callers hold e.mu.
func (e *sessionEntry) info(s *Server, id string, created bool) sessionInfo {
	st := e.sess.Stats()
	recomputed := 0
	if st.Resolves > e.last.Resolves {
		recomputed = st.LastRecomputed
		s.sessionRecomp.Add(int64(recomputed))
		s.sessionRebuilds.Add(int64(st.FullRebuilds - e.last.FullRebuilds))
	}
	e.last = st
	return sessionInfo{
		ID:           id,
		Created:      created,
		Resolves:     st.Resolves,
		FullRebuilds: st.FullRebuilds,
		Recomputed:   recomputed,
	}
}

// buildDeltas converts wire patches into typed session deltas, resolving
// vertex names against the session's tree.
func (e *sessionEntry) buildDeltas(patches []sessionPatch) ([]bufferkit.Delta, error) {
	out := make([]bufferkit.Delta, 0, len(patches))
	for i, p := range patches {
		v, ok := e.names[p.Vertex]
		if !ok {
			return nil, badRequestf("patches", "patch %d: unknown vertex %q", i, p.Vertex)
		}
		switch p.Kind {
		case "sink":
			if p.RAT == nil || p.Cap == nil {
				return nil, badRequestf("patches", "patch %d: sink patch needs rat and cap", i)
			}
			out = append(out, bufferkit.SinkDelta{Vertex: v, RAT: *p.RAT, Cap: *p.Cap})
		case "edge":
			if p.Res == nil || p.Cap == nil {
				return nil, badRequestf("patches", "patch %d: edge patch needs res and cap", i)
			}
			out = append(out, bufferkit.EdgeDelta{Vertex: v, R: *p.Res, C: *p.Cap})
		case "buffer":
			if p.OK == nil {
				return nil, badRequestf("patches", "patch %d: buffer patch needs ok", i)
			}
			out = append(out, bufferkit.BufferDelta{Vertex: v, OK: *p.OK, Allowed: p.Allowed})
		default:
			return nil, badRequestf("patches", "patch %d: unknown kind %q (sink, edge or buffer)", i, p.Kind)
		}
	}
	return out, nil
}
