package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bufferkit"
	"bufferkit/internal/netgen"
)

// request is post with an explicit method, for the PUT/DELETE session routes.
func request(t testing.TB, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// sessionFixture builds a bushy balanced net (so a single-sink patch dirties
// far fewer vertices than the tree holds) plus its canonical payload text.
func sessionFixture(t testing.TB) (*bufferkit.Tree, string, string) {
	t.Helper()
	tr := netgen.Balanced(2, 4, 400, 3, 900, netgen.PaperWire())
	return tr, netText(t, tr, "eco", bufferkit.Driver{R: 0.2, K: 15}), readTestdata(t, "lib8.buf")
}

// coldSlack runs a plain solver on the tree for a ground-truth slack.
func coldSlack(t testing.TB, tr *bufferkit.Tree, libText string) float64 {
	t.Helper()
	lib, err := bufferkit.ParseLibrary(strings.NewReader(libText))
	if err != nil {
		t.Fatal(err)
	}
	solver, err := bufferkit.NewSolver(bufferkit.WithLibrary(lib), bufferkit.WithDriver(bufferkit.Driver{R: 0.2, K: 15}))
	if err != nil {
		t.Fatal(err)
	}
	defer solver.Close()
	res, err := solver.Run(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	return res.Slack
}

func TestSessionLifecycle(t *testing.T) {
	tr, net, lib := sessionFixture(t)
	h := New(Config{}).Handler()

	// The creating PUT resolves the whole tree once.
	rec := request(t, h, "PUT", "/v1/sessions/eco1", sessionRequest{Net: net, Library: lib})
	if rec.Code != http.StatusOK {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	var created sessionResponse
	decodeInto(t, rec, &created)
	if !created.Session.Created || created.Session.ID != "eco1" {
		t.Fatalf("session block = %+v", created.Session)
	}
	if created.Session.Resolves != 1 || created.Session.FullRebuilds != 1 {
		t.Fatalf("first resolve counters = %+v", created.Session)
	}
	if created.Session.Recomputed != tr.Len() {
		t.Fatalf("first resolve recomputed %d vertices, want all %d", created.Session.Recomputed, tr.Len())
	}
	if got, want := created.Slack, coldSlack(t, tr, lib); got != want {
		t.Fatalf("session slack %v != cold slack %v", got, want)
	}

	// A single-sink patch recomputes only the sink-to-root path — strictly
	// fewer vertices than the tree holds on this bushy topology — and the
	// result stays bit-identical to a cold solve of the patched net.
	sink := tr.Sinks()[0]
	patched := tr.Clone()
	patched.Verts[sink].RAT = 512.5
	patched.Verts[sink].Cap = 4.25
	rat, cap := 512.5, 4.25
	rec = request(t, h, "PUT", "/v1/sessions/eco1", sessionRequest{Patches: []sessionPatch{
		{Kind: "sink", Vertex: vertexName(tr, sink), RAT: &rat, Cap: &cap},
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("patch: %d %s", rec.Code, rec.Body.String())
	}
	var delta sessionResponse
	decodeInto(t, rec, &delta)
	if delta.Session.Created || delta.Session.Resolves != 2 {
		t.Fatalf("patched session block = %+v", delta.Session)
	}
	if delta.Session.Recomputed <= 0 || delta.Session.Recomputed >= tr.Len() {
		t.Fatalf("delta resolve recomputed %d vertices, want 0 < n < %d", delta.Session.Recomputed, tr.Len())
	}
	if got, want := delta.Slack, coldSlack(t, patched, lib); got != want {
		t.Fatalf("patched session slack %v != cold slack %v", got, want)
	}
	if delta.Slack == created.Slack {
		t.Fatal("patch did not change the answer; fixture too weak")
	}

	if n := metric(t, h, "session_resolves"); n != 2 {
		t.Fatalf("session_resolves = %d, want 2", n)
	}
	if n := metric(t, h, "sessions_created"); n != 1 {
		t.Fatalf("sessions_created = %d, want 1", n)
	}
	if n := metric(t, h, "session_patches"); n != 1 {
		t.Fatalf("session_patches = %d, want 1", n)
	}
	if n := metric(t, h, "sessions_active"); n != 1 {
		t.Fatalf("sessions_active = %d, want 1", n)
	}
	if n := metric(t, h, "session_full_rebuilds"); n != 1 {
		t.Fatalf("session_full_rebuilds = %d, want 1", n)
	}
	if n := metric(t, h, "session_recomputed_vertices"); n != int64(tr.Len()+delta.Session.Recomputed) {
		t.Fatalf("session_recomputed_vertices = %d, want %d", n, tr.Len()+delta.Session.Recomputed)
	}
}

// TestSessionCacheCoherence: session resolves and plain solves share the
// result cache in both directions, because the session keys its patched tree
// by the same canonical .net text a client would POST.
func TestSessionCacheCoherence(t *testing.T) {
	tr, net, lib := sessionFixture(t)
	h := New(Config{}).Handler()

	// Session first: the creating resolve populates the cache for /v1/solve.
	rec := request(t, h, "PUT", "/v1/sessions/coh", sessionRequest{Net: net, Library: lib})
	if rec.Code != http.StatusOK {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	solveRec := post(t, h, "/v1/solve", solveRequest{Net: net, Library: lib})
	if solveRec.Code != http.StatusOK {
		t.Fatalf("solve: %d %s", solveRec.Code, solveRec.Body.String())
	}
	var solved solveResponse
	decodeInto(t, solveRec, &solved)
	if !solved.Cached {
		t.Fatal("plain solve of the session's net missed the cache")
	}
	if n := metric(t, h, "engine_runs"); n != 1 {
		t.Fatalf("engine_runs = %d, want 1 (solve served from session's cache entry)", n)
	}

	// Solve first: a plain solve of the patched net pre-warms the cache, and
	// the session's patch resolve is answered from it with zero engine work.
	sink := tr.Sinks()[0]
	patched := tr.Clone()
	patched.Verts[sink].RAT = 777.25
	patched.Verts[sink].Cap = 6.5
	patchedText := netText(t, patched, "eco", bufferkit.Driver{R: 0.2, K: 15})
	solveRec = post(t, h, "/v1/solve", solveRequest{Net: patchedText, Library: lib})
	if solveRec.Code != http.StatusOK {
		t.Fatalf("solve patched: %d %s", solveRec.Code, solveRec.Body.String())
	}
	var cold solveResponse
	decodeInto(t, solveRec, &cold)
	if cold.Cached {
		t.Fatal("patched net unexpectedly cached already")
	}

	rat, cap := 777.25, 6.5
	rec = request(t, h, "PUT", "/v1/sessions/coh", sessionRequest{Patches: []sessionPatch{
		{Kind: "sink", Vertex: vertexName(tr, sink), RAT: &rat, Cap: &cap},
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("patch: %d %s", rec.Code, rec.Body.String())
	}
	var warm sessionResponse
	decodeInto(t, rec, &warm)
	if !warm.Cached {
		t.Fatal("session resolve of pre-solved net missed the cache")
	}
	if warm.Slack != cold.Slack || warm.Buffers != cold.Buffers {
		t.Fatalf("cache returned a different result: %+v vs %+v", warm.solveResponse, cold)
	}
	if warm.Session.Recomputed != 0 || warm.Session.Resolves != 1 {
		t.Fatalf("cache-hit session block = %+v, want no new resolve", warm.Session)
	}
	if n := metric(t, h, "session_cache_hits"); n != 1 {
		t.Fatalf("session_cache_hits = %d, want 1", n)
	}
	if n := metric(t, h, "engine_runs"); n != 2 {
		t.Fatalf("engine_runs = %d, want 2 (session patch answered from cache)", n)
	}
}

func TestSessionErrors(t *testing.T) {
	_, net, lib := sessionFixture(t)
	h := New(Config{}).Handler()

	// Unknown id without net + library cannot create.
	rec := request(t, h, "PUT", "/v1/sessions/ghost", sessionRequest{})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("patch unknown session: %d %s", rec.Code, rec.Body.String())
	}

	if rec = request(t, h, "PUT", "/v1/sessions/s", sessionRequest{Net: net, Library: lib}); rec.Code != http.StatusOK {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}

	// Re-creating under the same id must match byte for byte.
	other := readTestdata(t, "line.net")
	for _, tc := range []struct {
		name string
		req  sessionRequest
	}{
		{"net", sessionRequest{Net: other, Library: lib}},
		{"library", sessionRequest{Net: net, Library: "buffer b res 1 cin 1 delay 1 cost 1\n"}},
		{"options", sessionRequest{Net: net, Library: lib, solveOptions: solveOptions{Algorithm: "lillis"}}},
	} {
		if rec = request(t, h, "PUT", "/v1/sessions/s", tc.req); rec.Code != http.StatusConflict {
			t.Fatalf("conflicting %s: %d %s", tc.name, rec.Code, rec.Body.String())
		}
	}

	// Malformed patches are rejected before touching the session.
	rat, cap := 1.0, 1.0
	for _, tc := range []struct {
		name  string
		patch sessionPatch
	}{
		{"unknown vertex", sessionPatch{Kind: "sink", Vertex: "nope", RAT: &rat, Cap: &cap}},
		{"missing fields", sessionPatch{Kind: "sink", Vertex: "v1"}},
		{"unknown kind", sessionPatch{Kind: "teleport", Vertex: "v1"}},
	} {
		rec = request(t, h, "PUT", "/v1/sessions/s", sessionRequest{Patches: []sessionPatch{tc.patch}})
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: %d %s", tc.name, rec.Code, rec.Body.String())
		}
	}

	// A well-formed patch the engine rejects (sink patch on the source)
	// surfaces as 400 via the session's sticky-error channel...
	rec = request(t, h, "PUT", "/v1/sessions/s", sessionRequest{Patches: []sessionPatch{
		{Kind: "sink", Vertex: "src", RAT: &rat, Cap: &cap},
	}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("sink patch on source: %d %s", rec.Code, rec.Body.String())
	}
	// ...and the session stays usable afterwards.
	rec = request(t, h, "PUT", "/v1/sessions/s", sessionRequest{})
	if rec.Code != http.StatusOK {
		t.Fatalf("resolve after rejected patch: %d %s", rec.Code, rec.Body.String())
	}

	// The sessions endpoint can be disabled outright.
	hOff := New(Config{MaxSessions: -1}).Handler()
	if rec = request(t, hOff, "PUT", "/v1/sessions/s", sessionRequest{Net: net, Library: lib}); rec.Code != http.StatusNotFound {
		t.Fatalf("disabled sessions: %d %s", rec.Code, rec.Body.String())
	}
}

func TestSessionDelete(t *testing.T) {
	defer checkNoGoroutineLeak(t)()
	_, net, lib := sessionFixture(t)
	h := New(Config{}).Handler()

	if rec := request(t, h, "PUT", "/v1/sessions/del", sessionRequest{Net: net, Library: lib}); rec.Code != http.StatusOK {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	rec := request(t, h, "DELETE", "/v1/sessions/del", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: %d %s", rec.Code, rec.Body.String())
	}
	var closed map[string]any
	decodeInto(t, rec, &closed)
	if closed["closed"] != true || closed["id"] != "del" {
		t.Fatalf("delete reply = %v", closed)
	}
	if rec = request(t, h, "DELETE", "/v1/sessions/del", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("double delete: %d %s", rec.Code, rec.Body.String())
	}
	// A patches-only PUT after delete is a 404; resending net and library
	// recreates the session under the same id.
	if rec = request(t, h, "PUT", "/v1/sessions/del", sessionRequest{}); rec.Code != http.StatusNotFound {
		t.Fatalf("patch deleted session: %d %s", rec.Code, rec.Body.String())
	}
	rec = request(t, h, "PUT", "/v1/sessions/del", sessionRequest{Net: net, Library: lib})
	if rec.Code != http.StatusOK {
		t.Fatalf("recreate: %d %s", rec.Code, rec.Body.String())
	}
	var resp sessionResponse
	decodeInto(t, rec, &resp)
	if !resp.Session.Created {
		t.Fatalf("recreate session block = %+v", resp.Session)
	}
}

func TestSessionLRUEviction(t *testing.T) {
	defer checkNoGoroutineLeak(t)()
	_, net, lib := sessionFixture(t)
	h := New(Config{MaxSessions: 2}).Handler()

	for _, id := range []string{"a", "b", "c"} {
		if rec := request(t, h, "PUT", "/v1/sessions/"+id, sessionRequest{Net: net, Library: lib}); rec.Code != http.StatusOK {
			t.Fatalf("create %s: %d %s", id, rec.Code, rec.Body.String())
		}
	}
	if n := metric(t, h, "sessions_evicted"); n != 1 {
		t.Fatalf("sessions_evicted = %d, want 1", n)
	}
	if n := metric(t, h, "sessions_active"); n != 2 {
		t.Fatalf("sessions_active = %d, want 2", n)
	}
	// "a" was least recently used and is gone; "b" and "c" still answer.
	if rec := request(t, h, "PUT", "/v1/sessions/a", sessionRequest{}); rec.Code != http.StatusNotFound {
		t.Fatalf("evicted session a: %d %s", rec.Code, rec.Body.String())
	}
	for _, id := range []string{"b", "c"} {
		if rec := request(t, h, "PUT", "/v1/sessions/"+id, sessionRequest{}); rec.Code != http.StatusOK {
			t.Fatalf("surviving session %s: %d %s", id, rec.Code, rec.Body.String())
		}
	}
}

// TestSessionConcurrentPutDeleteEviction hammers a small session table
// with racing creates, patches and deletes across more ids than the LRU
// holds, so every request contends with eviction. The invariants: no
// request ever sees anything but 200 (served) or 404 (evicted or
// deleted — the documented recreate signal), the table never exceeds its
// cap, the server stays coherent afterwards, and no goroutine leaks.
// Run under -race this doubles as the session-table race detector.
func TestSessionConcurrentPutDeleteEviction(t *testing.T) {
	defer checkNoGoroutineLeak(t)()
	tr, net, lib := sessionFixture(t)
	s := New(Config{MaxSessions: 4})
	h := s.Handler()

	sinkIdx := tr.Sinks()[0]
	sink := vertexName(tr, sinkIdx)
	const (
		ids     = 8 // twice the cap: creates constantly evict
		workers = 8
		iters   = 25
	)
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("race-%d", rng.Intn(ids))
				var rec *httptest.ResponseRecorder
				switch op := rng.Intn(4); op {
				case 0: // creating PUT: always lands (may evict someone)
					rec = request(t, h, "PUT", "/v1/sessions/"+id, sessionRequest{Net: net, Library: lib})
					if rec.Code != http.StatusOK {
						t.Errorf("create %s: %d %s", id, rec.Code, rec.Body.String())
					}
				case 1: // DELETE: ok or already gone
					rec = request(t, h, "DELETE", "/v1/sessions/"+id, nil)
					if rec.Code != http.StatusOK && rec.Code != http.StatusNotFound {
						t.Errorf("delete %s: %d %s", id, rec.Code, rec.Body.String())
					}
				default: // patch PUT: ok, or 404 if evicted/deleted underneath us
					rat, cap := 500+float64(rng.Intn(100)), 1+float64(rng.Intn(8))
					rec = request(t, h, "PUT", "/v1/sessions/"+id, sessionRequest{Patches: []sessionPatch{
						{Kind: "sink", Vertex: sink, RAT: &rat, Cap: &cap},
					}})
					if rec.Code != http.StatusOK && rec.Code != http.StatusNotFound {
						t.Errorf("patch %s: %d %s", id, rec.Code, rec.Body.String())
					}
				}
			}
		}()
	}
	wg.Wait()

	// The table respected its cap throughout (eviction is synchronous
	// under sessMu) and the server is still fully functional.
	if n := metric(t, h, "sessions_active"); n > 4 {
		t.Fatalf("sessions_active = %d after the storm, cap is 4", n)
	}
	rec := request(t, h, "PUT", "/v1/sessions/after", sessionRequest{Net: net, Library: lib})
	if rec.Code != http.StatusOK {
		t.Fatalf("create after storm: %d %s", rec.Code, rec.Body.String())
	}
	rat, cap := 512.5, 4.25
	rec = request(t, h, "PUT", "/v1/sessions/after", sessionRequest{Patches: []sessionPatch{
		{Kind: "sink", Vertex: sink, RAT: &rat, Cap: &cap},
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("patch after storm: %d %s", rec.Code, rec.Body.String())
	}
	var resp sessionResponse
	decodeInto(t, rec, &resp)
	if resp.Session.Created {
		t.Fatalf("post-storm patch recreated the session: %+v", resp.Session)
	}
	// Ground truth: whatever the storm left in the result cache, the
	// patched session must answer bit-identically to a cold solve.
	patched := tr.Clone()
	patched.Verts[sinkIdx].RAT = 512.5
	patched.Verts[sinkIdx].Cap = 4.25
	if want := coldSlack(t, patched, lib); resp.Slack != want {
		t.Fatalf("post-storm slack %v != cold slack %v", resp.Slack, want)
	}
}

func TestSessionTTLEviction(t *testing.T) {
	defer checkNoGoroutineLeak(t)()
	_, net, lib := sessionFixture(t)
	h := New(Config{SessionTTL: time.Millisecond}).Handler()

	if rec := request(t, h, "PUT", "/v1/sessions/old", sessionRequest{Net: net, Library: lib}); rec.Code != http.StatusOK {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	time.Sleep(5 * time.Millisecond)
	// Any session request sweeps expired entries before the table lookup.
	if rec := request(t, h, "PUT", "/v1/sessions/old", sessionRequest{}); rec.Code != http.StatusNotFound {
		t.Fatalf("expired session: %d %s", rec.Code, rec.Body.String())
	}
	if n := metric(t, h, "sessions_evicted"); n != 1 {
		t.Fatalf("sessions_evicted = %d, want 1", n)
	}
	if n := metric(t, h, "sessions_active"); n != 0 {
		t.Fatalf("sessions_active = %d, want 0", n)
	}
}
