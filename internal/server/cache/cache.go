// Package cache provides the bounded LRU result cache bufferkitd puts in
// front of the solver engines. Physical-synthesis loops resubmit the same
// net under the same library thousands of times while they iterate on
// neighboring nets; caching (net, library, algorithm, options) → result
// turns those into O(1) lookups with no engine run at all.
//
// Keys are built from SHA-256 digests of the raw request payloads (the
// .net and .buf texts) plus the canonicalized solve options, so the cache
// never needs the parsed tree and a hit is decided before parsing.
package cache

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"sync/atomic"
)

// Key identifies one solve request: content digests of the net and library
// payloads plus the canonical option string (algorithm, prune mode, max
// cost, …). Two requests with equal Keys are guaranteed the same result —
// every algorithm in the registry is deterministic.
type Key struct {
	Net     [sha256.Size]byte
	Library [sha256.Size]byte
	Options string
}

// NewKey digests the raw net and library payloads into a Key.
func NewKey(net, library []byte, options string) Key {
	return Key{Net: sha256.Sum256(net), Library: sha256.Sum256(library), Options: options}
}

// Cache is a fixed-capacity LRU map from Key to an immutable cached value.
// It is safe for concurrent use. Stored values must not be mutated after
// Put — concurrent Get calls hand out the same pointer.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*list.Element
	order   *list.List // front = most recently used
	cap     int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type entry struct {
	key Key
	val any
}

// New creates a cache holding at most capacity entries. capacity <= 0
// returns a disabled cache: Get always misses and Put is a no-op, so
// callers need no nil checks to turn caching off.
func New(capacity int) *Cache {
	c := &Cache{cap: capacity}
	if capacity > 0 {
		c.entries = make(map[Key]*list.Element, capacity)
		c.order = list.New()
	}
	return c
}

// Get returns the value cached under k and whether it was present, marking
// the entry most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	if c.cap <= 0 {
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.entries[k]
	var v any
	if ok {
		c.order.MoveToFront(el)
		v = el.Value.(*entry).val
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return v, true
}

// Put stores v under k, evicting the least recently used entry when the
// cache is full. Storing an existing key refreshes its value and recency.
func (c *Cache) Put(k Key, v any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*entry).val = v
		c.order.MoveToFront(el)
		return
	}
	c.putNewLocked(k, v)
}

// PutIfAbsent stores v under k only when the key is not already cached,
// reporting whether it stored. This is the write path for fleet
// replication (write-through and read-repair): results are deterministic,
// so an existing local entry is never worth replacing, and — unlike Put —
// a replicated copy of something already cached must not refresh the
// entry's recency, or replication traffic would distort the LRU order
// that local demand established.
func (c *Cache) PutIfAbsent(k Key, v any) bool {
	if c.cap <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		return false
	}
	c.putNewLocked(k, v)
	return true
}

// putNewLocked inserts a key known to be absent, evicting the LRU entry
// when full. Callers hold mu.
func (c *Cache) putNewLocked(k Key, v any) {
	if c.order.Len() >= c.cap {
		lru := c.order.Back()
		c.order.Remove(lru)
		delete(c.entries, lru.Value.(*entry).key)
		c.evictions.Add(1)
	}
	c.entries[k] = c.order.PushFront(&entry{key: k, val: v})
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits, Misses, Evictions int64
	Len, Cap                int
}

// Stats returns the cache's counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Len:       c.Len(),
		Cap:       max(c.cap, 0),
	}
}
