package cache

import (
	"fmt"
	"sync"
	"testing"
)

func key(i int) Key {
	return NewKey([]byte(fmt.Sprintf("net%d", i)), []byte("lib"), "algo=new")
}

func TestGetPutEvictLRU(t *testing.T) {
	c := New(2)
	c.Put(key(1), "a")
	c.Put(key(2), "b")
	if v, ok := c.Get(key(1)); !ok || v != "a" {
		t.Fatalf("Get(1) = %v, %v", v, ok)
	}
	// 2 is now least recently used; inserting 3 must evict it.
	c.Put(key(3), "c")
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("key 2 should have been evicted")
	}
	if v, ok := c.Get(key(1)); !ok || v != "a" {
		t.Fatalf("Get(1) after eviction = %v, %v", v, ok)
	}
	if v, ok := c.Get(key(3)); !ok || v != "c" {
		t.Fatalf("Get(3) = %v, %v", v, ok)
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Len != 2 || s.Cap != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Hits != 3 || s.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", s.Hits, s.Misses)
	}
}

func TestPutExistingRefreshes(t *testing.T) {
	c := New(2)
	c.Put(key(1), "a")
	c.Put(key(2), "b")
	c.Put(key(1), "a2") // refresh: 2 becomes LRU
	c.Put(key(3), "c")
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("key 2 should have been evicted after key 1 was refreshed")
	}
	if v, _ := c.Get(key(1)); v != "a2" {
		t.Fatalf("refreshed value = %v, want a2", v)
	}
}

func TestKeySeparatesPayloadsAndOptions(t *testing.T) {
	base := NewKey([]byte("net"), []byte("lib"), "algo=new")
	for name, other := range map[string]Key{
		"net":     NewKey([]byte("net2"), []byte("lib"), "algo=new"),
		"library": NewKey([]byte("net"), []byte("lib2"), "algo=new"),
		"options": NewKey([]byte("net"), []byte("lib"), "algo=lillis"),
	} {
		if other == base {
			t.Errorf("%s change did not change the key", name)
		}
	}
	if again := NewKey([]byte("net"), []byte("lib"), "algo=new"); again != base {
		t.Fatal("identical inputs must produce identical keys")
	}
}

func TestPutIfAbsent(t *testing.T) {
	c := New(2)
	if !c.PutIfAbsent(key(1), "a") {
		t.Fatal("PutIfAbsent on empty cache did not store")
	}
	if c.PutIfAbsent(key(1), "clobber") {
		t.Fatal("PutIfAbsent replaced an existing entry")
	}
	if v, _ := c.Get(key(1)); v != "a" {
		t.Fatalf("value = %v, want original", v)
	}
	// A replicated copy of an existing key must not refresh recency:
	// after touching 1 then replicating 1 again, 2 — not 1 — stays newest.
	c.Put(key(2), "b")
	c.PutIfAbsent(key(1), "again") // no-op, no recency bump for 1
	c.Put(key(3), "c")             // evicts 1 (LRU), not 2
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("key 1 survived eviction — PutIfAbsent bumped recency")
	}
	if _, ok := c.Get(key(2)); !ok {
		t.Fatal("key 2 evicted out of order")
	}
	if New(0).PutIfAbsent(key(1), "x") {
		t.Fatal("disabled cache stored a replica")
	}
}

func TestDisabledCache(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		c := New(capacity)
		c.Put(key(1), "a")
		if _, ok := c.Get(key(1)); ok {
			t.Fatalf("cap %d: disabled cache returned a hit", capacity)
		}
		if c.Len() != 0 {
			t.Fatalf("cap %d: Len = %d", capacity, c.Len())
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(i % 16)
				c.Put(k, i)
				c.Get(k)
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 8 {
		t.Fatalf("Len = %d exceeds capacity", n)
	}
}
