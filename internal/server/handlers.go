package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"bufferkit"
	"bufferkit/internal/obs"
	"bufferkit/internal/orderbuf"
	"bufferkit/internal/resilience"
	"bufferkit/internal/server/cache"
)

// solveRequest is the POST /v1/solve payload.
type solveRequest struct {
	// Net is the net in the repository's .net text format.
	Net string `json:"net"`
	// Library is the buffer library in the .buf text format.
	Library string `json:"library"`
	solveOptions
}

// solveResponse is the POST /v1/solve reply and the per-net body of a
// batch NDJSON line.
type solveResponse struct {
	Net        string            `json:"net,omitempty"`
	Algorithm  string            `json:"algorithm"`
	Slack      float64           `json:"slack"`
	Buffers    int               `json:"buffers"`
	Cost       int               `json:"cost"`
	Candidates int               `json:"candidates,omitempty"`
	Placement  map[string]string `json:"placement"`
	Stats      *bufferkit.Stats  `json:"stats,omitempty"`
	Frontier   []frontierPoint   `json:"frontier,omitempty"`
	// Cached reports whether the result came from the LRU cache without an
	// engine run.
	Cached bool `json:"cached"`
	// Coalesced reports that the result was shared from another request's
	// in-flight engine run (singleflight) — like Cached, no engine ran for
	// this request.
	Coalesced bool `json:"coalesced,omitempty"`
	// ElapsedMs is the engine runtime of the (original) solve. It is
	// reported for /v1/solve runs only: batch workers overlap, so per-net
	// wall time is not measurable there and the field is omitted.
	ElapsedMs float64 `json:"elapsed_ms,omitempty"`
}

// frontierPoint is one cost–slack Pareto point (AlgoCostSlack).
type frontierPoint struct {
	Cost    int     `json:"cost"`
	Slack   float64 `json:"slack"`
	Buffers int     `json:"buffers"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
	// Field/Vertex/Type carry ValidationError detail when present.
	Field  string `json:"field,omitempty"`
	Vertex *int   `json:"vertex,omitempty"`
	Type   *int   `json:"type,omitempty"`
	// Peer names the fleet member whose verdict this is, when the error
	// was relayed from a forwarded request — a peer's 504 is
	// distinguishable from the receiving node's own deadline.
	Peer string `json:"peer,omitempty"`
	// Trace is the request's trace id — the same value as the
	// X-Bufferkit-Trace response header — so a failed request is
	// correlatable with /debug/traces and the server logs.
	Trace string `json:"trace,omitempty"`
}

// handleSolve solves one net: cache lookup on the raw payload digests,
// then parse, and run under the request deadline — collapsing onto an
// identical in-flight solve when one exists. The winner of a singleflight
// populates the cache; followers are answered from the shared result with
// no engine run of their own.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.solveReqs.Add(1)
	tr := obs.TraceFromContext(r.Context())
	var req solveRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	key := cache.NewKey([]byte(req.Net), []byte(req.Library), req.solveOptions.cacheOptions())
	tr.Set("digest", digestAttr(key.Net))
	lookup := tr.StartSpan("cache_lookup")
	v, ok := s.cache.Get(key)
	lookup.Set("hit", ok)
	lookup.End()
	if ok {
		resp := *v.(*solveResponse) // copy: cached entries are immutable
		resp.Cached = true
		tr.Set("cached", true)
		writeJSON(w, http.StatusOK, &resp)
		return
	}
	// Fleet routing: a node that does not own this digest forwards it to
	// its cache home before spending any parse or engine time here. False
	// means solve locally — this node is an owner, the request already
	// hopped, or peers are unreachable and local fallback applies.
	if s.handleSolveForward(w, r, &req, key) {
		return
	}
	net, lib, err := parsePayload(req.Net, req.Library)
	if err != nil {
		s.writeError(w, err)
		return
	}
	timeout := s.timeout(req.solveOptions)
	// The flight runs detached from any one caller (a disconnect must not
	// kill the run other waiters share) under its own solve budget;
	// admission happens inside, so N coalesced requests consume one engine
	// slot, not N. The trace is captured lexically: the winner (the caller
	// that created the flight) records the admission and engine spans;
	// followers see only their own wait.
	resp, err, shared := s.flights.Do(r.Context(), key, func(ctx context.Context) (*solveResponse, error) {
		ctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		admit := tr.StartSpan("admission")
		if err := s.adm.Acquire(ctx); err != nil {
			admit.End()
			return nil, err
		}
		admit.End()
		defer s.adm.Release(1)
		solver, err := req.newSolver(lib, bufferkit.WithDriver(net.Driver))
		if err != nil {
			return nil, err
		}
		defer solver.Close()
		s.inFlightRuns.Add(1)
		s.engineRuns.Add(1)
		run := tr.StartSpan("engine_run")
		start := time.Now()
		res, err := solver.Run(ctx, net.Tree)
		elapsed := time.Since(start)
		s.inFlightRuns.Add(-1)
		s.adm.Observe(elapsed)
		s.solveLatency.observe(elapsed)
		if err != nil {
			run.End()
			return nil, err
		}
		resp := buildResponse(net, lib, solver.Algorithm(), res, elapsed)
		s.recordEngineStats(resp.Stats, run)
		run.End()
		s.cache.Put(key, resp)
		s.cacheStores.Add(1)
		s.replicate(key, resp, tr.Traceparent()) // fleet write-through to the other owners
		return resp, nil
	})
	if err != nil {
		var pe *resilience.PanicError
		if errors.As(err, &pe) {
			panic(pe) // recovery middleware: 500 + panics_total + original stack
		}
		s.writeError(w, s.asCanceled(err))
		return
	}
	enc := tr.StartSpan("encode")
	if shared {
		s.sfShared.Add(1)
		tr.Set("coalesced", true)
		out := *resp // copy: the shared result is immutable
		out.Coalesced = true
		writeJSON(w, http.StatusOK, &out)
	} else {
		writeJSON(w, http.StatusOK, resp)
	}
	enc.End()
}

// batchRequest is the POST /v1/batch payload.
type batchRequest struct {
	// Library is shared by every net of the batch.
	Library string `json:"library"`
	// Nets are the .net texts to solve.
	Nets []string `json:"nets"`
	// Ordered asks for input-order NDJSON lines instead of completion
	// order.
	Ordered bool `json:"ordered,omitempty"`
	solveOptions
}

// batchLine is one NDJSON line of the batch response. Exactly one of
// Result and Error is set per net; a trailing line with Index = -1 and
// Error set reports a batch-level abort (deadline, client disconnect).
type batchLine struct {
	Index  int            `json:"index"`
	Result *solveResponse `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// handleBatch solves a batch, streaming one NDJSON line per net. Cached
// nets are answered without an engine run; the rest go through
// Solver.Stream on as many workers as the admission controller can spare
// (at least one, so batches never deadlock each other). Admission happens
// before the response header, so an overloaded server sheds the whole
// batch with 429 + Retry-After while that is still expressible; once the
// stream has started, an abort is reported as a terminal NDJSON error
// record instead of a silent truncation.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.batchReqs.Add(1)
	var req batchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Nets) == 0 {
		s.writeError(w, badRequestf("nets", "batch has no nets"))
		return
	}
	if len(req.Nets) > s.cfg.MaxBatchNets {
		s.writeError(w, badRequestf("nets", "batch has %d nets; limit is %d", len(req.Nets), s.cfg.MaxBatchNets))
		return
	}
	s.batchNets.Add(int64(len(req.Nets)))

	lib, err := bufferkit.ParseLibrary(strings.NewReader(req.Library))
	if err != nil {
		s.writeError(w, wrapParseError("library", err))
		return
	}
	// Parse every net up front: a malformed payload fails the whole batch
	// with a 400 naming the offending index, before any engine time is
	// spent.
	type job struct {
		key  cache.Key
		net  *bufferkit.Net
		resp *solveResponse // non-nil = cache hit
	}
	jobs := make([]job, len(req.Nets))
	options := req.solveOptions.cacheOptions()
	for i, text := range req.Nets {
		jobs[i].key = cache.NewKey([]byte(text), []byte(req.Library), options)
		if v, ok := s.cache.Get(jobs[i].key); ok {
			resp := *v.(*solveResponse)
			resp.Cached = true
			jobs[i].resp = &resp
			continue
		}
		net, err := bufferkit.ParseNet(strings.NewReader(text))
		if err != nil {
			s.writeError(w, badRequestf("nets", "net %d: %v", i, err))
			return
		}
		jobs[i].net = net
	}

	// Sub-batch of the cache misses, remembering original indices.
	var trees []*bufferkit.Tree
	var drivers []bufferkit.Driver
	var origIdx []int
	for i := range jobs {
		if jobs[i].resp == nil {
			trees = append(trees, jobs[i].net.Tree)
			drivers = append(drivers, jobs[i].net.Driver)
			origIdx = append(origIdx, i)
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.solveOptions))
	defer cancel()

	// Take one guaranteed engine slot (so the batch always progresses)
	// plus whatever extra capacity is idle right now — before the header,
	// while shedding is still a clean 429.
	slots := 0
	if len(trees) > 0 {
		if err := s.adm.Acquire(ctx); err != nil {
			s.writeError(w, s.asCanceled(err))
			return
		}
		slots = 1 + s.adm.TryExtra(min(len(trees), s.cfg.MaxConcurrent)-1)
		s.inFlightRuns.Add(int64(slots))
		defer func() {
			s.inFlightRuns.Add(int64(-slots))
			s.adm.Release(slots)
		}()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(line *batchLine) bool {
		if err := enc.Encode(line); err != nil {
			cancel() // client gone; stop the workers
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	// deliver reorders lines by original index when Ordered is set;
	// otherwise it is emit itself.
	deliver := emit
	if req.Ordered {
		buf := orderbuf.New[*batchLine](len(jobs))
		deliver = func(line *batchLine) bool {
			return buf.Add(line.Index, line, emit)
		}
	}

	// delivered counts lines handed to deliver; the batch is complete
	// exactly when every net produced one (in ordered mode a gap from a
	// canceled net keeps later pending lines unemitted, but then the
	// count is short too, so the truncation line below still fires).
	delivered := 0
	// Cache hits stream immediately (in ordered mode they wait for their
	// turn inside deliver).
	for i := range jobs {
		if jobs[i].resp != nil {
			if !deliver(&batchLine{Index: i, Result: jobs[i].resp}) {
				return
			}
			delivered++
		}
	}
	if len(trees) > 0 {
		solver, err := req.newSolver(lib,
			bufferkit.WithDrivers(drivers),
			bufferkit.WithWorkers(slots),
		)
		if err != nil {
			emit(&batchLine{Index: -1, Error: errorMessage(err)})
			return
		}
		for res, err := range solver.Stream(ctx, trees) {
			if res.Index < 0 {
				emit(&batchLine{Index: -1, Error: errorMessage(err)})
				return
			}
			i := origIdx[res.Index]
			s.engineRuns.Add(1)
			if err != nil {
				if !deliver(&batchLine{Index: i, Error: errorMessage(err)}) {
					return
				}
				delivered++
				continue
			}
			resp := buildResponse(jobs[i].net, lib, solver.Algorithm(), &res, 0)
			s.recordEngineStats(resp.Stats, obs.SpanRef{})
			s.cache.Put(jobs[i].key, resp)
			s.cacheStores.Add(1)
			if !deliver(&batchLine{Index: i, Result: resp}) {
				return
			}
			delivered++
		}
	}
	if delivered < len(jobs) {
		// The stream ended early (deadline or cancellation); flush a
		// terminal error record so the client can tell a truncated batch
		// from a complete one.
		err := ctx.Err()
		if err == nil {
			err = context.Canceled
		}
		emit(&batchLine{Index: -1, Error: errorMessage(s.asCanceled(err))})
	}
}

// handleAlgorithms lists the registry.
func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"algorithms": bufferkit.AlgorithmInfos()})
}

// handleHealthz is the liveness probe: 200 as long as the process serves.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 503 while draining so load
// balancers divert new traffic, 200 otherwise. bufferkitd flips drain mode
// on SIGTERM before it stops accepting connections.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleMetrics renders the server's expvar map: JSON by default, the
// Prometheus text exposition format when the client asks for text/plain
// (or ?format=prom). Metric names are identical in both — the Prometheus
// mapping is mechanical (see obs.WriteProm).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" ||
		strings.Contains(r.Header.Get("Accept"), "text/plain") {
		w.Header().Set("Content-Type", obs.PromContentType)
		obs.WriteProm(w, s.metrics)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, s.metrics.String())
}

// decodeBody JSON-decodes a size-limited request body into dst. A body
// exceeding Config.MaxBodyBytes maps to 413 Request Entity Too Large, not
// a generic decode-error 400.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &httpError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return badRequestf("", "malformed JSON body: %v", err)
	}
	return nil
}

// parsePayload parses the raw net and library texts, mapping failures to
// 400s that name the offending request field.
func parsePayload(netText, libText string) (*bufferkit.Net, bufferkit.Library, error) {
	net, err := bufferkit.ParseNet(strings.NewReader(netText))
	if err != nil {
		return nil, nil, wrapParseError("net", err)
	}
	lib, err := bufferkit.ParseLibrary(strings.NewReader(libText))
	if err != nil {
		return nil, nil, wrapParseError("library", err)
	}
	return net, lib, nil
}

// wrapParseError turns a netlist parse/validation failure into a 400.
// *ValidationError passes through so its vertex/type/field detail reaches
// the client; plain parse errors are pinned to the request field.
func wrapParseError(field string, err error) error {
	var verr *bufferkit.ValidationError
	if errors.As(err, &verr) {
		return verr
	}
	return badRequestf(field, "%v", err)
}

// buildResponse converts a NetResult into the wire shape.
func buildResponse(net *bufferkit.Net, lib bufferkit.Library, algo string, res *bufferkit.NetResult, elapsed time.Duration) *solveResponse {
	resp := &solveResponse{
		Net:        net.Name,
		Algorithm:  algo,
		Slack:      res.Slack,
		Buffers:    res.Placement.Count(),
		Cost:       res.Placement.Cost(lib),
		Candidates: res.Candidates,
		Placement:  placementNames(net.Tree, lib, res.Placement),
		ElapsedMs:  float64(elapsed) / float64(time.Millisecond),
	}
	if res.Stats != (bufferkit.Stats{}) {
		stats := res.Stats
		resp.Stats = &stats
	}
	for _, p := range res.Frontier {
		resp.Frontier = append(resp.Frontier, frontierPoint{Cost: p.Cost, Slack: p.Slack, Buffers: p.Placement.Count()})
	}
	return resp
}

// asCanceled maps a fired context error onto the solver's ErrCanceled so
// the status mapping has one cancellation path.
func (s *Server) asCanceled(err error) error {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return fmt.Errorf("%w: %v", bufferkit.ErrCanceled, err)
	}
	return err
}

// errorMessage renders err for an NDJSON line.
func errorMessage(err error) string {
	if err == nil {
		return "unknown error"
	}
	return err.Error()
}

// writeError maps err onto an HTTP status with a JSON error body:
// *ValidationError and malformed payloads → 400, body too large → 413,
// ErrInfeasible → 422, load shedding (*resilience.ShedError) → 429 with a
// Retry-After header, ErrCanceled (request deadline) → 504, anything
// else → 500.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.httpErrors.Add(1)
	resp := errorResponse{Error: err.Error(), Trace: requestTrace(w).TraceID()}
	status := http.StatusInternalServerError
	var herr *httpError
	var verr *bufferkit.ValidationError
	var shed *resilience.ShedError
	switch {
	case errors.As(err, &herr):
		status = herr.status
		resp.Field = herr.field
	case errors.As(err, &verr):
		status = http.StatusBadRequest
		resp.Field = verr.Field
		if verr.Vertex >= 0 {
			v := verr.Vertex
			resp.Vertex = &v
		}
		if verr.Type >= 0 {
			t := verr.Type
			resp.Type = &t
		}
	case errors.As(err, &shed):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(shed.RetryAfter)))
	case errors.Is(err, bufferkit.ErrInfeasible):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, bufferkit.ErrCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, &resp)
}

// retryAfterSeconds renders a backoff hint as whole Retry-After seconds,
// at least 1 so clients always wait before retrying.
func retryAfterSeconds(d time.Duration) int {
	return max(int(math.Ceil(d.Seconds())), 1)
}

// writeJSON writes v as the complete response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
