package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	"bufferkit"
)

// chipRequest is the POST /v1/chip payload.
type chipRequest struct {
	// Instance is the multi-net chip instance in the JSON format
	// cmd/netgen -chip emits: a site grid with blockages plus nets carrying
	// embedded .net text and vertex→site maps.
	Instance json.RawMessage `json:"instance"`
	// Library is the .buf text shared by every net of the instance.
	Library string `json:"library"`
	// Rounds caps the pricing rounds (0 = engine default; the repair pass
	// still runs after the budget when needed).
	Rounds int `json:"rounds,omitempty"`
	// Step is the initial subgradient price step in ps per unit of site
	// overflow (0 = engine default).
	Step float64 `json:"step,omitempty"`
	// StepDecay is the per-round multiplicative step decay in (0, 1]
	// (0 = engine default).
	StepDecay float64 `json:"step_decay,omitempty"`
	// HistoryStep is the PathFinder-style permanent price increment per
	// unit of overflow per round (0 = engine default, negative disables).
	HistoryStep float64 `json:"history_step,omitempty"`
	// Capacity overrides the instance's default per-site capacity
	// (0 keeps the instance's own).
	Capacity int `json:"capacity,omitempty"`
	solveOptions
}

// chipLine is one NDJSON line of the chip response. Exactly one of Round,
// Done and Error is set: every pricing (and repair) round streams as a
// Round record the moment it completes, and the stream ends with either a
// Done summary or an Error record. An Error record after Round records
// means the solve aborted mid-run; CompletedRounds/SolvedNets then carry
// the partial progress made before the abort.
type chipLine struct {
	Round *bufferkit.ChipRound `json:"round,omitempty"`
	Done  *chipSummary         `json:"done,omitempty"`
	Error string               `json:"error,omitempty"`
	// CompletedRounds counts fully finished pricing rounds and SolvedNets
	// the oracle solves completed inside the aborted round (Error records
	// from a deadline or disconnect abort only).
	CompletedRounds int `json:"completed_rounds,omitempty"`
	SolvedNets      int `json:"solved_nets,omitempty"`
}

// chipSummary is the terminal record of a successful chip stream.
type chipSummary struct {
	Algorithm string `json:"algorithm"`
	Feasible  bool   `json:"feasible"`
	Nets      int    `json:"nets"`
	Rounds    int    `json:"rounds"`
	Buffers   int    `json:"buffers"`
	// TotalSlack sums the true (unpriced) per-net slacks; WorstSlack and
	// WorstNet identify the minimum.
	TotalSlack float64 `json:"total_slack"`
	WorstSlack float64 `json:"worst_slack"`
	WorstNet   int     `json:"worst_net"`
	// Slacks and Placements are indexed like the instance's nets.
	Slacks     []float64           `json:"slacks"`
	Placements []map[string]string `json:"placements"`
	ElapsedMs  float64             `json:"elapsed_ms"`
}

// handleChip solves a multi-net chip instance by Lagrangian
// price-and-resolve, streaming one NDJSON convergence record per round.
// Admission happens before the response header — one guaranteed engine
// slot plus whatever extra capacity is idle becomes the round's parallel
// re-solve pool — so an overloaded server sheds the whole request with
// 429 + Retry-After while that is still expressible. Failures before the
// first round (validation, an infeasible net, a deadline that fires
// before any round completes) map to clean HTTP statuses; once round
// records are flowing, an abort is reported as a terminal NDJSON error
// record carrying the partial-progress counters instead of a silent
// truncation.
func (s *Server) handleChip(w http.ResponseWriter, r *http.Request) {
	s.chipReqs.Add(1)
	var req chipRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Instance) == 0 || string(req.Instance) == "null" {
		s.writeError(w, badRequestf("instance", "chip request has no instance"))
		return
	}
	inst, err := bufferkit.ParseChipInstance(bytes.NewReader(req.Instance))
	if err != nil {
		s.writeError(w, wrapParseError("instance", err))
		return
	}
	if len(inst.Nets) > s.cfg.MaxChipNets {
		s.writeError(w, badRequestf("instance", "instance has %d nets; limit is %d",
			len(inst.Nets), s.cfg.MaxChipNets))
		return
	}
	lib, err := bufferkit.ParseLibrary(strings.NewReader(req.Library))
	if err != nil {
		s.writeError(w, wrapParseError("library", err))
		return
	}
	s.chipNets.Add(int64(len(inst.Nets)))

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.solveOptions))
	defer cancel()

	// One guaranteed engine slot (so chip solves always progress) plus the
	// idle extras — taken before the header, while shedding is still a
	// clean 429.
	if err := s.adm.Acquire(ctx); err != nil {
		s.writeError(w, s.asCanceled(err))
		return
	}
	slots := 1 + s.adm.TryExtra(min(len(inst.Nets), s.cfg.MaxConcurrent)-1)
	s.inFlightRuns.Add(int64(slots))
	defer func() {
		s.inFlightRuns.Add(int64(-slots))
		s.adm.Release(slots)
	}()

	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	// The header is written lazily on the first record, so everything that
	// fails before round 1 completes still gets a real HTTP status.
	wroteHeader := false
	emit := func(line *chipLine) bool {
		if !wroteHeader {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			wroteHeader = true
		}
		if err := enc.Encode(line); err != nil {
			cancel() // client gone; abort the allocator
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	opts := []bufferkit.Option{
		bufferkit.WithWorkers(slots),
		bufferkit.WithChipProgress(func(rd bufferkit.ChipRound) {
			s.chipRounds.Add(1)
			round := rd
			emit(&chipLine{Round: &round})
		}),
	}
	// Zero means "engine default" on every knob; nonzero values — including
	// invalid ones — pass through so the option validation produces the
	// 400s.
	if req.Rounds != 0 {
		opts = append(opts, bufferkit.WithChipRounds(req.Rounds))
	}
	if req.Step != 0 {
		opts = append(opts, bufferkit.WithChipStep(req.Step))
	}
	if req.StepDecay != 0 {
		opts = append(opts, bufferkit.WithChipStepDecay(req.StepDecay))
	}
	if req.HistoryStep != 0 {
		opts = append(opts, bufferkit.WithChipHistoryStep(req.HistoryStep))
	}
	if req.Capacity != 0 {
		opts = append(opts, bufferkit.WithChipCapacity(req.Capacity))
	}
	solver, err := req.newSolver(lib, opts...)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer solver.Close()

	s.engineRuns.Add(1)
	start := time.Now()
	res, err := solver.SolveChip(ctx, inst)
	elapsed := time.Since(start)
	if err != nil {
		var pe *bufferkit.PartialChipError
		if errors.As(err, &pe) {
			s.chipDeadlineAborts.Add(1)
			s.chipAbortedRounds.Add(int64(pe.CompletedRounds))
		}
		err = s.asCanceled(err)
		if !wroteHeader {
			s.writeError(w, err)
			return
		}
		s.httpErrors.Add(1)
		line := &chipLine{Error: errorMessage(err)}
		if pe != nil {
			line.CompletedRounds = pe.CompletedRounds
			line.SolvedNets = pe.SolvedNets
		}
		emit(line)
		return
	}
	placements := make([]map[string]string, len(inst.Nets))
	for i := range inst.Nets {
		placements[i] = placementNames(inst.Nets[i].Tree, lib, res.Placements[i])
	}
	emit(&chipLine{Done: &chipSummary{
		Algorithm:  solver.Algorithm(),
		Feasible:   res.Feasible,
		Nets:       len(inst.Nets),
		Rounds:     len(res.Rounds),
		Buffers:    res.Buffers,
		TotalSlack: res.TotalSlack,
		WorstSlack: res.WorstSlack,
		WorstNet:   res.WorstNet,
		Slacks:     res.Slacks,
		Placements: placements,
		ElapsedMs:  float64(elapsed) / float64(time.Millisecond),
	}})
}
