package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bufferkit"
)

// benchBody builds the /v1/solve payload once.
func benchBody(b *testing.B) []byte {
	body, err := json.Marshal(solveRequest{
		Net:     readTestdata(b, "line.net"),
		Library: readTestdata(b, "lib8.buf"),
	})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func benchSolve(b *testing.B, cfg Config) {
	h := New(cfg).Handler()
	body := benchBody(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkServerSolve measures the full uncached request path: JSON
// decode, net/library parse, engine run on a pooled warm engine, JSON
// encode. Caching is disabled so every iteration solves.
func BenchmarkServerSolve(b *testing.B) {
	benchSolve(b, Config{CacheEntries: -1})
}

// BenchmarkServerSolveCached measures the warm cache-hit path: digest,
// LRU lookup, JSON encode — no parsing, no engine run.
func BenchmarkServerSolveCached(b *testing.B) {
	benchSolve(b, Config{})
}

// BenchmarkServerSolveObs is the uncached path with full observability:
// tracing (on by default) plus the JSON request-summary log line. The
// acceptance guard compares its p50 against BenchmarkServerSolveNoObs —
// the overhead budget is 2%.
func BenchmarkServerSolveObs(b *testing.B) {
	benchSolve(b, Config{
		CacheEntries: -1,
		Logger:       slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
}

// BenchmarkServerSolveNoObs is the same path with the recorder disabled
// entirely (TraceRing < 0): every trace call no-ops against a nil
// recorder. This is the baseline the 2% tracing budget is measured from.
func BenchmarkServerSolveNoObs(b *testing.B) {
	benchSolve(b, Config{CacheEntries: -1, TraceRing: -1})
}

// BenchmarkServerOverload drives distinct (cache-busting) solves at a
// deliberately undersized server — 2 engine slots, a short queue — from
// many more client goroutines than slots, the 4×-overload shape of the
// chaos suite. Every request must terminate as a result or a clean 429;
// sheds/op reports how much of the offered load the admission controller
// rejected instead of queueing unboundedly.
func BenchmarkServerOverload(b *testing.B) {
	h := New(Config{
		MaxConcurrent: 2,
		MaxQueue:      4,
		QueueTimeout:  time.Millisecond,
		CacheEntries:  -1,
	}).Handler()
	// A net heavy enough (~ms) that 4× offered load genuinely contends for
	// the 2 slots; a name placeholder makes each request a distinct cache
	// key without rebuilding the net text per iteration.
	const placeholder = "PLACEHOLDER"
	tr := bufferkit.TwoPinNet(50000, 2000, 10, 1e6, bufferkit.PaperWire())
	body, err := json.Marshal(solveRequest{
		Net:     netText(b, tr, placeholder, bufferkit.Driver{R: 0.2, K: 15}),
		Library: readTestdata(b, "lib8.buf"),
	})
	if err != nil {
		b.Fatal(err)
	}
	template := string(body)
	var seq, sheds, solved atomic.Int64
	b.SetParallelism(4) // 4×GOMAXPROCS goroutines vs 2 slots
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			body := strings.Replace(template, placeholder,
				fmt.Sprintf("net%d", seq.Add(1)), 1)
			req := httptest.NewRequest("POST", "/v1/solve", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			switch rec.Code {
			case http.StatusOK:
				solved.Add(1)
			case http.StatusTooManyRequests:
				if rec.Header().Get("Retry-After") == "" {
					b.Errorf("429 without Retry-After")
				}
				sheds.Add(1)
			default:
				b.Errorf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(sheds.Load())/float64(b.N), "sheds/op")
	b.ReportMetric(float64(solved.Load())/float64(b.N), "solved/op")
}
