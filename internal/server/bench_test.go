package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchBody builds the /v1/solve payload once.
func benchBody(b *testing.B) []byte {
	body, err := json.Marshal(solveRequest{
		Net:     readTestdata(b, "line.net"),
		Library: readTestdata(b, "lib8.buf"),
	})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func benchSolve(b *testing.B, cfg Config) {
	h := New(cfg).Handler()
	body := benchBody(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkServerSolve measures the full uncached request path: JSON
// decode, net/library parse, engine run on a pooled warm engine, JSON
// encode. Caching is disabled so every iteration solves.
func BenchmarkServerSolve(b *testing.B) {
	benchSolve(b, Config{CacheEntries: -1})
}

// BenchmarkServerSolveCached measures the warm cache-hit path: digest,
// LRU lookup, JSON encode — no parsing, no engine run.
func BenchmarkServerSolveCached(b *testing.B) {
	benchSolve(b, Config{})
}
