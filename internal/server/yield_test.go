package server

import (
	"net/http"
	"strings"
	"testing"

	"bufferkit"
)

func yieldReq(samples int, sigma float64) yieldRequest {
	seed := int64(3)
	return yieldRequest{
		Net:     "net y\ndriver res 0.2 k 15\nnode n1 parent src res 0.3 cap 400 buffer\nsink s1 parent n1 res 0.3 cap 400 load 12 rat 1000\n",
		Samples: samples,
		Sigma:   sigma,
		Seed:    &seed,
	}
}

// TestYieldSeedCanonicalization: an absent seed and the explicit default
// share one cache entry, while seed 0 is a real, distinct seed (not
// remapped to the default).
func TestYieldSeedCanonicalization(t *testing.T) {
	h := New(Config{}).Handler()
	req := yieldReq(8, 0.1)
	req.Library = readTestdata(t, "lib8.buf")
	req.Seed = nil
	if rec := post(t, h, "/v1/yield", req); rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	one := int64(1)
	req.Seed = &one
	var resp yieldResponse
	decodeInto(t, post(t, h, "/v1/yield", req), &resp)
	if !resp.Cached {
		t.Fatal("explicit default seed missed the absent-seed cache entry")
	}
	zero := int64(0)
	req.Seed = &zero
	decodeInto(t, post(t, h, "/v1/yield", req), &resp)
	if resp.Cached {
		t.Fatal("seed 0 aliased onto the default seed's cache entry")
	}
}

func TestYieldHappyPath(t *testing.T) {
	h := New(Config{}).Handler()
	req := yieldReq(32, 0.08)
	req.Library = readTestdata(t, "lib8.buf")
	req.Robust = true
	req.ProcessCorners = true
	rec := post(t, h, "/v1/yield", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp yieldResponse
	decodeInto(t, rec, &resp)
	if resp.Samples != 1+4+32 {
		t.Fatalf("samples %d, want 37 (nominal + 4 corners + 32 MC)", resp.Samples)
	}
	if resp.Algorithm != bufferkit.AlgoNew {
		t.Fatalf("algorithm %q, want %q", resp.Algorithm, bufferkit.AlgoNew)
	}
	if resp.Yield < 0 || resp.Yield > 1 || resp.OptimalYield < resp.Yield {
		t.Fatalf("incoherent yields: %g > optimal %g", resp.Yield, resp.OptimalYield)
	}
	if !(resp.Slack.Min <= resp.Slack.P50 && resp.Slack.P50 <= resp.Slack.Max) {
		t.Fatalf("incoherent distribution: %+v", resp.Slack)
	}
	if len(resp.Placements) == 0 || resp.Chosen >= len(resp.Placements) {
		t.Fatalf("bad placements summary: chosen %d of %d", resp.Chosen, len(resp.Placements))
	}
	if resp.Cached {
		t.Fatal("first request reported cached")
	}
	if got := metric(t, h, "yield_requests"); got != 1 {
		t.Fatalf("yield_requests = %d, want 1", got)
	}
	if got := metric(t, h, "yield_samples"); got != 37 {
		t.Fatalf("yield_samples = %d, want 37", got)
	}
}

// TestYieldDeterministicAndCached: the same payload must hit the cache on
// the second call (no engine runs) and return the identical result.
func TestYieldDeterministicAndCached(t *testing.T) {
	h := New(Config{}).Handler()
	req := yieldReq(16, 0.1)
	req.Library = readTestdata(t, "lib8.buf")

	rec1 := post(t, h, "/v1/yield", req)
	if rec1.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec1.Code, rec1.Body.String())
	}
	runsAfterFirst := metric(t, h, "engine_runs")

	rec2 := post(t, h, "/v1/yield", req)
	if rec2.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec2.Code, rec2.Body.String())
	}
	var a, b yieldResponse
	decodeInto(t, rec1, &a)
	decodeInto(t, rec2, &b)
	if !b.Cached {
		t.Fatal("second identical request not served from cache")
	}
	if got := metric(t, h, "engine_runs"); got != runsAfterFirst {
		t.Fatalf("cache hit still ran engines: %d -> %d", runsAfterFirst, got)
	}
	a.Cached, a.ElapsedMs = b.Cached, b.ElapsedMs
	if a.Yield != b.Yield || a.Slack != b.Slack || a.Buffers != b.Buffers {
		t.Fatalf("cached result differs:\n%+v\n%+v", a, b)
	}

	// Different sweep parameters must not share the entry.
	req.Sigma = 0.2
	var c yieldResponse
	rec3 := post(t, h, "/v1/yield", req)
	decodeInto(t, rec3, &c)
	if c.Cached {
		t.Fatal("different sigma hit the same cache entry")
	}
}

func TestYieldValidation(t *testing.T) {
	h := New(Config{MaxYieldSamples: 64}).Handler()
	lib := readTestdata(t, "lib8.buf")
	cases := []struct {
		name   string
		mutate func(*yieldRequest)
		field  string
	}{
		{"negative samples", func(r *yieldRequest) { r.Samples = -1 }, "samples"},
		{"over cap", func(r *yieldRequest) { r.Samples = 65 }, "samples"},
		{"bad sigma", func(r *yieldRequest) { r.Sigma = 0.75 }, "sigma"},
		{"bad algorithm", func(r *yieldRequest) { r.Algorithm = "nope" }, "algorithm"},
		{"non-core algorithm", func(r *yieldRequest) { r.Algorithm = "lillis" }, "algorithm"},
		{"bad net", func(r *yieldRequest) { r.Net = "garbage\n" }, "net"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := yieldReq(8, 0.05)
			req.Library = lib
			tc.mutate(&req)
			rec := post(t, h, "/v1/yield", req)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", rec.Code, rec.Body.String())
			}
			var er errorResponse
			decodeInto(t, rec, &er)
			if tc.field != "" && er.Field != tc.field {
				t.Fatalf("field %q, want %q (%s)", er.Field, tc.field, rec.Body.String())
			}
		})
	}
}

// TestYieldInfeasible: a polarity-infeasible instance maps to 422, same as
// /v1/solve.
func TestYieldInfeasible(t *testing.T) {
	h := New(Config{}).Handler()
	var lb strings.Builder
	if err := bufferkit.WriteLibrary(&lb, bufferkit.GenerateLibraryWithInverters(4)); err != nil {
		t.Fatal(err)
	}
	rec := post(t, h, "/v1/yield", yieldRequest{
		Net:     "sink s1 parent src res 0.1 cap 5 load 10 rat 1000 neg\n",
		Library: lb.String(),
		Samples: 4,
		Sigma:   0.05,
	})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", rec.Code, rec.Body.String())
	}
}

// TestYieldDeadline: a 1 ms budget on a large sweep aborts mid-run, maps
// to 504, and records partial progress in the yield abort counters.
func TestYieldDeadline(t *testing.T) {
	h := New(Config{}).Handler()
	tr, err := bufferkit.IndustrialNet(500, 40000, 7)
	if err != nil {
		t.Fatal(err)
	}
	req := yieldRequest{
		Net:          netText(t, tr, "huge", bufferkit.Driver{R: 0.2, K: 15}),
		Library:      readTestdata(t, "lib8.buf"),
		Samples:      512,
		Sigma:        0.05,
		solveOptions: solveOptions{TimeoutMs: 1},
	}
	rec := post(t, h, "/v1/yield", req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	var er errorResponse
	decodeInto(t, rec, &er)
	if !strings.Contains(er.Error, "aborted after") {
		t.Fatalf("error %q does not report partial progress", er.Error)
	}
	if got := metric(t, h, "yield_deadline_aborts"); got != 1 {
		t.Fatalf("yield_deadline_aborts = %d, want 1", got)
	}
	// The aborted-samples counter must exist (it may legitimately be 0 if
	// the deadline fired before the first corner finished).
	if got := metric(t, h, "yield_aborted_samples"); got < 0 || got >= 513 {
		t.Fatalf("yield_aborted_samples = %d, want [0, 513)", got)
	}
}

// TestYieldBackendsAgree: pinning either candidate backend through the
// request's backend field returns identical sweeps.
func TestYieldBackendsAgree(t *testing.T) {
	h := New(Config{}).Handler()
	results := map[string]yieldResponse{}
	for _, backend := range []string{"list", "soa"} {
		req := yieldReq(24, 0.1)
		req.Library = readTestdata(t, "lib8.buf")
		req.Backend = backend
		rec := post(t, h, "/v1/yield", req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", backend, rec.Code, rec.Body.String())
		}
		var resp yieldResponse
		decodeInto(t, rec, &resp)
		if resp.Cached {
			t.Fatalf("%s: distinct backends must not share cache entries", backend)
		}
		results[backend] = resp
	}
	a, b := results["list"], results["soa"]
	if a.Yield != b.Yield || a.Slack != b.Slack || a.Buffers != b.Buffers || a.Cost != b.Cost {
		t.Fatalf("backends disagree:\nlist %+v\nsoa  %+v", a, b)
	}
}
