package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bufferkit/internal/obs"
	"bufferkit/internal/testutil"
)

// TestLatencyHistOverflowBucket: an observation beyond the last bound
// lands in the le_inf overflow bin, and count/sum stay consistent — the
// invariant the Prometheus mapping's +Inf fold depends on.
func TestLatencyHistOverflowBucket(t *testing.T) {
	h := newLatencyHist()
	last := latencyBucketsMs[len(latencyBucketsMs)-1]
	h.observe(time.Duration(2*last) * time.Millisecond) // past every bound
	h.observe(500 * time.Microsecond)                   // first bin
	if got := h.bins[len(h.bins)-1].Value(); got != 1 {
		t.Errorf("overflow bin = %d, want 1", got)
	}
	if got := h.bins[0].Value(); got != 1 {
		t.Errorf("first bin = %d, want 1", got)
	}
	if got := h.count.Value(); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
	if got := h.sumMs.Value(); got != 2*last+0.5 {
		t.Errorf("sum_ms = %g, want %g", got, 2*last+0.5)
	}
	// The rendered expvar map exposes the overflow under "le_inf".
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(h.m.String()), &m); err != nil {
		t.Fatal(err)
	}
	if string(m["le_inf"]) != "1" {
		t.Errorf(`le_inf = %s, want 1`, m["le_inf"])
	}
}

// TestLatencyHistConcurrentObserve hammers one histogram from many
// goroutines under -race. Every component is a single expvar (Int.Add and
// Float.Add are both atomic — Float uses a CAS loop), so concurrent
// observes must neither race nor lose counts.
func TestLatencyHistConcurrentObserve(t *testing.T) {
	h := newLatencyHist()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.observe(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.count.Value(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	var binSum int64
	for _, b := range h.bins {
		binSum += b.Value()
	}
	if binSum != workers*per {
		t.Fatalf("bin sum = %d, want %d", binSum, workers*per)
	}
}

// TestErrorPayloadIncludesTrace: every JSON error body carries the trace
// id that the X-Bufferkit-Trace header announced, so a caller can quote a
// failure against /debug/traces. Regression test for the error path — the
// success path is covered by the fleet round-trip test.
func TestErrorPayloadIncludesTrace(t *testing.T) {
	h := New(Config{}).Handler()
	req := httptest.NewRequest("POST", "/v1/solve", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	hdr := rec.Header().Get("X-Bufferkit-Trace")
	if len(hdr) != 32 {
		t.Fatalf("X-Bufferkit-Trace = %q, want a 32-hex trace id", hdr)
	}
	var body struct {
		Error string `json:"error"`
		Trace string `json:"trace"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Trace != hdr {
		t.Fatalf("body trace %q != header trace %q", body.Trace, hdr)
	}
}

// TestErrorTraceDisabled: with tracing off (TraceRing < 0) error bodies
// omit the trace field instead of carrying an empty string.
func TestErrorTraceDisabled(t *testing.T) {
	h := New(Config{TraceRing: -1}).Handler()
	req := httptest.NewRequest("POST", "/v1/solve", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	if bytes.Contains(rec.Body.Bytes(), []byte(`"trace"`)) {
		t.Fatalf("disabled tracing still emitted a trace field: %s", rec.Body.Bytes())
	}
}

// TestMetricsPromNegotiation: GET /metrics stays expvar JSON by default
// and renders the Prometheus text format under Accept: text/plain or
// ?format=prom, with identical metric names, cumulative histogram buckets
// and bucket{+Inf} == _count.
func TestMetricsPromNegotiation(t *testing.T) {
	h := New(Config{}).Handler()
	solve := func() {
		body, err := json.Marshal(solveRequest{
			Net:     readTestdata(t, "line.net"),
			Library: readTestdata(t, "lib8.buf"),
		})
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("solve = %d: %s", rec.Code, rec.Body.String())
		}
	}
	solve() // engine run — the one solve_latency_ms observation
	solve() // cache hit

	// Default stays JSON for existing scrapers.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("default /metrics Content-Type = %q", ct)
	}
	var asJSON map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &asJSON); err != nil {
		t.Fatalf("default /metrics is not JSON: %v", err)
	}

	for _, req := range []*http.Request{
		httptest.NewRequest("GET", "/metrics?format=prom", nil),
		func() *http.Request {
			r := httptest.NewRequest("GET", "/metrics", nil)
			r.Header.Set("Accept", "text/plain")
			return r
		}(),
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
			t.Fatalf("prom Content-Type = %q, want %q", ct, obs.PromContentType)
		}
		pm, err := testutil.ParseProm(rec.Body.String())
		if err != nil {
			t.Fatalf("prom output does not parse: %v\n%s", err, rec.Body.String())
		}
		// Names are identical to the JSON exposition.
		for _, name := range []string{"solve_requests", "engine_runs", "cache_hits",
			"engine_candidates_total", "engine_pruned_total", "traces_total"} {
			if _, ok := pm.Samples[name]; !ok {
				t.Errorf("sample %q missing from prom exposition", name)
			}
			if _, ok := asJSON[name]; !ok {
				t.Errorf("sample %q missing from JSON exposition", name)
			}
		}
		if pm.Samples["solve_requests"] != 2 || pm.Samples["engine_runs"] != 1 {
			t.Errorf("solve_requests = %g, engine_runs = %g",
				pm.Samples["solve_requests"], pm.Samples["engine_runs"])
		}
		if pm.Types["solve_latency_ms"] != "histogram" {
			t.Errorf("solve_latency_ms TYPE = %q", pm.Types["solve_latency_ms"])
		}
		if pm.Types["in_flight_runs"] != "gauge" || pm.Types["engine_runs"] != "counter" {
			t.Errorf("types: in_flight_runs=%q engine_runs=%q",
				pm.Types["in_flight_runs"], pm.Types["engine_runs"])
		}
		// Buckets are cumulative and the +Inf bucket equals _count.
		inf := pm.Samples[testutil.Bucket("solve_latency_ms", "+Inf")]
		if inf != pm.Samples["solve_latency_ms_count"] || inf != 1 {
			t.Errorf("bucket{+Inf} = %g, _count = %g, want 1 (only the engine run observes)",
				inf, pm.Samples["solve_latency_ms_count"])
		}
		var prev float64
		for _, b := range latencyBucketsMs {
			cur, ok := pm.Samples[testutil.Bucket("solve_latency_ms", fmt.Sprintf("%g", b))]
			if !ok {
				t.Fatalf("bucket le=%g missing", b)
			}
			if cur < prev {
				t.Fatalf("buckets not cumulative at le=%g: %g < %g", b, cur, prev)
			}
			prev = cur
		}
	}
}

// lockedBuf is a goroutine-safe log sink: fleet probes keep logging while
// the test reads.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// tracesAt fetches node i's /debug/traces ring.
func (tf *testFleet) tracesAt(t testing.TB, i int) []obs.TraceJSON {
	t.Helper()
	status, b := tf.do(t, "GET", i, "/debug/traces", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("GET /debug/traces on node %d = %d: %s", i, status, b)
	}
	var out struct {
		Count  int             `json:"count"`
		Traces []obs.TraceJSON `json:"traces"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	return out.Traces
}

// findTrace returns the newest archived trace with the given id and at
// least one span named need, polling briefly — a node archives its trace
// after it has written the response, so the origin can observe the reply
// a moment before the home's ring updates.
func (tf *testFleet) findTrace(t testing.TB, i int, id, need string) *obs.TraceJSON {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, tj := range tf.tracesAt(t, i) {
			if tj.Trace != id {
				continue
			}
			for _, sp := range tj.Spans {
				if sp.Name == need {
					return &tj
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %d never archived trace %s with a %q span", i, id, need)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFleetTraceRoundTrip: one W3C traceparent spans the whole fleet. A
// solve sent to a non-owner with an inbound traceparent keeps that trace
// id through the forward to the home, the home's engine run, and back out
// the origin's X-Bufferkit-Trace header — and both nodes' request-summary
// log lines carry it.
func TestFleetTraceRoundTrip(t *testing.T) {
	logs := make([]*lockedBuf, 3)
	tf := startTestFleet(t, 3, nil, func(i int, cfg *Config) {
		logs[i] = &lockedBuf{}
		cfg.Logger = slog.New(slog.NewJSONHandler(logs[i], nil))
	})
	defer tf.stop()
	req := testSolveRequest(t)
	home, _, non := tf.roles(req)

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest("POST", tf.urls[non]+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := tf.client.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded solve = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Bufferkit-Trace"); got != traceID {
		t.Fatalf("X-Bufferkit-Trace = %q, want the inbound trace id %q", got, traceID)
	}

	// Origin: the same trace id, carrying the forward spans.
	origin := tf.findTrace(t, non, traceID, "peer_forward")
	var sawCall bool
	for _, sp := range origin.Spans {
		if sp.Name == "peer_call" {
			sawCall = true
		}
	}
	if !sawCall {
		t.Errorf("origin trace has no peer_call span: %+v", origin.Spans)
	}
	if origin.Attrs["forwarded"] != true {
		t.Errorf("origin trace attrs = %v, want forwarded=true", origin.Attrs)
	}

	// Home: the engine ran under the same trace id.
	tf.findTrace(t, home, traceID, "engine_run")

	// Both nodes' request-summary log lines quote the id.
	for _, i := range []int{non, home} {
		deadline := time.Now().Add(5 * time.Second)
		for !strings.Contains(logs[i].String(), traceID) {
			if time.Now().After(deadline) {
				t.Fatalf("node %d request log never mentioned trace %s:\n%s",
					i, traceID, logs[i].String())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestFleetHedgeSharesTrace: with the hedge timer at its floor the
// forwarded solve races home and replica; both arms span under the
// origin's single trace — same trace id, distinct span ids — so the race
// is reconstructible from one /debug/traces entry.
func TestFleetHedgeSharesTrace(t *testing.T) {
	tf := startTestFleet(t, 3, nil, func(i int, cfg *Config) {
		cfg.Fleet.HedgeAfter = time.Nanosecond
	})
	defer tf.stop()
	req := testSolveRequest(t)
	_, _, non := tf.roles(req)

	status, b := tf.do(t, "POST", non, "/v1/solve", req, nil)
	if status != http.StatusOK {
		t.Fatalf("hedged solve = %d: %s", status, b)
	}
	if got := tf.metricAt(t, non, "fleet_hedges"); got < 1 {
		t.Fatalf("fleet_hedges = %v, the 1ns hedge timer never fired", got)
	}

	traces := tf.tracesAt(t, non)
	var hedged *obs.TraceJSON
	for i := range traces {
		if traces[i].Attrs["hedged"] == true {
			hedged = &traces[i]
			break
		}
	}
	if hedged == nil {
		t.Fatalf("no hedged trace in the origin ring (%d traces)", len(traces))
	}
	spanIDs := map[string]string{} // name → span id
	for _, sp := range hedged.Spans {
		if sp.Name == "peer_call" || sp.Name == "hedge_attempt" {
			spanIDs[sp.Name] = sp.Span
		}
	}
	if len(spanIDs) != 2 {
		t.Fatalf("want peer_call + hedge_attempt spans in one trace, got %v", hedged.Spans)
	}
	if spanIDs["peer_call"] == spanIDs["hedge_attempt"] {
		t.Fatalf("hedge arms share span id %s", spanIDs["peer_call"])
	}
}
