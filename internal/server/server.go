// Package server implements bufferkitd's JSON-over-HTTP API on top of the
// bufferkit Solver: parse .net/.buf payloads, dispatch through the
// algorithm registry, and serve concurrent requests from a bounded pool of
// warm engines.
//
// Endpoints:
//
//	POST /v1/solve      solve one net, JSON in / JSON out
//	POST /v1/batch      solve many nets, JSON in / NDJSON stream out
//	POST /v1/yield      Monte Carlo / multi-corner yield analysis
//	GET  /v1/algorithms registered algorithms with descriptions
//	GET  /healthz       liveness probe
//	GET  /metrics       expvar counters as JSON
//
// Concurrency model: a semaphore of Config.MaxConcurrent slots bounds the
// number of engine runs in flight across all requests; the engines
// themselves come from bufferkit's shared sync.Pool, so a loaded server
// reaches steady state with zero per-request engine construction. Each
// request's context (with its deadline) propagates into the per-vertex
// cancellation polls of RunContext, so a hung client or an expired budget
// stops the dynamic program mid-run.
//
// An LRU cache keyed by (net digest, library digest, algorithm, options)
// serves repeated nets — the common case in synthesis loops — without
// parsing or solving anything; see internal/server/cache.
package server

import (
	"expvar"
	"fmt"
	"net/http"
	"runtime"
	"slices"
	"strings"
	"time"

	"bufferkit"
	"bufferkit/internal/server/cache"
)

// Config parameterizes a Server. The zero value is production-usable:
// GOMAXPROCS concurrent engine runs, a 4096-entry cache, a 30 s default
// solve budget capped at 5 min, 16 MiB request bodies.
type Config struct {
	// MaxConcurrent bounds engine runs in flight across all requests
	// (0 = GOMAXPROCS).
	MaxConcurrent int
	// CacheEntries is the LRU result-cache capacity (0 = default 4096,
	// negative = caching disabled).
	CacheEntries int
	// DefaultTimeout is the per-request solve budget when the request does
	// not set timeout_ms (0 = 30 s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested budgets (0 = 5 min).
	MaxTimeout time.Duration
	// MaxBodyBytes bounds request bodies (0 = 16 MiB).
	MaxBodyBytes int64
	// MaxBatchNets bounds the nets accepted by one /v1/batch call
	// (0 = 10000).
	MaxBatchNets int
	// MaxYieldSamples bounds the Monte Carlo corners accepted by one
	// /v1/yield call (0 = 1024).
	MaxYieldSamples int
}

func (c *Config) fill() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.MaxBatchNets <= 0 {
		c.MaxBatchNets = 10000
	}
	if c.MaxYieldSamples <= 0 {
		c.MaxYieldSamples = 1024
	}
}

// Server holds the shared state behind the handlers. Create with New and
// mount via Handler.
type Server struct {
	cfg   Config
	sem   chan struct{}
	cache *cache.Cache

	// Counters are kept on a private expvar.Map (not Publish-ed globally)
	// so tests can run many Servers in one process; /metrics renders the
	// map as JSON.
	metrics      *expvar.Map
	solveReqs    *expvar.Int
	batchReqs    *expvar.Int
	batchNets    *expvar.Int
	engineRuns   *expvar.Int
	cacheStores  *expvar.Int
	httpErrors   *expvar.Int
	inFlightRuns *expvar.Int

	// Yield-sweep counters. The two abort counters are the endpoint's
	// partial-progress story: a sweep killed by the request deadline still
	// reports how many samples it completed before dying.
	yieldReqs           *expvar.Int
	yieldSamples        *expvar.Int
	yieldDeadlineAborts *expvar.Int
	yieldAbortedSamples *expvar.Int
}

// New builds a Server from cfg (zero value = defaults).
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:          cfg,
		sem:          make(chan struct{}, cfg.MaxConcurrent),
		cache:        cache.New(cfg.CacheEntries),
		metrics:      new(expvar.Map).Init(),
		solveReqs:    new(expvar.Int),
		batchReqs:    new(expvar.Int),
		batchNets:    new(expvar.Int),
		engineRuns:   new(expvar.Int),
		cacheStores:  new(expvar.Int),
		httpErrors:   new(expvar.Int),
		inFlightRuns: new(expvar.Int),

		yieldReqs:           new(expvar.Int),
		yieldSamples:        new(expvar.Int),
		yieldDeadlineAborts: new(expvar.Int),
		yieldAbortedSamples: new(expvar.Int),
	}
	s.metrics.Set("solve_requests", s.solveReqs)
	s.metrics.Set("batch_requests", s.batchReqs)
	s.metrics.Set("batch_nets", s.batchNets)
	s.metrics.Set("engine_runs", s.engineRuns)
	s.metrics.Set("cache_stores", s.cacheStores)
	s.metrics.Set("http_errors", s.httpErrors)
	s.metrics.Set("in_flight_runs", s.inFlightRuns)
	s.metrics.Set("yield_requests", s.yieldReqs)
	s.metrics.Set("yield_samples", s.yieldSamples)
	s.metrics.Set("yield_deadline_aborts", s.yieldDeadlineAborts)
	s.metrics.Set("yield_aborted_samples", s.yieldAbortedSamples)
	s.metrics.Set("cache_hits", expvar.Func(func() any { return s.cache.Stats().Hits }))
	s.metrics.Set("cache_misses", expvar.Func(func() any { return s.cache.Stats().Misses }))
	s.metrics.Set("cache_evictions", expvar.Func(func() any { return s.cache.Stats().Evictions }))
	s.metrics.Set("cache_len", expvar.Func(func() any { return s.cache.Stats().Len }))
	s.metrics.Set("max_concurrent", expvar.Func(func() any { return s.cfg.MaxConcurrent }))
	return s
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/yield", s.handleYield)
	mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// solveOptions are the request fields that select and configure an
// algorithm, shared by the solve and batch payloads.
type solveOptions struct {
	// Algorithm is a registry name; "" means bufferkit.AlgoNew.
	Algorithm string `json:"algorithm,omitempty"`
	// Prune is "transient" (default) or "destructive" (AlgoNew only).
	Prune string `json:"prune,omitempty"`
	// Backend is the candidate-list representation: "list", "soa", or ""
	// for the benchmark-chosen default. Results are identical across
	// backends; the field exists so ablation traffic can pin one.
	Backend string `json:"backend,omitempty"`
	// MaxCost caps total buffer cost (AlgoCostSlack only; 0 = no cap).
	MaxCost int `json:"max_cost,omitempty"`
	// NoStats skips the Stats copy on the response.
	NoStats bool `json:"no_stats,omitempty"`
	// TimeoutMs overrides the server's default solve budget, capped at
	// Config.MaxTimeout.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// newSolver assembles a Solver for one request. extra carries per-mode
// options (WithDriver for solve, WithDrivers/WithWorkers for batch).
func (o solveOptions) newSolver(lib bufferkit.Library, extra ...bufferkit.Option) (*bufferkit.Solver, error) {
	algo := o.Algorithm
	if algo == "" {
		algo = bufferkit.AlgoNew
	}
	if !slices.Contains(bufferkit.Algorithms(), algo) {
		return nil, badRequestf("algorithm", "unknown algorithm %q (have %s)",
			algo, strings.Join(bufferkit.Algorithms(), ", "))
	}
	var mode bufferkit.PruneMode
	switch o.Prune {
	case "", "transient":
		mode = bufferkit.PruneTransient
	case "destructive":
		mode = bufferkit.PruneDestructive
	default:
		return nil, badRequestf("prune", "unknown prune mode %q (transient or destructive)", o.Prune)
	}
	switch o.Backend {
	case "", "default", "list", "soa":
	default:
		return nil, badRequestf("backend", "unknown backend %q (list or soa)", o.Backend)
	}
	opts := append([]bufferkit.Option{
		bufferkit.WithLibrary(lib),
		bufferkit.WithAlgorithm(algo),
		bufferkit.WithPruneMode(mode),
		bufferkit.WithBackend(o.Backend),
		bufferkit.WithMaxCost(o.MaxCost),
		bufferkit.WithStats(!o.NoStats),
	}, extra...)
	return bufferkit.NewSolver(opts...)
}

// cacheOptions canonicalizes the option fields that affect the result, for
// the cache key. TimeoutMs is excluded — a timeout changes whether a result
// exists, never its value.
func (o solveOptions) cacheOptions() string {
	algo := o.Algorithm
	if algo == "" {
		algo = bufferkit.AlgoNew
	}
	prune := o.Prune
	if prune == "" {
		prune = "transient"
	}
	// Like algo and prune, backend folds in as its resolved value, so
	// "", "default" and the concrete default backend share one cache
	// entry — the results are bit-identical by contract.
	backend := o.Backend
	if backend == "" || backend == "default" {
		backend = bufferkit.BackendDefault.Resolve().String()
	}
	return fmt.Sprintf("algo=%s prune=%s backend=%s maxcost=%d stats=%t", algo, prune, backend, o.MaxCost, !o.NoStats)
}

// timeout resolves the request's solve budget against the server limits.
func (s *Server) timeout(o solveOptions) time.Duration {
	d := s.cfg.DefaultTimeout
	if o.TimeoutMs > 0 {
		d = time.Duration(o.TimeoutMs) * time.Millisecond
	}
	return min(d, s.cfg.MaxTimeout)
}

// acquire takes one engine slot, respecting ctx; it reports whether the
// slot was obtained (false = ctx fired first).
func (s *Server) acquire(done <-chan struct{}) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	case <-done:
		return false
	}
}

// acquireExtra grabs up to n additional slots without blocking, returning
// how many it got. Batch requests use it to widen their worker pool when
// the server is idle while always being able to proceed on the one slot
// acquire gave them — so concurrent batches can never deadlock each other.
func (s *Server) acquireExtra(n int) int {
	got := 0
	for ; got < n; got++ {
		select {
		case s.sem <- struct{}{}:
		default:
			return got
		}
	}
	return got
}

// release returns n engine slots.
func (s *Server) release(n int) {
	for i := 0; i < n; i++ {
		<-s.sem
	}
}

// httpError is an error with a fixed HTTP status, optionally tied to a
// request field.
type httpError struct {
	status int
	msg    string
	field  string
}

func (e *httpError) Error() string { return e.msg }

// badRequestf builds a 400 httpError tied to a request field.
func badRequestf(field, format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, field: field, msg: fmt.Sprintf(format, args...)}
}

// vertexName returns the display name of vertex v: its file name when set,
// otherwise "v<i>" ("src" for the source).
func vertexName(t *bufferkit.Tree, v int) string {
	if v == 0 {
		return "src"
	}
	if n := t.Verts[v].Name; n != "" {
		return n
	}
	return fmt.Sprintf("v%d", v)
}

// bufferName returns the display name of library type b.
func bufferName(lib bufferkit.Library, b int) string {
	if n := lib[b].Name; n != "" {
		return n
	}
	return fmt.Sprintf("b%d", b)
}

// placementNames renders a placement as vertex name → buffer type name.
func placementNames(t *bufferkit.Tree, lib bufferkit.Library, p bufferkit.Placement) map[string]string {
	out := make(map[string]string, p.Count())
	for v, b := range p {
		if b != bufferkit.NoBuffer {
			out[vertexName(t, v)] = bufferName(lib, b)
		}
	}
	return out
}
