// Package server implements bufferkitd's JSON-over-HTTP API on top of the
// bufferkit Solver: parse .net/.buf payloads, dispatch through the
// algorithm registry, and serve concurrent requests from a bounded pool of
// warm engines.
//
// Endpoints:
//
//	POST   /v1/solve          solve one net, JSON in / JSON out
//	POST   /v1/batch          solve many nets, JSON in / NDJSON stream out
//	POST   /v1/yield          Monte Carlo / multi-corner yield analysis
//	POST   /v1/chip           multi-net chip solve, JSON in / NDJSON rounds out
//	PUT    /v1/sessions/{id}  incremental ECO session: patch + re-solve one net
//	DELETE /v1/sessions/{id}  close an ECO session
//	GET    /v1/algorithms     registered algorithms with descriptions
//	GET    /v1/fleet          fleet topology + per-peer health (fleet mode)
//	PUT    /internal/v1/cache peer-to-peer result replication (fleet mode)
//	GET    /healthz           liveness probe
//	GET    /readyz            readiness probe (503 while draining)
//	GET    /metrics           expvar counters as JSON
//
// Concurrency model: a deadline-aware admission controller
// (internal/resilience) bounds the engine runs in flight across all
// requests. A request that cannot get a slot immediately waits in a
// bounded queue; arrivals beyond the queue bound, requests whose remaining
// deadline cannot cover the observed solve-time EWMA, and waits exceeding
// Config.QueueTimeout are shed with 429 + Retry-After instead of piling
// up. The engines themselves come from bufferkit's shared sync.Pool, so a
// loaded server reaches steady state with zero per-request engine
// construction. Each request's context (with its deadline) propagates into
// the per-vertex cancellation polls of RunContext, so a hung client or an
// expired budget stops the dynamic program mid-run.
//
// Duplicate in-flight solves collapse: /v1/solve and /v1/yield requests
// with equal cache keys share one engine run via singleflight, with
// waiter-safe cancellation — a disconnecting caller never kills the run
// other callers are waiting on. The winner populates the LRU cache, so
// followers of later bursts hit the cache without any coordination.
//
// An LRU cache keyed by (net digest, library digest, algorithm, options)
// serves repeated nets — the common case in synthesis loops — without
// parsing or solving anything; see internal/server/cache.
//
// A recovery middleware converts handler and engine panics into 500s with
// a logged stack and a panics_total counter, so one poisoned request
// cannot take down the connection (or, under singleflight, its waiters)
// silently. See DESIGN.md §13 for the resilience model.
package server

import (
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bufferkit"
	"bufferkit/internal/fleet"
	"bufferkit/internal/obs"
	"bufferkit/internal/resilience"
	"bufferkit/internal/server/cache"
)

// Config parameterizes a Server. The zero value is production-usable:
// GOMAXPROCS concurrent engine runs, an 8×-concurrency admission queue, a
// 4096-entry cache, a 30 s default solve budget capped at 5 min, 16 MiB
// request bodies.
type Config struct {
	// MaxConcurrent bounds engine runs in flight across all requests
	// (0 = GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an engine slot; arrivals beyond
	// it are shed with 429 (0 = 8×MaxConcurrent, negative = no queue:
	// every request not admitted immediately is shed).
	MaxQueue int
	// QueueTimeout caps how long one request may wait for admission before
	// being shed (0 = 10 s, negative = wait until the request deadline).
	QueueTimeout time.Duration
	// CacheEntries is the LRU result-cache capacity (0 = default 4096,
	// negative = caching disabled).
	CacheEntries int
	// DefaultTimeout is the per-request solve budget when the request does
	// not set timeout_ms (0 = 30 s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested budgets (0 = 5 min).
	MaxTimeout time.Duration
	// MaxBodyBytes bounds request bodies (0 = 16 MiB).
	MaxBodyBytes int64
	// MaxBatchNets bounds the nets accepted by one /v1/batch call
	// (0 = 10000).
	MaxBatchNets int
	// MaxYieldSamples bounds the Monte Carlo corners accepted by one
	// /v1/yield call (0 = 1024).
	MaxYieldSamples int
	// MaxChipNets bounds the nets accepted by one /v1/chip instance
	// (0 = 10000).
	MaxChipNets int
	// MaxSessions bounds concurrently retained ECO sessions (0 = 256,
	// negative = the sessions endpoint is disabled). When the table is
	// full, creating a session evicts the least-recently-used one.
	MaxSessions int
	// SessionTTL is a session's idle lifetime; sessions untouched for
	// longer are evicted opportunistically (0 = 10 min).
	SessionTTL time.Duration
	// Fleet configures the optional peer tier (see internal/fleet): with a
	// Self URL and a multi-member peer list, single solves route to their
	// cache home by consistent hashing, results replicate across R owners,
	// and a failure detector reroutes around dead peers. The zero value is
	// a plain single node. An invalid fleet config makes New panic;
	// validate with Fleet.Validate() first when the values come from
	// flags.
	Fleet fleet.Config
	// TenantQuotas enables per-tenant token-bucket shedding on the /v1
	// endpoints, keyed by the X-Bufferkit-Tenant header. Tenants without
	// an entry fall back to the "*" entry, or are unlimited without one.
	// Empty = no tenant quotas.
	TenantQuotas map[string]resilience.QuotaSpec
	// Logger receives the structured request-summary lines, slow-request
	// warnings and operational events (nil = logging discarded; tests stay
	// quiet by default and bufferkitd always supplies one).
	Logger *slog.Logger
	// SlowThreshold marks requests at least this slow as "slow request"
	// log warnings (0 = 1 s, negative = slow logging disabled).
	SlowThreshold time.Duration
	// TraceRing bounds the completed request traces retained for
	// GET /debug/traces (0 = 256, negative = tracing and request-summary
	// logging disabled entirely — the bench-baseline configuration).
	TraceRing int
}

func (c *Config) fill() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 8 * c.MaxConcurrent
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = -1 // normalized "no queue" sentinel; Controller gets 0
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 10 * time.Second
	}
	if c.QueueTimeout < 0 {
		c.QueueTimeout = -1 // wait until the request deadline
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.MaxBatchNets <= 0 {
		c.MaxBatchNets = 10000
	}
	if c.MaxYieldSamples <= 0 {
		c.MaxYieldSamples = 1024
	}
	if c.MaxChipNets <= 0 {
		c.MaxChipNets = 10000
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 256
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 10 * time.Minute
	}
}

// latencyBucketsMs are the fixed histogram bucket upper bounds (ms) for
// solve_latency_ms.
var latencyBucketsMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// latencyHist is a fixed-bucket latency histogram rendered as an expvar
// map: per-bin counts keyed "le_<ms>" (plus "le_inf"), with "count" and
// "sum_ms" totals. Bins are disjoint, not cumulative.
type latencyHist struct {
	bins  []*expvar.Int // len(latencyBucketsMs)+1; last = overflow
	count *expvar.Int
	sumMs *expvar.Float
	m     *expvar.Map
}

func newLatencyHist() *latencyHist {
	h := &latencyHist{
		bins:  make([]*expvar.Int, len(latencyBucketsMs)+1),
		count: new(expvar.Int),
		sumMs: new(expvar.Float),
		m:     new(expvar.Map).Init(),
	}
	for i := range h.bins {
		h.bins[i] = new(expvar.Int)
		if i < len(latencyBucketsMs) {
			h.m.Set(fmt.Sprintf("le_%g", latencyBucketsMs[i]), h.bins[i])
		} else {
			h.m.Set("le_inf", h.bins[i])
		}
	}
	h.m.Set("count", h.count)
	h.m.Set("sum_ms", h.sumMs)
	return h
}

func (h *latencyHist) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for ; i < len(latencyBucketsMs); i++ {
		if ms <= latencyBucketsMs[i] {
			break
		}
	}
	h.bins[i].Add(1)
	h.count.Add(1)
	h.sumMs.Add(ms)
}

// Server holds the shared state behind the handlers. Create with New and
// mount via Handler.
type Server struct {
	cfg   Config
	adm   *resilience.Controller
	cache *cache.Cache
	start time.Time

	// rec is the observability recorder behind the instrument middleware:
	// request traces, the /debug/traces ring, and the request-summary log
	// stream. Nil when Config.TraceRing < 0 — every trace call no-ops.
	rec *obs.Recorder

	// draining flips GET /readyz to 503 so load balancers stop routing new
	// traffic while in-flight work completes.
	draining atomic.Bool

	// flights collapse duplicate in-flight solve/yield requests onto one
	// engine run each, keyed by the same digests as the cache.
	flights      resilience.Group[cache.Key, *solveResponse]
	yieldFlights resilience.Group[cache.Key, *yieldResponse]

	// Fleet state (nil on a single node): the peer tier, its HTTP client,
	// per-tenant quotas, and the singleflight collapsing duplicate
	// forwards of one digest onto one peer call. Combined with
	// digest-homed routing — every node sends digest d to the same owner,
	// whose own flights group collapses local and forwarded callers — a
	// digest in flight anywhere in the fleet runs on exactly one engine.
	fleet          *fleet.Fleet
	fleetHTTP      *http.Client
	quotas         *resilience.TenantQuotas
	forwardFlights resilience.Group[cache.Key, *solveResponse]

	// Counters are kept on a private expvar.Map (not Publish-ed globally)
	// so tests can run many Servers in one process; /metrics renders the
	// map as JSON.
	metrics      *expvar.Map
	solveReqs    *expvar.Int
	batchReqs    *expvar.Int
	batchNets    *expvar.Int
	engineRuns   *expvar.Int
	cacheStores  *expvar.Int
	httpErrors   *expvar.Int
	inFlightRuns *expvar.Int
	panicsTotal  *expvar.Int
	sfShared     *expvar.Int
	solveLatency *latencyHist

	// Engine profiling counters: the DP's own work, aggregated across
	// every engine run (solve, batch, yield, chip, session paths).
	engCandidates *expvar.Int
	engPruned     *expvar.Int

	// Yield-sweep counters. The two abort counters are the endpoint's
	// partial-progress story: a sweep killed by the request deadline still
	// reports how many samples it completed before dying.
	yieldReqs           *expvar.Int
	yieldSamples        *expvar.Int
	yieldDeadlineAborts *expvar.Int
	yieldAbortedSamples *expvar.Int

	// Chip-solve counters. chipRounds counts pricing/repair rounds
	// streamed; the abort pair mirrors the yield story — a chip solve
	// killed mid-run still reports the rounds it completed.
	chipReqs           *expvar.Int
	chipNets           *expvar.Int
	chipRounds         *expvar.Int
	chipDeadlineAborts *expvar.Int
	chipAbortedRounds  *expvar.Int

	// ECO-session state and counters: the id-keyed table of retained
	// sessions (LRU + TTL evicted), and the per-request instrumentation —
	// sessionCacheHits counts resolves answered from the LRU cache without
	// touching the engine, sessionRebuilds/sessionRecomputed accumulate
	// each resolve's incremental-work story.
	sessMu   sync.Mutex
	sessions map[string]*sessionEntry

	sessionReqs      *expvar.Int
	sessionsCreated  *expvar.Int
	sessionsEvicted  *expvar.Int
	sessionPatches   *expvar.Int
	sessionResolves  *expvar.Int
	sessionCacheHits *expvar.Int
	sessionRebuilds  *expvar.Int
	sessionRecomp    *expvar.Int

	// Fleet counters: the forwarding story (forwards, collapse, hedges,
	// fallbacks), the replication story (write-through, read-repair,
	// replicas received), and the probe loop.
	fleetForwards         *expvar.Int
	fleetForwardShared    *expvar.Int
	fleetForwardErrors    *expvar.Int
	fleetHedges           *expvar.Int
	fleetHedgeWins        *expvar.Int
	fleetFallbacks        *expvar.Int
	fleetWriteThroughs    *expvar.Int
	fleetWriteThroughErrs *expvar.Int
	fleetReadRepairs      *expvar.Int
	fleetReplicasStored   *expvar.Int
	peerProbes            *expvar.Int
	peerProbeFailures     *expvar.Int
}

// New builds a Server from cfg (zero value = defaults).
func New(cfg Config) *Server {
	cfg.fill()
	admCfg := resilience.Config{
		Slots:    cfg.MaxConcurrent,
		MaxQueue: cfg.MaxQueue,
	}
	if admCfg.MaxQueue < 0 {
		admCfg.MaxQueue = 0
	}
	if cfg.QueueTimeout > 0 {
		admCfg.QueueTimeout = cfg.QueueTimeout
	}
	s := &Server{
		cfg:          cfg,
		adm:          resilience.NewController(admCfg),
		cache:        cache.New(cfg.CacheEntries),
		start:        time.Now(),
		metrics:      new(expvar.Map).Init(),
		solveReqs:    new(expvar.Int),
		batchReqs:    new(expvar.Int),
		batchNets:    new(expvar.Int),
		engineRuns:   new(expvar.Int),
		cacheStores:  new(expvar.Int),
		httpErrors:   new(expvar.Int),
		inFlightRuns: new(expvar.Int),
		panicsTotal:  new(expvar.Int),
		sfShared:     new(expvar.Int),
		solveLatency: newLatencyHist(),

		engCandidates: new(expvar.Int),
		engPruned:     new(expvar.Int),

		yieldReqs:           new(expvar.Int),
		yieldSamples:        new(expvar.Int),
		yieldDeadlineAborts: new(expvar.Int),
		yieldAbortedSamples: new(expvar.Int),

		chipReqs:           new(expvar.Int),
		chipNets:           new(expvar.Int),
		chipRounds:         new(expvar.Int),
		chipDeadlineAborts: new(expvar.Int),
		chipAbortedRounds:  new(expvar.Int),

		sessions:         make(map[string]*sessionEntry),
		sessionReqs:      new(expvar.Int),
		sessionsCreated:  new(expvar.Int),
		sessionsEvicted:  new(expvar.Int),
		sessionPatches:   new(expvar.Int),
		sessionResolves:  new(expvar.Int),
		sessionCacheHits: new(expvar.Int),
		sessionRebuilds:  new(expvar.Int),
		sessionRecomp:    new(expvar.Int),

		quotas:                resilience.NewTenantQuotas(cfg.TenantQuotas),
		fleetForwards:         new(expvar.Int),
		fleetForwardShared:    new(expvar.Int),
		fleetForwardErrors:    new(expvar.Int),
		fleetHedges:           new(expvar.Int),
		fleetHedgeWins:        new(expvar.Int),
		fleetFallbacks:        new(expvar.Int),
		fleetWriteThroughs:    new(expvar.Int),
		fleetWriteThroughErrs: new(expvar.Int),
		fleetReadRepairs:      new(expvar.Int),
		fleetReplicasStored:   new(expvar.Int),
		peerProbes:            new(expvar.Int),
		peerProbeFailures:     new(expvar.Int),
	}
	if cfg.TraceRing >= 0 {
		s.rec = obs.NewRecorder(obs.Options{
			Logger:        cfg.Logger,
			SlowThreshold: cfg.SlowThreshold,
			RingSize:      cfg.TraceRing,
		})
	}
	if cfg.Fleet.Enabled() {
		f, err := fleet.New(cfg.Fleet)
		if err != nil {
			panic("server: invalid fleet config: " + err.Error())
		}
		s.fleet = f
		s.fleetHTTP = &http.Client{Transport: cfg.Fleet.Transport}
		s.fleet.Start(s.probePeer, func(_ string, err error) {
			s.peerProbes.Add(1)
			if err != nil {
				s.peerProbeFailures.Add(1)
			}
		})
	}
	s.metrics.Set("solve_requests", s.solveReqs)
	s.metrics.Set("batch_requests", s.batchReqs)
	s.metrics.Set("batch_nets", s.batchNets)
	s.metrics.Set("engine_runs", s.engineRuns)
	s.metrics.Set("cache_stores", s.cacheStores)
	s.metrics.Set("http_errors", s.httpErrors)
	s.metrics.Set("in_flight_runs", s.inFlightRuns)
	s.metrics.Set("panics_total", s.panicsTotal)
	s.metrics.Set("singleflight_shared", s.sfShared)
	s.metrics.Set("solve_latency_ms", s.solveLatency.m)
	s.metrics.Set("engine_candidates_total", s.engCandidates)
	s.metrics.Set("engine_pruned_total", s.engPruned)
	s.metrics.Set("traces_total", expvar.Func(func() any {
		total, _ := s.rec.Totals()
		return total
	}))
	s.metrics.Set("slow_requests_total", expvar.Func(func() any {
		_, slow := s.rec.Totals()
		return slow
	}))
	s.metrics.Set("yield_requests", s.yieldReqs)
	s.metrics.Set("yield_samples", s.yieldSamples)
	s.metrics.Set("yield_deadline_aborts", s.yieldDeadlineAborts)
	s.metrics.Set("yield_aborted_samples", s.yieldAbortedSamples)
	s.metrics.Set("chip_requests", s.chipReqs)
	s.metrics.Set("chip_nets", s.chipNets)
	s.metrics.Set("chip_rounds", s.chipRounds)
	s.metrics.Set("chip_deadline_aborts", s.chipDeadlineAborts)
	s.metrics.Set("chip_aborted_rounds", s.chipAbortedRounds)
	s.metrics.Set("session_requests", s.sessionReqs)
	s.metrics.Set("sessions_created", s.sessionsCreated)
	s.metrics.Set("sessions_evicted", s.sessionsEvicted)
	s.metrics.Set("session_patches", s.sessionPatches)
	s.metrics.Set("session_resolves", s.sessionResolves)
	s.metrics.Set("session_cache_hits", s.sessionCacheHits)
	s.metrics.Set("session_full_rebuilds", s.sessionRebuilds)
	s.metrics.Set("session_recomputed_vertices", s.sessionRecomp)
	s.metrics.Set("sessions_active", expvar.Func(func() any {
		s.sessMu.Lock()
		defer s.sessMu.Unlock()
		return len(s.sessions)
	}))
	s.metrics.Set("cache_hits", expvar.Func(func() any { return s.cache.Stats().Hits }))
	s.metrics.Set("cache_misses", expvar.Func(func() any { return s.cache.Stats().Misses }))
	s.metrics.Set("cache_evictions", expvar.Func(func() any { return s.cache.Stats().Evictions }))
	s.metrics.Set("cache_len", expvar.Func(func() any { return s.cache.Stats().Len }))
	s.metrics.Set("max_concurrent", expvar.Func(func() any { return s.cfg.MaxConcurrent }))
	s.metrics.Set("max_queue", expvar.Func(func() any { return max(s.cfg.MaxQueue, 0) }))
	s.metrics.Set("queue_depth", expvar.Func(func() any { return s.adm.QueueDepth() }))
	s.metrics.Set("admission_wait_ns", expvar.Func(func() any { return s.adm.Counters().AdmissionWaitNS }))
	s.metrics.Set("shed_total", expvar.Func(func() any { return s.adm.Counters().Total() }))
	s.metrics.Set("shed_queue_full", expvar.Func(func() any { return s.adm.Counters().ShedQueueFull }))
	s.metrics.Set("shed_deadline", expvar.Func(func() any { return s.adm.Counters().ShedDeadline }))
	s.metrics.Set("shed_queue_timeout", expvar.Func(func() any { return s.adm.Counters().ShedQueueTimeout }))
	s.metrics.Set("admission_canceled", expvar.Func(func() any { return s.adm.Counters().CanceledWhileQueued }))
	s.metrics.Set("solve_ewma_ms", expvar.Func(func() any {
		return float64(s.adm.Estimate()) / float64(time.Millisecond)
	}))
	s.metrics.Set("draining", expvar.Func(func() any {
		if s.draining.Load() {
			return 1
		}
		return 0
	}))
	s.metrics.Set("uptime_seconds", expvar.Func(func() any { return time.Since(s.start).Seconds() }))
	s.metrics.Set("go_version", expvar.Func(func() any { return runtime.Version() }))

	s.metrics.Set("fleet_forwards", s.fleetForwards)
	s.metrics.Set("fleet_forward_shared", s.fleetForwardShared)
	s.metrics.Set("fleet_forward_errors", s.fleetForwardErrors)
	s.metrics.Set("fleet_hedges", s.fleetHedges)
	s.metrics.Set("fleet_hedge_wins", s.fleetHedgeWins)
	s.metrics.Set("fleet_local_fallbacks", s.fleetFallbacks)
	s.metrics.Set("fleet_write_throughs", s.fleetWriteThroughs)
	s.metrics.Set("fleet_write_through_errors", s.fleetWriteThroughErrs)
	s.metrics.Set("fleet_read_repairs", s.fleetReadRepairs)
	s.metrics.Set("fleet_replicas_stored", s.fleetReplicasStored)
	s.metrics.Set("peer_probes", s.peerProbes)
	s.metrics.Set("peer_probe_failures", s.peerProbeFailures)
	s.metrics.Set("fleet_peers", expvar.Func(func() any {
		if s.fleet == nil {
			return 0
		}
		return len(s.fleet.Members())
	}))
	s.metrics.Set("fleet_replicas", expvar.Func(func() any {
		if s.fleet == nil {
			return 0
		}
		return s.fleet.Config().Replicas
	}))
	s.metrics.Set("peer_alive", expvar.Func(func() any { return s.peerCount(0) }))
	s.metrics.Set("peer_suspect", expvar.Func(func() any { return s.peerCount(1) }))
	s.metrics.Set("peer_dead", expvar.Func(func() any { return s.peerCount(2) }))
	s.metrics.Set("tenant_allowed", expvar.Func(func() any { return s.quotas.Counters().Allowed }))
	s.metrics.Set("tenant_shed_total", expvar.Func(func() any { return s.quotas.Counters().Shed }))
	s.metrics.Set("tenant_shed_by_tenant", expvar.Func(func() any { return s.quotas.Counters().ShedByTenant }))
	return s
}

// peerCount returns the number of other members in the given health class
// (0 alive, 1 suspect, 2 dead); 0 on a single node.
func (s *Server) peerCount(class int) int {
	if s.fleet == nil {
		return 0
	}
	alive, suspect, dead := s.fleet.Detector().Counts()
	switch class {
	case 0:
		return alive
	case 1:
		return suspect
	}
	return dead
}

// Close stops the fleet prober and waits for in-flight replication
// goroutines (write-through, read-repair). Single-node servers need no
// Close, but it is always safe to call.
func (s *Server) Close() {
	if s.fleet != nil {
		s.fleet.Close()
	}
}

// Handler returns the HTTP handler serving every endpoint, wrapped in the
// instrumentation middleware (request tracing, the X-Bufferkit-Trace
// header, panic recovery, the per-request summary log line).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/yield", s.handleYield)
	mux.HandleFunc("POST /v1/chip", s.handleChip)
	mux.HandleFunc("PUT /v1/sessions/{id}", s.handleSessionPut)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	mux.HandleFunc("PUT /internal/v1/cache", s.handleCacheReplica)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	return s.instrument(s.tenantLimit(mux))
}

// SetDraining flips drain mode: while draining, GET /readyz answers 503 so
// load balancers divert new traffic, while already-accepted requests run
// to completion. bufferkitd sets it on SIGTERM before closing the
// listener.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is in drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// trackingWriter records whether a response header was written (so the
// instrument middleware knows if a panic 500 can still be delivered) and
// which status was sent (for the trace and summary line). It carries the
// request's trace so deep error writers can stamp the trace id into error
// payloads via the traceCarrier assertion, and passes Flush through for
// the NDJSON streaming handlers.
type trackingWriter struct {
	http.ResponseWriter
	wroteHeader bool
	code        int
	trace       *obs.Trace
}

func (w *trackingWriter) WriteHeader(code int) {
	if !w.wroteHeader {
		w.wroteHeader = true
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *trackingWriter) Write(b []byte) (int, error) {
	w.wroteHeader = true
	return w.ResponseWriter.Write(b)
}

func (w *trackingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Trace implements traceCarrier.
func (w *trackingWriter) Trace() *obs.Trace { return w.trace }

// status is the effective response status: the explicit WriteHeader code,
// or 200 when the handler wrote the body (or nothing) directly.
func (w *trackingWriter) status() int {
	if w.code != 0 {
		return w.code
	}
	return http.StatusOK
}

// solveOptions are the request fields that select and configure an
// algorithm, shared by the solve and batch payloads.
type solveOptions struct {
	// Algorithm is a registry name; "" means bufferkit.AlgoNew.
	Algorithm string `json:"algorithm,omitempty"`
	// Prune is "transient" (default) or "destructive" (AlgoNew only).
	Prune string `json:"prune,omitempty"`
	// Backend is the candidate-list representation: "list", "soa", or ""
	// for the benchmark-chosen default. Results are identical across
	// backends; the field exists so ablation traffic can pin one.
	Backend string `json:"backend,omitempty"`
	// MaxCost caps total buffer cost (AlgoCostSlack only; 0 = no cap).
	MaxCost int `json:"max_cost,omitempty"`
	// NoStats skips the Stats copy on the response.
	NoStats bool `json:"no_stats,omitempty"`
	// TimeoutMs overrides the server's default solve budget, capped at
	// Config.MaxTimeout.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// newSolver assembles a Solver for one request. extra carries per-mode
// options (WithDriver for solve, WithDrivers/WithWorkers for batch).
func (o solveOptions) newSolver(lib bufferkit.Library, extra ...bufferkit.Option) (*bufferkit.Solver, error) {
	algo := o.Algorithm
	if algo == "" {
		algo = bufferkit.AlgoNew
	}
	if !slices.Contains(bufferkit.Algorithms(), algo) {
		return nil, badRequestf("algorithm", "unknown algorithm %q (have %s)",
			algo, strings.Join(bufferkit.Algorithms(), ", "))
	}
	var mode bufferkit.PruneMode
	switch o.Prune {
	case "", "transient":
		mode = bufferkit.PruneTransient
	case "destructive":
		mode = bufferkit.PruneDestructive
	default:
		return nil, badRequestf("prune", "unknown prune mode %q (transient or destructive)", o.Prune)
	}
	switch o.Backend {
	case "", "default", "list", "soa":
	default:
		return nil, badRequestf("backend", "unknown backend %q (list or soa)", o.Backend)
	}
	opts := append([]bufferkit.Option{
		bufferkit.WithLibrary(lib),
		bufferkit.WithAlgorithm(algo),
		bufferkit.WithPruneMode(mode),
		bufferkit.WithBackend(o.Backend),
		bufferkit.WithMaxCost(o.MaxCost),
		bufferkit.WithStats(!o.NoStats),
	}, extra...)
	return bufferkit.NewSolver(opts...)
}

// cacheOptions canonicalizes the option fields that affect the result, for
// the cache key. TimeoutMs is excluded — a timeout changes whether a result
// exists, never its value.
func (o solveOptions) cacheOptions() string {
	algo := o.Algorithm
	if algo == "" {
		algo = bufferkit.AlgoNew
	}
	prune := o.Prune
	if prune == "" {
		prune = "transient"
	}
	// Like algo and prune, backend folds in as its resolved value, so
	// "", "default" and the concrete default backend share one cache
	// entry — the results are bit-identical by contract.
	backend := o.Backend
	if backend == "" || backend == "default" {
		backend = bufferkit.BackendDefault.Resolve().String()
	}
	return fmt.Sprintf("algo=%s prune=%s backend=%s maxcost=%d stats=%t", algo, prune, backend, o.MaxCost, !o.NoStats)
}

// timeout resolves the request's solve budget against the server limits.
func (s *Server) timeout(o solveOptions) time.Duration {
	d := s.cfg.DefaultTimeout
	if o.TimeoutMs > 0 {
		d = time.Duration(o.TimeoutMs) * time.Millisecond
	}
	return min(d, s.cfg.MaxTimeout)
}

// httpError is an error with a fixed HTTP status, optionally tied to a
// request field.
type httpError struct {
	status int
	msg    string
	field  string
}

func (e *httpError) Error() string { return e.msg }

// badRequestf builds a 400 httpError tied to a request field.
func badRequestf(field, format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, field: field, msg: fmt.Sprintf(format, args...)}
}

// vertexName returns the display name of vertex v: its file name when set,
// otherwise "v<i>" ("src" for the source).
func vertexName(t *bufferkit.Tree, v int) string {
	if v == 0 {
		return "src"
	}
	if n := t.Verts[v].Name; n != "" {
		return n
	}
	return fmt.Sprintf("v%d", v)
}

// bufferName returns the display name of library type b.
func bufferName(lib bufferkit.Library, b int) string {
	if n := lib[b].Name; n != "" {
		return n
	}
	return fmt.Sprintf("b%d", b)
}

// placementNames renders a placement as vertex name → buffer type name.
func placementNames(t *bufferkit.Tree, lib bufferkit.Library, p bufferkit.Placement) map[string]string {
	out := make(map[string]string, p.Count())
	for v, b := range p {
		if b != bufferkit.NoBuffer {
			out[vertexName(t, v)] = bufferName(lib, b)
		}
	}
	return out
}
