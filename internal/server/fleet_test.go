package server

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bufferkit/internal/chaoskit"
	"bufferkit/internal/fleet"
	"bufferkit/internal/resilience"
	"bufferkit/internal/server/cache"
)

// testFleet is an in-process fleet: n Servers on real loopback listeners,
// so forwards, probes and replication travel over actual HTTP.
type testFleet struct {
	urls    []string
	hosts   []string
	servers []*Server
	httpds  []*http.Server
	tr      *http.Transport
	client  *http.Client
}

// startTestFleet boots n nodes on loopback. part (nil ok) wires every
// node's fleet transport through a shared chaoskit partition script;
// mutate (nil ok) adjusts each node's Config before construction.
func startTestFleet(t *testing.T, n int, part *chaoskit.Partition, mutate func(i int, cfg *Config)) *testFleet {
	t.Helper()
	tf := &testFleet{tr: &http.Transport{}}
	tf.client = &http.Client{Transport: tf.tr}
	ls := make([]net.Listener, n)
	for i := range ls {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ls[i] = l
		tf.hosts = append(tf.hosts, l.Addr().String())
		tf.urls = append(tf.urls, "http://"+l.Addr().String())
	}
	for i := range ls {
		var rt http.RoundTripper = tf.tr
		if part != nil {
			rt = &chaoskit.PartitionTransport{Self: tf.hosts[i], Part: part, Base: tf.tr}
		}
		cfg := Config{
			Fleet: fleet.Config{
				Self:          tf.urls[i],
				Peers:         tf.urls,
				Replicas:      2,
				ProbeInterval: 100 * time.Millisecond,
				HedgeAfter:    20 * time.Millisecond,
				Transport:     rt,
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s := New(cfg)
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ls[i])
		tf.servers = append(tf.servers, s)
		tf.httpds = append(tf.httpds, hs)
	}
	return tf
}

func (tf *testFleet) stop() {
	for _, hs := range tf.httpds {
		hs.Close()
	}
	for _, s := range tf.servers {
		s.Close()
	}
	tf.tr.CloseIdleConnections()
}

// killNode closes node i's listener and connections — the process-death
// analogue for in-process tests.
func (tf *testFleet) killNode(i int) {
	tf.httpds[i].Close()
}

// do sends one JSON request to a node and returns status plus raw body.
func (tf *testFleet) do(t testing.TB, method string, i int, path string, body any, hdr map[string]string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, tf.urls[i]+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := tf.client.Do(req)
	if err != nil {
		t.Fatalf("%s %s%s: %v", method, tf.urls[i], path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// metricAt fetches one numeric counter from node i over HTTP.
func (tf *testFleet) metricAt(t testing.TB, i int, name string) float64 {
	t.Helper()
	status, b := tf.do(t, "GET", i, "/metrics", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("GET /metrics on node %d = %d", i, status)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	raw, ok := m[name]
	if !ok {
		t.Fatalf("metric %q missing on node %d", name, i)
	}
	var f float64
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("metric %q = %s: %v", name, raw, err)
	}
	return f
}

// roles resolves the fleet roles for one solve request: the ring-preferred
// home, the replica, and a node that owns nothing of this digest.
func (tf *testFleet) roles(req solveRequest) (home, replica, non int) {
	key := cache.NewKey([]byte(req.Net), []byte(req.Library), req.solveOptions.cacheOptions())
	h := fleet.RouteKey(key.Net, key.Library)
	owners := tf.servers[0].fleet.Owners(h)
	home, replica, non = -1, -1, -1
	for i, u := range tf.urls {
		switch {
		case u == owners[0]:
			home = i
		case u == owners[1]:
			replica = i
		default:
			non = i
		}
	}
	return home, replica, non
}

func testSolveRequest(t testing.TB) solveRequest {
	return solveRequest{Net: readTestdata(t, "line.net"), Library: readTestdata(t, "lib8.buf")}
}

// TestFleetForwardToOwner: a non-owner forwards the solve to its cache
// home, the engine runs only there, the result is near-cached at the
// forwarder and written through to the replica.
func TestFleetForwardToOwner(t *testing.T) {
	tf := startTestFleet(t, 3, nil, nil)
	defer tf.stop()
	req := testSolveRequest(t)
	home, replica, non := tf.roles(req)

	status, b := tf.do(t, "POST", non, "/v1/solve", req, nil)
	if status != http.StatusOK {
		t.Fatalf("forwarded solve = %d: %s", status, b)
	}
	var resp solveResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Net != "line" || resp.Cached {
		t.Fatalf("forwarded resp = %+v", resp)
	}
	if got := tf.metricAt(t, non, "fleet_forwards"); got != 1 {
		t.Fatalf("origin fleet_forwards = %v, want 1", got)
	}
	if got := tf.metricAt(t, non, "engine_runs"); got != 0 {
		t.Fatalf("origin engine_runs = %v, want 0 (engine belongs to the home)", got)
	}
	if got := tf.metricAt(t, home, "engine_runs"); got != 1 {
		t.Fatalf("home engine_runs = %v, want 1", got)
	}

	// Near-cache: the same request at the forwarder now hits locally.
	status, b = tf.do(t, "POST", non, "/v1/solve", req, nil)
	if status != http.StatusOK {
		t.Fatalf("repeat solve = %d: %s", status, b)
	}
	var again solveResponse
	if err := json.Unmarshal(b, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("repeat at the forwarder was not served from the near-cache")
	}
	if got := tf.metricAt(t, non, "fleet_forwards"); got != 1 {
		t.Fatalf("near-cached repeat forwarded again (fleet_forwards = %v)", got)
	}

	// Write-through: the replica owner receives the result asynchronously;
	// once it lands, the same solve there is a local cache hit.
	deadline := time.Now().Add(5 * time.Second)
	for tf.metricAt(t, replica, "fleet_replicas_stored") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("write-through replica never arrived at the second owner")
		}
		time.Sleep(10 * time.Millisecond)
	}
	status, b = tf.do(t, "POST", replica, "/v1/solve", req, nil)
	if status != http.StatusOK {
		t.Fatalf("solve at replica = %d: %s", status, b)
	}
	var rep solveResponse
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Cached {
		t.Fatal("replica owner missed its replicated cache entry")
	}
	if got := tf.metricAt(t, replica, "engine_runs"); got != 0 {
		t.Fatalf("replica engine_runs = %v, want 0", got)
	}
}

// TestFleetSingleflightCollapse: concurrent identical solves arriving at
// a non-owner collapse — fleet-wide — onto one engine run at the home.
func TestFleetSingleflightCollapse(t *testing.T) {
	tf := startTestFleet(t, 3, nil, nil)
	defer tf.stop()
	req := testSolveRequest(t)
	home, _, non := tf.roles(req)

	const callers = 8
	var wg sync.WaitGroup
	errs := make(chan string, callers)
	for range callers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, b := tf.do(t, "POST", non, "/v1/solve", req, nil)
			if status != http.StatusOK {
				errs <- fmt.Sprintf("status %d: %s", status, b)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got := tf.metricAt(t, home, "engine_runs"); got != 1 {
		t.Fatalf("home engine_runs = %v, want exactly 1 for %d concurrent callers", got, callers)
	}
	if got := tf.metricAt(t, non, "engine_runs"); got != 0 {
		t.Fatalf("origin engine_runs = %v, want 0", got)
	}
}

// TestFleetHopGuard: a request that already hopped once is served locally
// no matter who owns the digest — no forwarding loops.
func TestFleetHopGuard(t *testing.T) {
	tf := startTestFleet(t, 3, nil, nil)
	defer tf.stop()
	req := testSolveRequest(t)
	_, _, non := tf.roles(req)

	status, b := tf.do(t, "POST", non, "/v1/solve", req, map[string]string{
		"X-Bufferkit-Hops":   "1",
		"X-Bufferkit-Origin": "http://elsewhere",
	})
	if status != http.StatusOK {
		t.Fatalf("hopped solve = %d: %s", status, b)
	}
	if got := tf.metricAt(t, non, "fleet_forwards"); got != 0 {
		t.Fatalf("hopped request was re-forwarded (fleet_forwards = %v)", got)
	}
	if got := tf.metricAt(t, non, "engine_runs"); got != 1 {
		t.Fatalf("hopped request did not run locally (engine_runs = %v)", got)
	}
}

// TestFleetRelayedErrorNamesPeer: an authoritative peer verdict (here a
// 400 parse failure) is relayed to the client with the origin peer named
// in the payload.
func TestFleetRelayedErrorNamesPeer(t *testing.T) {
	tf := startTestFleet(t, 3, nil, nil)
	defer tf.stop()
	req := solveRequest{Net: "this is not a netlist", Library: readTestdata(t, "lib8.buf")}
	home, _, non := tf.roles(req)

	status, b := tf.do(t, "POST", non, "/v1/solve", req, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("relayed parse error = %d: %s", status, b)
	}
	var er errorResponse
	if err := json.Unmarshal(b, &er); err != nil {
		t.Fatal(err)
	}
	if er.Peer != tf.urls[home] {
		t.Fatalf("relayed error names peer %q, want the home %q\nbody: %s", er.Peer, tf.urls[home], b)
	}

	// A locally produced error carries no peer annotation.
	status, b = tf.do(t, "POST", home, "/v1/solve", req, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("local parse error = %d: %s", status, b)
	}
	var local errorResponse
	if err := json.Unmarshal(b, &local); err != nil {
		t.Fatal(err)
	}
	if local.Peer != "" {
		t.Fatalf("local error unexpectedly names a peer: %q", local.Peer)
	}
}

// TestFleetFailoverOnDeadHome: with the home killed, a forwarded solve
// fails over (replica or local fallback) and the client still gets a
// result.
func TestFleetFailoverOnDeadHome(t *testing.T) {
	tf := startTestFleet(t, 3, nil, nil)
	defer tf.stop()
	req := testSolveRequest(t)
	home, _, non := tf.roles(req)
	tf.killNode(home)

	status, b := tf.do(t, "POST", non, "/v1/solve", req, nil)
	if status != http.StatusOK {
		t.Fatalf("solve with dead home = %d: %s", status, b)
	}
	var resp solveResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Net != "line" {
		t.Fatalf("resp = %+v", resp)
	}
}

// TestFleetPartitionFallback: a node partitioned away from every peer
// still answers from its own engines, and resumes forwarding after heal.
func TestFleetPartitionFallback(t *testing.T) {
	defer checkNoGoroutineLeak(t)()
	part := chaoskit.NewPartition()
	tf := startTestFleet(t, 3, part, nil)
	defer tf.stop()
	req := testSolveRequest(t)
	_, _, non := tf.roles(req)
	part.Isolate(tf.hosts[non], tf.hosts...)

	status, b := tf.do(t, "POST", non, "/v1/solve", req, nil)
	if status != http.StatusOK {
		t.Fatalf("partitioned solve = %d: %s", status, b)
	}
	var resp solveResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Net != "line" || resp.Cached {
		t.Fatalf("partitioned resp = %+v", resp)
	}
	if got := tf.metricAt(t, non, "fleet_local_fallbacks"); got < 1 {
		t.Fatalf("fleet_local_fallbacks = %v, want >= 1", got)
	}
	if got := tf.metricAt(t, non, "engine_runs"); got != 1 {
		t.Fatalf("partitioned engine_runs = %v, want 1 (local solve)", got)
	}

	// Heal, wait for the probe loop to resurrect the peers, then confirm a
	// fresh digest forwards again.
	part.HealAll()
	req2 := solveRequest{Net: readTestdata(t, "random12.net"), Library: readTestdata(t, "lib8.buf")}
	_, _, non2 := tf.roles(req2)
	deadline := time.Now().Add(5 * time.Second)
	for tf.metricAt(t, non2, "peer_dead") > 0 || tf.metricAt(t, non2, "peer_suspect") > 0 {
		if time.Now().After(deadline) {
			t.Fatal("peers never resurrected after heal")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if status, b = tf.do(t, "POST", non2, "/v1/solve", req2, nil); status != http.StatusOK {
		t.Fatalf("healed solve = %d: %s", status, b)
	}
	if got := tf.metricAt(t, non2, "fleet_forwards"); got < 1 {
		t.Fatalf("fleet did not resume forwarding after heal (fleet_forwards = %v)", got)
	}
}

// TestFleetEndpointAndReplicaPut covers the two fleet HTTP surfaces: the
// topology endpoint and the peer replication sink.
func TestFleetEndpointAndReplicaPut(t *testing.T) {
	tf := startTestFleet(t, 3, nil, nil)
	defer tf.stop()

	status, b := tf.do(t, "GET", 0, "/v1/fleet", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("GET /v1/fleet = %d", status)
	}
	var info struct {
		Enabled  bool               `json:"enabled"`
		Self     string             `json:"self"`
		Replicas int                `json:"replicas"`
		Peers    []fleet.PeerStatus `json:"peers"`
	}
	if err := json.Unmarshal(b, &info); err != nil {
		t.Fatal(err)
	}
	if !info.Enabled || info.Self != tf.urls[0] || info.Replicas != 2 || len(info.Peers) != 3 {
		t.Fatalf("fleet info = %+v", info)
	}

	key := cache.NewKey([]byte("replica-net"), []byte("replica-lib"), "algo=new")
	put := cacheReplica{
		NetSHA:   hex.EncodeToString(key.Net[:]),
		LibSHA:   hex.EncodeToString(key.Library[:]),
		Options:  key.Options,
		Response: &solveResponse{Net: "replica-net", Algorithm: "new"},
	}
	status, b = tf.do(t, "PUT", 1, "/internal/v1/cache", put, nil)
	if status != http.StatusOK {
		t.Fatalf("PUT replica = %d: %s", status, b)
	}
	var stored map[string]bool
	if err := json.Unmarshal(b, &stored); err != nil {
		t.Fatal(err)
	}
	if !stored["stored"] {
		t.Fatal("fresh replica was not stored")
	}
	if status, b = tf.do(t, "PUT", 1, "/internal/v1/cache", put, nil); status != http.StatusOK {
		t.Fatalf("repeat PUT replica = %d: %s", status, b)
	} else if json.Unmarshal(b, &stored); stored["stored"] {
		t.Fatal("duplicate replica was stored again")
	}
	put.NetSHA = "zz"
	if status, _ = tf.do(t, "PUT", 1, "/internal/v1/cache", put, nil); status != http.StatusBadRequest {
		t.Fatalf("malformed replica = %d, want 400", status)
	}
}

// TestFleetDisabledSurfaces: a single node reports a disabled fleet and
// rejects replication pushes.
func TestFleetDisabledSurfaces(t *testing.T) {
	h := New(Config{}).Handler()
	rec := get(t, h, "/v1/fleet")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/fleet = %d", rec.Code)
	}
	var info struct {
		Enabled bool `json:"enabled"`
	}
	decodeInto(t, rec, &info)
	if info.Enabled {
		t.Fatal("single node claims to be a fleet")
	}
	req := httptest.NewRequest("PUT", "/internal/v1/cache", bytes.NewReader([]byte("{}")))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("PUT /internal/v1/cache on single node = %d, want 404", rec.Code)
	}
}

// postTenant posts a solve as the given tenant through an in-process
// handler.
func postTenant(t testing.TB, h http.Handler, tenant string, extra map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := testSolveRequest(t)
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(b))
	r.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		r.Header.Set("X-Bufferkit-Tenant", tenant)
	}
	for k, v := range extra {
		r.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	return rec
}

// TestTenantQuotas: per-tenant buckets shed independently, unknown
// tenants fall back to per-tenant "*" buckets, probes and forwarded hops
// pass free.
func TestTenantQuotas(t *testing.T) {
	s := New(Config{TenantQuotas: map[string]resilience.QuotaSpec{
		"alice": {Rate: 0.01, Burst: 2},
		"*":     {Rate: 0.01, Burst: 1},
	}})
	h := s.Handler()

	for i := range 2 {
		if rec := postTenant(t, h, "alice", nil); rec.Code != http.StatusOK {
			t.Fatalf("alice request %d = %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	rec := postTenant(t, h, "alice", nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("alice over-quota request = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("tenant 429 missing Retry-After")
	}

	// bob and carol each get their own "*" bucket: bob exhausting his does
	// not shed carol.
	if rec := postTenant(t, h, "bob", nil); rec.Code != http.StatusOK {
		t.Fatalf("bob request = %d", rec.Code)
	}
	if rec := postTenant(t, h, "bob", nil); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("bob over-quota request = %d, want 429", rec.Code)
	}
	if rec := postTenant(t, h, "carol", nil); rec.Code != http.StatusOK {
		t.Fatalf("carol request = %d (bob's shed leaked)", rec.Code)
	}

	// Forwarded hops were charged at their ingress node: they pass free
	// even for an exhausted tenant.
	if rec := postTenant(t, h, "alice", map[string]string{"X-Bufferkit-Hops": "1"}); rec.Code != http.StatusOK {
		t.Fatalf("forwarded hop hit the tenant quota: %d", rec.Code)
	}
	// GET endpoints are never charged.
	if rec := get(t, h, "/metrics"); rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics as over-quota tenant = %d", rec.Code)
	}
	if got := metric(t, h, "tenant_shed_total"); got < 2 {
		t.Fatalf("tenant_shed_total = %d, want >= 2", got)
	}
	if got := metric(t, h, "tenant_allowed"); got < 4 {
		t.Fatalf("tenant_allowed = %d, want >= 4", got)
	}
}
