package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"bufferkit"
	"bufferkit/internal/chaoskit"
)

// chipInstanceJSON renders a generated contended instance as the raw JSON
// payload the /v1/chip handler consumes.
func chipInstanceJSON(t testing.TB, o bufferkit.ChipGenOpts) json.RawMessage {
	t.Helper()
	var buf bytes.Buffer
	if err := bufferkit.WriteChipInstance(&buf, bufferkit.GenerateChip(o)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// libText renders a generated library as .buf payload text.
func libText(t testing.TB, lib bufferkit.Library) string {
	t.Helper()
	var buf bytes.Buffer
	if err := bufferkit.WriteLibrary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// chipLines splits a recorded NDJSON chip response into decoded lines.
func chipLines(t testing.TB, body *bytes.Buffer) []chipLine {
	t.Helper()
	var lines []chipLine
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line chipLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestChipHappyPath: a contended instance streams one round record per
// pricing round and ends with a feasible Done summary whose per-net arrays
// match the instance, with the chip counters advancing.
func TestChipHappyPath(t *testing.T) {
	h := New(Config{}).Handler()
	const nets = 40
	req := chipRequest{
		Instance: chipInstanceJSON(t, bufferkit.ChipGenOpts{
			W: 10, H: 10, Nets: nets, Capacity: 2, Contention: 0.7, Seed: 3}),
		Library: libText(t, bufferkit.GenerateLibrary(8)),
	}
	rec := post(t, h, "/v1/chip", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("chip = %d, want 200: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	lines := chipLines(t, rec.Body)
	if len(lines) < 2 {
		t.Fatalf("chip stream has %d lines, want rounds + summary", len(lines))
	}
	var rounds int
	for _, l := range lines[:len(lines)-1] {
		if l.Round == nil || l.Done != nil || l.Error != "" {
			t.Fatalf("non-terminal line is not a round record: %+v", l)
		}
		rounds++
		if l.Round.Round != rounds && !l.Round.Repair {
			t.Fatalf("round records out of order: got %d at position %d", l.Round.Round, rounds)
		}
	}
	done := lines[len(lines)-1].Done
	if done == nil {
		t.Fatalf("terminal line is not a summary: %+v", lines[len(lines)-1])
	}
	if !done.Feasible {
		t.Fatal("summary is not feasible")
	}
	if done.Nets != nets || len(done.Placements) != nets || len(done.Slacks) != nets {
		t.Fatalf("summary sized %d/%d/%d, want %d nets",
			done.Nets, len(done.Placements), len(done.Slacks), nets)
	}
	if done.Rounds != rounds {
		t.Fatalf("summary reports %d rounds, stream delivered %d", done.Rounds, rounds)
	}
	if done.Buffers == 0 {
		t.Fatal("feasible contended allocation placed no buffers")
	}
	if got := metric(t, h, "chip_requests"); got != 1 {
		t.Fatalf("chip_requests = %d, want 1", got)
	}
	if got := metric(t, h, "chip_nets"); got != nets {
		t.Fatalf("chip_nets = %d, want %d", got, nets)
	}
	if got := metric(t, h, "chip_rounds"); got != int64(rounds) {
		t.Fatalf("chip_rounds = %d, want %d", got, rounds)
	}
}

// TestChipValidation: malformed payloads and bad knobs map to 400s before
// any engine work, naming the offending field.
func TestChipValidation(t *testing.T) {
	lib := libText(t, bufferkit.GenerateLibrary(4))
	inst := chipInstanceJSON(t, bufferkit.ChipGenOpts{
		W: 4, H: 4, Nets: 3, Capacity: 2, Seed: 1})
	cases := []struct {
		name  string
		cfg   Config
		req   chipRequest
		field string
	}{
		{"no instance", Config{}, chipRequest{Library: lib}, "instance"},
		// An instance that parses but fails validation surfaces the
		// instance's own ValidationError field.
		{"bad instance", Config{}, chipRequest{Instance: json.RawMessage(`{"grid":{}}`), Library: lib}, "grid"},
		{"bad library", Config{}, chipRequest{Instance: inst, Library: "not a library"}, "library"},
		{"too many nets", Config{MaxChipNets: 2}, chipRequest{Instance: inst, Library: lib}, "instance"},
		{"negative rounds", Config{}, chipRequest{Instance: inst, Library: lib, Rounds: -1}, "rounds"},
		{"bad decay", Config{}, chipRequest{Instance: inst, Library: lib, StepDecay: 1.5}, "step_decay"},
		{"wrong algorithm", Config{}, chipRequest{Instance: inst, Library: lib,
			solveOptions: solveOptions{Algorithm: "lillis"}}, "algorithm"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, New(tc.cfg).Handler(), "/v1/chip", tc.req)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("code = %d, want 400: %s", rec.Code, rec.Body.String())
			}
			var er errorResponse
			decodeInto(t, rec, &er)
			if er.Field != tc.field {
				t.Fatalf("field = %q (%s), want %q", er.Field, er.Error, tc.field)
			}
		})
	}
}

// TestChipInfeasible: a net that needs a buffer whose only site has zero
// capacity fails before round 1, so the typed infeasibility still maps to a
// clean 422 instead of a mid-stream error record.
func TestChipInfeasible(t *testing.T) {
	b := bufferkit.NewTreeBuilder()
	pos := b.AddBufferPos(0, 0.3, 40)
	b.AddSinkPol(pos, 0.2, 30, 10, 500, bufferkit.Negative)
	inst := &bufferkit.ChipInstance{
		Grid: bufferkit.ChipGrid{W: 1, H: 1, Capacity: 0},
		Nets: []bufferkit.ChipNet{{
			Name: "needs_inv", Tree: b.MustBuild(),
			Site: []int{bufferkit.NoSite, 0, bufferkit.NoSite},
		}},
	}
	var buf bytes.Buffer
	if err := bufferkit.WriteChipInstance(&buf, inst); err != nil {
		t.Fatal(err)
	}
	h := New(Config{}).Handler()
	rec := post(t, h, "/v1/chip", chipRequest{
		Instance: buf.Bytes(),
		Library:  libText(t, bufferkit.GenerateLibraryWithInverters(4)),
	})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible chip = %d, want 422: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "infeasible") {
		t.Fatalf("422 body does not name infeasibility: %s", rec.Body.String())
	}
}

// TestChipDeadline: a 1 ms budget fires before the first pricing round of a
// large instance completes, so the handler still owns the status line and
// answers 504 with the abort counters advanced.
func TestChipDeadline(t *testing.T) {
	h := New(Config{}).Handler()
	rec := post(t, h, "/v1/chip", chipRequest{
		Instance: chipInstanceJSON(t, bufferkit.ChipGenOpts{
			W: 24, H: 24, Nets: 800, Capacity: 2, Contention: 0.8, Seed: 2}),
		Library:      libText(t, bufferkit.GenerateLibrary(8)),
		solveOptions: solveOptions{TimeoutMs: 1},
	})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline chip = %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if got := metric(t, h, "chip_deadline_aborts"); got != 1 {
		t.Fatalf("chip_deadline_aborts = %d, want 1", got)
	}
}

// TestChipOverloadSheds: a chip solve arriving at a saturated server with
// no queue is shed as a clean 429 + Retry-After before the stream starts.
func TestChipOverloadSheds(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, MaxQueue: -1})
	h := s.Handler()
	release := chaoskit.HoldGate()
	defer release()
	blocked := gatedSolve(t, h, solveRequest{
		Net: readTestdata(t, "line.net"), Library: readTestdata(t, "lib8.buf"),
		solveOptions: solveOptions{Algorithm: chaoskit.AlgoGate}})
	waitForMetric(t, h, "in_flight_runs", 1)

	rec := post(t, h, "/v1/chip", chipRequest{
		Instance: chipInstanceJSON(t, bufferkit.ChipGenOpts{
			W: 4, H: 4, Nets: 3, Capacity: 2, Seed: 1}),
		Library: libText(t, bufferkit.GenerateLibrary(4)),
	})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded chip = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 chip reply is missing the Retry-After header")
	}
	release()
	if code := <-blocked; code != http.StatusOK {
		t.Fatalf("gated solve finished with %d, want 200", code)
	}
}

// TestChipSingleNetMatchesSolve: a chip instance holding one unconstrained
// net reports the same slack and buffer count as /v1/solve on the same
// payload — the pricing layer is exact when nothing contends.
func TestChipSingleNetMatchesSolve(t *testing.T) {
	h := New(Config{}).Handler()
	lib := libText(t, bufferkit.GenerateLibrary(8))
	inst := chipInstanceJSON(t, bufferkit.ChipGenOpts{
		W: 8, H: 8, Nets: 1, Capacity: 1000, Seed: 9})

	rec := post(t, h, "/v1/chip", chipRequest{Instance: inst, Library: lib})
	if rec.Code != http.StatusOK {
		t.Fatalf("chip = %d: %s", rec.Code, rec.Body.String())
	}
	lines := chipLines(t, rec.Body)
	done := lines[len(lines)-1].Done
	if done == nil {
		t.Fatalf("terminal line is not a summary: %+v", lines[len(lines)-1])
	}

	// Re-solve the embedded net through /v1/solve.
	var parsed struct {
		Nets []struct {
			Net string `json:"net"`
		} `json:"nets"`
	}
	if err := json.Unmarshal(inst, &parsed); err != nil {
		t.Fatal(err)
	}
	srec := post(t, h, "/v1/solve", solveRequest{Net: parsed.Nets[0].Net, Library: lib})
	if srec.Code != http.StatusOK {
		t.Fatalf("solve = %d: %s", srec.Code, srec.Body.String())
	}
	var sres solveResponse
	decodeInto(t, srec, &sres)
	if sres.Slack != done.Slacks[0] {
		t.Fatalf("chip slack %v != solve slack %v", done.Slacks[0], sres.Slack)
	}
	if sres.Buffers != done.Buffers {
		t.Fatalf("chip buffers %d != solve buffers %d", done.Buffers, sres.Buffers)
	}
}
