package server

// Server-level tests for the resilience tier: drain mode, panic
// containment, load shedding with Retry-After, singleflight collapse,
// and the batch terminal-error record. Engine faults are injected through
// internal/chaoskit's registered chaos algorithms, so everything here
// exercises the real HTTP surface.

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"bufferkit/internal/chaoskit"
)

func init() { chaoskit.RegisterAlgorithms() }

// waitForMetric polls a counter until it reaches want.
func waitForMetric(t testing.TB, h http.Handler, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for metric(t, h, name) != want {
		if time.Now().After(deadline) {
			t.Fatalf("metric %s = %d never reached %d", name, metric(t, h, name), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReadyzDrain: /readyz flips to 503 in drain mode while /healthz and
// the solve path keep working, so a load balancer can divert traffic
// without killing in-flight work.
func TestReadyzDrain(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz before drain = %d, want 200", rec.Code)
	}
	s.SetDraining(true)
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", rec.Code)
	}
	if got := metric(t, h, "draining"); got != 1 {
		t.Fatalf("draining metric = %d, want 1", got)
	}
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200 (liveness is not readiness)", rec.Code)
	}
	// Already-accepted work still completes during the drain window.
	rec := post(t, h, "/v1/solve", solveRequest{
		Net: readTestdata(t, "line.net"), Library: readTestdata(t, "lib8.buf")})
	if rec.Code != http.StatusOK {
		t.Fatalf("solve while draining = %d, want 200", rec.Code)
	}
	s.SetDraining(false)
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz after drain lifted = %d, want 200", rec.Code)
	}
}

// TestPanicRecovery: an engine panic maps to a 500 with panics_total
// incremented, and the server keeps serving afterwards.
func TestPanicRecovery(t *testing.T) {
	log.SetOutput(io.Discard) // silence the expected panic stack
	defer log.SetOutput(os.Stderr)
	h := New(Config{}).Handler()
	req := solveRequest{
		Net:          readTestdata(t, "line.net"),
		Library:      readTestdata(t, "lib8.buf"),
		solveOptions: solveOptions{Algorithm: chaoskit.AlgoPanic},
	}
	rec := post(t, h, "/v1/solve", req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking solve = %d, want 500: %s", rec.Code, rec.Body.String())
	}
	var er errorResponse
	decodeInto(t, rec, &er)
	if !strings.Contains(er.Error, "internal error") {
		t.Fatalf("500 body %q does not say internal error", er.Error)
	}
	if got := metric(t, h, "panics_total"); got != 1 {
		t.Fatalf("panics_total = %d, want 1", got)
	}
	// The server is still alive and correct after the panic.
	req.Algorithm = ""
	if rec := post(t, h, "/v1/solve", req); rec.Code != http.StatusOK {
		t.Fatalf("solve after panic = %d, want 200: %s", rec.Code, rec.Body.String())
	}
	if got := metric(t, h, "panics_total"); got != 1 {
		t.Fatalf("panics_total after healthy solve = %d, want still 1", got)
	}
}

// gatedSolve posts a chaos-gate solve in a goroutine and returns a channel
// with the recorder. The caller must release the gate.
func gatedSolve(t *testing.T, h http.Handler, req solveRequest) <-chan int {
	t.Helper()
	done := make(chan int, 1)
	go func() { done <- post(t, h, "/v1/solve", req).Code }()
	return done
}

// TestShedQueueFull: with no queue configured, a second request against a
// single busy slot is shed immediately with 429 + Retry-After.
func TestShedQueueFull(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, MaxQueue: -1})
	h := s.Handler()
	release := chaoskit.HoldGate()
	defer release()
	lib := readTestdata(t, "lib8.buf")
	blocked := gatedSolve(t, h, solveRequest{
		Net: readTestdata(t, "line.net"), Library: lib,
		solveOptions: solveOptions{Algorithm: chaoskit.AlgoGate}})
	waitForMetric(t, h, "in_flight_runs", 1)

	rec := post(t, h, "/v1/solve", solveRequest{
		Net: readTestdata(t, "random12.net"), Library: lib})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overload solve = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 reply is missing the Retry-After header")
	}
	if got := metric(t, h, "shed_queue_full"); got != 1 {
		t.Fatalf("shed_queue_full = %d, want 1", got)
	}
	if got := metric(t, h, "shed_total"); got != 1 {
		t.Fatalf("shed_total = %d, want 1", got)
	}
	release()
	if code := <-blocked; code != http.StatusOK {
		t.Fatalf("gated solve finished with %d, want 200", code)
	}
}

// TestCanceledWhileQueuedMaps504: a request whose own deadline fires while
// it waits for admission is a 504 (the deadline verdict), not a 429 — the
// server never refused the work — and is counted on admission_canceled
// rather than folded into the admission-wait average.
func TestCanceledWhileQueuedMaps504(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, MaxQueue: 4})
	h := s.Handler()
	release := chaoskit.HoldGate()
	defer release()
	lib := readTestdata(t, "lib8.buf")
	blocked := gatedSolve(t, h, solveRequest{
		Net: readTestdata(t, "line.net"), Library: lib,
		solveOptions: solveOptions{Algorithm: chaoskit.AlgoGate}})
	waitForMetric(t, h, "in_flight_runs", 1)

	// No EWMA observation yet, so deadline shedding stays out of the way:
	// the request queues and its 5ms budget expires there.
	rec := post(t, h, "/v1/solve", solveRequest{
		Net: readTestdata(t, "random12.net"), Library: lib,
		solveOptions: solveOptions{TimeoutMs: 5}})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("canceled-in-queue solve = %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if got := metric(t, h, "admission_canceled"); got != 1 {
		t.Fatalf("admission_canceled = %d, want 1", got)
	}
	if got := metric(t, h, "shed_total"); got != 0 {
		t.Fatalf("shed_total = %d, want 0 — cancellation is not shedding", got)
	}
	if got := metric(t, h, "admission_wait_ns"); got != 0 {
		t.Fatalf("admission_wait_ns = %d, want 0 — canceled waits must not skew the average", got)
	}
	release()
	if code := <-blocked; code != http.StatusOK {
		t.Fatalf("gated solve finished with %d, want 200", code)
	}
}

// TestShedDeadline: once the EWMA knows how long solves take, a request
// whose remaining deadline cannot cover it is rejected without queueing.
func TestShedDeadline(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	h := s.Handler()
	lib := readTestdata(t, "lib8.buf")
	// Warm the EWMA with a ~60ms solve.
	chaoskit.SetSlowDelay(60 * time.Millisecond)
	defer chaoskit.SetSlowDelay(50 * time.Millisecond)
	rec := post(t, h, "/v1/solve", solveRequest{
		Net: readTestdata(t, "line.net"), Library: lib,
		solveOptions: solveOptions{Algorithm: chaoskit.AlgoSlow}})
	if rec.Code != http.StatusOK {
		t.Fatalf("warmup solve = %d: %s", rec.Code, rec.Body.String())
	}
	// Occupy the only slot, then ask for a solve with a 1ms budget: the
	// admission controller must fast-fail it instead of queueing a request
	// that cannot finish in time.
	release := chaoskit.HoldGate()
	defer release()
	blocked := gatedSolve(t, h, solveRequest{
		Net: readTestdata(t, "random12.net"), Library: lib,
		solveOptions: solveOptions{Algorithm: chaoskit.AlgoGate}})
	waitForMetric(t, h, "in_flight_runs", 1)

	rec = post(t, h, "/v1/solve", solveRequest{
		Net: readTestdata(t, "line.net"), Library: lib,
		solveOptions: solveOptions{TimeoutMs: 1}})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("doomed solve = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if got := metric(t, h, "shed_deadline"); got != 1 {
		t.Fatalf("shed_deadline = %d, want 1", got)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive hint from the warm EWMA", ra)
	}
	release()
	if code := <-blocked; code != http.StatusOK {
		t.Fatalf("gated solve finished with %d, want 200", code)
	}
}

// TestShedQueueTimeout: a queued request is converted into a fast 429
// after Config.QueueTimeout even though its own deadline is generous.
func TestShedQueueTimeout(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueTimeout: 20 * time.Millisecond})
	h := s.Handler()
	lib := readTestdata(t, "lib8.buf")
	release := chaoskit.HoldGate()
	defer release()
	blocked := gatedSolve(t, h, solveRequest{
		Net: readTestdata(t, "line.net"), Library: lib,
		solveOptions: solveOptions{Algorithm: chaoskit.AlgoGate}})
	waitForMetric(t, h, "in_flight_runs", 1)

	rec := post(t, h, "/v1/solve", solveRequest{
		Net: readTestdata(t, "random12.net"), Library: lib})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queued solve = %d, want 429 after the queue timeout: %s", rec.Code, rec.Body.String())
	}
	if got := metric(t, h, "shed_queue_timeout"); got != 1 {
		t.Fatalf("shed_queue_timeout = %d, want 1", got)
	}
	if metric(t, h, "admission_wait_ns") <= 0 {
		t.Fatal("admission_wait_ns not recorded for the timed-out waiter")
	}
	release()
	if code := <-blocked; code != http.StatusOK {
		t.Fatalf("gated solve finished with %d, want 200", code)
	}
}

// TestSolveSingleflight: N identical concurrent solves run the engine
// exactly once; every caller gets the result, flagged as the leader, a
// coalesced follower, or a cache hit.
func TestSolveSingleflight(t *testing.T) {
	check := checkNoGoroutineLeak(t)
	s := New(Config{MaxConcurrent: 4})
	h := s.Handler()
	req := solveRequest{
		Net: readTestdata(t, "line.net"), Library: readTestdata(t, "lib8.buf"),
		solveOptions: solveOptions{Algorithm: chaoskit.AlgoGate}}
	release := chaoskit.HoldGate()
	defer release()

	const n = 16
	var wg sync.WaitGroup
	resps := make(chan solveResponse, n)
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := post(t, h, "/v1/solve", req)
			if rec.Code != http.StatusOK {
				errc <- fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
				return
			}
			var resp solveResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				errc <- err
				return
			}
			resps <- resp
		}()
	}
	// Every request has entered the handler and exactly one engine run is
	// in flight (holding the gate); give the rest a beat to join the
	// flight, then open the gate.
	waitForMetric(t, h, "solve_requests", n)
	waitForMetric(t, h, "in_flight_runs", 1)
	time.Sleep(20 * time.Millisecond)
	release()
	wg.Wait()
	close(resps)
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if runs := metric(t, h, "engine_runs"); runs != 1 {
		t.Fatalf("engine_runs = %d for %d identical concurrent solves, want exactly 1", runs, n)
	}
	var leaders, coalesced, cached int
	for resp := range resps {
		switch {
		case resp.Coalesced:
			coalesced++
		case resp.Cached:
			cached++
		default:
			leaders++
		}
	}
	if leaders != 1 || coalesced+cached != n-1 {
		t.Fatalf("leaders=%d coalesced=%d cached=%d, want 1 leader and %d followers",
			leaders, coalesced, cached, n-1)
	}
	if shared := metric(t, h, "singleflight_shared"); shared != int64(coalesced) {
		t.Fatalf("singleflight_shared = %d, want %d", shared, coalesced)
	}
	check()
}

// TestBatchTerminalErrorRecord: a batch cut short by its deadline ends
// with an Index:-1 error line — the golden shape a client uses to tell a
// truncated stream from a complete one — while a complete batch has none.
func TestBatchTerminalErrorRecord(t *testing.T) {
	h := New(Config{}).Handler()
	lib := readTestdata(t, "lib8.buf")
	chaoskit.SetSlowDelay(200 * time.Millisecond)
	defer chaoskit.SetSlowDelay(50 * time.Millisecond)
	// Distinct nets so nothing is cached; a 50ms budget over 3×200ms of
	// engine time guarantees the deadline fires mid-stream.
	rec := post(t, h, "/v1/batch", batchRequest{
		Library: lib,
		Nets: []string{readTestdata(t, "line.net"), readTestdata(t, "random12.net"),
			readTestdata(t, "line.net") + "# distinct\n"},
		solveOptions: solveOptions{Algorithm: chaoskit.AlgoSlow, TimeoutMs: 50},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d (the stream had already started; aborts are in-band)", rec.Code)
	}
	lines := decodeBatch(t, rec.Body)
	if len(lines) == 0 {
		t.Fatal("truncated batch produced no lines at all")
	}
	last := lines[len(lines)-1]
	if last.Index != -1 || last.Error == "" {
		t.Fatalf("last line = %+v, want the terminal Index:-1 error record", last)
	}
	if !strings.Contains(last.Error, "canceled") {
		t.Fatalf("terminal error %q does not mention cancellation", last.Error)
	}
	if last.Result != nil {
		t.Fatalf("terminal record carries a result: %+v", last)
	}
	for _, l := range lines[:len(lines)-1] {
		if l.Index < 0 {
			t.Fatalf("terminal record is not last: %+v", lines)
		}
	}

	// Golden shape: the terminal record is exactly {"index":-1,"error":...}.
	var shape map[string]json.RawMessage
	raw, err := json.Marshal(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &shape); err != nil {
		t.Fatal(err)
	}
	if len(shape) != 2 || shape["index"] == nil || shape["error"] == nil {
		t.Fatalf("terminal record shape = %s, want exactly index and error", raw)
	}

	// A complete batch never emits the terminal record.
	rec = post(t, h, "/v1/batch", batchRequest{
		Library: lib,
		Nets:    []string{readTestdata(t, "line.net"), readTestdata(t, "random12.net")},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("complete batch status %d", rec.Code)
	}
	for _, l := range decodeBatch(t, rec.Body) {
		if l.Index < 0 {
			t.Fatalf("complete batch emitted a terminal record: %+v", l)
		}
	}
}

// TestBatchOverloadSheds: a batch arriving at a saturated server with no
// queue is shed as a clean 429 before the NDJSON stream starts.
func TestBatchOverloadSheds(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, MaxQueue: -1})
	h := s.Handler()
	lib := readTestdata(t, "lib8.buf")
	release := chaoskit.HoldGate()
	defer release()
	blocked := gatedSolve(t, h, solveRequest{
		Net: readTestdata(t, "line.net"), Library: lib,
		solveOptions: solveOptions{Algorithm: chaoskit.AlgoGate}})
	waitForMetric(t, h, "in_flight_runs", 1)

	rec := post(t, h, "/v1/batch", batchRequest{
		Library: lib, Nets: []string{readTestdata(t, "random12.net")}})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("batch under overload = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 batch reply is missing the Retry-After header")
	}
	release()
	if code := <-blocked; code != http.StatusOK {
		t.Fatalf("gated solve finished with %d, want 200", code)
	}
}
