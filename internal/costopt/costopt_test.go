package costopt

import (
	"strings"
	"testing"

	"bufferkit/internal/bruteforce"
	"bufferkit/internal/core"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/netgen"
	"bufferkit/internal/testutil"
	"bufferkit/internal/tree"
)

func costLib() library.Library {
	return library.Library{
		{Name: "weak", R: 2.0, Cin: 0.8, K: 8, Cost: 1},
		{Name: "mid", R: 0.9, Cin: 2.0, K: 10, Cost: 3},
		{Name: "strong", R: 0.4, Cin: 5.0, K: 12, Cost: 7},
	}
}

func checkFrontier(t *testing.T, pts []Point, tr *tree.Tree, lib library.Library, drv delay.Driver, what string) {
	t.Helper()
	for i, p := range pts {
		if i > 0 {
			if p.Cost <= pts[i-1].Cost || p.Slack <= pts[i-1].Slack {
				t.Fatalf("%s: frontier not strictly increasing at %d: %+v", what, i, pts)
			}
		}
		r, err := delay.Evaluate(tr, lib, p.Placement, drv)
		if err != nil {
			t.Fatalf("%s: witness: %v", what, err)
		}
		if !testutil.AlmostEqual(r.Slack, p.Slack) {
			t.Fatalf("%s: witness slack %.12g != claimed %.12g", what, r.Slack, p.Slack)
		}
		if got := p.Placement.Cost(lib); got != p.Cost {
			t.Fatalf("%s: witness cost %d != claimed %d", what, got, p.Cost)
		}
	}
}

func TestMatchesBruteForceParetoOnRandomSmallNets(t *testing.T) {
	lib := costLib()
	drv := delay.Driver{R: 0.4, K: 3}
	for seed := int64(0); seed < 40; seed++ {
		tr := netgen.RandomSmall(seed, 4, 0)
		want, err := bruteforce.Pareto(tr, lib, drv)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Pareto(tr, lib, Options{Driver: drv})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: frontier sizes %d vs %d\ngot %+v\nwant %+v", seed, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i].Cost != want[i].Cost || !testutil.AlmostEqual(got[i].Slack, want[i].Slack) {
				t.Fatalf("seed %d point %d: got (%d, %.12g), want (%d, %.12g)",
					seed, i, got[i].Cost, got[i].Slack, want[i].Cost, want[i].Slack)
			}
		}
		checkFrontier(t, got, tr, lib, drv, "pareto")
	}
}

func TestCrossLevelPruneDoesNotChangeFrontier(t *testing.T) {
	lib := costLib()
	drv := delay.Driver{R: 0.5}
	for seed := int64(0); seed < 20; seed++ {
		tr := netgen.RandomSmall(seed, 4, 0)
		a, err := Pareto(tr, lib, Options{Driver: drv})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Pareto(tr, lib, Options{Driver: drv, NoCrossLevelPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("seed %d: %d vs %d points", seed, len(a), len(b))
		}
		for i := range a {
			if a[i].Cost != b[i].Cost || !testutil.AlmostEqual(a[i].Slack, b[i].Slack) {
				t.Fatalf("seed %d point %d differs: %+v vs %+v", seed, i, a[i], b[i])
			}
		}
	}
}

func TestMaxSlackPointMatchesCore(t *testing.T) {
	// The most expensive frontier point is the unconstrained optimum.
	lib := costLib()
	drv := delay.Driver{R: 0.3, K: 2}
	for seed := int64(0); seed < 20; seed++ {
		tr := netgen.RandomSmall(seed, 5, 0)
		pts, err := Pareto(tr, lib, Options{Driver: drv})
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) == 0 {
			t.Fatal("empty frontier")
		}
		opt, err := core.Insert(tr, lib, core.Options{Driver: drv})
		if err != nil {
			t.Fatal(err)
		}
		last := pts[len(pts)-1]
		if !testutil.AlmostEqual(last.Slack, opt.Slack) {
			t.Fatalf("seed %d: frontier max %.12g, core optimum %.12g", seed, last.Slack, opt.Slack)
		}
	}
}

func TestMaxCostCapsFrontier(t *testing.T) {
	lib := costLib()
	drv := delay.Driver{R: 0.6}
	tr := netgen.TwoPin(12000, 8, 20, 1000, netgen.PaperWire())
	full, err := Pareto(tr, lib, Options{Driver: drv})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 3 {
		t.Fatalf("test net too easy: frontier %+v", full)
	}
	cap := full[1].Cost
	capped, err := Pareto(tr, lib, Options{Driver: drv, MaxCost: cap})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range capped {
		if p.Cost > cap {
			t.Fatalf("point above cap: %+v", p)
		}
	}
	last := capped[len(capped)-1]
	if last.Cost != full[1].Cost || !testutil.AlmostEqual(last.Slack, full[1].Slack) {
		t.Fatalf("capped frontier end (%d, %g), want (%d, %g)", last.Cost, last.Slack, full[1].Cost, full[1].Slack)
	}
	checkFrontier(t, capped, tr, lib, drv, "capped")
}

func TestZeroCostLibraryCollapsesToOnePoint(t *testing.T) {
	lib := library.Library{
		{Name: "free1", R: 1, Cin: 1, K: 5, Cost: 0},
		{Name: "free2", R: 0.5, Cin: 2, K: 6, Cost: 0},
	}
	tr := netgen.TwoPin(8000, 6, 10, 500, netgen.PaperWire())
	pts, err := Pareto(tr, lib, Options{Driver: delay.Driver{R: 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Cost != 0 {
		t.Fatalf("zero-cost frontier: %+v", pts)
	}
	opt, err := core.Insert(tr, lib, core.Options{Driver: delay.Driver{R: 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(pts[0].Slack, opt.Slack) {
		t.Fatalf("zero-cost slack %.12g != optimum %.12g", pts[0].Slack, opt.Slack)
	}
}

func TestFrontierFirstPointIsUnbuffered(t *testing.T) {
	lib := costLib()
	tr := netgen.TwoPin(5000, 4, 10, 500, netgen.PaperWire())
	drv := delay.Driver{R: 0.4}
	pts, err := Pareto(tr, lib, Options{Driver: drv})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Cost != 0 || pts[0].Placement.Count() != 0 {
		t.Fatalf("first point should be the unbuffered solution: %+v", pts[0])
	}
	unbuf, err := delay.Evaluate(tr, lib, delay.NewPlacement(tr.Len()), drv)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(pts[0].Slack, unbuf.Slack) {
		t.Fatalf("unbuffered slack %.12g vs %.12g", pts[0].Slack, unbuf.Slack)
	}
}

func TestRespectsAllowedAndRejectsInverters(t *testing.T) {
	lib := costLib()
	b := tree.NewBuilder()
	v := b.AddBufferPosRestricted(0, 0.5, 30, []int{0})
	b.AddSink(v, 0.5, 30, 10, 1000)
	tr := b.MustBuild()
	pts, err := Pareto(tr, lib, Options{Driver: delay.Driver{R: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Placement[v] > 0 {
			t.Fatalf("used disallowed type %d", p.Placement[v])
		}
	}

	if _, err := Pareto(tr, library.GenerateWithInverters(4), Options{}); err == nil || !strings.Contains(err.Error(), "inverting") {
		t.Fatalf("err = %v", err)
	}
}
