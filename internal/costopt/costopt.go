// Package costopt extends the paper's algorithm to buffer-cost
// minimization — the "reduce buffer cost" application the paper defers to
// its journal version, in the style of Lillis–Cheng–Lin's resource-aware
// formulation and Shi–Li–Alpert (ASPDAC 2004).
//
// Candidates gain a third coordinate: the total integer cost W of the
// buffers used. The dynamic program keeps one nonredundant (Q, C) list per
// reachable cost level and returns the nondominated (cost, slack) frontier
// at the driver, each point with a witness placement. Within every level,
// AddBuffer is the paper's O(k + b) convex-pruning operation, so the whole
// algorithm is the paper's algorithm run per cost level — pseudo-polynomial
// in the total cost, exact for nonnegative integer costs.
package costopt

import (
	"context"
	"sort"

	"bufferkit/internal/candidate"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/solvererr"
	"bufferkit/internal/tree"
)

// Options configure a run.
type Options struct {
	// Driver is the source driver; the zero value is an ideal driver.
	Driver delay.Driver
	// MaxCost caps the total buffer cost considered; 0 means unlimited.
	MaxCost int
	// NoCrossLevelPrune disables pruning candidates dominated by cheaper
	// levels. Pruning is exact; the switch exists for tests and ablation.
	NoCrossLevelPrune bool
}

// Point is one nondominated (cost, slack) solution.
type Point struct {
	Cost  int
	Slack float64
	// Placement is a witness achieving this point.
	Placement delay.Placement
}

// Pareto computes the cost–slack frontier, sorted by increasing cost with
// strictly increasing slack.
func Pareto(t *tree.Tree, lib library.Library, opt Options) ([]Point, error) {
	return ParetoContext(context.Background(), t, lib, opt)
}

// ParetoContext is Pareto under a context: the per-vertex loop polls ctx at
// a coarse grain and aborts with an error wrapping solvererr.ErrCanceled
// when it fires.
func ParetoContext(ctx context.Context, t *tree.Tree, lib library.Library, opt Options) ([]Point, error) {
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	if lib.HasInverters() {
		return nil, solvererr.Validation("costopt", "library", "inverting types not supported")
	}
	for i := range t.Verts {
		if t.Verts[i].Kind == tree.Sink && t.Verts[i].Pol == tree.Negative {
			return nil, solvererr.Validation("costopt", "polarity",
				"sink requires negative polarity; library has no inverters").AtVertex(i)
		}
	}

	e := &engine{
		t: t, lib: lib, opt: opt, ctx: ctx,
		arena:   candidate.NewArena(),
		orderR:  lib.ByRDesc(),
		cinRank: make([]int, len(lib)),
	}
	for rank, ti := range lib.ByCinAsc() {
		e.cinRank[ti] = rank
	}
	return e.run()
}

// levels maps total buffer cost to its nonredundant candidate list.
type levels map[int]*candidate.List

// sortedCosts returns the cost keys ascending.
func (lv levels) sortedCosts() []int {
	cs := make([]int, 0, len(lv))
	for c := range lv {
		cs = append(cs, c)
	}
	sort.Ints(cs)
	return cs
}

type engine struct {
	t       *tree.Tree
	lib     library.Library
	opt     Options
	ctx     context.Context
	arena   *candidate.Arena
	orderR  []int
	cinRank []int
}

func (e *engine) run() ([]Point, error) {
	lists := make([]levels, e.t.Len())
	for vi, v := range e.t.PostOrder() {
		if vi&solvererr.PollMask == 0 && e.ctx.Err() != nil {
			return nil, solvererr.Canceled(e.ctx)
		}
		vert := &e.t.Verts[v]
		if vert.Kind == tree.Sink {
			lists[v] = levels{0: e.arena.NewSink(vert.RAT, vert.Cap, v)}
			continue
		}
		var acc levels
		for _, c := range e.t.Children(v) {
			lc := lists[c]
			lists[c] = nil
			for _, l := range lc {
				l.AddWire(e.t.Verts[c].EdgeR, e.t.Verts[c].EdgeC)
			}
			if acc == nil {
				acc = lc
			} else {
				acc = mergeLevels(acc, lc, e.opt.MaxCost)
			}
		}
		if vert.BufferOK {
			e.addBuffer(v, acc, vert.Allowed)
		}
		if !e.opt.NoCrossLevelPrune {
			e.crossLevelPrune(acc)
		}
		lists[v] = acc
	}

	root := lists[0]
	var out []Point
	for _, w := range root.sortedCosts() {
		best := root[w].BestForR(e.opt.Driver.R)
		slack := best.Q - e.opt.Driver.R*best.C - e.opt.Driver.K
		if len(out) > 0 && slack <= out[len(out)-1].Slack {
			continue // dominated by a cheaper level
		}
		p := delay.NewPlacement(e.t.Len())
		e.arena.Fill(best.Dec, p)
		out = append(out, Point{Cost: w, Slack: slack, Placement: p})
	}
	return out, nil
}

// addBuffer runs the paper's hull walk once per cost level, routing each
// new buffered candidate to level W + cost(type).
func (e *engine) addBuffer(v int, acc levels, allowed []int) {
	type slotKey struct{ level, rank int }
	slots := map[slotKey]candidate.Beta{}
	for _, w := range acc.sortedCosts() {
		hull := acc[w].HullView()
		p := 0
		for _, ti := range e.orderR {
			if len(allowed) > 0 && !contains(allowed, ti) {
				continue
			}
			b := e.lib[ti]
			nw := w + b.Cost
			if e.opt.MaxCost > 0 && nw > e.opt.MaxCost {
				continue
			}
			for p+1 < len(hull) && hull[p+1].Q-b.R*hull[p+1].C > hull[p].Q-b.R*hull[p].C {
				p++
			}
			cand := hull[p]
			beta := candidate.Beta{
				Q:      cand.Q - b.R*cand.C - b.K,
				C:      b.Cin,
				Buffer: ti,
				Vertex: v,
				SrcDec: cand.Dec,
			}
			key := slotKey{nw, e.cinRank[ti]}
			if old, ok := slots[key]; !ok || beta.Q > old.Q {
				slots[key] = beta
			}
		}
	}
	// Group betas by destination level, emit in cin order, merge.
	byLevel := map[int][]candidate.Beta{}
	for key, beta := range slots {
		byLevel[key.level] = append(byLevel[key.level], beta)
	}
	for nw, betas := range byLevel {
		sort.Slice(betas, func(i, j int) bool {
			if betas[i].C != betas[j].C {
				return betas[i].C < betas[j].C
			}
			return betas[i].Q > betas[j].Q
		})
		betas = candidate.NormalizeBetas(betas)
		if acc[nw] == nil {
			acc[nw] = e.arena.NewList()
		}
		acc[nw].MergeBetas(betas)
	}
}

// mergeLevels combines two branch level-sets: every (Wa, Wb) pair merges
// into level Wa+Wb, with same-level results unioned.
func mergeLevels(a, b levels, maxCost int) levels {
	out := levels{}
	for wa, la := range a {
		for wb, lb := range b {
			w := wa + wb
			if maxCost > 0 && w > maxCost {
				continue
			}
			m := candidate.Merge(la, lb)
			if cur, ok := out[w]; ok {
				union(cur, m)
				m.Free()
			} else {
				out[w] = m
			}
		}
	}
	// The input level lists are fully consumed.
	for _, la := range a {
		la.Free()
	}
	for _, lb := range b {
		lb.Free()
	}
	return out
}

// union inserts every candidate of src into dst, keeping dst nonredundant.
func union(dst, src *candidate.List) {
	betas := make([]candidate.Beta, 0, src.Len())
	for nd := src.Front(); nd != nil; nd = nd.Next() {
		betas = append(betas, candidate.Beta{Q: nd.Q, C: nd.C, Dec: nd.Dec})
	}
	dst.MergeBetas(betas)
}

// crossLevelPrune removes candidates dominated by any candidate at a
// cheaper (or equal, earlier-seen) level: processing levels in ascending
// cost order, a running frontier of the best (Q, C) pairs so far prunes
// each level, then absorbs it. Levels left empty are deleted.
func (e *engine) crossLevelPrune(acc levels) {
	costs := acc.sortedCosts()
	if len(costs) < 2 {
		return
	}
	frontier := e.arena.NewList()
	for _, w := range costs {
		l := acc[w]
		pruneAgainst(l, frontier)
		if l.Len() == 0 {
			acc[w].Free()
			delete(acc, w)
			continue
		}
		union(frontier, l)
	}
	frontier.Free()
}

// pruneAgainst removes from l every candidate dominated by a frontier
// candidate (frontier Q ≥ q with C ≤ c). Both lists are C-sorted, so one
// forward sweep suffices.
func pruneAgainst(l, frontier *candidate.List) {
	if frontier.Len() == 0 {
		return
	}
	f := frontier.Front()
	bestQ := 0.0
	hasF := false
	nd := l.Front()
	for nd != nil {
		for f != nil && f.C <= nd.C {
			bestQ = f.Q // frontier Q increases with C
			hasF = true
			f = f.Next()
		}
		if hasF && bestQ >= nd.Q {
			nxt := nd.Next()
			l.Remove(nd)
			nd = nxt
		} else {
			nd = nd.Next()
		}
	}
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
