// Package orderbuf provides the reorder buffer behind input-order
// streaming: items tagged with their input index arrive in completion
// order and are released in strictly increasing index order, holding
// out-of-order arrivals until the gap fills. Both Solver.StreamOrdered
// and bufferkitd's ordered NDJSON batches deliver through it, so the
// ordering and gap semantics live in exactly one place.
package orderbuf

// Buffer releases indexed items in order 0, 1, 2, … . The zero value is
// not ready; use New.
type Buffer[T any] struct {
	pending map[int]T
	next    int
}

// New returns an empty buffer sized for about n items.
func New[T any](n int) *Buffer[T] {
	return &Buffer[T]{pending: make(map[int]T, n)}
}

// Add inserts item at index i, then calls emit for every item that is now
// contiguous from the next unreleased index. It stops and returns false
// as soon as emit does (the remaining items stay pending); otherwise it
// returns true. Indices must be unique and ≥ 0; an index below the next
// unreleased one is impossible by construction and would be held forever.
func (b *Buffer[T]) Add(i int, item T, emit func(T) bool) bool {
	b.pending[i] = item
	for {
		it, ok := b.pending[b.next]
		if !ok {
			return true
		}
		delete(b.pending, b.next)
		b.next++
		if !emit(it) {
			return false
		}
	}
}
