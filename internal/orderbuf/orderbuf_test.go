package orderbuf

import (
	"math/rand"
	"slices"
	"testing"
)

func TestReleasesInOrder(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		order := rng.Perm(n)
		b := New[int](n)
		var got []int
		for _, i := range order {
			if !b.Add(i, i*10, func(v int) bool {
				got = append(got, v)
				return true
			}) {
				t.Fatal("emit never returned false")
			}
		}
		if len(got) != n {
			t.Fatalf("seed %d: released %d of %d", seed, len(got), n)
		}
		if !slices.IsSorted(got) {
			t.Fatalf("seed %d: out of order: %v (arrival %v)", seed, got, order)
		}
	}
}

func TestStopsWhenEmitDeclines(t *testing.T) {
	b := New[string](4)
	emitted := 0
	emit := func(string) bool { emitted++; return emitted < 2 }
	// 1, 2, 3 wait for 0; adding 0 releases 0 then stops at 1.
	for _, i := range []int{1, 2, 3} {
		if !b.Add(i, "x", emit) {
			t.Fatal("nothing contiguous yet; Add must return true")
		}
	}
	if b.Add(0, "x", emit) {
		t.Fatal("Add must return false once emit declines")
	}
	if emitted != 2 {
		t.Fatalf("emit called %d times, want 2", emitted)
	}
}

func TestGapHoldsLaterItems(t *testing.T) {
	b := New[int](3)
	var got []int
	emit := func(v int) bool { got = append(got, v); return true }
	b.Add(0, 0, emit)
	b.Add(2, 2, emit) // index 1 never arrives
	if want := []int{0}; !slices.Equal(got, want) {
		t.Fatalf("got %v, want %v — items past a gap must stay pending", got, want)
	}
}
