package library

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateSpansPaperRanges(t *testing.T) {
	for _, size := range []int{1, 2, 8, 16, 32, 64, 100} {
		lib := Generate(size)
		if len(lib) != size {
			t.Fatalf("size %d: got %d types", size, len(lib))
		}
		if err := lib.Validate(); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		for i, b := range lib {
			if b.R < PaperRMin-1e-12 || b.R > PaperRMax+1e-12 {
				t.Fatalf("size %d type %d: R=%g outside paper range", size, i, b.R)
			}
			if b.Cin < PaperCinMin-1e-12 || b.Cin > PaperCinMax+1e-12 {
				t.Fatalf("size %d type %d: Cin=%g outside paper range", size, i, b.Cin)
			}
			if b.K < PaperKMin-1e-12 || b.K > PaperKMax+1e-12 {
				t.Fatalf("size %d type %d: K=%g outside paper range", size, i, b.K)
			}
			if b.Cost != i+1 {
				t.Fatalf("size %d type %d: cost %d, want %d", size, i, b.Cost, i+1)
			}
			if b.Inverting {
				t.Fatalf("Generate must not produce inverters")
			}
		}
		if size > 1 {
			if lib[0].R != PaperRMax || math.Abs(lib[size-1].R-PaperRMin) > 1e-12 {
				t.Fatalf("size %d: R endpoints %g..%g", size, lib[0].R, lib[size-1].R)
			}
			if lib[0].Cin != PaperCinMin || math.Abs(lib[size-1].Cin-PaperCinMax) > 1e-9 {
				t.Fatalf("size %d: Cin endpoints %g..%g", size, lib[0].Cin, lib[size-1].Cin)
			}
		}
	}
}

func TestGenerateMonotoneGrading(t *testing.T) {
	lib := Generate(32)
	for i := 1; i < len(lib); i++ {
		if !(lib[i].R < lib[i-1].R) {
			t.Fatalf("R not strictly decreasing at %d", i)
		}
		if !(lib[i].Cin > lib[i-1].Cin) {
			t.Fatalf("Cin not strictly increasing at %d", i)
		}
		if lib[i].K < lib[i-1].K {
			t.Fatalf("K decreasing at %d", i)
		}
	}
}

func TestGeneratePanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(0)
}

func TestGenerateWithInverters(t *testing.T) {
	lib := GenerateWithInverters(8)
	if !lib.HasInverters() {
		t.Fatal("no inverters generated")
	}
	ninv := 0
	for i, b := range lib {
		if b.Inverting {
			ninv++
			if i%2 != 1 {
				t.Fatalf("inverter at unexpected index %d", i)
			}
			if !strings.HasPrefix(b.Name, "inv") {
				t.Fatalf("inverter name %q", b.Name)
			}
		}
	}
	if ninv != 4 {
		t.Fatalf("got %d inverters, want 4", ninv)
	}
	if Generate(8).HasInverters() {
		t.Fatal("plain library reports inverters")
	}
}

func TestValidateRejectsBadTypes(t *testing.T) {
	cases := []struct {
		name string
		lib  Library
		want string
	}{
		{"empty", Library{}, "empty"},
		{"zero R", Library{{R: 0, Cin: 1}}, "driving resistance"},
		{"negative R", Library{{R: -1, Cin: 1}}, "driving resistance"},
		{"NaN R", Library{{R: math.NaN(), Cin: 1}}, "driving resistance"},
		{"zero Cin", Library{{R: 1, Cin: 0}}, "input capacitance"},
		{"inf Cin", Library{{R: 1, Cin: math.Inf(1)}}, "input capacitance"},
		{"negative K", Library{{R: 1, Cin: 1, K: -2}}, "intrinsic delay"},
		{"NaN K", Library{{R: 1, Cin: 1, K: math.NaN()}}, "intrinsic delay"},
		{"negative cost", Library{{R: 1, Cin: 1, Cost: -1}}, "negative cost"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.lib.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestSortOrders(t *testing.T) {
	lib := Library{
		{Name: "a", R: 2, Cin: 5},
		{Name: "b", R: 7, Cin: 1},
		{Name: "c", R: 2, Cin: 3},
		{Name: "d", R: 9, Cin: 3},
	}
	rd := lib.ByRDesc()
	want := []int{3, 1, 0, 2} // 9, 7, 2(a before c: stable), 2
	for i := range want {
		if rd[i] != want[i] {
			t.Fatalf("ByRDesc = %v, want %v", rd, want)
		}
	}
	ca := lib.ByCinAsc()
	wantC := []int{1, 2, 3, 0} // 1, 3(c before d: stable), 3, 5
	for i := range wantC {
		if ca[i] != wantC[i] {
			t.Fatalf("ByCinAsc = %v, want %v", ca, wantC)
		}
	}
}

func TestSortOrdersQuick(t *testing.T) {
	f := func(rs []float64) bool {
		lib := make(Library, 0, len(rs))
		for _, r := range rs {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return true
			}
			v := 1 + math.Abs(math.Mod(r, 100))
			lib = append(lib, Buffer{R: v, Cin: 101 - v})
		}
		if len(lib) == 0 {
			return true
		}
		rd := lib.ByRDesc()
		for i := 1; i < len(rd); i++ {
			if lib[rd[i]].R > lib[rd[i-1]].R {
				return false
			}
		}
		ca := lib.ByCinAsc()
		for i := 1; i < len(ca); i++ {
			if lib[ca[i]].Cin < lib[ca[i-1]].Cin {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBufferDelay(t *testing.T) {
	b := Buffer{R: 0.5, Cin: 2, K: 30}
	if got := b.Delay(10); got != 35 {
		t.Fatalf("Delay(10) = %g, want 35", got)
	}
	if got := b.Delay(0); got != 30 {
		t.Fatalf("Delay(0) = %g, want 30 (intrinsic only)", got)
	}
}

func TestMaxCost(t *testing.T) {
	lib := Library{{R: 1, Cin: 1, Cost: 3}, {R: 1, Cin: 1, Cost: 9}, {R: 1, Cin: 1}}
	if got := lib.MaxCost(); got != 9 {
		t.Fatalf("MaxCost = %d, want 9", got)
	}
}

func TestPaperLibraries(t *testing.T) {
	libs := PaperLibraries()
	sizes := []int{8, 16, 32, 64}
	if len(libs) != len(sizes) {
		t.Fatalf("got %d libraries", len(libs))
	}
	for i, lib := range libs {
		if len(lib) != sizes[i] {
			t.Fatalf("library %d has %d types, want %d", i, len(lib), sizes[i])
		}
		if err := lib.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
