// Package library models buffer libraries: the set of b buffer types the
// insertion algorithms may place at legal positions.
//
// Each type has a driving resistance R (kΩ), an input capacitance Cin (fF),
// an intrinsic delay K (ps), an optional integer cost (area/power proxy used
// by the cost extension), and an Inverting flag. The linear buffer delay
// model of the paper is d = K + R·Cdown, and an inserted buffer presents Cin
// to the upstream wire.
package library

import (
	"fmt"
	"math"
	"sort"

	"bufferkit/internal/solvererr"
)

// Buffer is one buffer (or inverter) type.
type Buffer struct {
	Name string
	// R is the driving resistance in kΩ.
	R float64
	// Cin is the input capacitance in fF.
	Cin float64
	// K is the intrinsic delay in ps.
	K float64
	// Cost is an optional nonnegative integer cost (0 is legal) consumed by
	// the cost-optimization extension; the slack-only algorithms ignore it.
	Cost int
	// Inverting marks inverter types, which flip signal polarity.
	Inverting bool
}

// Delay returns the buffer delay K + R·cdown for a downstream load in fF.
func (b Buffer) Delay(cdown float64) float64 { return b.K + b.R*cdown }

// Library is an ordered collection of buffer types. Algorithms refer to
// types by index into this slice, so order is significant and must not be
// changed after a library has been handed to an algorithm.
type Library []Buffer

// Validate checks that every type has positive R and Cin, nonnegative K and
// Cost, and a nonempty library. Failures are *solvererr.ValidationError
// values carrying the offending type index and field.
func (l Library) Validate() error {
	if len(l) == 0 {
		return solvererr.Validation("library", "size", "empty library")
	}
	for i, b := range l {
		if !(b.R > 0) || math.IsInf(b.R, 0) || math.IsNaN(b.R) {
			return solvererr.Validation("library", "R", "(%s) driving resistance %g must be positive and finite", b.Name, b.R).AtType(i)
		}
		if !(b.Cin > 0) || math.IsInf(b.Cin, 0) || math.IsNaN(b.Cin) {
			return solvererr.Validation("library", "Cin", "(%s) input capacitance %g must be positive and finite", b.Name, b.Cin).AtType(i)
		}
		if b.K < 0 || math.IsInf(b.K, 0) || math.IsNaN(b.K) {
			return solvererr.Validation("library", "K", "(%s) intrinsic delay %g must be nonnegative and finite", b.Name, b.K).AtType(i)
		}
		if b.Cost < 0 {
			return solvererr.Validation("library", "Cost", "(%s) negative cost %d", b.Name, b.Cost).AtType(i)
		}
	}
	return nil
}

// HasInverters reports whether the library contains at least one inverting
// type.
func (l Library) HasInverters() bool {
	for _, b := range l {
		if b.Inverting {
			return true
		}
	}
	return false
}

// ByRDesc returns the type indices sorted by non-increasing driving
// resistance, the order required by the paper's AddBuffer hull walk
// (R_{B1} ≥ R_{B2} ≥ … ≥ R_{Bb}). Ties are broken by index for determinism.
func (l Library) ByRDesc() []int {
	idx := make([]int, len(l))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return l[idx[a]].R > l[idx[b]].R })
	return idx
}

// ByCinAsc returns the type indices sorted by non-decreasing input
// capacitance, the order in which new buffered candidates merge back into a
// candidate list in O(k + b). Ties are broken by index for determinism.
func (l Library) ByCinAsc() []int {
	idx := make([]int, len(l))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return l[idx[a]].Cin < l[idx[b]].Cin })
	return idx
}

// MaxCost returns the largest type cost in the library.
func (l Library) MaxCost() int {
	m := 0
	for _, b := range l {
		if b.Cost > m {
			m = b.Cost
		}
	}
	return m
}

// Paper technology constants (TSMC 180 nm, Section 4 of the paper), in the
// repository units (kΩ, fF, ps, µm).
const (
	// PaperRMin and PaperRMax bound buffer driving resistance: 180 Ω – 7 kΩ.
	PaperRMin = 0.180
	PaperRMax = 7.0
	// PaperCinMin and PaperCinMax bound buffer input capacitance in fF.
	PaperCinMin = 0.7
	PaperCinMax = 23.0
	// PaperKMin and PaperKMax bound buffer intrinsic delay in ps.
	PaperKMin = 29.0
	PaperKMax = 36.4
	// PaperWireR is wire resistance per µm (0.076 Ω/µm) in kΩ/µm.
	PaperWireR = 0.076e-3
	// PaperWireC is wire capacitance per µm in fF/µm.
	PaperWireC = 0.118
	// PaperSinkCapMin and PaperSinkCapMax bound sink load in fF.
	PaperSinkCapMin = 2.0
	PaperSinkCapMax = 41.0
)

// Generate builds a library of the given size spanning the paper's parameter
// ranges. Types are graded from the weakest (highest R, smallest Cin — a
// small, cheap buffer) to the strongest (lowest R, largest Cin): R decreases
// geometrically while Cin increases geometrically, matching how real
// libraries grade drive strength, so no generated type dominates another.
// Intrinsic delay grows mildly with strength and cost grows linearly
// (1 … size), giving the cost extension meaningful trade-offs.
func Generate(size int) Library {
	if size < 1 {
		panic(fmt.Sprintf("library: Generate size %d < 1", size))
	}
	lib := make(Library, size)
	for i := 0; i < size; i++ {
		f := 0.0
		if size > 1 {
			f = float64(i) / float64(size-1)
		}
		lib[i] = Buffer{
			Name: fmt.Sprintf("buf%d", i+1),
			R:    geom(PaperRMax, PaperRMin, f),
			Cin:  geom(PaperCinMin, PaperCinMax, f),
			K:    PaperKMin + f*(PaperKMax-PaperKMin),
			Cost: 1 + i,
		}
	}
	return lib
}

// GenerateWithInverters is Generate, but every second type is an inverter
// (same electrical parameters, Inverting set, name prefixed "inv"). The
// result exercises the polarity-aware algorithm paths.
func GenerateWithInverters(size int) Library {
	lib := Generate(size)
	for i := 1; i < len(lib); i += 2 {
		lib[i].Inverting = true
		lib[i].Name = fmt.Sprintf("inv%d", i+1)
	}
	return lib
}

// geom interpolates geometrically from a (f=0) to b (f=1).
func geom(a, b, f float64) float64 {
	return a * math.Pow(b/a, f)
}

// PaperLibraries returns the four libraries used in the paper's evaluation
// (sizes 8, 16, 32, 64).
func PaperLibraries() []Library {
	return []Library{Generate(8), Generate(16), Generate(32), Generate(64)}
}
