// Package bruteforce enumerates every buffer placement of a small net and
// evaluates each with the exact Elmore oracle. It is the ground truth the
// dynamic-programming algorithms are tested against; it is exponential and
// refuses instances beyond a combination budget.
package bruteforce

import (
	"fmt"
	"math"

	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/tree"
)

// MaxCombinations bounds the search size Best will accept.
const MaxCombinations = 4 << 20

// Result is the exhaustive optimum.
type Result struct {
	// Slack is the best slack over all polarity-feasible placements.
	Slack float64
	// Placement achieves Slack (minimum buffer count among ties, then the
	// lexicographically first by enumeration order).
	Placement delay.Placement
	// Feasible is false when no placement satisfies every sink's polarity;
	// Slack is then -Inf.
	Feasible bool
	// Evaluated counts placements examined.
	Evaluated int
}

// CostSlack is one point of the cost–slack trade-off frontier.
type CostSlack struct {
	Cost  int
	Slack float64
}

// Best exhaustively finds the max-slack placement.
func Best(t *tree.Tree, lib library.Library, drv delay.Driver) (*Result, error) {
	res := &Result{Slack: math.Inf(-1)}
	err := enumerate(t, lib, drv, func(p delay.Placement, r *delay.Result) {
		res.Evaluated++
		if len(r.PolarityViolations) > 0 {
			return
		}
		if !res.Feasible || r.Slack > res.Slack ||
			(r.Slack == res.Slack && p.Count() < res.Placement.Count()) {
			res.Slack = r.Slack
			res.Placement = append(res.Placement[:0], p...)
			res.Feasible = true
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Pareto exhaustively computes the nondominated (cost, slack) frontier over
// polarity-feasible placements, sorted by increasing cost (and therefore
// strictly increasing slack).
func Pareto(t *tree.Tree, lib library.Library, drv delay.Driver) ([]CostSlack, error) {
	bestAtCost := map[int]float64{}
	err := enumerate(t, lib, drv, func(p delay.Placement, r *delay.Result) {
		if len(r.PolarityViolations) > 0 {
			return
		}
		cost := p.Cost(lib)
		if s, ok := bestAtCost[cost]; !ok || r.Slack > s {
			bestAtCost[cost] = r.Slack
		}
	})
	if err != nil {
		return nil, err
	}
	if len(bestAtCost) == 0 {
		return nil, nil
	}
	maxCost := 0
	for c := range bestAtCost {
		if c > maxCost {
			maxCost = c
		}
	}
	var out []CostSlack
	best := math.Inf(-1)
	for c := 0; c <= maxCost; c++ {
		if s, ok := bestAtCost[c]; ok && s > best {
			out = append(out, CostSlack{Cost: c, Slack: s})
			best = s
		}
	}
	return out, nil
}

// enumerate walks every legal assignment of library types (or none) to the
// buffer positions of t, invoking visit with a reused placement.
func enumerate(t *tree.Tree, lib library.Library, drv delay.Driver, visit func(delay.Placement, *delay.Result)) error {
	if err := lib.Validate(); err != nil {
		return err
	}
	positions := t.BufferPositions()
	choices := make([][]int, len(positions))
	total := 1.0
	for i, v := range positions {
		opts := []int{delay.NoBuffer}
		if allowed := t.Verts[v].Allowed; len(allowed) > 0 {
			opts = append(opts, allowed...)
		} else {
			for ti := range lib {
				opts = append(opts, ti)
			}
		}
		choices[i] = opts
		total *= float64(len(opts))
		if total > MaxCombinations {
			return fmt.Errorf("bruteforce: > %d combinations (%d positions)", MaxCombinations, len(positions))
		}
	}
	p := delay.NewPlacement(t.Len())
	idx := make([]int, len(positions))
	for {
		for i, v := range positions {
			p[v] = choices[i][idx[i]]
		}
		r, err := delay.Evaluate(t, lib, p, drv)
		if err != nil {
			return err
		}
		visit(p, r)
		// Odometer increment.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(choices[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			return nil
		}
	}
}
