package bruteforce

import (
	"math"
	"strings"
	"testing"

	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/netgen"
	"bufferkit/internal/tree"
)

var lib = library.Library{
	{Name: "b1", R: 1.0, Cin: 1, K: 5, Cost: 1},
	{Name: "b2", R: 0.5, Cin: 2, K: 6, Cost: 2},
}

func line(t *testing.T, positions int) *tree.Tree {
	t.Helper()
	b := tree.NewBuilder()
	p := 0
	for i := 0; i < positions; i++ {
		p = b.AddBufferPos(p, 0.3, 20)
	}
	b.AddSink(p, 0.3, 20, 10, 500)
	return b.MustBuild()
}

func TestBestEnumeratesAllCombinations(t *testing.T) {
	tr := line(t, 3)
	res, err := Best(tr, lib, delay.Driver{R: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	// (b+1)^positions = 3^3.
	if res.Evaluated != 27 {
		t.Fatalf("Evaluated = %d, want 27", res.Evaluated)
	}
	if !res.Feasible || math.IsInf(res.Slack, 0) {
		t.Fatalf("implausible result: %+v", res)
	}
	// The winner must reproduce its slack under the oracle.
	chk, err := delay.Evaluate(tr, lib, res.Placement, delay.Driver{R: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if chk.Slack != res.Slack {
		t.Fatalf("oracle %g != reported %g", chk.Slack, res.Slack)
	}
}

func TestBestIsTrulyMaximal(t *testing.T) {
	// Independently re-enumerate and confirm nothing beats Best.
	tr := line(t, 2)
	drv := delay.Driver{R: 0.5}
	res, err := Best(tr, lib, drv)
	if err != nil {
		t.Fatal(err)
	}
	for a := -1; a < len(lib); a++ {
		for b := -1; b < len(lib); b++ {
			p := delay.NewPlacement(tr.Len())
			p[1], p[2] = a, b
			r, err := delay.Evaluate(tr, lib, p, drv)
			if err != nil {
				t.Fatal(err)
			}
			if r.Slack > res.Slack {
				t.Fatalf("placement %v beats Best: %g > %g", p, r.Slack, res.Slack)
			}
		}
	}
}

func TestBestPrefersFewerBuffersOnTies(t *testing.T) {
	// Zero-RC wires make buffers pure overhead ties impossible; craft a net
	// where an extra buffer changes nothing: impossible with K>0, so check
	// instead that the unbuffered solution wins when buffers cannot help.
	b := tree.NewBuilder()
	v := b.AddBufferPos(0, 0, 0)
	b.AddSink(v, 0, 0, 1, 100)
	tr := b.MustBuild()
	res, err := Best(tr, lib, delay.Driver{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.Count() != 0 {
		t.Fatalf("used %d buffers where none can help", res.Placement.Count())
	}
	if res.Slack != 100 {
		t.Fatalf("Slack = %g, want 100", res.Slack)
	}
}

func TestBestPolarityInfeasible(t *testing.T) {
	b := tree.NewBuilder()
	v := b.AddInternal(0, 1, 1)
	b.AddSinkPol(v, 1, 1, 2, 100, tree.Negative)
	b.AddSink(v, 1, 1, 2, 100)
	tr := b.MustBuild()
	res, err := Best(tr, library.GenerateWithInverters(2), delay.Driver{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatalf("claimed feasible: %+v", res)
	}
	if !math.IsInf(res.Slack, -1) {
		t.Fatalf("Slack = %g, want -Inf", res.Slack)
	}
}

func TestBestRespectsAllowed(t *testing.T) {
	b := tree.NewBuilder()
	v := b.AddBufferPosRestricted(0, 0.3, 20, []int{1})
	b.AddSink(v, 0.3, 20, 10, 500)
	tr := b.MustBuild()
	res, err := Best(tr, lib, delay.Driver{R: 1})
	if err != nil {
		t.Fatal(err)
	}
	// choices per position: none or type 1 → 2 combos.
	if res.Evaluated != 2 {
		t.Fatalf("Evaluated = %d, want 2", res.Evaluated)
	}
	if res.Placement[v] == 0 {
		t.Fatal("used disallowed type 0")
	}
}

func TestBudgetRejection(t *testing.T) {
	tr := line(t, 30) // 3^30 combos
	if _, err := Best(tr, lib, delay.Driver{}); err == nil || !strings.Contains(err.Error(), "combinations") {
		t.Fatalf("err = %v", err)
	}
}

func TestParetoShape(t *testing.T) {
	tr := line(t, 3)
	pts, err := Pareto(tr, lib, delay.Driver{R: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 || pts[0].Cost != 0 {
		t.Fatalf("frontier must start at cost 0: %+v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Cost <= pts[i-1].Cost || pts[i].Slack <= pts[i-1].Slack {
			t.Fatalf("frontier not strictly increasing: %+v", pts)
		}
	}
	// The frontier's max slack equals Best's.
	best, err := Best(tr, lib, delay.Driver{R: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if pts[len(pts)-1].Slack != best.Slack {
		t.Fatalf("frontier max %g != Best %g", pts[len(pts)-1].Slack, best.Slack)
	}
}

func TestParetoPolarityInfeasibleIsEmpty(t *testing.T) {
	b := tree.NewBuilder()
	v := b.AddInternal(0, 1, 1)
	b.AddSinkPol(v, 1, 1, 2, 100, tree.Negative)
	b.AddSink(v, 1, 1, 2, 100)
	tr := b.MustBuild()
	pts, err := Pareto(tr, lib, delay.Driver{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 0 {
		t.Fatalf("expected empty frontier, got %+v", pts)
	}
}

func TestZeroPositionsStillEvaluates(t *testing.T) {
	tr := netgen.TwoPin(1000, 0, 5, 300, netgen.PaperWire())
	res, err := Best(tr, lib, delay.Driver{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 1 || !res.Feasible {
		t.Fatalf("unexpected: %+v", res)
	}
}

func TestInvalidLibraryRejected(t *testing.T) {
	tr := line(t, 1)
	if _, err := Best(tr, library.Library{}, delay.Driver{}); err == nil {
		t.Fatal("accepted empty library")
	}
}
