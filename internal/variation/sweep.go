package variation

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"bufferkit/internal/core"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/solvererr"
	"bufferkit/internal/tree"
)

// Config parameterizes a Sweep.
type Config struct {
	// Corners are the corners to evaluate, in order. Corner 0 is the
	// reference corner: non-robust selection returns its optimal placement.
	// At least one corner is required; Sweep validates all of them.
	Corners []Corner
	// Driver is the (nominal) source driver; corners do not perturb it.
	Driver delay.Driver
	// Prune selects the core engine's convex pruning mode.
	Prune core.PruneMode
	// Backend selects the candidate-list representation.
	Backend core.Backend
	// CheckInvariants enables per-operation candidate-list validation in
	// every per-corner engine run (for tests; roughly doubles runtime).
	CheckInvariants bool
	// Target is the slack threshold (ps) a sample must meet to count as
	// yielding; 0 means "meets every sink's RAT exactly".
	Target float64
	// Robust selects the placement maximizing fixed-placement yield across
	// all corners instead of the reference corner's optimum.
	Robust bool
	// Workers caps the sweep's concurrency; 0 or negative means
	// runtime.GOMAXPROCS(0).
	Workers int
	// GetEngine and PutEngine, when both non-nil, borrow warm core engines
	// from a caller-owned pool instead of constructing fresh ones — the
	// bufferkit facade wires its shared engine pool in here.
	GetEngine func() *core.Engine
	PutEngine func(*core.Engine)
	// Completed, when non-nil, is incremented once per finished sample
	// while the sweep runs, so callers (the server's partial-progress
	// counters) can observe progress across a deadline abort.
	Completed *atomic.Int64
}

func (c Config) workers() int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(c.Corners) {
		w = len(c.Corners)
	}
	return w
}

// Sample is the outcome of re-optimizing the net under one corner.
type Sample struct {
	// Corner is the evaluated corner.
	Corner Corner
	// Slack is the optimal slack under this corner, in ps.
	Slack float64
	// CriticalSink is the sink vertex attaining that slack.
	CriticalSink int
	// Placement indexes Result.Placements: which distinct optimal
	// placement this corner chose.
	Placement int
}

// Distribution summarizes a slack sample set.
type Distribution struct {
	Mean, Std, Min, Max float64
	// P5, P50 and P95 are order statistics (nearest-rank).
	P5, P50, P95 float64
}

// PlacementGroup is one distinct optimal placement observed during a sweep,
// with its quality as a fixed placement re-evaluated under every corner.
type PlacementGroup struct {
	// Placement is the buffer assignment.
	Placement delay.Placement
	// Count is how many corners chose this placement as their optimum.
	Count int
	// Cost is the total library cost of the placement.
	Cost int
	// Yield is the fraction of corners whose slack meets the target when
	// this placement is fixed across all of them.
	Yield float64
	// WorstSlack and MeanSlack are the fixed-placement slack extremes
	// across all corners.
	WorstSlack, MeanSlack float64
}

// Result is the outcome of a corner sweep.
type Result struct {
	// Target echoes Config.Target.
	Target float64
	// Robust echoes Config.Robust.
	Robust bool
	// Samples holds one entry per corner, in corner order.
	Samples []Sample
	// Dist summarizes the per-corner optimal slacks.
	Dist Distribution
	// OptimalYield is the fraction of corners whose re-optimized slack
	// meets the target — an upper bound no fixed placement can beat.
	OptimalYield float64
	// WorstSample indexes the corner with the smallest optimal slack.
	WorstSample int
	// Placements are the distinct optimal placements, in order of first
	// appearance (so group 0 is always the reference corner's optimum).
	Placements []PlacementGroup
	// Chosen indexes Placements: the reference optimum, or the yield
	// maximizer in robust mode.
	Chosen int
	// Placement is Placements[Chosen].Placement.
	Placement delay.Placement
	// Yield is Placements[Chosen].Yield: the yield actually achieved by
	// fixing the chosen placement across every corner.
	Yield float64
}

// PartialError reports a sweep aborted by context cancellation after
// completing only part of its samples. It wraps the cancellation cause, so
// errors.Is(err, solvererr.ErrCanceled) still holds.
type PartialError struct {
	// Completed and Total count finished and requested samples.
	Completed, Total int
	// Err is the underlying cancellation error.
	Err error
}

// Error implements error.
func (e *PartialError) Error() string {
	return fmt.Sprintf("variation: sweep aborted after %d of %d samples: %v", e.Completed, e.Total, e.Err)
}

// Unwrap exposes the cancellation cause to errors.Is / errors.As.
func (e *PartialError) Unwrap() error { return e.Err }

// SweepEngine is the per-worker unit of a sweep: one warm core engine plus
// the scratch instance (scaled tree and library) and evaluator it rewrites
// per corner. After its first RunCorner on an instance, further corners of
// the same instance allocate nothing on the steady-state path.
//
// A SweepEngine is not safe for concurrent use; Sweep gives each worker its
// own.
type SweepEngine struct {
	eng    *core.Engine
	owned  bool // engine constructed here (vs borrowed from a pool)
	put    func(*core.Engine)
	base   *tree.Tree
	lib    library.Library // original library, never mutated
	scaled *tree.Tree      // scratch: base with corner-scaled edges
	slib   library.Library // scratch: lib with corner-scaled types
	opt    core.Options
	res    core.Result
	ev     delay.Evaluator
}

// NewSweepEngine prepares a sweep engine for one (tree, library) instance.
// get/put may be nil, in which case a fresh core engine is constructed.
func NewSweepEngine(t *tree.Tree, lib library.Library, opt core.Options, get func() *core.Engine, put func(*core.Engine)) *SweepEngine {
	e := &SweepEngine{base: t, lib: lib, opt: opt, put: put}
	if get != nil {
		e.eng = get()
	} else {
		e.eng = core.NewEngine()
		e.owned = true
	}
	e.scaled = t.Clone()
	e.slib = append(library.Library(nil), lib...)
	return e
}

// Release returns a borrowed engine to its pool (or drops an owned one) and
// clears instance references. The SweepEngine is spent afterwards.
func (e *SweepEngine) Release() {
	if e.eng != nil {
		e.eng.Release()
		if e.put != nil && !e.owned {
			e.put(e.eng)
		}
		e.eng = nil
	}
	e.base, e.lib, e.scaled, e.slib = nil, nil, nil, nil
}

// apply rewrites the scratch instance in place to corner c. Uniform scaling
// preserves both library orderings (see the package comment), so the core
// engine's cached orderR/cinRank — keyed on the scratch library's identity,
// which never changes — remain valid across corners.
func (e *SweepEngine) apply(c Corner) {
	bv, sv := e.base.Verts, e.scaled.Verts
	for i := range sv {
		sv[i].EdgeR = bv[i].EdgeR * c.WireR
		sv[i].EdgeC = bv[i].EdgeC * c.WireC
	}
	for i := range e.slib {
		e.slib[i].R = e.lib[i].R * c.LibR
		e.slib[i].K = e.lib[i].K * c.LibK
		e.slib[i].Cin = e.lib[i].Cin * c.LibCin
	}
}

// RunCorner re-optimizes the instance under corner c, returning the optimal
// slack, the critical sink of the optimal placement, and the placement
// itself. The returned placement aliases engine scratch: it is valid until
// the next RunCorner and must be copied to be retained.
func (e *SweepEngine) RunCorner(ctx context.Context, c Corner) (slack float64, critical int, plc delay.Placement, err error) {
	e.apply(c)
	if err := e.eng.Reset(e.scaled, e.slib, e.opt); err != nil {
		return 0, -1, nil, err
	}
	if err := e.eng.RunContext(ctx, &e.res); err != nil {
		return 0, -1, nil, err
	}
	// The evaluator re-derives the timing of the optimal placement to find
	// the critical sink; the reported slack stays the DP's (the two agree
	// to float tolerance, differing only in summation association).
	critical = e.ev.Slack(e.scaled, e.slib, e.res.Placement, e.opt.Driver)
	return e.res.Slack, critical, e.res.Placement, nil
}

// FixedSlack evaluates placement p (not necessarily this corner's optimum)
// under corner c, returning the resulting slack. Used by robust selection
// to score candidate placements across the whole corner set.
func (e *SweepEngine) FixedSlack(c Corner, p delay.Placement) float64 {
	e.apply(c)
	e.ev.Slack(e.scaled, e.slib, p, e.opt.Driver)
	return e.ev.MinSlack
}

// Sweep re-optimizes the net under every corner of cfg on a worker pool of
// SweepEngines, aggregates the slack distribution and yield, deduplicates
// the observed optimal placements, and selects the final placement —
// corner 0's optimum, or the fixed-placement yield maximizer when
// cfg.Robust is set.
//
// The result is deterministic for a given corner list: samples are written
// by corner index and placements are grouped in corner order, so the worker
// count never changes the outcome. On cancellation mid-sweep the error is a
// *PartialError wrapping solvererr.ErrCanceled.
func Sweep(ctx context.Context, t *tree.Tree, lib library.Library, cfg Config) (*Result, error) {
	if len(cfg.Corners) == 0 {
		return nil, solvererr.Validation("variation", "corners", "sweep needs at least one corner")
	}
	for _, c := range cfg.Corners {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}

	n := len(cfg.Corners)
	opt := core.Options{Driver: cfg.Driver, Prune: cfg.Prune, Backend: cfg.Backend, CheckInvariants: cfg.CheckInvariants}
	samples := make([]Sample, n)
	plcs := make([]delay.Placement, n) // per-sample placement (worker-group storage, aliased)
	errs := make([]error, n)

	workers := cfg.workers()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			eng := NewSweepEngine(t, lib, opt, cfg.GetEngine, cfg.PutEngine)
			defer eng.Release()
			var groups []delay.Placement // worker-local distinct placements
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				slack, crit, plc, err := eng.RunCorner(ctx, cfg.Corners[i])
				if err != nil {
					errs[i] = err
					if errors.Is(err, solvererr.ErrCanceled) {
						return
					}
					continue
				}
				// Dedup against this worker's groups so retained placements
				// are copied once per distinct optimum, not once per sample.
				stored := findPlacement(groups, plc)
				if stored == nil {
					stored = append(delay.Placement(nil), plc...)
					groups = append(groups, stored)
				}
				samples[i] = Sample{Corner: cfg.Corners[i], Slack: slack, CriticalSink: crit}
				plcs[i] = stored
				if cfg.Completed != nil {
					cfg.Completed.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	done := 0
	for i := range plcs {
		if plcs[i] != nil {
			done++
		}
	}
	// Cancellation only voids the sweep if samples are actually missing: a
	// context that fires after the last corner completed must not discard a
	// fully computed result.
	if err := ctx.Err(); err != nil && done < n {
		return nil, &PartialError{Completed: done, Total: n, Err: solvererr.Canceled(ctx)}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Target: cfg.Target, Robust: cfg.Robust, Samples: samples}

	// Global placement groups, in sample order — deterministic regardless
	// of which worker discovered a placement first.
	for i := range samples {
		gi := -1
		for g := range res.Placements {
			if placementsEqual(res.Placements[g].Placement, plcs[i]) {
				gi = g
				break
			}
		}
		if gi < 0 {
			gi = len(res.Placements)
			res.Placements = append(res.Placements, PlacementGroup{
				Placement: plcs[i],
				Cost:      plcs[i].Cost(lib),
			})
		}
		res.Placements[gi].Count++
		samples[i].Placement = gi
	}

	res.aggregate()

	// Score every distinct placement as a fixed choice across all corners.
	// FixedSlack only touches the scratch instance and the evaluator, so
	// the scorer deliberately skips the engine pool hooks — no point
	// checking a warm engine out just to hold it idle.
	scorer := NewSweepEngine(t, lib, opt, nil, nil)
	defer scorer.Release()
	for g := range res.Placements {
		grp := &res.Placements[g]
		pass, sum := 0, 0.0
		grp.WorstSlack = math.Inf(1)
		for _, c := range cfg.Corners {
			s := scorer.FixedSlack(c, grp.Placement)
			sum += s
			if s < grp.WorstSlack {
				grp.WorstSlack = s
			}
			if s >= cfg.Target {
				pass++
			}
		}
		grp.Yield = float64(pass) / float64(n)
		grp.MeanSlack = sum / float64(n)
	}

	res.Chosen = 0
	if cfg.Robust {
		res.Chosen = chooseRobust(res.Placements)
	}
	res.Placement = res.Placements[res.Chosen].Placement
	res.Yield = res.Placements[res.Chosen].Yield
	return res, nil
}

// aggregate fills the distribution, optimal yield and worst-sample fields
// from the per-corner samples.
func (r *Result) aggregate() {
	n := len(r.Samples)
	slacks := make([]float64, n)
	pass := 0
	r.WorstSample = 0
	sum := 0.0
	for i, s := range r.Samples {
		slacks[i] = s.Slack
		sum += s.Slack
		if s.Slack >= r.Target {
			pass++
		}
		if s.Slack < r.Samples[r.WorstSample].Slack {
			r.WorstSample = i
		}
	}
	r.OptimalYield = float64(pass) / float64(n)
	mean := sum / float64(n)
	ss := 0.0
	for _, s := range slacks {
		d := s - mean
		ss += d * d
	}
	sort.Float64s(slacks)
	r.Dist = Distribution{
		Mean: mean,
		Std:  math.Sqrt(ss / float64(n)),
		Min:  slacks[0],
		Max:  slacks[n-1],
		P5:   quantile(slacks, 0.05),
		P50:  quantile(slacks, 0.50),
		P95:  quantile(slacks, 0.95),
	}
}

// chooseRobust picks the group maximizing yield, breaking ties by worst
// slack, then mean slack, then lower cost, then first appearance.
func chooseRobust(groups []PlacementGroup) int {
	best := 0
	for g := 1; g < len(groups); g++ {
		a, b := &groups[g], &groups[best]
		switch {
		case a.Yield != b.Yield:
			if a.Yield > b.Yield {
				best = g
			}
		case a.WorstSlack != b.WorstSlack:
			if a.WorstSlack > b.WorstSlack {
				best = g
			}
		case a.MeanSlack != b.MeanSlack:
			if a.MeanSlack > b.MeanSlack {
				best = g
			}
		case a.Cost < b.Cost:
			best = g
		}
	}
	return best
}

// quantile returns the nearest-rank q-quantile of sorted xs.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	i := int(math.Ceil(q*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// findPlacement returns the stored placement equal to p, or nil.
func findPlacement(groups []delay.Placement, p delay.Placement) delay.Placement {
	for _, g := range groups {
		if placementsEqual(g, p) {
			return g
		}
	}
	return nil
}

func placementsEqual(a, b delay.Placement) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
