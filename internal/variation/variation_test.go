package variation

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"

	"bufferkit/internal/core"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/netgen"
	"bufferkit/internal/netlist"
	"bufferkit/internal/solvererr"
	"bufferkit/internal/testutil"
	"bufferkit/internal/tree"
)

var testDriver = delay.Driver{R: 0.2, K: 15}

// random12 loads the repository's random12 testdata net.
func random12(t *testing.T) (*tree.Tree, delay.Driver) {
	t.Helper()
	f, err := os.Open("../../testdata/random12.net")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	net, err := netlist.ParseNet(f)
	if err != nil {
		t.Fatal(err)
	}
	return net.Tree, net.Driver
}

func TestSamplerDeterministic(t *testing.T) {
	s := Sampler{Params: Uniform(0.07), Seed: 42}
	a := s.Corners(64)
	b := s.Corners(64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corner %d differs across identical samplers: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A prefix draw must agree with the longer sequence.
	short := s.Corners(8)
	for i := range short {
		if short[i] != a[i] {
			t.Fatalf("corner %d differs between Corners(8) and Corners(64)", i)
		}
	}
	other := Sampler{Params: Uniform(0.07), Seed: 43}.Corners(64)
	same := 0
	for i := range a {
		if a[i].LibR == other[i].LibR {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical corner factors")
	}
	for i, c := range a {
		if err := c.Validate(); err != nil {
			t.Fatalf("sampled corner %d invalid: %v", i, err)
		}
	}
}

func TestSigmaZeroSamplesNominal(t *testing.T) {
	for i, c := range (Sampler{Params: Uniform(0), Seed: 7}).Corners(16) {
		if !c.IsNominal() {
			t.Fatalf("sigma=0 corner %d not nominal: %+v", i, c)
		}
	}
	if !Nominal().IsNominal() {
		t.Fatal("Nominal() not nominal")
	}
}

func TestCornerValidate(t *testing.T) {
	if err := Nominal().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range ProcessCorners() {
		if err := c.Validate(); err != nil {
			t.Fatalf("process corner %q invalid: %v", c.Name, err)
		}
	}
	bad := Nominal()
	bad.WireC = 0
	var verr *solvererr.ValidationError
	if err := bad.Validate(); !errors.As(err, &verr) {
		t.Fatalf("zero factor: got %v, want ValidationError", err)
	}
	if err := (Corner{}).Validate(); err == nil {
		t.Fatal("zero-value corner validated")
	}
	if err := (Params{LibR: -0.1}).Validate(); err == nil {
		t.Fatal("negative sigma validated")
	}
	if err := (Params{WireC: MaxSigma * 2}).Validate(); err == nil {
		t.Fatal("oversized sigma validated")
	}
}

// TestSweepNominalMatchesCore: a one-corner nominal sweep must reproduce
// the plain engine's slack and placement bit for bit, on both backends.
func TestSweepNominalMatchesCore(t *testing.T) {
	tr, drv := random12(t)
	lib := library.Generate(8)
	for _, backend := range []core.Backend{core.BackendList, core.BackendSoA} {
		want, err := core.Insert(tr, lib, core.Options{Driver: drv, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Sweep(context.Background(), tr, lib, Config{
			Corners: []Corner{Nominal()},
			Driver:  drv,
			Backend: backend,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Samples[0].Slack != want.Slack {
			t.Fatalf("backend %v: nominal sweep slack %.17g != core slack %.17g", backend, res.Samples[0].Slack, want.Slack)
		}
		if !placementsEqual(res.Placement, want.Placement) {
			t.Fatalf("backend %v: nominal sweep placement differs from core", backend)
		}
		if res.Yield != 1 || res.OptimalYield != 1 {
			t.Fatalf("backend %v: single feasible corner should have yield 1, got %g/%g", backend, res.Yield, res.OptimalYield)
		}
	}
}

// TestSweepDeterministicAcrossWorkers: the result must not depend on the
// worker count — samples land by index and groups form in sample order.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	tr, drv := random12(t)
	lib := library.Generate(8)
	corners := append([]Corner{Nominal()}, Sampler{Params: Uniform(0.15), Seed: 3}.Corners(48)...)
	var base *Result
	for _, workers := range []int{1, 4, 16} {
		res, err := Sweep(context.Background(), tr, lib, Config{
			Corners: corners, Driver: drv, Robust: true, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.Yield != base.Yield || res.OptimalYield != base.OptimalYield ||
			res.Chosen != base.Chosen || len(res.Placements) != len(base.Placements) ||
			res.Dist != base.Dist {
			t.Fatalf("workers=%d: result differs from workers=1", workers)
		}
		for i := range res.Samples {
			if res.Samples[i] != base.Samples[i] {
				t.Fatalf("workers=%d: sample %d differs: %+v vs %+v", workers, i, res.Samples[i], base.Samples[i])
			}
		}
	}
}

// TestSweepBackendsBitExact: both candidate-list backends must produce
// identical sweeps, sample by sample.
func TestSweepBackendsBitExact(t *testing.T) {
	tr, drv := random12(t)
	lib := library.GenerateWithInverters(6)
	corners := append([]Corner{Nominal()}, Sampler{Params: Uniform(0.1), Seed: 11}.Corners(32)...)
	run := func(b core.Backend) *Result {
		res, err := Sweep(context.Background(), tr, lib, Config{
			Corners: corners, Driver: drv, Backend: b, Robust: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	list, soa := run(core.BackendList), run(core.BackendSoA)
	for i := range list.Samples {
		if list.Samples[i].Slack != soa.Samples[i].Slack {
			t.Fatalf("sample %d: list slack %.17g != soa slack %.17g", i, list.Samples[i].Slack, soa.Samples[i].Slack)
		}
		if list.Samples[i].Placement != soa.Samples[i].Placement {
			t.Fatalf("sample %d: group id differs across backends", i)
		}
	}
	if list.Yield != soa.Yield || list.Chosen != soa.Chosen {
		t.Fatalf("selection differs across backends: yield %g/%g chosen %d/%d",
			list.Yield, soa.Yield, list.Chosen, soa.Chosen)
	}
	if !placementsEqual(list.Placement, soa.Placement) {
		t.Fatal("chosen placements differ across backends")
	}
}

// TestSweepZeroAllocPerSample is the acceptance assertion: 256 Monte Carlo
// samples on the random12 net, each re-optimizing the net under a fresh
// corner on a warm SweepEngine, must perform zero steady-state heap
// allocations per sample.
func TestSweepZeroAllocPerSample(t *testing.T) {
	tr, drv := random12(t)
	lib := library.Generate(8)
	corners := append([]Corner{Nominal()}, Sampler{Params: Uniform(0.08), Seed: 1}.Corners(255)...)

	for _, backend := range []core.Backend{core.BackendList, core.BackendSoA} {
		eng := NewSweepEngine(tr, lib, core.Options{Driver: drv, Backend: backend}, nil, nil)
		ctx := context.Background()
		// Warm pass: grow the arena and scratch to the sweep's high-water mark.
		for _, c := range corners {
			if _, _, _, err := eng.RunCorner(ctx, c); err != nil {
				t.Fatal(err)
			}
		}
		i := 0
		allocs := testing.AllocsPerRun(len(corners), func() {
			c := corners[i%len(corners)]
			i++
			if _, _, _, err := eng.RunCorner(ctx, c); err != nil {
				t.Fatal(err)
			}
		})
		eng.Release()
		if allocs != 0 {
			t.Fatalf("backend %v: warm sweep allocates %.2f allocs per sample, want 0", backend, allocs)
		}
	}
}

// TestSweepWholeRunAllocBudget bounds the full Sweep call: across 256
// samples the fixed setup (engines, result slices, placement groups) must
// amortize to well under one allocation per sample.
func TestSweepWholeRunAllocBudget(t *testing.T) {
	tr, drv := random12(t)
	lib := library.Generate(8)
	corners := append([]Corner{Nominal()}, Sampler{Params: Uniform(0.08), Seed: 1}.Corners(255)...)
	// Reuse warm engines across sweeps the way the bufferkit facade does,
	// so the measurement sees the steady state of a long-lived service.
	var mu sync.Mutex
	var pool []*core.Engine
	get := func() *core.Engine {
		mu.Lock()
		defer mu.Unlock()
		if len(pool) > 0 {
			e := pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			return e
		}
		return core.NewEngine()
	}
	put := func(e *core.Engine) {
		mu.Lock()
		defer mu.Unlock()
		pool = append(pool, e)
	}
	cfg := Config{Corners: corners, Driver: drv, Workers: 1, GetEngine: get, PutEngine: put}
	if _, err := Sweep(context.Background(), tr, lib, cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Sweep(context.Background(), tr, lib, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if perSample := allocs / float64(len(corners)); perSample >= 1 {
		t.Fatalf("full sweep allocates %.2f allocs per sample (%.0f total), want amortized < 1", perSample, allocs)
	}
}

// TestSweepRobustSelection: with enough variation the optimal placement
// disagrees across corners; robust selection must pick the group with the
// maximum fixed-placement yield and report its stats coherently.
func TestSweepRobustSelection(t *testing.T) {
	tr, drv := random12(t)
	lib := library.Generate(8)
	corners := append([]Corner{Nominal()}, Sampler{Params: Uniform(0.25), Seed: 5}.Corners(96)...)
	res, err := Sweep(context.Background(), tr, lib, Config{
		Corners: corners, Driver: drv, Robust: true, Target: res0Target(t, tr, lib, drv),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placements) < 2 {
		t.Fatalf("sigma=0.25 over 97 corners produced %d distinct optima; test needs ≥ 2", len(res.Placements))
	}
	for g, grp := range res.Placements {
		if grp.Yield > res.Yield {
			t.Fatalf("group %d yield %g beats chosen yield %g", g, grp.Yield, res.Yield)
		}
		if grp.Yield > res.OptimalYield+1e-15 {
			t.Fatalf("group %d fixed yield %g exceeds optimal yield %g", g, grp.Yield, res.OptimalYield)
		}
		if grp.WorstSlack > grp.MeanSlack {
			t.Fatalf("group %d worst slack %g above mean %g", g, grp.WorstSlack, grp.MeanSlack)
		}
	}
	counts := 0
	for _, grp := range res.Placements {
		counts += grp.Count
	}
	if counts != len(corners) {
		t.Fatalf("group counts sum to %d, want %d", counts, len(corners))
	}
	// The distribution must bracket the per-corner optima coherently.
	d := res.Dist
	if !(d.Min <= d.P5 && d.P5 <= d.P50 && d.P50 <= d.P95 && d.P95 <= d.Max) {
		t.Fatalf("incoherent distribution: %+v", d)
	}
}

// res0Target picks a target between the nominal optimum and the sweep
// minimum so yield is strictly between 0 and 1 and selection pressure is
// real.
func res0Target(t *testing.T, tr *tree.Tree, lib library.Library, drv delay.Driver) float64 {
	t.Helper()
	res, err := core.Insert(tr, lib, core.Options{Driver: drv})
	if err != nil {
		t.Fatal(err)
	}
	return res.Slack - 40
}

// TestSweepCancellation: a canceled context aborts the sweep with a
// PartialError wrapping ErrCanceled and reports partial progress.
func TestSweepCancellation(t *testing.T) {
	tr := netgen.Random(netgen.Opts{Sinks: 30, Seed: 9})
	lib := library.Generate(16)
	corners := Sampler{Params: Uniform(0.05), Seed: 2}.Corners(64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Sweep(ctx, tr, lib, Config{Corners: corners, Driver: testDriver})
	var perr *PartialError
	if !errors.As(err, &perr) {
		t.Fatalf("got %v, want *PartialError", err)
	}
	if !errors.Is(err, solvererr.ErrCanceled) {
		t.Fatalf("PartialError does not wrap ErrCanceled: %v", err)
	}
	if perr.Total != len(corners) || perr.Completed < 0 || perr.Completed >= perr.Total {
		t.Fatalf("bad progress accounting: %d/%d", perr.Completed, perr.Total)
	}
}

// TestSweepValidation: empty corner sets and malformed corners are
// rejected with ValidationErrors before any engine runs.
func TestSweepValidation(t *testing.T) {
	tr := netgen.Random(netgen.Opts{Sinks: 4, Seed: 1})
	lib := library.Generate(4)
	var verr *solvererr.ValidationError
	if _, err := Sweep(context.Background(), tr, lib, Config{}); !errors.As(err, &verr) {
		t.Fatalf("empty corners: got %v, want ValidationError", err)
	}
	bad := Config{Corners: []Corner{Nominal(), {Name: "bad"}}}
	if _, err := Sweep(context.Background(), tr, lib, bad); !errors.As(err, &verr) {
		t.Fatalf("invalid corner: got %v, want ValidationError", err)
	}
}

// TestFixedSlackMatchesOracle: the alloc-free evaluator must agree with
// delay.Evaluate bit for bit on arbitrary placements and corners.
func TestFixedSlackMatchesOracle(t *testing.T) {
	tr, drv := random12(t)
	lib := library.Generate(8)
	eng := NewSweepEngine(tr, lib, core.Options{Driver: drv}, nil, nil)
	defer eng.Release()
	corners := append(ProcessCorners(), Sampler{Params: Uniform(0.2), Seed: 8}.Corners(16)...)
	for _, c := range corners {
		slack, crit, plc, err := eng.RunCorner(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		// Build the scaled instance independently and ask the oracle.
		scaled := tr.Clone()
		for i := range scaled.Verts {
			scaled.Verts[i].EdgeR *= c.WireR
			scaled.Verts[i].EdgeC *= c.WireC
		}
		slib := append(library.Library(nil), lib...)
		for i := range slib {
			slib[i].R *= c.LibR
			slib[i].K *= c.LibK
			slib[i].Cin *= c.LibCin
		}
		want, err := delay.Evaluate(scaled, slib, plc, drv)
		if err != nil {
			t.Fatal(err)
		}
		// The DP and the oracle differ only in summation association.
		if !testutil.AlmostEqual(want.Slack, slack) {
			t.Fatalf("corner %q: DP slack %.17g != oracle %.17g", c.Name, slack, want.Slack)
		}
		if want.CriticalSink != crit {
			t.Fatalf("corner %q: critical sink %d != oracle %d", c.Name, crit, want.CriticalSink)
		}
		// The sweep evaluator mirrors the oracle's operation order exactly,
		// so its slack must be bit-identical.
		if got := eng.FixedSlack(c, plc); got != want.Slack {
			t.Fatalf("corner %q: FixedSlack %.17g != oracle %.17g", c.Name, got, want.Slack)
		}
	}
}
