// Package variation models process and interconnect variation for buffer
// insertion: corners, samplers, a parallel corner-sweep runner over the
// repository's warm zero-allocation engines, slack/yield statistics, and a
// robust placement-selection mode.
//
// A Corner is a multiplicative perturbation of the electrical parameters of
// one fabricated instance of the design: buffer driving resistance R,
// intrinsic delay K and input capacitance Cin are scaled by one factor each
// (uniformly across the library — a process corner shifts every device the
// same way), and wire resistance r and capacitance c are scaled likewise.
// Deterministic named corners (Nominal, Fast, Slow, the cross corners)
// model sign-off style multi-corner analysis; a seeded Sampler draws Monte
// Carlo corners with configurable per-parameter sigma for yield estimation.
//
// Uniform scaling is what makes the sweep cheap: multiplying every library
// R by one positive factor preserves the non-increasing-R order the
// AddBuffer hull walk requires, and multiplying every Cin preserves the
// input-capacitance order the beta merge requires (multiplication by a
// positive factor is monotone, also in floating point, where ties can only
// be created, never inverted — and both orders break ties by index). A
// SweepEngine therefore rewrites one scratch library and one scratch tree
// in place per corner and re-runs a warm core engine on them: after the
// first corner, each additional sample performs zero steady-state heap
// allocations (asserted by the package tests).
//
// Determinism: a Sampler with a fixed seed always yields the same corner
// sequence, and a sweep's result is independent of the worker count —
// samples are written by index and placements are deduplicated in sample
// order. A corner with all factors exactly 1 reproduces the nominal
// solver's result bit for bit (x·1.0 ≡ x in IEEE 754), which the root
// differential suite asserts on both candidate-list backends.
package variation

import (
	"math"
	"math/rand"
	"strconv"

	"bufferkit/internal/solvererr"
)

// Corner is one set of multiplicative perturbation factors. The zero value
// is invalid (it would zero every parameter); start from Nominal() or a
// Sampler. Factors apply uniformly: every library type's R is scaled by
// LibR, and so on.
type Corner struct {
	// Name labels the corner in reports ("nominal", "fast", "mc17", …).
	Name string
	// LibR, LibK and LibCin scale buffer driving resistance, intrinsic
	// delay and input capacitance.
	LibR, LibK, LibCin float64
	// WireR and WireC scale per-edge wire resistance and capacitance.
	WireR, WireC float64
}

// Nominal returns the identity corner: every factor exactly 1, so applying
// it is a bit-exact no-op.
func Nominal() Corner {
	return Corner{Name: "nominal", LibR: 1, LibK: 1, LibCin: 1, WireR: 1, WireC: 1}
}

// IsNominal reports whether every factor is exactly 1.
func (c Corner) IsNominal() bool {
	return c.LibR == 1 && c.LibK == 1 && c.LibCin == 1 && c.WireR == 1 && c.WireC == 1
}

// Validate checks that every factor is positive and finite. Failures are
// *solvererr.ValidationError values naming the offending factor.
func (c Corner) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"LibR", c.LibR}, {"LibK", c.LibK}, {"LibCin", c.LibCin},
		{"WireR", c.WireR}, {"WireC", c.WireC},
	} {
		if !(f.v > 0) || math.IsInf(f.v, 0) || math.IsNaN(f.v) {
			return solvererr.Validation("variation", f.name,
				"corner %q: factor %g must be positive and finite", c.Name, f.v)
		}
	}
	return nil
}

// ProcessCorners returns the classic deterministic corner set: nominal,
// fast (strong devices, light wires) and slow (weak devices, heavy wires),
// plus the two cross corners (fast devices with heavy wires and vice
// versa). The ±10 % device and ±8 % wire excursions sit inside the range
// the paper's TSMC 180 nm constants span between process splits.
func ProcessCorners() []Corner {
	return []Corner{
		Nominal(),
		{Name: "fast", LibR: 0.90, LibK: 0.90, LibCin: 0.95, WireR: 0.92, WireC: 0.92},
		{Name: "slow", LibR: 1.10, LibK: 1.10, LibCin: 1.05, WireR: 1.08, WireC: 1.08},
		{Name: "fastdev-slowwire", LibR: 0.90, LibK: 0.90, LibCin: 0.95, WireR: 1.08, WireC: 1.08},
		{Name: "slowdev-fastwire", LibR: 1.10, LibK: 1.10, LibCin: 1.05, WireR: 0.92, WireC: 0.92},
	}
}

// Params are per-parameter relative sigmas for a Sampler: 0.05 means one
// standard deviation moves the parameter 5 % off nominal.
type Params struct {
	LibR, LibK, LibCin, WireR, WireC float64
}

// Uniform returns Params with every sigma set to the same value.
func Uniform(sigma float64) Params {
	return Params{LibR: sigma, LibK: sigma, LibCin: sigma, WireR: sigma, WireC: sigma}
}

// Validate checks every sigma is finite, nonnegative and at most MaxSigma.
func (p Params) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"LibR", p.LibR}, {"LibK", p.LibK}, {"LibCin", p.LibCin},
		{"WireR", p.WireR}, {"WireC", p.WireC},
	} {
		if f.v < 0 || f.v > MaxSigma || math.IsInf(f.v, 0) || math.IsNaN(f.v) {
			return solvererr.Validation("variation", f.name,
				"sigma %g must be in [0, %g]", f.v, MaxSigma)
		}
	}
	return nil
}

// MaxSigma bounds sampler sigmas; beyond ~50 % relative variation the
// truncated-Gaussian factor model stops being meaningful.
const MaxSigma = 0.5

// minFactor floors sampled factors so a deep negative tail cannot produce
// a non-physical (zero or negative) parameter.
const minFactor = 0.05

// Sampler draws Monte Carlo corners: each corner's five factors are
// independent Gaussians 1 + sigma·N(0,1), floored at a small positive
// value. A Sampler is deterministic: the same Seed and Params always
// produce the same corner sequence, regardless of how many corners are
// drawn per call.
type Sampler struct {
	// Params are the per-parameter sigmas (zero sigma pins a factor to
	// exactly 1, so Params{} samples only nominal corners).
	Params Params
	// Seed seeds the generator.
	Seed int64
}

// Corners draws the first n corners of the sampler's sequence, named
// "mc0" … "mc<n-1>".
func (s Sampler) Corners(n int) []Corner {
	out := make([]Corner, n)
	s.CornersInto(out)
	return out
}

// CornersInto fills dst with the first len(dst) corners of the sequence.
func (s Sampler) CornersInto(dst []Corner) {
	rng := rand.New(rand.NewSource(s.Seed ^ 0x76617279)) // "vary"
	for i := range dst {
		dst[i] = Corner{
			Name:   "mc" + strconv.Itoa(i),
			LibR:   factor(rng, s.Params.LibR),
			LibK:   factor(rng, s.Params.LibK),
			LibCin: factor(rng, s.Params.LibCin),
			WireR:  factor(rng, s.Params.WireR),
			WireC:  factor(rng, s.Params.WireC),
		}
	}
}

// factor draws 1 + sigma·N(0,1) floored at minFactor. A zero sigma returns
// exactly 1 while still consuming one variate, so the sequence structure is
// independent of which sigmas are enabled.
func factor(rng *rand.Rand, sigma float64) float64 {
	g := rng.NormFloat64()
	f := 1 + sigma*g
	if f < minFactor {
		f = minFactor
	}
	return f
}
