// Package solvererr defines the typed error taxonomy shared by every
// insertion algorithm in the repository. The bufferkit facade re-exports
// the sentinels and the ValidationError type, so callers can branch with
// errors.Is / errors.As instead of matching message strings:
//
//   - ErrInfeasible: the instance admits no polarity-feasible solution.
//   - ErrCanceled: the run was stopped by context cancellation.
//   - ValidationError: the instance itself is malformed (bad library
//     field, polarity requirement the library cannot serve, …), with
//     vertex / library-type / field detail.
//
// The package sits below internal/core, internal/lillis,
// internal/vanginneken and internal/costopt so that all four wrap the same
// sentinel values the facade exports.
package solvererr

import (
	"context"
	"errors"
	"fmt"
)

// ErrInfeasible is wrapped by algorithm errors that mean "this instance has
// no polarity-feasible solution" — as opposed to a malformed instance
// (ValidationError) or an interrupted run (ErrCanceled).
var ErrInfeasible = errors.New("infeasible instance")

// ErrCanceled is wrapped by algorithm errors caused by context
// cancellation. errors.Is(err, context.Canceled) style checks do not apply
// here because engines surface the cancellation cause separately; test with
// errors.Is(err, ErrCanceled).
var ErrCanceled = errors.New("run canceled")

// PollMask throttles the cancellation poll in every solver's per-vertex
// loop: the context is consulted on vertices where vi&PollMask == 0 (a
// power-of-two stride), so the warm path stays allocation-free and the
// check cost is amortized away while cancellation latency stays bounded by
// a few dozen list operations. Shared here so all four algorithm packages
// poll at the same stride.
const PollMask = 63

// Canceled builds the error an engine returns when ctx fires mid-run,
// wrapping ErrCanceled around the context's cause. Only the cancellation
// path pays the allocation.
func Canceled(ctx context.Context) error {
	cause := context.Cause(ctx)
	if cause == nil {
		cause = ctx.Err()
	}
	if cause == nil {
		return ErrCanceled
	}
	return fmt.Errorf("%w: %v", ErrCanceled, cause)
}

// Infeasible builds an ErrInfeasible-wrapping error with a formatted
// detail message.
func Infeasible(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrInfeasible)
}

// ValidationError reports a malformed instance: a library type with an
// illegal field, a sink whose polarity requirement the library cannot
// serve, a vertex restriction that excludes every type, and so on.
type ValidationError struct {
	// Op names the component that rejected the instance ("core",
	// "library", "vanginneken", …).
	Op string
	// Vertex is the offending vertex index, or -1 when the problem is not
	// tied to a vertex.
	Vertex int
	// Type is the offending buffer-library type index, or -1.
	Type int
	// Field names the offending field or property ("polarity", "R",
	// "Cin", "allowed", …).
	Field string
	// Msg describes the violation in plain words.
	Msg string
}

// Error implements error.
func (e *ValidationError) Error() string {
	switch {
	case e.Vertex >= 0:
		return fmt.Sprintf("%s: vertex %d: invalid %s: %s", e.Op, e.Vertex, e.Field, e.Msg)
	case e.Type >= 0:
		return fmt.Sprintf("%s: library type %d: invalid %s: %s", e.Op, e.Type, e.Field, e.Msg)
	}
	return fmt.Sprintf("%s: invalid %s: %s", e.Op, e.Field, e.Msg)
}

// Validation builds a *ValidationError not tied to a vertex or library
// type; callers fill Vertex/Type through the At helpers.
func Validation(op, field, format string, args ...any) *ValidationError {
	return &ValidationError{Op: op, Vertex: -1, Type: -1, Field: field, Msg: fmt.Sprintf(format, args...)}
}

// AtVertex returns a copy of e pinned to vertex v.
func (e *ValidationError) AtVertex(v int) *ValidationError {
	out := *e
	out.Vertex = v
	return &out
}

// AtType returns a copy of e pinned to library type t.
func (e *ValidationError) AtType(t int) *ValidationError {
	out := *e
	out.Type = t
	return &out
}
