package testutil

import "testing"

// TestParseProm: a well-formed exposition parses into samples and types,
// including labeled histogram buckets.
func TestParseProm(t *testing.T) {
	pm, err := ParseProm(`# HELP solve_requests Solve requests accepted.
# TYPE solve_requests counter
solve_requests 42
# TYPE solve_latency_ms histogram
solve_latency_ms_bucket{le="1"} 3
solve_latency_ms_bucket{le="+Inf"} 7
solve_latency_ms_sum 123.5
solve_latency_ms_count 7
`)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Samples["solve_requests"] != 42 {
		t.Errorf("solve_requests = %v", pm.Samples["solve_requests"])
	}
	if pm.Types["solve_latency_ms"] != "histogram" {
		t.Errorf("type = %q", pm.Types["solve_latency_ms"])
	}
	if pm.Samples[Bucket("solve_latency_ms", "+Inf")] != 7 {
		t.Errorf("+Inf bucket = %v", pm.Samples[Bucket("solve_latency_ms", "+Inf")])
	}
	if pm.Samples[Bucket("solve_latency_ms", "1")] != 3 {
		t.Errorf("le=1 bucket = %v", pm.Samples[Bucket("solve_latency_ms", "1")])
	}
}

// TestParsePromRejects: every way the hand-rolled writer could go wrong
// is an error, not a skip — the validator's whole point.
func TestParsePromRejects(t *testing.T) {
	cases := map[string]string{
		"bad name":          "1up 3\n",
		"no value":          "solve_requests\n",
		"bad value":         "solve_requests fast\n",
		"bad TYPE":          "# TYPE solve_requests speedometer\n",
		"malformed comment": "# NOTE solve_requests whatever\n",
		"bad label":         `m{le=1} 3` + "\n",
		"unterminated":      `m{le="1" 3` + "\n",
		"duplicate sample":  "m 1\nm 2\n",
		"timestamp":         "m 1 1700000000\n",
	}
	for name, text := range cases {
		if _, err := ParseProm(text); err == nil {
			t.Errorf("%s: %q accepted", name, text)
		}
	}
}
