// Package testutil holds helpers shared by the algorithm test suites.
package testutil

import (
	"math"
	"testing"

	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/tree"
)

// Tol is the slack comparison tolerance in ps. The dynamic programs and the
// Elmore oracle apply the same formulas with different association, so
// results agree only up to accumulated rounding (≪ 1e-6 ps on every net in
// this repository).
const Tol = 1e-6

// AlmostEqual reports |a−b| ≤ Tol·max(1, |a|, |b|).
func AlmostEqual(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= Tol*scale
}

// CheckPlacement asserts that placement p, evaluated by the exact Elmore
// oracle, reproduces the claimed slack and violates no polarity, and
// returns the evaluation.
func CheckPlacement(t *testing.T, tr *tree.Tree, lib library.Library, p delay.Placement, drv delay.Driver, claimed float64, what string) *delay.Result {
	t.Helper()
	r, err := delay.Evaluate(tr, lib, p, drv)
	if err != nil {
		t.Fatalf("%s: evaluate: %v", what, err)
	}
	if len(r.PolarityViolations) > 0 {
		t.Fatalf("%s: placement violates polarity at sinks %v", what, r.PolarityViolations)
	}
	if !AlmostEqual(r.Slack, claimed) {
		t.Fatalf("%s: claimed slack %.12g but oracle measures %.12g (Δ=%g)", what, claimed, r.Slack, claimed-r.Slack)
	}
	return r
}
