package testutil

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// PromMetrics is a parsed Prometheus text-format (version 0.0.4) scrape.
// Samples are keyed exactly as exposed — "name" or `name{label="v"}` —
// and Types maps each metric family name to its # TYPE declaration.
type PromMetrics struct {
	Samples map[string]float64
	Types   map[string]string
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promTypes   = map[string]bool{"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true}
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
)

// ParseProm parses a Prometheus text exposition strictly enough to catch
// the ways a hand-rolled writer goes wrong: every line must be a # HELP /
// # TYPE comment or a `name[{labels}] value` sample, names must be legal,
// TYPE values must be real types, and sample values must parse as floats.
// It is a validator for bufferkitd's /metrics output, not a general
// scraper — timestamps and exemplars are rejected, not skipped.
func ParseProm(text string) (*PromMetrics, error) {
	pm := &PromMetrics{Samples: map[string]float64{}, Types: map[string]string{}}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 3 || (f[1] != "HELP" && f[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", ln+1, line)
			}
			if !promNameRe.MatchString(f[2]) {
				return nil, fmt.Errorf("line %d: bad metric name %q", ln+1, f[2])
			}
			if f[1] == "TYPE" {
				if len(f) != 4 || !promTypes[f[3]] {
					return nil, fmt.Errorf("line %d: bad TYPE %q", ln+1, line)
				}
				pm.Types[f[2]] = f[3]
			}
			continue
		}
		// Sample: name or name{k="v",...}, one space, float value.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("line %d: no value in sample %q", ln+1, line)
		}
		key, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", ln+1, val, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				return nil, fmt.Errorf("line %d: unterminated labels %q", ln+1, key)
			}
			name = key[:i]
			if err := checkLabels(key[i+1 : len(key)-1]); err != nil {
				return nil, fmt.Errorf("line %d: %v in %q", ln+1, err, key)
			}
		}
		if !promNameRe.MatchString(name) {
			return nil, fmt.Errorf("line %d: bad metric name %q", ln+1, name)
		}
		if _, dup := pm.Samples[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %q", ln+1, key)
		}
		pm.Samples[key] = v
	}
	return pm, nil
}

// checkLabels validates a comma-separated label list (quotes may contain
// escaped characters but never a raw comma in this repo's writer).
func checkLabels(s string) error {
	if s == "" {
		return nil
	}
	for _, pair := range strings.Split(s, ",") {
		if !promLabelRe.MatchString(pair) {
			return fmt.Errorf("bad label %q", pair)
		}
	}
	return nil
}

// Bucket returns the cumulative histogram bucket sample name for bound le.
func Bucket(name, le string) string {
	return fmt.Sprintf(`%s_bucket{le="%s"}`, name, le)
}
