package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	tp := FormatTraceparent(tid, sid)
	if len(tp) != 55 {
		t.Fatalf("traceparent %q: len %d, want 55", tp, len(tp))
	}
	gotT, gotS, ok := ParseTraceparent(tp)
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("round trip %q: got %v %v ok=%v", tp, gotT, gotS, ok)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"banana",
		"00-abc-def-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // reserved version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero parent
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",   // bad hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    // short version
		"00-4bf92f3577b34da6a3ce929d0e0e4736aa-00f067aa0ba902b7-01", // long trace id
	}
	for _, s := range bad {
		if _, _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", s)
		}
	}
	// Future versions with extra segments parse (per spec).
	if _, _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Error("future-version traceparent rejected, want accept")
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	if got := tr.TraceID(); got != "" {
		t.Errorf("nil TraceID = %q", got)
	}
	if got := tr.Traceparent(); got != "" {
		t.Errorf("nil Traceparent = %q", got)
	}
	tr.Set("k", "v")
	sp := tr.StartSpan("x")
	sp.Set("k", 1)
	sp.End()
	if got := sp.SpanID(); got != "" {
		t.Errorf("nil SpanID = %q", got)
	}
	tr.Finish(200)

	var r *Recorder
	if tr := r.StartTrace("GET /x", ""); tr != nil {
		t.Error("nil recorder produced a trace")
	}
	if got := r.Snapshot(0); got != nil {
		t.Errorf("nil Snapshot = %v", got)
	}
	if tot, slow := r.Totals(); tot != 0 || slow != 0 {
		t.Errorf("nil Totals = %d, %d", tot, slow)
	}
	if r.Logger() == nil {
		t.Error("nil recorder Logger() = nil, want discard logger")
	}
}

func TestTraceJoinsRemoteParent(t *testing.T) {
	r := NewRecorder(Options{})
	remote := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tr := r.StartTrace("POST /v1/solve", remote)
	if got := tr.TraceID(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %s, want remote id", got)
	}
	// The outgoing traceparent keeps the trace id but advances the parent
	// to this request's root span.
	tp := tr.Traceparent()
	gotT, gotS, ok := ParseTraceparent(tp)
	if !ok || gotT.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("outgoing traceparent %q", tp)
	}
	if gotS.String() == "00f067aa0ba902b7" {
		t.Fatal("outgoing parent span not advanced past the remote parent")
	}
	tr.Finish(200)
	snap := r.Snapshot(0)
	if len(snap) != 1 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	if snap[0].Spans[0].Parent != "00f067aa0ba902b7" {
		t.Fatalf("root parent = %q, want remote span id", snap[0].Spans[0].Parent)
	}
}

func TestTraceSpansAndSnapshot(t *testing.T) {
	r := NewRecorder(Options{RingSize: 4})
	tr := r.StartTrace("POST /v1/solve", "")
	tr.Set("tenant", "acme")
	sp := tr.StartSpan("engine_run")
	sp.Set("candidates", 42)
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Finish(200)

	snap := r.Snapshot(0)
	if len(snap) != 1 {
		t.Fatalf("snapshot len = %d, want 1", len(snap))
	}
	tj := snap[0]
	if tj.Trace != tr.TraceID() || tj.Status != 200 || tj.Name != "POST /v1/solve" {
		t.Fatalf("trace json = %+v", tj)
	}
	if tj.Attrs["tenant"] != "acme" {
		t.Fatalf("attrs = %v", tj.Attrs)
	}
	if len(tj.Spans) != 2 {
		t.Fatalf("spans = %d, want root + engine_run", len(tj.Spans))
	}
	eng := tj.Spans[1]
	if eng.Name != "engine_run" || eng.DurationMS <= 0 || eng.Parent != tj.Spans[0].Span {
		t.Fatalf("engine span = %+v (root %+v)", eng, tj.Spans[0])
	}
	// Snapshot round-trips through the rendered JSON, so numeric attrs
	// come back as float64.
	if eng.Attrs["candidates"] != float64(42) {
		t.Fatalf("span attrs = %v", eng.Attrs)
	}
	// The snapshot must be JSON-marshalable as served by /debug/traces.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	// Min-duration filter excludes the fast trace.
	if got := r.Snapshot(time.Hour); len(got) != 0 {
		t.Fatalf("minDur filter kept %d traces", len(got))
	}
}

func TestRecorderRingBounded(t *testing.T) {
	r := NewRecorder(Options{RingSize: 3})
	for i := 0; i < 10; i++ {
		tr := r.StartTrace("GET /x", "")
		tr.Set("i", i)
		tr.Finish(200)
	}
	snap := r.Snapshot(0)
	if len(snap) != 3 {
		t.Fatalf("ring kept %d traces, want 3", len(snap))
	}
	// Newest first: 9, 8, 7 (numbers round-trip through JSON as float64).
	for i, want := range []float64{9, 8, 7} {
		if snap[i].Attrs["i"] != want {
			t.Fatalf("snapshot[%d] i = %v, want %g", i, snap[i].Attrs["i"], want)
		}
	}
	if tot, _ := r.Totals(); tot != 10 {
		t.Fatalf("total = %d, want 10", tot)
	}
}

func TestSummaryLogLine(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, nil))
	r := NewRecorder(Options{Logger: log, SlowThreshold: time.Hour})
	tr := r.StartTrace("POST /v1/solve", "")
	tr.Set("tenant", "acme")
	tr.Set("cached", true)
	sp := tr.StartSpan("cache_lookup")
	sp.End()
	tr.Finish(200)

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line %q: %v", buf.String(), err)
	}
	if line["msg"] != "request" || line["level"] != "INFO" {
		t.Fatalf("line = %v", line)
	}
	if line["trace"] != tr.TraceID() || line["req"] != "POST /v1/solve" ||
		line["status"] != float64(200) || line["tenant"] != "acme" || line["cached"] != true {
		t.Fatalf("line = %v", line)
	}
	if s, _ := line["stages"].(string); !strings.Contains(s, "cache_lookup:") {
		t.Fatalf("stages = %v", line["stages"])
	}
}

func TestSlowRequestWarns(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewJSONHandler(&buf, nil))
	r := NewRecorder(Options{Logger: log, SlowThreshold: time.Nanosecond})
	tr := r.StartTrace("POST /v1/solve", "")
	time.Sleep(10 * time.Microsecond)
	tr.Finish(200)
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line %q: %v", buf.String(), err)
	}
	if line["msg"] != "slow request" || line["level"] != "WARN" {
		t.Fatalf("line = %v", line)
	}
	if _, slow := r.Totals(); slow != 1 {
		t.Fatalf("slow total = %d", slow)
	}

	// Negative threshold disables slow classification entirely.
	r2 := NewRecorder(Options{SlowThreshold: -1})
	tr2 := r2.StartTrace("GET /x", "")
	tr2.Finish(200)
	if _, slow := r2.Totals(); slow != 0 {
		t.Fatalf("disabled slow log still counted %d", slow)
	}
}

func TestFinishIdempotent(t *testing.T) {
	r := NewRecorder(Options{})
	tr := r.StartTrace("GET /x", "")
	tr.Finish(200)
	tr.Finish(500)
	if tot, _ := r.Totals(); tot != 1 {
		t.Fatalf("double finish recorded %d traces", tot)
	}
	if snap := r.Snapshot(0); snap[0].Status != 200 {
		t.Fatalf("second finish overwrote status: %d", snap[0].Status)
	}
}

// TestTraceConcurrent exercises parallel span recording on one trace (the
// hedge-arm shape) plus concurrent Snapshot calls; run with -race.
func TestTraceConcurrent(t *testing.T) {
	r := NewRecorder(Options{RingSize: 8})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := r.StartTrace("POST /v1/solve", "")
			var inner sync.WaitGroup
			for a := 0; a < 3; a++ {
				inner.Add(1)
				go func(a int) {
					defer inner.Done()
					sp := tr.StartSpan("hedge_attempt")
					sp.Set("arm", a)
					sp.End()
				}(a)
			}
			inner.Wait()
			tr.Finish(200)
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Snapshot(0)
		}()
	}
	wg.Wait()
	snap := r.Snapshot(0)
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for _, tj := range snap {
		if len(tj.Spans) != 4 {
			t.Fatalf("trace %s has %d spans, want root + 3 arms", tj.Trace, len(tj.Spans))
		}
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if TraceFromContext(ctx) != nil {
		t.Fatal("empty ctx carries a trace")
	}
	r := NewRecorder(Options{})
	tr := r.StartTrace("GET /x", "")
	ctx = ContextWithTrace(ctx, tr)
	if TraceFromContext(ctx) != tr {
		t.Fatal("trace not carried")
	}

	ctx2, tp := EnsureTraceparent(context.Background())
	if _, _, ok := ParseTraceparent(tp); !ok {
		t.Fatalf("generated traceparent %q invalid", tp)
	}
	// Second call reuses the existing value — retries and hedge arms of
	// one logical call share a trace id.
	ctx3, tp2 := EnsureTraceparent(ctx2)
	if tp2 != tp {
		t.Fatalf("EnsureTraceparent regenerated: %q then %q", tp, tp2)
	}
	if TraceparentFromContext(ctx3) != tp {
		t.Fatal("traceparent not carried")
	}
}

func TestWritePromBasics(t *testing.T) {
	m := new(expvar.Map).Init()
	reqs := new(expvar.Int)
	reqs.Set(7)
	m.Set("solve_requests", reqs)
	inFlight := new(expvar.Int)
	inFlight.Set(2)
	m.Set("in_flight_runs", inFlight)
	m.Set("go_version", expvar.Func(func() any { return "go1.24" }))
	m.Set("solve_ewma_ms", expvar.Func(func() any { return 1.5 }))
	m.Set("tenant_shed_by_tenant", expvar.Func(func() any {
		return map[string]int64{"acme": 3, "beta": 1}
	}))

	var buf bytes.Buffer
	WriteProm(&buf, m)
	out := buf.String()
	for _, want := range []string{
		"# TYPE solve_requests counter\nsolve_requests 7\n",
		"# TYPE in_flight_runs gauge\nin_flight_runs 2\n",
		"go_version{version=\"go1.24\"} 1\n",
		"# TYPE solve_ewma_ms gauge\nsolve_ewma_ms 1.5\n",
		"tenant_shed_by_tenant{tenant=\"acme\"} 3\n",
		"tenant_shed_by_tenant{tenant=\"beta\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePromHistogramCumulative(t *testing.T) {
	// A latencyHist-shaped map: disjoint bins le_1=2, le_5=3, le_inf=4.
	m := new(expvar.Map).Init()
	h := new(expvar.Map).Init()
	set := func(k string, v int64) {
		iv := new(expvar.Int)
		iv.Set(v)
		h.Set(k, iv)
	}
	set("le_1", 2)
	set("le_5", 3)
	set("le_inf", 4)
	set("count", 9)
	sum := new(expvar.Float)
	sum.Set(123.5)
	h.Set("sum_ms", sum)
	m.Set("solve_latency_ms", h)

	var buf bytes.Buffer
	WriteProm(&buf, m)
	out := buf.String()
	for _, want := range []string{
		"# TYPE solve_latency_ms histogram\n",
		"solve_latency_ms_bucket{le=\"1\"} 2\n",
		"solve_latency_ms_bucket{le=\"5\"} 5\n",    // cumulative: 2+3
		"solve_latency_ms_bucket{le=\"+Inf\"} 9\n", // overflow folded in; equals _count
		"solve_latency_ms_sum 123.5\n",
		"solve_latency_ms_count 9\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
