// Package obs is bufferkitd's request-scoped observability layer: a
// lightweight span recorder with W3C traceparent propagation, a bounded
// in-memory ring of completed traces (served at GET /debug/traces), a
// structured request-summary log line per request via log/slog, and an
// expvar→Prometheus text-format bridge (prom.go).
//
// The design deliberately avoids an OpenTelemetry dependency: bufferkitd
// needs exactly four things — follow one request through its stages
// (quota → admission → cache → singleflight → forward/hedge → engine →
// encode), correlate the hops of a fleet forward under one trace id, find
// the slow requests, and scrape counters — and a ~500-line recorder
// delivers them with no new modules and near-zero overhead.
//
// Everything is nil-safe: a nil *Recorder produces nil *Trace values whose
// methods are all no-ops, so call sites never guard on "is tracing on".
// Span identity follows the W3C Trace Context model (16-byte trace id,
// 8-byte span ids); a request arriving with a valid `traceparent` header
// joins the caller's trace, which is how a solve forwarded across the
// fleet shows up as one trace spanning origin and home.
package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"log/slog"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TraceID is a W3C Trace Context trace id (16 bytes, hex on the wire).
type TraceID [16]byte

// SpanID is a W3C Trace Context span/parent id (8 bytes, hex on the wire).
type SpanID [8]byte

// IsZero reports the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports the invalid all-zero id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the id as 32 lowercase hex characters.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the id as 16 lowercase hex characters.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// NewTraceID returns a random non-zero trace id. math/rand/v2's global
// generator is goroutine-safe and plenty for correlation ids — tracing
// needs uniqueness, not unpredictability.
func NewTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:8], rand.Uint64())
		binary.BigEndian.PutUint64(id[8:], rand.Uint64())
	}
	return id
}

// NewSpanID returns a random non-zero span id.
func NewSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:], rand.Uint64())
	}
	return id
}

// FormatTraceparent renders a version-00 W3C traceparent header value:
// 00-<32 hex trace id>-<16 hex parent span id>-01 (sampled flag always
// set — bufferkit records every request).
func FormatTraceparent(t TraceID, s SpanID) string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], t[:])
	b[35] = '-'
	hex.Encode(b[36:52], s[:])
	b[52], b[53], b[54] = '-', '0', '1'
	return string(b[:])
}

// ParseTraceparent decodes a traceparent header value. Per the W3C spec a
// receiver accepts any known-length version except the reserved "ff", and
// rejects all-zero trace or parent ids. ok is false on anything malformed
// — the caller then starts a fresh trace.
func ParseTraceparent(s string) (t TraceID, parent SpanID, ok bool) {
	parts := strings.Split(s, "-")
	if len(parts) < 4 || len(parts[0]) != 2 || parts[0] == "ff" ||
		len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.Decode(t[:], []byte(parts[1])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.Decode(parent[:], []byte(parts[2])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if t.IsZero() || parent.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return t, parent, true
}

// NewTraceparent returns a fresh traceparent value for an outgoing request
// that is not part of an existing trace (the client's entry point).
func NewTraceparent() string { return FormatTraceparent(NewTraceID(), NewSpanID()) }

// Attr is one span or trace annotation. Values must be JSON-marshalable;
// in practice they are strings, ints, floats and bools.
type Attr struct {
	Key   string
	Value any
}

// span is one recorded stage of a trace. Offsets are relative to the trace
// start so a JSON snapshot needs no per-span wall-clock.
type span struct {
	name   string
	id     SpanID
	parent SpanID
	start  time.Duration // offset from trace start
	dur    time.Duration
	open   bool
	attrs  []Attr
}

// Trace is one request's span collection. It is created by
// Recorder.StartTrace, carried in the request context, annotated by the
// handler stages, and Finished by the instrumentation middleware. All
// methods are safe on a nil receiver (tracing disabled) and safe for
// concurrent use (hedge arms record spans in parallel).
type Trace struct {
	rec          *Recorder
	id           TraceID
	remoteParent SpanID // non-zero when this request joined a caller's trace
	start        time.Time

	mu     sync.Mutex
	name   string
	status int
	dur    time.Duration
	done   bool
	spans  []span // spans[0] is the root span
	attrs  []Attr // root annotations, folded into the summary log line
}

// SpanRef addresses one open span of a trace; the zero value is a no-op.
// It is a value type so starting a span allocates nothing beyond the
// span record itself.
type SpanRef struct {
	tr    *Trace
	idx   int
	start time.Time
}

// TraceID returns the trace id as hex, or "" on a nil trace.
func (tr *Trace) TraceID() string {
	if tr == nil {
		return ""
	}
	return tr.id.String()
}

// Traceparent renders the header value downstream hops should carry: this
// trace's id with the root span as parent. "" on a nil trace.
func (tr *Trace) Traceparent() string {
	if tr == nil {
		return ""
	}
	tr.mu.Lock()
	root := tr.spans[0].id
	tr.mu.Unlock()
	return FormatTraceparent(tr.id, root)
}

// Set attaches a root-level annotation (tenant, digest, cached/forwarded
// flags...); root annotations appear in the request-summary log line and
// in /debug/traces.
func (tr *Trace) Set(key string, value any) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.attrs = append(tr.attrs, Attr{key, value})
	tr.mu.Unlock()
}

// StartSpan opens a child span of the root. End it with SpanRef.End; a
// span never Ended reports zero duration but still appears in the trace.
func (tr *Trace) StartSpan(name string) SpanRef {
	if tr == nil {
		return SpanRef{}
	}
	now := time.Now()
	tr.mu.Lock()
	idx := len(tr.spans)
	tr.spans = append(tr.spans, span{
		name:   name,
		id:     NewSpanID(),
		parent: tr.spans[0].id,
		start:  now.Sub(tr.start),
		open:   true,
	})
	tr.mu.Unlock()
	return SpanRef{tr: tr, idx: idx, start: now}
}

// End closes the span with its measured duration.
func (s SpanRef) End() {
	if s.tr == nil {
		return
	}
	d := time.Since(s.start)
	s.tr.mu.Lock()
	sp := &s.tr.spans[s.idx]
	if sp.open {
		sp.dur, sp.open = d, false
	}
	s.tr.mu.Unlock()
}

// Set attaches an annotation to the span.
func (s SpanRef) Set(key string, value any) {
	if s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	sp := &s.tr.spans[s.idx]
	sp.attrs = append(sp.attrs, Attr{key, value})
	s.tr.mu.Unlock()
}

// SpanID returns the span's id as hex, or "" for the zero SpanRef.
func (s SpanRef) SpanID() string {
	if s.tr == nil {
		return ""
	}
	s.tr.mu.Lock()
	id := s.tr.spans[s.idx].id
	s.tr.mu.Unlock()
	return id.String()
}

// Finish seals the trace with the response status, pushes it into the
// recorder's ring, and emits the request-summary log line (at Warn with a
// "slow request" message when the duration crosses the recorder's slow
// threshold). Idempotent; only the first call records.
func (tr *Trace) Finish(status int) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.done {
		tr.mu.Unlock()
		return
	}
	tr.done = true
	tr.status = status
	tr.dur = time.Since(tr.start)
	tr.spans[0].dur = tr.dur
	tr.spans[0].open = false
	tr.mu.Unlock()
	tr.rec.finish(tr)
}

// Options parameterizes a Recorder. The zero value is usable: a 256-trace
// ring, a 1 s slow threshold, and a discarded log stream.
type Options struct {
	// Logger receives the per-request summary lines and slow-request
	// warnings (nil = slog.DiscardHandler).
	Logger *slog.Logger
	// SlowThreshold marks requests at least this slow as "slow request"
	// warnings (0 = 1 s, negative = slow logging disabled).
	SlowThreshold time.Duration
	// RingSize bounds the completed traces retained for /debug/traces
	// (0 = 256).
	RingSize int
}

// archived is one completed trace in the ring: its duration (for the
// min_ms filter) and the pre-rendered TraceJSON bytes. Traces are
// rendered once at Finish so the ring retains flat byte slices instead of
// live *Trace graphs — a ring of hundreds of small pointer-bearing
// objects (spans, attr slices, boxed values) taxes every GC mark phase of
// a busy server, while opaque bytes cost the collector only a header.
type archived struct {
	dur  time.Duration
	data []byte
}

// Recorder collects completed traces in a bounded ring and owns the
// request-summary log stream. A nil *Recorder is a valid "tracing off"
// recorder: StartTrace returns nil and every downstream call no-ops.
type Recorder struct {
	log  *slog.Logger
	slow time.Duration

	mu        sync.Mutex
	ring      []archived // circular, zero until written
	next      int
	total     uint64
	slowTotal uint64
}

// NewRecorder builds a Recorder from opts.
func NewRecorder(opts Options) *Recorder {
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.DiscardHandler)
	}
	if opts.SlowThreshold == 0 {
		opts.SlowThreshold = time.Second
	}
	if opts.RingSize <= 0 {
		opts.RingSize = 256
	}
	return &Recorder{
		log:  opts.Logger,
		slow: opts.SlowThreshold,
		ring: make([]archived, opts.RingSize),
	}
}

// Logger returns the recorder's log stream (never nil on a non-nil
// recorder), for operational lines that should share the request stream.
func (r *Recorder) Logger() *slog.Logger {
	if r == nil {
		return slog.New(slog.DiscardHandler)
	}
	return r.log
}

// StartTrace begins a trace named after the request (e.g. "POST
// /v1/solve"). remote is the incoming traceparent header value; when
// valid, the new trace joins the remote trace id with the remote span as
// the root's parent — the fleet-forward correlation path. Returns nil on
// a nil recorder.
func (r *Recorder) StartTrace(name, remote string) *Trace {
	if r == nil {
		return nil
	}
	tr := &Trace{rec: r, start: time.Now(), name: name}
	if t, parent, ok := ParseTraceparent(remote); ok {
		tr.id, tr.remoteParent = t, parent
	} else {
		tr.id = NewTraceID()
	}
	tr.spans = make([]span, 1, 8)
	tr.spans[0] = span{name: name, id: NewSpanID(), parent: tr.remoteParent, open: true}
	return tr
}

// finish archives a sealed trace and logs its summary line.
func (r *Recorder) finish(tr *Trace) {
	slow := r.slow > 0 && tr.dur >= r.slow
	data := renderTrace(tr)
	r.mu.Lock()
	r.ring[r.next] = archived{dur: tr.dur, data: data}
	r.next = (r.next + 1) % len(r.ring)
	r.total++
	if slow {
		r.slowTotal++
	}
	r.mu.Unlock()

	msg, level := "request", slog.LevelInfo
	if slow {
		msg, level = "slow request", slog.LevelWarn
	}
	if !r.log.Enabled(context.Background(), level) {
		return // skip the whole line construction, not just the write
	}
	tr.mu.Lock()
	stages := stageString(tr.spans)
	attrs := make([]slog.Attr, 0, len(tr.attrs)+5)
	attrs = append(attrs,
		slog.String("trace", tr.id.String()),
		slog.String("req", tr.name),
		slog.Int("status", tr.status),
		slog.Float64("dur_ms", float64(tr.dur)/float64(time.Millisecond)),
	)
	for _, a := range tr.attrs {
		attrs = append(attrs, slog.Any(a.Key, a.Value))
	}
	if stages != "" {
		attrs = append(attrs, slog.String("stages", stages))
	}
	tr.mu.Unlock()
	r.log.LogAttrs(context.Background(), level, msg, attrs...)
}

// stageString compacts the closed child spans into "name:1.2ms name:0.1ms"
// for the summary line. Called with tr.mu held.
func stageString(spans []span) string {
	var b strings.Builder
	for i := 1; i < len(spans); i++ {
		if spans[i].open {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(spans[i].name)
		b.WriteByte(':')
		b.WriteString(formatMS(spans[i].dur))
	}
	return b.String()
}

// formatMS renders a duration as fractional milliseconds with fixed
// microsecond precision, without fmt (the summary line is per-request).
func formatMS(d time.Duration) string {
	us := d.Microseconds()
	var buf [24]byte
	b := appendInt(buf[:0], us/1000)
	b = append(b, '.')
	frac := us % 1000
	b = append(b, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10), 'm', 's')
	return string(b)
}

func appendInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

// Totals reports how many traces have completed and how many crossed the
// slow threshold — the traces_total / slow_requests_total gauges.
func (r *Recorder) Totals() (total, slow uint64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total, r.slowTotal
}

// TraceJSON is the wire shape of one completed trace in GET /debug/traces.
type TraceJSON struct {
	Trace      string         `json:"trace"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Status     int            `json:"status"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Spans      []SpanJSON     `json:"spans"`
}

// SpanJSON is one span of a TraceJSON.
type SpanJSON struct {
	Name       string         `json:"name"`
	Span       string         `json:"span"`
	Parent     string         `json:"parent,omitempty"`
	StartMS    float64        `json:"start_ms"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// renderTrace marshals one sealed trace into its TraceJSON bytes — the
// form the ring retains. Called once per request from finish; spans of a
// still-running hedge arm may be open here and render with zero duration.
// The JSON is appended by hand (no maps, no reflection): this runs on
// every request, and encoding/json over map-shaped attrs costs ~10 µs and
// dozens of allocations where direct appends cost one buffer.
func renderTrace(tr *Trace) []byte {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	b := make([]byte, 0, 384+128*len(tr.spans))
	b = append(b, `{"trace":"`...)
	b = appendHex(b, tr.id[:])
	b = append(b, `","name":`...)
	b = appendJSONString(b, tr.name)
	b = append(b, `,"start":"`...)
	b = tr.start.AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","duration_ms":`...)
	b = appendMSFloat(b, tr.dur)
	b = append(b, `,"status":`...)
	b = strconv.AppendInt(b, int64(tr.status), 10)
	b = appendAttrs(b, tr.attrs)
	b = append(b, `,"spans":[`...)
	for i := range tr.spans {
		sp := &tr.spans[i]
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"name":`...)
		b = appendJSONString(b, sp.name)
		b = append(b, `,"span":"`...)
		b = appendHex(b, sp.id[:])
		b = append(b, '"')
		if !sp.parent.IsZero() {
			b = append(b, `,"parent":"`...)
			b = appendHex(b, sp.parent[:])
			b = append(b, '"')
		}
		b = append(b, `,"start_ms":`...)
		b = appendMSFloat(b, sp.start)
		b = append(b, `,"duration_ms":`...)
		b = appendMSFloat(b, sp.dur)
		b = appendAttrs(b, sp.attrs)
		b = append(b, '}')
	}
	return append(b, `]}`...)
}

// appendHex appends the lowercase hex of id.
func appendHex(b, id []byte) []byte {
	var d [32]byte
	n := hex.Encode(d[:], id)
	return append(b, d[:n]...)
}

// appendMSFloat appends a duration as fractional milliseconds.
func appendMSFloat(b []byte, d time.Duration) []byte {
	return strconv.AppendFloat(b, float64(d)/float64(time.Millisecond), 'g', -1, 64)
}

// appendAttrs appends `,"attrs":{...}`, or nothing when empty — matching
// the omitempty of TraceJSON.Attrs so Snapshot round-trips.
func appendAttrs(b []byte, attrs []Attr) []byte {
	if len(attrs) == 0 {
		return b
	}
	b = append(b, `,"attrs":{`...)
	for i, a := range attrs {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, a.Key)
		b = append(b, ':')
		b = appendAttrValue(b, a.Value)
	}
	return append(b, '}')
}

// appendAttrValue renders the handful of value types the handlers record;
// anything else goes through encoding/json.
func appendAttrValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return appendJSONString(b, x)
	case bool:
		if x {
			return append(b, "true"...)
		}
		return append(b, "false"...)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	default:
		data, err := json.Marshal(v)
		if err != nil {
			return append(b, `"unrenderable"`...)
		}
		return append(b, data...)
	}
}

// appendJSONString appends s as a JSON string. Attr keys and values are
// printable ASCII in practice, which appends directly; anything needing
// escapes takes the encoding/json slow path.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			data, _ := json.Marshal(s)
			return append(b, data...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// Snapshot returns the retained completed traces, newest first, skipping
// those faster than minDur. Safe against concurrent Finish calls.
func (r *Recorder) Snapshot(minDur time.Duration) []TraceJSON {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	rendered := make([][]byte, 0, len(r.ring))
	for i := 1; i <= len(r.ring); i++ {
		// Walk backwards from the most recent write.
		a := r.ring[(r.next-i+len(r.ring))%len(r.ring)]
		if a.data != nil && a.dur >= minDur {
			rendered = append(rendered, a.data)
		}
	}
	r.mu.Unlock()

	out := make([]TraceJSON, 0, len(rendered))
	for _, data := range rendered {
		var tj TraceJSON
		if json.Unmarshal(data, &tj) == nil {
			out = append(out, tj)
		}
	}
	return out
}

// Context plumbing. The server carries the *Trace; clients carry a
// pre-rendered traceparent value for outgoing headers.

type traceKey struct{}
type tpKey struct{}

// ContextWithTrace attaches tr to ctx.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFromContext returns the request's trace, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// ContextWithTraceparent attaches an outgoing traceparent header value.
func ContextWithTraceparent(ctx context.Context, tp string) context.Context {
	return context.WithValue(ctx, tpKey{}, tp)
}

// TraceparentFromContext returns the outgoing traceparent value, or "".
func TraceparentFromContext(ctx context.Context) string {
	tp, _ := ctx.Value(tpKey{}).(string)
	return tp
}

// EnsureTraceparent returns ctx carrying a traceparent, generating a fresh
// one when absent — the client's per-logical-call entry point, so retries
// and hedge arms of one call share a trace id.
func EnsureTraceparent(ctx context.Context) (context.Context, string) {
	if tp := TraceparentFromContext(ctx); tp != "" {
		return ctx, tp
	}
	tp := NewTraceparent()
	return ContextWithTraceparent(ctx, tp), tp
}
