package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format rendered by WriteProm.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promGauges names the expvar entries that are point-in-time levels
// rather than monotone totals, so WriteProm can emit the right # TYPE.
// Anything not listed (and not a histogram map) is a counter.
var promGauges = map[string]bool{
	"in_flight_runs":  true,
	"queue_depth":     true,
	"max_concurrent":  true,
	"max_queue":       true,
	"cache_len":       true,
	"sessions_active": true,
	"draining":        true,
	"uptime_seconds":  true,
	"solve_ewma_ms":   true,
	"fleet_peers":     true,
	"fleet_replicas":  true,
	"peer_alive":      true,
	"peer_suspect":    true,
	"peer_dead":       true,
}

// WriteProm renders an expvar metrics map in the Prometheus text
// exposition format (version 0.0.4). The mapping is mechanical so metric
// names stay identical to the JSON exposition:
//
//   - expvar.Int / expvar.Float / numeric expvar.Func → one sample, typed
//     counter unless the name is a known gauge;
//   - a nested expvar.Map holding "le_*" bins plus "count" and "sum_ms"
//     (the latencyHist shape) → a histogram with *cumulative* _bucket
//     series, the "le_inf" overflow bin folded into le="+Inf" so
//     bucket{+Inf} == _count as Prometheus requires;
//   - a map[string]int64-valued expvar.Func → one labeled series per key
//     (tenant_shed_by_tenant{tenant="..."});
//   - a string-valued expvar.Func (go_version) → an info-style gauge
//     carrying the string as a label with value 1.
//
// Unknown shapes are skipped rather than guessed at, so adding an expvar
// entry can never corrupt the scrape.
func WriteProm(w io.Writer, m *expvar.Map) {
	m.Do(func(kv expvar.KeyValue) {
		name := promName(kv.Key)
		switch v := kv.Value.(type) {
		case *expvar.Int:
			writeSample(w, name, promType(kv.Key), float64(v.Value()))
		case *expvar.Float:
			writeSample(w, name, promType(kv.Key), v.Value())
		case *expvar.Map:
			writeHistogram(w, name, v)
		case expvar.Func:
			writeFuncSample(w, name, kv.Key, v.Value())
		}
	})
}

// promName sanitizes an expvar key into a Prometheus metric name. The
// server's keys are already [a-z_]+, so this is a defensive identity map.
func promName(k string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		}
		return '_'
	}, k)
}

func promType(key string) string {
	if promGauges[key] {
		return "gauge"
	}
	return "counter"
}

func writeSample(w io.Writer, name, typ string, val float64) {
	fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", name, typ, name, formatFloat(val))
}

// writeFuncSample renders an expvar.Func value: numbers become plain
// samples, string-to-number maps become labeled series, and strings
// become info gauges.
func writeFuncSample(w io.Writer, name, key string, val any) {
	switch v := val.(type) {
	case int:
		writeSample(w, name, promType(key), float64(v))
	case int64:
		writeSample(w, name, promType(key), float64(v))
	case uint64:
		writeSample(w, name, promType(key), float64(v))
	case float64:
		writeSample(w, name, promType(key), v)
	case string:
		fmt.Fprintf(w, "# TYPE %s gauge\n%s{version=%s} 1\n", name, name, strconv.Quote(v))
	case map[string]int64:
		keys := make([]string, 0, len(v))
		for k := range v {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{tenant=%s} %s\n", name, strconv.Quote(k), formatFloat(float64(v[k])))
		}
	}
}

// writeHistogram renders a latencyHist-shaped expvar.Map ("le_<bound>"
// disjoint bins + "count" + "sum_ms") as a Prometheus histogram. The
// stored bins are disjoint; Prometheus buckets are cumulative, so each
// bucket sums every bin at or below its bound, and the "le_inf" overflow
// bin is folded into le="+Inf" — the invariant bucket{+Inf} == _count
// holds by construction.
func writeHistogram(w io.Writer, name string, m *expvar.Map) {
	type bin struct {
		bound float64
		count int64
	}
	var (
		bins     []bin
		overflow int64
		count    int64
		sum      float64
		isHist   bool
	)
	m.Do(func(kv expvar.KeyValue) {
		switch {
		case kv.Key == "le_inf":
			if v, ok := kv.Value.(*expvar.Int); ok {
				overflow = v.Value()
				isHist = true
			}
		case strings.HasPrefix(kv.Key, "le_"):
			b, err := strconv.ParseFloat(kv.Key[3:], 64)
			v, ok := kv.Value.(*expvar.Int)
			if err == nil && ok {
				bins = append(bins, bin{b, v.Value()})
				isHist = true
			}
		case kv.Key == "count":
			if v, ok := kv.Value.(*expvar.Int); ok {
				count = v.Value()
			}
		case kv.Key == "sum_ms":
			if v, ok := kv.Value.(*expvar.Float); ok {
				sum = v.Value()
			}
		}
	})
	if !isHist {
		return
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i].bound < bins[j].bound })
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum int64
	for _, b := range bins {
		cum += b.count
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b.bound), cum)
	}
	cum += overflow
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(sum))
	fmt.Fprintf(w, "%s_count %d\n", name, count)
}

// formatFloat renders a value the way Prometheus expects: integers
// without an exponent or trailing zeros, everything else shortest-form.
func formatFloat(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
