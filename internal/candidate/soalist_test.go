package candidate

import (
	"math/rand"
	"testing"
)

// soaPair couples one linked list and one SoA list, each arena-backed by its
// own arena so the decision-record sequences of the two backends stay in
// lockstep and placements can be compared through Fill.
type soaPair struct {
	arL, arS *Arena
	ll       *List
	sl       *SoAList
}

func newSoaPair() *soaPair {
	p := &soaPair{arL: NewArena(), arS: NewArena()}
	p.reset()
	return p
}

// reset rewinds both arenas and starts both backends from one empty list —
// the state of a fresh engine run, so iterating reset exercises the
// recycle/reuse path of both allocators.
func (p *soaPair) reset() {
	p.arL.Reset()
	p.arS.Reset()
	p.ll = p.arL.NewList()
	p.sl = p.arS.NewSoAList()
}

// seed replaces the content of both lists with the same strictly increasing
// pairs, recording one sink decision per candidate in each arena.
func (p *soaPair) seed(pairs []Pair) {
	p.ll.Recycle()
	p.sl.Recycle()
	for i, pr := range pairs {
		p.ll.pushBack(p.ll.newNode(pr.Q, pr.C, p.arL.SinkDec(i)))
		p.sl.q = append(p.sl.q, pr.Q)
		p.sl.c = append(p.sl.c, pr.C)
		p.sl.dec = append(p.sl.dec, p.arS.SinkDec(i))
	}
}

// check asserts both backends hold the identical candidate sequence and
// pass their invariant validators.
func (p *soaPair) check(t *testing.T, what string) {
	t.Helper()
	if err := p.ll.Validate(); err != nil {
		t.Fatalf("%s: linked: %v", what, err)
	}
	if err := p.sl.Validate(); err != nil {
		t.Fatalf("%s: soa: %v", what, err)
	}
	lp, sp := p.ll.Pairs(), p.sl.Pairs()
	if len(lp) != len(sp) {
		t.Fatalf("%s: lengths differ %d vs %d\n%v\n%v", what, len(lp), len(sp), lp, sp)
	}
	for i := range lp {
		if lp[i] != sp[i] {
			t.Fatalf("%s: candidate %d differs: %v vs %v", what, i, lp[i], sp[i])
		}
	}
}

// randIncreasing returns 1..maxLen strictly increasing (Q, C) pairs.
func randIncreasing(rng *rand.Rand, maxLen int) []Pair {
	k := 1 + rng.Intn(maxLen)
	out := make([]Pair, k)
	q, c := rng.Float64()*100-200, rng.Float64()*5
	for i := range out {
		out[i] = Pair{q, c}
		q += 0.01 + rng.Float64()*50
		c += 0.01 + rng.Float64()*10
	}
	return out
}

// TestSoAListMatchesLinkedList drives both representations through
// randomized interleavings of the full engine operation set — AddWire,
// Merge, InsertOne, MergeBetas, ConvexPruneInPlace — across repeated arena
// Reset cycles, and demands identical candidate sequences, identical prune
// counts, and identical reconstructed placements at every step.
func TestSoAListMatchesLinkedList(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := newSoaPair()
	place := make([]int, 64)
	placeS := make([]int, 64)
	for iter := 0; iter < 300; iter++ {
		p.reset() // exercise slab rewind + reuse every iteration
		p.seed(randIncreasing(rng, 25))
		for op := 0; op < 14; op++ {
			switch rng.Intn(5) {
			case 0:
				r, c := rng.Float64()*2, rng.Float64()*20
				if rng.Intn(4) == 0 {
					r = 0 // exercise the shear-only fast path
				}
				p.ll.AddWire(r, c)
				p.sl.AddWire(r, c)
			case 1:
				q, c := rng.Float64()*400-200, rng.Float64()*200
				okL := p.ll.InsertOne(q, c, p.arL.SinkDec(9))
				okS := p.sl.InsertOne(q, c, p.arS.SinkDec(9))
				if okL != okS {
					t.Fatalf("iter %d op %d: InsertOne disagreement (%v vs %v)", iter, op, okL, okS)
				}
			case 2:
				other := randIncreasing(rng, 10)
				ll2 := p.arL.NewList()
				sl2 := p.arS.NewSoAList()
				for i, pr := range other {
					ll2.pushBack(ll2.newNode(pr.Q, pr.C, p.arL.SinkDec(32+i)))
					sl2.q = append(sl2.q, pr.Q)
					sl2.c = append(sl2.c, pr.C)
					sl2.dec = append(sl2.dec, p.arS.SinkDec(32+i))
				}
				ml := p.ll.MergeWith(ll2)
				ms := p.sl.MergeWith(sl2)
				p.ll.Free()
				ll2.Free()
				p.sl.Free()
				sl2.Free()
				p.ll, p.sl = ml, ms
			case 3:
				nb := 1 + rng.Intn(6)
				betasL := make([]Beta, nb)
				betasS := make([]Beta, nb)
				c := rng.Float64() * 10
				q := rng.Float64()*200 - 100
				for i := range betasL {
					b := Beta{Q: q, C: c, Buffer: i % 3, Vertex: 40 + i}
					betasL[i], betasS[i] = b, b
					c += 0.01 + rng.Float64()*20
					q += 0.01 + rng.Float64()*40
				}
				// Separate beta slices: decisions materialize lazily into
				// each backend's own arena.
				p.ll.MergeBetas(betasL)
				p.sl.MergeBetas(betasS)
			default:
				prunedL := p.ll.ConvexPruneInPlace()
				prunedS := p.sl.ConvexPruneInPlace()
				if prunedL != prunedS {
					t.Fatalf("iter %d op %d: prune counts differ %d vs %d", iter, op, prunedL, prunedS)
				}
			}
			p.check(t, "after op")
		}
		// Hull agreement on the final state.
		hl, hs := &Hull{}, &Hull{}
		p.ll.AppendHullInto(hl)
		p.sl.AppendHullInto(hs)
		if hl.Len() != hs.Len() {
			t.Fatalf("iter %d: hull sizes %d vs %d", iter, hl.Len(), hs.Len())
		}
		for i := range hl.Q {
			if hl.Q[i] != hs.Q[i] || hl.C[i] != hs.C[i] {
				t.Fatalf("iter %d: hull point %d differs", iter, i)
			}
			// The two arenas allocate decisions in lockstep, so the hull
			// decision references must agree exactly across backends.
			dl, _ := p.ll.HullDec(hl, i, 0)
			ds, _ := p.sl.HullDec(hs, i, 0)
			if dl != ds {
				t.Fatalf("iter %d: hull decision %d differs: %d vs %d", iter, i, dl, ds)
			}
		}
		// Best-candidate and reconstruction agreement for a random R.
		r := rng.Float64() * 10
		ql, cl, dl, okL := p.ll.Best(r)
		qs, cs, ds, okS := p.sl.Best(r)
		if okL != okS || ql != qs || cl != cs {
			t.Fatalf("iter %d: Best(%g) differs: (%g,%g,%v) vs (%g,%g,%v)", iter, r, ql, cl, okL, qs, cs, okS)
		}
		for i := range place {
			place[i], placeS[i] = -1, -1
		}
		p.arL.Fill(dl, place)
		p.arS.Fill(ds, placeS)
		for i := range place {
			if place[i] != placeS[i] {
				t.Fatalf("iter %d: reconstructed placements differ at vertex %d: %d vs %d", iter, i, place[i], placeS[i])
			}
		}
	}
}

// TestSoAHullMatchesLinked checks the read-only hull builders agree with
// the node-pointer HullView on lists the backends did not construct
// themselves.
func TestSoAHullMatchesLinked(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 200; iter++ {
		base := randList(rng, 40).Pairs()
		ll := FromPairs(base)
		sl := SoAFromPairs(base)
		hullL := ll.HullView()
		hullS := sl.HullIdx()
		if len(hullL) != len(hullS) {
			t.Fatalf("iter %d: hull sizes %d vs %d", iter, len(hullL), len(hullS))
		}
		for i := range hullS {
			if got := sl.At(hullS[i]); got.Q != hullL[i].Q || got.C != hullL[i].C {
				t.Fatalf("iter %d: hull point %d differs", iter, i)
			}
		}
		// Destructive pruning must retain exactly the hull on both sides.
		prunedL := ll.ConvexPruneInPlace()
		prunedS := sl.ConvexPruneInPlace()
		if prunedL != prunedS || ll.Len() != sl.Len() || sl.Len() != len(hullS) {
			t.Fatalf("iter %d: destructive prune diverges (pruned %d vs %d, kept %d vs %d, hull %d)",
				iter, prunedL, prunedS, ll.Len(), sl.Len(), len(hullS))
		}
	}
}

func TestSoAListBestForRMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 200; iter++ {
		base := randList(rng, 30).Pairs()
		ll := FromPairs(base)
		sl := SoAFromPairs(base)
		for trial := 0; trial < 10; trial++ {
			r := rng.Float64() * 10
			nd := ll.BestForR(r)
			i := sl.BestForR(r)
			if nd.Q != sl.At(i).Q || nd.C != sl.At(i).C {
				t.Fatalf("iter %d r=%g: (%g,%g) vs %v", iter, r, nd.Q, nd.C, sl.At(i))
			}
		}
	}
}

// TestSoAArenaRecycleReuse mirrors TestArenaResetReleasesAndReuses for the
// SoA backend: after one cold cycle, a build–wire–merge–beta–prune–fill
// cycle through a warm arena performs zero heap allocations.
func TestSoAArenaRecycleReuse(t *testing.T) {
	ar := NewArena()
	betas := make([]Beta, 1)
	p := make([]int, 3)
	run := func() float64 {
		ar.Reset()
		a := ar.NewSoASink(50, 1, 1)
		b := ar.NewSoASink(60, 2, 2)
		m := MergeSoA(a, b)
		a.Free()
		b.Free()
		m.AddWire(0.1, 2)
		betas[0] = Beta{Q: 100, C: 0.5, Buffer: 1, Vertex: 0, SrcDec: m.DecAt(0), Dec: 0}
		m.MergeBetas(betas)
		m.ConvexPruneInPlace()
		p[0], p[1], p[2] = -1, -1, -1
		ar.Fill(m.DecAt(0), p)
		if p[0] != 1 {
			t.Fatalf("fill lost the buffer decision: %v", p)
		}
		q := m.At(0).Q
		m.Free()
		return q
	}
	want := run()
	allocs := testing.AllocsPerRun(100, func() {
		if got := run(); got != want {
			t.Fatalf("warm run diverged: %g != %g", got, want)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("warm SoA arena cycle allocates %.1f times per run, want 0", allocs)
	}
}

func TestSoAListBasics(t *testing.T) {
	ar := NewArena()
	s := ar.NewSoASink(100, 5, 3)
	if s.Len() != 1 || s.At(0) != (Pair{100, 5}) {
		t.Fatalf("sink SoA list wrong: %+v", s)
	}
	if dec := ar.Decision(s.DecAt(0)); dec.Vertex != 3 || dec.Kind != DecSink {
		t.Fatalf("decision wrong: %+v", dec)
	}
	if (&SoAList{}).BestForR(1) != -1 {
		t.Fatal("empty BestForR must return -1")
	}
	if _, _, _, ok := (&SoAList{}).Best(1); ok {
		t.Fatal("empty Best must report !ok")
	}
}

func TestSoAFromPairsPanicsOnDisorder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SoAFromPairs([]Pair{{1, 1}, {0, 2}})
}

func TestBackendParseAndString(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Backend
	}{{"", BackendDefault}, {"default", BackendDefault}, {"list", BackendList}, {"soa", BackendSoA}} {
		got, err := ParseBackend(tc.name)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBackend(%q) = %v, %v", tc.name, got, err)
		}
	}
	if _, err := ParseBackend("mystery"); err == nil {
		t.Fatal("ParseBackend accepted an unknown name")
	}
	if BackendList.String() != "list" || BackendSoA.String() != "soa" || BackendDefault.String() != "default" {
		t.Fatal("Backend strings wrong")
	}
	if BackendDefault.Resolve() == BackendDefault {
		t.Fatal("BackendDefault must resolve to a concrete backend")
	}
	if BackendList.Resolve() != BackendList || BackendSoA.Resolve() != BackendSoA {
		t.Fatal("explicit backends must resolve to themselves")
	}
}
