package candidate

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// refNonredundant is the O(k²)-spirited reference implementation of
// dominance pruning: sort by C ascending (Q descending on ties), keep
// strictly increasing Q.
func refNonredundant(ps []Pair) []Pair {
	s := append([]Pair(nil), ps...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].C != s[j].C {
			return s[i].C < s[j].C
		}
		return s[i].Q > s[j].Q
	})
	var out []Pair
	for _, p := range s {
		if len(out) == 0 || p.Q > out[len(out)-1].Q {
			out = append(out, p)
		}
	}
	return out
}

// randList builds a random nonredundant list of up to maxLen candidates.
func randList(rng *rand.Rand, maxLen int) *List {
	k := 1 + rng.Intn(maxLen)
	raw := make([]Pair, k)
	q, c := rng.Float64()*100-200, rng.Float64()*5
	for i := range raw {
		raw[i] = Pair{q, c}
		q += 0.01 + rng.Float64()*50
		c += 0.01 + rng.Float64()*10
	}
	return FromPairs(raw)
}

func pairsEqual(t *testing.T, got, want []Pair, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d candidates %v, want %d %v", what, len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: candidate %d: got %v want %v", what, i, got[i], want[i])
		}
	}
}

func TestNewSink(t *testing.T) {
	ar := NewArena()
	l := ar.NewSink(120, 3.5, 7)
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	nd := l.Front()
	if nd.Q != 120 || nd.C != 3.5 {
		t.Fatalf("candidate = (%g, %g), want (120, 3.5)", nd.Q, nd.C)
	}
	if dec := ar.Decision(nd.Dec); nd.Dec == 0 || dec.Kind != DecSink || dec.Vertex != 7 {
		t.Fatalf("decision = %+v, want sink at vertex 7", dec)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddWireSimple(t *testing.T) {
	l := NewArena().NewSink(100, 10, 1)
	l.AddWire(2, 4) // delay = 2*(4/2 + 10) = 24
	nd := l.Front()
	if nd.Q != 76 || nd.C != 14 {
		t.Fatalf("after wire: (%g, %g), want (76, 14)", nd.Q, nd.C)
	}
}

func TestAddWirePrunesReversals(t *testing.T) {
	// High-C candidate pays more wire delay and becomes dominated.
	l := FromPairs([]Pair{{0, 0}, {10, 1}, {11, 100}})
	l.AddWire(1, 0) // Q -= C
	got := l.Pairs()
	want := []Pair{{0, 0}, {9, 1}} // (11-100, 100) = (-89,100) dominated
	pairsEqual(t, got, want, "AddWire")
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddWireZeroResistance(t *testing.T) {
	l := FromPairs([]Pair{{0, 0}, {10, 1}})
	l.AddWire(0, 5)
	pairsEqual(t, l.Pairs(), []Pair{{0, 5}, {10, 6}}, "zero-R wire")
}

func TestAddWireProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 300; iter++ {
		l := randList(rng, 40)
		before := l.Pairs()
		r := rng.Float64() * 2
		c := rng.Float64() * 20
		l.AddWire(r, c)
		if err := l.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		// Reference: transform every candidate, dominance-filter.
		ref := make([]Pair, len(before))
		for i, p := range before {
			ref[i] = Pair{p.Q - WireDelay(r, c, p.C), p.C + c}
		}
		pairsEqual(t, l.Pairs(), refNonredundant(ref), "AddWire vs reference")
	}
}

func TestMergeSimple(t *testing.T) {
	a := FromPairs([]Pair{{0, 1}, {10, 2}})
	b := FromPairs([]Pair{{5, 1}})
	got := Merge(a, b).Pairs()
	// q=0: (0, 2); q=5: best a with Q>=5 is (10,2) -> (5, 3)
	pairsEqual(t, got, []Pair{{0, 2}, {5, 3}}, "merge")
}

func TestMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 300; iter++ {
		a := randList(rng, 25)
		b := randList(rng, 25)
		ap, bp := a.Pairs(), b.Pairs()
		m := Merge(a, b)
		if err := m.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if m.Len() > len(ap)+len(bp) {
			t.Fatalf("iter %d: merge of %d+%d produced %d candidates", iter, len(ap), len(bp), m.Len())
		}
		// Reference: full cross product, then dominance filter.
		ref := make([]Pair, 0, len(ap)*len(bp))
		for _, x := range ap {
			for _, y := range bp {
				ref = append(ref, Pair{math.Min(x.Q, y.Q), x.C + y.C})
			}
		}
		pairsEqual(t, m.Pairs(), refNonredundant(ref), "Merge vs cross-product reference")
	}
}

func TestMergeDecisionsReferenceBothBranches(t *testing.T) {
	ar := NewArena()
	a := ar.NewSink(50, 1, 3)
	b := ar.NewSink(60, 2, 4)
	m := Merge(a, b)
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	dec := ar.Decision(m.Front().Dec)
	if dec.Kind != DecMerge || dec.A == 0 || dec.B == 0 {
		t.Fatalf("decision %+v does not join two branches", dec)
	}
	p := []int{-1, -1, -1, -1, -1}
	ar.Fill(m.Front().Dec, p)
	for i, v := range p {
		if v != -1 {
			t.Fatalf("p[%d] = %d, want no buffers", i, v)
		}
	}
}

func TestInsertOneCases(t *testing.T) {
	base := []Pair{{0, 0}, {10, 10}, {20, 20}}
	cases := []struct {
		name string
		q, c float64
		want []Pair
		ok   bool
	}{
		{"dominated by cheaper", 5, 15, base, false},
		{"dominates middle", 15, 5, []Pair{{0, 0}, {15, 5}, {20, 20}}, true},
		{"dominates tail", 25, 15, []Pair{{0, 0}, {10, 10}, {25, 15}}, true},
		{"front insert", 1, -1, []Pair{{1, -1}, {10, 10}, {20, 20}}, true},
		{"back insert", 30, 30, []Pair{{0, 0}, {10, 10}, {20, 20}, {30, 30}}, true},
		{"equal C better Q", 12, 10, []Pair{{0, 0}, {12, 10}, {20, 20}}, true},
		{"equal C worse Q", 8, 10, base, false},
		{"exact duplicate", 10, 10, base, false},
		{"dominates everything", 99, -5, []Pair{{99, -5}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := FromPairs(base)
			ok := l.InsertOne(tc.q, tc.c, 0)
			if ok != tc.ok {
				t.Fatalf("InsertOne returned %v, want %v", ok, tc.ok)
			}
			pairsEqual(t, l.Pairs(), tc.want, "list after insert")
			if err := l.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestInsertOneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 300; iter++ {
		l := randList(rng, 30)
		before := l.Pairs()
		q := rng.Float64()*400 - 300
		c := rng.Float64() * 400
		l.InsertOne(q, c, 0)
		if err := l.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		pairsEqual(t, l.Pairs(), refNonredundant(append(before, Pair{q, c})), "InsertOne vs reference")
	}
}

func TestHullViewSlopesStrictlyDecrease(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 300; iter++ {
		l := randList(rng, 40)
		hull := l.HullView()
		if len(hull) == 0 || hull[0] != l.Front() || hull[len(hull)-1] != l.Back() {
			t.Fatalf("iter %d: hull must keep extreme candidates", iter)
		}
		for i := 2; i < len(hull); i++ {
			s1 := (hull[i-1].Q - hull[i-2].Q) / (hull[i-1].C - hull[i-2].C)
			s2 := (hull[i].Q - hull[i-1].Q) / (hull[i].C - hull[i-1].C)
			if !(s1 > s2) {
				t.Fatalf("iter %d: slopes not strictly decreasing: %g then %g", iter, s1, s2)
			}
		}
	}
}

// TestHullKeepsBestForAnyR is the paper's Lemma 3: convex pruning never
// removes the candidate maximizing Q − R·C (ties toward min C), for any R.
func TestHullKeepsBestForAnyR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		l := randList(rng, 40)
		hull := l.HullView()
		inHull := map[*Node]bool{}
		for _, nd := range hull {
			inHull[nd] = true
		}
		for trial := 0; trial < 20; trial++ {
			r := rng.Float64() * 20
			best := l.BestForR(r)
			if !inHull[best] {
				t.Fatalf("iter %d: best for R=%g at (%g,%g) was convex-pruned", iter, r, best.Q, best.C)
			}
		}
	}
}

// TestHullWalkMatchesLinearScan is the paper's Lemmas 1 & 4: walking a
// single monotone pointer over the hull with resistances in non-increasing
// order finds the same best candidates as full linear scans.
func TestHullWalkMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 200; iter++ {
		l := randList(rng, 40)
		hull := l.HullView()
		// Random non-increasing resistances.
		rs := make([]float64, 1+rng.Intn(30))
		for i := range rs {
			rs[i] = rng.Float64() * 10
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(rs)))
		p := 0
		prevC := math.Inf(-1)
		for _, r := range rs {
			for p+1 < len(hull) && hull[p+1].Q-r*hull[p+1].C > hull[p].Q-r*hull[p].C {
				p++
			}
			want := l.BestForR(r)
			if hull[p] != want {
				t.Fatalf("iter %d: walk found (%g,%g) for R=%g, scan found (%g,%g)",
					iter, hull[p].Q, hull[p].C, r, want.Q, want.C)
			}
			if hull[p].C < prevC {
				t.Fatalf("iter %d: best-candidate C went backwards (Lemma 1 violated)", iter)
			}
			prevC = hull[p].C
		}
	}
}

func TestConvexPruneInPlaceMatchesHullView(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		l := randList(rng, 40)
		hull := l.HullView()
		want := make([]Pair, len(hull))
		for i, nd := range hull {
			want[i] = Pair{nd.Q, nd.C}
		}
		before := l.Len()
		pruned := l.ConvexPruneInPlace()
		if pruned != before-len(want) {
			t.Fatalf("iter %d: reported %d pruned, want %d", iter, pruned, before-len(want))
		}
		pairsEqual(t, l.Pairs(), want, "destructive prune vs hull view")
		if err := l.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestNormalizeBetas(t *testing.T) {
	in := []Beta{{Q: 5, C: 1}, {Q: 3, C: 1}, {Q: 4, C: 2}, {Q: 9, C: 3}, {Q: 9, C: 4}}
	out := NormalizeBetas(in)
	want := []Pair{{5, 1}, {9, 3}}
	if len(out) != len(want) {
		t.Fatalf("got %d betas, want %d", len(out), len(want))
	}
	for i := range want {
		if (Pair{out[i].Q, out[i].C}) != want[i] {
			t.Fatalf("beta %d = (%g,%g), want %v", i, out[i].Q, out[i].C, want[i])
		}
	}
}

func TestNormalizeBetasPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsorted betas")
		}
	}()
	NormalizeBetas([]Beta{{Q: 1, C: 2}, {Q: 2, C: 1}})
}

func TestMergeBetasProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 300; iter++ {
		l := randList(rng, 30)
		before := l.Pairs()
		nb := 1 + rng.Intn(10)
		betas := make([]Beta, nb)
		c := rng.Float64() * 5
		q := rng.Float64()*200 - 100
		for i := range betas {
			betas[i] = Beta{Q: q, C: c}
			c += 0.01 + rng.Float64()*20
			q += 0.01 + rng.Float64()*40
		}
		all := append(append([]Pair(nil), before...), func() []Pair {
			ps := make([]Pair, nb)
			for i, b := range betas {
				ps[i] = Pair{b.Q, b.C}
			}
			return ps
		}()...)
		l.MergeBetas(betas)
		if err := l.Validate(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		pairsEqual(t, l.Pairs(), refNonredundant(all), "MergeBetas vs reference")
	}
}

func TestMergeBetasIntoEmptyList(t *testing.T) {
	l := &List{}
	l.MergeBetas([]Beta{{Q: 1, C: 1}, {Q: 2, C: 2}})
	pairsEqual(t, l.Pairs(), []Pair{{1, 1}, {2, 2}}, "betas into empty list")
}

// TestMergeBetasMatchesInsertOne: the O(k+b) pass and b sequential O(k)
// insertions compute the same set.
func TestMergeBetasMatchesInsertOne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 300; iter++ {
		base := randList(rng, 30).Pairs()
		nb := 1 + rng.Intn(8)
		betas := make([]Beta, nb)
		c := rng.Float64() * 10
		q := rng.Float64()*200 - 100
		for i := range betas {
			betas[i] = Beta{Q: q, C: c}
			c += 0.01 + rng.Float64()*15
			q += 0.01 + rng.Float64()*30
		}
		l1 := FromPairs(base)
		l1.MergeBetas(betas)
		l2 := FromPairs(base)
		for _, b := range betas {
			l2.InsertOne(b.Q, b.C, b.Dec)
		}
		pairsEqual(t, l1.Pairs(), l2.Pairs(), "MergeBetas vs InsertOne")
	}
}

// TestDestructivePruningCounterexample is the DESIGN.md §4 demonstration
// that the merge operation does not preserve convex hulls: destructively
// pruning the interior candidate (4,1) loses the better merged candidate.
func TestDestructivePruningCounterexample(t *testing.T) {
	mk := func() *List { return FromPairs([]Pair{{0, 0}, {4, 1}, {10, 2}}) }
	other := func() *List { return FromPairs([]Pair{{4, 0.5}}) }

	full := Merge(mk(), other())
	pairsEqual(t, full.Pairs(), []Pair{{0, 0.5}, {4, 1.5}}, "merge with full list")

	pruned := mk()
	if n := pruned.ConvexPruneInPlace(); n != 1 {
		t.Fatalf("expected (4,1) to be convex-pruned, got %d prunes", n)
	}
	lossy := Merge(pruned, other())
	pairsEqual(t, lossy.Pairs(), []Pair{{0, 0.5}, {4, 2.5}}, "merge with pruned list")
	// The surviving Q=4 candidate now carries 1 fF more: any upstream
	// resistance r loses r·1 ps of slack versus the exact answer.
}

func TestDecisionFillDeepChain(t *testing.T) {
	// A 200k-deep buffer chain must not overflow the stack, and must span
	// many arena slabs.
	const depth = 200_000
	ar := NewArena()
	dec := ar.SinkDec(0)
	for i := 1; i <= depth; i++ {
		dec = ar.BufferDec(i, i%3, dec)
	}
	p := make([]int, depth+1)
	for i := range p {
		p[i] = -1
	}
	ar.Fill(dec, p)
	for i := 1; i <= depth; i++ {
		if p[i] != i%3 {
			t.Fatalf("p[%d] = %d, want %d", i, p[i], i%3)
		}
	}
}

// TestArenaResetReleasesAndReuses: after Reset the arena hands out the same
// slab memory again, and a warm arena performs a whole build-merge-fill
// cycle without allocating.
func TestArenaResetReleasesAndReuses(t *testing.T) {
	ar := NewArena()
	betas := make([]Beta, 1)
	p := make([]int, 3)
	run := func() float64 {
		ar.Reset()
		a := ar.NewSink(50, 1, 1)
		b := ar.NewSink(60, 2, 2)
		m := Merge(a, b)
		a.Free()
		b.Free()
		betas[0] = Beta{Q: 100, C: 0.5, Buffer: 1, Vertex: 0, SrcDec: m.Front().Dec}
		m.MergeBetas(betas)
		p[0], p[1], p[2] = -1, -1, -1
		ar.Fill(m.Front().Dec, p)
		if p[0] != 1 {
			t.Fatalf("fill lost the buffer decision: %v", p)
		}
		return m.Front().Q
	}
	want := run()
	allocs := testing.AllocsPerRun(100, func() {
		if got := run(); got != want {
			t.Fatalf("warm run diverged: %g != %g", got, want)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("warm arena cycle allocates %.1f times per run, want 0", allocs)
	}
}

func TestFromPairsPanicsOnDisorder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromPairs([]Pair{{1, 1}, {0, 2}})
}

func TestValidateDetectsCorruption(t *testing.T) {
	l := FromPairs([]Pair{{0, 0}, {1, 1}})
	l.Front().Q = 5 // breaks strict Q order
	if err := l.Validate(); err == nil {
		t.Fatal("Validate accepted a corrupted list")
	}
	l2 := FromPairs([]Pair{{0, 0}})
	l2.Front().C = math.NaN()
	if err := l2.Validate(); err == nil {
		t.Fatal("Validate accepted NaN")
	}
}

// TestQuickNonredundantClosure uses testing/quick to fuzz arbitrary pair
// multisets through FromPairs(refNonredundant(...)) and the three list
// operations, asserting the invariants always hold.
func TestQuickNonredundantClosure(t *testing.T) {
	f := func(qs []float64, r, c uint8) bool {
		if len(qs) == 0 {
			return true
		}
		// Build candidates from the fuzzed values deterministically.
		ps := make([]Pair, 0, len(qs))
		for i, q := range qs {
			if math.IsNaN(q) || math.IsInf(q, 0) {
				return true // skip degenerate fuzz input
			}
			q = math.Mod(q, 1e6)
			ps = append(ps, Pair{q, float64(i) + math.Abs(q)/1e7})
		}
		nr := refNonredundant(ps)
		if len(nr) == 0 {
			return true
		}
		l := FromPairs(nr)
		l.AddWire(float64(r)/16, float64(c)/4)
		if l.Validate() != nil {
			return false
		}
		l.InsertOne(float64(c), float64(r), 0)
		return l.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHullViewIntoReusesBuffer(t *testing.T) {
	l := FromPairs([]Pair{{0, 0}, {1, 1}, {100, 2}})
	buf := make([]*Node, 0, 8)
	hull := l.HullViewInto(buf)
	if len(hull) != 2 { // (1,1) has increasing slopes -> pruned
		t.Fatalf("hull size %d, want 2", len(hull))
	}
	if cap(hull) != 8 {
		t.Fatalf("buffer not reused: cap %d", cap(hull))
	}
}

func TestPairsRoundTrip(t *testing.T) {
	want := []Pair{{-3, 0}, {0, 1}, {5, 2.5}}
	got := FromPairs(want).Pairs()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %v want %v", got, want)
	}
}

func TestRecycleEmptiesList(t *testing.T) {
	l := FromPairs([]Pair{{0, 0}, {1, 1}, {2, 2}})
	l.Recycle()
	if l.Len() != 0 || l.Front() != nil || l.Back() != nil {
		t.Fatalf("Recycle left state: %+v", l)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// The list is reusable after recycling.
	if !l.InsertOne(5, 5, 0) {
		t.Fatal("insert into recycled list failed")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
}

// TestPoolReuseDoesNotAliasDecisions guards node recycling against the
// lineage-corruption hazard documented on Beta: decisions read from removed
// nodes must stay valid because betas capture SrcDec (the decision
// reference), never the node.
func TestPoolReuseDoesNotAliasDecisions(t *testing.T) {
	ar := NewArena()
	l := ar.NewSink(10, 1, 7)
	src := l.Front().Dec
	betas := []Beta{{Q: 20, C: 0.5, Buffer: 2, Vertex: 3, SrcDec: src}}
	l.MergeBetas(betas) // dominates and removes the sink candidate
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	dec := ar.Decision(l.Front().Dec)
	if l.Front().Dec == 0 || dec.Kind != DecBuffer || dec.Vertex != 3 || dec.Buffer != 2 {
		t.Fatalf("decision corrupted: %+v", dec)
	}
	if a := ar.Decision(dec.A); dec.A != src || a.Kind != DecSink || a.Vertex != 7 {
		t.Fatalf("lineage corrupted: %+v", a)
	}
}
