package candidate

import "fmt"

// Backend selects the candidate-list representation an engine runs on. The
// two backends implement the identical operation set with the identical
// arithmetic, so results are bit-equal; only the memory layout — and
// therefore the constant factor — differs. See DESIGN.md §11 for the
// measured trade-off.
type Backend uint8

const (
	// BackendDefault resolves to DefaultBackend, the representation the
	// benchmark suite measured fastest on paper-scale workloads.
	BackendDefault Backend = iota
	// BackendList is the paper's doubly-linked candidate list: O(1)
	// deletion and in-place merging, at the cost of pointer-chasing.
	BackendList
	// BackendSoA is the structure-of-arrays representation: packed
	// parallel slabs with compaction and swap-buffer rebuilds.
	BackendSoA
)

// DefaultBackend is what BackendDefault resolves to: the SoA representation,
// which the head-to-head benchmarks (BenchmarkBackends, BENCH_engine.json)
// measure faster across every paper-scale regime — sequential slab walks
// beat pointer-chasing well before lists reach the lengths the industrial
// nets produce.
const DefaultBackend = BackendSoA

// Resolve maps BackendDefault to DefaultBackend and leaves explicit choices
// alone.
func (b Backend) Resolve() Backend {
	if b == BackendDefault {
		return DefaultBackend
	}
	return b
}

// String implements fmt.Stringer ("list", "soa"; "default" unresolved).
func (b Backend) String() string {
	switch b {
	case BackendDefault:
		return "default"
	case BackendList:
		return "list"
	case BackendSoA:
		return "soa"
	}
	return fmt.Sprintf("Backend(%d)", uint8(b))
}

// ParseBackend resolves a backend name: "list", "soa", or "" / "default"
// for the benchmark-chosen default.
func ParseBackend(name string) (Backend, error) {
	switch name {
	case "", "default":
		return BackendDefault, nil
	case "list":
		return BackendList, nil
	case "soa":
		return BackendSoA, nil
	}
	return 0, fmt.Errorf(`candidate: unknown backend %q (want "list" or "soa")`, name)
}

// Rep is the complete operation set both candidate representations
// implement — the contract the generic engines (internal/core,
// internal/lillis) are written against. The type parameter is always the
// concrete pointer type itself (*List implements Rep[*List], *SoAList
// implements Rep[*SoAList]), so representation dispatch happens once per
// list operation while every per-candidate loop runs as concrete code in
// this package. The comparable constraint lets engines use the zero value
// (nil) as "no candidate of this parity exists".
type Rep[L any] interface {
	comparable
	AddWire(r, c float64)
	Len() int
	Clone() L
	MergeWith(o L) L
	MergeBetas(betas []Beta)
	InsertOne(q, c float64, dec DecRef) bool
	ConvexPruneInPlace() int
	AppendHullInto(h *Hull)
	AppendAllInto(h *Hull)
	HullDec(h *Hull, p, hint int) (DecRef, int)
	Best(r float64) (q, c float64, dec DecRef, ok bool)
	Free()
	Validate() error
}

// Alloc constructs lists of representation L from an arena. Implementations
// are zero-size structs, so a generic engine carries its allocator for
// free.
type Alloc[L any] interface {
	Sink(ar *Arena, q, c float64, vertex int) L
	Empty(ar *Arena) L
}

// ListAlloc is the Alloc for the doubly-linked representation.
type ListAlloc struct{}

// Sink implements Alloc.
func (ListAlloc) Sink(ar *Arena, q, c float64, v int) *List { return ar.NewSink(q, c, v) }

// Empty implements Alloc.
func (ListAlloc) Empty(ar *Arena) *List { return ar.NewList() }

// SoAAlloc is the Alloc for the structure-of-arrays representation.
type SoAAlloc struct{}

// Sink implements Alloc.
func (SoAAlloc) Sink(ar *Arena, q, c float64, v int) *SoAList { return ar.NewSoASink(q, c, v) }

// Empty implements Alloc.
func (SoAAlloc) Empty(ar *Arena) *SoAList { return ar.NewSoAList() }

// Hull is the concave majorant of a candidate list, materialized as packed
// parallel arrays so the engines' monotone hull walk — the paper's O(k+b)
// device — touches contiguous memory regardless of which representation
// produced it. Engines own one Hull per parity and reuse it across buffer
// positions; Reset keeps capacity, so warm runs fill hulls without
// allocating.
//
// Dec is filled only by the linked-list backend: the hull builder scans
// O(k) candidates but the walk resolves decisions for at most b of them, so
// the SoA backend skips the third column during its scan and recovers
// decisions on demand through HullDec (an exact search of its C slab).
// Engines must therefore go through Rep.HullDec, never read Dec directly.
type Hull struct {
	Q, C []float64
	Dec  []DecRef
}

// Reset empties the hull, keeping capacity.
func (h *Hull) Reset() {
	h.Q, h.C, h.Dec = h.Q[:0], h.C[:0], h.Dec[:0]
}

// Len returns the number of hull points.
func (h *Hull) Len() int { return len(h.Q) }

func (h *Hull) push(q, c float64, dec DecRef) {
	h.Q = append(h.Q, q)
	h.C = append(h.C, c)
	h.Dec = append(h.Dec, dec)
}

// leftTurnQC is leftTurn on scalar (Q, C) values: does the middle point b
// lie strictly above the chord a→c (Eq. 2 of the paper)?
func leftTurnQC(aq, ac, bq, bc, cq, cc float64) bool {
	return (bq-aq)*(cc-bc) > (cq-bq)*(bc-ac)
}
