package candidate

import (
	"math/rand"
	"testing"
)

// TestSliceListMatchesLinkedList drives both implementations through the
// same randomized operation sequences and demands identical candidate sets
// at every step.
func TestSliceListMatchesLinkedList(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 200; iter++ {
		base := randList(rng, 25).Pairs()
		ll := FromPairs(base)
		sl := SliceFromPairs(base)
		for op := 0; op < 12; op++ {
			switch rng.Intn(4) {
			case 0:
				r, c := rng.Float64()*2, rng.Float64()*20
				ll.AddWire(r, c)
				sl.AddWire(r, c)
			case 1:
				q, c := rng.Float64()*400-200, rng.Float64()*200
				okL := ll.InsertOne(q, c, 0)
				okS := sl.InsertOne(q, c, 0)
				if okL != okS {
					t.Fatalf("iter %d op %d: InsertOne disagreement (%v vs %v)", iter, op, okL, okS)
				}
			case 2:
				other := randList(rng, 10).Pairs()
				ll = Merge(ll, FromPairs(other))
				sl = MergeSlice(sl, SliceFromPairs(other))
			default:
				nb := 1 + rng.Intn(6)
				betas := make([]Beta, nb)
				c := rng.Float64() * 10
				q := rng.Float64()*200 - 100
				for i := range betas {
					betas[i] = Beta{Q: q, C: c}
					c += 0.01 + rng.Float64()*20
					q += 0.01 + rng.Float64()*40
				}
				ll.MergeBetas(betas)
				sl.MergeBetas(betas)
			}
			lp, sp := ll.Pairs(), sl.Pairs()
			if len(lp) != len(sp) {
				t.Fatalf("iter %d op %d: lengths differ %d vs %d\n%v\n%v", iter, op, len(lp), len(sp), lp, sp)
			}
			for i := range lp {
				if lp[i] != sp[i] {
					t.Fatalf("iter %d op %d: candidate %d differs: %v vs %v", iter, op, i, lp[i], sp[i])
				}
			}
			if err := ll.Validate(); err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
		}
	}
}

func TestSliceListHullMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 200; iter++ {
		base := randList(rng, 40).Pairs()
		ll := FromPairs(base)
		sl := SliceFromPairs(base)
		hullL := ll.HullView()
		hullS := sl.HullIdx()
		if len(hullL) != len(hullS) {
			t.Fatalf("iter %d: hull sizes %d vs %d", iter, len(hullL), len(hullS))
		}
		for i := range hullS {
			got := sl.cands[hullS[i]]
			if got.Q != hullL[i].Q || got.C != hullL[i].C {
				t.Fatalf("iter %d: hull point %d differs", iter, i)
			}
		}
	}
}

func TestSliceListBestForRMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 200; iter++ {
		base := randList(rng, 30).Pairs()
		ll := FromPairs(base)
		sl := SliceFromPairs(base)
		for trial := 0; trial < 10; trial++ {
			r := rng.Float64() * 10
			nd := ll.BestForR(r)
			i := sl.BestForR(r)
			if nd.Q != sl.cands[i].Q || nd.C != sl.cands[i].C {
				t.Fatalf("iter %d r=%g: (%g,%g) vs %v", iter, r, nd.Q, nd.C, sl.cands[i])
			}
		}
	}
}

func TestSliceListBasics(t *testing.T) {
	ar := NewArena()
	s := NewSliceSink(ar, 100, 5, 3)
	if s.Len() != 1 || s.cands[0] != (Pair{100, 5}) {
		t.Fatalf("sink slice list wrong: %+v", s)
	}
	if dec := ar.Decision(s.decs[0]); dec.Vertex != 3 || dec.Kind != DecSink {
		t.Fatalf("decision wrong: %+v", dec)
	}
	if (&SliceList{}).BestForR(1) != -1 {
		t.Fatal("empty BestForR must return -1")
	}
}

func TestSliceFromPairsPanicsOnDisorder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SliceFromPairs([]Pair{{1, 1}, {0, 2}})
}
