package candidate

import "unsafe"

// DecRef is an index-linked reference to a decision record inside an Arena.
// The zero value is the nil reference: it refers to no decision and fills
// nothing. References are only meaningful against the arena that issued them
// and only until that arena's next Reset.
type DecRef uint32

// decRecord is the packed arena representation of one Decision. Compared to
// the original heap-allocated pointer DAG (two 8-byte child pointers plus
// per-node GC bookkeeping), records are 20 bytes, pointer-free, and live in
// large slabs the collector scans in O(#slabs), not O(#decisions).
type decRecord struct {
	kind   DecisionKind
	buffer int32
	vertex int32
	a, b   DecRef
}

// Slab geometry. Decisions are by far the highest-churn allocation (every
// merge output and every surviving beta creates one), so their slabs are the
// largest. All sizes are powers of two so index decomposition is shift/mask.
const (
	decSlabBits  = 13 // 8192 decisions (160 KiB) per slab
	decSlabSize  = 1 << decSlabBits
	decSlabMask  = decSlabSize - 1
	nodeSlabBits = 10 // 1024 nodes per slab
	nodeSlabSize = 1 << nodeSlabBits
	listSlabBits = 7 // 128 list headers per slab
	listSlabSize = 1 << listSlabBits
)

// Arena owns all per-run allocation of the candidate machinery: decision
// records, candidate list nodes, and list headers, each in chunked slabs.
// Reset releases everything in O(1) (cursors rewind, slabs are retained), so
// a warm arena re-runs the whole dynamic program with zero allocations.
//
// The package-level sync.Pool keeps recycling nodes for arena-less lists
// (FromPairs, tests, ablations); arena-backed lists recycle through the
// arena's own free lists instead, so their nodes never leak into the global
// pool and never outlive a Reset.
//
// An Arena is not safe for concurrent use; batch workloads use one arena per
// worker (see bufferkit.InsertBatch).
type Arena struct {
	dec    [][]decRecord
	nDec   int
	curDec []decRecord // tail slab; alloc's fast path is one masked store

	nodes    [][]Node
	nNode    int
	freeNode []*Node

	lists    [][]List
	nList    int
	freeList []*List

	soa     [][]SoAList
	nSoA    int
	freeSoA []*SoAList

	fill []DecRef // reusable Fill work stack
}

// NewArena returns an empty arena. Slabs are allocated lazily on first use.
func NewArena() *Arena { return &Arena{} }

// Resize returns s with length n, reusing its backing array when possible —
// the scratch-buffer discipline shared by every engine built on this
// package. Retained elements keep their previous values; callers that need
// zeroing clear the result themselves.
func Resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// Reset releases every decision, node and list handed out since the last
// Reset, in O(1): slab memory is kept and the allocation cursors rewind.
// All DecRefs, *Nodes and *Lists obtained from the arena become invalid.
func (ar *Arena) Reset() {
	ar.nDec = 0
	ar.curDec = nil
	ar.nNode = 0
	ar.freeNode = ar.freeNode[:0]
	ar.nList = 0
	ar.freeList = ar.freeList[:0]
	ar.nSoA = 0
	ar.freeSoA = ar.freeSoA[:0]
}

// NumDecisions returns the number of live decision records.
func (ar *Arena) NumDecisions() int { return ar.nDec }

// Bytes reports the slab memory the arena currently retains — decision,
// node and list slabs plus the SoA headers' retained column capacity.
// Slabs survive Reset by design, so this is the engine's steady-state
// working-set footprint, not the live-object count of one run.
func (ar *Arena) Bytes() int {
	b := len(ar.dec) * decSlabSize * int(unsafe.Sizeof(decRecord{}))
	b += len(ar.nodes) * nodeSlabSize * int(unsafe.Sizeof(Node{}))
	b += len(ar.lists) * listSlabSize * int(unsafe.Sizeof(List{}))
	b += len(ar.soa) * listSlabSize * int(unsafe.Sizeof(SoAList{}))
	for _, slab := range ar.soa {
		for i := range slab {
			l := &slab[i]
			b += (cap(l.q) + cap(l.c) + cap(l.q2) + cap(l.c2)) * 8
			b += (cap(l.dec) + cap(l.dec2)) * int(unsafe.Sizeof(DecRef(0)))
		}
	}
	return b
}

// alloc appends one record and returns its reference. Index i lives at
// slab i>>decSlabBits, offset i&decSlabMask; the returned ref is i+1 so that
// the zero DecRef stays nil. The tail slab is cached, so the steady-state
// path — decisions are the highest-frequency allocation in every engine —
// is a masked store plus a cursor bump.
func (ar *Arena) alloc(rec decRecord) DecRef {
	i := ar.nDec
	off := i & decSlabMask
	if off == 0 || ar.curDec == nil {
		s := i >> decSlabBits
		if s == len(ar.dec) {
			ar.dec = append(ar.dec, make([]decRecord, decSlabSize))
		}
		ar.curDec = ar.dec[s]
	}
	ar.curDec[off] = rec
	ar.nDec++
	return DecRef(i + 1)
}

func (ar *Arena) rec(r DecRef) *decRecord {
	i := int(r) - 1
	return &ar.dec[i>>decSlabBits][i&decSlabMask]
}

// SinkDec records the base-case decision of a bare sink at the given vertex.
func (ar *Arena) SinkDec(vertex int) DecRef {
	return ar.alloc(decRecord{kind: DecSink, vertex: int32(vertex)})
}

// BufferDec records the insertion of library type buffer at vertex, applied
// to the candidate whose decision is src.
func (ar *Arena) BufferDec(vertex, buffer int, src DecRef) DecRef {
	return ar.alloc(decRecord{kind: DecBuffer, vertex: int32(vertex), buffer: int32(buffer), a: src})
}

// MergeDec records the joining of two sibling-branch candidates.
func (ar *Arena) MergeDec(a, b DecRef) DecRef {
	return ar.alloc(decRecord{kind: DecMerge, a: a, b: b})
}

// Decision returns the read-only view of record r. The nil reference yields
// the zero Decision.
func (ar *Arena) Decision(r DecRef) Decision {
	if r == 0 {
		return Decision{}
	}
	rec := ar.rec(r)
	return Decision{
		Kind:   rec.kind,
		Vertex: int(rec.vertex),
		Buffer: int(rec.buffer),
		A:      rec.a,
		B:      rec.b,
	}
}

// Fill walks the decision lineage rooted at r and records every inserted
// buffer into p, where p[v] is a library type index or -1. The walk is
// iterative over an arena-owned stack, so lineages tens of thousands of
// decisions deep (long 2-pin chains) are safe and a warm arena fills with
// zero allocations.
func (ar *Arena) Fill(r DecRef, p []int) {
	if r == 0 {
		return
	}
	stack := ar.fill[:0]
	stack = append(stack, r)
	for len(stack) > 0 {
		cur := ar.rec(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
		switch cur.kind {
		case DecSink:
			// nothing to record
		case DecBuffer:
			p[cur.vertex] = int(cur.buffer)
			if cur.a != 0 {
				stack = append(stack, cur.a)
			}
		case DecMerge:
			if cur.a != 0 {
				stack = append(stack, cur.a)
			}
			if cur.b != 0 {
				stack = append(stack, cur.b)
			}
		}
	}
	ar.fill = stack[:0]
}

// newNode hands out a node from the arena: the free list first (nodes
// recycled by list pruning), then the slab cursor.
func (ar *Arena) newNode(q, c float64, dec DecRef) *Node {
	var nd *Node
	if n := len(ar.freeNode); n > 0 {
		nd = ar.freeNode[n-1]
		ar.freeNode = ar.freeNode[:n-1]
	} else {
		i := ar.nNode
		s := i >> nodeSlabBits
		if s == len(ar.nodes) {
			ar.nodes = append(ar.nodes, make([]Node, nodeSlabSize))
		}
		nd = &ar.nodes[s][i&(nodeSlabSize-1)]
		ar.nNode++
	}
	nd.Q, nd.C, nd.Dec = q, c, dec
	nd.prev, nd.next = nil, nil
	return nd
}

func (ar *Arena) putNode(nd *Node) {
	ar.freeNode = append(ar.freeNode, nd)
}

// NewList returns an empty list whose nodes and decisions allocate from the
// arena. The header itself comes from arena slabs too, so warm runs create
// lists without touching the heap.
func (ar *Arena) NewList() *List {
	var l *List
	if n := len(ar.freeList); n > 0 {
		l = ar.freeList[n-1]
		ar.freeList = ar.freeList[:n-1]
	} else {
		i := ar.nList
		s := i >> listSlabBits
		if s == len(ar.lists) {
			ar.lists = append(ar.lists, make([]List, listSlabSize))
		}
		l = &ar.lists[s][i&(listSlabSize-1)]
		ar.nList++
	}
	l.front, l.back, l.n, l.ar = nil, nil, 0, ar
	return l
}

// NewSoAList returns an empty structure-of-arrays list whose decisions
// allocate from the arena. Headers come from arena slabs and keep their
// q/c/dec slab capacity across Reset (only the cursors rewind), so warm
// runs create and grow SoA lists without touching the heap.
func (ar *Arena) NewSoAList() *SoAList {
	var l *SoAList
	if n := len(ar.freeSoA); n > 0 {
		l = ar.freeSoA[n-1]
		ar.freeSoA = ar.freeSoA[:n-1]
	} else {
		i := ar.nSoA
		s := i >> listSlabBits
		if s == len(ar.soa) {
			ar.soa = append(ar.soa, make([]SoAList, listSlabSize))
		}
		l = &ar.soa[s][i&(listSlabSize-1)]
		ar.nSoA++
	}
	l.q, l.c, l.dec = l.q[:0], l.c[:0], l.dec[:0]
	l.q2, l.c2, l.dec2 = l.q2[:0], l.c2[:0], l.dec2[:0]
	l.ar = ar
	return l
}

// NewSink returns a single-candidate list for a sink with RAT q and load c,
// recording its base-case decision in the arena.
func (ar *Arena) NewSink(q, c float64, vertex int) *List {
	l := ar.NewList()
	l.pushBack(ar.newNode(q, c, ar.SinkDec(vertex)))
	return l
}
