// Package candidate implements the (Q, C) candidate machinery shared by all
// buffer-insertion algorithms in this repository.
//
// A candidate for a subtree T_v is one way of buffering T_v, summarized by
// its slack Q (ps) and downstream capacitance C (fF) at v. Candidate α
// dominates α' when Q(α) ≥ Q(α') and C(α) ≤ C(α'). The set of nonredundant
// candidates, kept sorted, is strictly increasing in both Q and C.
//
// The package provides the doubly-linked list the paper's C code uses (with
// O(1) deletion for pruning and O(k+b) in-place merging of new buffered
// candidates), the three van Ginneken operations on it (add-wire, merge,
// insert), and convex pruning — Graham's scan over the C-sorted list —
// which is the paper's key device: for every driving resistance R ≥ 0 the
// maximizer of Q − R·C lies on the concave majorant of the (C, Q) points.
//
// Allocation model: reconstruction decisions are index-linked records in a
// per-run Arena (see arena.go) rather than individually heap-allocated
// nodes, and arena-backed lists draw their nodes and headers from the same
// arena, so the whole run's memory releases in O(1) and a warm arena
// allocates nothing. Lists created without an arena (FromPairs, tests)
// still recycle nodes through a package-level sync.Pool.
package candidate

import (
	"fmt"
	"math"
	"sync"
)

// DecisionKind tags how a candidate came to be, for solution reconstruction.
type DecisionKind uint8

const (
	// DecSink is the base case: the candidate of a bare sink.
	DecSink DecisionKind = iota
	// DecBuffer records the insertion of one buffer at a vertex.
	DecBuffer
	// DecMerge joins the candidates of two sibling branches.
	DecMerge
)

// Decision is the read-only view of one reconstruction record, obtained
// from an Arena via Arena.Decision. Wire operations do not change
// placements, so they create no decisions; each candidate simply carries
// its decision reference through.
type Decision struct {
	Kind   DecisionKind
	Vertex int // sink vertex (DecSink) or buffer position (DecBuffer)
	Buffer int // library type index (DecBuffer only)
	A, B   DecRef
}

// Node is one nonredundant candidate in a List.
type Node struct {
	Q, C float64
	Dec  DecRef

	prev, next *Node
}

// Next returns the successor candidate (larger Q and C), or nil.
func (n *Node) Next() *Node { return n.next }

// Prev returns the predecessor candidate (smaller Q and C), or nil.
func (n *Node) Prev() *Node { return n.prev }

// nodePool recycles nodes of arena-less lists. The candidate machinery
// churns through nodes at a high rate — every buffer position inserts up to
// b candidates and prunes about as many — and letting them all reach the
// garbage collector costs more than the algorithm itself on paper-scale
// nets. Arena-backed lists bypass this pool entirely: their nodes come from
// and return to the arena's slabs.
var nodePool = sync.Pool{New: func() any { return new(Node) }}

// newNode allocates a node for this list: from the list's arena when it has
// one, from the package pool otherwise.
func (l *List) newNode(q, c float64, dec DecRef) *Node {
	if l.ar != nil {
		return l.ar.newNode(q, c, dec)
	}
	nd := nodePool.Get().(*Node)
	nd.Q, nd.C, nd.Dec = q, c, dec
	nd.prev, nd.next = nil, nil
	return nd
}

// putNode returns a node to its allocator.
func (l *List) putNode(nd *Node) {
	nd.Dec, nd.prev, nd.next = 0, nil, nil
	if l.ar != nil {
		l.ar.putNode(nd)
		return
	}
	nodePool.Put(nd)
}

// Recycle returns every node of the list to its allocator and empties it.
// The caller must drop every node pointer taken from the list, but may keep
// using the (now empty) list itself. Reconstruction decisions are
// unaffected.
func (l *List) Recycle() {
	for nd := l.front; nd != nil; {
		next := nd.next
		l.putNode(nd)
		nd = next
	}
	l.front, l.back, l.n = nil, nil, 0
}

// Free is Recycle plus returning the list header itself to its arena, for
// lists obtained from Arena.NewList that are fully consumed (e.g. merge
// inputs). The caller must not use the list afterwards. Arena-less lists
// just recycle their nodes.
func (l *List) Free() {
	l.Recycle()
	if l.ar != nil {
		l.ar.freeList = append(l.ar.freeList, l)
	}
}

// List is a doubly-linked list of candidates, strictly increasing in both
// Q and C from front to back. The zero value is an empty list that
// allocates from the package node pool; lists from Arena.NewList allocate
// from their arena.
type List struct {
	front, back *Node
	n           int
	ar          *Arena
}

// Arena returns the arena backing this list, or nil.
func (l *List) Arena() *Arena { return l.ar }

// Len returns the number of candidates.
func (l *List) Len() int { return l.n }

// Front returns the candidate with minimum C (and minimum Q), or nil.
func (l *List) Front() *Node { return l.front }

// Back returns the candidate with maximum C (and maximum Q), or nil.
func (l *List) Back() *Node { return l.back }

func (l *List) pushBack(nd *Node) {
	nd.prev = l.back
	nd.next = nil
	if l.back != nil {
		l.back.next = nd
	} else {
		l.front = nd
	}
	l.back = nd
	l.n++
}

// Clone returns an independent deep copy of the list from the same
// allocator. Decision references are shared (decision records are immutable
// once written), so a clone may be consumed — wired, merged, freed —
// without disturbing the original. This is what lets a retained-frontier
// resolve reuse a checkpointed sibling at a merge: the merge consumes the
// clone, the checkpoint survives.
func (l *List) Clone() *List {
	var out *List
	if l.ar != nil {
		out = l.ar.NewList()
	} else {
		out = &List{}
	}
	for nd := l.front; nd != nil; nd = nd.next {
		out.pushBack(out.newNode(nd.Q, nd.C, nd.Dec))
	}
	return out
}

// remove unlinks nd, recycles it, and returns the node that followed it.
// The caller must drop every pointer to nd.
func (l *List) remove(nd *Node) *Node {
	next := nd.next
	if nd.prev != nil {
		nd.prev.next = nd.next
	} else {
		l.front = nd.next
	}
	if nd.next != nil {
		nd.next.prev = nd.prev
	} else {
		l.back = nd.prev
	}
	l.putNode(nd)
	l.n--
	return next
}

// Remove unlinks nd, which must be a current member of the list.
func (l *List) Remove(nd *Node) { l.remove(nd) }

// insertAfter links nd after pred; pred == nil inserts at the front.
func (l *List) insertAfter(pred *Node, nd *Node) {
	if pred == nil {
		nd.prev = nil
		nd.next = l.front
		if l.front != nil {
			l.front.prev = nd
		} else {
			l.back = nd
		}
		l.front = nd
	} else {
		nd.prev = pred
		nd.next = pred.next
		if pred.next != nil {
			pred.next.prev = nd
		} else {
			l.back = nd
		}
		pred.next = nd
	}
	l.n++
}

// AddWire applies a wire of resistance r (kΩ) and capacitance c (fF)
// upstream of the current point: Q ← Q − r·(c/2 + C), C ← C + c, then
// re-prunes dominated candidates. C order is preserved (a constant shift);
// Q order may break because high-C candidates pay more delay, so a forward
// scan removes every candidate whose new Q does not strictly exceed its
// surviving predecessor's. O(k).
func (l *List) AddWire(r, c float64) {
	for nd := l.front; nd != nil; nd = nd.next {
		nd.Q -= WireDelay(r, c, nd.C)
		nd.C += c
	}
	if r == 0 {
		return // shear by 0 preserves Q order; nothing can become dominated
	}
	keep := l.front
	if keep == nil {
		return
	}
	for nd := keep.next; nd != nil; {
		if nd.Q <= keep.Q {
			nd = l.remove(nd)
		} else {
			keep = nd
			nd = nd.next
		}
	}
}

// WireDelay is the Elmore delay r·(c/2 + cdown) of a wire driving cdown.
// (Duplicated from the delay package to keep this package dependency-free;
// both are covered by tests.)
func WireDelay(r, c, cdown float64) float64 { return r * (c/2 + cdown) }

// Merge combines the candidate lists of two sibling branches meeting at a
// vertex: a joint candidate has Q = min(Q_a, Q_b) and C = C_a + C_b. For a
// target Q the cheapest combination pairs the first candidate of each list
// with Q at least the target, so a two-pointer sweep over the Q-sorted lists
// emits all nonredundant joint candidates in O(len(a) + len(b)).
// The inputs are consumed (their nodes are not reused, but the lists should
// be discarded — Free them when arena-backed). The output allocates from
// the first input's arena (or the second's, if the first has none); with no
// arena, merge decisions are not recorded.
func Merge(a, b *List) *List {
	ar := a.ar
	if ar == nil {
		ar = b.ar
	}
	var out *List
	if ar != nil {
		out = ar.NewList()
	} else {
		out = &List{}
	}
	x, y := a.front, b.front
	for x != nil && y != nil {
		q := x.Q
		if y.Q < q {
			q = y.Q
		}
		c := x.C + y.C
		var dec DecRef
		if ar != nil {
			dec = ar.MergeDec(x.Dec, y.Dec)
		}
		if out.back != nil && out.back.C == c {
			// Same capacitance, strictly larger Q (q increases every
			// iteration): the new candidate dominates the previous one.
			out.back.Q = q
			out.back.Dec = dec
		} else {
			out.pushBack(out.newNode(q, c, dec))
		}
		if x.Q == q {
			x = x.next
		}
		if y.Q == q {
			y = y.next
		}
	}
	return out
}

// InsertOne inserts candidate (q, c, dec) into the list, maintaining
// nonredundancy, by linear scan — the O(k) per-candidate insertion the
// Lillis–Cheng–Lin baseline performs b times per buffer position. It
// reports whether the candidate survived (was not dominated).
func (l *List) InsertOne(q, c float64, dec DecRef) bool {
	// Find the last node with C < c (pred) while checking domination by any
	// node with C ≤ c.
	var pred *Node
	nd := l.front
	for nd != nil && nd.C < c {
		pred = nd
		nd = nd.next
	}
	if pred != nil && pred.Q >= q {
		return false // dominated by a cheaper-or-equal candidate
	}
	if nd != nil && nd.C == c && nd.Q >= q {
		return false
	}
	nn := l.newNode(q, c, dec)
	l.insertAfter(pred, nn)
	// Remove following candidates dominated by the new one (C ≥ c, Q ≤ q).
	for nd := nn.next; nd != nil && nd.Q <= q; {
		nd = l.remove(nd)
	}
	return true
}

// Beta is a buffered candidate generated at a buffer position: inserting
// library type Buffer at Vertex yields slack Q and presents capacitance C
// upstream. Its reconstruction decision is created lazily: callers either
// set Dec directly, or set SrcDec (the decision of the unbuffered candidate
// the buffer was applied to) and let MergeBetas materialize the record only
// if the beta survives insertion — most betas are dominated immediately,
// and skipping their records is a measurable win in the O(n) inner loop.
type Beta struct {
	Q, C   float64
	Buffer int
	Vertex int
	SrcDec DecRef
	Dec    DecRef
}

// decision returns the beta's reconstruction record, materializing it in ar
// on first use. With no arena the nil reference is carried through.
func (b *Beta) decision(ar *Arena) DecRef {
	if b.Dec == 0 && ar != nil {
		b.Dec = ar.BufferDec(b.Vertex, b.Buffer, b.SrcDec)
	}
	return b.Dec
}

// NormalizeBetas sorts-stability is the caller's concern: betas must arrive
// in non-decreasing C order (the paper pre-sorts the library by input
// capacitance once). NormalizeBetas collapses them to a strictly increasing
// (C, Q) sequence: among equal-C betas only the max-Q one survives, and any
// beta dominated by a cheaper beta is dropped. O(b).
func NormalizeBetas(betas []Beta) []Beta {
	out := betas[:0]
	for _, b := range betas {
		if len(out) > 0 {
			top := &out[len(out)-1]
			if b.C < top.C {
				panic("candidate: NormalizeBetas input not sorted by C")
			}
			if b.C == top.C {
				if b.Q > top.Q {
					*top = b
				}
				continue
			}
			if b.Q <= top.Q {
				continue
			}
		}
		out = append(out, b)
	}
	return out
}

// MergeBetas merges normalized betas (strictly increasing C and Q) into the
// list in a single forward pass — the paper's Theorem 2: O(k + b) because
// the insertion point only moves forward and every list node is removed at
// most once.
func (l *List) MergeBetas(betas []Beta) {
	var pred *Node // last kept node with C < current beta's C
	nd := l.front
	for i := range betas {
		b := &betas[i]
		for nd != nil && nd.C < b.C {
			pred = nd
			nd = nd.next
		}
		if pred != nil && pred.Q >= b.Q {
			continue // beta dominated
		}
		if nd != nil && nd.C == b.C && nd.Q >= b.Q {
			continue
		}
		nn := l.newNode(b.Q, b.C, b.decision(l.ar))
		l.insertAfter(pred, nn)
		// Drop list nodes the beta dominates.
		for nxt := nn.next; nxt != nil && nxt.Q <= b.Q; {
			nxt = l.remove(nxt)
		}
		pred = nn
		nd = nn.next
	}
}

// BestForR returns the candidate maximizing Q − r·C by full linear scan,
// breaking ties toward minimum C (the paper's definition of the best
// candidate α_i). This is the Lillis baseline's per-type O(k) search.
// Returns nil on an empty list.
func (l *List) BestForR(r float64) *Node {
	best := l.front
	if best == nil {
		return nil
	}
	bv := best.Q - r*best.C
	for nd := best.next; nd != nil; nd = nd.next {
		if v := nd.Q - r*nd.C; v > bv {
			best, bv = nd, v
		}
	}
	return best
}

// leftTurn reports whether the middle point b lies strictly above the chord
// a→c in the (C, Q) plane, i.e. slope(a→b) > slope(b→c). Points violating
// this (Eq. 2 of the paper) are convex-pruned.
func leftTurn(a, b, c *Node) bool {
	return (b.Q-a.Q)*(c.C-b.C) > (c.Q-b.Q)*(b.C-a.C)
}

// HullView returns the concave majorant of the list — the candidates
// surviving convex pruning — as a slice of node pointers, without modifying
// the list. Graham's scan over the already C-sorted list runs in O(k).
// Every maximizer of Q − r·C for any r ≥ 0 is on the hull (paper Lemma 3).
func (l *List) HullView() []*Node {
	return l.HullViewInto(make([]*Node, 0, l.n))
}

// HullViewInto is HullView reusing the caller's buffer to avoid per-call
// allocation in the O(n) inner loop of the core algorithm.
func (l *List) HullViewInto(buf []*Node) []*Node {
	hull := buf[:0]
	for nd := l.front; nd != nil; nd = nd.next {
		for len(hull) >= 2 && !leftTurn(hull[len(hull)-2], hull[len(hull)-1], nd) {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, nd)
	}
	return hull
}

// AppendHullInto appends the concave majorant to h as packed parallel
// values — the representation-neutral form of HullViewInto the generic
// engines consume. The stack head is a plain cursor (pops are a decrement,
// one commit at the end), matching the SoA implementation. O(k).
func (l *List) AppendHullInto(h *Hull) {
	hq, hc, hd := h.Q, h.C, h.Dec
	n := len(hq)
	for nd := l.front; nd != nil; nd = nd.next {
		for n >= 2 && (hq[n-1]-hq[n-2])*(nd.C-hc[n-1]) <= (nd.Q-hq[n-1])*(hc[n-1]-hc[n-2]) {
			n--
		}
		hq = append(hq[:n], nd.Q)
		hc = append(hc[:n], nd.C)
		hd = append(hd[:n], nd.Dec)
		n++
	}
	h.Q, h.C, h.Dec = hq, hc, hd
}

// AppendAllInto appends every candidate to h (after destructive pruning the
// whole list is the hull).
func (l *List) AppendAllInto(h *Hull) {
	for nd := l.front; nd != nil; nd = nd.next {
		h.push(nd.Q, nd.C, nd.Dec)
	}
}

// HullDec resolves the decision of hull point p: nodes cannot be recovered
// from an index, so the linked backend carries the Dec column in the hull
// itself. The hint cursor is unused.
func (l *List) HullDec(h *Hull, p, hint int) (DecRef, int) { return h.Dec[p], hint }

// Best is BestForR returning the candidate's values, in the form the
// generic engines consume. ok is false on an empty list.
func (l *List) Best(r float64) (q, c float64, dec DecRef, ok bool) {
	nd := l.BestForR(r)
	if nd == nil {
		return 0, 0, 0, false
	}
	return nd.Q, nd.C, nd.Dec, true
}

// MergeWith is Merge in the method form the generic engines dispatch on.
func (l *List) MergeWith(o *List) *List { return Merge(l, o) }

// ConvexPruneInPlace removes every candidate not on the concave majorant
// from the list itself — the literal behaviour of the paper's printed
// Convexpruning C function, which frees pruned nodes. See DESIGN.md §4 for
// when this is lossless (2-pin nets) and when it is heuristic (multi-pin).
// Returns the number of candidates pruned.
func (l *List) ConvexPruneInPlace() int {
	pruned := 0
	if l.n < 3 {
		return 0
	}
	a := l.front
	b := a.next
	c := b.next
	for c != nil {
		if !leftTurn(a, b, c) {
			l.remove(b)
			pruned++
			// Move backward, as the paper's code does, since removing b can
			// expose a new reflex angle at a.
			if a.prev != nil {
				b = a
				a = a.prev
			} else {
				b = c
				c = c.next
			}
		} else {
			a = b
			b = c
			c = c.next
		}
	}
	return pruned
}

// Pair is a plain (Q, C) value used by tests and the SoA list.
type Pair struct {
	Q, C float64
}

// Pairs returns the candidates as a slice of pairs, front to back.
func (l *List) Pairs() []Pair {
	out := make([]Pair, 0, l.n)
	for nd := l.front; nd != nil; nd = nd.next {
		out = append(out, Pair{nd.Q, nd.C})
	}
	return out
}

// FromPairs builds an arena-less list from pairs that must already be
// strictly increasing in Q and C (panics otherwise); primarily for tests.
func FromPairs(ps []Pair) *List {
	l := &List{}
	for _, p := range ps {
		if l.back != nil && (p.Q <= l.back.Q || p.C <= l.back.C) {
			panic(fmt.Sprintf("candidate: FromPairs input not strictly increasing at (%g,%g)", p.Q, p.C))
		}
		l.pushBack(l.newNode(p.Q, p.C, 0))
	}
	return l
}

// Validate checks the list invariants: strictly increasing Q and C, finite
// values, consistent links and length.
func (l *List) Validate() error {
	count := 0
	var prev *Node
	for nd := l.front; nd != nil; nd = nd.next {
		if math.IsNaN(nd.Q) || math.IsNaN(nd.C) || math.IsInf(nd.Q, 0) || math.IsInf(nd.C, 0) {
			return fmt.Errorf("candidate: non-finite candidate (%g, %g)", nd.Q, nd.C)
		}
		if nd.prev != prev {
			return fmt.Errorf("candidate: broken prev link at index %d", count)
		}
		if prev != nil {
			if nd.Q <= prev.Q {
				return fmt.Errorf("candidate: Q not strictly increasing at index %d (%g after %g)", count, nd.Q, prev.Q)
			}
			if nd.C <= prev.C {
				return fmt.Errorf("candidate: C not strictly increasing at index %d (%g after %g)", count, nd.C, prev.C)
			}
		}
		prev = nd
		count++
	}
	if prev != l.back {
		return fmt.Errorf("candidate: back pointer mismatch")
	}
	if count != l.n {
		return fmt.Errorf("candidate: length %d != counted %d", l.n, count)
	}
	return nil
}
