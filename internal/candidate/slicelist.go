package candidate

// SliceList is an array-backed alternative to the doubly-linked List,
// implementing the same candidate operations by rebuilding a slice. It
// exists for the DESIGN.md ablation: the paper chose a linked list for O(1)
// deletion and in-place O(k+b) merging (at a ~2% memory overhead, per its
// Section 4); the slice variant trades pointer-chasing for copying, and the
// root benchmark suite measures which wins at which list length.
//
// Operations mirror List exactly; property tests assert the two agree.
type SliceList struct {
	cands []Pair
	decs  []DecRef
	ar    *Arena
}

// NewSliceSink returns a single-candidate slice list for a sink, recording
// its decision in ar.
func NewSliceSink(ar *Arena, q, c float64, vertex int) *SliceList {
	return &SliceList{
		cands: []Pair{{q, c}},
		decs:  []DecRef{ar.SinkDec(vertex)},
		ar:    ar,
	}
}

// SliceFromPairs builds an arena-less SliceList from strictly increasing
// pairs.
func SliceFromPairs(ps []Pair) *SliceList {
	s := &SliceList{cands: append([]Pair(nil), ps...), decs: make([]DecRef, len(ps))}
	for i := 1; i < len(ps); i++ {
		if ps[i].Q <= ps[i-1].Q || ps[i].C <= ps[i-1].C {
			panic("candidate: SliceFromPairs input not strictly increasing")
		}
	}
	return s
}

// Len returns the number of candidates.
func (s *SliceList) Len() int { return len(s.cands) }

// Pairs returns a copy of the candidates.
func (s *SliceList) Pairs() []Pair { return append([]Pair(nil), s.cands...) }

// AddWire mirrors List.AddWire.
func (s *SliceList) AddWire(r, c float64) {
	for i := range s.cands {
		s.cands[i].Q -= WireDelay(r, c, s.cands[i].C)
		s.cands[i].C += c
	}
	if r == 0 || len(s.cands) == 0 {
		return
	}
	out := s.cands[:1]
	outD := s.decs[:1]
	for i := 1; i < len(s.cands); i++ {
		if s.cands[i].Q > out[len(out)-1].Q {
			out = append(out, s.cands[i])
			outD = append(outD, s.decs[i])
		}
	}
	s.cands, s.decs = out, outD
}

// MergeSlice mirrors Merge for slice lists.
func MergeSlice(a, b *SliceList) *SliceList {
	ar := a.ar
	if ar == nil {
		ar = b.ar
	}
	out := &SliceList{
		cands: make([]Pair, 0, len(a.cands)+len(b.cands)),
		decs:  make([]DecRef, 0, len(a.cands)+len(b.cands)),
		ar:    ar,
	}
	i, j := 0, 0
	for i < len(a.cands) && j < len(b.cands) {
		q := a.cands[i].Q
		if b.cands[j].Q < q {
			q = b.cands[j].Q
		}
		c := a.cands[i].C + b.cands[j].C
		var dec DecRef
		if ar != nil {
			dec = ar.MergeDec(a.decs[i], b.decs[j])
		}
		if n := len(out.cands); n > 0 && out.cands[n-1].C == c {
			out.cands[n-1] = Pair{q, c}
			out.decs[n-1] = dec
		} else {
			out.cands = append(out.cands, Pair{q, c})
			out.decs = append(out.decs, dec)
		}
		if a.cands[i].Q == q {
			i++
		}
		if b.cands[j].Q == q {
			j++
		}
	}
	return out
}

// InsertOne mirrors List.InsertOne.
func (s *SliceList) InsertOne(q, c float64, dec DecRef) bool {
	i := 0
	for i < len(s.cands) && s.cands[i].C < c {
		i++
	}
	if i > 0 && s.cands[i-1].Q >= q {
		return false
	}
	if i < len(s.cands) && s.cands[i].C == c && s.cands[i].Q >= q {
		return false
	}
	j := i
	for j < len(s.cands) && s.cands[j].Q <= q {
		j++
	}
	// Splice: keep [0,i), insert, keep [j,end).
	nc := make([]Pair, 0, len(s.cands)-(j-i)+1)
	nd := make([]DecRef, 0, cap(nc))
	nc = append(append(append(nc, s.cands[:i]...), Pair{q, c}), s.cands[j:]...)
	nd = append(append(append(nd, s.decs[:i]...), dec), s.decs[j:]...)
	s.cands, s.decs = nc, nd
	return true
}

// MergeBetas mirrors List.MergeBetas: betas must be normalized (strictly
// increasing C and Q).
func (s *SliceList) MergeBetas(betas []Beta) {
	nc := make([]Pair, 0, len(s.cands)+len(betas))
	nd := make([]DecRef, 0, len(s.cands)+len(betas))
	i := 0
	for bi := range betas {
		b := &betas[bi]
		for i < len(s.cands) && s.cands[i].C < b.C {
			nc = append(nc, s.cands[i])
			nd = append(nd, s.decs[i])
			i++
		}
		if n := len(nc); n > 0 && nc[n-1].Q >= b.Q {
			continue
		}
		if i < len(s.cands) && s.cands[i].C == b.C && s.cands[i].Q >= b.Q {
			continue
		}
		nc = append(nc, Pair{b.Q, b.C})
		nd = append(nd, b.decision(s.ar))
		for i < len(s.cands) && s.cands[i].Q <= b.Q {
			i++ // dominated by the beta
		}
	}
	nc = append(nc, s.cands[i:]...)
	nd = append(nd, s.decs[i:]...)
	s.cands, s.decs = nc, nd
}

// HullIdx returns the indices of the concave majorant (Graham's scan).
func (s *SliceList) HullIdx() []int {
	hull := make([]int, 0, len(s.cands))
	for i := range s.cands {
		for len(hull) >= 2 {
			a, b := s.cands[hull[len(hull)-2]], s.cands[hull[len(hull)-1]]
			c := s.cands[i]
			if (b.Q-a.Q)*(c.C-b.C) > (c.Q-b.Q)*(b.C-a.C) {
				break
			}
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, i)
	}
	return hull
}

// BestForR mirrors List.BestForR, returning the index of the maximizer of
// Q − r·C (ties toward minimum C), or -1 on empty.
func (s *SliceList) BestForR(r float64) int {
	if len(s.cands) == 0 {
		return -1
	}
	best, bv := 0, s.cands[0].Q-r*s.cands[0].C
	for i := 1; i < len(s.cands); i++ {
		if v := s.cands[i].Q - r*s.cands[i].C; v > bv {
			best, bv = i, v
		}
	}
	return best
}
