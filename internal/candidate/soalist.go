package candidate

import (
	"fmt"
	"math"
)

// SoAList is the structure-of-arrays candidate representation: three
// parallel slabs — slacks, capacitances, decision references — kept strictly
// increasing in both Q and C, exactly like the node order of List.
//
// The paper chose a doubly-linked list for O(1) deletion and in-place
// O(k+b) merging (at a ~2% memory overhead, per its Section 4). The SoA
// variant keeps the same asymptotics but trades pointer-chasing for
// sequential copying: every operation is a forward pass over packed
// float64 arrays, which is the access pattern hardware prefetchers are
// built for. Operations that can shrink the list (AddWire re-pruning,
// convex pruning) compact in place; operations that can grow it
// (MergeBetas, InsertOne) rebuild into a swap buffer owned by the list and
// flip the two, so a warm list performs zero heap allocations — the same
// steady-state guarantee the linked representation has. DESIGN.md §11
// records which representation wins at which list length.
//
// Operations mirror List exactly; the property tests in soalist_test.go
// drive both through randomized interleavings of the full operation set and
// demand identical candidate sequences at every step.
type SoAList struct {
	q   []float64
	c   []float64
	dec []DecRef

	// Swap buffers for the rebuild operations. After a rebuild the roles
	// flip, so both sets of slabs stay warm and the steady state allocates
	// nothing.
	q2   []float64
	c2   []float64
	dec2 []DecRef

	ar *Arena
}

// NewSoASink returns a single-candidate SoA list for a sink with RAT q and
// load c, recording its base-case decision in the arena.
func (ar *Arena) NewSoASink(q, c float64, vertex int) *SoAList {
	l := ar.NewSoAList()
	l.q = append(l.q, q)
	l.c = append(l.c, c)
	l.dec = append(l.dec, ar.SinkDec(vertex))
	return l
}

// SoAFromPairs builds an arena-less SoA list from pairs that must already be
// strictly increasing in Q and C (panics otherwise); primarily for tests and
// the data-structure ablation benchmarks.
func SoAFromPairs(ps []Pair) *SoAList {
	l := &SoAList{
		q:   make([]float64, len(ps)),
		c:   make([]float64, len(ps)),
		dec: make([]DecRef, len(ps)),
	}
	for i, p := range ps {
		if i > 0 && (p.Q <= ps[i-1].Q || p.C <= ps[i-1].C) {
			panic("candidate: SoAFromPairs input not strictly increasing")
		}
		l.q[i], l.c[i] = p.Q, p.C
	}
	return l
}

// Arena returns the arena backing this list, or nil.
func (l *SoAList) Arena() *Arena { return l.ar }

// Len returns the number of candidates.
func (l *SoAList) Len() int { return len(l.q) }

// At returns candidate i as (Q, C).
func (l *SoAList) At(i int) Pair { return Pair{l.q[i], l.c[i]} }

// DecAt returns the decision reference of candidate i.
func (l *SoAList) DecAt(i int) DecRef { return l.dec[i] }

// Pairs returns the candidates as a slice of pairs, front to back.
func (l *SoAList) Pairs() []Pair {
	out := make([]Pair, len(l.q))
	for i := range out {
		out[i] = Pair{l.q[i], l.c[i]}
	}
	return out
}

// Recycle empties the list, keeping its slab capacity for reuse.
func (l *SoAList) Recycle() {
	l.q, l.c, l.dec = l.q[:0], l.c[:0], l.dec[:0]
}

// Free is Recycle plus returning the list (with its slabs) to its arena's
// free list, for lists that are fully consumed (e.g. merge inputs). The
// caller must not use the list afterwards. Arena-less lists just empty.
func (l *SoAList) Free() {
	l.Recycle()
	if l.ar != nil {
		l.ar.freeSoA = append(l.ar.freeSoA, l)
	}
}

// Clone returns an independent deep copy of the list from the same
// allocator. Decision references are shared (decision records are immutable
// once written), so a clone may be consumed — wired, merged, freed —
// without disturbing the original. A clone drawn from the arena's free list
// reuses retained slab capacity, so steady-state cloning allocates nothing.
func (l *SoAList) Clone() *SoAList {
	var out *SoAList
	if l.ar != nil {
		out = l.ar.NewSoAList()
	} else {
		out = &SoAList{}
	}
	n := len(l.q)
	out.q = append(Resize(out.q, n)[:0], l.q...)
	out.c = append(Resize(out.c, n)[:0], l.c...)
	out.dec = append(Resize(out.dec, n)[:0], l.dec...)
	return out
}

// AddWire applies a wire of resistance r (kΩ) and capacitance c (fF)
// upstream: Q ← Q − r·(c/2 + C), C ← C + c, then compacts away candidates
// whose new Q does not strictly exceed their surviving predecessor's — the
// same forward re-prune List.AddWire performs. Update and compaction are
// fused into a single streaming pass over the slabs (one read and at most
// one write per candidate, no pointer chain), which is where the SoA layout
// earns its keep on wire-heavy nets. O(k).
func (l *SoAList) AddWire(r, c float64) {
	q, cs, dec := l.q, l.c, l.dec
	n := len(q)
	if n == 0 || len(cs) < n || len(dec) < n {
		return // len guards double as bounds-check elimination hints
	}
	if r == 0 {
		// Shear by 0 preserves Q order; nothing can become dominated.
		for i := 0; i < n; i++ {
			cs[i] += c
		}
		return
	}
	// half is hoisted but the expression stays r·(c/2 + C) — bit-identical
	// to List.AddWire, which the differential tests hold both backends to.
	half := c / 2
	out := 0
	last := math.Inf(-1)
	for i := 0; i < n; i++ {
		nq := q[i] - r*(half+cs[i])
		if nq > last {
			q[out], cs[out], dec[out] = nq, cs[i]+c, dec[i]
			last = nq
			out++
		}
	}
	l.q, l.c, l.dec = q[:out], cs[:out], dec[:out]
}

// MergeSoA combines the candidate lists of two sibling branches — the same
// two-pointer sweep as Merge, over packed arrays. The inputs should be
// discarded (Free them when arena-backed); the output allocates from the
// first input's arena (or the second's, if the first has none). With no
// arena, merge decisions are not recorded.
func MergeSoA(a, b *SoAList) *SoAList {
	ar := a.ar
	if ar == nil {
		ar = b.ar
	}
	var out *SoAList
	if ar != nil {
		out = ar.NewSoAList()
	} else {
		out = &SoAList{}
	}
	// Pre-grow to the worst case and write by index: the two-pointer sweep
	// emits at most len(a)+len(b) candidates, and skipping append's
	// per-element capacity checks keeps the loop tight. The slabs retain
	// this capacity through the arena, so warm merges never grow.
	na, nb := len(a.q), len(b.q)
	oq := Resize(out.q, na+nb)
	oc := Resize(out.c, na+nb)
	od := Resize(out.dec, na+nb)
	w := 0
	x, y := 0, 0
	for x < na && y < nb {
		q := a.q[x]
		if b.q[y] < q {
			q = b.q[y]
		}
		c := a.c[x] + b.c[y]
		var dec DecRef
		if ar != nil {
			dec = ar.MergeDec(a.dec[x], b.dec[y])
		}
		if w > 0 && oc[w-1] == c {
			// Same capacitance, strictly larger Q (q increases every
			// iteration): the new candidate dominates the previous one.
			oq[w-1], od[w-1] = q, dec
		} else {
			oq[w], oc[w], od[w] = q, c, dec
			w++
		}
		if a.q[x] == q {
			x++
		}
		if b.q[y] == q {
			y++
		}
	}
	out.q, out.c, out.dec = oq[:w], oc[:w], od[:w]
	return out
}

// MergeWith is MergeSoA in the method form the generic engines dispatch on.
func (l *SoAList) MergeWith(o *SoAList) *SoAList { return MergeSoA(l, o) }

// InsertOne inserts candidate (q, c, dec), maintaining nonredundancy, by a
// single forward rebuild into the swap buffer — the O(k) per-candidate
// insertion the Lillis–Cheng–Lin baseline performs b times per position.
// It reports whether the candidate survived (was not dominated).
func (l *SoAList) InsertOne(q, c float64, dec DecRef) bool {
	i := 0
	for i < len(l.q) && l.c[i] < c {
		i++
	}
	if i > 0 && l.q[i-1] >= q {
		return false // dominated by a cheaper-or-equal candidate
	}
	if i < len(l.q) && l.c[i] == c && l.q[i] >= q {
		return false
	}
	j := i
	for j < len(l.q) && l.q[j] <= q {
		j++ // dominated by the new candidate
	}
	nq, nc, nd := l.q2[:0], l.c2[:0], l.dec2[:0]
	nq = append(append(append(nq, l.q[:i]...), q), l.q[j:]...)
	nc = append(append(append(nc, l.c[:i]...), c), l.c[j:]...)
	nd = append(append(append(nd, l.dec[:i]...), dec), l.dec[j:]...)
	l.swap(nq, nc, nd)
	return true
}

// MergeBetas merges normalized betas (strictly increasing C and Q) into the
// list in a single forward pass — the paper's Theorem 2, O(k + b) — rebuilt
// into the swap buffer.
func (l *SoAList) MergeBetas(betas []Beta) {
	nq, nc, nd := l.q2[:0], l.c2[:0], l.dec2[:0]
	i := 0
	for bi := range betas {
		b := &betas[bi]
		// Surviving list candidates below the beta's capacitance are copied
		// as one run (three memmoves) rather than element by element.
		j := i
		for j < len(l.q) && l.c[j] < b.C {
			j++
		}
		if j > i {
			nq = append(nq, l.q[i:j]...)
			nc = append(nc, l.c[i:j]...)
			nd = append(nd, l.dec[i:j]...)
			i = j
		}
		if n := len(nq); n > 0 && nq[n-1] >= b.Q {
			continue // beta dominated
		}
		if i < len(l.q) && l.c[i] == b.C && l.q[i] >= b.Q {
			continue
		}
		nq = append(nq, b.Q)
		nc = append(nc, b.C)
		nd = append(nd, b.decision(l.ar))
		for i < len(l.q) && l.q[i] <= b.Q {
			i++ // list candidates the beta dominates
		}
	}
	nq = append(nq, l.q[i:]...)
	nc = append(nc, l.c[i:]...)
	nd = append(nd, l.dec[i:]...)
	l.swap(nq, nc, nd)
}

// swap installs a rebuilt candidate set and keeps the previous slabs as the
// next rebuild's scratch.
func (l *SoAList) swap(nq, nc []float64, nd []DecRef) {
	l.q, l.q2 = nq, l.q[:0]
	l.c, l.c2 = nc, l.c[:0]
	l.dec, l.dec2 = nd, l.dec[:0]
}

// BestForR returns the index of the candidate maximizing Q − r·C by full
// linear scan, breaking ties toward minimum C, or -1 on an empty list.
func (l *SoAList) BestForR(r float64) int {
	if len(l.q) == 0 {
		return -1
	}
	best, bv := 0, l.q[0]-r*l.c[0]
	for i := 1; i < len(l.q); i++ {
		if v := l.q[i] - r*l.c[i]; v > bv {
			best, bv = i, v
		}
	}
	return best
}

// Best is BestForR returning the candidate's values, in the form the
// generic engines consume. ok is false on an empty list.
func (l *SoAList) Best(r float64) (q, c float64, dec DecRef, ok bool) {
	i := l.BestForR(r)
	if i < 0 {
		return 0, 0, 0, false
	}
	return l.q[i], l.c[i], l.dec[i], true
}

// ConvexPruneInPlace removes every candidate not on the concave majorant —
// Graham's scan compacting the three slabs in place (the stack head never
// passes the read cursor, so no scratch is needed). Returns the number of
// candidates pruned. O(k).
func (l *SoAList) ConvexPruneInPlace() int {
	n := len(l.q)
	if n < 3 {
		return 0
	}
	out := 0
	for i := 0; i < n; i++ {
		for out >= 2 && !leftTurnQC(l.q[out-2], l.c[out-2], l.q[out-1], l.c[out-1], l.q[i], l.c[i]) {
			out--
		}
		l.q[out], l.c[out], l.dec[out] = l.q[i], l.c[i], l.dec[i]
		out++
	}
	l.q, l.c, l.dec = l.q[:out], l.c[:out], l.dec[:out]
	return n - out
}

// AppendHullInto appends the concave majorant to h without modifying the
// list — the transient-prune path. Graham's scan over the already C-sorted
// slabs runs in O(k); the stack head is a plain cursor, so pops are a
// decrement and the hull slices are committed once at the end.
// The Dec column is not copied — see Hull and HullDec.
func (l *SoAList) AppendHullInto(h *Hull) {
	q := l.q
	cs := l.c
	if len(cs) < len(q) {
		return
	}
	cs = cs[:len(q)]
	hq, hc := h.Q, h.C
	n := len(hq)
	for i := range q {
		qi, ci := q[i], cs[i]
		for n >= 2 && (hq[n-1]-hq[n-2])*(ci-hc[n-1]) <= (qi-hq[n-1])*(hc[n-1]-hc[n-2]) {
			n--
		}
		hq = append(hq[:n], qi)
		hc = append(hc[:n], ci)
		n++
	}
	h.Q, h.C = hq, hc
}

// AppendAllInto appends every candidate to h (after destructive pruning the
// whole list is the hull). Dec is skipped here too; HullDec's identity fast
// path recovers it in O(1).
func (l *SoAList) AppendAllInto(h *Hull) {
	h.Q = append(h.Q, l.q...)
	h.C = append(h.C, l.c...)
}

// HullDec resolves the decision of hull point p by an exact forward search
// of the strictly increasing C slab from the caller's cursor, returning the
// advanced cursor. The engines' hull walk visits points in increasing p, so
// threading the cursor back makes all resolutions of one buffer position
// O(k) total — cheaper than copying an O(k) third column during every hull
// scan just to read ≤ b entries of it. When the hull is the whole list
// (destructive pruning) the very first probe hits.
func (l *SoAList) HullDec(h *Hull, p, hint int) (DecRef, int) {
	c := h.C[p]
	i := hint
	if i < p {
		i = p // a hull is a subsequence: point p sits at list index ≥ p
	}
	for l.c[i] != c {
		i++
	}
	return l.dec[i], i
}

// HullIdx returns the indices of the concave majorant (Graham's scan);
// primarily for tests.
func (l *SoAList) HullIdx() []int {
	hull := make([]int, 0, len(l.q))
	for i := range l.q {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			if leftTurnQC(l.q[a], l.c[a], l.q[b], l.c[b], l.q[i], l.c[i]) {
				break
			}
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, i)
	}
	return hull
}

// Validate checks the list invariants: strictly increasing Q and C, finite
// values, parallel slab lengths in agreement.
func (l *SoAList) Validate() error {
	if len(l.q) != len(l.c) || len(l.q) != len(l.dec) {
		return fmt.Errorf("candidate: SoA slab lengths diverge (%d, %d, %d)", len(l.q), len(l.c), len(l.dec))
	}
	for i := range l.q {
		if math.IsNaN(l.q[i]) || math.IsNaN(l.c[i]) || math.IsInf(l.q[i], 0) || math.IsInf(l.c[i], 0) {
			return fmt.Errorf("candidate: non-finite candidate (%g, %g)", l.q[i], l.c[i])
		}
		if i > 0 {
			if l.q[i] <= l.q[i-1] {
				return fmt.Errorf("candidate: Q not strictly increasing at index %d (%g after %g)", i, l.q[i], l.q[i-1])
			}
			if l.c[i] <= l.c[i-1] {
				return fmt.Errorf("candidate: C not strictly increasing at index %d (%g after %g)", i, l.c[i], l.c[i-1])
			}
		}
	}
	return nil
}
