// Package netgen generates deterministic synthetic nets: the workloads for
// tests, examples and the paper's experiments. All generators are seeded and
// reproducible; electrical parameters default to the paper's TSMC 180 nm
// constants (see internal/library).
package netgen

import (
	"fmt"
	"math/rand"

	"bufferkit/internal/library"
	"bufferkit/internal/segment"
	"bufferkit/internal/tree"
)

// Wire is a per-µm wire parameterization.
type Wire struct {
	// R is resistance per µm in kΩ/µm; C is capacitance per µm in fF/µm.
	R, C float64
}

// PaperWire returns the paper's TSMC 180 nm wire: 0.076 Ω/µm, 0.118 fF/µm.
func PaperWire() Wire {
	return Wire{R: library.PaperWireR, C: library.PaperWireC}
}

// Edge returns the lumped RC of a wire of the given length in µm.
func (w Wire) Edge(length float64) (r, c float64) {
	return w.R * length, w.C * length
}

// TwoPin builds a 2-pin net: a single wire of the given total length (µm)
// from the source to one sink, divided into `positions`+1 equal segments
// with a buffer position at each internal junction.
func TwoPin(length float64, positions int, sinkCap, rat float64, w Wire) *tree.Tree {
	if positions < 0 {
		panic(fmt.Sprintf("netgen: negative positions %d", positions))
	}
	b := tree.NewBuilder()
	segLen := length / float64(positions+1)
	r, c := w.Edge(segLen)
	parent := 0
	for i := 0; i < positions; i++ {
		parent = b.AddBufferPos(parent, r, c)
	}
	b.AddSink(parent, r, c, sinkCap, rat)
	return b.MustBuild()
}

// Balanced builds a perfectly balanced tree of the given fanout and depth:
// every internal junction is a buffer position and all leaves are sinks with
// identical load and RAT — a clock-tree-like workload. Edge length halves
// at each level starting from rootEdge µm.
func Balanced(fanout, depth int, rootEdge, sinkCap, rat float64, w Wire) *tree.Tree {
	if fanout < 1 || depth < 1 {
		panic(fmt.Sprintf("netgen: invalid balanced tree fanout=%d depth=%d", fanout, depth))
	}
	b := tree.NewBuilder()
	var grow func(parent int, level int, edgeLen float64)
	grow = func(parent int, level int, edgeLen float64) {
		r, c := w.Edge(edgeLen)
		if level == depth {
			b.AddSink(parent, r, c, sinkCap, rat)
			return
		}
		v := b.AddBufferPos(parent, r, c)
		for i := 0; i < fanout; i++ {
			grow(v, level+1, edgeLen/2)
		}
	}
	for i := 0; i < fanout; i++ {
		grow(0, 1, rootEdge)
	}
	return b.MustBuild()
}

// Opts parameterize Random and Industrial topologies.
type Opts struct {
	// Sinks is the number of sinks (≥ 1).
	Sinks int
	// Seed makes generation deterministic.
	Seed int64
	// Wire is the per-µm wire parameterization; zero value = PaperWire.
	Wire Wire
	// MaxFanout bounds branching (default 3).
	MaxFanout int
	// EdgeMin/EdgeMax bound random edge lengths in µm (default 50–800).
	EdgeMin, EdgeMax float64
	// RATMin/RATMax bound random sink RATs in ps (default 800–2000).
	RATMin, RATMax float64
	// StemProb is the chance of inserting a degree-1 buffer position on an
	// edge while growing the topology (default 0.3). Set NoStems to disable
	// stems entirely.
	StemProb float64
	// NoStems disables stem vertices regardless of StemProb.
	NoStems bool
	// NegativeSinkProb makes some sinks require inverted polarity; leave 0
	// for the paper's (polarity-free) setting.
	NegativeSinkProb float64
	// BranchBufferOK makes branch points legal buffer positions (default
	// true via the generator; set NoBranchBuffers to disable).
	NoBranchBuffers bool
}

func (o *Opts) fill() {
	if o.Wire == (Wire{}) {
		o.Wire = PaperWire()
	}
	if o.MaxFanout == 0 {
		o.MaxFanout = 3
	}
	if o.EdgeMin == 0 {
		o.EdgeMin = 50
	}
	if o.EdgeMax == 0 {
		o.EdgeMax = 800
	}
	if o.RATMin == 0 {
		o.RATMin = 800
	}
	if o.RATMax == 0 {
		o.RATMax = 2000
	}
	if o.StemProb == 0 {
		o.StemProb = 0.3
	}
}

// Random builds a random routing-tree topology with exactly o.Sinks sinks.
// Branch points (and optional degree-1 stem vertices) are buffer positions.
func Random(o Opts) *tree.Tree {
	o.fill()
	if o.Sinks < 1 {
		panic(fmt.Sprintf("netgen: Sinks %d < 1", o.Sinks))
	}
	rng := rand.New(rand.NewSource(o.Seed))
	b := tree.NewBuilder()

	edge := func() (float64, float64) {
		return o.Wire.Edge(o.EdgeMin + rng.Float64()*(o.EdgeMax-o.EdgeMin))
	}
	var grow func(parent int, sinks int)
	grow = func(parent int, sinks int) {
		// Occasionally lengthen the path with a stem buffer position.
		for !o.NoStems && rng.Float64() < o.StemProb {
			r, c := edge()
			parent = b.AddBufferPos(parent, r, c)
		}
		if sinks == 1 {
			r, c := edge()
			cap := library.PaperSinkCapMin + rng.Float64()*(library.PaperSinkCapMax-library.PaperSinkCapMin)
			rat := o.RATMin + rng.Float64()*(o.RATMax-o.RATMin)
			pol := tree.Positive
			if rng.Float64() < o.NegativeSinkProb {
				pol = tree.Negative
			}
			b.AddSinkPol(parent, r, c, cap, rat, pol)
			return
		}
		r, c := edge()
		var v int
		if o.NoBranchBuffers {
			v = b.AddInternal(parent, r, c)
		} else {
			v = b.AddBufferPos(parent, r, c)
		}
		// Split sinks over 2..MaxFanout branches.
		ways := 2
		if m := min(o.MaxFanout, sinks); m > 2 {
			ways = 2 + rng.Intn(m-1)
		}
		if ways > sinks {
			ways = sinks
		}
		parts := partition(rng, sinks, ways)
		for _, p := range parts {
			grow(v, p)
		}
	}
	grow(0, o.Sinks)
	return b.MustBuild()
}

// partition splits total into ways random positive parts.
func partition(rng *rand.Rand, total, ways int) []int {
	parts := make([]int, ways)
	for i := range parts {
		parts[i] = 1
	}
	for i := ways; i < total; i++ {
		parts[rng.Intn(ways)]++
	}
	return parts
}

// Industrial builds the experiment workload: a random topology with `sinks`
// sinks whose wires are then segmented so the tree has exactly `positions`
// buffer positions, mirroring the paper's industrial test cases (e.g.
// m = 1944 sinks, n = 33133 positions). The base topology contributes no
// positions of its own — every candidate position comes from wire
// segmenting, as in Alpert–Devgan — so any positive target is reachable,
// including n < m (the first point of the paper's Fig. 4).
func Industrial(sinks, positions int, seed int64) (*tree.Tree, error) {
	if positions < 1 {
		return nil, fmt.Errorf("netgen: positions %d < 1", positions)
	}
	base := Random(Opts{Sinks: sinks, Seed: seed, NoBranchBuffers: true, NoStems: true})
	return segment.ToPositions(base, positions)
}

// RandomSmall builds a net sized for brute-force cross-checking: 1–3 sinks
// and at most maxPositions buffer positions. The topology and parameters
// vary with the seed; polarity appears only if negProb > 0.
func RandomSmall(seed int64, maxPositions int, negProb float64) *tree.Tree {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	for attempt := 0; ; attempt++ {
		t := Random(Opts{
			Sinks:            1 + rng.Intn(3),
			Seed:             seed*1000 + int64(attempt),
			MaxFanout:        2,
			StemProb:         0.45,
			NegativeSinkProb: negProb,
		})
		if t.NumBufferPositions() <= maxPositions {
			return t
		}
	}
}
