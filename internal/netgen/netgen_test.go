package netgen

import (
	"reflect"
	"testing"
	"testing/quick"

	"bufferkit/internal/library"
	"bufferkit/internal/tree"
)

func TestTwoPinShape(t *testing.T) {
	tr := TwoPin(1000, 4, 5, 800, PaperWire())
	if tr.NumSinks() != 1 || tr.NumBufferPositions() != 4 {
		t.Fatalf("sinks=%d positions=%d", tr.NumSinks(), tr.NumBufferPositions())
	}
	if tr.Len() != 6 || tr.Depth() != 5 {
		t.Fatalf("Len=%d Depth=%d", tr.Len(), tr.Depth())
	}
	// Total wire RC equals the full line.
	wantR, wantC := PaperWire().Edge(1000)
	gotR, gotC := 0.0, 0.0
	for i := range tr.Verts {
		gotR += tr.Verts[i].EdgeR
		gotC += tr.Verts[i].EdgeC
	}
	if ab(gotR-wantR) > 1e-9 || ab(gotC-wantC) > 1e-9 {
		t.Fatalf("total RC (%g,%g), want (%g,%g)", gotR, gotC, wantR, wantC)
	}
	sink := tr.Sinks()[0]
	if tr.Verts[sink].Cap != 5 || tr.Verts[sink].RAT != 800 {
		t.Fatalf("sink params %+v", tr.Verts[sink])
	}
}

func TestTwoPinZeroPositions(t *testing.T) {
	tr := TwoPin(500, 0, 2, 100, PaperWire())
	if tr.Len() != 2 || tr.NumBufferPositions() != 0 {
		t.Fatalf("unexpected shape: %d vertices", tr.Len())
	}
}

func TestBalancedShape(t *testing.T) {
	tr := Balanced(2, 3, 400, 3, 900, PaperWire())
	if got, want := tr.NumSinks(), 8; got != want {
		t.Fatalf("sinks = %d, want %d", got, want)
	}
	// Internal junctions: 2 + 4 = 6 (levels 1 and 2).
	if got, want := tr.NumBufferPositions(), 6; got != want {
		t.Fatalf("positions = %d, want %d", got, want)
	}
	if tr.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", tr.Depth())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a := Random(Opts{Sinks: 25, Seed: 42})
	b := Random(Opts{Sinks: 25, Seed: 42})
	if !reflect.DeepEqual(a.Verts, b.Verts) {
		t.Fatal("same seed produced different nets")
	}
	c := Random(Opts{Sinks: 25, Seed: 43})
	if reflect.DeepEqual(a.Verts, c.Verts) {
		t.Fatal("different seeds produced identical nets")
	}
}

func TestRandomSinkCount(t *testing.T) {
	for _, m := range []int{1, 2, 7, 40, 337} {
		tr := Random(Opts{Sinks: m, Seed: int64(m)})
		if tr.NumSinks() != m {
			t.Fatalf("m=%d: got %d sinks", m, tr.NumSinks())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
	}
}

func TestRandomParameterRanges(t *testing.T) {
	tr := Random(Opts{Sinks: 100, Seed: 7})
	for _, s := range tr.Sinks() {
		v := tr.Verts[s]
		if v.Cap < library.PaperSinkCapMin || v.Cap > library.PaperSinkCapMax {
			t.Fatalf("sink cap %g outside paper range", v.Cap)
		}
		if v.RAT < 800 || v.RAT > 2000 {
			t.Fatalf("sink RAT %g outside default range", v.RAT)
		}
		if v.Pol != tree.Positive {
			t.Fatal("negative sink without NegativeSinkProb")
		}
	}
}

func TestRandomNegativeSinks(t *testing.T) {
	tr := Random(Opts{Sinks: 200, Seed: 3, NegativeSinkProb: 0.5})
	neg := 0
	for _, s := range tr.Sinks() {
		if tr.Verts[s].Pol == tree.Negative {
			neg++
		}
	}
	if neg < 50 || neg > 150 {
		t.Fatalf("negative sinks = %d of 200, expected near half", neg)
	}
}

func TestRandomNoBranchBuffers(t *testing.T) {
	tr := Random(Opts{Sinks: 30, Seed: 5, NoBranchBuffers: true, StemProb: 1e-9})
	if tr.NumBufferPositions() != 0 {
		t.Fatalf("expected no positions, got %d", tr.NumBufferPositions())
	}
}

func TestIndustrialReachesTargets(t *testing.T) {
	for _, target := range []int{1, 30, 900} {
		tr, err := Industrial(50, target, 11)
		if err != nil {
			t.Fatal(err)
		}
		if tr.NumSinks() != 50 {
			t.Fatalf("sinks = %d", tr.NumSinks())
		}
		if got := tr.NumBufferPositions(); got != target {
			t.Fatalf("positions = %d, want %d", got, target)
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIndustrialFewerPositionsThanSinks(t *testing.T) {
	// The paper's Fig. 4 starts at n = 1943 < m = 1944.
	tr, err := Industrial(200, 199, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumBufferPositions() != 199 {
		t.Fatalf("positions = %d", tr.NumBufferPositions())
	}
}

func TestIndustrialRejectsZeroPositions(t *testing.T) {
	if _, err := Industrial(10, 0, 1); err == nil {
		t.Fatal("expected error for zero positions")
	}
}

func TestNoStems(t *testing.T) {
	tr := Random(Opts{Sinks: 40, Seed: 9, NoStems: true, NoBranchBuffers: true})
	if tr.NumBufferPositions() != 0 {
		t.Fatalf("positions = %d, want 0", tr.NumBufferPositions())
	}
}

func TestRandomSmallRespectsBudget(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		tr := RandomSmall(seed, 5, 0.3)
		if tr.NumBufferPositions() > 5 {
			t.Fatalf("seed %d: %d positions", seed, tr.NumBufferPositions())
		}
		if tr.NumSinks() < 1 || tr.NumSinks() > 3 {
			t.Fatalf("seed %d: %d sinks", seed, tr.NumSinks())
		}
	}
}

func TestWireEdge(t *testing.T) {
	w := Wire{R: 2, C: 3}
	r, c := w.Edge(10)
	if r != 20 || c != 30 {
		t.Fatalf("Edge = (%g, %g)", r, c)
	}
	pw := PaperWire()
	if pw.R != library.PaperWireR || pw.C != library.PaperWireC {
		t.Fatal("PaperWire constants wrong")
	}
}

func TestQuickRandomAlwaysValid(t *testing.T) {
	f := func(seed int64, m uint8) bool {
		sinks := int(m)%64 + 1
		tr := Random(Opts{Sinks: sinks, Seed: seed, NegativeSinkProb: 0.2})
		return tr.Validate() == nil && tr.NumSinks() == sinks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func ab(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
