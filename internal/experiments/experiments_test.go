package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// smallCfg shrinks the paper sizes ~50× so the whole suite runs in seconds.
func smallCfg(buf *bytes.Buffer) Config {
	return Config{Scale: 48, Reps: 1, Out: buf}
}

func lines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}

func TestTable1Shape(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(smallCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	got := lines(buf.String())
	// title + header + rule + 3 cases × 4 library sizes
	if want := 3 + 3*4; len(got) != want {
		t.Fatalf("got %d lines, want %d:\n%s", len(got), want, buf.String())
	}
	if strings.Contains(buf.String(), "NO") {
		t.Fatalf("algorithms disagreed:\n%s", buf.String())
	}
	for _, b := range []string{" 8 ", " 16 ", " 32 ", " 64 "} {
		if !strings.Contains(buf.String(), b) {
			t.Fatalf("missing library size %q:\n%s", b, buf.String())
		}
	}
}

func TestFig3Shape(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3(smallCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	got := lines(buf.String())
	if want := 3 + 8; len(got) != want {
		t.Fatalf("got %d lines, want %d:\n%s", len(got), want, buf.String())
	}
	// The first normalized entries must be 1.
	if !strings.Contains(got[3], "1") {
		t.Fatalf("first row not normalized to 1:\n%s", buf.String())
	}
}

func TestFig4Shape(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(smallCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	got := lines(buf.String())
	if want := 3 + 6; len(got) != want {
		t.Fatalf("got %d lines, want %d:\n%s", len(got), want, buf.String())
	}
}

func TestLibReduceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := LibReduce(smallCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "full") || !strings.Contains(out, "reduced-8") {
		t.Fatalf("missing rows:\n%s", out)
	}
	// Quality loss is nonnegative by optimality; the column must not carry
	// a negative sign beyond float noise.
	if strings.Contains(out, "-1") && strings.Contains(out, "loss") {
		for _, l := range lines(out)[3:] {
			f := strings.Fields(l)
			if strings.HasPrefix(f[len(f)-1], "-1") {
				t.Fatalf("negative quality loss:\n%s", out)
			}
		}
	}
}

func TestListLenShape(t *testing.T) {
	var buf bytes.Buffer
	if err := ListLen(smallCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	got := lines(buf.String())
	if want := 3 + 4; len(got) != want {
		t.Fatalf("got %d lines, want %d:\n%s", len(got), want, buf.String())
	}
}

func TestAllRunsEverything(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallCfg(&buf)
	cfg.Scale = 96
	if err := All(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Fig 3", "Fig 4", "Library reduction", "List lengths"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing section %q", want)
		}
	}
}

func TestCSVOutput(t *testing.T) {
	var buf bytes.Buffer
	cfg := smallCfg(&buf)
	cfg.Scale = 96
	cfg.CSV = true
	if err := Table1(cfg); err != nil {
		t.Fatal(err)
	}
	got := lines(buf.String())
	if !strings.Contains(got[1], "m,n,b,") {
		t.Fatalf("no CSV header:\n%s", buf.String())
	}
	if want := 2 + 12; len(got) != want {
		t.Fatalf("got %d lines, want %d", len(got), want)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.fill()
	if c.Scale != 1 || c.Reps != 2 || c.Out == nil {
		t.Fatalf("defaults wrong: %+v", c)
	}
}
