// Package experiments regenerates the paper's evaluation — Table 1, Figure
// 3 and Figure 4 — plus two supporting studies (library-reduction quality
// loss and candidate-list-length analysis). The same definitions back both
// cmd/repro and the root benchmark suite, so EXPERIMENTS.md numbers are
// reproducible from either entry point.
//
// Scope notes (see DESIGN.md §5): the paper's industrial nets are not
// public, so workloads are synthetic nets with the paper's sink counts,
// position counts and TSMC-180nm electrical constants. Only the 1944-sink
// net's position count (33133) is legible in the source scan; the other
// cases use the same ≈17 positions-per-sink ratio. Absolute times are not
// comparable to the paper's 400 MHz SPARC; shapes and winners are.
package experiments

import (
	"fmt"
	"io"
	"math"

	"bufferkit/internal/core"
	"bufferkit/internal/delay"
	"bufferkit/internal/harness"
	"bufferkit/internal/library"
	"bufferkit/internal/libreduce"
	"bufferkit/internal/lillis"
	"bufferkit/internal/netgen"
	"bufferkit/internal/tree"
)

// Driver is the source driver used by every experiment: a mid-strength
// driver consistent with the paper's technology constants.
var Driver = delay.Driver{R: 0.2, K: 15}

// Config controls experiment sizing and output.
type Config struct {
	// Scale divides the paper's m and n (minimum 1 = full paper scale).
	Scale int
	// Reps is the number of timing repetitions (fastest wins); default 2.
	Reps int
	// Seed varies the synthetic topologies.
	Seed int64
	// Out receives the rendered tables.
	Out io.Writer
	// CSV switches output from aligned text to CSV.
	CSV bool
}

func (c Config) fill() Config {
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.Reps < 1 {
		c.Reps = 2
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

func (c Config) emit(t *harness.Table) error {
	if c.CSV {
		return t.CSV(c.Out)
	}
	return t.Render(c.Out)
}

// Case is one industrial test case of Table 1.
type Case struct {
	M, N int
}

// Table1Cases are the paper's three industrial nets. Only the 1944-sink
// case's position count is legible in the scan; the others use the same
// positions-per-sink ratio.
var Table1Cases = []Case{{337, 5729}, {1944, 33133}, {2676, 45492}}

// LibSizes are the paper's four library sizes.
var LibSizes = []int{8, 16, 32, 64}

func (c Config) net(m, n int) (*tree.Tree, error) {
	m, n = max(2, m/c.Scale), max(2, n/c.Scale)
	return netgen.Industrial(m, n, c.Seed+1)
}

// timeBoth measures both algorithms on one instance and verifies they agree
// on the optimal slack.
func timeBoth(cfg Config, t *tree.Tree, lib library.Library) (tLillis, tNew float64, slack float64, agree bool, err error) {
	var rl *lillis.Result
	var rc *core.Result
	tLillis = harness.TimeBest(cfg.Reps, func() {
		rl, err = lillis.Insert(t, lib, Driver)
	})
	if err != nil {
		return 0, 0, 0, false, err
	}
	tNew = harness.TimeBest(cfg.Reps, func() {
		rc, err = core.Insert(t, lib, core.Options{Driver: Driver})
	})
	if err != nil {
		return 0, 0, 0, false, err
	}
	return tLillis, tNew, rc.Slack, almostEqual(rl.Slack, rc.Slack), nil
}

// Table1 reproduces the paper's Table 1: runtime of the Lillis O(b²n²)
// baseline versus the new O(bn²) algorithm over three industrial nets and
// four library sizes, reporting the speedup (the paper measures up to ~11×
// at b = 64 on its largest cases).
func Table1(cfg Config) error {
	cfg = cfg.fill()
	tab := harness.NewTable("m", "n", "b", "lillis_ms", "new_ms", "speedup", "slack_ps", "optimal_match")
	for _, cs := range Table1Cases {
		t, err := cfg.net(cs.M, cs.N)
		if err != nil {
			return fmt.Errorf("table1: %w", err)
		}
		for _, b := range LibSizes {
			tl, tn, slack, agree, err := timeBoth(cfg, t, library.Generate(b))
			if err != nil {
				return fmt.Errorf("table1 m=%d b=%d: %w", cs.M, b, err)
			}
			tab.Addf(t.NumSinks(), t.NumBufferPositions(), b,
				tl*1e3, tn*1e3, tl/tn, slack, mark(agree))
		}
	}
	fmt.Fprintln(cfg.Out, "# Table 1 — industrial cases: Lillis (O(b²n²)) vs new algorithm (O(bn²))")
	return cfg.emit(tab)
}

// Fig3 reproduces Figure 3: normalized running time versus buffer library
// size b on the 1944-sink / 33133-position net. Both curves look linear in
// b; the paper's point is the slope gap (Lillis ≈ 11× from b=8 to b=64,
// the new algorithm ≈ 2×).
func Fig3(cfg Config) error {
	cfg = cfg.fill()
	t, err := cfg.net(1944, 33133)
	if err != nil {
		return fmt.Errorf("fig3: %w", err)
	}
	bs := []int{8, 16, 24, 32, 40, 48, 56, 64}
	var tl, tn []float64
	for _, b := range bs {
		l, n, _, agree, err := timeBoth(cfg, t, library.Generate(b))
		if err != nil {
			return fmt.Errorf("fig3 b=%d: %w", b, err)
		}
		if !agree {
			return fmt.Errorf("fig3 b=%d: algorithms disagree on optimal slack", b)
		}
		tl, tn = append(tl, l), append(tn, n)
	}
	nl, nn := harness.Normalize(tl), harness.Normalize(tn)
	tab := harness.NewTable("b", "lillis_ms", "new_ms", "lillis_norm", "new_norm")
	for i, b := range bs {
		tab.Addf(b, tl[i]*1e3, tn[i]*1e3, nl[i], nn[i])
	}
	fmt.Fprintf(cfg.Out, "# Fig 3 — normalized runtime vs library size b (m=%d, n=%d; normalized to b=%d)\n",
		t.NumSinks(), t.NumBufferPositions(), bs[0])
	return cfg.emit(tab)
}

// Fig4 reproduces Figure 4: normalized running time versus the number of
// buffer positions n on the 1944-sink net with b = 32. Both curves grow
// superlinearly; the new algorithm grows much more slowly because adding a
// buffer dominates as n increases.
func Fig4(cfg Config) error {
	cfg = cfg.fill()
	lib := library.Generate(32)
	ns := []int{1943, 4142, 8283, 16566, 33133, 66266}
	var tl, tn []float64
	var rows []struct {
		m, n int
	}
	for _, n := range ns {
		t, err := cfg.net(1944, n)
		if err != nil {
			return fmt.Errorf("fig4 n=%d: %w", n, err)
		}
		l, nw, _, agree, err := timeBoth(cfg, t, lib)
		if err != nil {
			return fmt.Errorf("fig4 n=%d: %w", n, err)
		}
		if !agree {
			return fmt.Errorf("fig4 n=%d: algorithms disagree on optimal slack", n)
		}
		tl, tn = append(tl, l), append(tn, nw)
		rows = append(rows, struct{ m, n int }{t.NumSinks(), t.NumBufferPositions()})
	}
	nl, nn := harness.Normalize(tl), harness.Normalize(tn)
	tab := harness.NewTable("n", "lillis_ms", "new_ms", "lillis_norm", "new_norm")
	for i := range ns {
		tab.Addf(rows[i].n, tl[i]*1e3, tn[i]*1e3, nl[i], nn[i])
	}
	fmt.Fprintf(cfg.Out, "# Fig 4 — normalized runtime vs buffer positions n (m=%d, b=32; normalized to n=%d)\n",
		rows[0].m, rows[0].n)
	return cfg.emit(tab)
}

// LibReduce quantifies the paper's motivation (§1): clustering the library
// down to k types (Alpert-style) makes the quadratic baseline faster but
// costs slack, whereas the new algorithm affords the full library.
func LibReduce(cfg Config) error {
	cfg = cfg.fill()
	t, err := cfg.net(337, 5729)
	if err != nil {
		return fmt.Errorf("libreduce: %w", err)
	}
	full := library.Generate(64)
	opt, err := core.Insert(t, full, core.Options{Driver: Driver})
	if err != nil {
		return fmt.Errorf("libreduce: %w", err)
	}
	tab := harness.NewTable("library", "b", "algo", "time_ms", "slack_ps", "loss_ps")
	tNew := harness.TimeBest(cfg.Reps, func() { core.Insert(t, full, core.Options{Driver: Driver}) })
	tab.Addf("full", 64, "new", tNew*1e3, opt.Slack, 0.0)
	for _, k := range []int{4, 8, 16} {
		red, _, err := libreduce.Reduce(full, k)
		if err != nil {
			return fmt.Errorf("libreduce k=%d: %w", k, err)
		}
		var rl *lillis.Result
		tl := harness.TimeBest(cfg.Reps, func() { rl, err = lillis.Insert(t, red, Driver) })
		if err != nil {
			return fmt.Errorf("libreduce k=%d: %w", k, err)
		}
		tab.Addf(fmt.Sprintf("reduced-%d", k), k, "lillis", tl*1e3, rl.Slack, opt.Slack-rl.Slack)
	}
	fmt.Fprintln(cfg.Out, "# Library reduction — full library + new algorithm vs clustered library + Lillis")
	return cfg.emit(tab)
}

// ListLen explains why the Lillis baseline "behaves more like a linear
// function of b" (paper §4): nonredundant candidate lists stay far shorter
// than the bn+1 worst case, and the hull is shorter still.
func ListLen(cfg Config) error {
	cfg = cfg.fill()
	t, err := cfg.net(1944, 8283)
	if err != nil {
		return fmt.Errorf("listlen: %w", err)
	}
	tab := harness.NewTable("b", "max_list", "avg_list", "avg_hull", "bn+1", "betas_kept_frac")
	for _, b := range LibSizes {
		res, err := core.Insert(t, library.Generate(b), core.Options{Driver: Driver})
		if err != nil {
			return fmt.Errorf("listlen b=%d: %w", b, err)
		}
		s := res.Stats
		pos := float64(s.Positions)
		tab.Addf(b, s.MaxListLen, float64(s.SumListLen)/pos, float64(s.SumHullLen)/pos,
			b*t.NumBufferPositions()+1, float64(s.BetasKept)/float64(s.BetasGenerated))
	}
	fmt.Fprintf(cfg.Out, "# List lengths — why practice beats the bn+1 bound (m=%d, n=%d)\n",
		t.NumSinks(), t.NumBufferPositions())
	return cfg.emit(tab)
}

// All runs every experiment in order.
func All(cfg Config) error {
	cfg = cfg.fill()
	for _, f := range []func(Config) error{Table1, Fig3, Fig4, LibReduce, ListLen} {
		if err := f(cfg); err != nil {
			return err
		}
		fmt.Fprintln(cfg.Out)
	}
	return nil
}

func mark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

// almostEqual mirrors testutil's slack tolerance without importing the
// testing machinery into experiment binaries.
func almostEqual(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-6*scale
}
