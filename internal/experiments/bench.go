package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"bufferkit"
	"bufferkit/internal/core"
	"bufferkit/internal/library"
	"bufferkit/internal/netgen"
	"bufferkit/internal/server"
	"bufferkit/internal/tree"
)

// BatchWorkload returns the deterministic mixed batch of n small nets used
// by both the root BenchmarkInsertBatch and repro -bench-json, so the two
// trajectories measure the same workload under the same name.
func BatchWorkload(n int) []*tree.Tree {
	nets := make([]*tree.Tree, n)
	for i := range nets {
		nets[i] = netgen.Random(netgen.Opts{Sinks: 4 + i%13, Seed: int64(i) * 31})
	}
	return nets
}

// BackendRegime is one workload of the candidate-backend (list vs SoA)
// ablation.
type BackendRegime struct {
	// Name keys the regime in benchmark names (regime=<Name>).
	Name string
	// Tree is the workload net.
	Tree *tree.Tree
	// Lib is the buffer library the regime runs under.
	Lib library.Library
}

// BackendRegimes returns the canonical workload set of the backend
// ablation, shared by the root BenchmarkBackends and repro -bench-json so
// the two trajectories measure the same regimes under the same names.
// industrial is the caller's (already scaled) industrial net, used for the
// small- and large-library regimes; scale divides the synthetic 2-pin
// lines the same way Config.Scale divides the paper's nets. The bushy tree
// is deliberately constant: it is sub-millisecond at full size and exists
// to measure merge-heavy short-list behaviour, not scaling.
func BackendRegimes(industrial *tree.Tree, scale int) []BackendRegime {
	if scale < 1 {
		scale = 1
	}
	return []BackendRegime{
		{"smallb", industrial, library.Generate(8)},
		{"largeb", industrial, library.Generate(64)},
		{"line", netgen.TwoPin(50000/float64(scale), max(2, 2000/scale), 20, 0, netgen.PaperWire()), library.Generate(16)},
		{"deepline", netgen.TwoPin(100000/float64(scale), max(2, 4000/scale), 20, 0, netgen.PaperWire()), library.Generate(8)},
		{"bushy", netgen.Balanced(3, 6, 400, 8, 1200, netgen.PaperWire()), library.Generate(16)},
	}
}

// ECOBenchCase is one workload of the incremental ECO-session benchmark
// series, shared by the root BenchmarkECOResolve and repro -bench-json so
// both trajectories measure the same regimes under the same names. Each
// case is benchmarked twice per backend — mode=cold (a full warm-engine
// re-solve, the pre-session baseline) and mode=delta (a session resolve
// after one sink patch) — so the eco/ trajectory records the incremental
// speedup directly. The trees are deliberately bushy: a single-sink delta
// dirties one leaf-to-root path, a thin slice of a balanced tree, which is
// exactly the regime ECO loops live in (a 2-pin line would dirty
// everything and measure nothing).
type ECOBenchCase struct {
	Name string
	Tree *tree.Tree
	Lib  library.Library
}

// ECOBenchCases returns the canonical ECO-session benchmark regimes: a
// deep ternary clock-tree-like net and a shallow wide one.
func ECOBenchCases() []ECOBenchCase {
	return []ECOBenchCase{
		{"bushy", netgen.Balanced(3, 6, 400, 8, 1200, netgen.PaperWire()), library.Generate(16)},
		{"wide", netgen.Balanced(4, 5, 400, 8, 1200, netgen.PaperWire()), library.Generate(16)},
	}
}

// YieldBenchCase is one workload of the yield-sweep benchmark series,
// shared by the root BenchmarkYieldSweep and repro -bench-json so both
// trajectories measure the same sweeps under the same names.
type YieldBenchCase struct {
	Name    string
	Samples int
	Sigma   float64
	Robust  bool
}

// YieldBenchCases returns the canonical yield-sweep benchmark series: two
// Monte Carlo sizes on the nominal-selection path and one robust-selection
// case that additionally re-scores every distinct placement across all
// corners.
func YieldBenchCases() []YieldBenchCase {
	return []YieldBenchCase{
		{Name: "yield/samples=16", Samples: 16, Sigma: 0.05},
		{Name: "yield/samples=64", Samples: 64, Sigma: 0.05},
		{Name: "yield/samples=64/robust", Samples: 64, Sigma: 0.05, Robust: true},
	}
}

// ChipBenchCase is one workload of the chip price-and-resolve benchmark
// series, shared by the root BenchmarkChipSolve and repro -bench-json so
// both trajectories measure the same instances under the same names.
type ChipBenchCase struct {
	Name string
	Opts bufferkit.ChipGenOpts
}

// ChipBenchCases returns the canonical chip-allocation benchmark series:
// an uncontended instance (every net solves once, no pricing pressure —
// the parallel fan-out floor) and a center-contended instance that
// exercises the full price-and-resolve loop. scale divides the net count
// the same way Config.Scale divides the paper's nets.
func ChipBenchCases(scale int) []ChipBenchCase {
	if scale < 1 {
		scale = 1
	}
	nets := max(16, 256/scale)
	return []ChipBenchCase{
		{"chip/uncontended", bufferkit.ChipGenOpts{
			W: 16, H: 16, Nets: nets, Capacity: 64, Contention: 0, Seed: 1}},
		{"chip/contended", bufferkit.ChipGenOpts{
			W: 16, H: 16, Nets: nets, Capacity: 2, Contention: 0.7, Seed: 1}},
	}
}

// BenchResult is one benchmark measurement in the JSON trajectory format
// consumed by BENCH_*.json tracking.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	NetsPerSec  float64 `json:"nets_per_sec,omitempty"`
	// RoundsToFeasible is the chip series' convergence metric: how many
	// pricing (plus repair) rounds the allocator took to reach zero
	// overflow on the deterministic instance.
	RoundsToFeasible int `json:"rounds_to_feasible,omitempty"`
}

// BenchReport is the top-level JSON document emitted by BenchJSON.
type BenchReport struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Scale      int           `json:"scale"`
	Timestamp  string        `json:"timestamp"`
	Results    []BenchResult `json:"results"`
}

// BenchJSON measures the allocation-discipline benchmarks — single-shot
// insertion, warm-engine insertion, and batch throughput at several worker
// counts — and writes them as one JSON document, so successive revisions
// can be tracked as BENCH_*.json trajectories without parsing `go test
// -bench` text output.
func BenchJSON(cfg Config, w io.Writer) error {
	cfg = cfg.fill()
	t, err := cfg.net(337, 5729)
	if err != nil {
		return fmt.Errorf("bench-json: %w", err)
	}
	lib := library.Generate(16)
	opt := core.Options{Driver: Driver}

	report := BenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      cfg.Scale,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	add := func(name string, nets int, r testing.BenchmarkResult) {
		br := BenchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if nets > 0 && r.T > 0 {
			br.NetsPerSec = float64(nets*r.N) / r.T.Seconds()
		}
		report.Results = append(report.Results, br)
	}

	add("insert/coldshot", 1, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Insert(t, lib, opt); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add("insert/warm", 1, testing.Benchmark(func(b *testing.B) {
		eng := core.NewEngine()
		if err := eng.Reset(t, lib, opt); err != nil {
			b.Fatal(err)
		}
		res := &core.Result{}
		if err := eng.Run(res); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Run(res); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Head-to-head candidate-list backend ablation, warm engines, on the
	// shared regime table — the trajectory DESIGN.md §11's crossover table
	// is built from.
	for _, rg := range BackendRegimes(t, cfg.Scale) {
		for _, backend := range []core.Backend{core.BackendList, core.BackendSoA} {
			eng := core.NewEngine()
			bopt := core.Options{Driver: Driver, Backend: backend}
			if err := eng.Reset(rg.Tree, rg.Lib, bopt); err != nil {
				return fmt.Errorf("bench-json: %w", err)
			}
			res := &core.Result{}
			if err := eng.Run(res); err != nil { // warm the arena slabs
				return fmt.Errorf("bench-json: %w", err)
			}
			add(fmt.Sprintf("engine/regime=%s/backend=%s", rg.Name, backend), 1,
				testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if err := eng.Run(res); err != nil {
							b.Fatal(err)
						}
					}
				}))
		}
	}

	// ECO-session series: full warm re-solve vs single-sink-delta session
	// resolve on the same net — the incremental speedup trajectory. The
	// patched RAT cycles so every delta resolve does real work.
	for _, ec := range ECOBenchCases() {
		sink := ec.Tree.Sinks()[0]
		for _, backend := range []core.Backend{core.BackendList, core.BackendSoA} {
			bopt := core.Options{Driver: Driver, Backend: backend}
			eng := core.NewEngine()
			if err := eng.Reset(ec.Tree, ec.Lib, bopt); err != nil {
				return fmt.Errorf("bench-json: %w", err)
			}
			res := &core.Result{}
			if err := eng.Run(res); err != nil { // warm the arena slabs
				return fmt.Errorf("bench-json: %w", err)
			}
			add(fmt.Sprintf("eco/regime=%s/backend=%s/mode=cold", ec.Name, backend), 1,
				testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if err := eng.Run(res); err != nil {
							b.Fatal(err)
						}
					}
				}))

			sess, err := core.NewSession(ec.Tree, ec.Lib, bopt)
			if err != nil {
				return fmt.Errorf("bench-json: %w", err)
			}
			ctx := context.Background()
			for i := 0; i < 8; i++ { // warm: first resolve is full, later ones delta
				if err := sess.PatchSink(sink, 1200+float64(i%7), 8); err != nil {
					return fmt.Errorf("bench-json: %w", err)
				}
				if err := sess.Resolve(ctx, res); err != nil {
					return fmt.Errorf("bench-json: %w", err)
				}
			}
			add(fmt.Sprintf("eco/regime=%s/backend=%s/mode=delta", ec.Name, backend), 1,
				testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if err := sess.PatchSink(sink, 1200+float64(i%7), 8); err != nil {
							b.Fatal(err)
						}
						if err := sess.Resolve(ctx, res); err != nil {
							b.Fatal(err)
						}
					}
				}))
			sess.Close()
		}
	}

	// Yield-sweep series: Monte Carlo corner fan-out over the pooled warm
	// engines (internal/variation), tracked alongside the engine series so
	// regressions in the per-corner zero-allocation path show up in the
	// same trajectory. nets/s here means corners/s.
	for _, yb := range YieldBenchCases() {
		solver, err := bufferkit.NewSolver(
			bufferkit.WithLibrary(lib),
			bufferkit.WithDriver(Driver),
			bufferkit.WithSamples(yb.Samples),
			bufferkit.WithSigma(yb.Sigma),
			bufferkit.WithRobustPlacement(yb.Robust),
		)
		if err != nil {
			return fmt.Errorf("bench-json: %w", err)
		}
		ctx := context.Background()
		if _, err := solver.SolveYield(ctx, t); err != nil { // warm the pool
			return fmt.Errorf("bench-json: %w", err)
		}
		add(yb.Name, 1+yb.Samples, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := solver.SolveYield(ctx, t); err != nil {
					b.Fatal(err)
				}
			}
		}))
		solver.Close()
	}

	// Chip price-and-resolve series: multi-net allocation over a shared
	// site grid. nets/s here means oracle re-solves per second (the sum of
	// every round's resolved nets), and rounds_to_feasible records the
	// deterministic convergence of the instance.
	for _, cb := range ChipBenchCases(cfg.Scale) {
		solver, err := bufferkit.NewSolver(bufferkit.WithLibrary(lib))
		if err != nil {
			return fmt.Errorf("bench-json: %w", err)
		}
		ctx := context.Background()
		inst := bufferkit.GenerateChip(cb.Opts)
		warm, err := solver.SolveChip(ctx, inst) // warm the pool, record rounds
		if err != nil {
			return fmt.Errorf("bench-json: %w", err)
		}
		solves := 0
		for _, r := range warm.Rounds {
			solves += r.Resolved
		}
		add(cb.Name, solves, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := solver.SolveChip(ctx, inst); err != nil {
					b.Fatal(err)
				}
			}
		}))
		report.Results[len(report.Results)-1].RoundsToFeasible = len(warm.Rounds)
		solver.Close()
	}

	// Observability-overhead series: the full uncached /v1/solve request
	// path through the HTTP handler — JSON decode, net/library parse, warm
	// pooled engine run, JSON encode — once with tracing plus a JSON
	// request-summary log line (trace=on) and once with the span recorder
	// disabled entirely (trace=off). This pair is the committed trajectory
	// behind the 2% observability budget and mirrors the root
	// BenchmarkServerSolveObs / BenchmarkServerSolveNoObs guard.
	var netBuf, libBuf bytes.Buffer
	if err := bufferkit.WriteNet(&netBuf, &bufferkit.Net{Name: "obsbench", Tree: t, Driver: Driver}); err != nil {
		return fmt.Errorf("bench-json: %w", err)
	}
	if err := bufferkit.WriteLibrary(&libBuf, lib); err != nil {
		return fmt.Errorf("bench-json: %w", err)
	}
	solveBody, err := json.Marshal(map[string]string{"net": netBuf.String(), "library": libBuf.String()})
	if err != nil {
		return fmt.Errorf("bench-json: %w", err)
	}
	for _, oc := range []struct {
		name string
		cfg  server.Config
	}{
		{"obs/trace=on", server.Config{CacheEntries: -1, Logger: slog.New(slog.NewJSONHandler(io.Discard, nil))}},
		{"obs/trace=off", server.Config{CacheEntries: -1, TraceRing: -1}},
	} {
		h := server.New(oc.cfg).Handler()
		add(oc.name, 1, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(solveBody))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("solve status %d: %s", rec.Code, rec.Body.String())
				}
			}
		}))
	}

	nets := BatchWorkload(256)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		add(fmt.Sprintf("batch/w%d", workers), len(nets), testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bufferkit.InsertBatch(nets, lib, bufferkit.BatchOptions{
					Driver:  Driver,
					Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
