package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"bufferkit"
	"bufferkit/internal/core"
	"bufferkit/internal/library"
	"bufferkit/internal/netgen"
	"bufferkit/internal/tree"
)

// BatchWorkload returns the deterministic mixed batch of n small nets used
// by both the root BenchmarkInsertBatch and repro -bench-json, so the two
// trajectories measure the same workload under the same name.
func BatchWorkload(n int) []*tree.Tree {
	nets := make([]*tree.Tree, n)
	for i := range nets {
		nets[i] = netgen.Random(netgen.Opts{Sinks: 4 + i%13, Seed: int64(i) * 31})
	}
	return nets
}

// BenchResult is one benchmark measurement in the JSON trajectory format
// consumed by BENCH_*.json tracking.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	NetsPerSec  float64 `json:"nets_per_sec,omitempty"`
}

// BenchReport is the top-level JSON document emitted by BenchJSON.
type BenchReport struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Scale      int           `json:"scale"`
	Timestamp  string        `json:"timestamp"`
	Results    []BenchResult `json:"results"`
}

// BenchJSON measures the allocation-discipline benchmarks — single-shot
// insertion, warm-engine insertion, and batch throughput at several worker
// counts — and writes them as one JSON document, so successive revisions
// can be tracked as BENCH_*.json trajectories without parsing `go test
// -bench` text output.
func BenchJSON(cfg Config, w io.Writer) error {
	cfg = cfg.fill()
	t, err := cfg.net(337, 5729)
	if err != nil {
		return fmt.Errorf("bench-json: %w", err)
	}
	lib := library.Generate(16)
	opt := core.Options{Driver: Driver}

	report := BenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      cfg.Scale,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	add := func(name string, nets int, r testing.BenchmarkResult) {
		br := BenchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if nets > 0 && r.T > 0 {
			br.NetsPerSec = float64(nets*r.N) / r.T.Seconds()
		}
		report.Results = append(report.Results, br)
	}

	add("insert/coldshot", 1, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Insert(t, lib, opt); err != nil {
				b.Fatal(err)
			}
		}
	}))
	add("insert/warm", 1, testing.Benchmark(func(b *testing.B) {
		eng := core.NewEngine()
		if err := eng.Reset(t, lib, opt); err != nil {
			b.Fatal(err)
		}
		res := &core.Result{}
		if err := eng.Run(res); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Run(res); err != nil {
				b.Fatal(err)
			}
		}
	}))

	nets := BatchWorkload(256)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		add(fmt.Sprintf("batch/w%d", workers), len(nets), testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bufferkit.InsertBatch(nets, lib, bufferkit.BatchOptions{
					Driver:  Driver,
					Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
