package libreduce

import (
	"reflect"
	"testing"

	"bufferkit/internal/core"
	"bufferkit/internal/delay"
	"bufferkit/internal/library"
	"bufferkit/internal/netgen"
	"bufferkit/internal/testutil"
)

func TestReduceBasics(t *testing.T) {
	lib := library.Generate(64)
	for _, k := range []int{1, 4, 8, 32, 64} {
		red, idx, err := Reduce(lib, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(red) != k || len(idx) != k {
			t.Fatalf("k=%d: got %d types", k, len(red))
		}
		if err := red.Validate(); err != nil {
			t.Fatal(err)
		}
		for j, i := range idx {
			if red[j] != lib[i] {
				t.Fatalf("k=%d: reduced[%d] is not lib[%d]", k, j, i)
			}
			if j > 0 && idx[j] <= idx[j-1] {
				t.Fatalf("k=%d: indices not in original order: %v", k, idx)
			}
		}
	}
}

func TestReduceDeterministic(t *testing.T) {
	lib := library.Generate(32)
	_, a, err := Reduce(lib, 6)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := Reduce(lib, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestReduceSpreadsSelection(t *testing.T) {
	// Reducing a graded library should keep types across the drive range,
	// not k clones of one corner.
	lib := library.Generate(64)
	red, _, err := Reduce(lib, 8)
	if err != nil {
		t.Fatal(err)
	}
	minR, maxR := red[0].R, red[0].R
	for _, b := range red {
		if b.R < minR {
			minR = b.R
		}
		if b.R > maxR {
			maxR = b.R
		}
	}
	if maxR/minR < 10 {
		t.Fatalf("selection collapsed to R range %g..%g", minR, maxR)
	}
}

func TestReduceErrors(t *testing.T) {
	lib := library.Generate(8)
	if _, _, err := Reduce(lib, 0); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, _, err := Reduce(lib, 9); err == nil {
		t.Fatal("accepted k>b")
	}
	if _, _, err := Reduce(library.Library{}, 1); err == nil {
		t.Fatal("accepted empty library")
	}
}

func TestReduceKeepsInverterBalance(t *testing.T) {
	lib := library.GenerateWithInverters(16) // 8 buffers + 8 inverters
	red, _, err := Reduce(lib, 4)
	if err != nil {
		t.Fatal(err)
	}
	nb, ni := 0, 0
	for _, b := range red {
		if b.Inverting {
			ni++
		} else {
			nb++
		}
	}
	if nb != 2 || ni != 2 {
		t.Fatalf("got %d buffers, %d inverters; want 2 and 2", nb, ni)
	}
}

// TestReducedLibraryNeverBeatsFull: the reduced library is a subset, so the
// optimal slack can only get worse — the quality loss the paper's
// introduction warns about.
func TestReducedLibraryNeverBeatsFull(t *testing.T) {
	lib := library.Generate(32)
	drv := delay.Driver{R: 0.3, K: 5}
	for seed := int64(0); seed < 5; seed++ {
		tr, err := netgen.Industrial(10, 150, seed)
		if err != nil {
			t.Fatal(err)
		}
		full, err := core.Insert(tr, lib, core.Options{Driver: drv})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{2, 4, 8} {
			red, _, err := Reduce(lib, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := core.Insert(tr, red, core.Options{Driver: drv})
			if err != nil {
				t.Fatal(err)
			}
			if got.Slack > full.Slack+testutil.Tol {
				t.Fatalf("seed %d k=%d: reduced %g beats full %g", seed, k, got.Slack, full.Slack)
			}
		}
	}
}

func TestDominancePrune(t *testing.T) {
	lib := library.Library{
		{Name: "a", R: 1.0, Cin: 10, K: 5},
		{Name: "a_dom", R: 1.2, Cin: 10.5, K: 6},              // dominated by a
		{Name: "b", R: 0.5, Cin: 20, K: 5},                    // pareto: lower R
		{Name: "inv", R: 1.0, Cin: 10, K: 5, Inverting: true}, // other class
		{Name: "inv_dom", R: 1.0, Cin: 11, K: 5, Inverting: true},
	}
	out, idx := DominancePrune(lib)
	wantIdx := []int{0, 2, 3}
	if !reflect.DeepEqual(idx, wantIdx) {
		t.Fatalf("kept indices %v, want %v", idx, wantIdx)
	}
	for i, j := range idx {
		if out[i] != lib[j] {
			t.Fatalf("kept type %d is not lib[%d]", i, j)
		}
	}

	// A library with no dominated types survives untouched, in order.
	clean := library.Generate(8)
	out, idx = DominancePrune(clean)
	if len(out) != len(clean) {
		t.Fatalf("pruned %d types from a graded library", len(clean)-len(out))
	}
	for i := range idx {
		if idx[i] != i {
			t.Fatalf("index map %v is not the identity", idx)
		}
	}
}
