// Package libreduce implements buffer-library reduction by clustering, in
// the spirit of Alpert, Gandham, Neves & Quay, "Buffer library selection"
// (ICCD 2000) — the approach the paper's introduction positions itself
// against: shrinking the library makes O(b²n²) insertion affordable but
// degrades solution quality. The repro experiment quantifies that loss and
// shows the O(bn²) algorithm removing the need for it.
package libreduce

import (
	"fmt"
	"math"

	"bufferkit/internal/library"
)

// DominancePrune drops every buffer type strictly dominated within its
// polarity class: type j is dominated when some type i of the same
// Inverting flag has R ≤, K ≤ and Cin strictly less. A dominated type's
// candidate at any position has no better slack and strictly more input
// capacitance than the dominating type's, so the engines' candidate
// normalization discards it before it can influence anything — pruning the
// library up front is therefore bit-exact for slack-optimal insertion
// (asserted against the full library by the root differential suite). The
// strict Cin requirement keeps the pruned set unique and order-stable.
// Returns the surviving types and their original indices, in original
// order. Cost is deliberately ignored: a dominated-but-cheaper type is a
// legitimate cost–slack frontier point, so cost-aware surfaces must not
// prune.
func DominancePrune(lib library.Library) (library.Library, []int) {
	out := make(library.Library, 0, len(lib))
	idx := make([]int, 0, len(lib))
	for j, bj := range lib {
		dominated := false
		for i, bi := range lib {
			if i == j || bi.Inverting != bj.Inverting {
				continue
			}
			if bi.R <= bj.R && bi.K <= bj.K && bi.Cin < bj.Cin {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, bj)
			idx = append(idx, j)
		}
	}
	return out, idx
}

// Reduce selects k representative buffer types from lib using deterministic
// greedy k-center clustering in a normalized (log R, log Cin, K) feature
// space. Inverting and non-inverting types are clustered separately with
// proportional budgets. It returns the reduced library and the indices of
// the chosen types in the original library, both in original order.
func Reduce(lib library.Library, k int) (library.Library, []int, error) {
	if err := lib.Validate(); err != nil {
		return nil, nil, err
	}
	if k < 1 || k > len(lib) {
		return nil, nil, fmt.Errorf("libreduce: k=%d outside 1..%d", k, len(lib))
	}
	var bufs, invs []int
	for i, b := range lib {
		if b.Inverting {
			invs = append(invs, i)
		} else {
			bufs = append(bufs, i)
		}
	}
	// Proportional budget, at least one per nonempty class when k allows.
	kInv := 0
	if len(invs) > 0 {
		kInv = k * len(invs) / len(lib)
		if kInv == 0 {
			kInv = 1
		}
		if kInv > len(invs) {
			kInv = len(invs)
		}
	}
	kBuf := k - kInv
	if kBuf > len(bufs) {
		kBuf = len(bufs)
		kInv = k - kBuf
	}
	if kBuf == 0 && len(bufs) > 0 && kInv > 1 {
		kBuf, kInv = 1, kInv-1
	}

	chosen := append(kCenter(lib, bufs, kBuf), kCenter(lib, invs, kInv)...)
	// Restore original order.
	mark := make([]bool, len(lib))
	for _, i := range chosen {
		mark[i] = true
	}
	var idx []int
	var out library.Library
	for i := range lib {
		if mark[i] {
			idx = append(idx, i)
			out = append(out, lib[i])
		}
	}
	return out, idx, nil
}

// features maps a buffer to the normalized clustering space.
func features(lib library.Library, members []int) [][3]float64 {
	lo := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	hi := [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	raw := make([][3]float64, len(members))
	for j, i := range members {
		b := lib[i]
		raw[j] = [3]float64{math.Log(b.R), math.Log(b.Cin), b.K}
		for d := 0; d < 3; d++ {
			lo[d] = math.Min(lo[d], raw[j][d])
			hi[d] = math.Max(hi[d], raw[j][d])
		}
	}
	for j := range raw {
		for d := 0; d < 3; d++ {
			if hi[d] > lo[d] {
				raw[j][d] = (raw[j][d] - lo[d]) / (hi[d] - lo[d])
			} else {
				raw[j][d] = 0
			}
		}
	}
	return raw
}

func dist2(a, b [3]float64) float64 {
	d0, d1, d2 := a[0]-b[0], a[1]-b[1], a[2]-b[2]
	return d0*d0 + d1*d1 + d2*d2
}

// kCenter greedily picks k members maximizing pairwise spread: it seeds
// with the member nearest the feature centroid, then repeatedly adds the
// member farthest from the chosen set. Deterministic; ties break toward
// the lower original index.
func kCenter(lib library.Library, members []int, k int) []int {
	if k <= 0 || len(members) == 0 {
		return nil
	}
	if k >= len(members) {
		return append([]int(nil), members...)
	}
	fs := features(lib, members)
	var centroid [3]float64
	for _, f := range fs {
		for d := 0; d < 3; d++ {
			centroid[d] += f[d]
		}
	}
	for d := 0; d < 3; d++ {
		centroid[d] /= float64(len(fs))
	}
	seed, best := 0, math.Inf(1)
	for j, f := range fs {
		if d := dist2(f, centroid); d < best {
			seed, best = j, d
		}
	}
	chosen := []int{seed}
	minD := make([]float64, len(fs))
	for j := range fs {
		minD[j] = dist2(fs[j], fs[seed])
	}
	for len(chosen) < k {
		far, farD := -1, -1.0
		for j := range fs {
			if minD[j] > farD {
				far, farD = j, minD[j]
			}
		}
		chosen = append(chosen, far)
		for j := range fs {
			if d := dist2(fs[j], fs[far]); d < minD[j] {
				minD[j] = d
			}
		}
	}
	out := make([]int, len(chosen))
	for i, j := range chosen {
		out[i] = members[j]
	}
	return out
}
