package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleflightCollapses: N concurrent callers with one key run fn once
// and all see its result; exactly one reports shared == false.
func TestSingleflightCollapses(t *testing.T) {
	var g Group[string, int]
	var runs atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const n = 32
	var wg sync.WaitGroup
	var leaders atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := g.Do(context.Background(), "k", func(ctx context.Context) (int, error) {
				runs.Add(1)
				close(started)
				<-release
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
			if !shared {
				leaders.Add(1)
			}
		}()
	}
	<-started
	// Give every goroutine time to join the flight before releasing it.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times for %d callers, want 1", got, n)
	}
	if got := leaders.Load(); got != 1 {
		t.Fatalf("%d callers report shared=false, want exactly 1", got)
	}
}

// TestSingleflightWaiterSafeCancellation: the caller that started the
// flight disconnects; the flight keeps running and the remaining waiter
// still gets the value.
func TestSingleflightWaiterSafeCancellation(t *testing.T) {
	var g Group[string, string]
	inFlight := make(chan struct{})
	release := make(chan struct{})
	fn := func(ctx context.Context) (string, error) {
		close(inFlight)
		select {
		case <-release:
			return "ok", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(leaderCtx, "k", fn)
		leaderDone <- err
	}()
	<-inFlight

	followerDone := make(chan struct {
		v   string
		err error
	}, 1)
	go func() {
		v, err, shared := g.Do(context.Background(), "k", fn)
		if !shared {
			t.Error("follower did not join the existing flight")
		}
		followerDone <- struct {
			v   string
			err error
		}{v, err}
	}()
	// Let the follower join, then kill the leader.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	close(release)
	res := <-followerDone
	if res.err != nil || res.v != "ok" {
		t.Fatalf("follower got %q, %v — the shared run must survive the leader's disconnect", res.v, res.err)
	}
}

// TestSingleflightAbandonedRunCanceled: when every caller disconnects, the
// flight's context is canceled so the work stops.
func TestSingleflightAbandonedRunCanceled(t *testing.T) {
	var g Group[string, int]
	inFlight := make(chan struct{})
	flightStopped := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = g.Do(ctx, "k", func(runCtx context.Context) (int, error) {
			close(inFlight)
			<-runCtx.Done()
			flightStopped <- runCtx.Err()
			return 0, runCtx.Err()
		})
	}()
	<-inFlight
	cancel()
	<-done
	select {
	case err := <-flightStopped:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("flight ctx err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abandoned flight was never canceled")
	}
}

// TestSingleflightSequentialRunsAreFresh: once a flight completes, the next
// call with the same key runs fn again (no stale result caching).
func TestSingleflightSequentialRunsAreFresh(t *testing.T) {
	var g Group[string, int]
	var runs atomic.Int64
	for i := 1; i <= 3; i++ {
		v, err, shared := g.Do(context.Background(), "k", func(ctx context.Context) (int, error) {
			return int(runs.Add(1)), nil
		})
		if err != nil || shared || v != i {
			t.Fatalf("run %d: v=%d err=%v shared=%v", i, v, err, shared)
		}
	}
}

// TestSingleflightErrorShared: a failing flight hands the same error to
// every waiter.
func TestSingleflightErrorShared(t *testing.T) {
	var g Group[string, int]
	wantErr := fmt.Errorf("engine exploded")
	release := make(chan struct{})
	const n = 8
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err, _ := g.Do(context.Background(), "k", func(ctx context.Context) (int, error) {
				<-release
				return 0, wantErr
			})
			errs <- err
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, wantErr) {
			t.Fatalf("waiter err = %v, want %v", err, wantErr)
		}
	}
}

// TestSingleflightPanicCaptured: a panicking fn surfaces as *PanicError to
// the waiters instead of crashing the process or stranding them.
func TestSingleflightPanicCaptured(t *testing.T) {
	var g Group[string, int]
	_, err, _ := g.Do(context.Background(), "k", func(ctx context.Context) (int, error) {
		panic("boom")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v, want value boom with a stack", pe)
	}
	// The group is usable again after the panic.
	v, err, _ := g.Do(context.Background(), "k", func(ctx context.Context) (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("post-panic Do = %d, %v", v, err)
	}
}

// TestSingleflightDistinctKeysDoNotCollapse: different keys run
// independently and concurrently.
func TestSingleflightDistinctKeysDoNotCollapse(t *testing.T) {
	var g Group[int, int]
	var runs atomic.Int64
	release := make(chan struct{})
	var started sync.WaitGroup
	var wg sync.WaitGroup
	const n = 4
	started.Add(n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err, shared := g.Do(context.Background(), i, func(ctx context.Context) (int, error) {
				runs.Add(1)
				started.Done()
				<-release
				return i, nil
			})
			if err != nil || shared {
				t.Errorf("key %d: err=%v shared=%v", i, err, shared)
			}
		}(i)
	}
	started.Wait() // all n flights in progress at once
	close(release)
	wg.Wait()
	if got := runs.Load(); got != n {
		t.Fatalf("runs = %d, want %d", got, n)
	}
}
