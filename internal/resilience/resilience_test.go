package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatalf("fresh EWMA = %v, want 0", e.Value())
	}
	e.Observe(100 * time.Millisecond)
	if got := e.Value(); got != 100*time.Millisecond {
		t.Fatalf("first observation = %v, want 100ms", got)
	}
	e.Observe(200 * time.Millisecond)
	if got := e.Value(); got != 150*time.Millisecond {
		t.Fatalf("after 100,200 at alpha .5 = %v, want 150ms", got)
	}
}

func TestAcquireFastPath(t *testing.T) {
	c := NewController(Config{Slots: 2})
	ctx := context.Background()
	if err := c.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	c.Release(2)
	if got := c.Counters().Admitted; got != 2 {
		t.Fatalf("admitted = %d, want 2", got)
	}
}

// TestShedQueueFull: with zero queue capacity, a busy controller sheds
// immediately with ShedQueueFull.
func TestShedQueueFull(t *testing.T) {
	c := NewController(Config{Slots: 1, MaxQueue: 0})
	if err := c.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Release(1)
	err := c.Acquire(context.Background())
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedQueueFull {
		t.Fatalf("err = %v, want ShedQueueFull", err)
	}
	if got := c.Counters().ShedQueueFull; got != 1 {
		t.Fatalf("ShedQueueFull counter = %d, want 1", got)
	}
}

// TestShedDeadline: once the EWMA knows solves take ~50ms, a contended
// request with only 1ms of budget is rejected without queueing.
func TestShedDeadline(t *testing.T) {
	c := NewController(Config{Slots: 1, MaxQueue: 8})
	c.Observe(50 * time.Millisecond)
	if err := c.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := c.Acquire(ctx)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedDeadline {
		t.Fatalf("err = %v, want ShedDeadline", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0 with a warm EWMA", shed.RetryAfter)
	}
	// A generous deadline still queues (and then gets the slot on release).
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	done := make(chan error, 1)
	go func() { done <- c.Acquire(ctx2) }()
	waitForDepth(t, c, 1)
	c.Release(1)
	if err := <-done; err != nil {
		t.Fatalf("queued acquire failed: %v", err)
	}
	c.Release(1)
}

// TestShedQueueTimeout: a waiter is converted to a fast failure after
// QueueTimeout even though its own context is still alive.
func TestShedQueueTimeout(t *testing.T) {
	c := NewController(Config{Slots: 1, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond})
	if err := c.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Release(1)
	start := time.Now()
	err := c.Acquire(context.Background())
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedQueueTimeout {
		t.Fatalf("err = %v, want ShedQueueTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("shed after %v, before the queue timeout", elapsed)
	}
	if c.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after timeout, want 0", c.QueueDepth())
	}
	if c.Counters().AdmissionWaitNS <= 0 {
		t.Fatal("admission wait time not recorded")
	}
}

// TestAcquireCtxCanceled: a waiter whose context fires gets a typed
// *CanceledError that still unwraps to the context sentinel (the server's
// 504 mapping relies on errors.Is), frees its queue position, bumps the
// canceled counter, and leaves the admission-wait average untouched — a
// client giving up is not a measurement of the server's backlog.
func TestAcquireCtxCanceled(t *testing.T) {
	c := NewController(Config{Slots: 1, MaxQueue: 4})
	if err := c.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Release(1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Acquire(ctx) }()
	waitForDepth(t, c, 1)
	cancel()
	err := <-done
	var cerr *CanceledError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want a *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, must unwrap to context.Canceled", err)
	}
	var shed *ShedError
	if errors.As(err, &shed) {
		t.Fatalf("err = %v must not read as load shedding", err)
	}
	if c.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after cancel, want 0", c.QueueDepth())
	}
	got := c.Counters()
	if got.CanceledWhileQueued != 1 {
		t.Fatalf("CanceledWhileQueued = %d, want 1", got.CanceledWhileQueued)
	}
	if got.AdmissionWaitNS != 0 {
		t.Fatalf("AdmissionWaitNS = %d, a canceled wait must not count as an ordinary one", got.AdmissionWaitNS)
	}
}

// TestQueueBoundUnderContention: at most MaxQueue requests wait; the rest
// shed. Releasing slots then admits exactly the waiters.
func TestQueueBoundUnderContention(t *testing.T) {
	const slots, queue, extra = 2, 3, 8
	c := NewController(Config{Slots: slots, MaxQueue: queue})
	for i := 0; i < slots; i++ {
		if err := c.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	results := make(chan error, queue+extra)
	for i := 0; i < queue+extra; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := c.Acquire(context.Background())
			if err == nil {
				defer c.Release(1)
			}
			results <- err
		}()
	}
	// Wait until every goroutine has either queued or shed.
	deadline := time.Now().Add(2 * time.Second)
	for c.QueueDepth() < queue || c.Counters().ShedQueueFull < extra {
		if time.Now().After(deadline) {
			t.Fatalf("depth=%d sheds=%d never reached %d/%d",
				c.QueueDepth(), c.Counters().ShedQueueFull, queue, extra)
		}
		time.Sleep(time.Millisecond)
	}
	c.Release(slots)
	wg.Wait()
	close(results)
	admitted, shed := 0, 0
	for err := range results {
		if err == nil {
			admitted++
		} else {
			shed++
		}
	}
	if admitted != queue || shed != extra {
		t.Fatalf("admitted=%d shed=%d, want %d/%d", admitted, shed, queue, extra)
	}
}

func TestTryExtra(t *testing.T) {
	c := NewController(Config{Slots: 4})
	if got := c.TryExtra(10); got != 4 {
		t.Fatalf("TryExtra(10) = %d on an idle 4-slot controller, want 4", got)
	}
	if got := c.TryExtra(1); got != 0 {
		t.Fatalf("TryExtra(1) = %d on a full controller, want 0", got)
	}
	c.Release(4)
}

func TestRetryAfterScalesWithQueue(t *testing.T) {
	c := NewController(Config{Slots: 1, MaxQueue: 10})
	if c.RetryAfter() != 0 {
		t.Fatalf("RetryAfter with no observations = %v, want 0", c.RetryAfter())
	}
	c.Observe(100 * time.Millisecond)
	empty := c.RetryAfter()
	if empty < 100*time.Millisecond {
		t.Fatalf("RetryAfter on empty queue = %v, want >= one EWMA", empty)
	}
	// Park some waiters and confirm the estimate grows.
	if err := c.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); _ = c.Acquire(ctx) }() //nolint:errcheck
	}
	waitForDepth(t, c, 3)
	if got := c.RetryAfter(); got <= empty {
		t.Fatalf("RetryAfter with 3 waiters = %v, want > %v", got, empty)
	}
	cancel()
	wg.Wait()
	c.Release(1)
}

// waitForDepth polls until the controller reports the given queue depth.
func waitForDepth(t *testing.T, c *Controller, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for c.QueueDepth() != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d never reached %d", c.QueueDepth(), want)
		}
		time.Sleep(time.Millisecond)
	}
}
