package resilience

import (
	"context"
	"runtime/debug"
	"sync"
)

// PanicError carries a panic that fired inside a singleflight execution,
// together with the stack captured at the panic site. Group.Do returns it
// to every waiter as a value; callers that want normal panic semantics
// (e.g. to hand it to HTTP recovery middleware) re-panic with it.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return "singleflight: panic in flight function" }

// call is one in-flight execution.
type call[V any] struct {
	done    chan struct{}
	val     V
	err     error
	waiters int
	cancel  context.CancelFunc
}

// Group collapses concurrent calls with equal keys onto one execution of
// fn: the first caller starts the flight, later callers with the same key
// wait for its result instead of running fn again. The zero value is ready
// to use.
//
// Cancellation is waiter-safe: fn runs on its own goroutine under a
// context detached from any single caller, so one caller disconnecting
// never kills a run other callers are waiting on. The flight context is
// canceled only when every caller (including the one that started it) has
// gone away — then nobody wants the result and the work stops. Values that
// the flight context must still carry (trace IDs, etc.) are preserved via
// context.WithoutCancel of the starting caller's context.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*call[V]
}

// Do executes fn once per concurrently-requested key and hands the one
// result to every caller. shared is true when this caller joined a flight
// another caller started. If the caller's ctx fires while waiting, Do
// returns ctx.Err() for that caller only; the flight keeps running for the
// remaining waiters. A panic inside fn is captured and returned to every
// waiter as a *PanicError.
func (g *Group[K, V]) Do(ctx context.Context, key K, fn func(context.Context) (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*call[V])
	}
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		v, err = g.wait(ctx, c)
		return v, err, true
	}
	runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	c := &call[V]{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = &PanicError{Value: r, Stack: debug.Stack()}
			}
			// Remove the key before signaling completion so late joiners
			// start a fresh flight instead of racing the teardown.
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
			cancel()
		}()
		c.val, c.err = fn(runCtx)
	}()

	v, err = g.wait(ctx, c)
	return v, err, false
}

// wait blocks until the flight completes or the caller's ctx fires. A
// departing caller decrements the waiter count; the last one out cancels
// the flight.
func (g *Group[K, V]) wait(ctx context.Context, c *call[V]) (V, error) {
	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		abandon := c.waiters == 0
		g.mu.Unlock()
		if abandon {
			c.cancel()
		}
		var zero V
		return zero, ctx.Err()
	}
}
